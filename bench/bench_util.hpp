// Shared helpers for the figure/table reproduction benches: reduced-scale
// stand-ins for the paper's qaoa_36 / sup_36 datasets, ratio/rate
// measurement, and aligned table printing.
#pragma once

#include <chrono>
#include <cstdio>
#include <span>
#include <string>
#include <vector>

#include "circuits/datasets.hpp"
#include "compression/compressor.hpp"

namespace cqs::bench {

/// Reduced-qubit stand-in for the paper's qaoa_36 snapshot. 18 qubits:
/// 4 MB of state, the same spiky value structure as Figure 9.
inline const std::vector<double>& qaoa_data() {
  static const std::vector<double> data = circuits::qaoa_dataset(18);
  return data;
}

/// Reduced-qubit stand-in for sup_36 (4x4 grid, depth 11).
inline const std::vector<double>& sup_data() {
  static const std::vector<double> data = circuits::supremacy_dataset(4, 4);
  return data;
}

inline double ratio_of(std::span<const double> data,
                       std::size_t compressed_size) {
  return static_cast<double>(data.size() * sizeof(double)) /
         static_cast<double>(compressed_size);
}

struct RateResult {
  double compress_mb_per_s = 0.0;
  double decompress_mb_per_s = 0.0;
  double ratio = 0.0;
};

/// Times one compress + decompress round trip (single core, like the
/// paper's Figure 11) over `repeats` runs, reporting the best rate.
/// `compress_fn()` returns the container; `decompress_fn(container, out)`
/// reverses it — the one timing protocol behind the figure benches and
/// the micro-codec CI gate.
template <typename CompressFn, typename DecompressFn>
RateResult measure_rate_with(std::span<const double> data,
                             CompressFn&& compress_fn,
                             DecompressFn&& decompress_fn, int repeats = 3) {
  using clock = std::chrono::steady_clock;
  const double megabytes =
      static_cast<double>(data.size() * sizeof(double)) / (1024.0 * 1024.0);
  RateResult result;
  Bytes compressed;
  for (int r = 0; r < repeats; ++r) {
    const auto t0 = clock::now();
    compressed = compress_fn();
    const auto t1 = clock::now();
    const double secs = std::chrono::duration<double>(t1 - t0).count();
    result.compress_mb_per_s =
        std::max(result.compress_mb_per_s, megabytes / secs);
  }
  std::vector<double> out(data.size());
  for (int r = 0; r < repeats; ++r) {
    const auto t0 = clock::now();
    decompress_fn(compressed, std::span<double>(out));
    const auto t1 = clock::now();
    const double secs = std::chrono::duration<double>(t1 - t0).count();
    result.decompress_mb_per_s =
        std::max(result.decompress_mb_per_s, megabytes / secs);
  }
  result.ratio = ratio_of(data, compressed.size());
  return result;
}

inline RateResult measure_rate(const compression::Compressor& codec,
                               std::span<const double> data,
                               const compression::ErrorBound& bound,
                               int repeats = 3) {
  return measure_rate_with(
      data, [&] { return codec.compress(data, bound); },
      [&](const Bytes& compressed, std::span<double> out) {
        codec.decompress(compressed, out);
      },
      repeats);
}

/// The error-bound sweep every compression figure uses.
inline const double kBounds[] = {1e-1, 1e-2, 1e-3, 1e-4, 1e-5};

inline void print_header(const std::string& title) {
  std::printf("=======================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("=======================================================\n");
}

}  // namespace cqs::bench
