// Codec-arbiter ablation: the paper's Figs. 9-14 observation — per-block
// state structure dictates which codec wins — measured head-to-head. Each
// circuit runs once with codec_policy=fixed (every lossy pass uses the
// configured codec, the seed behavior) and once with codec_policy=adaptive
// (the arbiter keeps sparse/spiky blocks on the lossless zx path), plus a
// fully lossless reference run that supplies the exact state for fidelity
// measurement.
//
//   $ ./bench_codec_arbiter [--qubits N] [--level L] [--json PATH]
//
// Grover is the sparse workload (ancilla subspace: most blocks are exact
// zeros), supremacy the dense one (Porter-Thomas amplitudes everywhere),
// QFT sits between. --level pins the starting ladder level (default 1 =
// 1e-5 relative) so the lossy-vs-lossless arbitration is actually
// exercised. --json writes the measurements for CI's bench-smoke gate.
//
// Exits nonzero if the adaptive policy compresses WORSE than fixed on the
// sparse workload (final state bytes), or if its fidelity on the dense
// workload falls below fixed's (the arbiter must not trade accuracy away).
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "circuits/grover.hpp"
#include "circuits/qft.hpp"
#include "circuits/supremacy.hpp"
#include "common/timer.hpp"
#include "core/simulator.hpp"
#include "qsim/state_vector.hpp"

namespace {

using cqs::core::CompressedStateSimulator;
using cqs::core::SimConfig;
using cqs::core::SimulationReport;

struct RunResult {
  SimulationReport report;
  double seconds = 0.0;
  std::size_t final_bytes = 0;
  std::vector<double> state;
};

RunResult run_once(const cqs::qsim::Circuit& circuit,
                   const std::string& policy, int level,
                   const std::string& codec = "") {
  SimConfig config;
  config.num_qubits = circuit.num_qubits();
  config.num_ranks = 2;
  config.blocks_per_rank = 4;
  config.initial_level = level;
  config.codec_policy = policy;
  if (!codec.empty()) config.codec = codec;
  // The cache would absorb codec passes on structured circuits; disable it
  // so the comparison isolates what the arbiter changes.
  config.enable_cache = false;
  CompressedStateSimulator sim(config);
  cqs::WallTimer timer;
  sim.apply_circuit(circuit);
  RunResult result;
  result.seconds = timer.seconds();
  result.final_bytes = sim.compressed_bytes();
  result.report = sim.report();  // snapshot before state queries decompress
  result.state = sim.to_raw();
  return result;
}

std::vector<double> lossless_reference(const cqs::qsim::Circuit& circuit) {
  SimConfig config;
  config.num_qubits = circuit.num_qubits();
  config.num_ranks = 2;
  config.blocks_per_rank = 4;
  config.codec = "zstd";  // lossless-only: the exact state
  config.enable_cache = false;
  CompressedStateSimulator sim(config);
  sim.apply_circuit(circuit);
  return sim.to_raw();
}

struct Comparison {
  std::string name;
  int qubits = 0;
  RunResult fixed;
  RunResult adaptive;
  double fixed_fidelity = 0.0;     // vs lossless reference
  double adaptive_fidelity = 0.0;  // vs lossless reference
};

Comparison compare(const std::string& name,
                   const cqs::qsim::Circuit& circuit, int level) {
  Comparison cmp;
  cmp.name = name;
  cmp.qubits = circuit.num_qubits();
  cmp.fixed = run_once(circuit, "fixed", level);
  cmp.adaptive = run_once(circuit, "adaptive", level);
  const auto reference = lossless_reference(circuit);
  cmp.fixed_fidelity = cqs::qsim::state_fidelity(cmp.fixed.state, reference);
  cmp.adaptive_fidelity =
      cqs::qsim::state_fidelity(cmp.adaptive.state, reference);
  return cmp;
}

// Entropy-stage A/B: the same circuit under codec_policy=fixed with plain
// zfp and with zfp-rans (identical plane stream, rANS re-coded). The rANS
// stage is lossless over the zfp bitstream, so fidelity must match exactly;
// the question is only whether the re-coding wins net bytes.
struct EntropyComparison {
  std::string name;
  int qubits = 0;
  RunResult zfp;
  RunResult rans;
  double zfp_fidelity = 0.0;
  double rans_fidelity = 0.0;
};

EntropyComparison entropy_compare(const std::string& name,
                                  const cqs::qsim::Circuit& circuit,
                                  int level) {
  EntropyComparison cmp;
  cmp.name = name;
  cmp.qubits = circuit.num_qubits();
  cmp.zfp = run_once(circuit, "fixed", level, "zfp");
  cmp.rans = run_once(circuit, "fixed", level, "zfp-rans");
  const auto reference = lossless_reference(circuit);
  cmp.zfp_fidelity = cqs::qsim::state_fidelity(cmp.zfp.state, reference);
  cmp.rans_fidelity = cqs::qsim::state_fidelity(cmp.rans.state, reference);
  return cmp;
}

void print_entropy_comparison(const EntropyComparison& cmp) {
  std::printf("%-10s %2dq  |", cmp.name.c_str(), cmp.qubits);
  std::printf(
      " bytes zfp %8zu -> zfp-rans %8zu (%+.1f%%)  | fidelity %.8f -> "
      "%.8f\n",
      cmp.zfp.final_bytes, cmp.rans.final_bytes,
      100.0 * (static_cast<double>(cmp.rans.final_bytes) /
                   static_cast<double>(cmp.zfp.final_bytes) -
               1.0),
      cmp.zfp_fidelity, cmp.rans_fidelity);
}

void print_comparison(const Comparison& cmp) {
  const auto& a = cmp.adaptive.report;
  std::printf("%-10s %2dq  |", cmp.name.c_str(), cmp.qubits);
  std::printf(
      " bytes %8zu -> %8zu (peak %8zu -> %8zu)  | fidelity %.8f -> %.8f"
      "  | adaptive mix %llu lossless / %llu lossy (%llu switches)\n",
      cmp.fixed.final_bytes, cmp.adaptive.final_bytes,
      cmp.fixed.report.peak_compressed_bytes, a.peak_compressed_bytes,
      cmp.fixed_fidelity, cmp.adaptive_fidelity,
      static_cast<unsigned long long>(a.codec_lossless_choices),
      static_cast<unsigned long long>(a.codec_lossy_choices),
      static_cast<unsigned long long>(a.codec_switches));
}

void write_json(const std::string& path,
                const std::vector<Comparison>& results,
                const std::vector<EntropyComparison>& entropy) {
  std::ofstream out(path, std::ios::trunc);
  out << "{\n  \"bench\": \"codec_arbiter\",\n  \"circuits\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const Comparison& c = results[i];
    const auto side = [](const RunResult& r) {
      return "{\"final_bytes\": " + std::to_string(r.final_bytes) +
             ", \"peak_bytes\": " +
             std::to_string(r.report.peak_compressed_bytes) +
             ", \"lossy_passes\": " + std::to_string(r.report.lossy_passes) +
             ", \"lossless_choices\": " +
             std::to_string(r.report.codec_lossless_choices) +
             ", \"lossy_choices\": " +
             std::to_string(r.report.codec_lossy_choices) +
             ", \"switches\": " + std::to_string(r.report.codec_switches) +
             ", \"fidelity_bound\": " +
             std::to_string(r.report.fidelity_bound) +
             ", \"seconds\": " + std::to_string(r.seconds) + "}";
    };
    out << "    {\"name\": \"" << c.name << "\", \"qubits\": " << c.qubits
        << ",\n     \"fixed\": " << side(c.fixed)
        << ",\n     \"adaptive\": " << side(c.adaptive)
        << ",\n     \"fixed_fidelity\": " << c.fixed_fidelity
        << ", \"adaptive_fidelity\": " << c.adaptive_fidelity << "}"
        << (i + 1 < results.size() ? "," : "") << "\n";
  }
  out << "  ],\n  \"entropy_stage\": [\n";
  for (std::size_t i = 0; i < entropy.size(); ++i) {
    const EntropyComparison& c = entropy[i];
    out << "    {\"name\": \"" << c.name << "\", \"qubits\": " << c.qubits
        << ", \"zfp_bytes\": " << c.zfp.final_bytes
        << ", \"zfp_rans_bytes\": " << c.rans.final_bytes
        << ", \"zfp_fidelity\": " << c.zfp_fidelity
        << ", \"zfp_rans_fidelity\": " << c.rans_fidelity << "}"
        << (i + 1 < entropy.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) try {
  using namespace cqs;
  int qft_qubits = 16;
  int level = 1;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--qubits") {
      qft_qubits = std::atoi(next());
    } else if (arg == "--level") {
      level = std::atoi(next());
    } else if (arg == "--json") {
      json_path = next();
    } else {
      std::fprintf(stderr,
                   "usage: %s [--qubits N] [--level L] [--json PATH]\n",
                   argv[0]);
      return 2;
    }
  }

  bench::print_header(
      "Codec arbiter: fixed codec vs per-block adaptive selection");

  std::vector<Comparison> results;
  results.push_back(compare(
      "grover",
      circuits::grover_circuit({.data_qubits = 6,
                                .marked_state = 0b101101,
                                .iterations = 2}),
      level));
  print_comparison(results.back());
  results.push_back(compare(
      "qft",
      circuits::qft_circuit({.num_qubits = qft_qubits,
                             .random_input = false}),
      level));
  print_comparison(results.back());
  results.push_back(compare(
      "supremacy",
      circuits::supremacy_circuit({.rows = 3, .cols = 4, .depth = 11}),
      level));
  print_comparison(results.back());

  bench::print_header("Entropy stage: fixed zfp vs fixed zfp-rans");
  std::vector<EntropyComparison> entropy;
  entropy.push_back(entropy_compare(
      "grover",
      circuits::grover_circuit({.data_qubits = 6,
                                .marked_state = 0b101101,
                                .iterations = 2}),
      level));
  print_entropy_comparison(entropy.back());
  entropy.push_back(entropy_compare(
      "qft",
      circuits::qft_circuit({.num_qubits = qft_qubits,
                             .random_input = false}),
      level));
  print_entropy_comparison(entropy.back());
  entropy.push_back(entropy_compare(
      "supremacy",
      circuits::supremacy_circuit({.rows = 3, .cols = 4, .depth = 11}),
      level));
  print_entropy_comparison(entropy.back());

  if (!json_path.empty()) {
    write_json(json_path, results, entropy);
    std::printf("wrote %s\n", json_path.c_str());
  }

  // Acceptance gates. Sparse (Grover): the arbiter must pay off in bytes —
  // zero-suppressing lossless must beat quantizing the ancilla subspace.
  // Dense (supremacy): the arbiter must do no harm — fidelity no worse
  // than the fixed policy's.
  const Comparison& grover = results[0];
  const Comparison& sup = results[2];
  bool ok = true;
  if (grover.adaptive.final_bytes > grover.fixed.final_bytes) {
    std::fprintf(stderr,
                 "FAIL: adaptive final bytes %zu > fixed %zu on grover\n",
                 grover.adaptive.final_bytes, grover.fixed.final_bytes);
    ok = false;
  }
  if (grover.adaptive_fidelity < grover.fixed_fidelity - 1e-12) {
    std::fprintf(stderr, "FAIL: adaptive grover fidelity %.12f < fixed %.12f\n",
                 grover.adaptive_fidelity, grover.fixed_fidelity);
    ok = false;
  }
  if (sup.adaptive_fidelity < sup.fixed_fidelity - 1e-9) {
    std::fprintf(stderr,
                 "FAIL: adaptive supremacy fidelity %.12f < fixed %.12f\n",
                 sup.adaptive_fidelity, sup.fixed_fidelity);
    ok = false;
  }
  // Entropy stage: re-coding the plane stream must win net bytes on at
  // least one bundled circuit, and — being lossless over the zfp
  // bitstream — must never cost fidelity anywhere.
  bool rans_wins_somewhere = false;
  for (const EntropyComparison& c : entropy) {
    if (c.rans.final_bytes < c.zfp.final_bytes) rans_wins_somewhere = true;
    if (c.rans_fidelity < c.zfp_fidelity - 1e-12) {
      std::fprintf(stderr,
                   "FAIL: zfp-rans fidelity %.12f < zfp %.12f on %s\n",
                   c.rans_fidelity, c.zfp_fidelity, c.name.c_str());
      ok = false;
    }
  }
  if (!rans_wins_somewhere) {
    std::fprintf(stderr,
                 "FAIL: zfp-rans won net bytes on no bundled circuit\n");
    ok = false;
  }
  std::printf("%s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
} catch (const std::exception& e) {
  std::fprintf(stderr, "bench_codec_arbiter: %s\n", e.what());
  return 1;
}
