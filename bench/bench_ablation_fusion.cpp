// Ablation: single-qubit gate fusion under compression. Every gate costs
// a full decompress/recompress sweep of the state (Figure 2), so fusing
// runs of single-qubit gates removes whole compression passes — a
// compression-specific win on top of the usual FLOP savings.
#include <cstdio>

#include "bench_util.hpp"
#include "circuits/grover.hpp"
#include "circuits/supremacy.hpp"
#include "common/timer.hpp"
#include "core/simulator.hpp"
#include "qsim/fusion.hpp"

namespace {

using namespace cqs;

void run(const char* name, const qsim::Circuit& original) {
  qsim::FusionStats stats;
  const auto fused = qsim::fuse_single_qubit_gates(original, &stats);
  for (const auto* variant : {"original", "fused"}) {
    const auto& circuit =
        variant == std::string("original") ? original : fused;
    core::SimConfig config;
    config.num_qubits = circuit.num_qubits();
    config.num_ranks = 4;
    config.blocks_per_rank = 16;
    core::CompressedStateSimulator sim(config);
    WallTimer timer;
    sim.apply_circuit(circuit);
    std::printf("%-12s %10s %8zu %10.2f %12.4f\n", name, variant,
                circuit.size(), timer.seconds(),
                sim.report().seconds_per_gate());
  }
  std::printf("%-12s fused %zu runs: %zu -> %zu gates\n\n", name,
              stats.fused_runs, stats.gates_before, stats.gates_after);
}

}  // namespace

int main() {
  bench::print_header(
      "Ablation: single-qubit gate fusion (fewer compression passes)");
  std::printf("%-12s %10s %8s %10s %12s\n", "workload", "variant", "gates",
              "time (s)", "s/gate");
  run("grover_18",
      circuits::grover_circuit({.data_qubits = 10, .marked_state = 0x1ff}));
  run("sup_4x4",
      circuits::supremacy_circuit({.rows = 4, .cols = 4, .depth = 16}));
  std::printf(
      "expectation: total time drops roughly with the gate-count "
      "reduction, because per-gate cost is dominated by the "
      "decompress/recompress sweep, not the 2x2 arithmetic\n");
  return 0;
}
