// Figure 8 reproduction: compression ratios of SZ, FPZIP, and ZFP under
// pointwise relative error bounds. FPZIP uses its precision-number control
// (the paper's precisions 16/18/22/24/28 for bounds 1e-1..1e-5).
#include <cstdio>

#include "bench_util.hpp"
#include "fpzip/fpzip.hpp"
#include "sz/sz.hpp"
#include "zfp/zfp.hpp"

namespace {

void run(const char* name, std::span<const double> data) {
  using namespace cqs;
  std::printf("\n--- %s ---\n", name);
  std::printf("%10s %12s %12s %12s\n", "bound", "SZ", "FPZIP", "ZFP");
  sz::SzCodec sz_codec;
  zfp::ZfpCodec zfp_codec;
  for (double eps : bench::kBounds) {
    const auto bound = compression::ErrorBound::relative(eps);
    const auto sz_bytes = sz_codec.compress(data, bound);
    fpzip::FpzipCodec fpzip_codec(fpzip::precision_for_bound(eps));
    const auto fp_bytes = fpzip_codec.compress(data, bound);
    const auto zfp_bytes = zfp_codec.compress(data, bound);
    std::printf("%10.0e %12.2f %12.2f %12.2f\n", eps,
                bench::ratio_of(data, sz_bytes.size()),
                bench::ratio_of(data, fp_bytes.size()),
                bench::ratio_of(data, zfp_bytes.size()));
  }
}

}  // namespace

int main() {
  using namespace cqs;
  bench::print_header(
      "Figure 8: SZ vs FPZIP vs ZFP ratio (pointwise relative bounds)");
  run("qaoa_18", bench::qaoa_data());
  run("sup_16", bench::sup_data());
  std::printf(
      "\nshape check (paper): SZ always leads both baselines with the same "
      "pointwise relative bounds\n");
  return 0;
}
