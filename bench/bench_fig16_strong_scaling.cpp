// Figure 16 reproduction: strong scaling of a fixed-size simulation. The
// paper scales a 51-qubit Hadamard program from 128 to 512 Theta nodes;
// the single-server analogue scales worker parallelism over a fixed
// 20-qubit QAOA workload (dense state, real compression work per block).
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "circuits/qaoa.hpp"
#include "common/timer.hpp"
#include "core/simulator.hpp"

namespace {

double run_once(int threads) {
  using namespace cqs;
  core::SimConfig config;
  config.num_qubits = 20;
  config.num_ranks = 8;
  config.blocks_per_rank = 8;
  config.threads = threads;
  core::CompressedStateSimulator sim(config);
  const auto circuit = circuits::qaoa_maxcut_circuit({.num_qubits = 20});
  WallTimer timer;
  sim.apply_circuit(circuit);
  return timer.seconds();
}

}  // namespace

int main() {
  using namespace cqs;
  bench::print_header(
      "Figure 16: strong scaling of a fixed-size simulation (20-qubit "
      "QAOA, 8 ranks, workers = 'nodes')");

  run_once(2);  // warmup
  std::vector<std::pair<int, double>> rows;
  for (int threads : {1, 2, 4, 8}) {
    double best = 1e30;
    for (int rep = 0; rep < 2; ++rep) {
      best = std::min(best, run_once(threads));
    }
    rows.emplace_back(threads, best);
  }
  const double base = rows.front().second;
  std::printf("%10s %14s %12s %12s\n", "workers", "time (s)", "speedup",
              "ideal");
  for (const auto& [threads, secs] : rows) {
    std::printf("%10d %14.3f %12.2f %12d\n", threads, secs, base / secs,
                threads);
  }
  std::printf(
      "\nshape check (paper): sublinear but monotone speedup (theirs: "
      "1.70x at 2x nodes, 2.84x at 4x nodes) — per-block codec work "
      "parallelizes, cross-rank exchange and stragglers eat the rest\n");
  return 0;
}
