// Figure 16 reproduction: strong scaling of a fixed-size simulation, plus
// the communication study the figure exists to motivate. The paper scales
// a 51-qubit Hadamard program from 128 to 512 Theta nodes and attributes
// the sublinear speedup to cross-rank exchanges; the single-server
// analogue (default mode) scales worker parallelism over a fixed 20-qubit
// QAOA workload.
//
// --json mode is the qubit-remap communication comparison: QFT and Grover
// run remap-on vs remap-off at 4 and 8 ranks, recording cross-rank bytes,
// messages, remap ledger entries, and wall time, and verifying the final
// states agree. CI gates on QFT at 4 ranks: remapping must cut exchanged
// bytes by >= 5x (relabeled reversal swaps plus early in-place sweeps on
// the still-sparse state dominate the win), and Grover — whose AND-ladder
// keeps every offset slot hot, so the planner correctly stands pat — must
// never move MORE bytes than the identity layout.
//
// --wire socket mode is the transport study: the same workloads run on
// the in-process loopback transport and on the multi-process socket
// transport (each rank a forked OS process, exchanges framed over a real
// wire), recording measured wire payload/framing bytes, wire seconds, and
// comm-overlap utilization. CI gates on three invariants: states
// bit-identical (tol 0), identical logical comm traffic, and the
// accounting identity socket wire payload == 2x logical bytes (out and
// back per exchanged payload) while loopback == 1x.
//
//   $ ./bench_fig16_strong_scaling [--qubits N] [--json PATH]
//                                  [--wire loopback|socket]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "circuits/grover.hpp"
#include "circuits/qaoa.hpp"
#include "circuits/qft.hpp"
#include "common/timer.hpp"
#include "core/simulator.hpp"
#include "qsim/state_vector.hpp"
#include "runtime/transport.hpp"

namespace {

using cqs::core::CompressedStateSimulator;
using cqs::core::SimConfig;
using cqs::core::SimulationReport;

double run_scaling_once(int threads) {
  using namespace cqs;
  core::SimConfig config;
  config.num_qubits = 20;
  config.num_ranks = 8;
  config.blocks_per_rank = 8;
  config.threads = threads;
  core::CompressedStateSimulator sim(config);
  const auto circuit = circuits::qaoa_maxcut_circuit({.num_qubits = 20});
  cqs::WallTimer timer;
  sim.apply_circuit(circuit);
  return timer.seconds();
}

int run_scaling_table() {
  using namespace cqs;
  bench::print_header(
      "Figure 16: strong scaling of a fixed-size simulation (20-qubit "
      "QAOA, 8 ranks, workers = 'nodes')");

  run_scaling_once(2);  // warmup
  std::vector<std::pair<int, double>> rows;
  for (int threads : {1, 2, 4, 8}) {
    double best = 1e30;
    for (int rep = 0; rep < 2; ++rep) {
      best = std::min(best, run_scaling_once(threads));
    }
    rows.emplace_back(threads, best);
  }
  const double base = rows.front().second;
  std::printf("%10s %14s %12s %12s\n", "workers", "time (s)", "speedup",
              "ideal");
  for (const auto& [threads, secs] : rows) {
    std::printf("%10d %14.3f %12.2f %12d\n", threads, secs, base / secs,
                threads);
  }
  std::printf(
      "\nshape check (paper): sublinear but monotone speedup (theirs: "
      "1.70x at 2x nodes, 2.84x at 4x nodes) — per-block codec work "
      "parallelizes, cross-rank exchange and stragglers eat the rest\n");
  return 0;
}

struct RemapRun {
  SimulationReport report;
  double seconds = 0.0;
  std::vector<double> state;  // empty above the to_raw limit
};

RemapRun run_remap_once(const cqs::qsim::Circuit& circuit, int ranks,
                        bool remap) {
  SimConfig config;
  config.num_qubits = circuit.num_qubits();
  config.num_ranks = ranks;
  config.blocks_per_rank = 8;
  config.enable_qubit_remap = remap;
  CompressedStateSimulator sim(config);
  cqs::WallTimer timer;
  sim.apply_circuit(circuit);
  RemapRun run;
  run.seconds = timer.seconds();
  run.report = sim.report();
  if (circuit.num_qubits() <= 26) run.state = sim.to_raw();
  return run;
}

struct RemapComparison {
  std::string name;
  int qubits = 0;
  int ranks = 0;
  RemapRun on;
  RemapRun off;
  double byte_ratio = 0.0;  // off / on (1.0 when both moved nothing)
  double fidelity = 0.0;
};

RemapComparison compare_remap(const std::string& name,
                              const cqs::qsim::Circuit& circuit,
                              int ranks) {
  RemapComparison cmp;
  cmp.name = name;
  cmp.qubits = circuit.num_qubits();
  cmp.ranks = ranks;
  cmp.off = run_remap_once(circuit, ranks, false);
  cmp.on = run_remap_once(circuit, ranks, true);
  cmp.byte_ratio =
      cmp.on.report.comm_bytes == 0
          ? (cmp.off.report.comm_bytes == 0 ? 1.0 : 1e9)
          : static_cast<double>(cmp.off.report.comm_bytes) /
                static_cast<double>(cmp.on.report.comm_bytes);
  cmp.fidelity = cqs::qsim::state_fidelity(cmp.on.state, cmp.off.state);
  return cmp;
}

void print_remap(const RemapComparison& cmp) {
  std::printf(
      "%-8s %2dq @%d ranks | bytes %12llu -> %10llu (%.1fx)  | msgs %6llu "
      "-> %5llu | remaps %llu, relabels %llu, in-place %llu | %.2fs -> "
      "%.2fs | fidelity %.12f\n",
      cmp.name.c_str(), cmp.qubits, cmp.ranks,
      static_cast<unsigned long long>(cmp.off.report.comm_bytes),
      static_cast<unsigned long long>(cmp.on.report.comm_bytes),
      cmp.byte_ratio,
      static_cast<unsigned long long>(cmp.off.report.comm_messages),
      static_cast<unsigned long long>(cmp.on.report.comm_messages),
      static_cast<unsigned long long>(cmp.on.report.remap_sweeps),
      static_cast<unsigned long long>(cmp.on.report.swaps_relabeled),
      static_cast<unsigned long long>(cmp.on.report.rank_gates_in_place),
      cmp.off.seconds, cmp.on.seconds, cmp.fidelity);
}

void write_json(const std::string& path,
                const std::vector<RemapComparison>& results) {
  std::ofstream out(path, std::ios::trunc);
  out << "{\n  \"bench\": \"fig16_strong_scaling_remap\",\n"
      << "  \"comparisons\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const RemapComparison& c = results[i];
    const auto side = [&](const RemapRun& r) {
      return "{\"comm_bytes\": " + std::to_string(r.report.comm_bytes) +
             ", \"comm_messages\": " +
             std::to_string(r.report.comm_messages) +
             ", \"remap_sweeps\": " +
             std::to_string(r.report.remap_sweeps) +
             ", \"swaps_relabeled\": " +
             std::to_string(r.report.swaps_relabeled) +
             ", \"rank_gates_in_place\": " +
             std::to_string(r.report.rank_gates_in_place) +
             ", \"exchanges_avoided\": " +
             std::to_string(r.report.remap_exchanges_avoided) +
             ", \"seconds\": " + std::to_string(r.seconds) + "}";
    };
    out << "    {\"name\": \"" << c.name << "\", \"qubits\": " << c.qubits
        << ", \"ranks\": " << c.ranks
        << ",\n     \"remap_on\": " << side(c.on)
        << ",\n     \"remap_off\": " << side(c.off)
        << ",\n     \"cross_rank_byte_ratio\": " << c.byte_ratio
        << ", \"cross_fidelity\": " << c.fidelity << "}"
        << (i + 1 < results.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
}

// --- --wire socket: loopback vs multi-process transport -------------------

struct WireRun {
  SimulationReport report;
  double seconds = 0.0;
  std::vector<double> state;
};

WireRun run_wire_once(const cqs::qsim::Circuit& circuit, int ranks,
                      const std::string& transport) {
  SimConfig config;
  config.num_qubits = circuit.num_qubits();
  config.num_ranks = ranks;
  config.blocks_per_rank = 8;
  config.transport = transport;
  CompressedStateSimulator sim(config);
  cqs::WallTimer timer;
  sim.apply_circuit(circuit);
  WireRun run;
  run.seconds = timer.seconds();
  run.report = sim.report();
  if (circuit.num_qubits() <= 26) run.state = sim.to_raw();
  return run;
}

struct WireComparison {
  std::string name;
  int qubits = 0;
  int ranks = 0;
  WireRun loopback;
  WireRun socket;
  bool states_identical = false;
};

void print_wire(const WireComparison& cmp) {
  const auto& loop = cmp.loopback.report;
  const auto& sock = cmp.socket.report;
  std::printf(
      "%-8s %2dq @%d ranks | logical %11llu B in %6llu msgs | wire "
      "%11llu B payload + %8llu B framing (%6llu frames) | comm %.4fs -> "
      "%.4fs | overlap %.1f%% | states %s\n",
      cmp.name.c_str(), cmp.qubits, cmp.ranks,
      static_cast<unsigned long long>(sock.comm_bytes),
      static_cast<unsigned long long>(sock.comm_messages),
      static_cast<unsigned long long>(sock.wire_payload_bytes),
      static_cast<unsigned long long>(sock.wire_frame_bytes),
      static_cast<unsigned long long>(sock.wire_frames),
      loop.comm_seconds, sock.comm_seconds,
      sock.comm_overlap_utilization * 100.0,
      cmp.states_identical ? "bit-identical" : "DIVERGED");
}

void write_wire_json(const std::string& path,
                     const std::vector<WireComparison>& results) {
  std::ofstream out(path, std::ios::trunc);
  out << "{\n  \"bench\": \"fig16_strong_scaling_wire\",\n"
      << "  \"comparisons\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const WireComparison& c = results[i];
    const auto side = [&](const WireRun& r) {
      return "{\"transport\": \"" + r.report.transport +
             "\", \"comm_bytes\": " + std::to_string(r.report.comm_bytes) +
             ", \"comm_messages\": " +
             std::to_string(r.report.comm_messages) +
             ", \"comm_seconds\": " + std::to_string(r.report.comm_seconds) +
             ", \"comm_overlap_utilization\": " +
             std::to_string(r.report.comm_overlap_utilization) +
             ", \"wire_payload_bytes\": " +
             std::to_string(r.report.wire_payload_bytes) +
             ", \"wire_frame_bytes\": " +
             std::to_string(r.report.wire_frame_bytes) +
             ", \"wire_frames\": " +
             std::to_string(r.report.wire_frames) +
             ", \"seconds\": " + std::to_string(r.seconds) + "}";
    };
    out << "    {\"name\": \"" << c.name << "\", \"qubits\": " << c.qubits
        << ", \"ranks\": " << c.ranks
        << ",\n     \"loopback\": " << side(c.loopback)
        << ",\n     \"socket\": " << side(c.socket)
        << ",\n     \"states_identical\": "
        << (c.states_identical ? "true" : "false") << "}"
        << (i + 1 < results.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
}

int run_wire_comparison(int qft_qubits, const std::string& json_path) {
  using namespace cqs;
  if (!runtime::socket_transport_available()) {
    std::fprintf(stderr,
                 "bench_fig16_strong_scaling: --wire socket needs a "
                 "-DCQS_TRANSPORT_SOCKET=ON build\n");
    return 2;
  }
  bench::print_header(
      "Figure 16 transport: loopback vs multi-process socket ranks "
      "(measured wire bytes; states must stay bit-identical)");

  std::vector<WireComparison> results;
  const auto qft = circuits::qft_circuit({.num_qubits = qft_qubits});
  const auto grover = circuits::grover_circuit(
      {.data_qubits = 8, .marked_state = 0b10110101, .iterations = 2});
  const std::vector<std::pair<std::string, const qsim::Circuit*>> workloads =
      {{"qft", &qft}, {"grover", &grover}};
  for (int ranks : {2, 4}) {
    for (const auto& [name, circuit] : workloads) {
      WireComparison cmp;
      cmp.name = name;
      cmp.qubits = circuit->num_qubits();
      cmp.ranks = ranks;
      cmp.loopback = run_wire_once(*circuit, ranks, "loopback");
      cmp.socket = run_wire_once(*circuit, ranks, "socket");
      cmp.states_identical =
          !cmp.loopback.state.empty() &&
          cmp.loopback.state == cmp.socket.state;  // tol 0, exact doubles
      results.push_back(std::move(cmp));
      print_wire(results.back());
    }
  }

  if (!json_path.empty()) {
    write_wire_json(json_path, results);
    std::printf("wrote %s\n", json_path.c_str());
  }

  // Acceptance gates: (a) the wire may carry bytes but never perturb the
  // state; (b) both transports account identical logical traffic; (c) the
  // out-and-back identity — socket wire payload == 2x logical bytes,
  // loopback == 1x — so a framing or double-count bug cannot hide.
  bool ok = true;
  for (const WireComparison& c : results) {
    const auto& loop = c.loopback.report;
    const auto& sock = c.socket.report;
    if (!c.states_identical) {
      std::fprintf(stderr, "FAIL: %s@%d socket state diverged\n",
                   c.name.c_str(), c.ranks);
      ok = false;
    }
    if (sock.comm_bytes != loop.comm_bytes ||
        sock.comm_messages != loop.comm_messages) {
      std::fprintf(stderr, "FAIL: %s@%d logical traffic differs\n",
                   c.name.c_str(), c.ranks);
      ok = false;
    }
    if (sock.wire_payload_bytes != 2 * sock.comm_bytes) {
      std::fprintf(stderr,
                   "FAIL: %s@%d wire payload %llu != 2x logical %llu\n",
                   c.name.c_str(), c.ranks,
                   static_cast<unsigned long long>(sock.wire_payload_bytes),
                   static_cast<unsigned long long>(sock.comm_bytes));
      ok = false;
    }
    if (loop.wire_payload_bytes != loop.comm_bytes) {
      std::fprintf(stderr, "FAIL: %s@%d loopback wire != logical bytes\n",
                   c.name.c_str(), c.ranks);
      ok = false;
    }
  }
  std::printf("%s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) try {
  using namespace cqs;
  int qft_qubits = 20;
  bool qubits_given = false;
  std::string json_path;
  std::string wire;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--qubits") {
      qft_qubits = std::atoi(next());
      qubits_given = true;
    } else if (arg == "--json") {
      json_path = next();
    } else if (arg == "--wire") {
      wire = next();
    } else {
      std::fprintf(stderr,
                   "usage: %s [--qubits N] [--json PATH] "
                   "[--wire loopback|socket]\n",
                   argv[0]);
      return 2;
    }
  }

  // --wire socket: the transport comparison replaces the remap study (the
  // default --json mode and the flagless scaling table are unchanged).
  // Smaller default QFT here: the gates need exact state comparison on
  // every run, so keep the sweep snappy unless --qubits overrides.
  if (wire == "socket") {
    return run_wire_comparison(qubits_given ? qft_qubits : 14, json_path);
  }
  if (!wire.empty() && wire != "loopback") {
    std::fprintf(stderr, "unknown --wire '%s'\n", wire.c_str());
    return 2;
  }

  if (json_path.empty()) return run_scaling_table();

  bench::print_header(
      "Figure 16 / Table 2 communication: cross-rank bytes, qubit remap "
      "on vs off");

  std::vector<RemapComparison> results;
  const auto qft = circuits::qft_circuit({.num_qubits = qft_qubits});
  const auto grover = circuits::grover_circuit(
      {.data_qubits = 8, .marked_state = 0b10110101, .iterations = 2});
  for (int ranks : {4, 8}) {
    results.push_back(compare_remap("qft", qft, ranks));
    print_remap(results.back());
    results.push_back(compare_remap("grover", grover, ranks));
    print_remap(results.back());
  }

  write_json(json_path, results);
  std::printf("wrote %s\n", json_path.c_str());

  // Acceptance gates. The QFT instance at 4 ranks is the headline number
  // (the ISSUE's >= 5x floor); every configuration must (a) keep the
  // final states identical up to codec tolerance (lossless here: 1.0 to
  // rounding) and (b) never move more bytes than the identity layout.
  bool ok = true;
  for (const RemapComparison& c : results) {
    if (!c.on.state.empty() && c.fidelity < 1.0 - 1e-12) {
      std::fprintf(stderr, "FAIL: %s@%d remap changed the state (%.12f)\n",
                   c.name.c_str(), c.ranks, c.fidelity);
      ok = false;
    }
    if (c.on.report.comm_bytes > c.off.report.comm_bytes) {
      std::fprintf(stderr, "FAIL: %s@%d remap moved MORE bytes\n",
                   c.name.c_str(), c.ranks);
      ok = false;
    }
  }
  const RemapComparison& headline = results.front();
  if (headline.byte_ratio < 5.0) {
    std::fprintf(stderr,
                 "FAIL: qft@4 cross-rank byte ratio %.2f < 5.0\n",
                 headline.byte_ratio);
    ok = false;
  }
  std::printf("%s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
} catch (const std::exception& e) {
  std::fprintf(stderr, "bench_fig16_strong_scaling: %s\n", e.what());
  return 1;
}
