// Figure 16 reproduction: strong scaling of a fixed-size simulation, plus
// the communication study the figure exists to motivate. The paper scales
// a 51-qubit Hadamard program from 128 to 512 Theta nodes and attributes
// the sublinear speedup to cross-rank exchanges; the single-server
// analogue (default mode) scales worker parallelism over a fixed 20-qubit
// QAOA workload.
//
// --json mode is the qubit-remap communication comparison: QFT and Grover
// run remap-on vs remap-off at 4 and 8 ranks, recording cross-rank bytes,
// messages, remap ledger entries, and wall time, and verifying the final
// states agree. CI gates on QFT at 4 ranks: remapping must cut exchanged
// bytes by >= 5x (relabeled reversal swaps plus early in-place sweeps on
// the still-sparse state dominate the win), and Grover — whose AND-ladder
// keeps every offset slot hot, so the planner correctly stands pat — must
// never move MORE bytes than the identity layout.
//
//   $ ./bench_fig16_strong_scaling [--qubits N] [--json PATH]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "circuits/grover.hpp"
#include "circuits/qaoa.hpp"
#include "circuits/qft.hpp"
#include "common/timer.hpp"
#include "core/simulator.hpp"
#include "qsim/state_vector.hpp"

namespace {

using cqs::core::CompressedStateSimulator;
using cqs::core::SimConfig;
using cqs::core::SimulationReport;

double run_scaling_once(int threads) {
  using namespace cqs;
  core::SimConfig config;
  config.num_qubits = 20;
  config.num_ranks = 8;
  config.blocks_per_rank = 8;
  config.threads = threads;
  core::CompressedStateSimulator sim(config);
  const auto circuit = circuits::qaoa_maxcut_circuit({.num_qubits = 20});
  cqs::WallTimer timer;
  sim.apply_circuit(circuit);
  return timer.seconds();
}

int run_scaling_table() {
  using namespace cqs;
  bench::print_header(
      "Figure 16: strong scaling of a fixed-size simulation (20-qubit "
      "QAOA, 8 ranks, workers = 'nodes')");

  run_scaling_once(2);  // warmup
  std::vector<std::pair<int, double>> rows;
  for (int threads : {1, 2, 4, 8}) {
    double best = 1e30;
    for (int rep = 0; rep < 2; ++rep) {
      best = std::min(best, run_scaling_once(threads));
    }
    rows.emplace_back(threads, best);
  }
  const double base = rows.front().second;
  std::printf("%10s %14s %12s %12s\n", "workers", "time (s)", "speedup",
              "ideal");
  for (const auto& [threads, secs] : rows) {
    std::printf("%10d %14.3f %12.2f %12d\n", threads, secs, base / secs,
                threads);
  }
  std::printf(
      "\nshape check (paper): sublinear but monotone speedup (theirs: "
      "1.70x at 2x nodes, 2.84x at 4x nodes) — per-block codec work "
      "parallelizes, cross-rank exchange and stragglers eat the rest\n");
  return 0;
}

struct RemapRun {
  SimulationReport report;
  double seconds = 0.0;
  std::vector<double> state;  // empty above the to_raw limit
};

RemapRun run_remap_once(const cqs::qsim::Circuit& circuit, int ranks,
                        bool remap) {
  SimConfig config;
  config.num_qubits = circuit.num_qubits();
  config.num_ranks = ranks;
  config.blocks_per_rank = 8;
  config.enable_qubit_remap = remap;
  CompressedStateSimulator sim(config);
  cqs::WallTimer timer;
  sim.apply_circuit(circuit);
  RemapRun run;
  run.seconds = timer.seconds();
  run.report = sim.report();
  if (circuit.num_qubits() <= 26) run.state = sim.to_raw();
  return run;
}

struct RemapComparison {
  std::string name;
  int qubits = 0;
  int ranks = 0;
  RemapRun on;
  RemapRun off;
  double byte_ratio = 0.0;  // off / on (1.0 when both moved nothing)
  double fidelity = 0.0;
};

RemapComparison compare_remap(const std::string& name,
                              const cqs::qsim::Circuit& circuit,
                              int ranks) {
  RemapComparison cmp;
  cmp.name = name;
  cmp.qubits = circuit.num_qubits();
  cmp.ranks = ranks;
  cmp.off = run_remap_once(circuit, ranks, false);
  cmp.on = run_remap_once(circuit, ranks, true);
  cmp.byte_ratio =
      cmp.on.report.comm_bytes == 0
          ? (cmp.off.report.comm_bytes == 0 ? 1.0 : 1e9)
          : static_cast<double>(cmp.off.report.comm_bytes) /
                static_cast<double>(cmp.on.report.comm_bytes);
  cmp.fidelity = cqs::qsim::state_fidelity(cmp.on.state, cmp.off.state);
  return cmp;
}

void print_remap(const RemapComparison& cmp) {
  std::printf(
      "%-8s %2dq @%d ranks | bytes %12llu -> %10llu (%.1fx)  | msgs %6llu "
      "-> %5llu | remaps %llu, relabels %llu, in-place %llu | %.2fs -> "
      "%.2fs | fidelity %.12f\n",
      cmp.name.c_str(), cmp.qubits, cmp.ranks,
      static_cast<unsigned long long>(cmp.off.report.comm_bytes),
      static_cast<unsigned long long>(cmp.on.report.comm_bytes),
      cmp.byte_ratio,
      static_cast<unsigned long long>(cmp.off.report.comm_messages),
      static_cast<unsigned long long>(cmp.on.report.comm_messages),
      static_cast<unsigned long long>(cmp.on.report.remap_sweeps),
      static_cast<unsigned long long>(cmp.on.report.swaps_relabeled),
      static_cast<unsigned long long>(cmp.on.report.rank_gates_in_place),
      cmp.off.seconds, cmp.on.seconds, cmp.fidelity);
}

void write_json(const std::string& path,
                const std::vector<RemapComparison>& results) {
  std::ofstream out(path, std::ios::trunc);
  out << "{\n  \"bench\": \"fig16_strong_scaling_remap\",\n"
      << "  \"comparisons\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const RemapComparison& c = results[i];
    const auto side = [&](const RemapRun& r) {
      return "{\"comm_bytes\": " + std::to_string(r.report.comm_bytes) +
             ", \"comm_messages\": " +
             std::to_string(r.report.comm_messages) +
             ", \"remap_sweeps\": " +
             std::to_string(r.report.remap_sweeps) +
             ", \"swaps_relabeled\": " +
             std::to_string(r.report.swaps_relabeled) +
             ", \"rank_gates_in_place\": " +
             std::to_string(r.report.rank_gates_in_place) +
             ", \"exchanges_avoided\": " +
             std::to_string(r.report.remap_exchanges_avoided) +
             ", \"seconds\": " + std::to_string(r.seconds) + "}";
    };
    out << "    {\"name\": \"" << c.name << "\", \"qubits\": " << c.qubits
        << ", \"ranks\": " << c.ranks
        << ",\n     \"remap_on\": " << side(c.on)
        << ",\n     \"remap_off\": " << side(c.off)
        << ",\n     \"cross_rank_byte_ratio\": " << c.byte_ratio
        << ", \"cross_fidelity\": " << c.fidelity << "}"
        << (i + 1 < results.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) try {
  using namespace cqs;
  int qft_qubits = 20;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--qubits") {
      qft_qubits = std::atoi(next());
    } else if (arg == "--json") {
      json_path = next();
    } else {
      std::fprintf(stderr, "usage: %s [--qubits N] [--json PATH]\n",
                   argv[0]);
      return 2;
    }
  }

  if (json_path.empty()) return run_scaling_table();

  bench::print_header(
      "Figure 16 / Table 2 communication: cross-rank bytes, qubit remap "
      "on vs off");

  std::vector<RemapComparison> results;
  const auto qft = circuits::qft_circuit({.num_qubits = qft_qubits});
  const auto grover = circuits::grover_circuit(
      {.data_qubits = 8, .marked_state = 0b10110101, .iterations = 2});
  for (int ranks : {4, 8}) {
    results.push_back(compare_remap("qft", qft, ranks));
    print_remap(results.back());
    results.push_back(compare_remap("grover", grover, ranks));
    print_remap(results.back());
  }

  write_json(json_path, results);
  std::printf("wrote %s\n", json_path.c_str());

  // Acceptance gates. The QFT instance at 4 ranks is the headline number
  // (the ISSUE's >= 5x floor); every configuration must (a) keep the
  // final states identical up to codec tolerance (lossless here: 1.0 to
  // rounding) and (b) never move more bytes than the identity layout.
  bool ok = true;
  for (const RemapComparison& c : results) {
    if (!c.on.state.empty() && c.fidelity < 1.0 - 1e-12) {
      std::fprintf(stderr, "FAIL: %s@%d remap changed the state (%.12f)\n",
                   c.name.c_str(), c.ranks, c.fidelity);
      ok = false;
    }
    if (c.on.report.comm_bytes > c.off.report.comm_bytes) {
      std::fprintf(stderr, "FAIL: %s@%d remap moved MORE bytes\n",
                   c.name.c_str(), c.ranks);
      ok = false;
    }
  }
  const RemapComparison& headline = results.front();
  if (headline.byte_ratio < 5.0) {
    std::fprintf(stderr,
                 "FAIL: qft@4 cross-rank byte ratio %.2f < 5.0\n",
                 headline.byte_ratio);
    ok = false;
  }
  std::printf("%s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
} catch (const std::exception& e) {
  std::fprintf(stderr, "bench_fig16_strong_scaling: %s\n", e.what());
  return 1;
}
