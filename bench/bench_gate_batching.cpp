// Gate-run batching ablation: the compression-overhead discussion of the
// paper (codec time dominates per-gate simulation) measured head-to-head.
// For QFT, Grover, and supremacy circuits the same simulation runs once
// with the block-local gate-run scheduler on and once on the per-gate
// path, comparing codec invocation counts, lossy fidelity passes, wall
// time, and the final states (which must agree within codec tolerance).
//
//   $ ./bench_gate_batching [--qubits N] [--level L] [--json PATH]
//
// --qubits scales the QFT instance (default 20; Grover and supremacy stay
// at reduced sizes so the bench finishes quickly). --level pins the error
// ladder start (default 1, i.e. 1e-5 relative, so the lossy-pass
// amortization is visible). --json writes the measurements for CI's perf
// trajectory artifact. Exits nonzero if batching fails to cut codec
// invocations by >= 3x on QFT or the states disagree.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "circuits/grover.hpp"
#include "circuits/qft.hpp"
#include "circuits/supremacy.hpp"
#include "common/timer.hpp"
#include "core/simulator.hpp"
#include "qsim/state_vector.hpp"

namespace {

using cqs::core::CompressedStateSimulator;
using cqs::core::SimConfig;
using cqs::core::SimulationReport;

struct RunResult {
  SimulationReport report;
  double seconds = 0.0;
  std::vector<double> state;  // empty above the to_raw qubit limit
};

std::uint64_t codec_invocations(const SimulationReport& report) {
  return report.compress_invocations + report.decompress_invocations;
}

RunResult run_once(const cqs::qsim::Circuit& circuit, bool batching,
                   int level) {
  SimConfig config;
  config.num_qubits = circuit.num_qubits();
  config.num_ranks = 2;
  config.blocks_per_rank = 4;
  config.initial_level = level;
  config.enable_run_batching = batching;
  // The cache would absorb codec passes on structured circuits; disable it
  // so the comparison isolates what the scheduler saves.
  config.enable_cache = false;
  CompressedStateSimulator sim(config);
  cqs::WallTimer timer;
  sim.apply_circuit(circuit);
  RunResult result;
  result.seconds = timer.seconds();
  result.report = sim.report();  // snapshot before state queries decompress
  if (circuit.num_qubits() <= 26) result.state = sim.to_raw();
  return result;
}

struct Comparison {
  std::string name;
  int qubits = 0;
  RunResult batched;
  RunResult per_gate;
  double fidelity = 0.0;
  double codec_ratio = 0.0;
};

Comparison compare(const std::string& name,
                   const cqs::qsim::Circuit& circuit, int level) {
  Comparison cmp;
  cmp.name = name;
  cmp.qubits = circuit.num_qubits();
  cmp.batched = run_once(circuit, true, level);
  cmp.per_gate = run_once(circuit, false, level);
  cmp.fidelity = cqs::qsim::state_fidelity(cmp.batched.state,
                                           cmp.per_gate.state);
  cmp.codec_ratio =
      static_cast<double>(codec_invocations(cmp.per_gate.report)) /
      static_cast<double>(codec_invocations(cmp.batched.report));
  return cmp;
}

void print_comparison(const Comparison& cmp) {
  std::printf("%-10s %2dq  |", cmp.name.c_str(), cmp.qubits);
  std::printf(
      " codec calls %8llu -> %8llu (%.2fx)  | lossy passes %6llu -> %6llu"
      "  | runs %llu (avg %.1f gates)  | %.2fs -> %.2fs  | fidelity %.8f\n",
      static_cast<unsigned long long>(codec_invocations(cmp.per_gate.report)),
      static_cast<unsigned long long>(codec_invocations(cmp.batched.report)),
      cmp.codec_ratio,
      static_cast<unsigned long long>(cmp.per_gate.report.lossy_passes),
      static_cast<unsigned long long>(cmp.batched.report.lossy_passes),
      static_cast<unsigned long long>(cmp.batched.report.batched_runs),
      cmp.batched.report.gates_per_run(), cmp.per_gate.seconds,
      cmp.batched.seconds, cmp.fidelity);
}

void write_json(const std::string& path,
                const std::vector<Comparison>& results) {
  std::ofstream out(path, std::ios::trunc);
  out << "{\n  \"bench\": \"gate_batching\",\n  \"circuits\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const Comparison& c = results[i];
    const auto side = [&](const RunResult& r) {
      std::string s = "{\"compress\": " +
                      std::to_string(r.report.compress_invocations) +
                      ", \"decompress\": " +
                      std::to_string(r.report.decompress_invocations) +
                      ", \"lossy_passes\": " +
                      std::to_string(r.report.lossy_passes) +
                      ", \"runs\": " +
                      std::to_string(r.report.batched_runs) +
                      ", \"seconds\": " + std::to_string(r.seconds) + "}";
      return s;
    };
    out << "    {\"name\": \"" << c.name << "\", \"qubits\": " << c.qubits
        << ",\n     \"batched\": " << side(c.batched)
        << ",\n     \"per_gate\": " << side(c.per_gate)
        << ",\n     \"codec_invocation_ratio\": " << c.codec_ratio
        << ", \"cross_fidelity\": " << c.fidelity << "}"
        << (i + 1 < results.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) try {
  using namespace cqs;
  int qft_qubits = 20;
  int level = 1;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--qubits") {
      qft_qubits = std::atoi(next());
    } else if (arg == "--level") {
      level = std::atoi(next());
    } else if (arg == "--json") {
      json_path = next();
    } else {
      std::fprintf(stderr,
                   "usage: %s [--qubits N] [--level L] [--json PATH]\n",
                   argv[0]);
      return 2;
    }
  }

  bench::print_header(
      "Gate-run batching: codec passes per gate vs per block-local run");

  std::vector<Comparison> results;
  results.push_back(compare(
      "qft",
      circuits::qft_circuit({.num_qubits = qft_qubits,
                             .random_input = false}),
      level));
  print_comparison(results.back());
  results.push_back(compare(
      "grover",
      circuits::grover_circuit({.data_qubits = 6,
                                .marked_state = 0b101101,
                                .iterations = 2}),
      level));
  print_comparison(results.back());
  results.push_back(compare(
      "supremacy",
      circuits::supremacy_circuit({.rows = 3, .cols = 4, .depth = 11}),
      level));
  print_comparison(results.back());

  if (!json_path.empty()) {
    write_json(json_path, results);
    std::printf("wrote %s\n", json_path.c_str());
  }

  // The QFT acceptance gates: batching must amortize >= 3x and must not
  // change the state beyond codec tolerance. The tolerance mirrors
  // Eq. 11: both runs' bounds multiplied, minus slack for the per-gate
  // run's far larger accumulated (but bounded) pointwise error.
  const Comparison& qft = results.front();
  bool ok = true;
  if (qft.codec_ratio < 3.0) {
    std::fprintf(stderr, "FAIL: QFT codec invocation ratio %.2f < 3.0\n",
                 qft.codec_ratio);
    ok = false;
  }
  if (qft.batched.report.lossy_passes >= qft.per_gate.report.lossy_passes) {
    std::fprintf(stderr, "FAIL: batching did not reduce lossy passes\n");
    ok = false;
  }
  const double floor =
      qft.batched.report.fidelity_bound * qft.per_gate.report.fidelity_bound;
  if (!qft.batched.state.empty() && qft.fidelity < floor - 1e-9) {
    std::fprintf(stderr, "FAIL: cross fidelity %.12f below bound %.12f\n",
                 qft.fidelity, floor);
    ok = false;
  }
  std::printf("%s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
} catch (const std::exception& e) {
  std::fprintf(stderr, "bench_gate_batching: %s\n", e.what());
  return 1;
}
