// Figure 13 reproduction: why Solutions C/D produce lower, discrete
// compression errors — the bit-plane truncation ladder for the paper's
// example value 3.9921875, and the Eq. 12 significant-bit rule per bound.
#include <cmath>
#include <cstdio>
#include <cstring>

#include "bench_util.hpp"
#include "qzc/qzc.hpp"

int main() {
  using namespace cqs;
  bench::print_header(
      "Figure 13: discrete relative errors under bit-plane truncation");

  const double value = 3.9921875;
  std::printf("value = %.7f\n\n", value);
  std::printf("%14s %16s %16s\n", "mantissa bits", "truncated", "rel error");
  for (int m = 10; m >= 2; --m) {
    std::uint64_t u;
    std::memcpy(&u, &value, 8);
    u &= ~0ull << (52 - m);
    double t;
    std::memcpy(&t, &u, 8);
    std::printf("%14d %16.7f %16.6f\n", m, t, (value - t) / value);
  }

  std::printf("\nEq. 12 rule: Sig_Bit_Count = 12 (sign+exp) + ceil(-log2 "
              "eps) mantissa bits\n");
  std::printf("%10s %15s %22s\n", "bound", "mantissa bits",
              "worst-case rel error");
  for (double eps : bench::kBounds) {
    const int m = qzc::mantissa_bits_for_bound(eps);
    std::printf("%10.0e %15d %22.3e\n", eps, m,
                qzc::bound_for_mantissa_bits(m));
  }
  std::printf(
      "\nshape check (paper): truncation yields a discrete ladder of "
      "reconstruction values whose relative errors (0.00196, 0.0059, "
      "0.0137, ...) sit below the requested bound\n");
  return 0;
}
