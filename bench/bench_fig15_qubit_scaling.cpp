// Figure 15 reproduction: normalized execution time of single-node
// simulations as the qubit count grows. The paper sweeps 34-40 qubits
// with a per-qubit-Hadamard program; at reduced scale a bare Hadamard
// wall leaves the state sparse and the measurement noise-dominated, so we
// use the QAOA workload (dense state, same per-gate block machinery) and
// report per-gate time, normalized to the smallest size.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "circuits/qaoa.hpp"
#include "common/timer.hpp"
#include "core/simulator.hpp"

namespace {

double run_once(int n) {
  using namespace cqs;
  core::SimConfig config;
  config.num_qubits = n;
  config.num_ranks = 4;
  config.blocks_per_rank = 8;
  core::CompressedStateSimulator sim(config);
  const auto circuit = circuits::qaoa_maxcut_circuit({.num_qubits = n});
  WallTimer timer;
  sim.apply_circuit(circuit);
  return timer.seconds() / static_cast<double>(circuit.size());
}

}  // namespace

int main() {
  using namespace cqs;
  bench::print_header(
      "Figure 15: normalized per-gate time vs qubit count (single node)");

  run_once(14);  // warmup: thread pool + allocator
  std::vector<std::pair<int, double>> rows;
  for (int n = 14; n <= 20; ++n) {
    double best = 1e30;
    for (int rep = 0; rep < 2; ++rep) best = std::min(best, run_once(n));
    rows.emplace_back(n, best);
  }
  const double base = rows.front().second;
  std::printf("%10s %18s %18s\n", "qubits", "s/gate", "normalized");
  for (const auto& [n, spg] : rows) {
    std::printf("%10d %18.5f %17.1f%%\n", n, spg, 100.0 * spg / base);
  }
  std::printf(
      "\nshape check (paper): monotone growth with qubit count — their "
      "34->40 sweep spans 100%%..169%% (sub-2x per doubling because block "
      "parallelism absorbs part of the state growth); the same sublinear "
      "growth pattern should appear here until the state stops fitting in "
      "cache\n");
  return 0;
}
