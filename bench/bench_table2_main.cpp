// Table 2 reproduction: the paper's main results table — Grover, random
// circuit sampling, QAOA, and QFT simulations under tight memory budgets,
// reporting memory, time breakdown, time per gate, fidelity, and the
// minimum compression ratio. Qubit counts are reduced to one server; the
// budget-to-requirement percentages mirror the paper's "Sys Mem / Req"
// row (tiny for Grover, 37.5% / 18.75% for the dense workloads).
#include <cstdio>
#include <string>

#include "bench_util.hpp"
#include "circuits/grover.hpp"
#include "circuits/qaoa.hpp"
#include "circuits/qft.hpp"
#include "circuits/supremacy.hpp"
#include "common/timer.hpp"
#include "core/memory_model.hpp"
#include "core/simulator.hpp"
#include "qsim/state_vector.hpp"

namespace {

using namespace cqs;

struct Row {
  std::string name;
  qsim::Circuit circuit;
  double budget_fraction;  // of the raw 2^{n+4} requirement
};

void run_row(const Row& row) {
  const int n = row.circuit.num_qubits();
  const auto requirement = core::memory_required_bytes(n);
  core::SimConfig config;
  config.num_qubits = n;
  config.num_ranks = 4;
  config.blocks_per_rank = n >= 18 ? 16 : 8;
  config.memory_budget_bytes =
      static_cast<std::size_t>(row.budget_fraction *
                               static_cast<double>(requirement));
  core::CompressedStateSimulator sim(config);
  WallTimer timer;
  sim.apply_circuit(row.circuit);
  const double seconds = timer.seconds();
  const auto report = sim.report();

  // Measured fidelity against an uncompressed dense run (possible at the
  // reduced scale; the paper reports the analytic bound).
  qsim::StateVector reference(n);
  reference.apply_circuit(row.circuit);
  const double measured_fidelity =
      qsim::state_fidelity(reference.raw(), sim.to_raw());

  std::printf("%-14s %6d %10s %7zu %9s %8.1f%% %7.2f %8.3f ", row.name.c_str(),
              n, core::format_bytes(requirement).c_str(),
              row.circuit.size(),
              core::format_bytes(config.memory_budget_bytes).c_str(),
              100.0 * row.budget_fraction, seconds,
              report.seconds_per_gate());
  std::printf("%7.1f%% %7.1f%% %7.1f%% %7.1f%% ",
              100.0 * report.phase_fraction(Phase::kCompression),
              100.0 * report.phase_fraction(Phase::kDecompression),
              100.0 * report.phase_fraction(Phase::kCommunication),
              100.0 * report.phase_fraction(Phase::kComputation));
  std::printf("%8.4f %8.4f %10.2f%s\n", measured_fidelity,
              report.fidelity_bound, report.min_compression_ratio,
              report.budget_exceeded ? " [over budget]" : "");
}

}  // namespace

int main() {
  bench::print_header("Table 2: main simulation results (reduced scale)");
  std::printf(
      "%-14s %6s %10s %7s %9s %9s %7s %8s %8s %8s %8s %8s %8s %8s %10s\n",
      "benchmark", "qubits", "mem req", "gates", "budget", "bud/req",
      "time_s", "s/gate", "cmpr%", "dcmp%", "comm%", "comp%", "fid",
      "fid_bnd", "min_ratio");

  // Grover: the paper's flagship (61 qubits on 0.002% of the raw
  // requirement). Structured states compress enormously, so the budget is
  // set to 1% here.
  run_row({"grover_18", circuits::grover_circuit({.data_qubits = 10,
                                                  .marked_state = 0x25b}),
           0.01});
  run_row({"grover_16", circuits::grover_circuit({.data_qubits = 9,
                                                  .marked_state = 0x1a3}),
           0.01});

  // Random circuit sampling at depth 11 (paper: 5x9..7x5 grids, 37.5%).
  run_row({"sup_4x4",
           circuits::supremacy_circuit({.rows = 4, .cols = 4, .depth = 11}),
           0.375});
  run_row({"sup_3x5",
           circuits::supremacy_circuit({.rows = 3, .cols = 5, .depth = 11}),
           0.1875});

  // QAOA MAXCUT on random 4-regular graphs (paper: 42-45 qubits, 37.5%).
  run_row({"qaoa_18", circuits::qaoa_maxcut_circuit({.num_qubits = 18}),
           0.375});
  run_row({"qaoa_16", circuits::qaoa_maxcut_circuit({.num_qubits = 16}),
           0.375});

  // QFT, the deep circuit (paper: 36 qubits, 18.75%, 3258 gates).
  run_row({"qft_16", circuits::qft_circuit({.num_qubits = 16}), 0.1875});

  std::printf(
      "\nshape check (paper): Grover fits in a vanishing fraction of the "
      "requirement at ratios >> 100x with fidelity ~1; supremacy circuits "
      "are the hardest (ratios 5-10x, fidelity dips under tight budgets); "
      "QAOA and QFT sit in between with high fidelity; compression + "
      "decompression dominate the dense workloads' time while Grover is "
      "computation/communication bound\n");
  return 0;
}
