// Table 2 reproduction: the paper's main results table — Grover, random
// circuit sampling, QAOA, and QFT simulations under tight memory budgets,
// reporting memory, time breakdown, time per gate, fidelity, and the
// minimum compression ratio. Qubit counts are reduced to one server; the
// budget-to-requirement percentages mirror the paper's "Sys Mem / Req"
// row (tiny for Grover, 37.5% / 18.75% for the dense workloads).
//
//   $ ./bench_table2_main [--small] [--json PATH]
//
// After the table, every row reruns as a pipeline+SIMD ablation at two
// worker threads: overlapped executor + vector kernels on vs both off.
// States must stay bit-identical (the pipeline only reorders which worker
// touches a block; the SIMD kernels issue the same IEEE ops) — any drift
// exits nonzero. On multi-core hosts the run also fails if the pipeline
// engaged but showed no stage activity at all (zero prefetches AND zero
// stalls on every row — the overlap machinery silently degraded).
// --small shrinks the instances for the CI bench-smoke job; --json writes
// the measurements (including the report's stage_overlap_utilization and
// pipeline_stalls) for the BENCH_table2_main.json artifact.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "circuits/grover.hpp"
#include "circuits/qaoa.hpp"
#include "circuits/qft.hpp"
#include "circuits/supremacy.hpp"
#include "common/timer.hpp"
#include "core/memory_model.hpp"
#include "core/simulator.hpp"
#include "qsim/state_vector.hpp"

namespace {

using namespace cqs;

struct Row {
  std::string name;
  qsim::Circuit circuit;
  double budget_fraction;  // of the raw 2^{n+4} requirement
};

struct AblationResult {
  std::string name;
  int qubits = 0;
  std::size_t gates = 0;
  double seconds_on = 0.0;   // pipeline + SIMD kernels
  double seconds_off = 0.0;  // sequential executor + scalar kernels
  bool state_identical = false;
  std::string simd_kernel;
  double stage_overlap_utilization = 0.0;
  std::uint64_t pipeline_blocks = 0;
  std::uint64_t pipeline_prefetched = 0;
  std::uint64_t pipeline_stalls = 0;

  double speedup() const {
    return seconds_on > 0.0 ? seconds_off / seconds_on : 0.0;
  }
};

core::SimConfig row_config(const Row& row) {
  const int n = row.circuit.num_qubits();
  core::SimConfig config;
  config.num_qubits = n;
  config.num_ranks = 4;
  config.blocks_per_rank = n >= 18 ? 16 : 8;
  config.memory_budget_bytes = static_cast<std::size_t>(
      row.budget_fraction *
      static_cast<double>(core::memory_required_bytes(n)));
  return config;
}

void run_row(const Row& row) {
  const int n = row.circuit.num_qubits();
  const auto requirement = core::memory_required_bytes(n);
  const core::SimConfig config = row_config(row);
  core::CompressedStateSimulator sim(config);
  WallTimer timer;
  sim.apply_circuit(row.circuit);
  const double seconds = timer.seconds();
  const auto report = sim.report();

  // Measured fidelity against an uncompressed dense run (possible at the
  // reduced scale; the paper reports the analytic bound).
  qsim::StateVector reference(n);
  reference.apply_circuit(row.circuit);
  const double measured_fidelity =
      qsim::state_fidelity(reference.raw(), sim.to_raw());

  std::printf("%-14s %6d %10s %7zu %9s %8.1f%% %7.2f %8.3f ", row.name.c_str(),
              n, core::format_bytes(requirement).c_str(),
              row.circuit.size(),
              core::format_bytes(config.memory_budget_bytes).c_str(),
              100.0 * row.budget_fraction, seconds,
              report.seconds_per_gate());
  std::printf("%7.1f%% %7.1f%% %7.1f%% %7.1f%% ",
              100.0 * report.phase_fraction(Phase::kCompression),
              100.0 * report.phase_fraction(Phase::kDecompression),
              100.0 * report.phase_fraction(Phase::kCommunication),
              100.0 * report.phase_fraction(Phase::kComputation));
  std::printf("%8.4f %8.4f %10.2f%s\n", measured_fidelity,
              report.fidelity_bound, report.min_compression_ratio,
              report.budget_exceeded ? " [over budget]" : "");
}

AblationResult run_ablation(const Row& row) {
  AblationResult result;
  result.name = row.name;
  result.qubits = row.circuit.num_qubits();
  result.gates = row.circuit.size();

  auto run_once = [&](bool overlapped) {
    core::SimConfig config = row_config(row);
    config.threads = 2;  // the pipeline needs >= 2 workers to engage
    config.enable_pipeline = overlapped;
    config.enable_simd_kernels = overlapped;
    core::CompressedStateSimulator sim(config);
    WallTimer timer;
    sim.apply_circuit(row.circuit);
    const double seconds = timer.seconds();
    return std::make_tuple(seconds, sim.report(), sim.to_raw());
  };

  const auto [seconds_on, report_on, state_on] = run_once(true);
  const auto [seconds_off, report_off, state_off] = run_once(false);
  result.seconds_on = seconds_on;
  result.seconds_off = seconds_off;
  result.state_identical = state_on == state_off;
  result.simd_kernel = report_on.simd_kernel;
  result.stage_overlap_utilization = report_on.stage_overlap_utilization();
  result.pipeline_blocks = report_on.pipeline_blocks;
  result.pipeline_prefetched = report_on.pipeline_prefetched;
  result.pipeline_stalls = report_on.pipeline_stalls;
  return result;
}

void print_ablation(const AblationResult& r) {
  std::printf(
      "%-14s %6d  %7.2fs -> %7.2fs (%4.2fx)  overlap %5.1f%% "
      "(%llu/%llu blocks, %llu stalls)  kernels %-6s  state %s\n",
      r.name.c_str(), r.qubits, r.seconds_off, r.seconds_on, r.speedup(),
      100.0 * r.stage_overlap_utilization,
      static_cast<unsigned long long>(r.pipeline_prefetched),
      static_cast<unsigned long long>(r.pipeline_blocks),
      static_cast<unsigned long long>(r.pipeline_stalls),
      r.simd_kernel.c_str(),
      r.state_identical ? "bit-identical" : "DRIFTED");
}

void write_json(const std::string& path,
                const std::vector<AblationResult>& results) {
  std::ofstream out(path, std::ios::trunc);
  out << "{\n  \"bench\": \"table2_main\",\n  \"rows\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const AblationResult& r = results[i];
    out << "    {\"name\": \"" << r.name << "\", \"qubits\": " << r.qubits
        << ", \"gates\": " << r.gates
        << ",\n     \"seconds_off\": " << r.seconds_off
        << ", \"seconds_on\": " << r.seconds_on
        << ", \"speedup\": " << r.speedup()
        << ",\n     \"simd_kernel\": \"" << r.simd_kernel
        << "\", \"stage_overlap_utilization\": "
        << r.stage_overlap_utilization
        << ",\n     \"pipeline_blocks\": " << r.pipeline_blocks
        << ", \"pipeline_prefetched\": " << r.pipeline_prefetched
        << ", \"pipeline_stalls\": " << r.pipeline_stalls
        << ",\n     \"state_identical\": "
        << (r.state_identical ? "true" : "false") << "}"
        << (i + 1 < results.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) try {
  bool small = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--small") {
      small = true;
    } else if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--small] [--json PATH]\n", argv[0]);
      return 2;
    }
  }

  bench::print_header("Table 2: main simulation results (reduced scale)");
  std::printf(
      "%-14s %6s %10s %7s %9s %9s %7s %8s %8s %8s %8s %8s %8s %8s %10s\n",
      "benchmark", "qubits", "mem req", "gates", "budget", "bud/req",
      "time_s", "s/gate", "cmpr%", "dcmp%", "comm%", "comp%", "fid",
      "fid_bnd", "min_ratio");

  std::vector<Row> rows;
  if (small) {
    // CI bench-smoke sizes: same four workload families, minutes -> seconds.
    rows.push_back({"grover_14",
                    circuits::grover_circuit({.data_qubits = 8,
                                              .marked_state = 0xa3}),
                    0.01});
    rows.push_back({"sup_3x4",
                    circuits::supremacy_circuit(
                        {.rows = 3, .cols = 4, .depth = 8}),
                    0.375});
    rows.push_back({"qaoa_13",
                    circuits::qaoa_maxcut_circuit({.num_qubits = 13}),
                    0.375});
    rows.push_back({"qft_13", circuits::qft_circuit({.num_qubits = 13}),
                    0.1875});
  } else {
    // Grover: the paper's flagship (61 qubits on 0.002% of the raw
    // requirement). Structured states compress enormously, so the budget
    // is set to 1% here.
    rows.push_back({"grover_18",
                    circuits::grover_circuit({.data_qubits = 10,
                                              .marked_state = 0x25b}),
                    0.01});
    rows.push_back({"grover_16",
                    circuits::grover_circuit({.data_qubits = 9,
                                              .marked_state = 0x1a3}),
                    0.01});
    // Random circuit sampling at depth 11 (paper: 5x9..7x5 grids, 37.5%).
    rows.push_back({"sup_4x4",
                    circuits::supremacy_circuit(
                        {.rows = 4, .cols = 4, .depth = 11}),
                    0.375});
    rows.push_back({"sup_3x5",
                    circuits::supremacy_circuit(
                        {.rows = 3, .cols = 5, .depth = 11}),
                    0.1875});
    // QAOA MAXCUT on random 4-regular graphs (paper: 42-45 qubits, 37.5%).
    rows.push_back({"qaoa_18",
                    circuits::qaoa_maxcut_circuit({.num_qubits = 18}),
                    0.375});
    rows.push_back({"qaoa_16",
                    circuits::qaoa_maxcut_circuit({.num_qubits = 16}),
                    0.375});
    // QFT, the deep circuit (paper: 36 qubits, 18.75%, 3258 gates).
    rows.push_back({"qft_16", circuits::qft_circuit({.num_qubits = 16}),
                    0.1875});
  }

  for (const Row& row : rows) run_row(row);

  if (!small) {
    std::printf(
        "\nshape check (paper): Grover fits in a vanishing fraction of the "
        "requirement at ratios >> 100x with fidelity ~1; supremacy circuits "
        "are the hardest (ratios 5-10x, fidelity dips under tight budgets); "
        "QAOA and QFT sit in between with high fidelity; compression + "
        "decompression dominate the dense workloads' time while Grover is "
        "computation/communication bound\n");
  }

  bench::print_header(
      "Pipeline + SIMD ablation (2 workers, on vs off, bit-identity gated)");
  std::vector<AblationResult> ablation;
  for (const Row& row : rows) {
    ablation.push_back(run_ablation(row));
    print_ablation(ablation.back());
  }

  if (!json_path.empty()) {
    write_json(json_path, ablation);
    std::printf("wrote %s\n", json_path.c_str());
  }

  bool failed = false;
  for (const AblationResult& r : ablation) {
    if (!r.state_identical) {
      std::fprintf(stderr,
                   "FAIL: %s state drifted between pipeline+SIMD on and "
                   "off (must be bit-identical)\n",
                   r.name.c_str());
      failed = true;
    }
    if (r.pipeline_blocks == 0) {
      std::fprintf(stderr,
                   "FAIL: %s configured the pipeline at 2 workers but no "
                   "block went through the overlapped executor\n",
                   r.name.c_str());
      failed = true;
    }
  }
  // Stage-overlap regression gate: on a real multi-core host, a bench-wide
  // total absence of cross-worker prefetches AND stalls means the overlap
  // machinery silently stopped overlapping. Single-core hosts (where the
  // two workers timeshare one CPU) only enforce the structural gates above.
  if (std::thread::hardware_concurrency() >= 2) {
    bool any_activity = false;
    for (const AblationResult& r : ablation) {
      if (r.pipeline_prefetched > 0 || r.pipeline_stalls > 0) {
        any_activity = true;
      }
    }
    if (!any_activity) {
      std::fprintf(stderr,
                   "FAIL: no stage overlap activity on any row "
                   "(utilization and stalls all zero on a multi-core "
                   "host)\n");
      failed = true;
    }
  }
  return failed ? 1 : 0;
} catch (const std::exception& e) {
  std::fprintf(stderr, "bench_table2_main: %s\n", e.what());
  return 1;
}
