// Section 6 future-work study: "the errors might be used to further
// simulate noise on real devices". Compares the fidelity decay of
// (a) conventional Monte-Carlo Pauli noise at gate error probability p
// against (b) lossy compression at error level delta, on the same QAOA
// workload — the empirical basis for mapping compression levels onto
// device noise rates.
#include <cstdio>

#include "bench_util.hpp"
#include "circuits/qaoa.hpp"
#include "common/rng.hpp"
#include "core/simulator.hpp"
#include "qsim/noise.hpp"
#include "qsim/state_vector.hpp"

namespace {

using namespace cqs;

constexpr int kQubits = 12;

double noisy_trajectory_fidelity(const qsim::Circuit& circuit, double p,
                                 int trials) {
  qsim::StateVector ideal(kQubits);
  ideal.apply_circuit(circuit);
  Rng rng(404);
  double sum = 0.0;
  for (int t = 0; t < trials; ++t) {
    qsim::StateVector noisy(kQubits);
    noisy.apply_circuit(
        qsim::sample_noisy_trajectory(circuit, {p, p}, rng));
    sum += ideal.fidelity(noisy);
  }
  return sum / trials;
}

double lossy_compression_fidelity(const qsim::Circuit& circuit, int level) {
  core::SimConfig config;
  config.num_qubits = kQubits;
  config.num_ranks = 2;
  config.blocks_per_rank = 8;
  config.initial_level = level;
  core::CompressedStateSimulator sim(config);
  sim.apply_circuit(circuit);
  qsim::StateVector ideal(kQubits);
  ideal.apply_circuit(circuit);
  return qsim::state_fidelity(ideal.raw(), sim.to_raw());
}

}  // namespace

int main() {
  bench::print_header(
      "Noise study (Section 6): gate noise vs lossy-compression noise");
  const auto circuit =
      circuits::qaoa_maxcut_circuit({.num_qubits = kQubits});
  std::printf("workload: %d-qubit QAOA, %zu gates\n\n", kQubits,
              circuit.size());

  std::printf("(a) Monte-Carlo Pauli noise (20 trajectories)\n");
  std::printf("%14s %14s\n", "p per gate", "mean fidelity");
  for (double p : {1e-4, 1e-3, 1e-2}) {
    std::printf("%14.0e %14.4f\n", p,
                noisy_trajectory_fidelity(circuit, p, 20));
  }

  std::printf("\n(b) lossy compression noise (error ladder levels)\n");
  std::printf("%14s %14s\n", "bound", "fidelity");
  const double ladder[] = {1e-5, 1e-4, 1e-3, 1e-2, 1e-1};
  for (int level = 1; level <= 5; ++level) {
    std::printf("%14.0e %14.4f\n", ladder[level - 1],
                lossy_compression_fidelity(circuit, level));
  }
  std::printf(
      "\nreading: a compression level delta behaves like a uniform "
      "weak-noise channel; matching rows of (a) and (b) gives the "
      "equivalent device error rate a compressed simulation models 'for "
      "free' — the paper's proposed natural noise modeling\n");
  return 0;
}
