// Figure 10 reproduction: compression ratios of the four candidate lossy
// pipelines of Section 4.2 (Solution A = SZ 2.1, B = SZ with complex
// support, C = XOR lead + bit-plane truncation + Zstd, D = reshuffle + C)
// under pointwise relative bounds.
#include <cstdio>

#include "bench_util.hpp"
#include "compression/compressor.hpp"

namespace {

void run(const char* name, std::span<const double> data) {
  using namespace cqs;
  const char* codecs[] = {"sz", "sz-complex", "qzc", "qzc-shuffle"};
  const char* labels[] = {"Sol.A", "Sol.B", "Sol.C", "Sol.D"};
  std::printf("\n--- %s ---\n", name);
  std::printf("%10s %10s %10s %10s %10s\n", "bound", labels[0], labels[1],
              labels[2], labels[3]);
  for (double eps : bench::kBounds) {
    std::printf("%10.0e", eps);
    for (const char* codec_name : codecs) {
      const auto codec = compression::make_compressor(codec_name);
      const auto bytes =
          codec->compress(data, compression::ErrorBound::relative(eps));
      std::printf(" %10.2f", bench::ratio_of(data, bytes.size()));
    }
    std::printf("\n");
  }
}

}  // namespace

int main() {
  using namespace cqs;
  bench::print_header("Figure 10: compression ratio of Solutions A-D "
                      "(pointwise relative bounds)");
  run("qaoa_18", bench::qaoa_data());
  run("sup_16", bench::sup_data());
  std::printf(
      "\nshape check (paper): Solutions C/D beat A/B by ~30-50%% on these "
      "spiky datasets; C and D are within a few percent of each other\n");
  return 0;
}
