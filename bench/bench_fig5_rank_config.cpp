// Figure 5 reproduction: normalized execution time of a random-circuit
// simulation across rank x thread configurations with a fixed product
// (the paper sweeps 8x32 .. 256x1 on a KNL node; we sweep the same shape
// scaled to one server: ranks * threads = 16).
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "circuits/supremacy.hpp"
#include "common/timer.hpp"
#include "core/simulator.hpp"

int main() {
  using namespace cqs;
  bench::print_header(
      "Figure 5: normalized execution time vs ranks x threads "
      "(random circuit)");

  const auto circuit =
      circuits::supremacy_circuit({.rows = 3, .cols = 6, .depth = 8});
  struct Config {
    int ranks;
    int threads;
  };
  const Config configs[] = {{1, 16}, {2, 8}, {4, 4}, {8, 2}, {16, 1}};
  std::vector<double> seconds;
  for (const auto& [ranks, threads] : configs) {
    core::SimConfig config;
    config.num_qubits = 18;
    config.num_ranks = ranks;
    config.blocks_per_rank = 64 / ranks;  // fixed total block count
    config.threads = threads;
    core::CompressedStateSimulator sim(config);
    WallTimer timer;
    sim.apply_circuit(circuit);
    seconds.push_back(timer.seconds());
  }
  double worst = 0.0;
  for (double s : seconds) worst = std::max(worst, s);
  std::printf("%12s %12s %16s\n", "ranks", "threads", "normalized time");
  for (std::size_t i = 0; i < seconds.size(); ++i) {
    std::printf("%12d %12d %15.1f%%\n", configs[i].ranks,
                configs[i].threads, 100.0 * seconds[i] / worst);
  }
  std::printf(
      "\nshape check (paper): the paper's MPI ranks are the unit of real "
      "parallelism on KNL, so more ranks win (best: 128 ranks x 2 threads "
      "at ~19%% of the worst). In this in-process runtime the roles are "
      "mirrored — worker threads are the real parallelism and ranks only "
      "add exchange bookkeeping — so the ordering flips while reproducing "
      "the same monotone sensitivity to the rank/thread split.\n");
  return 0;
}
