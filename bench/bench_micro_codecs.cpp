// Codec hot-path micro benchmark, two modes:
//
//   (default)      google-benchmark suite over every registry codec:
//                  compression and decompression throughput on the qaoa_18
//                  snapshot and an early-simulation sparse state, in both
//                  the scratch-less and the scratch-pooled (steady-state
//                  hot path) variants.
//
//   --json PATH    CI gate: verifies every golden-blob digest (the
//                  unchanged-bitstream guarantee) through BOTH compress
//                  paths, measures scratch-path round-trip rates, writes
//                  the measurements as a JSON artifact, and exits nonzero
//                  on any hash drift.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "circuits/datasets.hpp"
#include "compression/codec_scratch.hpp"
#include "compression/golden_blobs.hpp"

namespace {

using namespace cqs;

const std::vector<double>& sparse_data() {
  static const std::vector<double> data = circuits::sparse_dataset(10, 4);
  return data;
}

compression::ErrorBound bound_for(const compression::Compressor& codec) {
  return codec.supports(compression::BoundMode::kPointwiseRelative)
             ? compression::ErrorBound::relative(1e-3)
             : compression::ErrorBound::lossless();
}

void BM_Compress(benchmark::State& state, const std::string& name,
                 const std::vector<double>& data) {
  const auto codec = compression::make_compressor(name);
  const auto bound = bound_for(*codec);
  std::size_t compressed_size = 0;
  for (auto _ : state) {
    const auto compressed = codec->compress(data, bound);
    compressed_size = compressed.size();
    benchmark::DoNotOptimize(compressed.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(data.size() * 8));
  state.counters["ratio"] =
      static_cast<double>(data.size() * 8) /
      static_cast<double>(compressed_size);
}

void BM_CompressScratch(benchmark::State& state, const std::string& name,
                        const std::vector<double>& data) {
  const auto codec = compression::make_compressor(name);
  const auto bound = bound_for(*codec);
  compression::CodecScratch scratch;
  std::size_t compressed_size = 0;
  for (auto _ : state) {
    const auto compressed = codec->compress(data, bound, scratch);
    compressed_size = compressed.size();
    benchmark::DoNotOptimize(compressed.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(data.size() * 8));
  state.counters["ratio"] =
      static_cast<double>(data.size() * 8) /
      static_cast<double>(compressed_size);
}

void BM_Decompress(benchmark::State& state, const std::string& name,
                   const std::vector<double>& data) {
  const auto codec = compression::make_compressor(name);
  const auto compressed = codec->compress(data, bound_for(*codec));
  std::vector<double> out(data.size());
  for (auto _ : state) {
    codec->decompress(compressed, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(data.size() * 8));
}

void BM_DecompressScratch(benchmark::State& state, const std::string& name,
                          const std::vector<double>& data) {
  const auto codec = compression::make_compressor(name);
  const auto compressed = codec->compress(data, bound_for(*codec));
  compression::CodecScratch scratch;
  std::vector<double> out(data.size());
  for (auto _ : state) {
    codec->decompress(compressed, out, scratch);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(data.size() * 8));
}

// ---- --json CI mode ------------------------------------------------------

struct RateRow {
  std::string codec;
  std::string dataset;
  double compress_mb_per_s = 0.0;
  double decompress_mb_per_s = 0.0;
  double ratio = 0.0;
};

/// Scratch-path round trip through bench_util's shared timing protocol,
/// with one warm pass so the pools reach their steady state first.
RateRow measure_scratch_rate(const std::string& name,
                             const std::string& dataset,
                             std::span<const double> data) {
  const auto codec = compression::make_compressor(name);
  const auto bound = bound_for(*codec);
  compression::CodecScratch scratch;
  {
    const Bytes warm = codec->compress(data, bound, scratch);
    std::vector<double> out(data.size());
    codec->decompress(warm, out, scratch);
  }
  const bench::RateResult rate = bench::measure_rate_with(
      data, [&] { return codec->compress(data, bound, scratch); },
      [&](const Bytes& compressed, std::span<double> out) {
        codec->decompress(compressed, out, scratch);
      },
      /*repeats=*/5);
  return {name, dataset, rate.compress_mb_per_s, rate.decompress_mb_per_s,
          rate.ratio};
}

int run_ci_gate(const std::string& json_path) {
  bench::print_header(
      "Codec micro bench: golden-blob drift gate + scratch-path rates");

  // 1. The unchanged-bitstream guarantee, through both compress paths.
  int drifted = 0;
  compression::CodecScratch scratch;
  for (const auto& blob : compression::kGoldenBlobs) {
    const std::string plain = compression::golden_blob_hash(blob);
    const std::string pooled = compression::golden_blob_hash(blob, &scratch);
    if (plain != blob.sha256 || pooled != blob.sha256) {
      std::fprintf(stderr,
                   "DRIFT %s/%s/%s: want %s got %s (scratch %s)\n",
                   blob.codec, blob.mode, blob.fixture, blob.sha256,
                   plain.c_str(), pooled.c_str());
      ++drifted;
    }
  }
  std::printf("golden blobs: %d drifted of %zu\n", drifted,
              std::size(compression::kGoldenBlobs));

  // 2. Scratch-path throughput per codec on the two standard datasets.
  std::vector<RateRow> rows;
  for (const auto& name : compression::compressor_names()) {
    rows.push_back(measure_scratch_rate(name, "qaoa18", bench::qaoa_data()));
    rows.push_back(measure_scratch_rate(name, "sparse", sparse_data()));
  }
  std::printf("%-12s %-8s %12s %12s %8s\n", "codec", "dataset",
              "comp MB/s", "decomp MB/s", "ratio");
  for (const auto& row : rows) {
    std::printf("%-12s %-8s %12.1f %12.1f %8.2f\n", row.codec.c_str(),
                row.dataset.c_str(), row.compress_mb_per_s,
                row.decompress_mb_per_s, row.ratio);
  }

  std::FILE* f = std::fopen(json_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 2;
  }
  std::fprintf(f, "{\n  \"golden_blobs_total\": %zu,\n",
               std::size(compression::kGoldenBlobs));
  std::fprintf(f, "  \"golden_blobs_drifted\": %d,\n", drifted);
  std::fprintf(f, "  \"rates\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& row = rows[i];
    std::fprintf(f,
                 "    {\"codec\": \"%s\", \"dataset\": \"%s\", "
                 "\"compress_mb_per_s\": %.1f, "
                 "\"decompress_mb_per_s\": %.1f, \"ratio\": %.3f}%s\n",
                 row.codec.c_str(), row.dataset.c_str(),
                 row.compress_mb_per_s, row.decompress_mb_per_s, row.ratio,
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", json_path.c_str());

  if (drifted > 0) {
    std::fprintf(stderr,
                 "FAIL: %d compressed bitstream(s) drifted from the golden "
                 "digests — checkpoints and cache keys would break\n",
                 drifted);
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--json") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--json needs a value\n");
        return 2;
      }
      return run_ci_gate(argv[i + 1]);
    }
  }

  for (const auto& name : compression::compressor_names()) {
    benchmark::RegisterBenchmark(("compress/" + name + "/qaoa18").c_str(),
                                 BM_Compress, name, bench::qaoa_data());
    benchmark::RegisterBenchmark(
        ("compress-scratch/" + name + "/qaoa18").c_str(), BM_CompressScratch,
        name, bench::qaoa_data());
    benchmark::RegisterBenchmark(("decompress/" + name + "/qaoa18").c_str(),
                                 BM_Decompress, name, bench::qaoa_data());
    benchmark::RegisterBenchmark(
        ("decompress-scratch/" + name + "/qaoa18").c_str(),
        BM_DecompressScratch, name, bench::qaoa_data());
    benchmark::RegisterBenchmark(("compress/" + name + "/sparse").c_str(),
                                 BM_Compress, name, sparse_data());
    benchmark::RegisterBenchmark(
        ("compress-scratch/" + name + "/sparse").c_str(), BM_CompressScratch,
        name, sparse_data());
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
