// Codec hot-path micro benchmark, two modes:
//
//   (default)      google-benchmark suite over every registry codec:
//                  compression and decompression throughput on the qaoa_18
//                  snapshot and an early-simulation sparse state, in both
//                  the scratch-less and the scratch-pooled (steady-state
//                  hot path) variants.
//
//   --json PATH    CI gate: verifies every golden-blob digest (the
//                  unchanged-bitstream guarantee) through BOTH compress
//                  paths, measures scratch-path round-trip rates, writes
//                  the measurements as a JSON artifact, and exits nonzero
//                  on any hash drift.
#include <benchmark/benchmark.h>

#include <array>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <span>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "circuits/datasets.hpp"
#include "common/bits.hpp"
#include "compression/codec_scratch.hpp"
#include "compression/golden_blobs.hpp"
#include "lossless/zx.hpp"
#include "zfp/zfp.hpp"

namespace {

using namespace cqs;

// ---- Frozen seed-reference zfp compressor --------------------------------
//
// A verbatim copy of the per-bit zfp compress path as it stood at the seed
// baseline, before the word-wide plane coder landed. It exists for two CI
// duties in --json mode:
//   1. byte-identity: the production coder must emit the exact bitstream
//      this reference emits (the golden-blob guarantee, but exercised on
//      full benchmark datasets rather than 4 KB fixtures), and
//   2. a throughput floor: production zfp compress must not fall below
//      this baseline at equal error bounds (the PR 4 regression gate).
// Do not "improve" this code — its whole value is staying frozen.
namespace seed_ref {

constexpr std::byte kMagic0{'Z'};
constexpr std::byte kMagic1{'F'};
constexpr std::uint8_t kFlagRelative = 1;
constexpr int kTotalPlanes = zfp::kTotalPlanes;
constexpr int kFixedExp = 58;
constexpr int kEmaxBias = 1100;
constexpr std::uint64_t kNegabinaryMask = 0xaaaaaaaaaaaaaaaaull;

inline std::uint64_t int_to_negabinary(std::int64_t q) {
  return (static_cast<std::uint64_t>(q) + kNegabinaryMask) ^ kNegabinaryMask;
}

inline void forward_transform(std::array<std::int64_t, 4>& v) {
  const std::int64_t d1 = v[0] - v[1];
  const std::int64_t s1 = v[1] + (d1 >> 1);
  const std::int64_t d2 = v[2] - v[3];
  const std::int64_t s2 = v[3] + (d2 >> 1);
  const std::int64_t ds = s1 - s2;
  const std::int64_t ss = s2 + (ds >> 1);
  v = {ss, ds, d1, d2};
}

int planes_for_tolerance(double tolerance, int emax) {
  const double ulp = std::ldexp(1.0, emax - kFixedExp);
  if (!(tolerance > 0.0)) return kTotalPlanes;
  const int p =
      static_cast<int>(std::floor(std::log2(tolerance / ulp))) - 3;
  return std::clamp(kTotalPlanes - p, 0, kTotalPlanes);
}

void encode_block(BitWriter& writer, const std::array<std::uint64_t, 4>& u,
                  int kept) {
  std::array<bool, 4> significant{};
  for (int plane = kTotalPlanes - 1; plane >= kTotalPlanes - kept; --plane) {
    for (int i = 0; i < 4; ++i) {
      if (significant[i]) writer.write_bit((u[i] >> plane) & 1u);
    }
    std::uint64_t group = 0;
    for (int i = 0; i < 4; ++i) {
      if (!significant[i]) group |= (u[i] >> plane) & 1u;
    }
    bool any_insignificant = !(significant[0] && significant[1] &&
                               significant[2] && significant[3]);
    if (!any_insignificant) continue;
    writer.write_bit(group);
    if (group != 0) {
      for (int i = 0; i < 4; ++i) {
        if (significant[i]) continue;
        const std::uint64_t bit = (u[i] >> plane) & 1u;
        writer.write_bit(bit);
        if (bit) significant[i] = true;
      }
    }
  }
}

void compress_absolute_into(std::span<const double> data, double tolerance,
                            std::uint8_t flags, Bytes& out) {
  out.push_back(kMagic0);
  out.push_back(kMagic1);
  out.push_back(static_cast<std::byte>(flags));
  put_varint(out, data.size());

  BitWriter writer(out);
  for (std::size_t base = 0; base < data.size(); base += 4) {
    std::array<double, 4> block{};
    const std::size_t have = std::min<std::size_t>(4, data.size() - base);
    for (std::size_t i = 0; i < have; ++i) block[i] = data[base + i];

    double amax = 0.0;
    for (double d : block) amax = std::max(amax, std::abs(d));
    if (amax == 0.0) {
      writer.write_bit(1);
      continue;
    }
    writer.write_bit(0);
    const int emax = std::ilogb(amax);
    const int kept = planes_for_tolerance(tolerance, emax);
    writer.write(static_cast<std::uint64_t>(emax + kEmaxBias), 12);
    writer.write(static_cast<std::uint64_t>(kept), 6);

    std::array<std::int64_t, 4> fixed{};
    const double scale = std::ldexp(1.0, kFixedExp - emax);
    for (int i = 0; i < 4; ++i) {
      fixed[i] = static_cast<std::int64_t>(std::llround(block[i] * scale));
    }
    forward_transform(fixed);
    std::array<std::uint64_t, 4> u{};
    for (int i = 0; i < 4; ++i) u[i] = int_to_negabinary(fixed[i]);
    encode_block(writer, u, kept);
  }
  writer.flush();
}

Bytes compress(std::span<const double> data,
               const compression::ErrorBound& bound,
               compression::CodecScratch& scratch) {
  Bytes& out = scratch.packed;
  out.clear();
  if (bound.mode == compression::BoundMode::kAbsolute) {
    compress_absolute_into(data, bound.value, 0, out);
    return Bytes(out.begin(), out.end());
  }

  const double log_bound = std::log2(1.0 + bound.value);
  auto& logs = scratch.values;
  logs.clear();
  logs.reserve(data.size());
  auto& negative = scratch.mask_a;
  auto& special = scratch.mask_b;
  negative.assign(data.size(), false);
  special.assign(data.size(), false);
  Bytes& special_values = scratch.special_bytes;
  special_values.clear();
  for (std::size_t i = 0; i < data.size(); ++i) {
    const double d = data[i];
    negative[i] = std::signbit(d);
    if (d == 0.0 || !std::isfinite(d)) {
      special[i] = true;
      put_scalar(special_values, d);
      logs.push_back(0.0);
    } else {
      logs.push_back(std::log2(std::abs(d)));
    }
  }
  Bytes& inner = scratch.codes;
  inner.clear();
  compress_absolute_into(logs, log_bound, kFlagRelative, inner);

  Bytes& sides = scratch.payload;
  sides.clear();
  write_bitmask(sides, negative);
  write_bitmask(sides, special);
  put_varint(sides, special_values.size() / sizeof(double));
  sides.insert(sides.end(), special_values.begin(), special_values.end());

  out.push_back(kMagic0);
  out.push_back(kMagic1);
  out.push_back(static_cast<std::byte>(kFlagRelative));
  put_varint(out, data.size());
  put_varint(out, inner.size());
  out.insert(out.end(), inner.begin(), inner.end());
  lossless::zx_compress_into(sides, {}, scratch.zx, out);
  return Bytes(out.begin(), out.end());
}

}  // namespace seed_ref

const std::vector<double>& sparse_data() {
  static const std::vector<double> data = circuits::sparse_dataset(10, 4);
  return data;
}

compression::ErrorBound bound_for(const compression::Compressor& codec) {
  return codec.supports(compression::BoundMode::kPointwiseRelative)
             ? compression::ErrorBound::relative(1e-3)
             : compression::ErrorBound::lossless();
}

void BM_Compress(benchmark::State& state, const std::string& name,
                 const std::vector<double>& data) {
  const auto codec = compression::make_compressor(name);
  const auto bound = bound_for(*codec);
  std::size_t compressed_size = 0;
  for (auto _ : state) {
    const auto compressed = codec->compress(data, bound);
    compressed_size = compressed.size();
    benchmark::DoNotOptimize(compressed.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(data.size() * 8));
  state.counters["ratio"] =
      static_cast<double>(data.size() * 8) /
      static_cast<double>(compressed_size);
}

void BM_CompressScratch(benchmark::State& state, const std::string& name,
                        const std::vector<double>& data) {
  const auto codec = compression::make_compressor(name);
  const auto bound = bound_for(*codec);
  compression::CodecScratch scratch;
  std::size_t compressed_size = 0;
  for (auto _ : state) {
    const auto compressed = codec->compress(data, bound, scratch);
    compressed_size = compressed.size();
    benchmark::DoNotOptimize(compressed.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(data.size() * 8));
  state.counters["ratio"] =
      static_cast<double>(data.size() * 8) /
      static_cast<double>(compressed_size);
}

void BM_Decompress(benchmark::State& state, const std::string& name,
                   const std::vector<double>& data) {
  const auto codec = compression::make_compressor(name);
  const auto compressed = codec->compress(data, bound_for(*codec));
  std::vector<double> out(data.size());
  for (auto _ : state) {
    codec->decompress(compressed, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(data.size() * 8));
}

void BM_DecompressScratch(benchmark::State& state, const std::string& name,
                          const std::vector<double>& data) {
  const auto codec = compression::make_compressor(name);
  const auto compressed = codec->compress(data, bound_for(*codec));
  compression::CodecScratch scratch;
  std::vector<double> out(data.size());
  for (auto _ : state) {
    codec->decompress(compressed, out, scratch);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(data.size() * 8));
}

// ---- --json CI mode ------------------------------------------------------

struct RateRow {
  std::string codec;
  std::string dataset;
  double compress_mb_per_s = 0.0;
  double decompress_mb_per_s = 0.0;
  double ratio = 0.0;
};

/// Scratch-path round trip through bench_util's shared timing protocol,
/// with one warm pass so the pools reach their steady state first.
RateRow measure_scratch_rate(const std::string& name,
                             const std::string& dataset,
                             std::span<const double> data) {
  const auto codec = compression::make_compressor(name);
  const auto bound = bound_for(*codec);
  compression::CodecScratch scratch;
  {
    const Bytes warm = codec->compress(data, bound, scratch);
    std::vector<double> out(data.size());
    codec->decompress(warm, out, scratch);
  }
  const bench::RateResult rate = bench::measure_rate_with(
      data, [&] { return codec->compress(data, bound, scratch); },
      [&](const Bytes& compressed, std::span<double> out) {
        codec->decompress(compressed, out, scratch);
      },
      /*repeats=*/5);
  return {name, dataset, rate.compress_mb_per_s, rate.decompress_mb_per_s,
          rate.ratio};
}

int run_ci_gate(const std::string& json_path) {
  bench::print_header(
      "Codec micro bench: golden-blob drift gate + scratch-path rates");

  // 1. The unchanged-bitstream guarantee, through both compress paths.
  int drifted = 0;
  compression::CodecScratch scratch;
  for (const auto& blob : compression::kGoldenBlobs) {
    const std::string plain = compression::golden_blob_hash(blob);
    const std::string pooled = compression::golden_blob_hash(blob, &scratch);
    if (plain != blob.sha256 || pooled != blob.sha256) {
      std::fprintf(stderr,
                   "DRIFT %s/%s/%s: want %s got %s (scratch %s)\n",
                   blob.codec, blob.mode, blob.fixture, blob.sha256,
                   plain.c_str(), pooled.c_str());
      ++drifted;
    }
  }
  std::printf("golden blobs: %d drifted of %zu\n", drifted,
              std::size(compression::kGoldenBlobs));

  // 2. Word-wide vs seed per-bit coder: the production bitstream must be
  // byte-identical to the frozen reference on full benchmark datasets, in
  // both bound modes, and compress must not be slower than the seed
  // baseline at the same bound (the PR 4 regression, kept fixed).
  int zfp_mismatches = 0;
  bool zfp_regressed = false;
  double seed_compress_mb_per_s = 0.0;
  double prod_compress_mb_per_s = 0.0;
  {
    const zfp::ZfpCodec production;
    compression::CodecScratch seed_scratch;
    compression::CodecScratch prod_scratch;
    const struct {
      const char* name;
      std::span<const double> data;
    } datasets[] = {{"qaoa18", bench::qaoa_data()}, {"sparse", sparse_data()}};
    const compression::ErrorBound bounds[] = {
        compression::ErrorBound::relative(1e-3),
        compression::ErrorBound::absolute(1e-4)};
    for (const auto& ds : datasets) {
      for (const auto& bound : bounds) {
        const Bytes want = seed_ref::compress(ds.data, bound, seed_scratch);
        const Bytes got = production.compress(ds.data, bound, prod_scratch);
        if (want != got) {
          std::fprintf(stderr,
                       "ZFP BITSTREAM MISMATCH on %s (mode %d): seed %zu "
                       "bytes, production %zu bytes\n",
                       ds.name, static_cast<int>(bound.mode), want.size(),
                       got.size());
          ++zfp_mismatches;
        }
      }
    }

    const auto bound = compression::ErrorBound::relative(1e-3);
    const auto& data = bench::qaoa_data();
    std::vector<double> out(data.size());
    const bench::RateResult seed_rate = bench::measure_rate_with(
        data, [&] { return seed_ref::compress(data, bound, seed_scratch); },
        [&](const Bytes& compressed, std::span<double> o) {
          production.decompress(compressed, o, prod_scratch);
        },
        /*repeats=*/7);
    const bench::RateResult prod_rate = bench::measure_rate_with(
        data, [&] { return production.compress(data, bound, prod_scratch); },
        [&](const Bytes& compressed, std::span<double> o) {
          production.decompress(compressed, o, prod_scratch);
        },
        /*repeats=*/7);
    seed_compress_mb_per_s = seed_rate.compress_mb_per_s;
    prod_compress_mb_per_s = prod_rate.compress_mb_per_s;
    // 3% slack absorbs timer noise; a real regression (PR 4 was -13%)
    // lands far below it.
    zfp_regressed = prod_compress_mb_per_s < 0.97 * seed_compress_mb_per_s;
    std::printf(
        "zfp compress qaoa18 rel 1e-3: seed %.1f MB/s, production %.1f "
        "MB/s (%.2fx)%s\n",
        seed_compress_mb_per_s, prod_compress_mb_per_s,
        prod_compress_mb_per_s / seed_compress_mb_per_s,
        zfp_regressed ? "  <-- REGRESSION" : "");
  }

  // 3. Scratch-path throughput per codec on the two standard datasets.
  std::vector<RateRow> rows;
  for (const auto& name : compression::compressor_names()) {
    rows.push_back(measure_scratch_rate(name, "qaoa18", bench::qaoa_data()));
    rows.push_back(measure_scratch_rate(name, "sparse", sparse_data()));
  }
  std::printf("%-12s %-8s %12s %12s %8s\n", "codec", "dataset",
              "comp MB/s", "decomp MB/s", "ratio");
  for (const auto& row : rows) {
    std::printf("%-12s %-8s %12.1f %12.1f %8.2f\n", row.codec.c_str(),
                row.dataset.c_str(), row.compress_mb_per_s,
                row.decompress_mb_per_s, row.ratio);
  }

  std::FILE* f = std::fopen(json_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 2;
  }
  std::fprintf(f, "{\n  \"golden_blobs_total\": %zu,\n",
               std::size(compression::kGoldenBlobs));
  std::fprintf(f, "  \"golden_blobs_drifted\": %d,\n", drifted);
  std::fprintf(f, "  \"zfp_bitstream_mismatches\": %d,\n", zfp_mismatches);
  std::fprintf(f, "  \"zfp_seed_compress_mb_per_s\": %.1f,\n",
               seed_compress_mb_per_s);
  std::fprintf(f, "  \"zfp_compress_mb_per_s\": %.1f,\n",
               prod_compress_mb_per_s);
  std::fprintf(f, "  \"zfp_compress_speedup_vs_seed\": %.3f,\n",
               prod_compress_mb_per_s / seed_compress_mb_per_s);
  std::fprintf(f, "  \"rates\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& row = rows[i];
    std::fprintf(f,
                 "    {\"codec\": \"%s\", \"dataset\": \"%s\", "
                 "\"compress_mb_per_s\": %.1f, "
                 "\"decompress_mb_per_s\": %.1f, \"ratio\": %.3f}%s\n",
                 row.codec.c_str(), row.dataset.c_str(),
                 row.compress_mb_per_s, row.decompress_mb_per_s, row.ratio,
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", json_path.c_str());

  if (drifted > 0) {
    std::fprintf(stderr,
                 "FAIL: %d compressed bitstream(s) drifted from the golden "
                 "digests — checkpoints and cache keys would break\n",
                 drifted);
    return 1;
  }
  if (zfp_mismatches > 0) {
    std::fprintf(stderr,
                 "FAIL: production zfp bitstream diverged from the frozen "
                 "seed reference on %d dataset/bound combination(s)\n",
                 zfp_mismatches);
    return 1;
  }
  if (zfp_regressed) {
    std::fprintf(stderr,
                 "FAIL: zfp compress throughput %.1f MB/s fell below the "
                 "seed baseline %.1f MB/s at equal error bounds\n",
                 prod_compress_mb_per_s, seed_compress_mb_per_s);
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--json") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--json needs a value\n");
        return 2;
      }
      return run_ci_gate(argv[i + 1]);
    }
  }

  for (const auto& name : compression::compressor_names()) {
    benchmark::RegisterBenchmark(("compress/" + name + "/qaoa18").c_str(),
                                 BM_Compress, name, bench::qaoa_data());
    benchmark::RegisterBenchmark(
        ("compress-scratch/" + name + "/qaoa18").c_str(), BM_CompressScratch,
        name, bench::qaoa_data());
    benchmark::RegisterBenchmark(("decompress/" + name + "/qaoa18").c_str(),
                                 BM_Decompress, name, bench::qaoa_data());
    benchmark::RegisterBenchmark(
        ("decompress-scratch/" + name + "/qaoa18").c_str(),
        BM_DecompressScratch, name, bench::qaoa_data());
    benchmark::RegisterBenchmark(("compress/" + name + "/sparse").c_str(),
                                 BM_Compress, name, sparse_data());
    benchmark::RegisterBenchmark(
        ("compress-scratch/" + name + "/sparse").c_str(), BM_CompressScratch,
        name, sparse_data());
  }
  // The frozen per-bit baseline, so `--benchmark_filter=zfp` shows the
  // word-wide coder and the seed side by side.
  benchmark::RegisterBenchmark(
      "compress-scratch/zfp-seed-ref/qaoa18", [](benchmark::State& state) {
        compression::CodecScratch scratch;
        const auto bound = compression::ErrorBound::relative(1e-3);
        const auto& data = bench::qaoa_data();
        for (auto _ : state) {
          const auto compressed = seed_ref::compress(data, bound, scratch);
          benchmark::DoNotOptimize(compressed.data());
        }
        state.SetBytesProcessed(
            static_cast<std::int64_t>(state.iterations()) *
            static_cast<std::int64_t>(data.size() * 8));
      });
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
