// google-benchmark micro suite over every codec in the repository:
// compression and decompression throughput on the qaoa_18 snapshot and on
// an early-simulation sparse state, at a representative relative bound.
#include <benchmark/benchmark.h>

#include <vector>

#include "bench_util.hpp"
#include "circuits/datasets.hpp"
#include "compression/compressor.hpp"

namespace {

using namespace cqs;

const std::vector<double>& sparse_data() {
  static const std::vector<double> data = circuits::sparse_dataset(10, 4);
  return data;
}

compression::ErrorBound bound_for(const compression::Compressor& codec) {
  return codec.supports(compression::BoundMode::kPointwiseRelative)
             ? compression::ErrorBound::relative(1e-3)
             : compression::ErrorBound::lossless();
}

void BM_Compress(benchmark::State& state, const std::string& name,
                 const std::vector<double>& data) {
  const auto codec = compression::make_compressor(name);
  const auto bound = bound_for(*codec);
  std::size_t compressed_size = 0;
  for (auto _ : state) {
    const auto compressed = codec->compress(data, bound);
    compressed_size = compressed.size();
    benchmark::DoNotOptimize(compressed.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(data.size() * 8));
  state.counters["ratio"] =
      static_cast<double>(data.size() * 8) /
      static_cast<double>(compressed_size);
}

void BM_Decompress(benchmark::State& state, const std::string& name,
                   const std::vector<double>& data) {
  const auto codec = compression::make_compressor(name);
  const auto compressed = codec->compress(data, bound_for(*codec));
  std::vector<double> out(data.size());
  for (auto _ : state) {
    codec->decompress(compressed, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(data.size() * 8));
}

}  // namespace

int main(int argc, char** argv) {
  for (const auto& name : compression::compressor_names()) {
    benchmark::RegisterBenchmark(("compress/" + name + "/qaoa18").c_str(),
                                 BM_Compress, name, bench::qaoa_data());
    benchmark::RegisterBenchmark(("decompress/" + name + "/qaoa18").c_str(),
                                 BM_Decompress, name, bench::qaoa_data());
    benchmark::RegisterBenchmark(("compress/" + name + "/sparse").c_str(),
                                 BM_Compress, name, sparse_data());
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
