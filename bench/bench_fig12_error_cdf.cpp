// Figure 12 reproduction: distribution (CDF) of the maximum pointwise
// relative error per 16 MB-equivalent data block for Solutions A-D, at
// every error bound. Verifies every solution respects its bound and that
// C/D overlap exactly (identical truncation errors).
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "compression/compressor.hpp"
#include "compression/verify.hpp"

namespace {

/// Max pointwise relative error of each block after a round trip.
std::vector<double> per_block_max_errors(
    const cqs::compression::Compressor& codec,
    std::span<const double> data, double eps, std::size_t block_doubles) {
  using namespace cqs;
  std::vector<double> maxima;
  std::vector<double> out;
  for (std::size_t base = 0; base < data.size(); base += block_doubles) {
    const auto block =
        data.subspan(base, std::min(block_doubles, data.size() - base));
    const auto compressed =
        codec.compress(block, compression::ErrorBound::relative(eps));
    out.resize(block.size());
    codec.decompress(compressed, out);
    maxima.push_back(
        compression::measure_error(block, out).max_pointwise_relative);
  }
  return maxima;
}

void run(const char* name, std::span<const double> data) {
  using namespace cqs;
  const char* codecs[] = {"sz", "sz-complex", "qzc", "qzc-shuffle"};
  const char* labels[] = {"Sol.A", "Sol.B", "Sol.C", "Sol.D"};
  const std::size_t block_doubles = 1 << 14;  // scaled-down block

  for (double eps : bench::kBounds) {
    std::printf("\n--- %s, PWR=%.0e: per-block max relative error ---\n",
                name, eps);
    std::printf("%8s %12s %12s %12s %12s\n", "", "min", "median", "p90",
                "max");
    for (int c = 0; c < 4; ++c) {
      const auto codec = compression::make_compressor(codecs[c]);
      auto maxima = per_block_max_errors(*codec, data, eps, block_doubles);
      std::sort(maxima.begin(), maxima.end());
      const auto q = [&](double f) {
        return maxima[static_cast<std::size_t>(f * (maxima.size() - 1))];
      };
      std::printf("%8s %12.3e %12.3e %12.3e %12.3e %s\n", labels[c], q(0.0),
                  q(0.5), q(0.9), maxima.back(),
                  maxima.back() <= eps ? "[bound ok]" : "[VIOLATION]");
    }
  }
}

}  // namespace

int main() {
  using namespace cqs;
  bench::print_header(
      "Figure 12: distribution of per-block max pointwise relative errors");
  run("qaoa_18", bench::qaoa_data());
  run("sup_16", bench::sup_data());
  std::printf(
      "\nshape check (paper): all solutions respect every bound; Solutions "
      "C and D coincide exactly; C/D maxima sit well below the bound "
      "(discrete truncation errors), A/B approach it\n");
  return 0;
}
