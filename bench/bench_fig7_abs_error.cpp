// Figure 7 reproduction: compression ratios of SZ vs ZFP under absolute
// error bounds (set as a fraction of each dataset's value range), on the
// qaoa and supremacy state snapshots.
#include <algorithm>
#include <cstdio>

#include "bench_util.hpp"
#include "sz/sz.hpp"
#include "zfp/zfp.hpp"

namespace {

double value_range(std::span<const double> data) {
  const auto [lo, hi] = std::minmax_element(data.begin(), data.end());
  return *hi - *lo;
}

void run(const char* name, std::span<const double> data) {
  using namespace cqs;
  const double range = value_range(data);
  std::printf("\n--- %s (value range %.3g) ---\n", name, range);
  std::printf("%10s %14s %14s\n", "bound", "SZ ratio", "ZFP ratio");
  sz::SzCodec sz_codec;
  zfp::ZfpCodec zfp_codec;
  for (double fraction : bench::kBounds) {
    const auto bound =
        compression::ErrorBound::absolute(fraction * range);
    const auto sz_bytes = sz_codec.compress(data, bound);
    const auto zfp_bytes = zfp_codec.compress(data, bound);
    std::printf("%10.0e %14.2f %14.2f\n", fraction,
                bench::ratio_of(data, sz_bytes.size()),
                bench::ratio_of(data, zfp_bytes.size()));
  }
}

}  // namespace

int main() {
  using namespace cqs;
  bench::print_header(
      "Figure 7: SZ vs ZFP compression ratio (absolute error bounds)");
  run("qaoa_18", bench::qaoa_data());
  run("sup_16", bench::sup_data());
  std::printf(
      "\nshape check (paper): SZ leads ZFP by 1-2 orders of magnitude at "
      "every bound; qaoa SZ reaches ~100:1 at loose bounds while ZFP stays "
      "below ~13:1\n");
  return 0;
}
