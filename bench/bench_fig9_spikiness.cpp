// Figure 9 reproduction: illustrates the spikiness of quantum circuit
// simulation data — sample windows of the state plus quantitative
// spikiness measures (neighbor correlation, sign-flip rate) showing why
// smoothness-based compressors fail on this data.
#include <cmath>
#include <cstdio>

#include "bench_util.hpp"
#include "common/stats.hpp"

namespace {

void run(const char* name, std::span<const double> data) {
  using namespace cqs;
  std::printf("\n--- %s ---\n", name);
  // The two zoomed windows of Figure 9.
  for (std::size_t start : {std::size_t{1000}, std::size_t{2000}}) {
    std::printf("window [%zu, %zu):\n", start, start + 10);
    for (std::size_t i = start; i < start + 10; ++i) {
      std::printf("  data[%zu] = %+.6e\n", i, data[i]);
    }
  }
  // Quantitative spikiness: lag-1 autocorrelation of the raw series (low
  // for spiky data) and the rate of sign changes between neighbors.
  const double corr = autocorrelation(data, 1);
  std::size_t flips = 0;
  std::size_t nonzero_pairs = 0;
  for (std::size_t i = 1; i < data.size(); ++i) {
    if (data[i] == 0.0 || data[i - 1] == 0.0) continue;
    ++nonzero_pairs;
    if (std::signbit(data[i]) != std::signbit(data[i - 1])) ++flips;
  }
  std::printf("lag-1 autocorrelation: %.4f (smooth data would be ~1)\n",
              corr);
  std::printf("neighbor sign-flip rate: %.3f (random signs would be 0.5)\n",
              nonzero_pairs ? static_cast<double>(flips) / nonzero_pairs
                            : 0.0);
}

}  // namespace

int main() {
  using namespace cqs;
  bench::print_header(
      "Figure 9: spikiness of quantum circuit simulation data");
  run("qaoa_18", bench::qaoa_data());
  run("sup_16", bench::sup_data());
  std::printf(
      "\nshape check (paper): values oscillate at the 1e-5..1e-6 scale "
      "with rapid sign changes; no smooth neighborhoods for predictors or "
      "transforms to exploit\n");
  return 0;
}
