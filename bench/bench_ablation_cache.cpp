// Ablation (Section 3.4): the compressed block cache on structured
// (Grover) vs unstructured (supremacy) workloads — hit rates, the
// auto-disable behaviour, and wall-time impact.
#include <cstdio>

#include "bench_util.hpp"
#include "circuits/grover.hpp"
#include "circuits/supremacy.hpp"
#include "common/timer.hpp"
#include "core/simulator.hpp"

namespace {

using namespace cqs;

void run(const char* name, const qsim::Circuit& circuit, bool cache) {
  core::SimConfig config;
  config.num_qubits = circuit.num_qubits();
  config.num_ranks = 4;
  config.blocks_per_rank = 16;
  config.enable_cache = cache;
  core::CompressedStateSimulator sim(config);
  WallTimer timer;
  sim.apply_circuit(circuit);
  const auto report = sim.report();
  std::printf("%-12s %8s %10.2f %12lu %12lu %10.1f%% %s\n", name,
              cache ? "on" : "off", timer.seconds(),
              static_cast<unsigned long>(report.cache.hits),
              static_cast<unsigned long>(report.cache.misses),
              100.0 * report.cache.hit_rate(),
              report.cache.disabled ? "[auto-disabled]" : "");
}

}  // namespace

int main() {
  bench::print_header(
      "Ablation: compressed block cache (Section 3.4) on structured vs "
      "unstructured workloads");
  std::printf("%-12s %8s %10s %12s %12s %10s\n", "workload", "cache",
              "time (s)", "hits", "misses", "hit rate");

  const auto grover = circuits::grover_circuit(
      {.data_qubits = 10, .marked_state = 0x2aa});
  const auto sup =
      circuits::supremacy_circuit({.rows = 4, .cols = 4, .depth = 11});

  run("grover_18", grover, true);
  run("grover_18", grover, false);
  run("sup_4x4", sup, true);
  run("sup_4x4", sup, false);

  std::printf(
      "\nexpectation: Grover states repeat blocks, so the cache hits and "
      "pays for itself; random circuits never repeat, the hit rate stays "
      "zero and the cache disables itself to stop paying the miss "
      "penalty\n");
  return 0;
}
