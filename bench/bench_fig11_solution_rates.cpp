// Figure 11 reproduction: single-core compression and decompression rates
// (MB/s) of Solutions A-D under pointwise relative bounds.
#include <cstdio>

#include "bench_util.hpp"
#include "compression/compressor.hpp"

namespace {

void run(const char* name, std::span<const double> data) {
  using namespace cqs;
  const char* codecs[] = {"sz", "sz-complex", "qzc", "qzc-shuffle"};
  const char* labels[] = {"Sol.A", "Sol.B", "Sol.C", "Sol.D"};

  std::printf("\n--- %s: compression rate (MB/s) ---\n", name);
  std::printf("%10s %10s %10s %10s %10s\n", "bound", labels[0], labels[1],
              labels[2], labels[3]);
  bench::RateResult results[4][5];
  for (int c = 0; c < 4; ++c) {
    const auto codec = compression::make_compressor(codecs[c]);
    for (int b = 0; b < 5; ++b) {
      results[c][b] = bench::measure_rate(
          *codec, data, compression::ErrorBound::relative(bench::kBounds[b]));
    }
  }
  for (int b = 0; b < 5; ++b) {
    std::printf("%10.0e", bench::kBounds[b]);
    for (int c = 0; c < 4; ++c) {
      std::printf(" %10.1f", results[c][b].compress_mb_per_s);
    }
    std::printf("\n");
  }
  std::printf("\n--- %s: decompression rate (MB/s) ---\n", name);
  std::printf("%10s %10s %10s %10s %10s\n", "bound", labels[0], labels[1],
              labels[2], labels[3]);
  for (int b = 0; b < 5; ++b) {
    std::printf("%10.0e", bench::kBounds[b]);
    for (int c = 0; c < 4; ++c) {
      std::printf(" %10.1f", results[c][b].decompress_mb_per_s);
    }
    std::printf("\n");
  }
}

}  // namespace

int main() {
  using namespace cqs;
  bench::print_header(
      "Figure 11: compress/decompress rates of Solutions A-D (single core)");
  run("qaoa_18", bench::qaoa_data());
  run("sup_16", bench::sup_data());
  std::printf(
      "\nshape check (paper): C/D run far faster than A (they drop the "
      "prediction + quantization + Huffman stages); C is slightly faster "
      "than D (no reshuffle)\n");
  return 0;
}
