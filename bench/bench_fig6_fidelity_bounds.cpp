// Figure 6 reproduction: minimum fidelity bounds as the gate count grows,
// one series per pointwise relative error level (Eq. 11).
#include <cstdio>

#include "bench_util.hpp"
#include "core/fidelity.hpp"

int main() {
  using namespace cqs;
  bench::print_header(
      "Figure 6: fidelity lower bound vs gate count per error level");
  std::printf("%8s", "gates");
  for (double eps : bench::kBounds) std::printf("  PWR=%-7.0e", eps);
  std::printf("\n");
  for (int gates = 0; gates <= 5000; gates += 500) {
    std::printf("%8d", gates);
    for (double eps : bench::kBounds) {
      std::printf("  %-11.4g",
                  core::FidelityTracker::bound_after(gates, eps));
    }
    std::printf("\n");
  }
  std::printf(
      "\nshape check (paper): 1e-5 stays ~0.95 at 5000 gates; 1e-3 decays "
      "to ~0.007; 1e-2 and 1e-1 collapse to ~0 within the first few "
      "hundred gates\n");
  return 0;
}
