// Ablation (Section 3.1 / Eq. 8): blocks-per-rank trade-off — more blocks
// shrink the decompression scratch term but add per-block compression
// overhead; fewer blocks amortize the codec but grow the working set.
#include <cstdio>

#include "bench_util.hpp"
#include "circuits/qaoa.hpp"
#include "common/timer.hpp"
#include "core/memory_model.hpp"
#include "core/simulator.hpp"

int main() {
  using namespace cqs;
  bench::print_header(
      "Ablation: blocks per rank (Eq. 8 trade-off) on qaoa_18");
  const auto circuit = circuits::qaoa_maxcut_circuit({.num_qubits = 18});
  std::printf("%12s %12s %14s %16s %14s\n", "blocks/rank", "time (s)",
              "peak state", "scratch/block", "min ratio");
  for (int blocks : {2, 8, 32, 128}) {
    core::SimConfig config;
    config.num_qubits = 18;
    config.num_ranks = 2;
    config.blocks_per_rank = blocks;
    core::CompressedStateSimulator sim(config);
    WallTimer timer;
    sim.apply_circuit(circuit);
    const auto report = sim.report();
    std::printf("%12d %12.2f %14s %16s %14.2f\n", blocks, timer.seconds(),
                core::format_bytes(report.peak_compressed_bytes).c_str(),
                core::format_bytes(sim.partition().bytes_per_block()).c_str(),
                report.min_compression_ratio);
  }
  std::printf(
      "\nexpectation: the compressed-state footprint is nearly flat across "
      "block counts, while the per-worker scratch (the second term of Eq. "
      "8) shrinks linearly as blocks get smaller; very small blocks pay "
      "codec overhead in time and ratio\n");
  return 0;
}
