// Table 1 reproduction: supercomputer memory capacities and the maximum
// number of qubits they can simulate for arbitrary circuits, plus the
// Section 5.5 projections with measured compression ratios — and the
// out-of-core demonstration of the same headline: under one fixed
// in-memory budget, the qubit count that exceeds RAM in a memory-only
// run completes once cold blocks spill to the NVMe tier, bit-identically.
//
//   $ ./bench_table1_max_qubits [--base-qubits N] [--extra M] [--json PATH]
//
// The harness self-calibrates: a probe run at N qubits (default 10)
// measures the peak compressed footprint, and the "machine RAM" budget is
// set a little above it. Memory-only runs at N+1..N+M then exceed the
// budget (the OOM proxy: budget_exceeded even at the last ladder level —
// the codec is pinned lossless so there is no ladder to escalate), while
// the spilled runs keep the resident tier under the same budget and
// complete. Exits nonzero if spilling fails to raise the ceiling or the
// spilled state drifts from the in-memory state at the common size.
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "circuits/qft.hpp"
#include "common/timer.hpp"
#include "core/memory_model.hpp"
#include "core/simulator.hpp"

namespace {

using cqs::core::CompressedStateSimulator;
using cqs::core::SimConfig;

struct ModeResult {
  bool completes = false;  ///< finished within the in-memory budget
  std::size_t resident_bytes = 0;
  std::size_t spilled_bytes = 0;
  std::size_t total_bytes = 0;
  std::uint64_t spill_events = 0;
  double seconds = 0.0;
};

struct Row {
  int qubits = 0;
  ModeResult in_ram;
  ModeResult spilled;
};

SimConfig budget_config(int qubits, std::size_t budget,
                        const std::string& spill_path) {
  SimConfig config;
  config.num_qubits = qubits;
  config.num_ranks = 2;
  config.blocks_per_rank = 8;
  // Lossless-only: over budget there is no error ladder to escalate, so
  // budget_exceeded is a hard "does not fit", the OOM proxy.
  config.codec = "zstd";
  config.memory_budget_bytes = budget;
  if (!spill_path.empty()) {
    config.spill_path = spill_path;
    config.resident_budget_bytes = budget;
  }
  return config;
}

ModeResult run_mode(int qubits, std::size_t budget,
                    const std::string& spill_path,
                    std::vector<double>* state_out = nullptr) {
  CompressedStateSimulator sim(budget_config(qubits, budget, spill_path));
  cqs::WallTimer timer;
  sim.apply_circuit(cqs::circuits::qft_circuit({.num_qubits = qubits}));
  ModeResult result;
  result.seconds = timer.seconds();
  const auto report = sim.report();
  result.completes = !report.budget_exceeded;
  result.resident_bytes = report.resident_bytes;
  result.spilled_bytes = report.spilled_bytes;
  result.total_bytes = sim.compressed_bytes();
  result.spill_events = report.spill_events;
  if (state_out != nullptr) *state_out = sim.to_raw();
  return result;
}

std::string spill_scratch(const std::string& leaf) {
  return (std::filesystem::temp_directory_path() / leaf).string();
}

void write_json(const std::string& path, std::size_t budget,
                const std::vector<Row>& rows, int in_ram_max,
                int spilled_max, bool bit_identical) {
  std::ofstream out(path, std::ios::trunc);
  out << "{\n  \"bench\": \"table1_max_qubits\",\n"
      << "  \"budget_bytes\": " << budget << ",\n"
      << "  \"in_ram_max_qubits\": " << in_ram_max << ",\n"
      << "  \"spilled_max_qubits\": " << spilled_max << ",\n"
      << "  \"qubit_gain\": " << (spilled_max - in_ram_max) << ",\n"
      << "  \"bit_identical\": " << (bit_identical ? "true" : "false")
      << ",\n  \"rows\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& row = rows[i];
    const auto mode = [&](const ModeResult& m) {
      return std::string("{\"completes\": ") +
             (m.completes ? "true" : "false") +
             ", \"resident\": " + std::to_string(m.resident_bytes) +
             ", \"spilled\": " + std::to_string(m.spilled_bytes) +
             ", \"spill_events\": " + std::to_string(m.spill_events) +
             ", \"seconds\": " + std::to_string(m.seconds) + "}";
    };
    out << "    {\"qubits\": " << row.qubits
        << ",\n     \"in_ram\": " << mode(row.in_ram)
        << ",\n     \"spilled\": " << mode(row.spilled) << "}"
        << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) try {
  using namespace cqs;
  int base_qubits = 10;
  int extra = 3;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--base-qubits") {
      base_qubits = std::atoi(next());
    } else if (arg == "--extra") {
      extra = std::atoi(next());
    } else if (arg == "--json") {
      json_path = next();
    } else {
      std::fprintf(stderr,
                   "usage: %s [--base-qubits N] [--extra M] [--json PATH]\n",
                   argv[0]);
      return 2;
    }
  }

  bench::print_header(
      "Table 1: memory capacity vs. maximum simulable qubits");
  std::printf("%-20s %10s %10s\n", "System", "Mem (PB)", "Max Qubits");
  for (const auto& row : core::table1_machines()) {
    std::printf("%-20s %10.2f %10d\n", row.name.c_str(),
                row.memory_petabytes, row.max_qubits);
  }
  std::printf("\npaper: Summit 47, Sierra 46, Sunway TaihuLight 46, "
              "Theta 45\n\n");

  bench::print_header(
      "Section 5.5 projection: max qubits at measured compression ratios");
  std::printf("%-20s %12s %12s %12s %12s\n", "System", "ratio 1x",
              "ratio 4.85x", "ratio 21.3x", "Grover 7e4x");
  for (double pb : {2.8, 0.8}) {
    const auto bytes = static_cast<std::uint64_t>(pb * 1e15);
    std::printf("%-20s %12d %12d %12d %12d\n",
                pb == 2.8 ? "Summit" : "Theta",
                core::max_qubits_for_memory(bytes),
                core::max_qubits_with_compression(bytes, 4.85),
                core::max_qubits_with_compression(bytes, 21.34),
                core::max_qubits_with_compression(bytes, 7.39e4));
  }
  std::printf("\npaper: Theta 45 -> 61 qubits for Grover (768 TB instead of "
              "32 EB); Summit general-circuit projection 63 qubits\n\n");

  bench::print_header(
      "Out-of-core: the in-RAM qubit ceiling vs the NVMe-spill ceiling");

  // Calibrate the "machine RAM" to sit just above the base instance's
  // peak compressed footprint: base fits, every extra qubit doubles the
  // state and exceeds it.
  CompressedStateSimulator probe(budget_config(base_qubits, 0, ""));
  probe.apply_circuit(circuits::qft_circuit({.num_qubits = base_qubits}));
  const std::size_t peak = probe.report().peak_compressed_bytes;
  const std::size_t budget = peak + peak / 4;
  std::printf("budget %zu bytes (1.25x the %d-qubit peak footprint)\n\n",
              budget, base_qubits);

  std::printf("%7s | %-30s | %-40s\n", "qubits", "memory-only",
              "with NVMe spill tier");
  std::vector<Row> rows;
  int in_ram_max = 0;
  int spilled_max = 0;
  bool accounting_ok = true;
  for (int qubits = base_qubits; qubits <= base_qubits + extra; ++qubits) {
    Row row;
    row.qubits = qubits;
    row.in_ram = run_mode(qubits, budget, "");
    row.spilled = run_mode(
        qubits, budget,
        spill_scratch("cqs_table1_" + std::to_string(qubits) + ".spill"));
    if (row.in_ram.completes) in_ram_max = qubits;
    if (row.spilled.completes) spilled_max = qubits;
    if (row.spilled.resident_bytes + row.spilled.spilled_bytes !=
        row.spilled.total_bytes) {
      accounting_ok = false;
    }
    std::printf(
        "%7d | %-11s %8zu KiB res | %-9s %7zu KiB res + %7zu KiB nvme\n",
        qubits, row.in_ram.completes ? "fits" : "OVER BUDGET",
        row.in_ram.resident_bytes / 1024,
        row.spilled.completes ? "completes" : "over",
        row.spilled.resident_bytes / 1024, row.spilled.spilled_bytes / 1024);
    rows.push_back(row);
  }

  // Bit-identity at the common size: the tier moves are byte-preserving,
  // so the spilled run's state equals the in-memory run's exactly.
  std::vector<double> in_ram_state;
  std::vector<double> spilled_state;
  run_mode(base_qubits, budget, "", &in_ram_state);
  run_mode(base_qubits, budget,
           spill_scratch("cqs_table1_identity.spill"), &spilled_state);
  const bool bit_identical = in_ram_state == spilled_state;

  std::printf("\nmemory-only ceiling: %d qubits; spilled ceiling: %d qubits "
              "(+%d); common-size states %s\n",
              in_ram_max, spilled_max, spilled_max - in_ram_max,
              bit_identical ? "bit-identical" : "DIFFER");

  if (!json_path.empty()) {
    write_json(json_path, budget, rows, in_ram_max, spilled_max,
               bit_identical);
    std::printf("wrote %s\n", json_path.c_str());
  }

  bool ok = true;
  if (spilled_max <= in_ram_max) {
    std::fprintf(stderr,
                 "FAIL: spill tier did not raise the qubit ceiling "
                 "(in-RAM %d, spilled %d)\n",
                 in_ram_max, spilled_max);
    ok = false;
  }
  if (!bit_identical) {
    std::fprintf(stderr, "FAIL: spilled state drifted from in-memory\n");
    ok = false;
  }
  if (!accounting_ok) {
    std::fprintf(stderr,
                 "FAIL: resident + spilled != total compressed bytes\n");
    ok = false;
  }
  std::printf("%s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
} catch (const std::exception& e) {
  std::fprintf(stderr, "bench_table1_max_qubits: %s\n", e.what());
  return 1;
}
