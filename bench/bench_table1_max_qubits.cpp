// Table 1 reproduction: supercomputer memory capacities and the maximum
// number of qubits they can simulate for arbitrary circuits, plus the
// Section 5.5 projections with measured compression ratios.
#include <cstdio>

#include "bench_util.hpp"
#include "core/memory_model.hpp"

int main() {
  using namespace cqs;
  bench::print_header(
      "Table 1: memory capacity vs. maximum simulable qubits");
  std::printf("%-20s %10s %10s\n", "System", "Mem (PB)", "Max Qubits");
  for (const auto& row : core::table1_machines()) {
    std::printf("%-20s %10.2f %10d\n", row.name.c_str(),
                row.memory_petabytes, row.max_qubits);
  }
  std::printf("\npaper: Summit 47, Sierra 46, Sunway TaihuLight 46, "
              "Theta 45\n\n");

  bench::print_header(
      "Section 5.5 projection: max qubits at measured compression ratios");
  std::printf("%-20s %12s %12s %12s %12s\n", "System", "ratio 1x",
              "ratio 4.85x", "ratio 21.3x", "Grover 7e4x");
  for (double pb : {2.8, 0.8}) {
    const auto bytes = static_cast<std::uint64_t>(pb * 1e15);
    std::printf("%-20s %12d %12d %12d %12d\n",
                pb == 2.8 ? "Summit" : "Theta",
                core::max_qubits_for_memory(bytes),
                core::max_qubits_with_compression(bytes, 4.85),
                core::max_qubits_with_compression(bytes, 21.34),
                core::max_qubits_with_compression(bytes, 7.39e4));
  }
  std::printf("\npaper: Theta 45 -> 61 qubits for Grover (768 TB instead of "
              "32 EB); Summit general-circuit projection 63 qubits\n");
  return 0;
}
