// Figure 14 reproduction: CDF of Solution C's pointwise relative errors
// normalized by the bound, plus the lag-1 autocorrelation check backing
// the paper's non-correlation claim.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "common/stats.hpp"
#include "compression/verify.hpp"
#include "qzc/qzc.hpp"

namespace {

void run(const char* name, std::span<const double> data) {
  using namespace cqs;
  qzc::QzcCodec codec;
  std::printf("\n--- %s ---\n", name);
  std::printf("%10s | CDF of |normalized error| at:            | lag-1\n",
              "bound");
  std::printf("%10s | %6s %6s %6s %6s %6s | %s\n", "", "0.1", "0.25", "0.5",
              "0.75", "1.0", "autocorr");
  for (double eps : bench::kBounds) {
    const auto compressed =
        codec.compress(data, compression::ErrorBound::relative(eps));
    std::vector<double> out(data.size());
    codec.decompress(compressed, out);
    const auto normalized =
        compression::normalized_relative_errors(data, out, eps);
    const auto raw_errors = compression::signed_errors(data, out);
    std::printf("%10.0e | %6.3f %6.3f %6.3f %6.3f %6.3f | %+.2e\n", eps,
                fraction_below(normalized, 0.1),
                fraction_below(normalized, 0.25),
                fraction_below(normalized, 0.5),
                fraction_below(normalized, 0.75),
                fraction_below(normalized, 1.0 + 1e-12),
                autocorrelation(raw_errors, 1));
  }
}

}  // namespace

int main() {
  using namespace cqs;
  bench::print_header(
      "Figure 14: normalized compression error distribution (Solution C)");
  run("qaoa_18", bench::qaoa_data());
  run("sup_16", bench::sup_data());
  std::printf(
      "\nshape check (paper): (1) all errors within the bound (CDF reaches "
      "1.0 at normalized error 1); (2) roughly uniform spread; (3) most "
      "errors far below the bound; lag-1 autocorrelation ~0 (paper "
      "reports [-1e-4, 1e-4] on dense data)\n");
  return 0;
}
