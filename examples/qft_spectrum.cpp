// Deep-circuit demonstration: QFT of a period-p computational state, with
// a mid-circuit statistical assertion (the debugging capability that
// motivates full-state simulation, Section 1) and a checkpoint/restore in
// the middle of the run (Section 3.5).
//
//   $ ./qft_spectrum [qubits] [period]
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <iostream>

#include "circuits/qft.hpp"
#include "core/simulator.hpp"
#include "qsim/circuit.hpp"

int main(int argc, char** argv) {
  using namespace cqs;
  const int n = argc > 1 ? std::atoi(argv[1]) : 14;
  const int period = argc > 2 ? std::atoi(argv[2]) : 4;

  // Prepare a periodic superposition sum_k |k*period> via rotations on the
  // low qubits (every multiple of `period` = low log2(period) bits zero,
  // uniform elsewhere), then QFT: peaks appear at multiples of N/period.
  const int low_bits = static_cast<int>(std::log2(period));
  qsim::Circuit circuit(n);
  for (int q = low_bits; q < n; ++q) circuit.h(q);
  const auto qft = circuits::qft_circuit(
      {.num_qubits = n, .random_input = false, .final_swaps = true});
  for (const auto& op : qft.ops()) circuit.append(op);

  core::SimConfig config;
  config.num_qubits = n;
  config.num_ranks = 2;
  config.blocks_per_rank = 8;
  core::CompressedStateSimulator sim(config);

  // Run the state-prep half, assert, checkpoint, restore, and finish.
  qsim::Circuit prep(n);
  for (std::size_t i = 0; i < static_cast<std::size_t>(n - low_bits); ++i) {
    prep.append(circuit.ops()[i]);
  }
  sim.apply_circuit(prep);
  std::printf("assertion: low qubit stays |0> before QFT -> %s\n",
              sim.assert_probability(0, 0.0, 1e-9) ? "pass" : "FAIL");

  const std::string ckpt = "/tmp/cqs_qft_example.ckpt";
  sim.save_checkpoint(ckpt);
  auto resumed = core::CompressedStateSimulator::load_checkpoint(ckpt, config);
  std::printf("checkpointed after %llu gates; resuming\n",
              static_cast<unsigned long long>(resumed.gate_cursor()));
  resumed.resume_circuit(circuit);

  // Spectrum peaks: |QFT psi|^2 concentrates on multiples of 2^n/period.
  const auto amps = resumed.to_amplitudes();
  std::printf("\ntop spectral lines (expect multiples of %llu):\n",
              static_cast<unsigned long long>(amps.size() / period));
  for (int line = 0; line < period; ++line) {
    const std::uint64_t k =
        static_cast<std::uint64_t>(line) * (amps.size() / period);
    std::printf("  k = %8llu : probability %.4f\n",
                static_cast<unsigned long long>(k), std::norm(amps[k]));
  }
  std::filesystem::remove(ckpt);
  std::cout << "\n--- simulation report ---\n" << resumed.report();
  return 0;
}
