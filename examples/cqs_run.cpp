// cqs_run — command-line driver: run a serialized circuit file through
// the compressed-state simulator.
//
//   $ ./cqs_run circuit.cqs [options]
//     --ranks N          logical ranks (power of two, default 4)
//     --blocks N         blocks per rank (power of two, default 8)
//     --codec NAME       lossy codec (default qzc)
//     --policy NAME      codec policy: fixed | adaptive (default fixed;
//                        adaptive keeps sparse/spiky blocks lossless)
//     --budget-frac F    memory budget as a fraction of 2^{n+4} (default 0:
//                        unlimited, stays lossless)
//     --fuse             apply single-qubit gate fusion first (the run
//                        scheduler also fuses internally by default)
//     --no-batching      disable the block-local gate-run scheduler
//     --max-run N        cap scheduled ops per gate run (0 = unlimited)
//     --checkpoint PATH  save a checkpoint at the end
//     --samples N        print N sampled basis states
//     --wire NAME        transport: loopback | socket (socket forks one OS
//                        process per rank and joins them at the end; needs
//                        a -DCQS_TRANSPORT_SOCKET=ON build)
//     --timeout-ms N     wire-operation deadline for process transports
//     --endpoint NAME    socket flavor: local (Unix socketpair) | tcp
//     --spill PATH       out-of-core: spill cold compressed blocks to an
//                        unlinked scratch file at PATH (needs
//                        --resident-frac)
//     --resident-frac F  resident-tier budget as a fraction of 2^{n+4};
//                        the rest of the compressed state parks on disk
//     --readahead N      spilled blocks to advise ahead of the executor
//                        (default 4, 0 = off)
//     --checkpoint-interval N  autosave every N source gates (needs
//                        --autosave)
//     --autosave PATH    atomic autosave target (needs
//                        --checkpoint-interval)
//     --resilient        run under the recovery loop: on a transport
//                        fault, reap the rank processes, restore the last
//                        autosave, respawn, and resume bit-identically
//     --max-recoveries N give up after N recoveries (default 3)
//     --retry-backoff-ms B  base backoff before a respawn, doubled per
//                        recovery (default 100)
//     --fault-plan SPEC  arm the deterministic fault injector, e.g.
//                        "seed=7;spill.write@2:enospc" (see
//                        src/runtime/fault_injection.hpp for the grammar)
//
// Exit codes:
//   0  success
//   1  generic failure (I/O, internal error)
//   2  usage error
//   3  invalid configuration (bad flag combination or value)
//   4  transport fault (rank death, timeout, corrupt frames)
//   5  spill/disk fault (ENOSPC, I/O error on the spill tier)
//
// Circuit file format (see src/qsim/serialize.hpp):
//   qubits 4
//   h 0
//   cx 0 1
//   rz 2 0.785398
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "common/rng.hpp"
#include "core/memory_model.hpp"
#include "core/simulator.hpp"
#include "qsim/fusion.hpp"
#include "qsim/serialize.hpp"
#include "runtime/fault_injection.hpp"
#include "runtime/spill_file.hpp"
#include "runtime/transport.hpp"

#ifdef CQS_HAVE_SOCKET_TRANSPORT
#include "runtime/socket_transport.hpp"
#endif

namespace {

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <circuit-file> [--ranks N] [--blocks N] "
               "[--codec NAME] [--policy fixed|adaptive] [--budget-frac F] "
               "[--fuse] [--no-batching] [--max-run N] [--checkpoint PATH] "
               "[--samples N] [--remap [lookahead|lru]] "
               "[--wire loopback|socket] [--timeout-ms N] "
               "[--endpoint local|tcp] [--spill PATH] [--resident-frac F] "
               "[--readahead N] [--checkpoint-interval N] [--autosave PATH] "
               "[--resilient] [--max-recoveries N] [--retry-backoff-ms B] "
               "[--fault-plan SPEC]\n"
               "exit codes: 0 ok, 1 failure, 2 usage, 3 bad config, "
               "4 transport fault, 5 spill fault\n",
               argv0);
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) try {
  using namespace cqs;
  if (argc < 2) usage(argv[0]);

  std::string circuit_path = argv[1];
  core::SimConfig config;
  config.num_ranks = 4;
  config.blocks_per_rank = 8;
  double budget_fraction = 0.0;
  double resident_fraction = 0.0;
  bool fuse = false;
  std::string checkpoint_path;
  int samples = 0;
  bool resilient = false;
  core::RecoveryOptions recovery;
  std::string fault_plan;

  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (arg == "--ranks") {
      config.num_ranks = std::atoi(next());
    } else if (arg == "--blocks") {
      config.blocks_per_rank = std::atoi(next());
    } else if (arg == "--codec") {
      config.codec = next();
    } else if (arg == "--policy") {
      config.codec_policy = next();
    } else if (arg == "--budget-frac") {
      budget_fraction = std::atof(next());
    } else if (arg == "--fuse") {
      fuse = true;
    } else if (arg == "--no-batching") {
      config.enable_run_batching = false;
    } else if (arg == "--max-run") {
      config.max_run_length =
          static_cast<std::size_t>(std::atoll(next()));
    } else if (arg == "--checkpoint") {
      checkpoint_path = next();
    } else if (arg == "--samples") {
      samples = std::atoi(next());
    } else if (arg == "--remap") {
      config.enable_qubit_remap = true;
      // Optional policy operand (defaults to the config's "lookahead").
      if (i + 1 < argc && argv[i + 1][0] != '-') {
        config.remap_policy = argv[++i];
      }
    } else if (arg == "--wire") {
      config.transport = next();
    } else if (arg == "--timeout-ms") {
      config.rank_timeout_ms = std::atoi(next());
    } else if (arg == "--endpoint") {
      config.socket_endpoint = next();
    } else if (arg == "--spill") {
      config.spill_path = next();
    } else if (arg == "--resident-frac") {
      resident_fraction = std::atof(next());
    } else if (arg == "--readahead") {
      config.readahead_blocks = std::atoi(next());
    } else if (arg == "--checkpoint-interval") {
      config.checkpoint_interval_gates =
          static_cast<std::uint64_t>(std::atoll(next()));
    } else if (arg == "--autosave") {
      config.auto_checkpoint_path = next();
    } else if (arg == "--resilient") {
      resilient = true;
    } else if (arg == "--max-recoveries") {
      recovery.max_recoveries = std::atoi(next());
    } else if (arg == "--retry-backoff-ms") {
      recovery.retry_backoff_ms = std::atoi(next());
    } else if (arg == "--fault-plan") {
      fault_plan = next();
    } else {
      usage(argv[0]);
    }
  }

  std::ifstream in(circuit_path);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", circuit_path.c_str());
    return 1;
  }
  qsim::Circuit circuit = qsim::parse_circuit(in);
  if (fuse) {
    qsim::FusionStats stats;
    circuit = qsim::fuse_single_qubit_gates(circuit, &stats);
    std::printf("fusion: %zu -> %zu gates (%zu runs)\n", stats.gates_before,
                stats.gates_after, stats.fused_runs);
  }
  config.num_qubits = circuit.num_qubits();
  // Shrink the default partition for small circuits: every block must hold
  // at least two amplitudes.
  while (config.num_ranks * config.blocks_per_rank * 2 >
             (1 << circuit.num_qubits()) &&
         (config.num_ranks > 1 || config.blocks_per_rank > 1)) {
    if (config.blocks_per_rank > 1) {
      config.blocks_per_rank /= 2;
    } else {
      config.num_ranks /= 2;
    }
  }
  if (budget_fraction > 0.0) {
    config.memory_budget_bytes = static_cast<std::size_t>(
        budget_fraction *
        static_cast<double>(
            core::memory_required_bytes(circuit.num_qubits())));
  }
  if (resident_fraction > 0.0) {
    config.resident_budget_bytes = static_cast<std::size_t>(
        resident_fraction *
        static_cast<double>(
            core::memory_required_bytes(circuit.num_qubits())));
  }

  if (!fault_plan.empty()) {
    runtime::FaultInjector::instance().arm(
        runtime::FaultPlan::parse(fault_plan));
  }

  core::CompressedStateSimulator sim = [&] {
    if (resilient) {
      return core::CompressedStateSimulator::run_resilient(config, circuit,
                                                           recovery);
    }
    core::CompressedStateSimulator plain(config);
    plain.apply_circuit(circuit);
    return plain;
  }();

  std::cout << sim.report();
  if (samples > 0) {
    Rng rng(20190517);
    std::printf("samples:\n");
    for (int s = 0; s < samples; ++s) {
      std::printf("  %0*llx\n", (circuit.num_qubits() + 3) / 4,
                  static_cast<unsigned long long>(sim.sample(rng)));
    }
  }
  if (!checkpoint_path.empty()) {
    sim.save_checkpoint(checkpoint_path);
    std::printf("checkpoint written to %s\n", checkpoint_path.c_str());
  }
#ifdef CQS_HAVE_SOCKET_TRANSPORT
  // Socket runs forked one endpoint process per rank at construction;
  // join them now (instead of silently in the destructor) and report the
  // process table so the launcher's fork/join lifecycle is visible.
  if (auto* socket = dynamic_cast<runtime::SocketTransport*>(
          &sim.comm().transport())) {
    std::printf("rank processes (joined):\n");
    for (const auto& proc : socket->join()) {
      std::printf("  rank %d: pid %d exited %d\n", proc.rank,
                  static_cast<int>(proc.pid), proc.exit_code);
    }
  }
#endif
  return 0;
} catch (const cqs::runtime::TransportError& e) {
  std::fprintf(stderr, "cqs_run: %s\n", e.what());
  return 4;
} catch (const cqs::runtime::SpillError& e) {
  std::fprintf(stderr, "cqs_run: %s\n", e.what());
  return 5;
} catch (const std::invalid_argument& e) {
  std::fprintf(stderr, "cqs_run: %s\n", e.what());
  return 3;
} catch (const std::exception& e) {
  std::fprintf(stderr, "cqs_run: %s\n", e.what());
  return 1;
}
