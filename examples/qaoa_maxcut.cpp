// QAOA MAXCUT under a tight memory budget: demonstrates the adaptive
// error-bound ladder (Section 3.7). The dense variational state does not
// fit losslessly, the simulator escalates to lossy compression, and the
// sampled cut quality survives — the paper's point that QAOA is robust to
// reduced-fidelity simulation.
//
//   $ ./qaoa_maxcut [qubits] [budget_fraction]
#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "circuits/qaoa.hpp"
#include "core/memory_model.hpp"
#include "core/simulator.hpp"
#include "qsim/state_vector.hpp"

int main(int argc, char** argv) {
  using namespace cqs;
  const int n = argc > 1 ? std::atoi(argv[1]) : 16;
  const double fraction = argc > 2 ? std::atof(argv[2]) : 0.2;

  const circuits::QaoaSpec spec{.num_qubits = n, .layers = 1};
  const auto edges = circuits::random_regular_graph(n, 4, spec.seed);
  const auto circuit = circuits::qaoa_maxcut_circuit(spec);
  std::printf("QAOA MAXCUT: %d qubits, %zu edges, %zu gates, budget %.0f%% "
              "of the raw state\n",
              n, edges.size(), circuit.size(), 100.0 * fraction);

  core::SimConfig config;
  config.num_qubits = n;
  config.num_ranks = 4;
  config.blocks_per_rank = 8;
  config.memory_budget_bytes = static_cast<std::size_t>(
      fraction * static_cast<double>(core::memory_required_bytes(n)));

  core::CompressedStateSimulator sim(config);
  sim.apply_circuit(circuit);

  // Sample cuts from the (possibly lossy) simulated distribution.
  Rng rng(99);
  const auto amps = sim.to_amplitudes();
  double total_cut = 0.0;
  const int shots = 512;
  for (int s = 0; s < shots; ++s) {
    double r = rng.next_double();
    std::uint64_t sample = 0;
    double norm = 0.0;
    for (std::uint64_t i = 0; i < amps.size(); ++i) {
      norm += std::norm(amps[i]);
    }
    for (std::uint64_t i = 0; i < amps.size(); ++i) {
      r -= std::norm(amps[i]) / norm;
      if (r <= 0.0) {
        sample = i;
        break;
      }
    }
    total_cut += circuits::cut_value(edges, sample);
  }
  std::printf("mean sampled cut: %.2f of %zu edges (random assignment: "
              "%.1f)\n",
              total_cut / shots, edges.size(), edges.size() / 2.0);
  std::printf("ladder level reached: %d, fidelity lower bound: %.4f\n",
              sim.ladder_level(), sim.fidelity_bound());
  std::cout << "\n--- simulation report ---\n" << sim.report();
  return 0;
}
