// Grover's search on the compressed simulator — the paper's flagship
// workload (61 qubits on 768 TB instead of 32 EB). At this reduced scale
// the same structure holds: the Grover state is so compressible that the
// run fits a budget of ~1% of the raw state size, and the compressed
// block cache hits on the oracle's repeated block patterns.
//
//   $ ./grover_search [data_qubits] [marked]
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <numbers>

#include "circuits/grover.hpp"
#include "core/memory_model.hpp"
#include "core/simulator.hpp"

int main(int argc, char** argv) {
  using namespace cqs;
  const int data_qubits = argc > 1 ? std::atoi(argv[1]) : 10;
  const std::uint64_t marked =
      argc > 2 ? std::strtoull(argv[2], nullptr, 0)
               : (std::uint64_t{0x5a5a5a5a} &
                  ((std::uint64_t{1} << data_qubits) - 1));

  // Optimal iteration count ~ pi/4 * sqrt(2^d).
  const int iterations = std::max(
      1, static_cast<int>(std::round(
             std::numbers::pi / 4.0 *
             std::sqrt(std::pow(2.0, data_qubits)))));
  const auto circuit = circuits::grover_circuit({.data_qubits = data_qubits,
                                                 .marked_state = marked,
                                                 .iterations = iterations});
  const int total_qubits = circuit.num_qubits();
  std::printf("Grover: %d data qubits (+%d ancilla), marked=0x%llx, "
              "%d iterations, %zu gates\n",
              data_qubits, total_qubits - data_qubits,
              static_cast<unsigned long long>(marked), iterations,
              circuit.size());

  core::SimConfig config;
  config.num_qubits = total_qubits;
  config.num_ranks = 4;
  config.blocks_per_rank = 16;
  // The paper ran 61-qubit Grover on 0.002% of the requirement; at small
  // scale 1% exercises the same always-under-pressure regime.
  config.memory_budget_bytes = static_cast<std::size_t>(
      0.01 * static_cast<double>(
                 core::memory_required_bytes(total_qubits)));

  core::CompressedStateSimulator sim(config);
  sim.apply_circuit(circuit);

  // Probability of the marked state: read the per-qubit marginals.
  double p_marked = 1.0;
  for (int q = 0; q < data_qubits; ++q) {
    const double p1 = sim.probability_one(q);
    p_marked *= ((marked >> q) & 1u) ? p1 : (1.0 - p1);
  }
  std::printf("product of per-qubit marginals at the marked pattern: %.4f "
              "(near 1 means the search converged)\n", p_marked);
  std::printf("memory requirement %s, budget %s, peak used %s\n",
              core::format_bytes(core::memory_required_bytes(total_qubits))
                  .c_str(),
              core::format_bytes(config.memory_budget_bytes).c_str(),
              core::format_bytes(sim.report().peak_compressed_bytes)
                  .c_str());
  std::cout << "\n--- simulation report ---\n" << sim.report();
  return 0;
}
