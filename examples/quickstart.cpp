// Quickstart: build a small circuit, run it on the compressed-state
// simulator, inspect probabilities, and print the simulation report.
//
//   $ ./quickstart
#include <cstdio>
#include <iostream>

#include "core/simulator.hpp"
#include "qsim/circuit.hpp"

int main() {
  using namespace cqs;

  // A 12-qubit GHZ-like circuit: H then a CNOT chain.
  qsim::Circuit circuit(12);
  circuit.h(0);
  for (int q = 0; q + 1 < 12; ++q) circuit.cx(q, q + 1);

  // Configure the simulator: 4 logical ranks, 8 compressed blocks each,
  // Solution C (qzc) as the lossy codec. With no memory budget set the
  // hybrid pipeline stays lossless (Zstd stand-in).
  core::SimConfig config;
  config.num_qubits = 12;
  config.num_ranks = 4;
  config.blocks_per_rank = 8;
  config.codec = "qzc";

  core::CompressedStateSimulator sim(config);
  sim.apply_circuit(circuit);

  // A GHZ state: every qubit reads P(|1>) = 0.5, and the state is
  // perfectly correlated.
  std::printf("P(q0 = 1) = %.3f   P(q11 = 1) = %.3f\n",
              sim.probability_one(0), sim.probability_one(11));
  std::printf("norm = %.6f, fidelity lower bound = %.6f\n", sim.norm(),
              sim.fidelity_bound());
  std::printf("compressed state: %zu bytes (ratio %.1fx)\n\n",
              sim.compressed_bytes(), sim.compression_ratio());

  // Intermediate measurement (the capability tensor-network simulators
  // lack, Section 2.2): collapse qubit 0 and watch qubit 11 follow.
  Rng rng(1234);
  const int outcome = sim.measure(0, rng);
  std::printf("measured q0 -> %d; now P(q11 = 1) = %.3f\n", outcome,
              sim.probability_one(11));

  std::cout << "\n--- simulation report ---\n" << sim.report();
  return 0;
}
