#include "sz/sz.hpp"

#include <array>
#include <cmath>
#include <cstring>
#include <stdexcept>
#include <vector>

#include "common/bits.hpp"
#include "compression/codec_scratch.hpp"
#include "lossless/huffman.hpp"
#include "lossless/zx.hpp"
#include "sz/fast_log.hpp"

namespace cqs::sz {
namespace {

constexpr std::byte kMagic0{'S'};
constexpr std::byte kMagic1{'Z'};
constexpr std::uint8_t kFlagSplit = 1;
constexpr std::uint8_t kFlagRelative = 2;

/// At most two prediction chains exist (complex-split mode); a fixed
/// array keeps quantize/dequantize allocation-free.
constexpr int kMaxChains = 2;

/// Quantization code 0 is reserved for unpredictable (outlier) points.
/// Lorenzo prediction + linear-scaling quantization over `values`.
/// `chains` = 1 (Solution A) or 2 (Solution B: even/odd interleaved).
/// `quantum` is the bin width (2 * error bound). Reconstruction happens
/// inline so the predictor sees decompressed values, exactly as the
/// decompressor will. Writes one code per element into `codes` and the
/// raw value of every code-0 element into `outliers` (both reused).
void quantize(std::span<const double> values, double quantum,
              std::uint32_t bins, int chains,
              std::vector<std::uint32_t>& codes,
              std::vector<double>& outliers) {
  codes.resize(values.size());
  outliers.clear();
  const auto half_bins = static_cast<std::int64_t>(bins / 2);
  std::array<double, kMaxChains> prev{};
  for (std::size_t i = 0; i < values.size(); ++i) {
    double& pred = prev[i % chains];
    const double diff = values[i] - pred;
    const double scaled = diff / quantum;
    bool predictable = std::abs(scaled) < static_cast<double>(half_bins) - 1;
    if (predictable) {
      const auto q = static_cast<std::int64_t>(std::llround(scaled));
      const double recon = pred + static_cast<double>(q) * quantum;
      // Guard against floating-point rounding at bin edges.
      if (std::abs(recon - values[i]) <= quantum * 0.5 + 1e-300) {
        codes[i] = static_cast<std::uint32_t>(q + half_bins);
        pred = recon;
        continue;
      }
    }
    codes[i] = 0;
    outliers.push_back(values[i]);
    pred = values[i];
  }
}

void dequantize(std::span<const std::uint32_t> codes,
                std::span<const double> outliers, double quantum,
                std::uint32_t bins, int chains, std::span<double> out) {
  const auto half_bins = static_cast<std::int64_t>(bins / 2);
  std::array<double, kMaxChains> prev{};
  std::size_t outlier_pos = 0;
  for (std::size_t i = 0; i < codes.size(); ++i) {
    double& pred = prev[i % chains];
    if (codes[i] == 0) {
      if (outlier_pos >= outliers.size()) {
        throw std::runtime_error("sz: outlier stream truncated");
      }
      pred = outliers[outlier_pos++];
    } else {
      const auto q = static_cast<std::int64_t>(codes[i]) - half_bins;
      pred += static_cast<double>(q) * quantum;
    }
    out[i] = pred;
  }
}

/// Encodes the code stream with Huffman and appends sections to `inner`.
void write_codes(Bytes& inner, std::span<const std::uint32_t> codes,
                 std::span<const double> outliers, std::uint32_t bins,
                 compression::CodecScratch& scratch) {
  scratch.counts.assign(bins, 0);
  for (auto c : codes) ++scratch.counts[c];
  scratch.huff_encoder.build(scratch.counts);
  scratch.huff_encoder.write_table(inner);
  put_varint(inner, codes.size());
  {
    BitWriter writer(inner);
    for (auto c : codes) scratch.huff_encoder.encode(writer, c);
  }
  put_varint(inner, outliers.size());
  for (double v : outliers) put_scalar(inner, v);
}

/// Reads the sections written by write_codes into the scratch vectors.
void read_codes(ByteSpan inner, std::size_t& offset, std::uint32_t bins,
                compression::CodecScratch& scratch) {
  scratch.huff_decoder.parse_table(inner, offset, bins);
  const std::uint64_t code_count = get_varint(inner, offset);
  auto& codes = scratch.quant_codes;
  codes.resize(code_count);
  {
    BitReader reader(inner.subspan(offset));
    for (std::uint64_t i = 0; i < code_count; ++i) {
      codes[i] = scratch.huff_decoder.decode(reader);
    }
    offset += (reader.position() + 7) / 8;
  }
  const std::uint64_t outlier_count = get_varint(inner, offset);
  auto& outliers = scratch.outliers;
  outliers.resize(outlier_count);
  for (std::uint64_t i = 0; i < outlier_count; ++i) {
    outliers[i] = get_scalar<double>(inner, offset);
  }
}

}  // namespace

Bytes SzCodec::compress(std::span<const double> data,
                        const compression::ErrorBound& bound) const {
  compression::CodecScratch scratch;
  return compress(data, bound, scratch);
}

void SzCodec::decompress(ByteSpan compressed, std::span<double> out) const {
  compression::CodecScratch scratch;
  decompress(compressed, out, scratch);
}

Bytes SzCodec::compress(std::span<const double> data,
                        const compression::ErrorBound& bound,
                        compression::CodecScratch& scratch) const {
  if (!supports(bound.mode) || !(bound.value > 0.0)) {
    throw std::invalid_argument("sz: unsupported or non-positive bound");
  }
  const bool relative =
      bound.mode == compression::BoundMode::kPointwiseRelative;
  const int chains = config_.complex_split ? 2 : 1;

  Bytes& inner = scratch.inner;
  inner.clear();
  double quantum;
  if (!relative) {
    quantum = 2.0 * bound.value;
    quantize(data, quantum, config_.max_bins, chains, scratch.quant_codes,
             scratch.outliers);
    write_codes(inner, scratch.quant_codes, scratch.outliers,
                config_.max_bins, scratch);
  } else {
    // Log-preprocessing: compress log2|d| under an absolute bound chosen so
    // that 2^|err| <= 1 + eps, with sign and exact-zero side channels.
    // Nonfinite values and exact zeros bypass the transform via the mask.
    // With the table-lookup transform the bound shrinks by the lookup's
    // worst-case error so the end-to-end relative bound still holds.
    const double log_bound =
        std::log2(1.0 + bound.value) -
        (config_.fast_log ? kFastLog2MaxError : 0.0);
    quantum = 2.0 * log_bound;
    auto& logs = scratch.values;
    logs.clear();
    logs.reserve(data.size());
    auto& negative = scratch.mask_a;
    auto& special = scratch.mask_b;  // zero or nonfinite
    negative.assign(data.size(), false);
    special.assign(data.size(), false);
    Bytes& special_values = scratch.special_bytes;
    special_values.clear();
    for (std::size_t i = 0; i < data.size(); ++i) {
      const double d = data[i];
      negative[i] = std::signbit(d);
      if (d == 0.0 || !std::isfinite(d)) {
        special[i] = true;
        put_scalar(special_values, d);
        // Keep prediction chains aligned: substitute a neutral log value.
        logs.push_back(0.0);
      } else {
        logs.push_back(config_.fast_log ? fast_log2_abs(d)
                                        : std::log2(std::abs(d)));
      }
    }
    quantize(logs, quantum, config_.max_bins, chains, scratch.quant_codes,
             scratch.outliers);
    write_codes(inner, scratch.quant_codes, scratch.outliers,
                config_.max_bins, scratch);
    write_bitmask(inner, negative);
    write_bitmask(inner, special);
    put_varint(inner, special_values.size() / sizeof(double));
    inner.insert(inner.end(), special_values.begin(), special_values.end());
  }

  Bytes& out = scratch.packed;
  out.clear();
  out.push_back(kMagic0);
  out.push_back(kMagic1);
  std::uint8_t flags = 0;
  if (config_.complex_split) flags |= kFlagSplit;
  if (relative) flags |= kFlagRelative;
  out.push_back(static_cast<std::byte>(flags));
  put_varint(out, data.size());
  put_varint(out, config_.max_bins);
  put_scalar(out, quantum);
  lossless::zx_compress_into(inner, {}, scratch.zx, out);
  return Bytes(out.begin(), out.end());
}

void SzCodec::decompress(ByteSpan compressed, std::span<double> out,
                         compression::CodecScratch& scratch) const {
  if (compressed.size() < 3 || compressed[0] != kMagic0 ||
      compressed[1] != kMagic1) {
    throw std::runtime_error("sz: bad magic");
  }
  const auto flags = static_cast<std::uint8_t>(compressed[2]);
  const bool relative = (flags & kFlagRelative) != 0;
  const int chains = (flags & kFlagSplit) != 0 ? 2 : 1;
  std::size_t offset = 3;
  const std::uint64_t count = get_varint(compressed, offset);
  const auto bins =
      static_cast<std::uint32_t>(get_varint(compressed, offset));
  const auto quantum = get_scalar<double>(compressed, offset);
  if (out.size() != count) {
    throw std::runtime_error("sz: output size mismatch");
  }

  Bytes& inner = scratch.inner;
  lossless::zx_decompress_into(compressed.subspan(offset), scratch.zx, inner);
  std::size_t pos = 0;
  read_codes(inner, pos, bins, scratch);
  if (scratch.quant_codes.size() != count) {
    throw std::runtime_error("sz: code count mismatch");
  }

  if (!relative) {
    dequantize(scratch.quant_codes, scratch.outliers, quantum, bins, chains,
               out);
    return;
  }
  auto& logs = scratch.values;
  logs.resize(count);
  dequantize(scratch.quant_codes, scratch.outliers, quantum, bins, chains,
             logs);
  auto& negative = scratch.mask_a;
  auto& special = scratch.mask_b;
  read_bitmask(inner, pos, negative);
  read_bitmask(inner, pos, special);
  const std::uint64_t special_count = get_varint(inner, pos);
  auto& special_values = scratch.special_values;
  special_values.resize(special_count);
  for (std::uint64_t i = 0; i < special_count; ++i) {
    special_values[i] = get_scalar<double>(inner, pos);
  }
  std::size_t special_pos = 0;
  for (std::size_t i = 0; i < count; ++i) {
    if (special[i]) {
      if (special_pos >= special_values.size()) {
        throw std::runtime_error("sz: special stream truncated");
      }
      out[i] = special_values[special_pos++];
    } else {
      const double magnitude = std::exp2(logs[i]);
      out[i] = negative[i] ? -magnitude : magnitude;
    }
  }
}

std::size_t SzCodec::element_count(ByteSpan compressed) const {
  if (compressed.size() < 3 || compressed[0] != kMagic0 ||
      compressed[1] != kMagic1) {
    throw std::runtime_error("sz: bad magic");
  }
  std::size_t offset = 3;
  return get_varint(compressed, offset);
}

}  // namespace cqs::sz
