#include "sz/sz.hpp"

#include <cmath>
#include <cstring>
#include <stdexcept>
#include <vector>

#include "common/bits.hpp"
#include "lossless/huffman.hpp"
#include "lossless/zx.hpp"
#include "sz/fast_log.hpp"

namespace cqs::sz {
namespace {

constexpr std::byte kMagic0{'S'};
constexpr std::byte kMagic1{'Z'};
constexpr std::uint8_t kFlagSplit = 1;
constexpr std::uint8_t kFlagRelative = 2;

/// Quantization code 0 is reserved for unpredictable (outlier) points.
struct QuantResult {
  std::vector<std::uint32_t> codes;    // one per element
  std::vector<double> outliers;        // raw values for code-0 elements
};

/// Lorenzo prediction + linear-scaling quantization over `values`.
/// `chains` = 1 (Solution A) or 2 (Solution B: even/odd interleaved).
/// `quantum` is the bin width (2 * error bound). Reconstruction happens
/// inline so the predictor sees decompressed values, exactly as the
/// decompressor will.
QuantResult quantize(std::span<const double> values, double quantum,
                     std::uint32_t bins, int chains) {
  QuantResult result;
  result.codes.resize(values.size());
  const auto half_bins = static_cast<std::int64_t>(bins / 2);
  std::vector<double> prev(chains, 0.0);
  for (std::size_t i = 0; i < values.size(); ++i) {
    double& pred = prev[i % chains];
    const double diff = values[i] - pred;
    const double scaled = diff / quantum;
    bool predictable = std::abs(scaled) < static_cast<double>(half_bins) - 1;
    if (predictable) {
      const auto q = static_cast<std::int64_t>(std::llround(scaled));
      const double recon = pred + static_cast<double>(q) * quantum;
      // Guard against floating-point rounding at bin edges.
      if (std::abs(recon - values[i]) <= quantum * 0.5 + 1e-300) {
        result.codes[i] = static_cast<std::uint32_t>(q + half_bins);
        pred = recon;
        continue;
      }
    }
    result.codes[i] = 0;
    result.outliers.push_back(values[i]);
    pred = values[i];
  }
  return result;
}

void dequantize(std::span<const std::uint32_t> codes,
                std::span<const double> outliers, double quantum,
                std::uint32_t bins, int chains, std::span<double> out) {
  const auto half_bins = static_cast<std::int64_t>(bins / 2);
  std::vector<double> prev(chains, 0.0);
  std::size_t outlier_pos = 0;
  for (std::size_t i = 0; i < codes.size(); ++i) {
    double& pred = prev[i % chains];
    if (codes[i] == 0) {
      if (outlier_pos >= outliers.size()) {
        throw std::runtime_error("sz: outlier stream truncated");
      }
      pred = outliers[outlier_pos++];
    } else {
      const auto q = static_cast<std::int64_t>(codes[i]) - half_bins;
      pred += static_cast<double>(q) * quantum;
    }
    out[i] = pred;
  }
}

/// Encodes the code stream with Huffman and appends sections to `inner`.
void write_codes(Bytes& inner, const QuantResult& quant, std::uint32_t bins) {
  std::vector<std::uint64_t> counts(bins, 0);
  for (auto c : quant.codes) ++counts[c];
  const auto encoder = lossless::HuffmanEncoder::from_counts(counts);
  encoder.write_table(inner);
  put_varint(inner, quant.codes.size());
  {
    BitWriter writer(inner);
    for (auto c : quant.codes) encoder.encode(writer, c);
  }
  put_varint(inner, quant.outliers.size());
  for (double v : quant.outliers) put_scalar(inner, v);
}

QuantResult read_codes(ByteSpan inner, std::size_t& offset,
                       std::uint32_t bins) {
  const auto decoder = lossless::HuffmanDecoder::read_table(inner, offset, bins);
  const std::uint64_t code_count = get_varint(inner, offset);
  QuantResult quant;
  quant.codes.resize(code_count);
  {
    BitReader reader(inner.subspan(offset));
    for (std::uint64_t i = 0; i < code_count; ++i) {
      quant.codes[i] = decoder.decode(reader);
    }
    offset += (reader.position() + 7) / 8;
  }
  const std::uint64_t outlier_count = get_varint(inner, offset);
  quant.outliers.resize(outlier_count);
  for (std::uint64_t i = 0; i < outlier_count; ++i) {
    quant.outliers[i] = get_scalar<double>(inner, offset);
  }
  return quant;
}

/// Packs one bit per element (sign / zero masks for the relative mode).
void write_bitmask(Bytes& inner, const std::vector<bool>& mask) {
  put_varint(inner, mask.size());
  BitWriter writer(inner);
  for (bool b : mask) writer.write_bit(b ? 1 : 0);
}

std::vector<bool> read_bitmask(ByteSpan inner, std::size_t& offset) {
  const std::uint64_t n = get_varint(inner, offset);
  std::vector<bool> mask(n);
  BitReader reader(inner.subspan(offset));
  for (std::uint64_t i = 0; i < n; ++i) mask[i] = reader.read_bit() != 0;
  offset += (reader.position() + 7) / 8;
  return mask;
}

}  // namespace

Bytes SzCodec::compress(std::span<const double> data,
                        const compression::ErrorBound& bound) const {
  if (!supports(bound.mode) || !(bound.value > 0.0)) {
    throw std::invalid_argument("sz: unsupported or non-positive bound");
  }
  const bool relative =
      bound.mode == compression::BoundMode::kPointwiseRelative;
  const int chains = config_.complex_split ? 2 : 1;

  Bytes inner;
  double quantum;
  if (!relative) {
    quantum = 2.0 * bound.value;
    const QuantResult quant =
        quantize(data, quantum, config_.max_bins, chains);
    write_codes(inner, quant, config_.max_bins);
  } else {
    // Log-preprocessing: compress log2|d| under an absolute bound chosen so
    // that 2^|err| <= 1 + eps, with sign and exact-zero side channels.
    // Nonfinite values and exact zeros bypass the transform via the mask.
    // With the table-lookup transform the bound shrinks by the lookup's
    // worst-case error so the end-to-end relative bound still holds.
    const double log_bound =
        std::log2(1.0 + bound.value) -
        (config_.fast_log ? kFastLog2MaxError : 0.0);
    quantum = 2.0 * log_bound;
    std::vector<double> logs;
    logs.reserve(data.size());
    std::vector<bool> negative(data.size());
    std::vector<bool> special(data.size());  // zero or nonfinite
    Bytes special_values;
    for (std::size_t i = 0; i < data.size(); ++i) {
      const double d = data[i];
      negative[i] = std::signbit(d);
      if (d == 0.0 || !std::isfinite(d)) {
        special[i] = true;
        put_scalar(special_values, d);
        // Keep prediction chains aligned: substitute a neutral log value.
        logs.push_back(0.0);
      } else {
        logs.push_back(config_.fast_log ? fast_log2_abs(d)
                                        : std::log2(std::abs(d)));
      }
    }
    const QuantResult quant =
        quantize(logs, quantum, config_.max_bins, chains);
    write_codes(inner, quant, config_.max_bins);
    write_bitmask(inner, negative);
    write_bitmask(inner, special);
    put_varint(inner, special_values.size() / sizeof(double));
    inner.insert(inner.end(), special_values.begin(), special_values.end());
  }

  const Bytes packed = lossless::zx_compress(inner);

  Bytes out;
  out.reserve(packed.size() + 32);
  out.push_back(kMagic0);
  out.push_back(kMagic1);
  std::uint8_t flags = 0;
  if (config_.complex_split) flags |= kFlagSplit;
  if (relative) flags |= kFlagRelative;
  out.push_back(static_cast<std::byte>(flags));
  put_varint(out, data.size());
  put_varint(out, config_.max_bins);
  put_scalar(out, quantum);
  out.insert(out.end(), packed.begin(), packed.end());
  return out;
}

void SzCodec::decompress(ByteSpan compressed, std::span<double> out) const {
  if (compressed.size() < 3 || compressed[0] != kMagic0 ||
      compressed[1] != kMagic1) {
    throw std::runtime_error("sz: bad magic");
  }
  const auto flags = static_cast<std::uint8_t>(compressed[2]);
  const bool relative = (flags & kFlagRelative) != 0;
  const int chains = (flags & kFlagSplit) != 0 ? 2 : 1;
  std::size_t offset = 3;
  const std::uint64_t count = get_varint(compressed, offset);
  const auto bins =
      static_cast<std::uint32_t>(get_varint(compressed, offset));
  const auto quantum = get_scalar<double>(compressed, offset);
  if (out.size() != count) {
    throw std::runtime_error("sz: output size mismatch");
  }

  const Bytes inner = lossless::zx_decompress(compressed.subspan(offset));
  std::size_t pos = 0;
  const QuantResult quant = read_codes(inner, pos, bins);
  if (quant.codes.size() != count) {
    throw std::runtime_error("sz: code count mismatch");
  }

  if (!relative) {
    dequantize(quant.codes, quant.outliers, quantum, bins, chains, out);
    return;
  }
  std::vector<double> logs(count);
  dequantize(quant.codes, quant.outliers, quantum, bins, chains, logs);
  const std::vector<bool> negative = read_bitmask(inner, pos);
  const std::vector<bool> special = read_bitmask(inner, pos);
  const std::uint64_t special_count = get_varint(inner, pos);
  std::vector<double> special_values(special_count);
  for (std::uint64_t i = 0; i < special_count; ++i) {
    special_values[i] = get_scalar<double>(inner, pos);
  }
  std::size_t special_pos = 0;
  for (std::size_t i = 0; i < count; ++i) {
    if (special[i]) {
      if (special_pos >= special_values.size()) {
        throw std::runtime_error("sz: special stream truncated");
      }
      out[i] = special_values[special_pos++];
    } else {
      const double magnitude = std::exp2(logs[i]);
      out[i] = negative[i] ? -magnitude : magnitude;
    }
  }
}

std::size_t SzCodec::element_count(ByteSpan compressed) const {
  if (compressed.size() < 3 || compressed[0] != kMagic0 ||
      compressed[1] != kMagic1) {
    throw std::runtime_error("sz: bad magic");
  }
  std::size_t offset = 3;
  return get_varint(compressed, offset);
}

}  // namespace cqs::sz
