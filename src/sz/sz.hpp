// SZ-like prediction-based lossy compressor — the paper's Solution A
// (classic SZ 2.1 pipeline on a 1D array) and Solution B (complex-type
// aware prediction with a 16,384-entry quantization table).
//
// Pipeline (Section 2.3 / 4.2):
//   1. Lorenzo (order-1) prediction from the previous *reconstructed*
//      value — two independent chains in complex-split mode.
//   2. Linear-scaling quantization of the prediction residual into
//      2*bound-wide bins; out-of-range residuals become "unpredictable"
//      outliers stored verbatim.
//   3. Canonical Huffman coding of the quantization codes.
//   4. zx (Zstd stand-in) lossless compression of everything.
//
// Pointwise-relative bounds use the standard log-preprocessing transform:
// compress log2|d| with the equivalent absolute bound log2(1 + eps),
// plus sign and exact-zero side channels.
#pragma once

#include <stdexcept>

#include "compression/compressor.hpp"
#include "lossless/huffman.hpp"

namespace cqs::sz {

struct SzConfig {
  /// Solution B predicts real/imaginary interleaved streams separately.
  bool complex_split = false;
  /// Quantization bins (power of two). SZ 2.1 default 65536; Solution B
  /// uses 16384 for faster coding.
  std::uint32_t max_bins = 65536;
  /// SZ 2.1's precomputation-based log transform (table lookup instead of
  /// a libm call per point); the tiny lookup error is deducted from the
  /// log-domain bound so the pointwise relative bound still holds.
  bool fast_log = true;
};

class SzCodec final : public compression::Compressor {
 public:
  explicit SzCodec(SzConfig config = {}) : config_(config) {
    // The Huffman decoder admits at most 2^16 symbols; a larger bin count
    // would compress containers its own decompress rejects.
    if (config_.max_bins > lossless::kMaxAlphabetSize) {
      throw std::invalid_argument("sz: max_bins exceeds 2^16");
    }
  }

  std::string name() const override {
    return config_.complex_split ? "sz-complex" : "sz";
  }
  bool supports(compression::BoundMode mode) const override {
    return mode == compression::BoundMode::kAbsolute ||
           mode == compression::BoundMode::kPointwiseRelative;
  }
  Bytes compress(std::span<const double> data,
                 const compression::ErrorBound& bound) const override;
  void decompress(ByteSpan compressed, std::span<double> out) const override;
  Bytes compress(std::span<const double> data,
                 const compression::ErrorBound& bound,
                 compression::CodecScratch& scratch) const override;
  void decompress(ByteSpan compressed, std::span<double> out,
                  compression::CodecScratch& scratch) const override;
  std::size_t element_count(ByteSpan compressed) const override;

  const SzConfig& config() const { return config_; }

 private:
  SzConfig config_;
};

}  // namespace cqs::sz
