// Precomputation-based log2 — the SZ 2.1 acceleration the paper cites
// ("the SZ development team developed SZ 2.1 leveraging a table lookup
// method to accelerate the compression significantly"). log2|d| is split
// into the IEEE exponent plus a linearly interpolated lookup of the
// mantissa's log2, avoiding a libm call per data point in the
// pointwise-relative transform.
#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <cstring>

namespace cqs::sz {

namespace detail {

inline constexpr int kLutBits = 12;
inline constexpr std::size_t kLutSize = (1u << kLutBits) + 1;

/// lut[i] = log2(1 + i / 2^kLutBits); built once per process.
inline const std::array<double, kLutSize>& mantissa_log_lut() {
  static const std::array<double, kLutSize> lut = [] {
    std::array<double, kLutSize> table{};
    for (std::size_t i = 0; i < kLutSize; ++i) {
      table[i] = std::log2(
          1.0 + static_cast<double>(i) /
                    static_cast<double>(1u << kLutBits));
    }
    return table;
  }();
  return lut;
}

}  // namespace detail

/// Maximum absolute error of fast_log2_abs vs std::log2 (interpolation of
/// a concave function over 2^-12-wide cells, analytically ~1.1e-8); callers shrink their log-
/// domain bound by this margin.
inline constexpr double kFastLog2MaxError = 2e-8;

/// log2(|d|) for finite nonzero d. Denormals fall back to libm (their
/// exponent field is zero, breaking the bit split).
inline double fast_log2_abs(double d) {
  std::uint64_t bits;
  std::memcpy(&bits, &d, 8);
  const auto raw_exponent =
      static_cast<std::int64_t>((bits >> 52) & 0x7ff);
  if (raw_exponent == 0) return std::log2(std::abs(d));  // denormal
  const double exponent = static_cast<double>(raw_exponent - 1023);
  const std::uint64_t mantissa = bits & 0xfffffffffffffull;
  const auto index =
      static_cast<std::size_t>(mantissa >> (52 - detail::kLutBits));
  // Linear interpolation between adjacent table cells.
  const double frac =
      static_cast<double>(mantissa &
                          ((1ull << (52 - detail::kLutBits)) - 1)) /
      static_cast<double>(1ull << (52 - detail::kLutBits));
  const auto& lut = detail::mantissa_log_lut();
  return exponent + lut[index] + frac * (lut[index + 1] - lut[index]);
}

}  // namespace cqs::sz
