// Greedy hash-chain LZ77 tokenizer. Output token stream format (all
// varints little-endian LEB128):
//
//   repeat:
//     lit_len   varint
//     literals  lit_len raw bytes
//     match_len varint   (0 terminates the stream; otherwise length-4)
//     offset    varint   (>= 1, distance back from current position)
//
// Long runs (the all-zero early state vector) collapse to a single
// offset-1 match, which is what gives the lossless stage its high ratio at
// the start of a simulation.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/bytes.hpp"

namespace cqs::lossless {

inline constexpr std::size_t kMinMatch = 4;

struct Lz77Config {
  int max_chain = 16;        // positions examined per match attempt
  std::size_t max_match = 1 << 20;  // cap so pathological inputs stay O(n)
  /// Early exit: a match at least this long is accepted without walking
  /// the rest of the chain. Keeps highly repetitive inputs (hash buckets
  /// with thousands of candidates) from degrading to O(n * max_chain).
  std::size_t good_match = 32;
};

/// Reusable hash-chain state. The 2^18-entry head table is generation
/// stamped: an entry only counts when its stamp matches the current pass,
/// so reusing the scratch costs O(1) instead of a 2 MiB zero-fill, and the
/// chain-link table is grown monotonically (stale entries are unreachable
/// because every reachable link was written during the current pass).
struct Lz77Scratch {
  std::vector<std::int64_t> head;       // hash -> most recent position
  std::vector<std::uint32_t> head_gen;  // per-entry generation stamp
  std::vector<std::int64_t> prev;       // position -> previous in chain
  std::uint32_t generation = 0;

  /// Bytes held by the scratch (Eq. 8 accounting).
  std::size_t bytes() const {
    return head.capacity() * sizeof(std::int64_t) +
           head_gen.capacity() * sizeof(std::uint32_t) +
           prev.capacity() * sizeof(std::int64_t);
  }
};

/// Tokenizes `input`; appends the token stream to `out`.
void lz77_tokenize(ByteSpan input, Bytes& out, const Lz77Config& config = {});

/// Scratch-pooled variant: identical token stream, zero allocations once
/// `scratch` capacities are warm.
void lz77_tokenize(ByteSpan input, Bytes& out, const Lz77Config& config,
                   Lz77Scratch& scratch);

/// Reverses lz77_tokenize. `expected_size` reserves the output; the stream
/// is self-terminating. Throws std::runtime_error on malformed input.
Bytes lz77_detokenize(ByteSpan tokens, std::size_t expected_size);

/// In-place variant: replaces the contents of `out` (capacity reused).
void lz77_detokenize(ByteSpan tokens, std::size_t expected_size, Bytes& out);

}  // namespace cqs::lossless
