// Greedy hash-chain LZ77 tokenizer. Output token stream format (all
// varints little-endian LEB128):
//
//   repeat:
//     lit_len   varint
//     literals  lit_len raw bytes
//     match_len varint   (0 terminates the stream; otherwise length-4)
//     offset    varint   (>= 1, distance back from current position)
//
// Long runs (the all-zero early state vector) collapse to a single
// offset-1 match, which is what gives the lossless stage its high ratio at
// the start of a simulation.
#pragma once

#include <cstddef>

#include "common/bytes.hpp"

namespace cqs::lossless {

inline constexpr std::size_t kMinMatch = 4;

struct Lz77Config {
  int max_chain = 16;        // positions examined per match attempt
  std::size_t max_match = 1 << 20;  // cap so pathological inputs stay O(n)
  /// Early exit: a match at least this long is accepted without walking
  /// the rest of the chain. Keeps highly repetitive inputs (hash buckets
  /// with thousands of candidates) from degrading to O(n * max_chain).
  std::size_t good_match = 32;
};

/// Tokenizes `input`; appends the token stream to `out`.
void lz77_tokenize(ByteSpan input, Bytes& out, const Lz77Config& config = {});

/// Reverses lz77_tokenize. `expected_size` reserves the output; the stream
/// is self-terminating. Throws std::runtime_error on malformed input.
Bytes lz77_detokenize(ByteSpan tokens, std::size_t expected_size);

}  // namespace cqs::lossless
