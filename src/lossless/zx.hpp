// zx: the repository's Zstandard stand-in. A container that applies
// hash-chain LZ77 followed by canonical Huffman coding of the token
// stream, with a raw-store fallback so compression never expands data by
// more than the small header.
//
// Container layout:
//   magic   2 bytes  'Z' 'X'
//   mode    1 byte   0 = raw, 2 = lz77, 3 = lz77 + huffman
//   size    varint   original byte count
//   [mode 3] table + varint token byte count
//   payload
#pragma once

#include "common/bytes.hpp"
#include "lossless/lz77.hpp"

namespace cqs::lossless {

struct ZxConfig {
  Lz77Config lz;
  bool enable_huffman = true;
};

/// Compresses `input`; never throws on valid input and never expands beyond
/// input size + header bytes.
Bytes zx_compress(ByteSpan input, const ZxConfig& config = {});

/// Decompresses a zx container. Throws std::runtime_error on corruption.
Bytes zx_decompress(ByteSpan compressed);

/// Original (decompressed) size recorded in a zx container header.
std::size_t zx_original_size(ByteSpan compressed);

}  // namespace cqs::lossless
