// zx: the repository's Zstandard stand-in. A container that applies
// hash-chain LZ77 followed by canonical Huffman coding of the token
// stream, with a raw-store fallback so compression never expands data by
// more than the small header.
//
// Container layout:
//   magic   2 bytes  'Z' 'X'
//   mode    1 byte   0 = raw, 2 = lz77, 3 = lz77 + huffman
//   size    varint   original byte count
//   [mode 3] table + varint token byte count
//   payload
//
// The *_into variants append/replace into caller-owned buffers and thread
// a ZxScratch, so a warm scratch makes a full compress/decompress round
// allocation-free; the value-returning entry points forward to them.
#pragma once

#include "common/bytes.hpp"
#include "lossless/huffman.hpp"
#include "lossless/lz77.hpp"

namespace cqs::lossless {

struct ZxConfig {
  Lz77Config lz;
  bool enable_huffman = true;
};

/// Reusable working state for one zx compress/decompress stream: the LZ77
/// hash chains, token/entropy staging buffers, and the Huffman coder pair.
struct ZxScratch {
  Lz77Scratch lz;
  Bytes tokens;  // LZ77 token stream (compress) / decoded tokens (decompress)
  Bytes huffed;  // Huffman-coded candidate payload
  HuffmanEncoder encoder;
  HuffmanDecoder decoder;

  /// Bytes held across passes, Huffman coder pools included (Eq. 8
  /// accounting).
  std::size_t bytes() const {
    return lz.bytes() + tokens.capacity() + huffed.capacity() +
           encoder.bytes() + decoder.bytes();
  }
};

/// Compresses `input`; never throws on valid input and never expands beyond
/// input size + header bytes.
Bytes zx_compress(ByteSpan input, const ZxConfig& config = {});

/// Scratch-pooled variant producing the identical container byte-for-byte;
/// appends to `out` (existing contents untouched).
void zx_compress_into(ByteSpan input, const ZxConfig& config,
                      ZxScratch& scratch, Bytes& out);

/// Decompresses a zx container. Throws std::runtime_error on corruption.
Bytes zx_decompress(ByteSpan compressed);

/// Scratch-pooled variant; replaces the contents of `out`.
void zx_decompress_into(ByteSpan compressed, ZxScratch& scratch, Bytes& out);

/// Original (decompressed) size recorded in a zx container header.
std::size_t zx_original_size(ByteSpan compressed);

}  // namespace cqs::lossless
