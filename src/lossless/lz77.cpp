#include "lossless/lz77.hpp"

#include <algorithm>
#include <bit>
#include <cstring>
#include <stdexcept>
#include <vector>

namespace cqs::lossless {
namespace {

// Hash 6 bytes, not the minimum match length of 4: double-precision
// payloads share 4-byte prefixes (sign/exponent/top mantissa) so widely
// that 4-byte buckets degenerate into thousands of short false
// candidates; 6 bytes keeps buckets selective. Only matches of at least
// kMinEmit bytes are emitted (shorter ones barely cover token overhead).
inline std::uint32_t hash6(const std::byte* p) {
  std::uint64_t v;
  std::memcpy(&v, p, 8);
  v &= 0xffffffffffffull;  // low 6 bytes
  return static_cast<std::uint32_t>((v * 0x9e3779b185ebca87ull) >> 46);
}

constexpr std::size_t kHashSize = 1u << 18;
constexpr std::size_t kMinEmit = 6;
constexpr std::size_t kHashBytes = 8;  // hash6 reads 8 bytes

/// Length of the common prefix of [a, limit) and [b, limit-relative).
inline std::size_t match_length(const std::byte* a, const std::byte* b,
                                const std::byte* limit) {
  const std::byte* start = a;
  while (a + 8 <= limit) {
    std::uint64_t va;
    std::uint64_t vb;
    std::memcpy(&va, a, 8);
    std::memcpy(&vb, b, 8);
    if (va != vb) {
      const std::uint64_t diff = va ^ vb;
      return static_cast<std::size_t>(a - start) +
             (std::countr_zero(diff) >> 3);
    }
    a += 8;
    b += 8;
  }
  while (a < limit && *a == *b) {
    ++a;
    ++b;
  }
  return static_cast<std::size_t>(a - start);
}

/// Opens a tokenize pass over `scratch`: bumps the generation so every
/// head-table entry from earlier passes reads as empty, and guarantees the
/// chain table covers `n` positions. Generation wrap (once per 2^32
/// passes) falls back to one full restamp.
void begin_pass(Lz77Scratch& scratch, std::size_t n) {
  if (scratch.head.size() != kHashSize) {
    scratch.head.assign(kHashSize, -1);
    scratch.head_gen.assign(kHashSize, 0);
    scratch.generation = 0;
  }
  if (++scratch.generation == 0) {
    std::fill(scratch.head_gen.begin(), scratch.head_gen.end(), 0);
    scratch.generation = 1;
  }
  if (scratch.prev.size() < n) scratch.prev.resize(n);
}

}  // namespace

void lz77_tokenize(ByteSpan input, Bytes& out, const Lz77Config& config,
                   Lz77Scratch& scratch) {
  const std::size_t n = input.size();
  const std::byte* base = input.data();
  begin_pass(scratch, n);

  auto* const head = scratch.head.data();
  auto* const head_gen = scratch.head_gen.data();
  auto* const prev = scratch.prev.data();
  const std::uint32_t gen = scratch.generation;
  const auto head_at = [&](std::uint32_t h) -> std::int64_t {
    return head_gen[h] == gen ? head[h] : -1;
  };

  std::size_t literal_start = 0;
  std::size_t pos = 0;
  while (pos + kHashBytes <= n) {
    const std::uint32_t h = hash6(base + pos);
    std::int64_t candidate = head_at(h);
    std::size_t best_len = 0;
    std::size_t best_offset = 0;
    int chain = config.max_chain;
    while (candidate >= 0 && chain-- > 0) {
      const auto cand_pos = static_cast<std::size_t>(candidate);
      const std::size_t len =
          match_length(base + pos, base + cand_pos, base + n);
      if (len > best_len) {
        best_len = len;
        best_offset = pos - cand_pos;
        if (len >= config.good_match || len >= config.max_match) break;
      }
      candidate = prev[cand_pos];
    }

    if (best_len >= kMinEmit) {
      best_len = std::min(best_len, config.max_match);
      // Emit pending literals + this match.
      put_varint(out, pos - literal_start);
      out.insert(out.end(), base + literal_start, base + pos);
      put_varint(out, best_len - kMinMatch + 1);
      put_varint(out, best_offset);

      // Index the covered positions (sparsely for long matches to stay fast).
      const std::size_t end = pos + best_len;
      const std::size_t step = best_len > 512 ? 509 : 1;  // prime stride
      for (std::size_t i = pos; i + kHashBytes <= n && i < end; i += step) {
        const std::uint32_t hi = hash6(base + i);
        prev[i] = head_at(hi);
        head[hi] = static_cast<std::int64_t>(i);
        head_gen[hi] = gen;
      }
      pos = end;
      literal_start = pos;
    } else {
      prev[pos] = head_at(h);
      head[h] = static_cast<std::int64_t>(pos);
      head_gen[h] = gen;
      ++pos;
    }
  }
  // Trailing literals + terminator.
  put_varint(out, n - literal_start);
  out.insert(out.end(), base + literal_start, base + n);
  put_varint(out, 0);
}

void lz77_tokenize(ByteSpan input, Bytes& out, const Lz77Config& config) {
  Lz77Scratch scratch;
  lz77_tokenize(input, out, config, scratch);
}

void lz77_detokenize(ByteSpan tokens, std::size_t expected_size, Bytes& out) {
  out.clear();
  out.reserve(expected_size);
  std::size_t offset = 0;
  while (true) {
    const std::uint64_t lit_len = get_varint(tokens, offset);
    if (offset + lit_len > tokens.size()) {
      throw std::runtime_error("cqs: lz77 literal overrun");
    }
    out.insert(out.end(), tokens.begin() + offset,
               tokens.begin() + offset + lit_len);
    offset += lit_len;
    const std::uint64_t len_code = get_varint(tokens, offset);
    if (len_code == 0) break;
    const std::uint64_t match_len = len_code - 1 + kMinMatch;
    const std::uint64_t match_offset = get_varint(tokens, offset);
    if (match_offset == 0 || match_offset > out.size()) {
      throw std::runtime_error("cqs: lz77 bad match offset");
    }
    // Forward byte copy: overlapping matches (offset < len) replicate runs,
    // so this must not be a memmove. Resizing once keeps the loop free of
    // per-byte capacity checks.
    const std::size_t old_size = out.size();
    out.resize(old_size + match_len);
    std::byte* dst = out.data() + old_size;
    const std::byte* src = dst - match_offset;
    for (std::uint64_t i = 0; i < match_len; ++i) dst[i] = src[i];
  }
}

Bytes lz77_detokenize(ByteSpan tokens, std::size_t expected_size) {
  Bytes out;
  lz77_detokenize(tokens, expected_size, out);
  return out;
}

}  // namespace cqs::lossless
