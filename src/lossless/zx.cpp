#include "lossless/zx.hpp"

#include <array>
#include <stdexcept>

#include "common/bits.hpp"
#include "lossless/huffman.hpp"

namespace cqs::lossless {
namespace {

constexpr std::byte kMagic0{'Z'};
constexpr std::byte kMagic1{'X'};
constexpr std::byte kModeRaw{0};
constexpr std::byte kModeLz{2};
constexpr std::byte kModeLzHuff{3};

Bytes huffman_bytes(ByteSpan data) {
  std::array<std::uint64_t, 256> counts{};
  for (std::byte b : data) ++counts[static_cast<std::uint8_t>(b)];
  const auto encoder = HuffmanEncoder::from_counts(counts);
  Bytes out;
  encoder.write_table(out);
  put_varint(out, data.size());
  BitWriter writer(out);
  for (std::byte b : data) {
    encoder.encode(writer, static_cast<std::uint8_t>(b));
  }
  writer.flush();
  return out;
}

Bytes unhuffman_bytes(ByteSpan data) {
  std::size_t offset = 0;
  const auto decoder = HuffmanDecoder::read_table(data, offset, 256);
  const std::uint64_t count = get_varint(data, offset);
  Bytes out;
  out.reserve(count);
  BitReader reader(data.subspan(offset));
  for (std::uint64_t i = 0; i < count; ++i) {
    out.push_back(static_cast<std::byte>(decoder.decode(reader)));
  }
  return out;
}

}  // namespace

Bytes zx_compress(ByteSpan input, const ZxConfig& config) {
  Bytes header;
  header.push_back(kMagic0);
  header.push_back(kMagic1);

  Bytes tokens;
  lz77_tokenize(input, tokens, config.lz);

  Bytes best_payload;
  std::byte mode = kModeRaw;
  if (tokens.size() < input.size()) {
    best_payload = std::move(tokens);
    mode = kModeLz;
  } else {
    best_payload.assign(input.begin(), input.end());
    tokens.clear();
  }

  if (config.enable_huffman && mode == kModeLz && !best_payload.empty()) {
    Bytes huffed = huffman_bytes(best_payload);
    if (huffed.size() < best_payload.size()) {
      best_payload = std::move(huffed);
      mode = kModeLzHuff;
    }
  }

  Bytes out = std::move(header);
  out.push_back(mode);
  put_varint(out, input.size());
  out.insert(out.end(), best_payload.begin(), best_payload.end());
  // Raw fallback guarantee: if the pipeline expanded the data, store raw.
  if (mode != kModeRaw && out.size() > input.size() + 12) {
    out.clear();
    out.push_back(kMagic0);
    out.push_back(kMagic1);
    out.push_back(kModeRaw);
    put_varint(out, input.size());
    out.insert(out.end(), input.begin(), input.end());
  }
  return out;
}

Bytes zx_decompress(ByteSpan compressed) {
  if (compressed.size() < 3 || compressed[0] != kMagic0 ||
      compressed[1] != kMagic1) {
    throw std::runtime_error("cqs: not a zx container");
  }
  const std::byte mode = compressed[2];
  std::size_t offset = 3;
  const std::uint64_t original_size = get_varint(compressed, offset);
  const ByteSpan payload = compressed.subspan(offset);

  if (mode == kModeRaw) {
    if (payload.size() != original_size) {
      throw std::runtime_error("cqs: zx raw payload size mismatch");
    }
    return Bytes(payload.begin(), payload.end());
  }
  Bytes tokens;
  if (mode == kModeLzHuff) {
    tokens = unhuffman_bytes(payload);
  } else if (mode == kModeLz) {
    tokens.assign(payload.begin(), payload.end());
  } else {
    throw std::runtime_error("cqs: zx unknown mode");
  }
  Bytes out = lz77_detokenize(tokens, original_size);
  if (out.size() != original_size) {
    throw std::runtime_error("cqs: zx decompressed size mismatch");
  }
  return out;
}

std::size_t zx_original_size(ByteSpan compressed) {
  if (compressed.size() < 3 || compressed[0] != kMagic0 ||
      compressed[1] != kMagic1) {
    throw std::runtime_error("cqs: not a zx container");
  }
  std::size_t offset = 3;
  return get_varint(compressed, offset);
}

}  // namespace cqs::lossless
