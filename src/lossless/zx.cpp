#include "lossless/zx.hpp"

#include <array>
#include <stdexcept>

#include "common/bits.hpp"

namespace cqs::lossless {
namespace {

constexpr std::byte kMagic0{'Z'};
constexpr std::byte kMagic1{'X'};
constexpr std::byte kModeRaw{0};
constexpr std::byte kModeLz{2};
constexpr std::byte kModeLzHuff{3};

void huffman_bytes_into(ByteSpan data, ZxScratch& scratch, Bytes& out) {
  std::array<std::uint64_t, 256> counts{};
  for (std::byte b : data) ++counts[static_cast<std::uint8_t>(b)];
  scratch.encoder.build(counts);
  scratch.encoder.write_table(out);
  put_varint(out, data.size());
  BitWriter writer(out);
  for (std::byte b : data) {
    scratch.encoder.encode(writer, static_cast<std::uint8_t>(b));
  }
  writer.flush();
}

void unhuffman_bytes_into(ByteSpan data, ZxScratch& scratch, Bytes& out) {
  std::size_t offset = 0;
  scratch.decoder.parse_table(data, offset, 256);
  const std::uint64_t count = get_varint(data, offset);
  out.resize(count);
  BitReader reader(data.subspan(offset));
  for (std::uint64_t i = 0; i < count; ++i) {
    out[i] = static_cast<std::byte>(scratch.decoder.decode(reader));
  }
}

void append_raw_container(ByteSpan input, Bytes& out) {
  out.push_back(kMagic0);
  out.push_back(kMagic1);
  out.push_back(kModeRaw);
  put_varint(out, input.size());
  out.insert(out.end(), input.begin(), input.end());
}

}  // namespace

void zx_compress_into(ByteSpan input, const ZxConfig& config,
                      ZxScratch& scratch, Bytes& out) {
  const std::size_t base = out.size();

  scratch.tokens.clear();
  lz77_tokenize(input, scratch.tokens, config.lz, scratch.lz);

  if (scratch.tokens.size() >= input.size()) {
    append_raw_container(input, out);
    return;
  }

  ByteSpan payload = scratch.tokens;
  std::byte mode = kModeLz;
  if (config.enable_huffman && !scratch.tokens.empty()) {
    scratch.huffed.clear();
    huffman_bytes_into(scratch.tokens, scratch, scratch.huffed);
    if (scratch.huffed.size() < scratch.tokens.size()) {
      payload = scratch.huffed;
      mode = kModeLzHuff;
    }
  }

  out.push_back(kMagic0);
  out.push_back(kMagic1);
  out.push_back(mode);
  put_varint(out, input.size());
  out.insert(out.end(), payload.begin(), payload.end());
  // Raw fallback guarantee: if the pipeline expanded the data, store raw.
  if (out.size() - base > input.size() + 12) {
    out.resize(base);
    append_raw_container(input, out);
  }
}

Bytes zx_compress(ByteSpan input, const ZxConfig& config) {
  ZxScratch scratch;
  Bytes out;
  zx_compress_into(input, config, scratch, out);
  return out;
}

void zx_decompress_into(ByteSpan compressed, ZxScratch& scratch, Bytes& out) {
  if (compressed.size() < 3 || compressed[0] != kMagic0 ||
      compressed[1] != kMagic1) {
    throw std::runtime_error("cqs: not a zx container");
  }
  const std::byte mode = compressed[2];
  std::size_t offset = 3;
  const std::uint64_t original_size = get_varint(compressed, offset);
  const ByteSpan payload = compressed.subspan(offset);

  if (mode == kModeRaw) {
    if (payload.size() != original_size) {
      throw std::runtime_error("cqs: zx raw payload size mismatch");
    }
    out.assign(payload.begin(), payload.end());
    return;
  }
  ByteSpan tokens;
  if (mode == kModeLzHuff) {
    unhuffman_bytes_into(payload, scratch, scratch.tokens);
    tokens = scratch.tokens;
  } else if (mode == kModeLz) {
    tokens = payload;  // detokenize reads the container bytes in place
  } else {
    throw std::runtime_error("cqs: zx unknown mode");
  }
  lz77_detokenize(tokens, original_size, out);
  if (out.size() != original_size) {
    throw std::runtime_error("cqs: zx decompressed size mismatch");
  }
}

Bytes zx_decompress(ByteSpan compressed) {
  ZxScratch scratch;
  Bytes out;
  zx_decompress_into(compressed, scratch, out);
  return out;
}

std::size_t zx_original_size(ByteSpan compressed) {
  if (compressed.size() < 3 || compressed[0] != kMagic0 ||
      compressed[1] != kMagic1) {
    throw std::runtime_error("cqs: not a zx container");
  }
  std::size_t offset = 3;
  return get_varint(compressed, offset);
}

}  // namespace cqs::lossless
