// Canonical Huffman coding over a runtime-sized alphabet (up to 2^16
// symbols). Used twice in the stack: on LZ77 token bytes inside the zx
// lossless codec, and on quantization codes inside the SZ-like compressor —
// mirroring the "Huffman encoding + Zstd" stages of the paper's Solution A/B.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/bits.hpp"
#include "common/bytes.hpp"

namespace cqs::lossless {

/// Maximum admitted code length; counts are rescaled until respected.
inline constexpr int kMaxCodeLength = 24;

/// Builds canonical code lengths from symbol frequencies.
/// Returns one length per symbol (0 = symbol unused). The tree is depth
/// limited to kMaxCodeLength by iterative frequency flattening.
std::vector<std::uint8_t> build_code_lengths(
    std::span<const std::uint64_t> counts);

class HuffmanEncoder {
 public:
  /// Builds an encoder from frequencies (size = alphabet size).
  static HuffmanEncoder from_counts(std::span<const std::uint64_t> counts);

  /// Serializes the code-length table (sparse varint encoding).
  void write_table(Bytes& out) const;

  void encode(BitWriter& writer, std::uint32_t symbol) const;

  const std::vector<std::uint8_t>& lengths() const { return lengths_; }

 private:
  std::vector<std::uint8_t> lengths_;
  std::vector<std::uint32_t> codes_;
};

class HuffmanDecoder {
 public:
  /// Reads the table written by HuffmanEncoder::write_table.
  static HuffmanDecoder read_table(ByteSpan in, std::size_t& offset,
                                   std::size_t alphabet_size);

  std::uint32_t decode(BitReader& reader) const;

 private:
  // Canonical decoding state: for each length, the first code value and the
  // index of its first symbol in the length-ordered symbol list.
  std::vector<std::uint32_t> first_code_;    // size kMaxCodeLength + 1
  std::vector<std::uint32_t> first_index_;   // size kMaxCodeLength + 1
  std::vector<std::uint32_t> symbol_count_;  // size kMaxCodeLength + 1
  std::vector<std::uint32_t> symbols_;       // sorted by (length, symbol)
};

/// Builds canonical codes (value per symbol) from lengths.
std::vector<std::uint32_t> canonical_codes(
    std::span<const std::uint8_t> lengths);

}  // namespace cqs::lossless
