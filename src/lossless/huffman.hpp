// Canonical Huffman coding over a runtime-sized alphabet (up to 2^16
// symbols). Used twice in the stack: on LZ77 token bytes inside the zx
// lossless codec, and on quantization codes inside the SZ-like compressor —
// mirroring the "Huffman encoding + Zstd" stages of the paper's Solution A/B.
//
// Both coder objects are reusable: build()/parse_table() refill internal
// storage in place, so a long-lived encoder/decoder (e.g. one per worker
// inside a CodecScratch) reaches a steady state with zero allocations per
// (de)compression pass. Decoding is table-driven: an 11-bit first-level
// lookup resolves the common short codes in one peek, with a canonical
// per-length scan only for the rare codes longer than 11 bits.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/bits.hpp"
#include "common/bytes.hpp"

namespace cqs::lossless {

/// Maximum admitted code length; counts are rescaled until respected.
inline constexpr int kMaxCodeLength = 24;

/// Largest alphabet the coder pair admits. The decoder's first-level table
/// stores symbols as uint16, so parse_table rejects anything larger.
inline constexpr std::size_t kMaxAlphabetSize = std::size_t{1} << 16;

/// First-level decode table width: codes of length <= kPrimaryBits decode
/// with a single lookup. 11 bits covers every code of a 256-symbol byte
/// alphabet in practice and keeps the table at 2^11 entries.
inline constexpr int kPrimaryBits = 11;

/// Builds canonical code lengths from symbol frequencies.
/// Returns one length per symbol (0 = symbol unused). The tree is depth
/// limited to kMaxCodeLength by iterative frequency flattening.
std::vector<std::uint8_t> build_code_lengths(
    std::span<const std::uint64_t> counts);

class HuffmanEncoder {
 public:
  /// Builds an encoder from frequencies (size = alphabet size).
  static HuffmanEncoder from_counts(std::span<const std::uint64_t> counts);

  /// Rebuilds this encoder from frequencies, reusing internal storage
  /// (no allocations once capacities are warm).
  void build(std::span<const std::uint64_t> counts);

  /// Serializes the code-length table (sparse varint encoding).
  void write_table(Bytes& out) const;

  void encode(BitWriter& writer, std::uint32_t symbol) const {
    writer.write(codes_[symbol], lengths_[symbol]);
  }

  const std::vector<std::uint8_t>& lengths() const { return lengths_; }

  /// Bytes held across build() calls (scratch-pool accounting).
  std::size_t bytes() const {
    return lengths_.capacity() +
           codes_.capacity() * sizeof(std::uint32_t) +
           build_.working.capacity() * sizeof(std::uint64_t) +
           build_.nodes.capacity() * sizeof(BuildScratch::Node) +
           build_.heap.capacity() * sizeof(int) +
           build_.stack.capacity() * sizeof(std::pair<int, int>) +
           build_.symbol_order.capacity() * sizeof(std::uint32_t);
  }

 private:
  /// Tree-construction scratch (Huffman heap + canonical ordering),
  /// retained across build() calls so rebuilds don't allocate.
  struct BuildScratch {
    struct Node {
      std::uint64_t weight;
      std::uint32_t order;  // tie-break for determinism
      int left;             // -1 for leaf
      int right;
      std::uint32_t symbol;
    };
    std::vector<std::uint64_t> working;  // depth-limit rescaled counts
    std::vector<Node> nodes;
    std::vector<int> heap;
    std::vector<std::pair<int, int>> stack;    // DFS (node, depth)
    std::vector<std::uint32_t> symbol_order;   // canonical (length, symbol)
  };

  void build_lengths(std::span<const std::uint64_t> counts);
  void build_codes();

  std::vector<std::uint8_t> lengths_;
  std::vector<std::uint32_t> codes_;
  BuildScratch build_;
};

class HuffmanDecoder {
 public:
  /// Reads the table written by HuffmanEncoder::write_table.
  static HuffmanDecoder read_table(ByteSpan in, std::size_t& offset,
                                   std::size_t alphabet_size);

  /// In-place variant of read_table: refills this decoder's storage
  /// (tables included) without allocating once capacities are warm.
  void parse_table(ByteSpan in, std::size_t& offset,
                   std::size_t alphabet_size);

  std::uint32_t decode(BitReader& reader) const {
    const auto peeked =
        static_cast<std::uint32_t>(reader.peek(kMaxCodeLength));
    const PrimaryEntry e = primary_[peeked >> (kMaxCodeLength - kPrimaryBits)];
    if (e.length != 0) {
      reader.consume(e.length);
      return e.symbol;
    }
    return decode_long(reader, peeked);
  }

  /// Bytes held across parse_table() calls (scratch-pool accounting).
  std::size_t bytes() const {
    return (first_code_.capacity() + first_index_.capacity() +
            symbol_count_.capacity() + symbols_.capacity()) *
               sizeof(std::uint32_t) +
           primary_.capacity() * sizeof(PrimaryEntry) +
           lengths_.capacity();
  }

 private:
  /// First-level table entry: symbol + code length, length 0 marking
  /// either an invalid prefix or a code longer than kPrimaryBits.
  struct PrimaryEntry {
    std::uint16_t symbol;
    std::uint8_t length;
  };

  std::uint32_t decode_long(BitReader& reader, std::uint32_t peeked) const;

  // Canonical decoding state: for each length, the first code value and the
  // index of its first symbol in the length-ordered symbol list.
  std::vector<std::uint32_t> first_code_;    // size kMaxCodeLength + 1
  std::vector<std::uint32_t> first_index_;   // size kMaxCodeLength + 1
  std::vector<std::uint32_t> symbol_count_;  // size kMaxCodeLength + 1
  std::vector<std::uint32_t> symbols_;       // sorted by (length, symbol)
  std::vector<PrimaryEntry> primary_;        // size 2^kPrimaryBits
  std::vector<std::uint8_t> lengths_;        // parse scratch (per symbol)
};

/// Builds canonical codes (value per symbol) from lengths.
std::vector<std::uint32_t> canonical_codes(
    std::span<const std::uint8_t> lengths);

}  // namespace cqs::lossless
