#include "lossless/huffman.hpp"

#include <algorithm>
#include <stdexcept>

namespace cqs::lossless {

void HuffmanEncoder::build_lengths(std::span<const std::uint64_t> counts) {
  auto& working = build_.working;
  auto& nodes = build_.nodes;
  auto& heap = build_.heap;
  auto& stack = build_.stack;

  working.assign(counts.begin(), counts.end());
  lengths_.assign(counts.size(), 0);

  const auto heap_greater = [&nodes](int a, int b) {
    const auto& na = nodes[a];
    const auto& nb = nodes[b];
    if (na.weight != nb.weight) return na.weight > nb.weight;
    return na.order > nb.order;
  };

  while (true) {
    nodes.clear();
    heap.clear();
    for (std::uint32_t s = 0; s < working.size(); ++s) {
      if (working[s] == 0) continue;
      nodes.push_back({working[s], s, -1, -1, s});
      heap.push_back(static_cast<int>(nodes.size()) - 1);
    }
    if (heap.empty()) return;  // empty input: all zero lengths
    if (heap.size() == 1) {
      lengths_[nodes[heap[0]].symbol] = 1;
      return;
    }
    // Reserve ahead of time: the comparator indexes into `nodes`, which
    // must not reallocate mid-heap operation.
    nodes.reserve(2 * heap.size());
    std::make_heap(heap.begin(), heap.end(), heap_greater);

    std::uint32_t order = static_cast<std::uint32_t>(working.size());
    while (heap.size() > 1) {
      std::pop_heap(heap.begin(), heap.end(), heap_greater);
      const int a = heap.back();
      heap.pop_back();
      std::pop_heap(heap.begin(), heap.end(), heap_greater);
      const int b = heap.back();
      heap.pop_back();
      nodes.push_back({nodes[a].weight + nodes[b].weight, order++, a, b, 0});
      heap.push_back(static_cast<int>(nodes.size()) - 1);
      std::push_heap(heap.begin(), heap.end(), heap_greater);
    }
    std::fill(lengths_.begin(), lengths_.end(), 0);
    // Iterative DFS assigning leaf depths.
    stack.clear();
    stack.push_back({heap[0], 0});
    while (!stack.empty()) {
      const auto [idx, depth] = stack.back();
      stack.pop_back();
      const auto& n = nodes[idx];
      if (n.left < 0) {
        lengths_[n.symbol] = static_cast<std::uint8_t>(std::max(depth, 1));
      } else {
        stack.push_back({n.left, depth + 1});
        stack.push_back({n.right, depth + 1});
      }
    }

    const auto max_len =
        *std::max_element(lengths_.begin(), lengths_.end());
    if (max_len <= kMaxCodeLength) return;
    // Depth limiting: flatten the distribution and rebuild. Halving skewed
    // counts converges in a handful of iterations.
    for (auto& c : working) {
      if (c > 0) c = c / 2 + 1;
    }
  }
}

namespace {

/// Canonical code assignment: order symbols by (length, symbol value) into
/// `order` and hand out consecutive codes into `codes`. The single
/// implementation behind both HuffmanEncoder::build and canonical_codes.
void assign_canonical_codes(std::span<const std::uint8_t> lengths,
                            std::vector<std::uint32_t>& order,
                            std::vector<std::uint32_t>& codes) {
  order.clear();
  for (std::uint32_t s = 0; s < lengths.size(); ++s) {
    if (lengths[s] > 0) order.push_back(s);
  }
  std::sort(order.begin(), order.end(),
            [&](std::uint32_t a, std::uint32_t b) {
              if (lengths[a] != lengths[b]) return lengths[a] < lengths[b];
              return a < b;
            });
  codes.assign(lengths.size(), 0);
  std::uint32_t code = 0;
  int prev_len = 0;
  for (std::uint32_t s : order) {
    code <<= (lengths[s] - prev_len);
    codes[s] = code;
    ++code;
    prev_len = lengths[s];
  }
}

}  // namespace

void HuffmanEncoder::build_codes() {
  assign_canonical_codes(lengths_, build_.symbol_order, codes_);
}

void HuffmanEncoder::build(std::span<const std::uint64_t> counts) {
  build_lengths(counts);
  build_codes();
}

std::vector<std::uint8_t> build_code_lengths(
    std::span<const std::uint64_t> counts) {
  HuffmanEncoder enc;
  enc.build(counts);
  return enc.lengths();
}

std::vector<std::uint32_t> canonical_codes(
    std::span<const std::uint8_t> lengths) {
  std::vector<std::uint32_t> order;
  std::vector<std::uint32_t> codes;
  assign_canonical_codes(lengths, order, codes);
  return codes;
}

HuffmanEncoder HuffmanEncoder::from_counts(
    std::span<const std::uint64_t> counts) {
  HuffmanEncoder enc;
  enc.build(counts);
  return enc;
}

void HuffmanEncoder::write_table(Bytes& out) const {
  // Sparse encoding: count of used symbols, then (delta symbol, length)
  // pairs in symbol order.
  std::uint64_t used = 0;
  for (auto l : lengths_) {
    if (l > 0) ++used;
  }
  put_varint(out, used);
  std::uint32_t prev = 0;
  for (std::uint32_t s = 0; s < lengths_.size(); ++s) {
    if (lengths_[s] == 0) continue;
    put_varint(out, s - prev);
    out.push_back(static_cast<std::byte>(lengths_[s]));
    prev = s;
  }
}

HuffmanDecoder HuffmanDecoder::read_table(ByteSpan in, std::size_t& offset,
                                          std::size_t alphabet_size) {
  HuffmanDecoder dec;
  dec.parse_table(in, offset, alphabet_size);
  return dec;
}

void HuffmanDecoder::parse_table(ByteSpan in, std::size_t& offset,
                                 std::size_t alphabet_size) {
  if (alphabet_size > kMaxAlphabetSize) {
    throw std::invalid_argument("cqs: huffman alphabet exceeds 2^16 symbols");
  }
  auto& lengths = lengths_;
  lengths.assign(alphabet_size, 0);
  const std::uint64_t used = get_varint(in, offset);
  std::uint32_t symbol = 0;
  for (std::uint64_t i = 0; i < used; ++i) {
    symbol += static_cast<std::uint32_t>(get_varint(in, offset));
    if (symbol >= alphabet_size) {
      throw std::runtime_error("cqs: huffman table symbol out of range");
    }
    if (offset >= in.size()) {
      throw std::out_of_range("cqs: huffman table truncated");
    }
    lengths[symbol] = static_cast<std::uint8_t>(in[offset++]);
    if (lengths[symbol] == 0 || lengths[symbol] > kMaxCodeLength) {
      throw std::runtime_error("cqs: huffman table invalid length");
    }
  }

  first_code_.assign(kMaxCodeLength + 1, 0);
  first_index_.assign(kMaxCodeLength + 1, 0);
  symbol_count_.assign(kMaxCodeLength + 1, 0);
  symbols_.clear();
  for (std::uint32_t s = 0; s < alphabet_size; ++s) {
    if (lengths[s] > 0) {
      ++symbol_count_[lengths[s]];
      symbols_.push_back(s);
    }
  }
  std::sort(symbols_.begin(), symbols_.end(),
            [&](std::uint32_t a, std::uint32_t b) {
              if (lengths[a] != lengths[b]) return lengths[a] < lengths[b];
              return a < b;
            });
  std::uint32_t code = 0;
  std::uint32_t index = 0;
  for (int len = 1; len <= kMaxCodeLength; ++len) {
    code <<= 1;
    first_code_[len] = code;
    first_index_[len] = index;
    code += symbol_count_[len];
    index += symbol_count_[len];
    // Kraft validity: an oversubscribed length (more codes than a
    // prefix-free tree admits) comes only from a corrupt table. It must be
    // rejected here — the primary-table fill below indexes rows by
    // code << (kPrimaryBits - len) and would write past the table.
    if (code > (std::uint32_t{1} << len)) {
      throw std::runtime_error("cqs: huffman table oversubscribed");
    }
  }

  // First-level lookup: every code of length <= kPrimaryBits owns the
  // 2^(kPrimaryBits - length) table rows sharing its prefix. Longer codes
  // leave length 0, routing decode() to the canonical per-length scan.
  primary_.assign(std::size_t{1} << kPrimaryBits, PrimaryEntry{0, 0});
  index = 0;
  for (int len = 1; len <= std::min(kPrimaryBits, kMaxCodeLength); ++len) {
    for (std::uint32_t k = 0; k < symbol_count_[len]; ++k) {
      const std::uint32_t c = first_code_[len] + k;
      const std::uint32_t sym = symbols_[first_index_[len] + k];
      const std::uint32_t base = c << (kPrimaryBits - len);
      const std::uint32_t span = std::uint32_t{1} << (kPrimaryBits - len);
      for (std::uint32_t row = base; row < base + span; ++row) {
        primary_[row] = {static_cast<std::uint16_t>(sym),
                         static_cast<std::uint8_t>(len)};
      }
    }
  }
}

std::uint32_t HuffmanDecoder::decode_long(BitReader& reader,
                                          std::uint32_t peeked) const {
  // Canonical scan over the lengths the primary table doesn't cover. The
  // peeked window is zero-padded past the stream end; consume() rejects
  // any match that would need more bits than actually remain.
  for (int len = kPrimaryBits + 1; len <= kMaxCodeLength; ++len) {
    const std::uint32_t code = peeked >> (kMaxCodeLength - len);
    const std::uint32_t delta = code - first_code_[len];
    if (code >= first_code_[len] && delta < symbol_count_[len]) {
      reader.consume(len);
      return symbols_[first_index_[len] + delta];
    }
  }
  // No prefix of the window is a valid code. Distinguish the truncated
  // stream (historical out_of_range) from genuine corruption.
  if (reader.exhausted(kMaxCodeLength)) {
    throw std::out_of_range("cqs: bit stream truncated");
  }
  throw std::runtime_error("cqs: invalid huffman code");
}

}  // namespace cqs::lossless
