#include "lossless/huffman.hpp"

#include <algorithm>
#include <queue>
#include <stdexcept>

namespace cqs::lossless {
namespace {

struct Node {
  std::uint64_t weight;
  std::uint32_t order;  // tie-break for determinism
  int left;             // -1 for leaf
  int right;
  std::uint32_t symbol;
};

struct NodeGreater {
  const std::vector<Node>* nodes;
  bool operator()(int a, int b) const {
    const Node& na = (*nodes)[a];
    const Node& nb = (*nodes)[b];
    if (na.weight != nb.weight) return na.weight > nb.weight;
    return na.order > nb.order;
  }
};

void assign_depths(const std::vector<Node>& nodes, int root,
                   std::vector<std::uint8_t>& lengths) {
  // Iterative DFS: (node, depth).
  std::vector<std::pair<int, int>> stack{{root, 0}};
  while (!stack.empty()) {
    auto [idx, depth] = stack.back();
    stack.pop_back();
    const Node& n = nodes[idx];
    if (n.left < 0) {
      lengths[n.symbol] = static_cast<std::uint8_t>(std::max(depth, 1));
    } else {
      stack.push_back({n.left, depth + 1});
      stack.push_back({n.right, depth + 1});
    }
  }
}

}  // namespace

std::vector<std::uint8_t> build_code_lengths(
    std::span<const std::uint64_t> counts) {
  std::vector<std::uint64_t> working(counts.begin(), counts.end());
  std::vector<std::uint8_t> lengths(counts.size(), 0);

  while (true) {
    std::vector<Node> nodes;
    nodes.reserve(2 * working.size());
    std::priority_queue<int, std::vector<int>, NodeGreater> heap{
        NodeGreater{&nodes}};
    // The heap holds indices into `nodes`; push leaves first.
    std::vector<int> heap_seed;
    for (std::uint32_t s = 0; s < working.size(); ++s) {
      if (working[s] == 0) continue;
      nodes.push_back({working[s], s, -1, -1, s});
      heap_seed.push_back(static_cast<int>(nodes.size()) - 1);
    }
    if (heap_seed.empty()) return lengths;  // empty input: all zero lengths
    if (heap_seed.size() == 1) {
      lengths[nodes[heap_seed[0]].symbol] = 1;
      return lengths;
    }
    // Reserve ahead of time: pushing into `nodes` must not invalidate the
    // comparator's view mid-heap operation.
    nodes.reserve(2 * heap_seed.size());
    for (int idx : heap_seed) heap.push(idx);

    std::uint32_t order = static_cast<std::uint32_t>(working.size());
    while (heap.size() > 1) {
      const int a = heap.top();
      heap.pop();
      const int b = heap.top();
      heap.pop();
      nodes.push_back(
          {nodes[a].weight + nodes[b].weight, order++, a, b, 0});
      heap.push(static_cast<int>(nodes.size()) - 1);
    }
    std::fill(lengths.begin(), lengths.end(), 0);
    assign_depths(nodes, heap.top(), lengths);

    const auto max_len =
        *std::max_element(lengths.begin(), lengths.end());
    if (max_len <= kMaxCodeLength) return lengths;
    // Depth limiting: flatten the distribution and rebuild. Halving skewed
    // counts converges in a handful of iterations.
    for (auto& c : working) {
      if (c > 0) c = c / 2 + 1;
    }
  }
}

std::vector<std::uint32_t> canonical_codes(
    std::span<const std::uint8_t> lengths) {
  // Order symbols by (length, symbol value) and hand out consecutive codes.
  std::vector<std::uint32_t> order;
  for (std::uint32_t s = 0; s < lengths.size(); ++s) {
    if (lengths[s] > 0) order.push_back(s);
  }
  std::sort(order.begin(), order.end(),
            [&](std::uint32_t a, std::uint32_t b) {
              if (lengths[a] != lengths[b]) return lengths[a] < lengths[b];
              return a < b;
            });
  std::vector<std::uint32_t> codes(lengths.size(), 0);
  std::uint32_t code = 0;
  int prev_len = 0;
  for (std::uint32_t s : order) {
    code <<= (lengths[s] - prev_len);
    codes[s] = code;
    ++code;
    prev_len = lengths[s];
  }
  return codes;
}

HuffmanEncoder HuffmanEncoder::from_counts(
    std::span<const std::uint64_t> counts) {
  HuffmanEncoder enc;
  enc.lengths_ = build_code_lengths(counts);
  enc.codes_ = canonical_codes(enc.lengths_);
  return enc;
}

void HuffmanEncoder::write_table(Bytes& out) const {
  // Sparse encoding: count of used symbols, then (delta symbol, length)
  // pairs in symbol order.
  std::uint64_t used = 0;
  for (auto l : lengths_) {
    if (l > 0) ++used;
  }
  put_varint(out, used);
  std::uint32_t prev = 0;
  for (std::uint32_t s = 0; s < lengths_.size(); ++s) {
    if (lengths_[s] == 0) continue;
    put_varint(out, s - prev);
    out.push_back(static_cast<std::byte>(lengths_[s]));
    prev = s;
  }
}

void HuffmanEncoder::encode(BitWriter& writer, std::uint32_t symbol) const {
  writer.write(codes_[symbol], lengths_[symbol]);
}

HuffmanDecoder HuffmanDecoder::read_table(ByteSpan in, std::size_t& offset,
                                          std::size_t alphabet_size) {
  std::vector<std::uint8_t> lengths(alphabet_size, 0);
  const std::uint64_t used = get_varint(in, offset);
  std::uint32_t symbol = 0;
  for (std::uint64_t i = 0; i < used; ++i) {
    symbol += static_cast<std::uint32_t>(get_varint(in, offset));
    if (symbol >= alphabet_size) {
      throw std::runtime_error("cqs: huffman table symbol out of range");
    }
    if (offset >= in.size()) {
      throw std::out_of_range("cqs: huffman table truncated");
    }
    lengths[symbol] = static_cast<std::uint8_t>(in[offset++]);
    if (lengths[symbol] == 0 || lengths[symbol] > kMaxCodeLength) {
      throw std::runtime_error("cqs: huffman table invalid length");
    }
  }

  HuffmanDecoder dec;
  dec.first_code_.assign(kMaxCodeLength + 1, 0);
  dec.first_index_.assign(kMaxCodeLength + 1, 0);
  dec.symbol_count_.assign(kMaxCodeLength + 1, 0);
  for (std::uint32_t s = 0; s < alphabet_size; ++s) {
    if (lengths[s] > 0) {
      ++dec.symbol_count_[lengths[s]];
      dec.symbols_.push_back(s);
    }
  }
  std::sort(dec.symbols_.begin(), dec.symbols_.end(),
            [&](std::uint32_t a, std::uint32_t b) {
              if (lengths[a] != lengths[b]) return lengths[a] < lengths[b];
              return a < b;
            });
  std::uint32_t code = 0;
  std::uint32_t index = 0;
  for (int len = 1; len <= kMaxCodeLength; ++len) {
    code <<= 1;
    dec.first_code_[len] = code;
    dec.first_index_[len] = index;
    code += dec.symbol_count_[len];
    index += dec.symbol_count_[len];
  }
  return dec;
}

std::uint32_t HuffmanDecoder::decode(BitReader& reader) const {
  std::uint32_t code = 0;
  for (int len = 1; len <= kMaxCodeLength; ++len) {
    code = (code << 1) | reader.read_bit();
    const std::uint32_t delta = code - first_code_[len];
    if (code >= first_code_[len] && delta < symbol_count_[len]) {
      return symbols_[first_index_[len] + delta];
    }
  }
  throw std::runtime_error("cqs: invalid huffman code");
}

}  // namespace cqs::lossless
