// SpillFile: the cold tier behind the tiered BlockStore. Compressed block
// payloads are written to one unlinked scratch file (one segment per
// block) and read back through a single fixed memory-mapped view, so a
// spilled payload is a zero-copy ByteSpan into the page cache instead of
// a heap allocation.
//
// Design constraints the implementation encodes:
//   - Writes go through pwrite, never through the mapping: running out of
//     disk surfaces as a typed SpillError (ENOSPC and friends), not as a
//     SIGBUS on a store instruction.
//   - The read mapping is one PROT_READ reservation created at open time
//     and never remapped; the file grows underneath it, so views handed
//     out earlier can never dangle after a later write extends the file.
//   - Freed segments enter a by-offset free list that coalesces with both
//     neighbors, and allocation is first-fit from that list — the file
//     stays compacted instead of growing monotonically.
//   - The file is unlinked immediately after creation: the kernel reclaims
//     the space when the process exits (cleanly or not), and no stale
//     spill files survive a crash.
//   - Synthetic disk-full faults come from the process-wide FaultInjector
//     (site "spill.write", runtime/fault_injection.hpp) — tests and chaos
//     runs script ENOSPC without filling a disk.
#pragma once

#include <cstdint>
#include <mutex>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/bytes.hpp"

namespace cqs::runtime {

/// Typed failure of the spill tier (open, write, map). `code` carries the
/// errno of the failing syscall (0 when the failure is not errno-shaped).
class SpillError : public std::runtime_error {
 public:
  SpillError(const std::string& what, int code = 0)
      : std::runtime_error(what), code_(code) {}
  int code() const { return code_; }

 private:
  int code_ = 0;
};

/// One block's home in the spill file. size == 0 means "no segment".
struct SpillSegment {
  std::uint64_t offset = 0;
  std::uint64_t size = 0;
};

class SpillFile {
 public:
  /// Creates (truncating) and unlinks the backing file at `path`, then
  /// establishes the fixed read-only reservation. Throws SpillError when
  /// the path cannot be created or mapped.
  explicit SpillFile(const std::string& path);
  ~SpillFile();

  SpillFile(const SpillFile&) = delete;
  SpillFile& operator=(const SpillFile&) = delete;

  /// Writes `payload` into a free (or freshly grown) segment and returns
  /// it. Thread-safe; throws SpillError on any write failure (the
  /// reserved segment is returned to the free list first).
  SpillSegment write(ByteSpan payload);

  /// Zero-copy view of a segment's bytes through the fixed mapping.
  /// Valid until the segment is freed (a freed segment's bytes may be
  /// overwritten by a later write).
  ByteSpan view(const SpillSegment& segment) const;

  /// Returns a segment to the free list, coalescing with adjacent free
  /// neighbors. Thread-safe. No-op for empty segments.
  void free_segment(const SpillSegment& segment);

  /// Asks the kernel to start paging a segment in (madvise WILLNEED over
  /// the containing pages) — the readahead primitive. Best-effort.
  void advise_willneed(const SpillSegment& segment) const;

  /// High-water file size (bytes the file has ever grown to).
  std::uint64_t file_bytes() const;
  /// Bytes currently held by live (allocated) segments.
  std::uint64_t live_bytes() const;
  std::uint64_t live_segments() const;

 private:
  std::uint64_t allocate_locked(std::uint64_t size);

  /// Creation path, kept (though the file is unlinked) so every later
  /// error names the disk it happened on.
  std::string path_;
  int fd_ = -1;
  std::byte* map_ = nullptr;
  std::uint64_t reservation_ = 0;

  mutable std::mutex mutex_;
  std::vector<SpillSegment> free_;  ///< sorted by offset, coalesced
  std::uint64_t end_ = 0;           ///< file high-water mark
  std::uint64_t live_bytes_ = 0;
  std::uint64_t live_segments_ = 0;
};

}  // namespace cqs::runtime
