#include "runtime/block_cache.hpp"

namespace cqs::runtime {

BlockCache::BlockCache(std::size_t lines,
                       std::uint64_t disable_after_misses)
    : capacity_(lines), disable_after_misses_(disable_after_misses) {}

std::uint64_t BlockCache::make_key(ByteSpan op_descriptor, ByteSpan cb1,
                                   ByteSpan cb2, std::uint8_t cb1_codec,
                                   std::uint8_t cb2_codec,
                                   std::uint64_t map_generation) {
  std::uint64_t h = fnv1a(op_descriptor);
  h = fnv1a(cb1, h);
  h = fnv1a_u64(cb1.size(), h);
  h = fnv1a_u64(cb1_codec, h);
  h = fnv1a(cb2, h);
  h = fnv1a_u64(cb2.size(), h);
  h = fnv1a_u64(cb2_codec, h);
  if (map_generation != 0) h = fnv1a_u64(map_generation, h);
  return h;
}

std::uint64_t BlockCache::make_run_key(std::span<const Bytes> op_descriptors,
                                       ByteSpan cb1, std::uint8_t cb1_codec,
                                       std::uint64_t map_generation) {
  std::uint64_t h = fnv1a_u64(op_descriptors.size(), 0xcbf29ce484222325ull);
  for (const Bytes& d : op_descriptors) {
    h = fnv1a(d, h);
    h = fnv1a_u64(d.size(), h);
  }
  h = fnv1a(cb1, h);
  h = fnv1a_u64(cb1.size(), h);
  h = fnv1a_u64(cb1_codec, h);
  if (map_generation != 0) h = fnv1a_u64(map_generation, h);
  return h;
}

bool BlockCache::lookup(std::uint64_t key, Bytes& out1, Bytes& out2,
                        std::uint8_t* codec1, std::uint8_t* codec2) {
  std::lock_guard lock(mutex_);
  if (stats_.disabled) {
    // Disabled lookups short-circuit but still count: stats must account
    // for every lookup so hits + misses equals the number of calls.
    ++stats_.misses;
    return false;
  }
  const auto it = index_.find(key);
  if (it == index_.end()) {
    ++stats_.misses;
    maybe_disable_locked();
    return false;
  }
  ++stats_.hits;
  lru_.splice(lru_.begin(), lru_, it->second);
  out1 = it->second->out1;
  if (codec1 != nullptr) *codec1 = it->second->codec1;
  if (!it->second->out2.empty()) {
    out2 = it->second->out2;
    if (codec2 != nullptr) *codec2 = it->second->codec2;
  }
  return true;
}

void BlockCache::insert(std::uint64_t key, const Bytes& out1,
                        const Bytes& out2, std::uint8_t codec1,
                        std::uint8_t codec2) {
  std::lock_guard lock(mutex_);
  if (stats_.disabled || capacity_ == 0) return;
  const auto it = index_.find(key);
  if (it != index_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second);
    it->second->out1 = out1;
    it->second->out2 = out2;
    it->second->codec1 = codec1;
    it->second->codec2 = codec2;
    return;
  }
  if (lru_.size() >= capacity_) {
    index_.erase(lru_.back().key);
    lru_.pop_back();
  }
  lru_.push_front({key, out1, out2, codec1, codec2});
  index_[key] = lru_.begin();
}

CacheStats BlockCache::stats() const {
  std::lock_guard lock(mutex_);
  return stats_;
}

bool BlockCache::enabled() const {
  std::lock_guard lock(mutex_);
  return !stats_.disabled;
}

void BlockCache::maybe_disable_locked() {
  if (stats_.hits == 0 && stats_.misses >= disable_after_misses_) {
    stats_.disabled = true;
    lru_.clear();
    index_.clear();
  }
}

}  // namespace cqs::runtime
