#include "runtime/transport.hpp"

#include <chrono>
#include <thread>

#include "runtime/fault_injection.hpp"

#ifdef CQS_HAVE_SOCKET_TRANSPORT
#include "runtime/socket_transport.hpp"
#endif

namespace cqs::runtime {
namespace {

/// Scripted wire fault on the in-process backend: with no endpoint
/// process to kill or frame to corrupt, the hit maps straight onto the
/// typed error the equivalent real failure would surface — so recovery
/// paths are exercisable in every build, not just socket ones.
void apply_loopback_fault(const FaultHit& hit, int rank) {
  using Kind = TransportError::Kind;
  const std::string toward = " toward rank " + std::to_string(rank);
  if (hit.action == "corrupt") {
    throw TransportError(Kind::kFrameCorrupt, rank,
                         "loopback: injected frame corruption" + toward);
  }
  if (hit.action == "timeout") {
    throw TransportError(Kind::kTimeout, rank,
                         "loopback: injected exchange timeout" + toward);
  }
  if (hit.action == "stall") {
    std::this_thread::sleep_for(std::chrono::milliseconds(hit.aux));
    return;
  }
  throw TransportError(
      Kind::kRankDead, rank,
      "loopback: injected rank death (rank " + std::to_string(rank) + ")");
}

}  // namespace

PendingExchange LoopbackTransport::exchange_begin(
    int rank_a, int rank_b, ByteSpan from_a, ByteSpan from_b,
    std::uint8_t /*codec_a*/, std::uint8_t /*codec_b*/) {
  if (auto hit =
          FaultInjector::instance().on_call(fault_sites::kTransportSend)) {
    apply_loopback_fault(*hit, rank_b);
  }
  PendingExchange pending;
  pending.rank_a = rank_a;
  pending.rank_b = rank_b;
  // The "wire": one real copy out per direction. The bytes sit staged
  // until exchange_wait hands them over, mirroring a buffered sendrecv.
  pending.staged_a.assign(from_a.begin(), from_a.end());
  pending.staged_b.assign(from_b.begin(), from_b.end());
  pending.active = true;
  payload_bytes_.fetch_add(from_a.size() + from_b.size(),
                           std::memory_order_relaxed);
  frames_.fetch_add(2, std::memory_order_relaxed);
  return pending;
}

void LoopbackTransport::exchange_wait(PendingExchange& pending) {
  // Delivery: rank a receives what rank b sent and vice versa.
  pending.to_a = std::move(pending.staged_b);
  pending.to_b = std::move(pending.staged_a);
  pending.active = false;
}

WireStats LoopbackTransport::wire_stats() const {
  return {payload_bytes_.load(std::memory_order_relaxed), 0,
          frames_.load(std::memory_order_relaxed)};
}

bool socket_transport_available() {
#ifdef CQS_HAVE_SOCKET_TRANSPORT
  return true;
#else
  return false;
#endif
}

std::unique_ptr<Transport> make_transport(const std::string& name,
                                          const TransportOptions& options) {
  if (name == "loopback") {
    return std::make_unique<LoopbackTransport>(options.num_ranks);
  }
  if (name == "socket") {
#ifdef CQS_HAVE_SOCKET_TRANSPORT
    return std::make_unique<SocketTransport>(options);
#else
    throw std::invalid_argument(
        "make_transport: transport 'socket' is not built into this binary "
        "(reconfigure with -DCQS_TRANSPORT_SOCKET=ON)");
#endif
  }
  throw std::invalid_argument("make_transport: unknown transport '" + name +
                              "' (expected 'loopback' or 'socket')");
}

}  // namespace cqs::runtime
