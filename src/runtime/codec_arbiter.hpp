// Codec arbiter: per-block, per-pass codec selection (the paper's Figs.
// 9-14 observation that compression effectiveness is dictated by block
// state structure). Spiky or mostly-zero blocks favor the lossless
// zero-suppressing zx path; dense smooth blocks need the lossy
// error-bounded codec to fit memory. Under the "adaptive" policy the
// arbiter inspects cheap block statistics at every recompression and picks
// lossless vs. the configured lossy codec independently for each block,
// with hysteresis so a block sitting near a threshold doesn't thrash
// between codecs on successive passes.
#pragma once

#include <atomic>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace cqs::runtime {

/// Cheap single-pass statistics of one decompressed block (interleaved
/// re/im doubles). All three signals are scale-free, so the same
/// thresholds work at any qubit count.
struct BlockStats {
  /// Fraction of exact-zero doubles. Sparse early-simulation and
  /// ancilla-heavy states sit near 1; dense supremacy states near 0.
  double zero_fraction = 1.0;
  /// max|x| / mean|x| over the nonzero doubles (1 for uniform-magnitude
  /// data, 0 when the block is all zeros). The paper's spikiness proxy.
  double spikiness = 0.0;
  /// log2(max|x| / min nonzero |x|): dynamic range in bits. 0 when fewer
  /// than two nonzeros.
  double dynamic_range = 0.0;
};

/// One pass over `data` (uses common/stats' RunningStats over |x|).
BlockStats compute_block_stats(std::span<const double> data);

enum class CodecPolicy {
  kFixed,     ///< SimConfig::codec for every lossy pass (seed behavior)
  kAdaptive,  ///< per-block lossless-vs-lossy arbitration
};

/// Parses "fixed" / "adaptive"; throws std::invalid_argument otherwise.
CodecPolicy parse_codec_policy(const std::string& name);

/// Thresholds of the adaptive policy (see SimConfig for the knobs' docs).
/// A block goes lossless when it is decisively sparse (zero fraction), has
/// essentially uniform nonzero magnitudes (dynamic range in bits — repeated
/// bit patterns that LZ matching nails and quantization cannot improve), or
/// is spike-dominated. Everything else goes to the lossy codec, whose
/// mantissa truncation collapses the ULP-level noise lossless coding must
/// preserve.
struct ArbiterConfig {
  CodecPolicy policy = CodecPolicy::kFixed;
  double zero_fraction_threshold = 0.75;
  double dynamic_range_threshold = 1.0;
  double spikiness_threshold = 1e6;
  double hysteresis = 0.1;
};

struct ArbiterStats {
  std::uint64_t lossless_choices = 0;  ///< passes encoded with lossless zx
  std::uint64_t lossy_choices = 0;     ///< passes encoded with the lossy codec
  std::uint64_t switches = 0;  ///< per-block codec flips (post-hysteresis)
};

class CodecArbiter {
 public:
  /// `total_blocks`: number of blocks across all ranks; per-block
  /// hysteresis state is indexed by rank * blocks_per_rank + block.
  CodecArbiter(ArbiterConfig config, int total_blocks);

  /// Decides the codec for one compression pass of `global_block` at
  /// ladder `level`. Level 0 is always lossless; the fixed policy always
  /// picks the lossy codec above level 0; the adaptive policy computes
  /// block statistics and applies the hysteresis band. Returns true for
  /// lossless. Safe to call concurrently for distinct blocks (the
  /// simulator's parallel_for never hands one block to two workers).
  bool decide_lossless(int global_block, int level,
                       std::span<const double> data);

  /// Reinstates a block's last-known codec (checkpoint resume) without
  /// counting a choice, so hysteresis continues where the saved run was.
  void seed(int global_block, bool lossless);

  const ArbiterConfig& config() const { return config_; }
  ArbiterStats stats() const;

 private:
  static constexpr std::uint8_t kUnset = 2;

  ArbiterConfig config_;
  /// Last decision per block: 0 = lossy, 1 = lossless, kUnset = no pass
  /// yet. Plain bytes: distinct blocks are never raced (see
  /// decide_lossless), and reads/writes of one block stay on one worker.
  std::vector<std::uint8_t> last_lossless_;
  std::atomic<std::uint64_t> lossless_choices_{0};
  std::atomic<std::uint64_t> lossy_choices_{0};
  std::atomic<std::uint64_t> switches_{0};
};

}  // namespace cqs::runtime
