// Multi-process socket transport: every logical rank runs as a real OS
// process (a "rank endpoint") joined to the driver by a stream socket, and
// every exchanged compressed block physically traverses that wire in both
// directions as a checksummed frame (runtime/wire_format.hpp).
//
// Topology. The simulator state lives in the driver process, so the wire
// shape is driver <-> endpoint: exchange_begin frames each payload toward
// the process that owns its destination rank, the endpoint validates the
// checksum, and its echo is the delivery the driver installs at
// exchange_wait. Each exchanged payload therefore crosses the wire twice
// (out and back), making the backend's payload_bytes exactly 2x Comm's
// logical bytes_moved — the accounting identity the benches assert.
//
// Endpoints. spawn happens in the constructor via fork(): "local" mode
// hands each child one end of a pre-connected AF_UNIX socketpair; "tcp"
// mode has children connect back to an ephemeral 127.0.0.1 listener and
// identify themselves with a hello frame. The destructor (or join())
// sends shutdown frames and waitpid()s every child — rank processes never
// outlive the transport.
//
// Concurrency. Many worker threads exchange concurrently. Sends on one
// connection serialize under a per-connection mutex; replies are
// demultiplexed by frame tag (a waiting thread either finds its tag
// already stashed or becomes the connection's reader, parking foreign
// tags for their owners). Every blocking wire step carries the configured
// rank_timeout_ms deadline and surfaces failure as a typed TransportError
// — a dead, stalled, or corrupting rank can fail an exchange, never hang
// it.
//
// Built only when the CQS_TRANSPORT_SOCKET CMake option is on (POSIX).
#pragma once

#include <sys/types.h>

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "runtime/transport.hpp"
#include "runtime/wire_format.hpp"

namespace cqs::runtime {

class SocketTransport final : public Transport {
 public:
  /// Forks one endpoint process per rank and completes a hello handshake
  /// with each. Throws TransportError if any endpoint fails to come up
  /// within the deadline.
  explicit SocketTransport(const TransportOptions& options);
  ~SocketTransport() override;

  SocketTransport(const SocketTransport&) = delete;
  SocketTransport& operator=(const SocketTransport&) = delete;

  std::string name() const override { return "socket"; }
  int num_ranks() const override { return static_cast<int>(conns_.size()); }

  PendingExchange exchange_begin(int rank_a, int rank_b, ByteSpan from_a,
                                 ByteSpan from_b, std::uint8_t codec_a,
                                 std::uint8_t codec_b) override;
  void exchange_wait(PendingExchange& pending) override;

  WireStats wire_stats() const override;

  /// Joined (or still-running) rank endpoint processes, for launcher
  /// reporting: cqs_run prints these after forking/joining a socket run.
  struct RankProcess {
    int rank = -1;
    pid_t pid = -1;
    bool joined = false;
    int exit_code = -1;  ///< valid once joined
  };

  /// Shuts down and reaps every endpoint (idempotent; also run by the
  /// destructor). Returns the final process table.
  std::vector<RankProcess> join();
  std::vector<RankProcess> processes() const;

  /// Fault injection for tests: instructs `rank`'s endpoint to corrupt its
  /// next data echo, stall it for `stall_ms`, or die immediately. Scripted
  /// faults (FaultInjector site "transport.send") are converted into these
  /// same control frames by exchange_begin, so both paths exercise the
  /// identical wire machinery.
  void inject_fault(int rank, wire::FrameType fault, std::uint64_t aux = 0);

 private:
  struct Connection;

  void send_frame(Connection& conn, wire::FrameHeader header,
                  ByteSpan payload);
  /// Receives the reply frame tagged `tag` from `conn`, parking frames
  /// addressed to other waiters. Throws TransportError on timeout, EOF,
  /// or checksum mismatch.
  Bytes recv_for_tag(Connection& conn, std::uint64_t tag);

  int timeout_ms_ = 5000;
  std::vector<std::unique_ptr<Connection>> conns_;
  std::atomic<std::uint64_t> next_tag_{1};
  std::atomic<std::uint64_t> payload_bytes_{0};
  std::atomic<std::uint64_t> frame_bytes_{0};
  std::atomic<std::uint64_t> frames_{0};
  std::mutex join_mutex_;
  bool joined_ = false;
};

/// The endpoint process main loop, exposed for the launcher: serves hello/
/// data echoes and fault-injection controls on `fd` until a shutdown
/// frame, EOF, or a protocol violation, then _exit()s. Never returns.
[[noreturn]] void run_rank_endpoint(int fd, int rank);

}  // namespace cqs::runtime
