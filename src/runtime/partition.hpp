// Amplitude-index partitioning (Section 3.3, Figure 3). The global index
// of an amplitude splits into three segments:
//
//   [ rank bits | block bits | offset bits ]
//    high                          low
//
// A gate on qubit q is routed by which segment q falls into:
//   offset segment  -> both amplitudes of every pair live in one block;
//   block segment   -> pairs span two blocks of the same rank;
//   rank segment    -> pairs span two ranks and blocks must be exchanged.
// Control qubits use the same segmentation to skip amplitudes, whole
// blocks, or whole ranks when the control bit is 0.
#pragma once

#include <bit>
#include <cstdint>
#include <stdexcept>

namespace cqs::runtime {

struct Partition {
  int num_qubits = 0;
  int rank_bits = 0;    ///< log2(ranks)
  int block_bits = 0;   ///< log2(blocks per rank)
  int offset_bits = 0;  ///< log2(amplitudes per block)

  int num_ranks() const { return 1 << rank_bits; }
  int blocks_per_rank() const { return 1 << block_bits; }
  std::uint64_t amplitudes_per_block() const {
    return std::uint64_t{1} << offset_bits;
  }
  std::uint64_t total_amplitudes() const {
    return std::uint64_t{1} << num_qubits;
  }
  /// Doubles per block (re/im interleaved).
  std::size_t doubles_per_block() const {
    return static_cast<std::size_t>(amplitudes_per_block()) * 2;
  }
  std::size_t bytes_per_block() const {
    return doubles_per_block() * sizeof(double);
  }

  enum class Segment { kOffset, kBlock, kRank };

  Segment segment_of(int qubit) const {
    if (qubit < offset_bits) return Segment::kOffset;
    if (qubit < offset_bits + block_bits) return Segment::kBlock;
    return Segment::kRank;
  }

  /// Bit position of `qubit` within its segment's local index.
  int local_bit(int qubit) const {
    switch (segment_of(qubit)) {
      case Segment::kOffset: return qubit;
      case Segment::kBlock: return qubit - offset_bits;
      case Segment::kRank: return qubit - offset_bits - block_bits;
    }
    return 0;
  }

  /// First qubit index of a segment (the offset segment starts at 0; the
  /// rank segment at offset_bits + block_bits). With segment_size this
  /// enumerates a segment's qubits — the qubit-remap planner walks the
  /// offset segment for eviction candidates this way.
  int segment_begin(Segment segment) const {
    switch (segment) {
      case Segment::kOffset: return 0;
      case Segment::kBlock: return offset_bits;
      case Segment::kRank: return offset_bits + block_bits;
    }
    return 0;
  }

  int segment_size(Segment segment) const {
    switch (segment) {
      case Segment::kOffset: return offset_bits;
      case Segment::kBlock: return block_bits;
      case Segment::kRank: return num_qubits - offset_bits - block_bits;
    }
    return 0;
  }

  /// Global amplitude index from (rank, block, offset).
  std::uint64_t global_index(int rank, int block,
                             std::uint64_t offset) const {
    return (static_cast<std::uint64_t>(rank) << (offset_bits + block_bits)) |
           (static_cast<std::uint64_t>(block) << offset_bits) | offset;
  }
};

/// Validates and builds a partition. Ranks and blocks/rank must be powers
/// of two, and the block must hold at least one amplitude.
inline Partition make_partition(int num_qubits, int num_ranks,
                                int blocks_per_rank) {
  if (num_qubits < 1 || num_qubits > 40) {
    throw std::invalid_argument("partition: qubits must be in [1, 40]");
  }
  if (num_ranks < 1 || !std::has_single_bit(unsigned(num_ranks))) {
    throw std::invalid_argument("partition: ranks must be a power of two");
  }
  if (blocks_per_rank < 1 ||
      !std::has_single_bit(unsigned(blocks_per_rank))) {
    throw std::invalid_argument(
        "partition: blocks per rank must be a power of two");
  }
  Partition p;
  p.num_qubits = num_qubits;
  p.rank_bits = std::countr_zero(unsigned(num_ranks));
  p.block_bits = std::countr_zero(unsigned(blocks_per_rank));
  p.offset_bits = num_qubits - p.rank_bits - p.block_bits;
  if (p.offset_bits < 1) {
    throw std::invalid_argument(
        "partition: rank * block count exceeds state size");
  }
  return p;
}

}  // namespace cqs::runtime
