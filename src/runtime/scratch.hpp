// ScratchArena: the MCDRAM stand-in (Section 3.2). The paper decompresses
// at most two blocks per rank into pre-allocated high-bandwidth memory; we
// pre-allocate two aligned block-sized double buffers per worker thread so
// the hot loop never allocates. Each worker additionally owns a
// CodecScratch — the pooled codec working state (LZ77 hash chains, entropy
// staging buffers, quantization vectors) that makes steady-state codec
// calls allocation-free; its bytes count toward the Eq. 8 footprint next
// to the block buffers.
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <vector>

#include "compression/codec_scratch.hpp"

namespace cqs::runtime {

class ScratchArena {
 public:
  /// `workers` independent slots, each with two buffers of
  /// `doubles_per_block` doubles (Vector_x and Vector_y of Figure 2) plus
  /// one CodecScratch.
  ScratchArena(std::size_t workers, std::size_t doubles_per_block)
      : doubles_per_block_(doubles_per_block),
        storage_(workers * 2 * doubles_per_block),
        codec_(workers) {}

  std::span<double> vector_x(std::size_t worker) {
    return {storage_.data() + worker * 2 * doubles_per_block_,
            doubles_per_block_};
  }

  std::span<double> vector_y(std::size_t worker) {
    return {storage_.data() + (worker * 2 + 1) * doubles_per_block_,
            doubles_per_block_};
  }

  /// Pooled codec working state of one worker.
  compression::CodecScratch& codec_scratch(std::size_t worker) {
    return codec_[worker];
  }

  /// Bytes held by the block buffers — the "2 * (2^{n+4} / (r * nb))" term
  /// of Eq. 8, summed over workers.
  std::size_t block_buffer_bytes() const {
    return storage_.size() * sizeof(double);
  }

  /// Bytes held by the per-worker codec pools (their steady-state
  /// high-water marks).
  std::size_t codec_scratch_bytes() const {
    std::size_t total = 0;
    for (const auto& scratch : codec_) total += scratch.bytes();
    return total;
  }

  /// Total scratch footprint charged to Eq. 8.
  std::size_t bytes() const {
    return block_buffer_bytes() + codec_scratch_bytes();
  }

 private:
  std::size_t doubles_per_block_;
  std::vector<double> storage_;
  std::vector<compression::CodecScratch> codec_;
};

}  // namespace cqs::runtime
