// ScratchArena: the MCDRAM stand-in (Section 3.2). The paper decompresses
// at most two blocks per rank into pre-allocated high-bandwidth memory; we
// pre-allocate two aligned block-sized double buffers per worker thread so
// the hot loop never allocates. Each worker additionally owns a
// CodecScratch — the pooled codec working state (LZ77 hash chains, entropy
// staging buffers, quantization vectors) that makes steady-state codec
// calls allocation-free; its bytes count toward the Eq. 8 footprint next
// to the block buffers.
//
// The arena can also host a pool of pipeline staging buffers — the extra
// in-flight decoded blocks of the double-buffered decompress/apply/
// recompress pipeline. They are acquired and released across threads (the
// decode stage fills one, the apply stage drains it), so the free list is
// guarded by a mutex; their bytes are charged to Eq. 8 like everything
// else here.
#pragma once

#include <cstddef>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "compression/codec_scratch.hpp"

namespace cqs::runtime {

class ScratchArena {
 public:
  /// `workers` independent slots, each with two buffers of
  /// `doubles_per_block` doubles (Vector_x and Vector_y of Figure 2) plus
  /// one CodecScratch. `staging_buffers` block-sized pipeline buffers are
  /// appended to the same storage (0 = pipeline disabled).
  ScratchArena(std::size_t workers, std::size_t doubles_per_block,
               std::size_t staging_buffers = 0)
      : doubles_per_block_(doubles_per_block),
        workers_(workers),
        storage_((workers * 2 + staging_buffers) * doubles_per_block),
        codec_(workers) {
    staging_free_.reserve(staging_buffers);
    for (std::size_t i = 0; i < staging_buffers; ++i) {
      staging_free_.push_back(staging_buffers - 1 - i);  // pop() yields 0 first
    }
    staging_count_ = staging_buffers;
  }

  std::span<double> vector_x(std::size_t worker) {
    return {storage_.data() + worker * 2 * doubles_per_block_,
            doubles_per_block_};
  }

  std::span<double> vector_y(std::size_t worker) {
    return {storage_.data() + (worker * 2 + 1) * doubles_per_block_,
            doubles_per_block_};
  }

  /// Pooled codec working state of one worker.
  compression::CodecScratch& codec_scratch(std::size_t worker) {
    return codec_[worker];
  }

  /// Number of pipeline staging buffers the arena was built with.
  std::size_t staging_buffers() const { return staging_count_; }

  /// Claims a free staging buffer; returns its index, or -1 if every
  /// buffer is in flight. Thread-safe.
  int acquire_staging() {
    std::lock_guard lock(staging_mutex_);
    if (staging_free_.empty()) return -1;
    const int idx = static_cast<int>(staging_free_.back());
    staging_free_.pop_back();
    return idx;
  }

  /// Returns a staging buffer claimed by acquire_staging(). Thread-safe.
  void release_staging(int idx) {
    std::lock_guard lock(staging_mutex_);
    staging_free_.push_back(static_cast<std::size_t>(idx));
  }

  /// The block-sized buffer behind a staging index.
  std::span<double> staging(int idx) {
    return {storage_.data() +
                (workers_ * 2 + static_cast<std::size_t>(idx)) *
                    doubles_per_block_,
            doubles_per_block_};
  }

  /// Bytes held by the block buffers — the "2 * (2^{n+4} / (r * nb))" term
  /// of Eq. 8, summed over workers.
  std::size_t block_buffer_bytes() const {
    return storage_.size() * sizeof(double);
  }

  /// Bytes held by the per-worker codec pools (their steady-state
  /// high-water marks).
  std::size_t codec_scratch_bytes() const {
    std::size_t total = 0;
    for (const auto& scratch : codec_) total += scratch.bytes();
    return total;
  }

  /// Total scratch footprint charged to Eq. 8.
  std::size_t bytes() const {
    return block_buffer_bytes() + codec_scratch_bytes();
  }

 private:
  std::size_t doubles_per_block_;
  std::size_t workers_;
  std::size_t staging_count_ = 0;
  std::vector<double> storage_;
  std::vector<compression::CodecScratch> codec_;
  std::mutex staging_mutex_;
  std::vector<std::size_t> staging_free_;
};

}  // namespace cqs::runtime
