// ScratchArena: the MCDRAM stand-in (Section 3.2). The paper decompresses
// at most two blocks per rank into pre-allocated high-bandwidth memory; we
// pre-allocate two aligned block-sized double buffers per worker thread so
// the hot loop never allocates.
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <vector>

namespace cqs::runtime {

class ScratchArena {
 public:
  /// `workers` independent slots, each with two buffers of
  /// `doubles_per_block` doubles (Vector_x and Vector_y of Figure 2).
  ScratchArena(std::size_t workers, std::size_t doubles_per_block)
      : doubles_per_block_(doubles_per_block),
        storage_(workers * 2 * doubles_per_block) {}

  std::span<double> vector_x(std::size_t worker) {
    return {storage_.data() + worker * 2 * doubles_per_block_,
            doubles_per_block_};
  }

  std::span<double> vector_y(std::size_t worker) {
    return {storage_.data() + (worker * 2 + 1) * doubles_per_block_,
            doubles_per_block_};
  }

  /// Bytes held by the arena — the "2 * (2^{n+4} / (r * nb))" term of
  /// Eq. 8, summed over workers.
  std::size_t bytes() const { return storage_.size() * sizeof(double); }

 private:
  std::size_t doubles_per_block_;
  std::vector<double> storage_;
};

}  // namespace cqs::runtime
