// Pluggable cross-rank transport under runtime::Comm. A Transport executes
// the paired sendrecv of one compressed-block exchange; Comm stays the
// accounting shim the simulator and Table 2 read. Two backends:
//
//   LoopbackTransport — all logical ranks in this process; an exchange is
//   the staged copy the routing model has always performed (bit-for-bit
//   the pre-transport behavior, and the default).
//
//   SocketTransport (runtime/socket_transport.hpp, built when the
//   CQS_TRANSPORT_SOCKET CMake option is on) — every rank is a real OS
//   process joined by a Unix-domain or TCP socket; exchanged payloads
//   physically traverse the wire in checksummed frames, and every wire
//   operation carries a deadline that surfaces as a typed TransportError
//   instead of a hang.
//
// The begin/wait split is the MPI_Isend/MPI_Wait shape: exchange_begin
// ships both payloads toward their partners and returns immediately, so
// the caller overlaps codec work with the wire before exchange_wait
// collects what each rank received.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>

#include "common/bytes.hpp"

namespace cqs::runtime {

/// Typed wire failure. Every blocking transport operation either completes
/// within its deadline or throws one of these — an exchange can fail, but
/// it can never hang.
class TransportError : public std::runtime_error {
 public:
  enum class Kind {
    kTimeout,      ///< connect/send/recv deadline expired
    kRankDead,     ///< peer process closed the connection / exited
    kFrameCorrupt,  ///< checksum or framing mismatch on a received frame
    kProtocol,     ///< well-formed frame that violates the protocol
  };

  TransportError(Kind kind, int rank, const std::string& what)
      : std::runtime_error(what), kind_(kind), rank_(rank) {}

  Kind kind() const { return kind_; }
  /// Rank whose connection failed (-1 when not attributable to one rank).
  int rank() const { return rank_; }

 private:
  Kind kind_;
  int rank_;
};

/// Physical wire traffic, as distinct from Comm's logical accounting.
/// Loopback counts each staged payload copy once with no framing; the
/// socket backend counts every byte written to or read from a socket —
/// each exchanged payload crosses the driver<->endpoint wire out and back,
/// so its payload_bytes are exactly 2x Comm's bytes_moved (the accounting
/// identity bench_fig16 asserts).
struct WireStats {
  std::uint64_t payload_bytes = 0;  ///< payload bytes on the wire
  std::uint64_t frame_bytes = 0;    ///< framing header bytes (loopback: 0)
  std::uint64_t frames = 0;         ///< frames sent + received
};

/// One in-flight paired exchange. Opaque to callers: exchange_wait fills
/// to_a/to_b. Backend bookkeeping lives inline so no allocation or virtual
/// token is needed per exchange.
struct PendingExchange {
  int rank_a = -1;
  int rank_b = -1;
  Bytes to_a;  ///< what rank a received (= from_b after the wire)
  Bytes to_b;  ///< what rank b received (= from_a after the wire)
  // Loopback: payloads staged "on the wire" between begin and wait.
  Bytes staged_a;
  Bytes staged_b;
  // Socket: demux tags of the two reply frames still in flight.
  std::uint64_t tag_a = 0;
  std::uint64_t tag_b = 0;
  bool active = false;
};

class Transport {
 public:
  virtual ~Transport() = default;

  virtual std::string name() const = 0;
  virtual int num_ranks() const = 0;

  /// Starts the paired sendrecv: `from_a` travels toward rank b and
  /// `from_b` toward rank a (both spans are consumed before returning, so
  /// the caller may drop them immediately). The codec ids ride the frame
  /// headers. Ranks are validated by Comm; backends may assume them sane.
  virtual PendingExchange exchange_begin(int rank_a, int rank_b,
                                         ByteSpan from_a, ByteSpan from_b,
                                         std::uint8_t codec_a,
                                         std::uint8_t codec_b) = 0;

  /// Completes an exchange begun above, filling to_a/to_b. Throws
  /// TransportError on wire failure; never blocks past the deadline.
  virtual void exchange_wait(PendingExchange& pending) = 0;

  virtual WireStats wire_stats() const = 0;
};

/// All ranks in-process: an exchange stages each payload through a wire
/// buffer (one real timed copy out at begin, handed over at wait), exactly
/// the staged-copy routing model the simulator has always run on.
class LoopbackTransport final : public Transport {
 public:
  explicit LoopbackTransport(int num_ranks) : num_ranks_(num_ranks) {}

  std::string name() const override { return "loopback"; }
  int num_ranks() const override { return num_ranks_; }

  PendingExchange exchange_begin(int rank_a, int rank_b, ByteSpan from_a,
                                 ByteSpan from_b, std::uint8_t codec_a,
                                 std::uint8_t codec_b) override;
  void exchange_wait(PendingExchange& pending) override;

  WireStats wire_stats() const override;

 private:
  int num_ranks_;
  std::atomic<std::uint64_t> payload_bytes_{0};
  std::atomic<std::uint64_t> frames_{0};
};

struct TransportOptions {
  int num_ranks = 1;
  /// Deadline for every blocking wire operation (connect, send, recv) in
  /// milliseconds. Must be positive.
  int rank_timeout_ms = 5000;
  /// Socket rank endpoints: "local" = a pre-connected Unix-domain
  /// socketpair per rank; "tcp" = rank processes connect back to an
  /// ephemeral 127.0.0.1 listener.
  std::string socket_endpoint = "local";
};

/// True when this build carries the multi-process socket backend
/// (CQS_TRANSPORT_SOCKET CMake option).
bool socket_transport_available();

/// Factory: "loopback" | "socket". Throws std::invalid_argument on unknown
/// names and when "socket" is requested from a build without it.
std::unique_ptr<Transport> make_transport(const std::string& name,
                                          const TransportOptions& options);

}  // namespace cqs::runtime
