#include "runtime/block_store.hpp"

#include <atomic>
#include <stdexcept>

namespace cqs::runtime {

void BlockStore::set_block(int index, Bytes payload, BlockMeta meta) {
  if (index < 0 || index >= num_blocks()) {
    throw std::out_of_range("BlockStore: block index out of range");
  }
  // Distinct blocks are updated concurrently by worker threads; the shared
  // running total is the only contended word.
  std::atomic_ref<std::size_t> total(total_bytes_);
  total.fetch_sub(blocks_[index].size(), std::memory_order_relaxed);
  blocks_[index] = std::move(payload);
  total.fetch_add(blocks_[index].size(), std::memory_order_relaxed);
  meta_[index] = meta;
}

}  // namespace cqs::runtime
