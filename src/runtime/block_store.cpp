#include "runtime/block_store.hpp"

#include <stdexcept>
#include <utility>

namespace cqs::runtime {
namespace {

// Relaxed atomic helpers for Slot tier fields (see the Slot comment: a
// racing advise() may read them from any worker).
template <typename T>
T tier_load(const T& field) {
  return std::atomic_ref(const_cast<T&>(field))
      .load(std::memory_order_relaxed);
}
template <typename T>
void tier_store(T& field, T value) {
  std::atomic_ref(field).store(value, std::memory_order_relaxed);
}

void fetch_max(std::atomic<std::size_t>& peak, std::size_t value) {
  std::size_t seen = peak.load(std::memory_order_relaxed);
  while (seen < value &&
         !peak.compare_exchange_weak(seen, value,
                                     std::memory_order_relaxed)) {
  }
}

void add_delta(std::atomic<std::size_t>& counter, std::ptrdiff_t delta) {
  if (delta >= 0) {
    counter.fetch_add(static_cast<std::size_t>(delta),
                      std::memory_order_relaxed);
  } else {
    counter.fetch_sub(static_cast<std::size_t>(-delta),
                      std::memory_order_relaxed);
  }
}

}  // namespace

void TierStats::note_delta(std::ptrdiff_t resident_delta,
                           std::ptrdiff_t spilled_delta) {
  add_delta(resident_bytes, resident_delta);
  add_delta(spilled_bytes, spilled_delta);
  // Sampled at every mutation, the peaks bound actual occupancy — the
  // gate-boundary sampling they replace missed transient maxima while a
  // sweep held both exchange partners resident.
  const std::size_t resident = resident_bytes.load(std::memory_order_relaxed);
  fetch_max(peak_resident_bytes, resident);
  fetch_max(peak_total_bytes,
            resident + spilled_bytes.load(std::memory_order_relaxed));
}

void TierStats::reset() {
  resident_bytes.store(0, std::memory_order_relaxed);
  spilled_bytes.store(0, std::memory_order_relaxed);
  peak_resident_bytes.store(0, std::memory_order_relaxed);
  peak_total_bytes.store(0, std::memory_order_relaxed);
  spill_events.store(0, std::memory_order_relaxed);
  fault_events.store(0, std::memory_order_relaxed);
  readahead_issued.store(0, std::memory_order_relaxed);
  readahead_hits.store(0, std::memory_order_relaxed);
}

BlockStore::BlockStore(BlockStore&& other) noexcept
    : slots_(std::move(other.slots_)),
      meta_(std::move(other.meta_)),
      resident_bytes_(other.resident_bytes_),
      spilled_bytes_(other.spilled_bytes_),
      stats_(other.stats_),
      spill_(other.spill_) {
  other.slots_.clear();
  other.resident_bytes_ = 0;
  other.spilled_bytes_ = 0;
  other.stats_ = nullptr;
  other.spill_ = nullptr;
}

BlockStore& BlockStore::operator=(BlockStore&& other) noexcept {
  if (this == &other) return *this;
  release_segments();
  slots_ = std::move(other.slots_);
  meta_ = std::move(other.meta_);
  resident_bytes_ = other.resident_bytes_;
  spilled_bytes_ = other.spilled_bytes_;
  stats_ = other.stats_;
  spill_ = other.spill_;
  other.slots_.clear();
  other.resident_bytes_ = 0;
  other.spilled_bytes_ = 0;
  other.stats_ = nullptr;
  other.spill_ = nullptr;
  return *this;
}

BlockStore::~BlockStore() { release_segments(); }

void BlockStore::release_segments() {
  // Destruction only returns spill segments; the shared TierStats is left
  // alone — a replaced store set (checkpoint restore) resets and refolds
  // the stats explicitly, and subtracting here would corrupt that.
  if (spill_ == nullptr) return;
  for (Slot& slot : slots_) {
    if (tier_load(slot.spilled) != 0) {
      spill_->free_segment(slot.segment);
      tier_store<std::uint8_t>(slot.spilled, 0);
      slot.segment = {};
    }
  }
}

void BlockStore::attach(TierStats* stats, SpillFile* spill) {
  stats_ = stats;
  spill_ = spill;
  if (stats_ != nullptr) {
    const std::ptrdiff_t resident =
        static_cast<std::ptrdiff_t>(resident_bytes());
    const std::ptrdiff_t spilled =
        static_cast<std::ptrdiff_t>(spilled_bytes());
    if (resident != 0 || spilled != 0) stats_->note_delta(resident, spilled);
  }
}

void BlockStore::account(std::ptrdiff_t resident_delta,
                         std::ptrdiff_t spilled_delta) {
  if (resident_delta != 0) {
    std::atomic_ref<std::size_t> resident(resident_bytes_);
    if (resident_delta >= 0) {
      resident.fetch_add(static_cast<std::size_t>(resident_delta),
                         std::memory_order_relaxed);
    } else {
      resident.fetch_sub(static_cast<std::size_t>(-resident_delta),
                         std::memory_order_relaxed);
    }
  }
  if (spilled_delta != 0) {
    std::atomic_ref<std::size_t> spilled(spilled_bytes_);
    if (spilled_delta >= 0) {
      spilled.fetch_add(static_cast<std::size_t>(spilled_delta),
                        std::memory_order_relaxed);
    } else {
      spilled.fetch_sub(static_cast<std::size_t>(-spilled_delta),
                        std::memory_order_relaxed);
    }
  }
  if (stats_ != nullptr) stats_->note_delta(resident_delta, spilled_delta);
}

const Bytes& BlockStore::block(int index) const {
  const Slot& slot = slots_[static_cast<std::size_t>(index)];
  if (tier_load(slot.spilled) != 0) {
    throw std::logic_error(
        "BlockStore::block: block is spilled; read it through "
        "payload_view");
  }
  return *slot.payload;
}

ByteSpan BlockStore::payload_view(int index) const {
  const Slot& slot = slots_[static_cast<std::size_t>(index)];
  if (tier_load(slot.spilled) == 0) return ByteSpan(*slot.payload);
  if (stats_ != nullptr) {
    stats_->fault_events.fetch_add(1, std::memory_order_relaxed);
    std::atomic_ref<std::uint8_t> advised(slot.advised);
    if (advised.exchange(0, std::memory_order_relaxed) != 0) {
      stats_->readahead_hits.fetch_add(1, std::memory_order_relaxed);
    }
  }
  return spill_->view(slot.segment);
}

ByteSpan BlockStore::raw_view(int index) const {
  const Slot& slot = slots_[static_cast<std::size_t>(index)];
  if (tier_load(slot.spilled) == 0) return ByteSpan(*slot.payload);
  return spill_->view(slot.segment);
}

std::size_t BlockStore::block_size(int index) const {
  const Slot& slot = slots_[static_cast<std::size_t>(index)];
  return tier_load(slot.spilled) != 0
             ? static_cast<std::size_t>(slot.segment.size)
             : slot.payload->size();
}

void BlockStore::set_block(int index, Bytes payload, BlockMeta meta) {
  if (index < 0 || index >= num_blocks()) {
    throw std::out_of_range("BlockStore: block index out of range");
  }
  Slot& slot = slots_[static_cast<std::size_t>(index)];
  std::ptrdiff_t resident_delta = 0;
  std::ptrdiff_t spilled_delta = 0;
  if (tier_load(slot.spilled) != 0) {
    // Unpublish the tier flag before the segment goes back to the free
    // list, so a racing advise never hints at a recycled range.
    tier_store<std::uint8_t>(slot.spilled, 0);
    spill_->free_segment(slot.segment);
    spilled_delta -= static_cast<std::ptrdiff_t>(slot.segment.size);
    tier_store<std::uint64_t>(slot.segment.offset, 0);
    tier_store<std::uint64_t>(slot.segment.size, 0);
  } else if (slot.payload != nullptr) {
    resident_delta -= static_cast<std::ptrdiff_t>(slot.payload->size());
  }
  resident_delta += static_cast<std::ptrdiff_t>(payload.size());
  slot.payload = std::make_shared<const Bytes>(std::move(payload));
  ++slot.generation;
  std::atomic_ref<std::uint8_t>(slot.advised)
      .store(0, std::memory_order_relaxed);
  meta_[static_cast<std::size_t>(index)] = meta;
  account(resident_delta, spilled_delta);
}

void BlockStore::spill_block(int index) {
  Slot& slot = slots_[static_cast<std::size_t>(index)];
  if (tier_load(slot.spilled) != 0 || slot.payload == nullptr ||
      spill_ == nullptr) {
    return;
  }
  const SpillSegment segment = spill_->write(*slot.payload);  // may throw
  const auto size = static_cast<std::ptrdiff_t>(slot.payload->size());
  tier_store(slot.segment.offset, segment.offset);
  tier_store(slot.segment.size, segment.size);
  tier_store<std::uint8_t>(slot.spilled, 1);  // publish after the segment
  slot.payload.reset();
  account(-size, size);
  if (stats_ != nullptr) {
    stats_->spill_events.fetch_add(1, std::memory_order_relaxed);
  }
}

bool BlockStore::commit_spill(int index, const SpillSegment& segment,
                              std::uint64_t generation) {
  Slot& slot = slots_[static_cast<std::size_t>(index)];
  if (slot.generation != generation || tier_load(slot.spilled) != 0 ||
      slot.payload == nullptr) {
    // The block was rewritten (or already spilled) after the write was
    // enqueued: the on-disk bytes are stale, drop them.
    if (spill_ != nullptr) spill_->free_segment(segment);
    return false;
  }
  const auto size = static_cast<std::ptrdiff_t>(slot.payload->size());
  tier_store(slot.segment.offset, segment.offset);
  tier_store(slot.segment.size, segment.size);
  tier_store<std::uint8_t>(slot.spilled, 1);
  slot.payload.reset();
  account(-size, size);
  if (stats_ != nullptr) {
    stats_->spill_events.fetch_add(1, std::memory_order_relaxed);
  }
  return true;
}

void BlockStore::advise(int index) const {
  const Slot& slot = slots_[static_cast<std::size_t>(index)];
  if (spill_ == nullptr || tier_load(slot.spilled) == 0) return;
  const SpillSegment segment{tier_load(slot.segment.offset),
                             tier_load(slot.segment.size)};
  if (segment.size == 0) return;  // raced a tier transition; nothing to do
  spill_->advise_willneed(segment);
  std::atomic_ref<std::uint8_t>(slot.advised)
      .store(1, std::memory_order_relaxed);
  if (stats_ != nullptr) {
    stats_->readahead_issued.fetch_add(1, std::memory_order_relaxed);
  }
}

}  // namespace cqs::runtime
