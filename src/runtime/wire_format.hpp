// Compressed-payload wire framing shared by every Transport backend and
// the rank endpoint processes: a fixed little-endian header carrying the
// frame type, source/destination rank, an exchange tag (the demux key for
// concurrent sweeps on one connection), the payload length, the payload's
// codec id, and an FNV-1a checksum of the payload bytes. The header is
// intentionally transport-agnostic so the framing can be unit-tested
// without opening a socket.
#pragma once

#include <array>
#include <cstdint>
#include <cstring>
#include <optional>

#include "common/bytes.hpp"

namespace cqs::runtime::wire {

inline constexpr std::uint32_t kMagic = 0x43515357;  // "CQSW"
inline constexpr std::uint8_t kVersion = 1;

enum class FrameType : std::uint8_t {
  kHello = 0,     ///< liveness/version handshake; echoed by the endpoint
  kData = 1,      ///< one compressed block payload; echoed by the endpoint
  kShutdown = 2,  ///< endpoint exits cleanly; no reply
  // Fault-injection controls (tests drive these; no reply):
  kCorruptNext = 3,  ///< endpoint flips a payload bit in its next data echo
  kStallNext = 4,    ///< endpoint sleeps `aux` ms before its next data echo
  kDie = 5,          ///< endpoint _exit()s immediately (simulated rank death)
};

struct FrameHeader {
  std::uint32_t magic = kMagic;
  std::uint8_t version = kVersion;
  std::uint8_t type = static_cast<std::uint8_t>(FrameType::kData);
  std::uint8_t codec = 0;  ///< codec id of the payload (registry id)
  std::uint8_t flags = 0;
  std::uint32_t src_rank = 0;
  std::uint32_t dst_rank = 0;
  std::uint64_t tag = 0;          ///< exchange demux key (unique per leg)
  std::uint64_t payload_len = 0;  ///< bytes following the header
  std::uint64_t aux = 0;          ///< type-specific (kStallNext: milliseconds)
  std::uint64_t checksum = 0;     ///< fnv1a over the payload bytes
};

inline constexpr std::size_t kHeaderBytes = 48;

inline std::uint64_t payload_checksum(ByteSpan payload) {
  return fnv1a(payload);
}

inline std::array<std::byte, kHeaderBytes> encode_header(
    const FrameHeader& h) {
  std::array<std::byte, kHeaderBytes> out{};
  std::size_t off = 0;
  auto put = [&](auto value) {
    std::memcpy(out.data() + off, &value, sizeof(value));
    off += sizeof(value);
  };
  put(h.magic);
  put(h.version);
  put(h.type);
  put(h.codec);
  put(h.flags);
  put(h.src_rank);
  put(h.dst_rank);
  put(h.tag);
  put(h.payload_len);
  put(h.aux);
  put(h.checksum);
  return out;
}

/// Decodes a header; nullopt when the magic or version does not match (a
/// torn or foreign stream — the caller surfaces the typed error).
inline std::optional<FrameHeader> decode_header(
    std::span<const std::byte, kHeaderBytes> raw) {
  FrameHeader h;
  std::size_t off = 0;
  auto get = [&](auto& value) {
    std::memcpy(&value, raw.data() + off, sizeof(value));
    off += sizeof(value);
  };
  get(h.magic);
  get(h.version);
  get(h.type);
  get(h.codec);
  get(h.flags);
  get(h.src_rank);
  get(h.dst_rank);
  get(h.tag);
  get(h.payload_len);
  get(h.aux);
  get(h.checksum);
  if (h.magic != kMagic || h.version != kVersion) return std::nullopt;
  return h;
}

}  // namespace cqs::runtime::wire
