// Unified, deterministic fault injection. One process-wide registry
// replaces the ad-hoc hooks that accumulated per subsystem (the spill
// tier's write-capacity static, hand-sent wire control frames): code at a
// fault-prone boundary declares a named *site* and asks the injector on
// every call; a scripted *plan* decides which calls fail and how.
//
// Determinism contract: a site's Nth call fires regardless of which
// thread makes it, and seeded triggers resolve their N from the plan seed
// alone at arm time — so the set of fired (site, call) pairs is a pure
// function of the plan and the per-site call counts, never of timing.
// That is what lets recovery tests pin "same seed => same fire sites
// across thread counts".
//
// Plan grammar (entries separated by ';' or ','):
//   seed=K                 seed for '~' triggers (default 0)
//   site@N[:action[=aux]]  fire once, on the site's Nth call (1-based)
//   site@N+[:...]          fire on every call from the Nth on
//   site@NxC[:...]         fire on C consecutive calls starting at the Nth
//   site@~W[:...]          seeded: fire once, at a call in [1, W] derived
//                          from (seed, site, entry index)
// Actions (site-defined; "fail" when omitted): fail, enospc, eio, die,
// corrupt, stall, timeout. `aux` is an action parameter (stall duration
// in ms). Example: "seed=7;spill.write@~6:enospc;transport.send@3:die".
//
// Instrumented sites (see fault_sites below):
//   spill.write        SpillFile::write — enospc (default) / eio throws
//                      the matching SpillError before the pwrite.
//   transport.send     one per exchange_begin. Loopback throws the typed
//                      TransportError directly (die -> kRankDead,
//                      timeout -> kTimeout, corrupt -> kFrameCorrupt);
//                      the socket backend converts the hit into the
//                      matching endpoint control frame (kDie /
//                      kStallNext / kCorruptNext) so the fault manifests
//                      through the real wire machinery.
//   checkpoint.rename  the atomic-save publish step — "fail" aborts after
//                      the temp image is written but before the rename,
//                      standing in for a crash mid-save.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

namespace cqs::runtime {

namespace fault_sites {
inline constexpr const char* kSpillWrite = "spill.write";
inline constexpr const char* kTransportSend = "transport.send";
inline constexpr const char* kCheckpointRename = "checkpoint.rename";
}  // namespace fault_sites

/// One scripted fault: which site, which call(s), what to do.
struct FaultSpec {
  std::string site;
  /// 1-based index of the first firing call at the site. 0 means "seeded":
  /// resolved from (plan seed, site, entry index) into [1, window] at arm
  /// time.
  std::uint64_t nth = 1;
  std::uint64_t window = 0;  ///< seeded-trigger range; 0 unless nth == 0
  /// Consecutive firing calls starting at nth; 0 = every call from nth on.
  std::uint64_t count = 1;
  std::string action = "fail";
  std::uint64_t aux = 0;  ///< action parameter (stall ms)
};

/// A parsed, seedable fault script. Value type: tests build them inline,
/// `cqs_run --fault-plan` parses them from the command line.
struct FaultPlan {
  std::uint64_t seed = 0;
  std::vector<FaultSpec> specs;

  /// Parses the grammar above. Throws std::invalid_argument on malformed
  /// entries, unknown actions, or zero triggers.
  static FaultPlan parse(const std::string& text);
};

/// One fault that fired: the site, the 1-based call index that hit, and
/// the action the site was told to perform.
struct FaultHit {
  std::string site;
  std::uint64_t call = 0;
  std::string action;
  std::uint64_t aux = 0;
};

/// Process-wide fault registry. Disarmed (the default) it is a single
/// relaxed atomic load per instrumented call; armed, each call takes a
/// short critical section to bump the site counter and match specs.
class FaultInjector {
 public:
  static FaultInjector& instance();

  /// Installs `plan`, resetting all call counters and the fired ledger.
  /// Seeded triggers are resolved here. Throws std::invalid_argument on
  /// specs with a zero trigger (nth == 0 and window == 0).
  void arm(const FaultPlan& plan);
  /// Deactivates injection (counters and ledger stay readable until the
  /// next arm).
  void disarm();
  bool armed() const;

  /// The instrumented-site entry point: bumps the site's call counter and
  /// returns the scripted action when this call should fault. Thread-safe.
  /// Returns nullopt (without counting) while disarmed.
  std::optional<FaultHit> on_call(const std::string& site);

  /// Calls observed at `site` since the last arm.
  std::uint64_t calls(const std::string& site) const;
  /// Every fault fired since the last arm, sorted by (site, call) so the
  /// ledger is comparable across runs regardless of thread interleaving.
  std::vector<FaultHit> fired() const;
  /// The armed specs with seeded triggers materialized — what `~W`
  /// resolved to for this plan.
  std::vector<FaultSpec> resolved_specs() const;

 private:
  FaultInjector() = default;

  mutable std::mutex mutex_;
  std::atomic<bool> armed_{false};
  std::vector<FaultSpec> specs_;
  std::map<std::string, std::uint64_t> calls_;
  std::vector<FaultHit> fired_;
};

/// RAII plan installation for tests: arms on construction, disarms on
/// scope exit so no plan leaks into the next test.
class ScopedFaultPlan {
 public:
  explicit ScopedFaultPlan(const FaultPlan& plan) {
    FaultInjector::instance().arm(plan);
  }
  explicit ScopedFaultPlan(const std::string& text) {
    FaultInjector::instance().arm(FaultPlan::parse(text));
  }
  ~ScopedFaultPlan() { FaultInjector::instance().disarm(); }

  ScopedFaultPlan(const ScopedFaultPlan&) = delete;
  ScopedFaultPlan& operator=(const ScopedFaultPlan&) = delete;
};

}  // namespace cqs::runtime
