// Compressed block cache (Section 3.4, Figure 4). Each cache line maps
// (gate op, compressed input block(s)) -> compressed output block(s), so a
// hit skips decompression, computation, and recompression entirely.
// Replacement is least-recently-used over a fixed number of lines (the
// paper uses 64 per rank). The cache disables itself when it has seen many
// misses and no hit (paper: "disable the compressed block cache if the
// cache hit rate is always zero").
#pragma once

#include <cstdint>
#include <list>
#include <mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/bytes.hpp"

namespace cqs::runtime {

struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  bool disabled = false;

  double hit_rate() const {
    const std::uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) /
                                  static_cast<double>(total);
  }
};

class BlockCache {
 public:
  /// `lines`: cache capacity; `disable_after_misses`: consecutive-miss
  /// count with zero hits after which lookups short-circuit.
  explicit BlockCache(std::size_t lines = 64,
                      std::uint64_t disable_after_misses = 4096);

  /// Key for (OP, CB1, CB2): hash of the op descriptor and input payloads,
  /// plus each input's codec id — byte-identical payloads produced by
  /// different codecs decode to different blocks, so the id must join the
  /// identity. `map_generation` is the simulator's qubit-map version
  /// counter: ops are cached in physical coordinates, and folding the
  /// generation in keeps every cached block a pure function of its inputs
  /// even across relabels that reuse a physical gate descriptor (0 = the
  /// identity layout, which never changes).
  static std::uint64_t make_key(ByteSpan op_descriptor, ByteSpan cb1,
                                ByteSpan cb2, std::uint8_t cb1_codec = 0,
                                std::uint8_t cb2_codec = 0,
                                std::uint64_t map_generation = 0);

  /// Key for (RUN, CB1): a gate run is a first-class cache identity — the
  /// hash covers the descriptor count and each per-gate descriptor with
  /// its length, so ({"ab","c"}, ...) and ({"a","bc"}, ...) never collide,
  /// plus the single input block a block-local run reads and its codec id,
  /// plus the qubit-map generation (see make_key).
  static std::uint64_t make_run_key(std::span<const Bytes> op_descriptors,
                                    ByteSpan cb1, std::uint8_t cb1_codec = 0,
                                    std::uint64_t map_generation = 0);

  /// On hit, copies the cached output blocks into `out1` / `out2` (out2
  /// untouched for single-block entries), reports which codec produced
  /// each output via the optional id pointers, and returns true.
  bool lookup(std::uint64_t key, Bytes& out1, Bytes& out2,
              std::uint8_t* codec1 = nullptr, std::uint8_t* codec2 = nullptr);

  /// Inserts outputs for `key`, evicting the LRU line if full. The codec
  /// ids record which codec produced each output payload so a later hit
  /// can restore the block's BlockMeta exactly.
  void insert(std::uint64_t key, const Bytes& out1, const Bytes& out2,
              std::uint8_t codec1 = 0, std::uint8_t codec2 = 0);

  CacheStats stats() const;
  bool enabled() const;

 private:
  struct Line {
    std::uint64_t key;
    Bytes out1;
    Bytes out2;
    std::uint8_t codec1 = 0;
    std::uint8_t codec2 = 0;
  };

  void maybe_disable_locked();

  mutable std::mutex mutex_;
  std::size_t capacity_;
  std::uint64_t disable_after_misses_;
  std::list<Line> lru_;  // front = most recently used
  std::unordered_map<std::uint64_t, std::list<Line>::iterator> index_;
  CacheStats stats_;
};

}  // namespace cqs::runtime
