// BlockStore: the compressed state vector of one logical rank — a vector
// of independently compressed blocks plus the codec/bound metadata needed
// to decompress each one.
#pragma once

#include <cstdint>
#include <vector>

#include "common/bytes.hpp"
#include "compression/compressor.hpp"

namespace cqs::runtime {

/// Which codec/bound a block was last compressed with. `level` indexes the
/// simulator's error ladder the pass ran at: 0 = lossless, k > 0 =
/// ladder[k-1]. `codec` is the compression::codec_id of the codec that
/// actually produced the payload — under the adaptive policy a block can
/// be stored lossless (codec 0) even at a lossy ladder level, and the
/// decompressor is always selected by `codec`, never by `level`.
struct BlockMeta {
  std::uint8_t level = 0;
  std::uint8_t codec = 0;
};

class BlockStore {
 public:
  BlockStore() = default;
  BlockStore(int num_blocks) : blocks_(num_blocks), meta_(num_blocks) {}

  int num_blocks() const { return static_cast<int>(blocks_.size()); }

  const Bytes& block(int index) const { return blocks_[index]; }
  const BlockMeta& meta(int index) const { return meta_[index]; }

  /// Replaces a block's payload; keeps total-size accounting current.
  void set_block(int index, Bytes payload, BlockMeta meta);

  /// Total compressed bytes across all blocks (the sum term of Eq. 8).
  std::size_t total_bytes() const { return total_bytes_; }

 private:
  std::vector<Bytes> blocks_;
  std::vector<BlockMeta> meta_;
  std::size_t total_bytes_ = 0;
};

}  // namespace cqs::runtime
