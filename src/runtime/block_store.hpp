// BlockStore: the compressed state vector of one logical rank — a set of
// independently compressed blocks plus the codec/bound metadata needed to
// decompress each one.
//
// Blocks live in one of two tiers. A *resident* block holds its payload in
// memory (a shared immutable Bytes, so an async spill writer can keep the
// payload alive past a concurrent rewrite). A *spilled* block's payload
// lives in a SpillFile segment and is read back as a zero-copy mmap view.
// Tier moves are byte-preserving by construction — the payload is opaque
// either way — which is what lets the golden layers pin spill-on ==
// spill-off at tolerance 0.
//
// Concurrency contract (matching the simulator's sweep discipline): within
// one parallel region, a given block index is touched by exactly one
// worker; cross-block state (the byte totals, the shared TierStats) is the
// only contended data and is updated through atomics. Tier transitions are
// performed either by the block's owning worker (streaming spill after the
// block is finished) or by the main thread between regions (write-behind
// commit), never concurrently with a reader of the same block.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/bytes.hpp"
#include "compression/compressor.hpp"
#include "runtime/spill_file.hpp"

namespace cqs::runtime {

/// Which codec/bound a block was last compressed with. `level` indexes the
/// simulator's error ladder the pass ran at: 0 = lossless, k > 0 =
/// ladder[k-1]. `codec` is the compression::codec_id of the codec that
/// actually produced the payload — under the adaptive policy a block can
/// be stored lossless (codec 0) even at a lossy ladder level, and the
/// decompressor is always selected by `codec`, never by `level`.
struct BlockMeta {
  std::uint8_t level = 0;
  std::uint8_t codec = 0;
};

/// Shared two-tier accounting, one instance per simulator, attached to
/// every rank's BlockStore. Byte counters move at every block mutation —
/// set, spill commit, fault — so the peaks bound actual occupancy at
/// mutation granularity rather than being sampled at gate boundaries.
/// spill/fault counts are deterministic across worker counts (the set of
/// mutations is schedule-independent); readahead_hits depends on timing
/// when several workers race an advise against a read, so it is
/// report-only, never part of determinism pins.
struct TierStats {
  std::atomic<std::size_t> resident_bytes{0};
  std::atomic<std::size_t> spilled_bytes{0};
  std::atomic<std::size_t> peak_resident_bytes{0};
  std::atomic<std::size_t> peak_total_bytes{0};
  std::atomic<std::uint64_t> spill_events{0};
  std::atomic<std::uint64_t> fault_events{0};
  std::atomic<std::uint64_t> readahead_issued{0};
  std::atomic<std::uint64_t> readahead_hits{0};

  /// Applies a byte movement and refreshes both peaks (relaxed fetch-max).
  void note_delta(std::ptrdiff_t resident_delta, std::ptrdiff_t spilled_delta);

  /// Zeroes everything (checkpoint restore replaces the whole state).
  void reset();
};

class BlockStore {
 public:
  BlockStore() = default;
  explicit BlockStore(int num_blocks)
      : slots_(static_cast<std::size_t>(num_blocks)),
        meta_(static_cast<std::size_t>(num_blocks)) {}

  // Payload handles are shared and spill segments are uniquely owned, so
  // stores move but never copy (a copy would double-free its segments).
  BlockStore(BlockStore&& other) noexcept;
  BlockStore& operator=(BlockStore&& other) noexcept;
  BlockStore(const BlockStore&) = delete;
  BlockStore& operator=(const BlockStore&) = delete;
  ~BlockStore();

  /// Connects the store to the shared accounting and (optionally) the
  /// spill backend, folding any bytes it already holds into `stats`.
  /// `spill` may be null (accounting-only attachment, the spill-off path).
  void attach(TierStats* stats, SpillFile* spill);

  int num_blocks() const { return static_cast<int>(slots_.size()); }

  const BlockMeta& meta(int index) const {
    return meta_[static_cast<std::size_t>(index)];
  }

  /// The payload of a *resident* block. Throws std::logic_error for a
  /// spilled block — callers that may see either tier use payload_view.
  const Bytes& block(int index) const;

  /// The payload bytes of a block in either tier: a span over the resident
  /// Bytes, or a zero-copy view into the spill file (counted as a fault
  /// event; a readahead hit too when the block was advised first). The
  /// view is valid until the block is next written or spilled.
  ByteSpan payload_view(int index) const;

  /// Like payload_view, but touches no accounting: no fault event, no
  /// readahead-hit consumption, the advised flag stays armed. For
  /// serialization paths (checkpoint save) whose reads are bookkeeping,
  /// not simulation faults, and must not skew the report's telemetry.
  ByteSpan raw_view(int index) const;

  std::size_t block_size(int index) const;
  bool is_spilled(int index) const {
    const Slot& slot = slots_[static_cast<std::size_t>(index)];
    return std::atomic_ref(const_cast<std::uint8_t&>(slot.spilled))
               .load(std::memory_order_relaxed) != 0;
  }

  /// Replaces a block's payload, making it resident (a spilled block's
  /// segment is freed). Keeps tier accounting current. Safe to call
  /// concurrently for distinct indices.
  void set_block(int index, Bytes payload, BlockMeta meta);

  /// Synchronously moves a resident block to the spill tier (write +
  /// commit). No-op when already spilled. Throws SpillError on write
  /// failure, leaving the block resident. Requires an attached SpillFile.
  void spill_block(int index);

  // --- Async write-behind support (enqueue on the main thread, write on
  // --- a pool worker, commit on the main thread at the next settle) ---

  /// The shared payload handle + generation an async spill job captures.
  std::shared_ptr<const Bytes> payload_handle(int index) const {
    return slots_[static_cast<std::size_t>(index)].payload;
  }
  std::uint64_t generation(int index) const {
    return slots_[static_cast<std::size_t>(index)].generation;
  }

  /// Commits a completed async spill write: if the block is still resident
  /// and untouched since `generation` was read, it transitions to the
  /// spilled tier and the call returns true; otherwise the write is stale,
  /// `segment` is freed, and the block is left alone.
  bool commit_spill(int index, const SpillSegment& segment,
                    std::uint64_t generation);

  /// Readahead: asks the kernel to page a spilled block in ahead of its
  /// use and arms the hit detector. No-op for resident blocks.
  void advise(int index) const;

  /// Total compressed bytes across both tiers (the sum term of Eq. 8).
  std::size_t total_bytes() const {
    return resident_bytes() + spilled_bytes();
  }
  std::size_t resident_bytes() const {
    return std::atomic_ref(const_cast<std::size_t&>(resident_bytes_))
        .load(std::memory_order_relaxed);
  }
  std::size_t spilled_bytes() const {
    return std::atomic_ref(const_cast<std::size_t&>(spilled_bytes_))
        .load(std::memory_order_relaxed);
  }

 private:
  struct Slot {
    /// Non-null iff resident. Shared so in-flight spill writes survive a
    /// concurrent rewrite of the slot.
    std::shared_ptr<const Bytes> payload;
    /// Tier state (`spilled` + `segment`) is written only by the block's
    /// owning worker or the main thread between regions, but advise() may
    /// read it from *any* worker while a readahead window overlaps a
    /// sweep — so every write, and advise's reads, go through relaxed
    /// atomic_ref. A racing advise can see a mid-transition snapshot; the
    /// worst case is a WILLNEED hint over a stale range, which is
    /// harmless by madvise semantics.
    SpillSegment segment{};      ///< valid iff spilled
    std::uint8_t spilled = 0;
    /// Bumped by every set_block; read at enqueue and compared at commit.
    /// Plain (not atomic): writes and the enqueue/commit reads are
    /// separated by the parallel-region barriers.
    std::uint64_t generation = 0;
    /// Armed by advise(), disarmed by the first spilled read (the hit) or
    /// the next write. Crossed between threads, hence accessed through
    /// atomic_ref; mutable because reads account through it.
    mutable std::uint8_t advised = 0;
  };

  void account(std::ptrdiff_t resident_delta, std::ptrdiff_t spilled_delta);
  void release_segments();

  std::vector<Slot> slots_;
  std::vector<BlockMeta> meta_;
  /// Plain words updated through atomic_ref: distinct blocks are written
  /// concurrently by worker threads, and atomic members would cost the
  /// store its movability.
  std::size_t resident_bytes_ = 0;
  std::size_t spilled_bytes_ = 0;
  TierStats* stats_ = nullptr;
  SpillFile* spill_ = nullptr;
};

}  // namespace cqs::runtime
