#include "runtime/checkpoint.hpp"

#include <cstring>
#include <fstream>
#include <stdexcept>

#include "common/bytes.hpp"
#include "compression/compressor.hpp"

namespace cqs::runtime {
namespace {

// The trailing magic byte is the format version; the reader accepts all
// of them. v2 appended the lossy-pass count after the fidelity bound; v3
// appends a codec id to every block's meta (adaptive per-block codecs);
// v4 appends the serialized logical->physical qubit map after the codec
// name (qubit remapping).
constexpr char kMagicV1[8] = {'C', 'Q', 'S', 'C', 'K', 'P', 'T', '1'};
constexpr char kMagicV2[8] = {'C', 'Q', 'S', 'C', 'K', 'P', 'T', '2'};
constexpr char kMagicV3[8] = {'C', 'Q', 'S', 'C', 'K', 'P', 'T', '3'};
constexpr char kMagicV4[8] = {'C', 'Q', 'S', 'C', 'K', 'P', 'T', '4'};

}  // namespace

void save_checkpoint(const std::string& path, const CheckpointHeader& header,
                     const std::vector<BlockStore>& ranks) {
  Bytes buffer;
  buffer.insert(buffer.end(),
                reinterpret_cast<const std::byte*>(kMagicV4),
                reinterpret_cast<const std::byte*>(kMagicV4) + 8);
  put_varint(buffer, header.num_qubits);
  put_varint(buffer, header.num_ranks);
  put_varint(buffer, header.blocks_per_rank);
  put_varint(buffer, header.ladder_level);
  put_varint(buffer, header.next_gate_index);
  put_scalar(buffer, header.fidelity_bound);
  put_varint(buffer, header.lossy_passes);
  put_varint(buffer, header.codec_name.size());
  for (char ch : header.codec_name) {
    buffer.push_back(static_cast<std::byte>(ch));
  }
  // An empty map serializes as a zero count, which the loader reads as
  // "identity layout" — same meaning pre-v4 files carry implicitly.
  header.qubit_map.serialize(buffer);
  put_varint(buffer, ranks.size());
  for (const BlockStore& store : ranks) {
    put_varint(buffer, store.num_blocks());
    for (int b = 0; b < store.num_blocks(); ++b) {
      buffer.push_back(static_cast<std::byte>(store.meta(b).level));
      buffer.push_back(static_cast<std::byte>(store.meta(b).codec));
      put_varint(buffer, store.block(b).size());
      buffer.insert(buffer.end(), store.block(b).begin(),
                    store.block(b).end());
    }
  }

  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("checkpoint: cannot open " + path);
  out.write(reinterpret_cast<const char*>(buffer.data()),
            static_cast<std::streamsize>(buffer.size()));
  if (!out) throw std::runtime_error("checkpoint: write failed " + path);
}

std::pair<CheckpointHeader, std::vector<BlockStore>> load_checkpoint(
    const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) throw std::runtime_error("checkpoint: cannot open " + path);
  const auto size = static_cast<std::size_t>(in.tellg());
  in.seekg(0);
  Bytes buffer(size);
  in.read(reinterpret_cast<char*>(buffer.data()),
          static_cast<std::streamsize>(size));
  if (!in) throw std::runtime_error("checkpoint: read failed " + path);

  const bool v1 = size >= 8 && std::memcmp(buffer.data(), kMagicV1, 8) == 0;
  const bool v2 = size >= 8 && std::memcmp(buffer.data(), kMagicV2, 8) == 0;
  const bool v3 = size >= 8 && std::memcmp(buffer.data(), kMagicV3, 8) == 0;
  const bool v4 = size >= 8 && std::memcmp(buffer.data(), kMagicV4, 8) == 0;
  if (!v1 && !v2 && !v3 && !v4) {
    throw std::runtime_error("checkpoint: bad magic");
  }
  std::size_t offset = 8;
  CheckpointHeader header;
  header.num_qubits = static_cast<int>(get_varint(buffer, offset));
  header.num_ranks = static_cast<int>(get_varint(buffer, offset));
  header.blocks_per_rank = static_cast<int>(get_varint(buffer, offset));
  header.ladder_level =
      static_cast<std::uint32_t>(get_varint(buffer, offset));
  header.next_gate_index = get_varint(buffer, offset);
  header.fidelity_bound = get_scalar<double>(buffer, offset);
  // v1 never persisted the pass count; the closest reconstruction is one
  // synthetic pass whenever any lossy history exists.
  header.lossy_passes = v1 ? (header.fidelity_bound < 1.0 ? 1u : 0u)
                           : get_varint(buffer, offset);
  const std::uint64_t name_len = get_varint(buffer, offset);
  if (offset + name_len > buffer.size()) {
    throw std::runtime_error("checkpoint: truncated codec name");
  }
  header.codec_name.assign(
      reinterpret_cast<const char*>(buffer.data()) + offset, name_len);
  offset += name_len;
  if (v4) {
    // Rejects non-permutation tables (corruption) with runtime_error.
    header.qubit_map = QubitMap::deserialize(buffer, offset);
  }

  // Pre-v3 blocks never stored a codec id; level 0 was by construction
  // the lossless zx stage and every lossy level used the header codec.
  const std::uint8_t legacy_lossy_codec =
      (v3 || v4) ? 0 : compression::codec_id(header.codec_name);

  const std::uint64_t rank_count = get_varint(buffer, offset);
  std::vector<BlockStore> ranks;
  ranks.reserve(rank_count);
  for (std::uint64_t r = 0; r < rank_count; ++r) {
    const auto block_count = static_cast<int>(get_varint(buffer, offset));
    BlockStore store(block_count);
    for (int b = 0; b < block_count; ++b) {
      const bool has_codec_byte = v3 || v4;
      if (offset + (has_codec_byte ? 1u : 0u) >= buffer.size()) {
        throw std::runtime_error("checkpoint: truncated block meta");
      }
      BlockMeta meta{static_cast<std::uint8_t>(buffer[offset++])};
      meta.codec = has_codec_byte
                       ? static_cast<std::uint8_t>(buffer[offset++])
                       : (meta.level == 0 ? compression::kLosslessCodecId
                                          : legacy_lossy_codec);
      const std::uint64_t block_size = get_varint(buffer, offset);
      if (offset + block_size > buffer.size()) {
        throw std::runtime_error("checkpoint: truncated block payload");
      }
      Bytes payload(buffer.begin() + static_cast<std::ptrdiff_t>(offset),
                    buffer.begin() +
                        static_cast<std::ptrdiff_t>(offset + block_size));
      offset += block_size;
      store.set_block(b, std::move(payload), meta);
    }
    ranks.push_back(std::move(store));
  }
  return {header, std::move(ranks)};
}

}  // namespace cqs::runtime
