#include "runtime/checkpoint.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <limits>
#include <stdexcept>

#include "common/bytes.hpp"
#include "compression/compressor.hpp"
#include "runtime/fault_injection.hpp"

namespace cqs::runtime {
namespace {

// The trailing magic byte is the format version; the reader accepts all
// of them. v2 appended the lossy-pass count after the fidelity bound; v3
// appends a codec id to every block's meta (adaptive per-block codecs);
// v4 appends the serialized logical->physical qubit map after the codec
// name (qubit remapping); v5 appends a tier byte to every block's meta
// (out-of-core spilling); v6 is layout-identical to v5 and only flags
// that some block uses a codec id beyond the v5-era registry, so old
// readers fail on the magic instead of misdecoding the payload.
constexpr char kMagicV1[8] = {'C', 'Q', 'S', 'C', 'K', 'P', 'T', '1'};
constexpr char kMagicV2[8] = {'C', 'Q', 'S', 'C', 'K', 'P', 'T', '2'};
constexpr char kMagicV3[8] = {'C', 'Q', 'S', 'C', 'K', 'P', 'T', '3'};
constexpr char kMagicV4[8] = {'C', 'Q', 'S', 'C', 'K', 'P', 'T', '4'};
constexpr char kMagicV5[8] = {'C', 'Q', 'S', 'C', 'K', 'P', 'T', '5'};
constexpr char kMagicV6[8] = {'C', 'Q', 'S', 'C', 'K', 'P', 'T', '6'};

// Highest codec id the registry held while v5 was current ("fpzip").
// Later appends (zfp-rans onward) force the v6 magic on save and are
// corruption when claimed by a v<=5 image.
constexpr std::uint8_t kMaxCodecIdV5 = 6;

std::atomic<std::uint64_t> g_write_limit{
    std::numeric_limits<std::uint64_t>::max()};

/// Writes `buffer` to `path` via a same-directory temporary + fsync +
/// atomic rename, so the previous file at `path` survives any failure
/// (including a crash) up to the rename. The injected write limit cuts
/// the stream short mid-image, standing in for the crash.
void write_file_atomically(const std::string& path, const Bytes& buffer) {
  const std::string tmp = path + ".tmp";
  const int fd =
      ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) {
    throw std::runtime_error("checkpoint: cannot open " + tmp + ": " +
                             std::strerror(errno));
  }
  auto fail = [&](const std::string& message) {
    ::close(fd);
    std::remove(tmp.c_str());
    throw std::runtime_error(message);
  };

  std::size_t written = 0;
  while (written < buffer.size()) {
    std::size_t chunk = std::min<std::size_t>(buffer.size() - written,
                                              std::size_t{1} << 20);
    const std::uint64_t limit = g_write_limit.load(std::memory_order_relaxed);
    if (limit != std::numeric_limits<std::uint64_t>::max()) {
      std::uint64_t budget = limit;
      while (true) {
        const std::uint64_t grant = std::min<std::uint64_t>(budget, chunk);
        if (g_write_limit.compare_exchange_weak(budget, budget - grant,
                                                std::memory_order_relaxed)) {
          if (grant < chunk) {
            // Write the partial tail first so the aborted temporary looks
            // exactly like a mid-save crash artifact.
            if (grant > 0) {
              [[maybe_unused]] const ssize_t n = ::write(
                  fd, buffer.data() + written, static_cast<std::size_t>(grant));
            }
            fail("checkpoint: write failed (injected) " + tmp);
          }
          break;
        }
      }
    }
    const ssize_t n = ::write(fd, buffer.data() + written, chunk);
    if (n < 0) {
      if (errno == EINTR) continue;
      fail("checkpoint: write failed " + tmp + ": " + std::strerror(errno));
    }
    written += static_cast<std::size_t>(n);
  }
  // The data must be durable *before* the rename publishes it; otherwise
  // a crash after the rename could leave a torn file under the good name.
  if (::fsync(fd) != 0) {
    fail("checkpoint: fsync failed " + tmp + ": " + std::strerror(errno));
  }
  if (::close(fd) != 0) {
    std::remove(tmp.c_str());
    throw std::runtime_error("checkpoint: close failed " + tmp + ": " +
                             std::strerror(errno));
  }
  // Scripted crash at the publish step: the durable temp image exists but
  // the rename never happens, so the previous checkpoint must survive.
  if (FaultInjector::instance().on_call(fault_sites::kCheckpointRename)) {
    std::remove(tmp.c_str());
    throw std::runtime_error("checkpoint: rename to " + path +
                             " failed (injected fault before publish)");
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    const int err = errno;
    std::remove(tmp.c_str());
    throw std::runtime_error("checkpoint: rename to " + path + " failed: " +
                             std::strerror(err));
  }
  // The rename is only durable once the directory entry is: fsync the
  // containing directory, or a crash right after a "successful" return
  // could still surface the old file. (The previous-file-survives
  // guarantee holds either way; this pins the publish itself.)
  const std::size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? "."
                              : (slash == 0 ? "/" : path.substr(0, slash));
  const int dir_fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (dir_fd < 0) {
    throw std::runtime_error("checkpoint: cannot open directory " + dir +
                             ": " + std::strerror(errno));
  }
  if (::fsync(dir_fd) != 0) {
    const int err = errno;
    ::close(dir_fd);
    throw std::runtime_error("checkpoint: fsync of directory " + dir +
                             " failed: " + std::strerror(err));
  }
  ::close(dir_fd);
}

}  // namespace

namespace testing {
void set_checkpoint_write_limit(std::uint64_t bytes) {
  g_write_limit.store(bytes, std::memory_order_relaxed);
}
}  // namespace testing

void save_checkpoint(const std::string& path, const CheckpointHeader& header,
                     const std::vector<BlockStore>& ranks) {
  // v6 only when required: images old readers could decode keep the v5
  // magic byte-for-byte.
  bool needs_v6 = false;
  for (const BlockStore& store : ranks) {
    for (int b = 0; b < store.num_blocks(); ++b) {
      if (store.meta(b).codec > kMaxCodecIdV5) needs_v6 = true;
    }
  }
  const char* magic = needs_v6 ? kMagicV6 : kMagicV5;
  Bytes buffer;
  buffer.insert(buffer.end(),
                reinterpret_cast<const std::byte*>(magic),
                reinterpret_cast<const std::byte*>(magic) + 8);
  put_varint(buffer, header.num_qubits);
  put_varint(buffer, header.num_ranks);
  put_varint(buffer, header.blocks_per_rank);
  put_varint(buffer, header.ladder_level);
  put_varint(buffer, header.next_gate_index);
  put_scalar(buffer, header.fidelity_bound);
  put_varint(buffer, header.lossy_passes);
  put_varint(buffer, header.codec_name.size());
  for (char ch : header.codec_name) {
    buffer.push_back(static_cast<std::byte>(ch));
  }
  // An empty map serializes as a zero count, which the loader reads as
  // "identity layout" — same meaning pre-v4 files carry implicitly.
  header.qubit_map.serialize(buffer);
  put_varint(buffer, ranks.size());
  for (const BlockStore& store : ranks) {
    put_varint(buffer, store.num_blocks());
    for (int b = 0; b < store.num_blocks(); ++b) {
      buffer.push_back(static_cast<std::byte>(store.meta(b).level));
      buffer.push_back(static_cast<std::byte>(store.meta(b).codec));
      buffer.push_back(
          static_cast<std::byte>(store.is_spilled(b) ? 1 : 0));
      // raw_view reads either tier — a spilled block streams straight
      // from the spill mapping into the image without re-materializing —
      // and bypasses the fault/readahead accounting, so a save never
      // skews the report's spill telemetry.
      const ByteSpan payload = store.raw_view(b);
      put_varint(buffer, payload.size());
      buffer.insert(buffer.end(), payload.begin(), payload.end());
    }
  }
  write_file_atomically(path, buffer);
}

LoadedCheckpoint load_checkpoint_full(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) throw std::runtime_error("checkpoint: cannot open " + path);
  const auto size = static_cast<std::size_t>(in.tellg());
  in.seekg(0);
  Bytes buffer(size);
  in.read(reinterpret_cast<char*>(buffer.data()),
          static_cast<std::streamsize>(size));
  if (!in) throw std::runtime_error("checkpoint: read failed " + path);

  const bool v1 = size >= 8 && std::memcmp(buffer.data(), kMagicV1, 8) == 0;
  const bool v2 = size >= 8 && std::memcmp(buffer.data(), kMagicV2, 8) == 0;
  const bool v3 = size >= 8 && std::memcmp(buffer.data(), kMagicV3, 8) == 0;
  const bool v4 = size >= 8 && std::memcmp(buffer.data(), kMagicV4, 8) == 0;
  const bool v5 = size >= 8 && std::memcmp(buffer.data(), kMagicV5, 8) == 0;
  const bool v6 = size >= 8 && std::memcmp(buffer.data(), kMagicV6, 8) == 0;
  if (!v1 && !v2 && !v3 && !v4 && !v5 && !v6) {
    throw std::runtime_error("checkpoint: bad magic");
  }
  std::size_t offset = 8;
  LoadedCheckpoint loaded;
  CheckpointHeader& header = loaded.header;
  header.num_qubits = static_cast<int>(get_varint(buffer, offset));
  header.num_ranks = static_cast<int>(get_varint(buffer, offset));
  header.blocks_per_rank = static_cast<int>(get_varint(buffer, offset));
  header.ladder_level =
      static_cast<std::uint32_t>(get_varint(buffer, offset));
  header.next_gate_index = get_varint(buffer, offset);
  header.fidelity_bound = get_scalar<double>(buffer, offset);
  // v1 never persisted the pass count; the closest reconstruction is one
  // synthetic pass whenever any lossy history exists.
  header.lossy_passes = v1 ? (header.fidelity_bound < 1.0 ? 1u : 0u)
                           : get_varint(buffer, offset);
  // Subtraction form: `offset + len` could wrap for a corrupt varint near
  // UINT64_MAX, turning a truncation into a huge out-of-bounds read.
  // get_varint guarantees offset <= buffer.size() on return.
  const std::uint64_t name_len = get_varint(buffer, offset);
  if (name_len > buffer.size() - offset) {
    throw std::runtime_error("checkpoint: truncated codec name");
  }
  header.codec_name.assign(
      reinterpret_cast<const char*>(buffer.data()) + offset, name_len);
  offset += name_len;
  if (v4 || v5 || v6) {
    // Rejects non-permutation tables (corruption) with runtime_error.
    header.qubit_map = QubitMap::deserialize(buffer, offset);
  }

  // Pre-v3 blocks never stored a codec id; level 0 was by construction
  // the lossless zx stage and every lossy level used the header codec.
  const std::uint8_t legacy_lossy_codec =
      (v3 || v4 || v5 || v6) ? 0 : compression::codec_id(header.codec_name);

  // Codec-id ceiling for this image's vintage: a v<=5 image predates every
  // id past kMaxCodecIdV5, so a larger id is corruption, not a codec this
  // build merely lacks; a v6 id must exist in the running registry.
  const std::uint8_t max_codec_id =
      v6 ? static_cast<std::uint8_t>(compression::compressor_names().size() -
                                     1)
         : kMaxCodecIdV5;

  const std::uint64_t rank_count = get_varint(buffer, offset);
  loaded.ranks.reserve(rank_count);
  loaded.spilled.reserve(rank_count);
  for (std::uint64_t r = 0; r < rank_count; ++r) {
    const auto block_count = static_cast<int>(get_varint(buffer, offset));
    BlockStore store(block_count);
    std::vector<std::uint8_t> tiers(static_cast<std::size_t>(block_count), 0);
    for (int b = 0; b < block_count; ++b) {
      const bool has_codec_byte = v3 || v4 || v5 || v6;
      const bool has_tier_byte = v5 || v6;
      const std::size_t meta_bytes =
          1u + (has_codec_byte ? 1u : 0u) + (has_tier_byte ? 1u : 0u);
      if (offset + meta_bytes > buffer.size()) {
        throw std::runtime_error("checkpoint: truncated block meta");
      }
      BlockMeta meta{static_cast<std::uint8_t>(buffer[offset++])};
      meta.codec = has_codec_byte
                       ? static_cast<std::uint8_t>(buffer[offset++])
                       : (meta.level == 0 ? compression::kLosslessCodecId
                                          : legacy_lossy_codec);
      if (meta.codec > max_codec_id) {
        throw std::runtime_error(
            "checkpoint: block codec id " + std::to_string(meta.codec) +
            (v6 ? " is not in this build's registry"
                : " is not valid in a v<=5 image (corrupt meta)"));
      }
      if (has_tier_byte) {
        tiers[static_cast<std::size_t>(b)] =
            static_cast<std::uint8_t>(buffer[offset++]) != 0 ? 1 : 0;
      }
      const std::uint64_t block_size = get_varint(buffer, offset);
      if (block_size > buffer.size() - offset) {  // overflow-safe bound
        throw std::runtime_error("checkpoint: truncated block payload");
      }
      Bytes payload(buffer.begin() + static_cast<std::ptrdiff_t>(offset),
                    buffer.begin() +
                        static_cast<std::ptrdiff_t>(offset + block_size));
      offset += block_size;
      store.set_block(b, std::move(payload), meta);
    }
    loaded.ranks.push_back(std::move(store));
    loaded.spilled.push_back(std::move(tiers));
  }
  return loaded;
}

std::pair<CheckpointHeader, std::vector<BlockStore>> load_checkpoint(
    const std::string& path) {
  LoadedCheckpoint loaded = load_checkpoint_full(path);
  return {std::move(loaded.header), std::move(loaded.ranks)};
}

}  // namespace cqs::runtime
