#include "runtime/qubit_map.hpp"

#include <numeric>
#include <stdexcept>
#include <utility>

namespace cqs::runtime {

QubitMap::QubitMap(int num_qubits) {
  if (num_qubits < 0) {
    throw std::invalid_argument("qubit map: negative qubit count");
  }
  physical_.resize(num_qubits);
  logical_.resize(num_qubits);
  std::iota(physical_.begin(), physical_.end(), 0);
  std::iota(logical_.begin(), logical_.end(), 0);
}

QubitMap QubitMap::from_physical(std::vector<int> physical_of_logical) {
  const int n = static_cast<int>(physical_of_logical.size());
  QubitMap map;
  map.physical_ = std::move(physical_of_logical);
  map.logical_.assign(n, -1);
  for (int l = 0; l < n; ++l) {
    const int p = map.physical_[l];
    if (p < 0 || p >= n || map.logical_[p] != -1) {
      throw std::invalid_argument(
          "qubit map: table is not a permutation of [0, n)");
    }
    map.logical_[p] = l;
  }
  return map;
}

bool QubitMap::is_identity() const {
  for (int l = 0; l < size(); ++l) {
    if (physical_[l] != l) return false;
  }
  return true;
}

void QubitMap::relabel(int logical_a, int logical_b) {
  std::swap(physical_[logical_a], physical_[logical_b]);
  logical_[physical_[logical_a]] = logical_a;
  logical_[physical_[logical_b]] = logical_b;
}

void QubitMap::swap_physical(int phys_a, int phys_b) {
  std::swap(logical_[phys_a], logical_[phys_b]);
  physical_[logical_[phys_a]] = phys_a;
  physical_[logical_[phys_b]] = phys_b;
}

QubitMap QubitMap::composed(const QubitMap& next) const {
  if (next.size() != size()) {
    throw std::invalid_argument("qubit map: compose size mismatch");
  }
  std::vector<int> table(physical_.size());
  for (int l = 0; l < size(); ++l) {
    table[l] = next.physical_[physical_[l]];
  }
  return from_physical(std::move(table));
}

QubitMap QubitMap::inverted() const {
  return from_physical(logical_);
}

std::uint64_t QubitMap::to_physical_index(std::uint64_t logical_index) const {
  std::uint64_t out = 0;
  for (int l = 0; l < size(); ++l) {
    out |= ((logical_index >> l) & 1u) << physical_[l];
  }
  return out;
}

std::uint64_t QubitMap::to_logical_index(std::uint64_t physical_index) const {
  std::uint64_t out = 0;
  for (int l = 0; l < size(); ++l) {
    out |= ((physical_index >> physical_[l]) & 1u) << l;
  }
  return out;
}

void QubitMap::serialize(Bytes& out) const {
  put_varint(out, static_cast<std::uint64_t>(size()));
  for (int p : physical_) put_varint(out, static_cast<std::uint64_t>(p));
}

QubitMap QubitMap::deserialize(ByteSpan in, std::size_t& offset) {
  const std::uint64_t n = get_varint(in, offset);
  // A map can never be wider than the 40-qubit partition ceiling; a huge
  // count here is corruption, not a big simulation.
  if (n > 64) {
    throw std::runtime_error("qubit map: implausible qubit count");
  }
  std::vector<int> table(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    const std::uint64_t entry = get_varint(in, offset);
    // Range-check before narrowing: a corrupt entry that wraps modulo
    // 2^32 to a small value must not masquerade as a valid position.
    if (entry >= n) {
      throw std::runtime_error(
          "qubit map: table is not a permutation of [0, n)");
    }
    table[i] = static_cast<int>(entry);
  }
  try {
    return from_physical(std::move(table));
  } catch (const std::invalid_argument& e) {
    throw std::runtime_error(e.what());  // corruption, not caller error
  }
}

}  // namespace cqs::runtime
