#include "runtime/spill_file.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "runtime/fault_injection.hpp"

namespace cqs::runtime {
namespace {

// Virtual address space reserved for the read mapping. The file may grow
// up to this size; 64-bit address space makes the reservation free, and
// PROT_READ + MAP_NORESERVE means no memory or swap is committed for it.
constexpr std::uint64_t kReservationBytes = std::uint64_t{1} << 36;  // 64 GiB

std::string errno_text(const std::string& prefix, int err) {
  return prefix + ": " + std::strerror(err);
}

}  // namespace

SpillFile::SpillFile(const std::string& path) : path_(path) {
  fd_ = ::open(path.c_str(), O_RDWR | O_CREAT | O_TRUNC | O_CLOEXEC, 0600);
  if (fd_ < 0) {
    throw SpillError(
        errno_text("spill: cannot create spill file '" + path + "'", errno),
        errno);
  }
  // Unlink immediately: the fd keeps the inode alive, the namespace entry
  // is gone, and the kernel reclaims the blocks when the process exits —
  // even on a crash. (Failure to unlink is not fatal; the file merely
  // stays visible.)
  ::unlink(path.c_str());

  reservation_ = kReservationBytes;
  void* map = ::mmap(nullptr, reservation_, PROT_READ,
                     MAP_SHARED | MAP_NORESERVE, fd_, 0);
  if (map == MAP_FAILED) {
    const int err = errno;
    ::close(fd_);
    fd_ = -1;
    throw SpillError(
        errno_text("spill: cannot map spill file '" + path + "'", err), err);
  }
  map_ = static_cast<std::byte*>(map);
}

SpillFile::~SpillFile() {
  if (map_ != nullptr) ::munmap(map_, reservation_);
  if (fd_ >= 0) ::close(fd_);
}

std::uint64_t SpillFile::allocate_locked(std::uint64_t size) {
  // First-fit over the coalesced, offset-sorted free list; splitting the
  // hole keeps the remainder in place. Falling through grows the file.
  for (std::size_t i = 0; i < free_.size(); ++i) {
    if (free_[i].size < size) continue;
    const std::uint64_t offset = free_[i].offset;
    free_[i].offset += size;
    free_[i].size -= size;
    if (free_[i].size == 0) {
      free_.erase(free_.begin() + static_cast<std::ptrdiff_t>(i));
    }
    return offset;
  }
  const std::uint64_t offset = end_;
  end_ += size;
  return offset;
}

SpillSegment SpillFile::write(ByteSpan payload) {
  if (payload.empty()) return {};
  SpillSegment segment;
  segment.size = payload.size();
  bool over_reservation = false;
  {
    std::lock_guard lock(mutex_);
    segment.offset = allocate_locked(segment.size);
    live_bytes_ += segment.size;
    ++live_segments_;
    over_reservation = segment.offset + segment.size > reservation_;
  }
  if (over_reservation) {
    free_segment(segment);
    throw SpillError("spill: file '" + path_ +
                     "' would exceed the mapped reservation");
  }

  // Injected disk-full: the scripted fault behaves exactly like a real
  // short write — the reserved segment goes back first, then the typed
  // error surfaces with the same errno a full disk would produce.
  if (auto hit = FaultInjector::instance().on_call(fault_sites::kSpillWrite)) {
    const int err = hit->action == "eio" ? EIO : ENOSPC;
    free_segment(segment);
    throw SpillError(errno_text("spill: write to '" + path_ +
                                    "' failed (injected " + hit->action + ")",
                                err),
                     err);
  }

  const std::byte* src = payload.data();
  std::uint64_t written = 0;
  while (written < segment.size) {
    const ssize_t n =
        ::pwrite(fd_, src + written, segment.size - written,
                 static_cast<off_t>(segment.offset + written));
    if (n < 0) {
      if (errno == EINTR) continue;
      const int err = errno;
      free_segment(segment);
      throw SpillError(
          errno_text("spill: write to '" + path_ + "' failed", err), err);
    }
    if (n == 0) {
      free_segment(segment);
      throw SpillError(
          errno_text("spill: write to '" + path_ + "' failed", ENOSPC),
          ENOSPC);
    }
    written += static_cast<std::uint64_t>(n);
  }
  return segment;
}

ByteSpan SpillFile::view(const SpillSegment& segment) const {
  if (segment.size == 0) return {};
  return {map_ + segment.offset, segment.size};
}

void SpillFile::free_segment(const SpillSegment& segment) {
  if (segment.size == 0) return;
  std::lock_guard lock(mutex_);
  live_bytes_ -= segment.size;
  --live_segments_;
  // Insert by offset, then coalesce with the previous and next holes so
  // the free list stays compact and future fits stay large.
  auto it = std::lower_bound(
      free_.begin(), free_.end(), segment.offset,
      [](const SpillSegment& s, std::uint64_t off) { return s.offset < off; });
  it = free_.insert(it, segment);
  if (it != free_.begin()) {
    auto prev = it - 1;
    if (prev->offset + prev->size == it->offset) {
      prev->size += it->size;
      it = free_.erase(it) - 1;
    }
  }
  if (it + 1 != free_.end() && it->offset + it->size == (it + 1)->offset) {
    it->size += (it + 1)->size;
    it = free_.erase(it + 1) - 1;
  }
  // A trailing hole at the high-water mark shrinks the file's logical end
  // so regrowth reuses it even after the list empties.
  if (it->offset + it->size == end_) {
    end_ = it->offset;
    free_.erase(it);
  }
}

void SpillFile::advise_willneed(const SpillSegment& segment) const {
  if (segment.size == 0) return;
  static const auto page = static_cast<std::uint64_t>(::sysconf(_SC_PAGESIZE));
  const std::uint64_t begin = segment.offset & ~(page - 1);
  const std::uint64_t end = segment.offset + segment.size;
  ::madvise(map_ + begin, end - begin, MADV_WILLNEED);  // best-effort
}

std::uint64_t SpillFile::file_bytes() const {
  std::lock_guard lock(mutex_);
  return end_;
}

std::uint64_t SpillFile::live_bytes() const {
  std::lock_guard lock(mutex_);
  return live_bytes_;
}

std::uint64_t SpillFile::live_segments() const {
  std::lock_guard lock(mutex_);
  return live_segments_;
}

}  // namespace cqs::runtime
