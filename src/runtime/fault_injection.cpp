#include "runtime/fault_injection.hpp"

#include <algorithm>
#include <cctype>

#include "common/bytes.hpp"

namespace cqs::runtime {
namespace {

const char* const kKnownActions[] = {"fail",    "enospc", "eio",    "die",
                                     "corrupt", "stall",  "timeout"};

bool known_action(const std::string& action) {
  return std::find(std::begin(kKnownActions), std::end(kKnownActions),
                   action) != std::end(kKnownActions);
}

std::string trimmed(const std::string& text) {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

/// Parses a full decimal u64; `what` names the field in errors.
std::uint64_t parse_u64(const std::string& text, const std::string& what) {
  if (text.empty()) {
    throw std::invalid_argument("fault plan: empty " + what);
  }
  std::uint64_t value = 0;
  for (char ch : text) {
    if (ch < '0' || ch > '9') {
      throw std::invalid_argument("fault plan: bad " + what + " '" + text +
                                  "'");
    }
    value = value * 10 + static_cast<std::uint64_t>(ch - '0');
  }
  return value;
}

/// One "site@trigger[:action[=aux]]" entry.
FaultSpec parse_entry(const std::string& entry) {
  FaultSpec spec;
  const std::size_t at = entry.find('@');
  if (at == std::string::npos || at == 0) {
    throw std::invalid_argument("fault plan: entry '" + entry +
                                "' is not site@trigger[:action[=aux]]");
  }
  spec.site = entry.substr(0, at);
  std::string rest = entry.substr(at + 1);

  const std::size_t colon = rest.find(':');
  if (colon != std::string::npos) {
    std::string action = rest.substr(colon + 1);
    rest = rest.substr(0, colon);
    const std::size_t eq = action.find('=');
    if (eq != std::string::npos) {
      spec.aux = parse_u64(action.substr(eq + 1), "aux");
      action = action.substr(0, eq);
    }
    if (!known_action(action)) {
      throw std::invalid_argument("fault plan: unknown action '" + action +
                                  "' (expected fail, enospc, eio, die, "
                                  "corrupt, stall, or timeout)");
    }
    spec.action = action;
  }

  if (!rest.empty() && rest.front() == '~') {
    spec.nth = 0;
    spec.window = parse_u64(rest.substr(1), "seeded window");
    if (spec.window == 0) {
      throw std::invalid_argument(
          "fault plan: seeded window must be positive in '" + entry + "'");
    }
    return spec;
  }
  if (!rest.empty() && rest.back() == '+') {
    spec.count = 0;
    rest.pop_back();
  } else {
    const std::size_t x = rest.find('x');
    if (x != std::string::npos) {
      spec.count = parse_u64(rest.substr(x + 1), "repeat count");
      if (spec.count == 0) {
        throw std::invalid_argument(
            "fault plan: repeat count must be positive (use N+ for 'every "
            "call from N') in '" + entry + "'");
      }
      rest = rest.substr(0, x);
    }
  }
  spec.nth = parse_u64(rest, "call index");
  if (spec.nth == 0) {
    throw std::invalid_argument(
        "fault plan: call indices are 1-based; '" + entry + "' asks for 0");
  }
  return spec;
}

}  // namespace

FaultPlan FaultPlan::parse(const std::string& text) {
  FaultPlan plan;
  std::size_t begin = 0;
  while (begin <= text.size()) {
    std::size_t end = text.find_first_of(";,", begin);
    if (end == std::string::npos) end = text.size();
    const std::string entry = trimmed(text.substr(begin, end - begin));
    begin = end + 1;
    if (entry.empty()) continue;
    if (entry.rfind("seed=", 0) == 0) {
      plan.seed = parse_u64(entry.substr(5), "seed");
      continue;
    }
    plan.specs.push_back(parse_entry(entry));
  }
  if (plan.specs.empty()) {
    throw std::invalid_argument("fault plan: no fault entries in '" + text +
                                "'");
  }
  return plan;
}

FaultInjector& FaultInjector::instance() {
  static FaultInjector injector;
  return injector;
}

void FaultInjector::arm(const FaultPlan& plan) {
  std::lock_guard lock(mutex_);
  specs_.clear();
  calls_.clear();
  fired_.clear();
  for (std::size_t i = 0; i < plan.specs.size(); ++i) {
    FaultSpec spec = plan.specs[i];
    if (spec.site.empty()) {
      throw std::invalid_argument("fault plan: spec with empty site");
    }
    if (spec.nth == 0) {
      if (spec.window == 0) {
        throw std::invalid_argument(
            "fault plan: seeded spec needs a positive window");
      }
      // The trigger is a pure function of (seed, site, entry index) — no
      // runtime state — so the same plan fires at the same call on every
      // run and at every thread count.
      std::uint64_t h = fnv1a(
          ByteSpan(reinterpret_cast<const std::byte*>(spec.site.data()),
                   spec.site.size()),
          plan.seed);
      h = fnv1a_u64(static_cast<std::uint64_t>(i), h);
      spec.nth = 1 + h % spec.window;
    }
    specs_.push_back(std::move(spec));
  }
  armed_.store(!specs_.empty(), std::memory_order_release);
}

void FaultInjector::disarm() {
  armed_.store(false, std::memory_order_release);
}

bool FaultInjector::armed() const {
  return armed_.load(std::memory_order_acquire);
}

std::optional<FaultHit> FaultInjector::on_call(const std::string& site) {
  // Production fast path: disarmed costs one atomic load, no lock.
  if (!armed_.load(std::memory_order_acquire)) return std::nullopt;
  std::lock_guard lock(mutex_);
  const std::uint64_t call = ++calls_[site];
  for (const FaultSpec& spec : specs_) {
    if (spec.site != site) continue;
    if (call < spec.nth) continue;
    if (spec.count != 0 && call >= spec.nth + spec.count) continue;
    FaultHit hit{site, call, spec.action, spec.aux};
    fired_.push_back(hit);
    return hit;
  }
  return std::nullopt;
}

std::uint64_t FaultInjector::calls(const std::string& site) const {
  std::lock_guard lock(mutex_);
  const auto it = calls_.find(site);
  return it == calls_.end() ? 0 : it->second;
}

std::vector<FaultHit> FaultInjector::fired() const {
  std::lock_guard lock(mutex_);
  std::vector<FaultHit> sorted = fired_;
  std::sort(sorted.begin(), sorted.end(),
            [](const FaultHit& a, const FaultHit& b) {
              return a.site != b.site ? a.site < b.site : a.call < b.call;
            });
  return sorted;
}

std::vector<FaultSpec> FaultInjector::resolved_specs() const {
  std::lock_guard lock(mutex_);
  return specs_;
}

}  // namespace cqs::runtime
