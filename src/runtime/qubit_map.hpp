// Logical->physical qubit map (the Intel-QS trick applied to Section 3.3's
// partitioning). The simulator stores amplitudes in a *physical* bit
// layout; a QubitMap is the permutation that says where each logical
// qubit's index bit currently lives. Relabeling two qubits — swapping
// their physical homes — costs one map update instead of moving
// amplitudes, which turns most cross-rank gate traffic into bookkeeping:
// a hot rank-segment qubit is exchanged into the offset segment once and
// every later gate on it routes block-locally.
//
// The map is a permutation over [0, n): physical(l) is the physical bit
// of logical qubit l, logical(p) its inverse. Both directions are stored
// so queries are O(1); every mutation keeps them consistent.
#pragma once

#include <cstdint>
#include <vector>

#include "common/bytes.hpp"
#include "runtime/partition.hpp"

namespace cqs::runtime {

class QubitMap {
 public:
  /// Empty map (size 0). Stands for "identity over however many qubits" in
  /// contexts that carry the count elsewhere (pre-v4 checkpoints).
  QubitMap() = default;

  /// Identity over `num_qubits` qubits.
  explicit QubitMap(int num_qubits);

  static QubitMap identity(int num_qubits) { return QubitMap(num_qubits); }

  /// Builds a map from an explicit physical-of-logical table. Throws
  /// std::invalid_argument unless the table is a permutation of [0, n).
  static QubitMap from_physical(std::vector<int> physical_of_logical);

  int size() const { return static_cast<int>(physical_.size()); }
  bool empty() const { return physical_.empty(); }
  bool is_identity() const;

  int physical(int logical) const { return physical_[logical]; }
  int logical(int physical) const { return logical_[physical]; }
  const std::vector<int>& physical_table() const { return physical_; }

  /// Relabels the two *logical* qubits: their physical homes swap. This is
  /// the zero-cost SWAP gate — no amplitude moves.
  void relabel(int logical_a, int logical_b);

  /// Swaps the logical occupants of two *physical* positions — the map
  /// update that accompanies a physical amplitude exchange (RemapOp).
  void swap_physical(int phys_a, int phys_b);

  /// Composition: the map that results from applying `next` after this
  /// one, i.e. result.physical(l) == next.physical(this->physical(l)).
  /// Sizes must match.
  QubitMap composed(const QubitMap& next) const;

  /// The inverse permutation: inverted().physical(p) == logical(p).
  QubitMap inverted() const;

  // --- Segment queries (Section 3.3 routing through the map) ---

  Partition::Segment segment_of(const Partition& p, int logical) const {
    return p.segment_of(physical(logical));
  }
  int local_bit(const Partition& p, int logical) const {
    return p.local_bit(physical(logical));
  }

  // --- Index translation ---

  /// Physical amplitude index of a logical basis state: bit l of `logical`
  /// moves to bit physical(l).
  std::uint64_t to_physical_index(std::uint64_t logical_index) const;

  /// Inverse of to_physical_index.
  std::uint64_t to_logical_index(std::uint64_t physical_index) const;

  // --- Serialized form (checkpoint v4) ---

  /// Appends varint(n) followed by n varint physical positions.
  void serialize(Bytes& out) const;

  /// Reads a serialized map at `offset`, advancing it. Throws
  /// std::runtime_error on truncation or when the decoded table is not a
  /// permutation.
  static QubitMap deserialize(ByteSpan in, std::size_t& offset);

  bool operator==(const QubitMap& other) const {
    return physical_ == other.physical_;
  }

 private:
  std::vector<int> physical_;  ///< physical_[logical]
  std::vector<int> logical_;   ///< logical_[physical], kept in sync
};

}  // namespace cqs::runtime
