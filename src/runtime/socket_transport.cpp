#include "runtime/socket_transport.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include "runtime/fault_injection.hpp"

namespace cqs::runtime {

namespace {

using Clock = std::chrono::steady_clock;

int remaining_ms(Clock::time_point deadline) {
  const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                        deadline - Clock::now())
                        .count();
  return left <= 0 ? 0 : static_cast<int>(left);
}

/// Reads exactly `len` bytes with a deadline; kTimeout / kRankDead on
/// failure. Used only on the driver side (endpoints block indefinitely).
void read_exact(int fd, int rank, std::byte* out, std::size_t len,
                Clock::time_point deadline) {
  std::size_t got = 0;
  while (got < len) {
    pollfd pfd{fd, POLLIN, 0};
    const int ms = remaining_ms(deadline);
    const int ready = ::poll(&pfd, 1, ms == 0 ? 0 : ms);
    if (ready == 0) {
      throw TransportError(TransportError::Kind::kTimeout, rank,
                           "socket transport: recv from rank " +
                               std::to_string(rank) + " timed out");
    }
    if (ready < 0) {
      if (errno == EINTR) continue;
      throw TransportError(TransportError::Kind::kRankDead, rank,
                           "socket transport: poll on rank " +
                               std::to_string(rank) + " failed: " +
                               std::strerror(errno));
    }
    const ssize_t n =
        ::recv(fd, reinterpret_cast<char*>(out) + got, len - got, 0);
    if (n == 0) {
      throw TransportError(TransportError::Kind::kRankDead, rank,
                           "socket transport: rank " + std::to_string(rank) +
                               " closed its connection (process died?)");
    }
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) {
        continue;
      }
      throw TransportError(TransportError::Kind::kRankDead, rank,
                           "socket transport: recv from rank " +
                               std::to_string(rank) + " failed: " +
                               std::strerror(errno));
    }
    got += static_cast<std::size_t>(n);
  }
}

/// Writes exactly `len` bytes with a deadline. MSG_NOSIGNAL: a dead peer
/// must surface as a typed error, not a SIGPIPE.
void write_exact(int fd, int rank, const std::byte* data, std::size_t len,
                 Clock::time_point deadline) {
  std::size_t sent = 0;
  while (sent < len) {
    pollfd pfd{fd, POLLOUT, 0};
    const int ms = remaining_ms(deadline);
    const int ready = ::poll(&pfd, 1, ms == 0 ? 0 : ms);
    if (ready == 0) {
      throw TransportError(TransportError::Kind::kTimeout, rank,
                           "socket transport: send to rank " +
                               std::to_string(rank) + " timed out");
    }
    if (ready < 0) {
      if (errno == EINTR) continue;
      throw TransportError(TransportError::Kind::kRankDead, rank,
                           "socket transport: poll on rank " +
                               std::to_string(rank) + " failed: " +
                               std::strerror(errno));
    }
    const ssize_t n = ::send(fd, reinterpret_cast<const char*>(data) + sent,
                             len - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) {
        continue;
      }
      throw TransportError(TransportError::Kind::kRankDead, rank,
                           "socket transport: send to rank " +
                               std::to_string(rank) + " failed (" +
                               std::strerror(errno) + ") — rank process "
                               "dead?");
    }
    sent += static_cast<std::size_t>(n);
  }
}

/// Child-side blocking exact read; returns false on EOF (parent gone).
bool child_read_exact(int fd, std::byte* out, std::size_t len) {
  std::size_t got = 0;
  while (got < len) {
    const ssize_t n =
        ::read(fd, reinterpret_cast<char*>(out) + got, len - got);
    if (n == 0) return false;
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    got += static_cast<std::size_t>(n);
  }
  return true;
}

bool child_write_exact(int fd, const std::byte* data, std::size_t len) {
  std::size_t sent = 0;
  while (sent < len) {
    const ssize_t n = ::send(fd, reinterpret_cast<const char*>(data) + sent,
                             len - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

void grow_socket_buffers(int fd) {
  // Many worker threads keep frames in flight per connection; generous
  // kernel buffers keep a full sweep's echoes from stalling the senders.
  const int bytes = 4 * 1024 * 1024;
  ::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &bytes, sizeof(bytes));
  ::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &bytes, sizeof(bytes));
}

}  // namespace

// --- Rank endpoint (child process) ----------------------------------------

void run_rank_endpoint(int fd, int rank) {
  bool corrupt_next = false;
  std::uint64_t stall_ms = 0;
  Bytes payload;
  for (;;) {
    std::array<std::byte, wire::kHeaderBytes> raw;
    if (!child_read_exact(fd, raw.data(), raw.size())) _exit(0);  // EOF
    const auto header = wire::decode_header(raw);
    if (!header.has_value()) _exit(2);  // foreign/torn stream
    payload.resize(header->payload_len);
    if (header->payload_len > 0 &&
        !child_read_exact(fd, payload.data(), payload.size())) {
      _exit(0);
    }
    switch (static_cast<wire::FrameType>(header->type)) {
      case wire::FrameType::kShutdown:
        _exit(0);
      case wire::FrameType::kDie:
        _exit(3);  // simulated rank death: vanish without replying
      case wire::FrameType::kCorruptNext:
        corrupt_next = true;
        break;
      case wire::FrameType::kStallNext:
        stall_ms = header->aux;
        break;
      case wire::FrameType::kHello: {
        wire::FrameHeader echo = *header;
        echo.src_rank = static_cast<std::uint32_t>(rank);
        const auto bytes = wire::encode_header(echo);
        if (!child_write_exact(fd, bytes.data(), bytes.size())) _exit(0);
        break;
      }
      case wire::FrameType::kData: {
        if (wire::payload_checksum(payload) != header->checksum) {
          _exit(4);  // the driver corrupted a frame — protocol violation
        }
        if (stall_ms > 0) {
          std::this_thread::sleep_for(std::chrono::milliseconds(stall_ms));
          stall_ms = 0;
        }
        wire::FrameHeader echo = *header;
        if (corrupt_next && !payload.empty()) {
          // Flip a payload bit but keep the original checksum: the driver
          // must detect the mismatch and surface kFrameCorrupt.
          payload[0] ^= std::byte{0x01};
          corrupt_next = false;
        }
        const auto bytes = wire::encode_header(echo);
        if (!child_write_exact(fd, bytes.data(), bytes.size()) ||
            (!payload.empty() &&
             !child_write_exact(fd, payload.data(), payload.size()))) {
          _exit(0);
        }
        break;
      }
      default:
        _exit(2);
    }
  }
}

// --- Driver side -----------------------------------------------------------

struct SocketTransport::Connection {
  int rank = -1;
  int fd = -1;
  pid_t pid = -1;
  bool joined = false;
  int exit_code = -1;
  std::mutex send_mutex;
  // Reply demultiplexer: one thread at a time reads the socket; frames for
  // other tags are parked in `arrived` and their waiters notified.
  std::mutex recv_mutex;
  std::condition_variable recv_cv;
  bool reader_active = false;
  std::unordered_map<std::uint64_t, Bytes> arrived;
};

SocketTransport::SocketTransport(const TransportOptions& options)
    : timeout_ms_(options.rank_timeout_ms) {
  const int ranks = options.num_ranks;
  const bool tcp = options.socket_endpoint == "tcp";
  if (!tcp && options.socket_endpoint != "local") {
    throw std::invalid_argument(
        "socket transport: unknown socket_endpoint '" +
        options.socket_endpoint + "' (expected 'local' or 'tcp')");
  }

  int listen_fd = -1;
  sockaddr_in listen_addr{};
  if (tcp) {
    listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd < 0) {
      throw TransportError(TransportError::Kind::kRankDead, -1,
                           "socket transport: socket() failed: " +
                               std::string(std::strerror(errno)));
    }
    listen_addr.sin_family = AF_INET;
    listen_addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    listen_addr.sin_port = 0;  // ephemeral
    socklen_t len = sizeof(listen_addr);
    if (::bind(listen_fd, reinterpret_cast<sockaddr*>(&listen_addr),
               sizeof(listen_addr)) != 0 ||
        ::listen(listen_fd, ranks) != 0 ||
        ::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&listen_addr),
                      &len) != 0) {
      const int err = errno;
      ::close(listen_fd);
      throw TransportError(TransportError::Kind::kRankDead, -1,
                           "socket transport: tcp listen failed: " +
                               std::string(std::strerror(err)));
    }
  }

  conns_.reserve(ranks);
  std::vector<int> parent_fds;  // close these in each forked child
  for (int r = 0; r < ranks; ++r) {
    auto conn = std::make_unique<Connection>();
    conn->rank = r;

    int child_fd = -1;
    if (!tcp) {
      int sv[2];
      if (::socketpair(AF_UNIX, SOCK_STREAM, 0, sv) != 0) {
        const int err = errno;
        join();
        if (listen_fd >= 0) ::close(listen_fd);
        throw TransportError(TransportError::Kind::kRankDead, r,
                             "socket transport: socketpair failed: " +
                                 std::string(std::strerror(err)));
      }
      conn->fd = sv[0];
      child_fd = sv[1];
    }

    const pid_t pid = ::fork();
    if (pid < 0) {
      const int err = errno;
      if (child_fd >= 0) ::close(child_fd);
      conns_.push_back(std::move(conn));
      join();
      if (listen_fd >= 0) ::close(listen_fd);
      throw TransportError(TransportError::Kind::kRankDead, r,
                           "socket transport: fork failed: " +
                               std::string(std::strerror(err)));
    }
    if (pid == 0) {
      // Rank endpoint process. Drop every driver-side fd so an endpoint
      // never holds a sibling's connection open past its death.
      if (listen_fd >= 0) ::close(listen_fd);
      for (int fd : parent_fds) ::close(fd);
      int fd = child_fd;
      if (tcp) {
        fd = ::socket(AF_INET, SOCK_STREAM, 0);
        if (fd < 0 ||
            ::connect(fd, reinterpret_cast<sockaddr*>(&listen_addr),
                      sizeof(listen_addr)) != 0) {
          _exit(5);
        }
        const int one = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
        // Identify this rank to the driver's accept loop.
        wire::FrameHeader hello;
        hello.type = static_cast<std::uint8_t>(wire::FrameType::kHello);
        hello.src_rank = static_cast<std::uint32_t>(r);
        const auto bytes = wire::encode_header(hello);
        if (!child_write_exact(fd, bytes.data(), bytes.size())) _exit(5);
      }
      grow_socket_buffers(fd);
      run_rank_endpoint(fd, r);  // never returns
    }
    conn->pid = pid;
    if (child_fd >= 0) ::close(child_fd);
    if (conn->fd >= 0) parent_fds.push_back(conn->fd);
    conns_.push_back(std::move(conn));
  }

  if (tcp) {
    // Accept one connection per rank; each identifies itself by hello.
    const auto deadline =
        Clock::now() + std::chrono::milliseconds(timeout_ms_);
    for (int accepted = 0; accepted < ranks; ++accepted) {
      pollfd pfd{listen_fd, POLLIN, 0};
      const int ready = ::poll(&pfd, 1, remaining_ms(deadline));
      if (ready <= 0) {
        ::close(listen_fd);
        join();
        throw TransportError(
            TransportError::Kind::kTimeout, -1,
            "socket transport: rank connect timed out (accepted " +
                std::to_string(accepted) + "/" + std::to_string(ranks) +
                ")");
      }
      const int fd = ::accept(listen_fd, nullptr, nullptr);
      if (fd < 0) continue;
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      std::array<std::byte, wire::kHeaderBytes> raw;
      try {
        read_exact(fd, -1, raw.data(), raw.size(), deadline);
      } catch (...) {
        ::close(fd);
        ::close(listen_fd);
        join();
        throw;
      }
      const auto hello = wire::decode_header(raw);
      if (!hello.has_value() ||
          hello->type != static_cast<std::uint8_t>(wire::FrameType::kHello) ||
          hello->src_rank >= static_cast<std::uint32_t>(ranks) ||
          conns_[hello->src_rank]->fd >= 0) {
        ::close(fd);
        ::close(listen_fd);
        join();
        throw TransportError(TransportError::Kind::kProtocol, -1,
                             "socket transport: bad rank hello");
      }
      conns_[hello->src_rank]->fd = fd;
    }
    ::close(listen_fd);
  }

  // Handshake every endpoint: proves liveness and protocol agreement
  // before the first exchange, within the configured deadline.
  for (auto& conn : conns_) {
    grow_socket_buffers(conn->fd);
    wire::FrameHeader hello;
    hello.type = static_cast<std::uint8_t>(wire::FrameType::kHello);
    hello.dst_rank = static_cast<std::uint32_t>(conn->rank);
    hello.tag = next_tag_.fetch_add(1, std::memory_order_relaxed);
    try {
      send_frame(*conn, hello, {});
      recv_for_tag(*conn, hello.tag);
    } catch (...) {
      join();
      throw;
    }
  }
}

SocketTransport::~SocketTransport() { join(); }

void SocketTransport::send_frame(Connection& conn, wire::FrameHeader header,
                                 ByteSpan payload) {
  header.payload_len = payload.size();
  header.checksum = wire::payload_checksum(payload);
  const auto raw = wire::encode_header(header);
  const auto deadline =
      Clock::now() + std::chrono::milliseconds(timeout_ms_);
  {
    std::lock_guard lock(conn.send_mutex);
    write_exact(conn.fd, conn.rank, raw.data(), raw.size(), deadline);
    if (!payload.empty()) {
      write_exact(conn.fd, conn.rank, payload.data(), payload.size(),
                  deadline);
    }
  }
  payload_bytes_.fetch_add(payload.size(), std::memory_order_relaxed);
  frame_bytes_.fetch_add(raw.size(), std::memory_order_relaxed);
  frames_.fetch_add(1, std::memory_order_relaxed);
}

Bytes SocketTransport::recv_for_tag(Connection& conn, std::uint64_t tag) {
  const auto deadline =
      Clock::now() + std::chrono::milliseconds(timeout_ms_);
  std::unique_lock lock(conn.recv_mutex);
  for (;;) {
    if (auto it = conn.arrived.find(tag); it != conn.arrived.end()) {
      Bytes payload = std::move(it->second);
      conn.arrived.erase(it);
      return payload;
    }
    if (!conn.reader_active) break;  // become the reader
    if (conn.recv_cv.wait_until(lock, deadline) ==
        std::cv_status::timeout) {
      throw TransportError(TransportError::Kind::kTimeout, conn.rank,
                           "socket transport: recv from rank " +
                               std::to_string(conn.rank) + " timed out");
    }
  }
  conn.reader_active = true;
  for (;;) {
    lock.unlock();
    std::array<std::byte, wire::kHeaderBytes> raw;
    std::optional<wire::FrameHeader> header;
    Bytes payload;
    try {
      read_exact(conn.fd, conn.rank, raw.data(), raw.size(), deadline);
      header = wire::decode_header(raw);
      if (!header.has_value()) {
        throw TransportError(TransportError::Kind::kFrameCorrupt, conn.rank,
                             "socket transport: torn frame from rank " +
                                 std::to_string(conn.rank) +
                                 " (bad magic/version)");
      }
      payload.resize(header->payload_len);
      if (!payload.empty()) {
        read_exact(conn.fd, conn.rank, payload.data(), payload.size(),
                   deadline);
      }
      if (wire::payload_checksum(payload) != header->checksum) {
        throw TransportError(
            TransportError::Kind::kFrameCorrupt, conn.rank,
            "socket transport: checksum mismatch on frame from rank " +
                std::to_string(conn.rank));
      }
    } catch (...) {
      lock.lock();
      conn.reader_active = false;
      conn.recv_cv.notify_all();  // let another waiter take over / fail
      throw;
    }
    payload_bytes_.fetch_add(payload.size(), std::memory_order_relaxed);
    frame_bytes_.fetch_add(raw.size(), std::memory_order_relaxed);
    frames_.fetch_add(1, std::memory_order_relaxed);
    lock.lock();
    if (header->tag == tag) {
      conn.reader_active = false;
      conn.recv_cv.notify_all();
      return payload;
    }
    conn.arrived.emplace(header->tag, std::move(payload));
    conn.recv_cv.notify_all();
  }
}

PendingExchange SocketTransport::exchange_begin(int rank_a, int rank_b,
                                                ByteSpan from_a,
                                                ByteSpan from_b,
                                                std::uint8_t codec_a,
                                                std::uint8_t codec_b) {
  // Scripted wire fault: the hit becomes the matching endpoint control
  // frame, so the failure then manifests through the real machinery — a
  // killed process, a corrupted echo, a stalled reply — and surfaces as
  // the same typed error a spontaneous fault would.
  if (auto hit =
          FaultInjector::instance().on_call(fault_sites::kTransportSend)) {
    wire::FrameType control = wire::FrameType::kDie;
    std::uint64_t aux = hit->aux;
    if (hit->action == "corrupt") {
      control = wire::FrameType::kCorruptNext;
    } else if (hit->action == "stall") {
      control = wire::FrameType::kStallNext;
    } else if (hit->action == "timeout") {
      // A stall just past the deadline is how a real timeout presents.
      control = wire::FrameType::kStallNext;
      aux = static_cast<std::uint64_t>(timeout_ms_) * 2;
    }
    inject_fault(rank_b, control, aux);
  }

  PendingExchange pending;
  pending.rank_a = rank_a;
  pending.rank_b = rank_b;
  pending.tag_a = next_tag_.fetch_add(1, std::memory_order_relaxed);
  pending.tag_b = next_tag_.fetch_add(1, std::memory_order_relaxed);

  // from_a travels to rank b's process (its echo is rank b's delivery);
  // from_b travels to rank a's. Both sends complete before returning, so
  // the payload bytes are on the wire while the caller does codec work.
  wire::FrameHeader to_b;
  to_b.type = static_cast<std::uint8_t>(wire::FrameType::kData);
  to_b.codec = codec_a;
  to_b.src_rank = static_cast<std::uint32_t>(rank_a);
  to_b.dst_rank = static_cast<std::uint32_t>(rank_b);
  to_b.tag = pending.tag_b;
  send_frame(*conns_[rank_b], to_b, from_a);

  wire::FrameHeader to_a;
  to_a.type = static_cast<std::uint8_t>(wire::FrameType::kData);
  to_a.codec = codec_b;
  to_a.src_rank = static_cast<std::uint32_t>(rank_b);
  to_a.dst_rank = static_cast<std::uint32_t>(rank_a);
  to_a.tag = pending.tag_a;
  send_frame(*conns_[rank_a], to_a, from_b);

  pending.active = true;
  return pending;
}

void SocketTransport::exchange_wait(PendingExchange& pending) {
  pending.to_a = recv_for_tag(*conns_[pending.rank_a], pending.tag_a);
  pending.to_b = recv_for_tag(*conns_[pending.rank_b], pending.tag_b);
  pending.active = false;
}

WireStats SocketTransport::wire_stats() const {
  return {payload_bytes_.load(std::memory_order_relaxed),
          frame_bytes_.load(std::memory_order_relaxed),
          frames_.load(std::memory_order_relaxed)};
}

void SocketTransport::inject_fault(int rank, wire::FrameType fault,
                                   std::uint64_t aux) {
  wire::FrameHeader header;
  header.type = static_cast<std::uint8_t>(fault);
  header.dst_rank = static_cast<std::uint32_t>(rank);
  header.aux = aux;
  send_frame(*conns_[rank], header, {});
}

std::vector<SocketTransport::RankProcess> SocketTransport::join() {
  std::lock_guard lock(join_mutex_);
  if (!joined_) {
    for (auto& conn : conns_) {
      if (conn->fd >= 0) {
        // Best-effort shutdown frame; a dead endpoint just fails the send.
        wire::FrameHeader bye;
        bye.type = static_cast<std::uint8_t>(wire::FrameType::kShutdown);
        bye.dst_rank = static_cast<std::uint32_t>(conn->rank);
        try {
          send_frame(*conn, bye, {});
        } catch (...) {
        }
        ::close(conn->fd);
        conn->fd = -1;
      }
    }
    for (auto& conn : conns_) {
      if (conn->pid <= 0 || conn->joined) continue;
      const auto deadline = Clock::now() + std::chrono::seconds(2);
      for (;;) {
        int status = 0;
        const pid_t r = ::waitpid(conn->pid, &status, WNOHANG);
        if (r == conn->pid) {
          conn->joined = true;
          conn->exit_code =
              WIFEXITED(status) ? WEXITSTATUS(status) : 128 + WTERMSIG(status);
          break;
        }
        if (r < 0) {  // already reaped elsewhere
          conn->joined = true;
          break;
        }
        if (Clock::now() >= deadline) {
          ::kill(conn->pid, SIGKILL);
          int st = 0;
          ::waitpid(conn->pid, &st, 0);
          conn->joined = true;
          conn->exit_code = 128 + SIGKILL;
          break;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
      }
    }
    joined_ = true;
  }
  return processes();
}

std::vector<SocketTransport::RankProcess> SocketTransport::processes()
    const {
  std::vector<RankProcess> out;
  out.reserve(conns_.size());
  for (const auto& conn : conns_) {
    out.push_back({conn->rank, conn->pid, conn->joined, conn->exit_code});
  }
  return out;
}

}  // namespace cqs::runtime
