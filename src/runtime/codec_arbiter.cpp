#include "runtime/codec_arbiter.hpp"

#include <cmath>
#include <stdexcept>

#include "common/stats.hpp"

namespace cqs::runtime {

BlockStats compute_block_stats(std::span<const double> data) {
  // RunningStats over |x| of the nonzeros gives mean/min/max in one
  // Welford pass; zeros are counted separately so zero_fraction is exact.
  RunningStats magnitudes;
  std::size_t zeros = 0;
  for (double x : data) {
    if (x == 0.0) {
      ++zeros;
    } else {
      magnitudes.add(std::abs(x));
    }
  }
  BlockStats stats;
  stats.zero_fraction =
      data.empty() ? 1.0
                   : static_cast<double>(zeros) /
                         static_cast<double>(data.size());
  if (magnitudes.count() > 0 && magnitudes.mean() > 0.0) {
    stats.spikiness = magnitudes.max() / magnitudes.mean();
  }
  if (magnitudes.count() > 1 && magnitudes.min() > 0.0) {
    stats.dynamic_range = std::log2(magnitudes.max() / magnitudes.min());
  }
  return stats;
}

CodecPolicy parse_codec_policy(const std::string& name) {
  if (name == "fixed") return CodecPolicy::kFixed;
  if (name == "adaptive") return CodecPolicy::kAdaptive;
  throw std::invalid_argument(
      "codec_policy: unknown policy '" + name +
      "' (expected \"fixed\" or \"adaptive\")");
}

CodecArbiter::CodecArbiter(ArbiterConfig config, int total_blocks)
    : config_(config),
      last_lossless_(static_cast<std::size_t>(total_blocks), kUnset) {}

bool CodecArbiter::decide_lossless(int global_block, int level,
                                   std::span<const double> data) {
  auto& last = last_lossless_[static_cast<std::size_t>(global_block)];
  bool lossless;
  if (level == 0) {
    lossless = true;
  } else if (config_.policy == CodecPolicy::kFixed) {
    lossless = false;
  } else {
    const BlockStats stats = compute_block_stats(data);
    // Hysteresis: shift each threshold against the direction of a flip, so
    // the signal must leave the band around the threshold before the block
    // changes codec (additive on the zero fraction and on dynamic-range
    // bits, multiplicative on the spikiness ratio). A block with no
    // history uses the raw thresholds.
    double zf_threshold = config_.zero_fraction_threshold;
    double dr_threshold = config_.dynamic_range_threshold;
    double spike_threshold = config_.spikiness_threshold;
    if (last == 1) {  // currently lossless: switch only when clearly dense
      zf_threshold -= config_.hysteresis;
      dr_threshold += config_.hysteresis;
      spike_threshold *= 1.0 - config_.hysteresis;
    } else if (last == 0) {  // currently lossy: switch only when clearly sparse
      zf_threshold += config_.hysteresis;
      dr_threshold -= config_.hysteresis;
      spike_threshold *= 1.0 + config_.hysteresis;
    }
    lossless = stats.zero_fraction >= zf_threshold ||
               stats.dynamic_range <= dr_threshold ||
               stats.spikiness >= spike_threshold;
  }

  (lossless ? lossless_choices_ : lossy_choices_)
      .fetch_add(1, std::memory_order_relaxed);
  const auto now = static_cast<std::uint8_t>(lossless ? 1 : 0);
  if (last != kUnset && last != now) {
    switches_.fetch_add(1, std::memory_order_relaxed);
  }
  last = now;
  return lossless;
}

void CodecArbiter::seed(int global_block, bool lossless) {
  last_lossless_[static_cast<std::size_t>(global_block)] =
      static_cast<std::uint8_t>(lossless ? 1 : 0);
}

ArbiterStats CodecArbiter::stats() const {
  ArbiterStats stats;
  stats.lossless_choices = lossless_choices_.load(std::memory_order_relaxed);
  stats.lossy_choices = lossy_choices_.load(std::memory_order_relaxed);
  stats.switches = switches_.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace cqs::runtime
