// Simulation checkpointing (Section 3.5): the compressed blocks plus the
// little state needed to resume (gate index, ladder level, fidelity bound)
// are written to a file before a wall-time limit and reloaded by the next
// job. Because blocks are saved in compressed form, checkpoints are the
// same size as the in-memory footprint, not the raw state.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "runtime/block_store.hpp"
#include "runtime/qubit_map.hpp"

namespace cqs::runtime {

struct CheckpointHeader {
  int num_qubits = 0;
  int num_ranks = 0;
  int blocks_per_rank = 0;
  std::uint32_t ladder_level = 0;
  std::uint64_t next_gate_index = 0;
  double fidelity_bound = 1.0;
  /// Lossy passes accumulated before the save (format v2). Version-1
  /// checkpoints did not persist this; the loader reconstructs the only
  /// thing it can — one synthetic pass when the bound is below 1.
  std::uint64_t lossy_passes = 0;
  std::string codec_name;
  /// Logical->physical layout of the saved blocks (format v4). Pre-v4
  /// files never remapped, so the loader leaves this empty and the
  /// simulator derives the identity map.
  QubitMap qubit_map;
};

/// Writes header + every rank's compressed blocks to `path` in format
/// v5/v6: each block carries its ladder level AND the codec id that
/// produced its payload (v3), the header carries the logical->physical
/// qubit map the blocks are laid out under (v4), and each block records
/// which tier it occupied at save time (v5) — spilled payloads are read
/// back through the spill mapping, so an out-of-core state checkpoints
/// without being faulted into memory first. v6 is byte-identical to v5 in
/// layout and is written only when some block's codec id is beyond the v5
/// registry (ids > 6, e.g. "zfp-rans"), so images that old readers could
/// load keep the v5 magic byte-for-byte.
///
/// Durability: the image is written to `<path>.tmp`, fsynced, and
/// atomically renamed over `path` — a crash (or I/O failure) mid-save
/// leaves any previous checkpoint at `path` intact. Throws
/// std::runtime_error on I/O failure (the temporary is removed).
void save_checkpoint(const std::string& path, const CheckpointHeader& header,
                     const std::vector<BlockStore>& ranks);

/// A loaded checkpoint: every block is materialized resident (the loader
/// has no spill file); `spilled[r][b]` records which blocks occupied the
/// spill tier at save time so the resuming simulator can re-tier them
/// under its own budget. Empty (all-resident) for pre-v5 files.
struct LoadedCheckpoint {
  CheckpointHeader header;
  std::vector<BlockStore> ranks;
  std::vector<std::vector<std::uint8_t>> spilled;
};

/// Reads a checkpoint written by save_checkpoint. Accepts formats v1-v6;
/// v1/v2 blocks never stored a codec id, so the reader derives it from the
/// block's level (0 = lossless zx, otherwise the header codec), and
/// pre-v4 headers carry no qubit map (identity layout). A v4 map that is
/// not a permutation is rejected with std::runtime_error. Block codec ids
/// are validated against the format version: a v<=5 image claiming an id
/// beyond the v5 registry (> 6) is corrupt and rejected, and a v6 id must
/// exist in this build's registry.
LoadedCheckpoint load_checkpoint_full(const std::string& path);

/// load_checkpoint_full without the tier flags — the historical interface,
/// for callers that re-tier from scratch (or never spill).
std::pair<CheckpointHeader, std::vector<BlockStore>> load_checkpoint(
    const std::string& path);

namespace testing {
/// Fault hook for the kill-mid-save test: after this many more bytes of
/// checkpoint image have been written, the save fails (and cleans up its
/// temporary) as if the process died mid-write. UINT64_MAX = unlimited;
/// reset by the test that set it.
void set_checkpoint_write_limit(std::uint64_t bytes);
}  // namespace testing

}  // namespace cqs::runtime
