// Simulation checkpointing (Section 3.5): the compressed blocks plus the
// little state needed to resume (gate index, ladder level, fidelity bound)
// are written to a file before a wall-time limit and reloaded by the next
// job. Because blocks are saved in compressed form, checkpoints are the
// same size as the in-memory footprint, not the raw state.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "runtime/block_store.hpp"
#include "runtime/qubit_map.hpp"

namespace cqs::runtime {

struct CheckpointHeader {
  int num_qubits = 0;
  int num_ranks = 0;
  int blocks_per_rank = 0;
  std::uint32_t ladder_level = 0;
  std::uint64_t next_gate_index = 0;
  double fidelity_bound = 1.0;
  /// Lossy passes accumulated before the save (format v2). Version-1
  /// checkpoints did not persist this; the loader reconstructs the only
  /// thing it can — one synthetic pass when the bound is below 1.
  std::uint64_t lossy_passes = 0;
  std::string codec_name;
  /// Logical->physical layout of the saved blocks (format v4). Pre-v4
  /// files never remapped, so the loader leaves this empty and the
  /// simulator derives the identity map.
  QubitMap qubit_map;
};

/// Writes header + every rank's compressed blocks to `path` in format v4:
/// each block carries its ladder level AND the codec id that produced its
/// payload (v3), and the header carries the logical->physical qubit map
/// the blocks are laid out under (v4), so per-block adaptive codec
/// choices and the remapped layout both survive a resume.
/// Throws std::runtime_error on I/O failure.
void save_checkpoint(const std::string& path, const CheckpointHeader& header,
                     const std::vector<BlockStore>& ranks);

/// Reads a checkpoint written by save_checkpoint. Accepts formats v1-v4;
/// v1/v2 blocks never stored a codec id, so the reader derives it from the
/// block's level (0 = lossless zx, otherwise the header codec), and
/// pre-v4 headers carry no qubit map (identity layout). A v4 map that is
/// not a permutation is rejected with std::runtime_error.
std::pair<CheckpointHeader, std::vector<BlockStore>> load_checkpoint(
    const std::string& path);

}  // namespace cqs::runtime
