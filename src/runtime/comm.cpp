#include "runtime/comm.hpp"

#include <chrono>
#include <stdexcept>
#include <utility>

namespace cqs::runtime {

void Comm::exchange(int rank_a, int rank_b, Bytes& block_from_a,
                    Bytes& block_from_b) {
  if (rank_a < 0 || rank_a >= num_ranks_ || rank_b < 0 ||
      rank_b >= num_ranks_ || rank_a == rank_b) {
    throw std::invalid_argument("Comm::exchange: bad rank pair");
  }
  const auto start = std::chrono::steady_clock::now();
  // Stage through transfer buffers (the "wire"): one copy out, one copy in
  // per direction, like a buffered sendrecv.
  Bytes wire_a(block_from_a);
  Bytes wire_b(block_from_b);
  block_from_a = std::move(wire_b);
  block_from_b = std::move(wire_a);
  const auto end = std::chrono::steady_clock::now();

  bytes_moved_ += block_from_a.size() + block_from_b.size();
  messages_ += 2;
  nanos_ += std::chrono::duration_cast<std::chrono::nanoseconds>(end - start)
                .count();
}

void Comm::transfer(int from, int to, ByteSpan payload) {
  if (from < 0 || from >= num_ranks_ || to < 0 || to >= num_ranks_ ||
      from == to) {
    throw std::invalid_argument("Comm::transfer: bad rank pair");
  }
  const auto start = std::chrono::steady_clock::now();
  // The wire: an actual copy so transfer cost is physically incurred.
  Bytes wire(payload.begin(), payload.end());
  const auto end = std::chrono::steady_clock::now();
  // Keep the copy alive until after timing so the compiler cannot drop it.
  bytes_moved_ += wire.size();
  messages_ += 1;
  nanos_ += std::chrono::duration_cast<std::chrono::nanoseconds>(end - start)
                .count();
}

CommStats Comm::stats() const {
  return {bytes_moved_.load(), messages_.load(),
          static_cast<double>(nanos_.load()) * 1e-9};
}

void Comm::reset() {
  bytes_moved_ = 0;
  messages_ = 0;
  nanos_ = 0;
}

}  // namespace cqs::runtime
