#include "runtime/comm.hpp"

#include <chrono>
#include <stdexcept>
#include <utility>

namespace cqs::runtime {

namespace {

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

Comm::Comm(int num_ranks)
    : transport_(std::make_unique<LoopbackTransport>(num_ranks)) {}

Comm::Comm(std::unique_ptr<Transport> transport)
    : transport_(std::move(transport)) {
  if (!transport_) {
    throw std::invalid_argument("Comm: null transport");
  }
}

Comm::~Comm() = default;

Comm::Pending Comm::exchange_begin(int rank_a, int rank_b, ByteSpan from_a,
                                   ByteSpan from_b, std::uint8_t codec_a,
                                   std::uint8_t codec_b) {
  const int ranks = transport_->num_ranks();
  if (rank_a < 0 || rank_a >= ranks || rank_b < 0 || rank_b >= ranks ||
      rank_a == rank_b) {
    throw std::invalid_argument("Comm::exchange: bad rank pair");
  }
  const std::uint64_t start = now_ns();
  Pending pending;
  pending.wire =
      transport_->exchange_begin(rank_a, rank_b, from_a, from_b, codec_a,
                                 codec_b);
  pending.begin_ns = now_ns();
  // Accounting happens at begin: the payloads are on the wire now.
  bytes_moved_.fetch_add(from_a.size() + from_b.size(),
                         std::memory_order_relaxed);
  messages_.fetch_add(2, std::memory_order_relaxed);
  wire_nanos_.fetch_add(pending.begin_ns - start, std::memory_order_relaxed);
  return pending;
}

Comm::Received Comm::exchange_wait(Pending& pending) {
  if (!pending.wire.active) {
    throw std::logic_error("Comm::exchange_wait: exchange not in flight");
  }
  const std::uint64_t start = now_ns();
  // Whatever the caller did between begin and now ran while the payloads
  // were in flight — that span is the overlap the report surfaces.
  overlap_nanos_.fetch_add(start - pending.begin_ns,
                           std::memory_order_relaxed);
  transport_->exchange_wait(pending.wire);
  wire_nanos_.fetch_add(now_ns() - start, std::memory_order_relaxed);
  return {std::move(pending.wire.to_a), std::move(pending.wire.to_b)};
}

void Comm::exchange(int rank_a, int rank_b, Bytes& block_from_a,
                    Bytes& block_from_b) {
  Pending pending =
      exchange_begin(rank_a, rank_b, block_from_a, block_from_b);
  Received received = exchange_wait(pending);
  block_from_a = std::move(received.to_a);
  block_from_b = std::move(received.to_b);
}

CommStats Comm::stats() const {
  return {bytes_moved_.load(std::memory_order_relaxed),
          messages_.load(std::memory_order_relaxed),
          wire_nanos_.load(std::memory_order_relaxed),
          overlap_nanos_.load(std::memory_order_relaxed)};
}

void Comm::reset() {
  bytes_moved_ = 0;
  messages_ = 0;
  wire_nanos_ = 0;
  overlap_nanos_ = 0;
}

}  // namespace cqs::runtime
