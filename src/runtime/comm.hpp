// Cross-rank communicator: the MPI stand-in. Comm is a thin accounting
// shim over a pluggable Transport (runtime/transport.hpp) — every
// cross-rank transfer is routed through it so traffic is observable
// (bytes, message count, wire time, overlap time) exactly where Intel-QS
// would issue MPI_Sendrecv. Table 2's communication-time row and the
// Figure 16 scaling study read these counters.
//
// The begin/wait split mirrors MPI_Isend/MPI_Wait: exchange_begin puts
// both payloads on the wire and returns, the caller overlaps codec or
// pipeline work, then exchange_wait collects the received payloads. The
// gap between begin returning and wait being called is credited as
// overlap time, so the report can state how much wire latency the sweep
// hid behind useful work.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>

#include "common/bytes.hpp"
#include "runtime/transport.hpp"

namespace cqs::runtime {

/// Logical communication accounting. Byte/message counts are charged at
/// exchange_begin (when the payloads hit the wire); wall time is kept as
/// an atomic nanosecond counter and derived into seconds once, at read
/// time — never accumulated as floating point.
struct CommStats {
  std::uint64_t bytes_moved = 0;
  std::uint64_t messages = 0;
  /// Nanoseconds spent blocked on the wire (begin + wait calls).
  std::uint64_t wire_nanos = 0;
  /// Nanoseconds of useful work between begin returning and wait being
  /// called — wire latency hidden behind codec/pipeline work.
  std::uint64_t overlap_nanos = 0;

  double seconds() const { return static_cast<double>(wire_nanos) * 1e-9; }

  /// Fraction of each exchange's lifetime spent overlapped with compute
  /// rather than blocked on the wire. 0 when no exchange happened.
  double overlap_utilization() const {
    const std::uint64_t total = wire_nanos + overlap_nanos;
    return total == 0 ? 0.0
                      : static_cast<double>(overlap_nanos) /
                            static_cast<double>(total);
  }
};

class Comm {
 public:
  /// Convenience: in-process loopback transport over `num_ranks` ranks
  /// (the pre-transport behavior, and the default).
  explicit Comm(int num_ranks);
  /// Full form: Comm accounts, `transport` moves the bytes.
  explicit Comm(std::unique_ptr<Transport> transport);
  ~Comm();

  int num_ranks() const { return transport_->num_ranks(); }
  const Transport& transport() const { return *transport_; }
  Transport& transport() { return *transport_; }

  /// One in-flight exchange plus the timestamp that anchors its overlap
  /// accounting. Obtain from exchange_begin; settle with exchange_wait.
  struct Pending {
    PendingExchange wire;
    std::uint64_t begin_ns = 0;  ///< steady-clock stamp at begin-return
  };

  /// Payloads delivered by a completed exchange.
  struct Received {
    Bytes to_a;  ///< what rank a received (= from_b)
    Bytes to_b;  ///< what rank b received (= from_a)
  };

  /// Starts the paired sendrecv of one compressed block in each direction
  /// and returns while the payloads are in flight. Charges bytes/messages
  /// immediately; the codec ids ride the frame headers on wire backends.
  Pending exchange_begin(int rank_a, int rank_b, ByteSpan from_a,
                         ByteSpan from_b, std::uint8_t codec_a = 0,
                         std::uint8_t codec_b = 0);

  /// Completes a pending exchange. The span between begin's return and
  /// this call is credited as overlap; time inside begin/wait as wire.
  Received exchange_wait(Pending& pending);

  /// Blocking convenience: begin + immediate wait, with the received
  /// payloads swapped back into the arguments. Identical observable
  /// behavior to the historical staged-copy exchange.
  void exchange(int rank_a, int rank_b, Bytes& block_from_a,
                Bytes& block_from_b);

  CommStats stats() const;
  /// Physical wire traffic of the underlying transport (socket backend:
  /// payload_bytes == 2x bytes_moved, the out-and-back identity).
  WireStats wire_stats() const { return transport_->wire_stats(); }

  void reset();

 private:
  std::unique_ptr<Transport> transport_;
  std::atomic<std::uint64_t> bytes_moved_{0};
  std::atomic<std::uint64_t> messages_{0};
  std::atomic<std::uint64_t> wire_nanos_{0};
  std::atomic<std::uint64_t> overlap_nanos_{0};
};

}  // namespace cqs::runtime
