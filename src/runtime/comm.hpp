// Simulated communicator: the MPI stand-in. Logical ranks live in one
// process, so an "exchange" is a staged copy through a transfer buffer —
// but every transfer is routed through this object so cross-rank traffic
// is observable (bytes, message count, wall time) exactly where Intel-QS
// would issue MPI_Sendrecv. Table 2's communication-time row and the
// Figure 16 scaling study read these counters.
#pragma once

#include <atomic>
#include <cstdint>

#include "common/bytes.hpp"

namespace cqs::runtime {

struct CommStats {
  std::uint64_t bytes_moved = 0;
  std::uint64_t messages = 0;
  double seconds = 0.0;
};

class Comm {
 public:
  explicit Comm(int num_ranks) : num_ranks_(num_ranks) {}

  int num_ranks() const { return num_ranks_; }

  /// Models the paired MPI_Sendrecv of one compressed block in each
  /// direction: stages both payloads through transfer buffers and charges
  /// the copies to the communication phase.
  void exchange(int rank_a, int rank_b, Bytes& block_from_a,
                Bytes& block_from_b);

  /// Models a one-way send of `payload` from rank `from` to rank `to`:
  /// the bytes are staged through a wire buffer (a real timed copy) and
  /// counted. Used when a rank pulls its partner's compressed block in and
  /// pushes the updated block back (Section 3.3, cross-rank case).
  void transfer(int from, int to, ByteSpan payload);

  CommStats stats() const;
  void reset();

 private:
  int num_ranks_;
  std::atomic<std::uint64_t> bytes_moved_{0};
  std::atomic<std::uint64_t> messages_{0};
  std::atomic<std::uint64_t> nanos_{0};
};

}  // namespace cqs::runtime
