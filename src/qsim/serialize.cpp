#include "qsim/serialize.hpp"

#include <map>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace cqs::qsim {
namespace {

/// How many qubit operands and angle parameters each mnemonic takes.
struct OpShape {
  GateKind kind;
  int qubits;  // operands; controls first, target last
  int params;
};

const std::map<std::string, OpShape>& shapes() {
  static const std::map<std::string, OpShape> table = {
      {"h", {GateKind::kH, 1, 0}},       {"x", {GateKind::kX, 1, 0}},
      {"y", {GateKind::kY, 1, 0}},       {"z", {GateKind::kZ, 1, 0}},
      {"s", {GateKind::kS, 1, 0}},       {"sdg", {GateKind::kSdg, 1, 0}},
      {"t", {GateKind::kT, 1, 0}},       {"tdg", {GateKind::kTdg, 1, 0}},
      {"sx", {GateKind::kSqrtX, 1, 0}},  {"sy", {GateKind::kSqrtY, 1, 0}},
      {"sw", {GateKind::kSqrtW, 1, 0}},  {"rx", {GateKind::kRx, 1, 1}},
      {"ry", {GateKind::kRy, 1, 1}},     {"rz", {GateKind::kRz, 1, 1}},
      {"p", {GateKind::kPhase, 1, 1}},   {"u3", {GateKind::kU3, 1, 3}},
      {"u3g", {GateKind::kU3G, 1, 4}},   {"cx", {GateKind::kCX, 2, 0}},
      {"cz", {GateKind::kCZ, 2, 0}},     {"cp", {GateKind::kCPhase, 2, 1}},
      {"swap", {GateKind::kSwap, 2, 0}}, {"ccx", {GateKind::kCCX, 3, 0}},
  };
  return table;
}

int param_count(GateKind kind) {
  for (const auto& [name, shape] : shapes()) {
    if (shape.kind == kind) return shape.params;
  }
  return 0;
}

}  // namespace

void write_circuit(std::ostream& os, const Circuit& circuit) {
  os << "qubits " << circuit.num_qubits() << "\n";
  os.precision(17);
  for (const GateOp& op : circuit.ops()) {
    os << gate_name(op.kind);
    for (int c : op.controls) {
      if (c >= 0) os << ' ' << c;
    }
    os << ' ' << op.target;
    const int np = param_count(op.kind);
    for (int i = 0; i < np; ++i) os << ' ' << op.params[i];
    os << "\n";
  }
}

std::string circuit_to_text(const Circuit& circuit) {
  std::ostringstream os;
  write_circuit(os, circuit);
  return os.str();
}

Circuit parse_circuit(std::istream& is) {
  std::string line;
  int line_number = 0;
  auto fail = [&](const std::string& message) -> void {
    throw std::runtime_error("parse_circuit: line " +
                             std::to_string(line_number) + ": " + message);
  };

  // Header.
  int num_qubits = -1;
  while (std::getline(is, line)) {
    ++line_number;
    std::istringstream ls(line);
    std::string word;
    if (!(ls >> word) || word[0] == '#') continue;
    if (word != "qubits" || !(ls >> num_qubits)) {
      fail("expected 'qubits <n>' header");
    }
    break;
  }
  if (num_qubits < 1) {
    throw std::runtime_error("parse_circuit: missing qubits header");
  }
  Circuit circuit(num_qubits);

  while (std::getline(is, line)) {
    ++line_number;
    std::istringstream ls(line);
    std::string mnemonic;
    if (!(ls >> mnemonic) || mnemonic[0] == '#') continue;
    const auto it = shapes().find(mnemonic);
    if (it == shapes().end()) fail("unknown gate '" + mnemonic + "'");
    const OpShape& shape = it->second;
    std::vector<int> qubits(shape.qubits);
    for (int& q : qubits) {
      if (!(ls >> q)) fail("missing qubit operand");
    }
    GateOp op{shape.kind, qubits.back()};
    for (int i = 0; i < shape.qubits - 1; ++i) op.controls[i] = qubits[i];
    // SWAP stores its second qubit in controls[0] but has no control
    // semantics; the builder convention is (target = first, controls[0] =
    // second), either order works.
    for (int i = 0; i < shape.params; ++i) {
      if (!(ls >> op.params[i])) fail("missing parameter");
    }
    double extra;
    if (ls >> extra) fail("trailing tokens");
    try {
      circuit.append(op);
    } catch (const std::exception& e) {
      fail(e.what());
    }
  }
  return circuit;
}

Circuit circuit_from_text(const std::string& text) {
  std::istringstream is(text);
  return parse_circuit(is);
}

}  // namespace cqs::qsim
