#include "qsim/fusion.hpp"

#include <vector>

namespace cqs::qsim {
namespace {

bool is_fusable(const GateOp& op) {
  return op.kind != GateKind::kSwap && op.num_controls() == 0;
}

}  // namespace

Circuit fuse_single_qubit_gates(const Circuit& circuit, FusionStats* stats,
                                std::vector<std::size_t>* origin_counts) {
  Circuit fused(circuit.num_qubits());
  if (origin_counts != nullptr) origin_counts->clear();
  // Pending run per qubit: accumulated matrix + run length.
  struct Pending {
    Mat2 m{{1, 0}, {0, 0}, {0, 0}, {1, 0}};
    std::size_t run = 0;
    GateOp first{};  // re-emitted verbatim when the run stays length 1
  };
  std::vector<Pending> pending(circuit.num_qubits());
  FusionStats local;
  local.gates_before = circuit.size();

  auto emit = [&](const GateOp& op, std::size_t origins) {
    fused.append(op);
    if (origin_counts != nullptr) origin_counts->push_back(origins);
  };
  auto flush = [&](int q) {
    Pending& p = pending[q];
    if (p.run == 0) return;
    if (p.run == 1) {
      // Keep the original op: it may be diagonal, which the compressed
      // simulator exploits for cheaper routing.
      emit(p.first, 1);
    } else {
      emit(decompose_unitary(p.m, q), p.run);
      ++local.fused_runs;
    }
    p = Pending{};
  };

  for (const GateOp& op : circuit.ops()) {
    if (is_fusable(op)) {
      Pending& p = pending[op.target];
      p.m = gate_matrix(op) * p.m;  // later gate multiplies on the left
      if (p.run == 0) p.first = op;
      ++p.run;
      continue;
    }
    // Controlled / structural op: flush every qubit it touches.
    flush(op.target);
    for (int c : op.controls) {
      if (c >= 0) flush(c);
    }
    emit(op, 1);
  }
  for (int q = 0; q < circuit.num_qubits(); ++q) flush(q);

  local.gates_after = fused.size();
  if (stats != nullptr) *stats = local;
  return fused;
}

}  // namespace cqs::qsim
