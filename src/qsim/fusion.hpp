// Single-qubit gate fusion — a standard Intel-QS-style circuit
// optimization that matters even more under compression: every gate costs
// a decompress + recompress sweep of the state (Figure 2), so merging
// runs of single-qubit gates on the same target into one fused unitary
// directly removes whole compression passes.
#pragma once

#include "qsim/circuit.hpp"

namespace cqs::qsim {

struct FusionStats {
  std::size_t gates_before = 0;
  std::size_t gates_after = 0;
  std::size_t fused_runs = 0;  ///< runs of >= 2 gates merged
};

/// Fuses maximal runs of uncontrolled single-qubit gates that act on the
/// same qubit with no intervening op touching that qubit. Each run of
/// length >= 2 becomes one kU3G op (exact, including global phase);
/// everything else is passed through unchanged.
///
/// When `origin_counts` is non-null it receives one entry per op of the
/// returned circuit: how many ops of the input circuit that op stands for
/// (1 for passthrough, run length for a fused kU3G). The gate-run
/// scheduler uses this to keep the simulator's gate cursor counting in
/// original-circuit units across the fusion pre-pass.
Circuit fuse_single_qubit_gates(const Circuit& circuit,
                                FusionStats* stats = nullptr,
                                std::vector<std::size_t>* origin_counts =
                                    nullptr);

}  // namespace cqs::qsim
