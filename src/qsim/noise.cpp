#include "qsim/noise.hpp"

namespace cqs::qsim {
namespace {

GateKind random_pauli(Rng& rng) {
  switch (rng.next_below(3)) {
    case 0: return GateKind::kX;
    case 1: return GateKind::kY;
    default: return GateKind::kZ;
  }
}

}  // namespace

Circuit sample_noisy_trajectory(const Circuit& circuit,
                                const NoiseModel& model, Rng& rng,
                                TrajectoryStats& stats) {
  Circuit noisy(circuit.num_qubits());
  stats = {};
  for (const GateOp& op : circuit.ops()) {
    noisy.append(op);
    const bool two_qubit = op.num_controls() > 0 ||
                           op.kind == GateKind::kSwap;
    if (two_qubit) {
      if (model.p2 > 0.0 && rng.next_double() < model.p2) {
        noisy.append({random_pauli(rng), op.target});
        const int other =
            op.controls[0] >= 0 ? op.controls[0] : op.target;
        if (other != op.target) noisy.append({random_pauli(rng), other});
        ++stats.two_qubit_errors;
      }
    } else if (model.p1 > 0.0 && rng.next_double() < model.p1) {
      noisy.append({random_pauli(rng), op.target});
      ++stats.single_qubit_errors;
    }
  }
  return noisy;
}

Circuit sample_noisy_trajectory(const Circuit& circuit,
                                const NoiseModel& model, Rng& rng) {
  TrajectoryStats stats;
  return sample_noisy_trajectory(circuit, model, rng, stats);
}

}  // namespace cqs::qsim
