#include "qsim/gates.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define CQS_KERNELS_AVX2 1
#include <immintrin.h>
#endif
#if defined(__aarch64__)
#define CQS_KERNELS_NEON 1
#include <arm_neon.h>
#endif

namespace cqs::qsim {
namespace {

constexpr double kInvSqrt2 = 0.7071067811865475244;

Mat2 u3_matrix(double theta, double phi, double lambda) {
  const double c = std::cos(theta / 2);
  const double s = std::sin(theta / 2);
  return {Amplitude(c, 0.0), -std::polar(s, lambda),
          std::polar(s, phi), std::polar(c, phi + lambda)};
}

}  // namespace

bool Mat2::approx_unitary(double tol) const {
  const Mat2 product = *this * adjoint();
  return std::abs(product.u00 - Amplitude(1, 0)) < tol &&
         std::abs(product.u01) < tol && std::abs(product.u10) < tol &&
         std::abs(product.u11 - Amplitude(1, 0)) < tol;
}

Mat2 gate_matrix(const GateOp& op) {
  using namespace std::complex_literals;
  const double theta = op.params[0];
  switch (op.kind) {
    case GateKind::kH:
      return {kInvSqrt2, kInvSqrt2, kInvSqrt2, -kInvSqrt2};
    case GateKind::kX:
    case GateKind::kCX:
    case GateKind::kCCX:
      return {0, 1, 1, 0};
    case GateKind::kY:
      return {0, -1i, 1i, 0};
    case GateKind::kZ:
    case GateKind::kCZ:
      return {1, 0, 0, -1};
    case GateKind::kS:
      return {1, 0, 0, 1i};
    case GateKind::kSdg:
      return {1, 0, 0, -1i};
    case GateKind::kT:
      return {1, 0, 0, std::polar(1.0, std::numbers::pi / 4)};
    case GateKind::kTdg:
      return {1, 0, 0, std::polar(1.0, -std::numbers::pi / 4)};
    case GateKind::kRx:
      return {std::cos(theta / 2), -1i * std::sin(theta / 2),
              -1i * std::sin(theta / 2), std::cos(theta / 2)};
    case GateKind::kRy:
      return {std::cos(theta / 2), -std::sin(theta / 2), std::sin(theta / 2),
              std::cos(theta / 2)};
    case GateKind::kRz:
      return {std::polar(1.0, -theta / 2), 0, 0, std::polar(1.0, theta / 2)};
    case GateKind::kPhase:
    case GateKind::kCPhase:
      return {1, 0, 0, std::polar(1.0, theta)};
    case GateKind::kU3:
      return u3_matrix(op.params[0], op.params[1], op.params[2]);
    case GateKind::kSqrtX:
      return {Amplitude(0.5, 0.5), Amplitude(0.5, -0.5), Amplitude(0.5, -0.5),
              Amplitude(0.5, 0.5)};
    case GateKind::kSqrtY:
      return {Amplitude(0.5, 0.5), Amplitude(-0.5, -0.5),
              Amplitude(0.5, 0.5), Amplitude(0.5, 0.5)};
    case GateKind::kSqrtW:
      // sqrt(W) with W = (X + Y)/sqrt(2); Google supremacy gate set.
      // Derived by diagonalizing W = [[0, e^{-i pi/4}], [e^{i pi/4}, 0]].
      return {Amplitude(0.5, 0.5), Amplitude(0.0, -kInvSqrt2),
              Amplitude(kInvSqrt2, 0.0), Amplitude(0.5, 0.5)};
    case GateKind::kSwap:
      return {1, 0, 0, 1};  // structural; never applied as a 2x2
    case GateKind::kU3G: {
      const Mat2 base =
          u3_matrix(op.params[0], op.params[1], op.params[2]);
      const Amplitude phase = std::polar(1.0, op.params[3]);
      return {phase * base.u00, phase * base.u01, phase * base.u10,
              phase * base.u11};
    }
  }
  throw std::invalid_argument("gate_matrix: unknown gate kind");
}

GateOp decompose_unitary(const Mat2& m, int target) {
  // Write m = e^{i alpha} [[c, -e^{i lambda} s], [e^{i phi} s,
  // e^{i (phi + lambda)} c]] with c = cos(theta/2), s = sin(theta/2).
  const double c = std::abs(m.u00);
  const double s = std::abs(m.u10);
  const double theta = 2.0 * std::atan2(s, c);
  double alpha;
  double phi;
  double lambda;
  if (c > 1e-12) {
    alpha = std::arg(m.u00);
    phi = s > 1e-12 ? std::arg(m.u10) - alpha : 0.0;
    lambda = std::arg(m.u11) - alpha - phi;
  } else {
    // theta = pi: u00 = u11 = 0; pick lambda = 0.
    lambda = 0.0;
    alpha = std::arg(-m.u01);
    phi = std::arg(m.u10) - alpha;
  }
  return {GateKind::kU3G, target, {-1, -1}, {theta, phi, lambda, alpha}};
}

std::string gate_name(GateKind kind) {
  switch (kind) {
    case GateKind::kH: return "h";
    case GateKind::kX: return "x";
    case GateKind::kY: return "y";
    case GateKind::kZ: return "z";
    case GateKind::kS: return "s";
    case GateKind::kSdg: return "sdg";
    case GateKind::kT: return "t";
    case GateKind::kTdg: return "tdg";
    case GateKind::kRx: return "rx";
    case GateKind::kRy: return "ry";
    case GateKind::kRz: return "rz";
    case GateKind::kPhase: return "p";
    case GateKind::kU3: return "u3";
    case GateKind::kU3G: return "u3g";
    case GateKind::kSqrtX: return "sx";
    case GateKind::kSqrtY: return "sy";
    case GateKind::kSqrtW: return "sw";
    case GateKind::kCX: return "cx";
    case GateKind::kCZ: return "cz";
    case GateKind::kCPhase: return "cp";
    case GateKind::kSwap: return "swap";
    case GateKind::kCCX: return "ccx";
  }
  return "?";
}

bool is_diagonal(GateKind kind) {
  switch (kind) {
    case GateKind::kZ:
    case GateKind::kS:
    case GateKind::kSdg:
    case GateKind::kT:
    case GateKind::kTdg:
    case GateKind::kRz:
    case GateKind::kPhase:
    case GateKind::kCZ:
    case GateKind::kCPhase:
      return true;
    default:
      return false;
  }
}

// ---------------------------------------------------------------------------
// Apply kernels. The scalar loops below are the reference semantics; the
// SIMD paths reproduce them operation-for-operation. std::complex multiply
// on finite inputs lowers to (a.re*c.re - a.im*c.im, a.re*c.im + a.im*c.re)
// with no fusion, and IEEE-754 add/multiply are bitwise commutative on
// non-NaN values, so issuing the same products through mul/add/sub/addsub
// vector instructions (never FMA) yields bit-identical results.
// ---------------------------------------------------------------------------

namespace {

void scale_scalar(Amplitude* amps, std::uint64_t count, Amplitude factor,
                  std::uint64_t ctrl) {
  for (std::uint64_t i = 0; i < count; ++i) {
    if ((i & ctrl) != ctrl) continue;
    amps[i] *= factor;
  }
}

void diag_scalar(Amplitude* amps, std::uint64_t count, const Mat2& m,
                 std::uint64_t target_bit, std::uint64_t ctrl) {
  for (std::uint64_t i = 0; i < count; ++i) {
    if ((i & ctrl) != ctrl) continue;
    amps[i] *= (i & target_bit) ? m.u11 : m.u00;
  }
}

void mix_scalar(Amplitude* amps, std::uint64_t count, const Mat2& m,
                std::uint64_t stride, std::uint64_t ctrl) {
  for (std::uint64_t base = 0; base < count; base += 2 * stride) {
    for (std::uint64_t i = base; i < base + stride; ++i) {
      if ((i & ctrl) != ctrl) continue;
      const Amplitude a0 = amps[i];
      const Amplitude a1 = amps[i + stride];
      amps[i] = m.u00 * a0 + m.u01 * a1;
      amps[i + stride] = m.u10 * a0 + m.u11 * a1;
    }
  }
}

void pair_scalar(Amplitude* a0, Amplitude* a1, std::uint64_t count,
                 const Mat2& m, std::uint64_t ctrl) {
  for (std::uint64_t i = 0; i < count; ++i) {
    if ((i & ctrl) != ctrl) continue;
    const Amplitude x = a0[i];
    const Amplitude y = a1[i];
    a0[i] = m.u00 * x + m.u01 * y;
    a1[i] = m.u10 * x + m.u11 * y;
  }
}

#if defined(CQS_KERNELS_AVX2)

// Two complexes per __m256d: [c0.re, c0.im, c1.re, c1.im]. `re`/`im` carry
// the per-lane coefficient components; addsub gives (re-part subtract,
// im-part add) exactly as the scalar formula.
__attribute__((target("avx2"))) inline __m256d cmul2(__m256d v, __m256d re,
                                                     __m256d im) {
  const __m256d swapped = _mm256_permute_pd(v, 0b0101);
  return _mm256_addsub_pd(_mm256_mul_pd(v, re), _mm256_mul_pd(swapped, im));
}

__attribute__((target("avx2"))) void scale_avx2(Amplitude* amps,
                                                std::uint64_t count,
                                                Amplitude factor) {
  double* d = reinterpret_cast<double*>(amps);
  const __m256d re = _mm256_set1_pd(factor.real());
  const __m256d im = _mm256_set1_pd(factor.imag());
  std::uint64_t i = 0;
  for (; i + 2 <= count; i += 2) {
    _mm256_storeu_pd(d + 2 * i, cmul2(_mm256_loadu_pd(d + 2 * i), re, im));
  }
  for (; i < count; ++i) amps[i] *= factor;
}

__attribute__((target("avx2"))) void diag_avx2(Amplitude* amps,
                                               std::uint64_t count,
                                               const Mat2& m,
                                               std::uint64_t target_bit) {
  double* d = reinterpret_cast<double*>(amps);
  if (target_bit == 1) {
    // Factors alternate per amplitude: lanes [u00, u00, u11, u11].
    const __m256d re = _mm256_set_pd(m.u11.real(), m.u11.real(),
                                     m.u00.real(), m.u00.real());
    const __m256d im = _mm256_set_pd(m.u11.imag(), m.u11.imag(),
                                     m.u00.imag(), m.u00.imag());
    std::uint64_t i = 0;
    for (; i + 2 <= count; i += 2) {
      _mm256_storeu_pd(d + 2 * i, cmul2(_mm256_loadu_pd(d + 2 * i), re, im));
    }
    for (; i < count; ++i) amps[i] *= (i & target_bit) ? m.u11 : m.u00;
    return;
  }
  // Runs of target_bit amplitudes share a factor; target_bit >= 2 is even,
  // so each run is whole vectors.
  const __m256d re00 = _mm256_set1_pd(m.u00.real());
  const __m256d im00 = _mm256_set1_pd(m.u00.imag());
  const __m256d re11 = _mm256_set1_pd(m.u11.real());
  const __m256d im11 = _mm256_set1_pd(m.u11.imag());
  const std::uint64_t group = 2 * target_bit;
  const std::uint64_t full = count - count % group;
  for (std::uint64_t base = 0; base < full; base += group) {
    for (std::uint64_t i = base; i < base + target_bit; i += 2) {
      _mm256_storeu_pd(d + 2 * i,
                       cmul2(_mm256_loadu_pd(d + 2 * i), re00, im00));
    }
    for (std::uint64_t i = base + target_bit; i < base + group; i += 2) {
      _mm256_storeu_pd(d + 2 * i,
                       cmul2(_mm256_loadu_pd(d + 2 * i), re11, im11));
    }
  }
  for (std::uint64_t i = full; i < count; ++i) {
    amps[i] *= (i & target_bit) ? m.u11 : m.u00;
  }
}

__attribute__((target("avx2"))) void mix_avx2(Amplitude* amps,
                                              std::uint64_t count,
                                              const Mat2& m,
                                              std::uint64_t stride) {
  double* d = reinterpret_cast<double*>(amps);
  if (stride == 1) {
    // Pairs are adjacent: one vector holds (a0, a1); split it into
    // broadcast halves and combine with row-interleaved coefficients so
    // lanes 0-1 get u00*a0 + u01*a1 and lanes 2-3 get u10*a0 + u11*a1.
    const __m256d reA = _mm256_set_pd(m.u10.real(), m.u10.real(),
                                      m.u00.real(), m.u00.real());
    const __m256d imA = _mm256_set_pd(m.u10.imag(), m.u10.imag(),
                                      m.u00.imag(), m.u00.imag());
    const __m256d reB = _mm256_set_pd(m.u11.real(), m.u11.real(),
                                      m.u01.real(), m.u01.real());
    const __m256d imB = _mm256_set_pd(m.u11.imag(), m.u11.imag(),
                                      m.u01.imag(), m.u01.imag());
    for (std::uint64_t i = 0; i < count; i += 2) {
      const __m256d v = _mm256_loadu_pd(d + 2 * i);
      const __m256d a0 = _mm256_permute2f128_pd(v, v, 0x00);
      const __m256d a1 = _mm256_permute2f128_pd(v, v, 0x11);
      _mm256_storeu_pd(
          d + 2 * i, _mm256_add_pd(cmul2(a0, reA, imA), cmul2(a1, reB, imB)));
    }
    return;
  }
  const __m256d re00 = _mm256_set1_pd(m.u00.real());
  const __m256d im00 = _mm256_set1_pd(m.u00.imag());
  const __m256d re01 = _mm256_set1_pd(m.u01.real());
  const __m256d im01 = _mm256_set1_pd(m.u01.imag());
  const __m256d re10 = _mm256_set1_pd(m.u10.real());
  const __m256d im10 = _mm256_set1_pd(m.u10.imag());
  const __m256d re11 = _mm256_set1_pd(m.u11.real());
  const __m256d im11 = _mm256_set1_pd(m.u11.imag());
  for (std::uint64_t base = 0; base < count; base += 2 * stride) {
    for (std::uint64_t i = base; i < base + stride; i += 2) {
      const __m256d v0 = _mm256_loadu_pd(d + 2 * i);
      const __m256d v1 = _mm256_loadu_pd(d + 2 * (i + stride));
      _mm256_storeu_pd(d + 2 * i, _mm256_add_pd(cmul2(v0, re00, im00),
                                                cmul2(v1, re01, im01)));
      _mm256_storeu_pd(d + 2 * (i + stride),
                       _mm256_add_pd(cmul2(v0, re10, im10),
                                     cmul2(v1, re11, im11)));
    }
  }
}

__attribute__((target("avx2"))) void pair_avx2(Amplitude* a0, Amplitude* a1,
                                               std::uint64_t count,
                                               const Mat2& m) {
  double* x = reinterpret_cast<double*>(a0);
  double* y = reinterpret_cast<double*>(a1);
  const __m256d re00 = _mm256_set1_pd(m.u00.real());
  const __m256d im00 = _mm256_set1_pd(m.u00.imag());
  const __m256d re01 = _mm256_set1_pd(m.u01.real());
  const __m256d im01 = _mm256_set1_pd(m.u01.imag());
  const __m256d re10 = _mm256_set1_pd(m.u10.real());
  const __m256d im10 = _mm256_set1_pd(m.u10.imag());
  const __m256d re11 = _mm256_set1_pd(m.u11.real());
  const __m256d im11 = _mm256_set1_pd(m.u11.imag());
  std::uint64_t i = 0;
  for (; i + 2 <= count; i += 2) {
    const __m256d v0 = _mm256_loadu_pd(x + 2 * i);
    const __m256d v1 = _mm256_loadu_pd(y + 2 * i);
    _mm256_storeu_pd(x + 2 * i, _mm256_add_pd(cmul2(v0, re00, im00),
                                              cmul2(v1, re01, im01)));
    _mm256_storeu_pd(y + 2 * i, _mm256_add_pd(cmul2(v0, re10, im10),
                                              cmul2(v1, re11, im11)));
  }
  for (; i < count; ++i) {
    const Amplitude vx = a0[i];
    const Amplitude vy = a1[i];
    a0[i] = m.u00 * vx + m.u01 * vy;
    a1[i] = m.u10 * vx + m.u11 * vy;
  }
}

#endif  // CQS_KERNELS_AVX2

#if defined(CQS_KERNELS_NEON)

// One complex per float64x2_t. `im` holds (-c.im, c.im): a + (-b) is
// bitwise a - b and a product with a negated factor is exactly the negated
// product, so this matches the scalar formula bit-for-bit without FMA
// (gates.cpp builds with -ffp-contract=off so vmulq/vaddq never fuse).
inline float64x2_t cmul1(float64x2_t v, float64x2_t re, float64x2_t im) {
  const float64x2_t swapped = vextq_f64(v, v, 1);
  return vaddq_f64(vmulq_f64(v, re), vmulq_f64(swapped, im));
}

inline float64x2_t coeff_re(Amplitude c) { return vdupq_n_f64(c.real()); }
inline float64x2_t coeff_im(Amplitude c) {
  return (float64x2_t){-c.imag(), c.imag()};
}

void scale_neon(Amplitude* amps, std::uint64_t count, Amplitude factor) {
  double* d = reinterpret_cast<double*>(amps);
  const float64x2_t re = coeff_re(factor);
  const float64x2_t im = coeff_im(factor);
  for (std::uint64_t i = 0; i < count; ++i) {
    vst1q_f64(d + 2 * i, cmul1(vld1q_f64(d + 2 * i), re, im));
  }
}

void diag_neon(Amplitude* amps, std::uint64_t count, const Mat2& m,
               std::uint64_t target_bit) {
  double* d = reinterpret_cast<double*>(amps);
  const float64x2_t re00 = coeff_re(m.u00), im00 = coeff_im(m.u00);
  const float64x2_t re11 = coeff_re(m.u11), im11 = coeff_im(m.u11);
  for (std::uint64_t i = 0; i < count; ++i) {
    const bool hi = (i & target_bit) != 0;
    vst1q_f64(d + 2 * i, cmul1(vld1q_f64(d + 2 * i), hi ? re11 : re00,
                               hi ? im11 : im00));
  }
}

void mix_neon(Amplitude* amps, std::uint64_t count, const Mat2& m,
              std::uint64_t stride) {
  double* d = reinterpret_cast<double*>(amps);
  const float64x2_t re00 = coeff_re(m.u00), im00 = coeff_im(m.u00);
  const float64x2_t re01 = coeff_re(m.u01), im01 = coeff_im(m.u01);
  const float64x2_t re10 = coeff_re(m.u10), im10 = coeff_im(m.u10);
  const float64x2_t re11 = coeff_re(m.u11), im11 = coeff_im(m.u11);
  for (std::uint64_t base = 0; base < count; base += 2 * stride) {
    for (std::uint64_t i = base; i < base + stride; ++i) {
      const float64x2_t v0 = vld1q_f64(d + 2 * i);
      const float64x2_t v1 = vld1q_f64(d + 2 * (i + stride));
      vst1q_f64(d + 2 * i,
                vaddq_f64(cmul1(v0, re00, im00), cmul1(v1, re01, im01)));
      vst1q_f64(d + 2 * (i + stride),
                vaddq_f64(cmul1(v0, re10, im10), cmul1(v1, re11, im11)));
    }
  }
}

void pair_neon(Amplitude* a0, Amplitude* a1, std::uint64_t count,
               const Mat2& m) {
  double* x = reinterpret_cast<double*>(a0);
  double* y = reinterpret_cast<double*>(a1);
  const float64x2_t re00 = coeff_re(m.u00), im00 = coeff_im(m.u00);
  const float64x2_t re01 = coeff_re(m.u01), im01 = coeff_im(m.u01);
  const float64x2_t re10 = coeff_re(m.u10), im10 = coeff_im(m.u10);
  const float64x2_t re11 = coeff_re(m.u11), im11 = coeff_im(m.u11);
  for (std::uint64_t i = 0; i < count; ++i) {
    const float64x2_t v0 = vld1q_f64(x + 2 * i);
    const float64x2_t v1 = vld1q_f64(y + 2 * i);
    vst1q_f64(x + 2 * i,
              vaddq_f64(cmul1(v0, re00, im00), cmul1(v1, re01, im01)));
    vst1q_f64(y + 2 * i,
              vaddq_f64(cmul1(v0, re10, im10), cmul1(v1, re11, im11)));
  }
}

#endif  // CQS_KERNELS_NEON

}  // namespace

const char* kernel_backend_name(KernelBackend backend) {
  switch (backend) {
    case KernelBackend::kScalar: return "scalar";
    case KernelBackend::kAvx2: return "avx2";
    case KernelBackend::kNeon: return "neon";
  }
  return "?";
}

KernelBackend detect_kernel_backend(bool enable_simd) {
  if (!enable_simd) return KernelBackend::kScalar;
#if defined(CQS_KERNELS_AVX2)
  if (__builtin_cpu_supports("avx2")) return KernelBackend::kAvx2;
#elif defined(CQS_KERNELS_NEON)
  return KernelBackend::kNeon;
#endif
  return KernelBackend::kScalar;
}

void scale_kernel(Amplitude* amps, std::uint64_t count, Amplitude factor,
                  std::uint64_t ctrl, KernelBackend backend) {
  if (ctrl != 0 || count < 2) backend = KernelBackend::kScalar;
  switch (backend) {
#if defined(CQS_KERNELS_AVX2)
    case KernelBackend::kAvx2:
      scale_avx2(amps, count, factor);
      return;
#endif
#if defined(CQS_KERNELS_NEON)
    case KernelBackend::kNeon:
      scale_neon(amps, count, factor);
      return;
#endif
    default:
      break;
  }
  scale_scalar(amps, count, factor, ctrl);
}

void diag_kernel(Amplitude* amps, std::uint64_t count, const Mat2& m,
                 std::uint64_t target_bit, std::uint64_t ctrl,
                 KernelBackend backend) {
  if (ctrl != 0 || count < 2) backend = KernelBackend::kScalar;
  switch (backend) {
#if defined(CQS_KERNELS_AVX2)
    case KernelBackend::kAvx2:
      diag_avx2(amps, count, m, target_bit);
      return;
#endif
#if defined(CQS_KERNELS_NEON)
    case KernelBackend::kNeon:
      diag_neon(amps, count, m, target_bit);
      return;
#endif
    default:
      break;
  }
  diag_scalar(amps, count, m, target_bit, ctrl);
}

void mix_kernel(Amplitude* amps, std::uint64_t count, const Mat2& m,
                std::uint64_t target_bit, std::uint64_t ctrl,
                KernelBackend backend) {
  if (count == 0 || target_bit == 0 || count % (2 * target_bit) != 0) return;
  if (ctrl != 0) backend = KernelBackend::kScalar;
  switch (backend) {
#if defined(CQS_KERNELS_AVX2)
    case KernelBackend::kAvx2:
      mix_avx2(amps, count, m, target_bit);
      return;
#endif
#if defined(CQS_KERNELS_NEON)
    case KernelBackend::kNeon:
      mix_neon(amps, count, m, target_bit);
      return;
#endif
    default:
      break;
  }
  mix_scalar(amps, count, m, target_bit, ctrl);
}

void pair_kernel(Amplitude* a0, Amplitude* a1, std::uint64_t count,
                 const Mat2& m, std::uint64_t ctrl, KernelBackend backend) {
  if (ctrl != 0 || count < 2) backend = KernelBackend::kScalar;
  switch (backend) {
#if defined(CQS_KERNELS_AVX2)
    case KernelBackend::kAvx2:
      pair_avx2(a0, a1, count, m);
      return;
#endif
#if defined(CQS_KERNELS_NEON)
    case KernelBackend::kNeon:
      pair_neon(a0, a1, count, m);
      return;
#endif
    default:
      break;
  }
  pair_scalar(a0, a1, count, m, ctrl);
}

}  // namespace cqs::qsim
