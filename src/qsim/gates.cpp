#include "qsim/gates.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace cqs::qsim {
namespace {

constexpr double kInvSqrt2 = 0.7071067811865475244;

Mat2 u3_matrix(double theta, double phi, double lambda) {
  const double c = std::cos(theta / 2);
  const double s = std::sin(theta / 2);
  return {Amplitude(c, 0.0), -std::polar(s, lambda),
          std::polar(s, phi), std::polar(c, phi + lambda)};
}

}  // namespace

bool Mat2::approx_unitary(double tol) const {
  const Mat2 product = *this * adjoint();
  return std::abs(product.u00 - Amplitude(1, 0)) < tol &&
         std::abs(product.u01) < tol && std::abs(product.u10) < tol &&
         std::abs(product.u11 - Amplitude(1, 0)) < tol;
}

Mat2 gate_matrix(const GateOp& op) {
  using namespace std::complex_literals;
  const double theta = op.params[0];
  switch (op.kind) {
    case GateKind::kH:
      return {kInvSqrt2, kInvSqrt2, kInvSqrt2, -kInvSqrt2};
    case GateKind::kX:
    case GateKind::kCX:
    case GateKind::kCCX:
      return {0, 1, 1, 0};
    case GateKind::kY:
      return {0, -1i, 1i, 0};
    case GateKind::kZ:
    case GateKind::kCZ:
      return {1, 0, 0, -1};
    case GateKind::kS:
      return {1, 0, 0, 1i};
    case GateKind::kSdg:
      return {1, 0, 0, -1i};
    case GateKind::kT:
      return {1, 0, 0, std::polar(1.0, std::numbers::pi / 4)};
    case GateKind::kTdg:
      return {1, 0, 0, std::polar(1.0, -std::numbers::pi / 4)};
    case GateKind::kRx:
      return {std::cos(theta / 2), -1i * std::sin(theta / 2),
              -1i * std::sin(theta / 2), std::cos(theta / 2)};
    case GateKind::kRy:
      return {std::cos(theta / 2), -std::sin(theta / 2), std::sin(theta / 2),
              std::cos(theta / 2)};
    case GateKind::kRz:
      return {std::polar(1.0, -theta / 2), 0, 0, std::polar(1.0, theta / 2)};
    case GateKind::kPhase:
    case GateKind::kCPhase:
      return {1, 0, 0, std::polar(1.0, theta)};
    case GateKind::kU3:
      return u3_matrix(op.params[0], op.params[1], op.params[2]);
    case GateKind::kSqrtX:
      return {Amplitude(0.5, 0.5), Amplitude(0.5, -0.5), Amplitude(0.5, -0.5),
              Amplitude(0.5, 0.5)};
    case GateKind::kSqrtY:
      return {Amplitude(0.5, 0.5), Amplitude(-0.5, -0.5),
              Amplitude(0.5, 0.5), Amplitude(0.5, 0.5)};
    case GateKind::kSqrtW:
      // sqrt(W) with W = (X + Y)/sqrt(2); Google supremacy gate set.
      // Derived by diagonalizing W = [[0, e^{-i pi/4}], [e^{i pi/4}, 0]].
      return {Amplitude(0.5, 0.5), Amplitude(0.0, -kInvSqrt2),
              Amplitude(kInvSqrt2, 0.0), Amplitude(0.5, 0.5)};
    case GateKind::kSwap:
      return {1, 0, 0, 1};  // structural; never applied as a 2x2
    case GateKind::kU3G: {
      const Mat2 base =
          u3_matrix(op.params[0], op.params[1], op.params[2]);
      const Amplitude phase = std::polar(1.0, op.params[3]);
      return {phase * base.u00, phase * base.u01, phase * base.u10,
              phase * base.u11};
    }
  }
  throw std::invalid_argument("gate_matrix: unknown gate kind");
}

GateOp decompose_unitary(const Mat2& m, int target) {
  // Write m = e^{i alpha} [[c, -e^{i lambda} s], [e^{i phi} s,
  // e^{i (phi + lambda)} c]] with c = cos(theta/2), s = sin(theta/2).
  const double c = std::abs(m.u00);
  const double s = std::abs(m.u10);
  const double theta = 2.0 * std::atan2(s, c);
  double alpha;
  double phi;
  double lambda;
  if (c > 1e-12) {
    alpha = std::arg(m.u00);
    phi = s > 1e-12 ? std::arg(m.u10) - alpha : 0.0;
    lambda = std::arg(m.u11) - alpha - phi;
  } else {
    // theta = pi: u00 = u11 = 0; pick lambda = 0.
    lambda = 0.0;
    alpha = std::arg(-m.u01);
    phi = std::arg(m.u10) - alpha;
  }
  return {GateKind::kU3G, target, {-1, -1}, {theta, phi, lambda, alpha}};
}

std::string gate_name(GateKind kind) {
  switch (kind) {
    case GateKind::kH: return "h";
    case GateKind::kX: return "x";
    case GateKind::kY: return "y";
    case GateKind::kZ: return "z";
    case GateKind::kS: return "s";
    case GateKind::kSdg: return "sdg";
    case GateKind::kT: return "t";
    case GateKind::kTdg: return "tdg";
    case GateKind::kRx: return "rx";
    case GateKind::kRy: return "ry";
    case GateKind::kRz: return "rz";
    case GateKind::kPhase: return "p";
    case GateKind::kU3: return "u3";
    case GateKind::kU3G: return "u3g";
    case GateKind::kSqrtX: return "sx";
    case GateKind::kSqrtY: return "sy";
    case GateKind::kSqrtW: return "sw";
    case GateKind::kCX: return "cx";
    case GateKind::kCZ: return "cz";
    case GateKind::kCPhase: return "cp";
    case GateKind::kSwap: return "swap";
    case GateKind::kCCX: return "ccx";
  }
  return "?";
}

bool is_diagonal(GateKind kind) {
  switch (kind) {
    case GateKind::kZ:
    case GateKind::kS:
    case GateKind::kSdg:
    case GateKind::kT:
    case GateKind::kTdg:
    case GateKind::kRz:
    case GateKind::kPhase:
    case GateKind::kCZ:
    case GateKind::kCPhase:
      return true;
    default:
      return false;
  }
}

}  // namespace cqs::qsim
