#include "qsim/circuit.hpp"

#include <algorithm>
#include <map>
#include <sstream>
#include <stdexcept>

namespace cqs::qsim {

Circuit::Circuit(int num_qubits) : num_qubits_(num_qubits) {
  if (num_qubits < 1 || num_qubits > 62) {
    throw std::invalid_argument("Circuit: qubit count must be in [1, 62]");
  }
}

Circuit& Circuit::append(GateOp op) {
  auto check = [this](int q) {
    if (q < 0 || q >= num_qubits_) {
      throw std::out_of_range("Circuit: qubit index out of range");
    }
  };
  check(op.target);
  for (int c : op.controls) {
    if (c >= 0) {
      check(c);
      if (c == op.target) {
        throw std::invalid_argument("Circuit: control equals target");
      }
    }
  }
  if (op.controls[0] >= 0 && op.controls[0] == op.controls[1]) {
    throw std::invalid_argument("Circuit: duplicate control");
  }
  ops_.push_back(op);
  return *this;
}

Circuit& Circuit::rx(int q, double theta) {
  return append({GateKind::kRx, q, {-1, -1}, {theta, 0, 0}});
}
Circuit& Circuit::ry(int q, double theta) {
  return append({GateKind::kRy, q, {-1, -1}, {theta, 0, 0}});
}
Circuit& Circuit::rz(int q, double theta) {
  return append({GateKind::kRz, q, {-1, -1}, {theta, 0, 0}});
}
Circuit& Circuit::phase(int q, double theta) {
  return append({GateKind::kPhase, q, {-1, -1}, {theta, 0, 0}});
}
Circuit& Circuit::u3(int q, double theta, double phi, double lambda) {
  return append({GateKind::kU3, q, {-1, -1}, {theta, phi, lambda}});
}
Circuit& Circuit::cx(int control, int target) {
  return append({GateKind::kCX, target, {control, -1}});
}
Circuit& Circuit::cz(int control, int target) {
  return append({GateKind::kCZ, target, {control, -1}});
}
Circuit& Circuit::cphase(int control, int target, double theta) {
  return append({GateKind::kCPhase, target, {control, -1}, {theta, 0, 0}});
}
Circuit& Circuit::swap(int a, int b) {
  return append({GateKind::kSwap, a, {b, -1}});
}
Circuit& Circuit::ccx(int c0, int c1, int target) {
  return append({GateKind::kCCX, target, {c0, c1}});
}

int Circuit::depth() const {
  std::vector<int> qubit_depth(num_qubits_, 0);
  int depth = 0;
  for (const GateOp& op : ops_) {
    int level = qubit_depth[op.target];
    for (int c : op.controls) {
      if (c >= 0) level = std::max(level, qubit_depth[c]);
    }
    ++level;
    qubit_depth[op.target] = level;
    for (int c : op.controls) {
      if (c >= 0) qubit_depth[c] = level;
    }
    depth = std::max(depth, level);
  }
  return depth;
}

std::vector<std::pair<std::string, std::size_t>> Circuit::gate_histogram()
    const {
  std::map<std::string, std::size_t> counts;
  for (const GateOp& op : ops_) ++counts[gate_name(op.kind)];
  return {counts.begin(), counts.end()};
}

std::string Circuit::to_string() const {
  std::ostringstream os;
  for (const GateOp& op : ops_) {
    os << gate_name(op.kind);
    for (int c : op.controls) {
      if (c >= 0) os << ' ' << c;
    }
    os << ' ' << op.target;
    if (op.kind == GateKind::kRx || op.kind == GateKind::kRy ||
        op.kind == GateKind::kRz || op.kind == GateKind::kPhase ||
        op.kind == GateKind::kCPhase) {
      os << " (" << op.params[0] << ")";
    } else if (op.kind == GateKind::kU3) {
      os << " (" << op.params[0] << ", " << op.params[1] << ", "
         << op.params[2] << ")";
    }
    os << '\n';
  }
  return os.str();
}

}  // namespace cqs::qsim
