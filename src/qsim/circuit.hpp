// Circuit IR: an ordered list of GateOps over n qubits plus a fluent
// builder API. Circuits are the unit handed to both the dense reference
// simulator and the compressed simulator.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "qsim/gates.hpp"

namespace cqs::qsim {

class Circuit {
 public:
  explicit Circuit(int num_qubits);

  int num_qubits() const { return num_qubits_; }
  const std::vector<GateOp>& ops() const { return ops_; }
  std::size_t size() const { return ops_.size(); }

  /// Appends a pre-built op; validates qubit indices.
  Circuit& append(GateOp op);

  // Single-qubit gates.
  Circuit& h(int q) { return append({GateKind::kH, q}); }
  Circuit& x(int q) { return append({GateKind::kX, q}); }
  Circuit& y(int q) { return append({GateKind::kY, q}); }
  Circuit& z(int q) { return append({GateKind::kZ, q}); }
  Circuit& s(int q) { return append({GateKind::kS, q}); }
  Circuit& sdg(int q) { return append({GateKind::kSdg, q}); }
  Circuit& t(int q) { return append({GateKind::kT, q}); }
  Circuit& tdg(int q) { return append({GateKind::kTdg, q}); }
  Circuit& sx(int q) { return append({GateKind::kSqrtX, q}); }
  Circuit& sy(int q) { return append({GateKind::kSqrtY, q}); }
  Circuit& sw(int q) { return append({GateKind::kSqrtW, q}); }
  Circuit& rx(int q, double theta);
  Circuit& ry(int q, double theta);
  Circuit& rz(int q, double theta);
  Circuit& phase(int q, double theta);
  Circuit& u3(int q, double theta, double phi, double lambda);

  // Two-qubit gates.
  Circuit& cx(int control, int target);
  Circuit& cz(int control, int target);
  Circuit& cphase(int control, int target, double theta);
  Circuit& swap(int a, int b);

  // Three-qubit.
  Circuit& ccx(int c0, int c1, int target);

  /// Circuit depth: number of layers when ops are greedily packed so no
  /// layer touches a qubit twice.
  int depth() const;

  /// Gates by mnemonic, e.g. {"h": 5, "cx": 4}.
  std::vector<std::pair<std::string, std::size_t>> gate_histogram() const;

  /// Multi-line textual rendering (one op per line).
  std::string to_string() const;

 private:
  int num_qubits_;
  std::vector<GateOp> ops_;
};

}  // namespace cqs::qsim
