// Stochastic Pauli noise — the Section 6 future-work direction: "we could
// further adapt our lossy compression errors to noise models and then
// build a simulation which models noise naturally". This module provides
// the conventional side of that comparison: Monte-Carlo trajectory noise,
// where each gate is followed by a random Pauli error with the channel's
// probability. The bench_noise_study binary then compares the fidelity
// decay of (a) gate noise at probability p against (b) lossy compression
// at error level delta.
#pragma once

#include <cstdint>

#include "common/rng.hpp"
#include "qsim/circuit.hpp"

namespace cqs::qsim {

struct NoiseModel {
  /// Depolarizing probability after each single-qubit gate: with
  /// probability p1 one of {X, Y, Z} (uniform) is applied to the target.
  double p1 = 0.0;
  /// After each two-qubit gate: with probability p2 a uniform non-identity
  /// Pauli pair acts on control and target (approximated by independent
  /// single-qubit Paulis on each).
  double p2 = 0.0;
};

/// One noise trajectory: a copy of `circuit` with stochastic Pauli errors
/// inserted per the model. Different rng states give different
/// trajectories; averaging observables over trajectories approximates the
/// noisy channel.
Circuit sample_noisy_trajectory(const Circuit& circuit,
                                const NoiseModel& model, Rng& rng);

/// Number of error ops inserted by the last call (diagnostic aid).
struct TrajectoryStats {
  std::size_t single_qubit_errors = 0;
  std::size_t two_qubit_errors = 0;
};

Circuit sample_noisy_trajectory(const Circuit& circuit,
                                const NoiseModel& model, Rng& rng,
                                TrajectoryStats& stats);

}  // namespace cqs::qsim
