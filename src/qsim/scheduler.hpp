// Block-local gate-run scheduler. The compressed simulator pays one
// decompress -> apply -> recompress round per touched block per gate; when
// consecutive gates all route to the offset segment of the amplitude index
// (Figure 3's intra-block case), every block can instead be decompressed
// once, have the whole run applied in scratch, and be recompressed once —
// one codec pass (and one lossy fidelity pass) per run instead of per
// gate. This pass partitions a circuit into maximal such runs,
// interleaved with single-gate items for gates that touch the block or
// rank segments, and composes single-qubit gate fusion as a pre-pass.
#pragma once

#include <cstddef>
#include <vector>

#include "qsim/circuit.hpp"
#include "qsim/fusion.hpp"

namespace cqs::qsim {

struct SchedulerOptions {
  /// Qubits with index < intra_qubits address amplitudes within one block
  /// (the partition's offset segment). A gate is block-local when its
  /// target and every control fall below this line.
  int intra_qubits = 0;

  /// Cap on scheduled ops per run (0 = unlimited). Shorter runs trade
  /// batching for more frequent memory-budget checks between codec passes.
  std::size_t max_run_length = 0;

  /// Run fuse_single_qubit_gates before forming runs.
  bool fuse = true;
};

/// One schedule item: `count` consecutive ops of the scheduled circuit
/// starting at `first`. Block-local items may hold many ops; items that
/// touch the block or rank segments always hold exactly one.
struct GateRun {
  std::size_t first = 0;
  std::size_t count = 0;
  /// Ops of the *source* circuit this item stands for (fusion can fold
  /// several source gates into one scheduled op). Summed over all items
  /// this equals the source circuit's size, which is what keeps the
  /// simulator's resume cursor counting in source-circuit units.
  std::size_t source_gates = 0;
  bool block_local = false;
};

struct ScheduleStats {
  std::size_t block_local_runs = 0;  ///< items applied as one codec pass
  std::size_t batched_ops = 0;       ///< scheduled ops inside those items
  std::size_t single_items = 0;      ///< block/rank-segment items
  std::size_t longest_run = 0;
  FusionStats fusion;                ///< zeroed when options.fuse is false
};

/// True when every qubit `op` touches lies in the offset segment, so the
/// gate can join a block-local run. SWAP qualifies when both of its qubits
/// do (the simulator expands it into three intra-block CX applications).
bool is_block_local(const GateOp& op, int intra_qubits);

class Schedule {
 public:
  /// The scheduled (post-fusion) circuit the run indices refer to.
  const Circuit& circuit() const { return circuit_; }
  const std::vector<GateRun>& runs() const { return runs_; }
  const ScheduleStats& stats() const { return stats_; }

 private:
  friend Schedule build_schedule(const Circuit&, const SchedulerOptions&);
  explicit Schedule(Circuit circuit) : circuit_(std::move(circuit)) {}

  Circuit circuit_;
  std::vector<GateRun> runs_;
  ScheduleStats stats_;
};

/// Builds the run partition of `circuit`. Every op of the (post-fusion)
/// circuit belongs to exactly one GateRun, runs preserve program order,
/// and block-local runs are maximal under options.max_run_length.
Schedule build_schedule(const Circuit& circuit,
                        const SchedulerOptions& options);

}  // namespace cqs::qsim
