// Block-local gate-run scheduler. The compressed simulator pays one
// decompress -> apply -> recompress round per touched block per gate; when
// consecutive gates all route to the offset segment of the amplitude index
// (Figure 3's intra-block case), every block can instead be decompressed
// once, have the whole run applied in scratch, and be recompressed once —
// one codec pass (and one lossy fidelity pass) per run instead of per
// gate. This pass partitions a circuit into maximal such runs,
// interleaved with single-gate items for gates that touch the block or
// rank segments, and composes single-qubit gate fusion as a pre-pass.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "qsim/circuit.hpp"
#include "qsim/fusion.hpp"
#include "runtime/qubit_map.hpp"

namespace cqs::qsim {

struct SchedulerOptions {
  /// Qubits with index < intra_qubits address amplitudes within one block
  /// (the partition's offset segment). A gate is block-local when its
  /// target and every control fall below this line.
  int intra_qubits = 0;

  /// Cap on scheduled ops per run (0 = unlimited). Shorter runs trade
  /// batching for more frequent memory-budget checks between codec passes.
  std::size_t max_run_length = 0;

  /// Run fuse_single_qubit_gates before forming runs.
  bool fuse = true;
};

/// One schedule item: `count` consecutive ops of the scheduled circuit
/// starting at `first`. Block-local items may hold many ops; items that
/// touch the block or rank segments always hold exactly one.
struct GateRun {
  std::size_t first = 0;
  std::size_t count = 0;
  /// Ops of the *source* circuit this item stands for (fusion can fold
  /// several source gates into one scheduled op). Summed over all items
  /// this equals the source circuit's size, which is what keeps the
  /// simulator's resume cursor counting in source-circuit units.
  std::size_t source_gates = 0;
  bool block_local = false;
};

struct ScheduleStats {
  std::size_t block_local_runs = 0;  ///< items applied as one codec pass
  std::size_t batched_ops = 0;       ///< scheduled ops inside those items
  std::size_t single_items = 0;      ///< block/rank-segment items
  std::size_t longest_run = 0;
  FusionStats fusion;                ///< zeroed when options.fuse is false
};

/// True when every qubit `op` touches lies in the offset segment, so the
/// gate can join a block-local run. SWAP qualifies when both of its qubits
/// do (the simulator expands it into three intra-block CX applications).
bool is_block_local(const GateOp& op, int intra_qubits);

class Schedule {
 public:
  /// The scheduled (post-fusion) circuit the run indices refer to.
  const Circuit& circuit() const { return circuit_; }
  const std::vector<GateRun>& runs() const { return runs_; }
  const ScheduleStats& stats() const { return stats_; }

 private:
  friend Schedule build_schedule(const Circuit&, const SchedulerOptions&,
                                 const std::vector<std::size_t>*);
  explicit Schedule(Circuit circuit) : circuit_(std::move(circuit)) {}

  Circuit circuit_;
  std::vector<GateRun> runs_;
  ScheduleStats stats_;
};

/// The future block order of one block-local run: every (rank, block)
/// unit the run will touch, in the deterministic order the pipeline's
/// prefetch stage decodes them. Block-local runs touch every block of
/// every rank exactly once, rank-major — this is what lets the scheduler
/// feed the double-buffered pipeline its prefetch list up front.
std::vector<std::pair<int, int>> run_block_order(int num_ranks,
                                                 int blocks_per_rank);

/// The next `lookahead` units of `order` after (and excluding) position
/// `cursor` — the readahead window the out-of-core tier advises while the
/// unit at `cursor` is being processed. Clamped at the end of the order;
/// a cursor at or past the end yields an empty window.
std::vector<std::pair<int, int>> upcoming_units(
    const std::vector<std::pair<int, int>>& order, std::size_t cursor,
    std::size_t lookahead);

/// Builds the run partition of `circuit`. Every op of the (post-fusion)
/// circuit belongs to exactly one GateRun, runs preserve program order,
/// and block-local runs are maximal under options.max_run_length.
///
/// When `origin_counts` is non-null the circuit is taken as already
/// processed (the remap pre-pass fuses before planning so segment
/// boundaries cannot change which gates fuse): options.fuse is ignored,
/// no fusion runs, and each op's source-gate weight is read from the
/// array, which must hold one entry per op.
Schedule build_schedule(const Circuit& circuit,
                        const SchedulerOptions& options,
                        const std::vector<std::size_t>* origin_counts =
                            nullptr);

// ---------------------------------------------------------------------------
// Remap pre-pass: logical->physical rewriting + cross-rank avoidance.
//
// The simulator stores amplitudes in a physical layout described by a
// runtime::QubitMap. Before gates are scheduled into runs, this pass walks
// the logical circuit in order and
//   - rewrites every op's qubits through the evolving map,
//   - absorbs SWAP gates into the map as free relabels (optional),
//   - and, when a non-diagonal gate's physical target lands in the rank
//     segment (the only case that forces compressed-block exchanges
//     through Comm), either emits a RemapStep — one physical exchange
//     sweep that trades the hot rank position for a cold offset-segment
//     position — or proves paying the single exchange in place is cheaper
//     (the gate is the qubit's last non-diagonal touch).
// Diagonal gates and gates whose rank-segment involvement is control-only
// are routed locally by the simulator already and never trigger a remap.
// ---------------------------------------------------------------------------

enum class RemapPolicy {
  /// Uses full knowledge of the remaining circuit: a hot rank target
  /// remaps only when a truly cold offset resident exists (zero remaining
  /// non-diagonal target uses, preferring the fewest-then-furthest
  /// candidate), so every emitted remap deletes all of the hot qubit's
  /// future exchange sweeps and adds none; otherwise — including for a
  /// last-touch gate — the single sweep is paid in place, which is never
  /// worse than the identity layout. Deterministic given (map, remaining
  /// ops), so a checkpoint-resumed suffix plans exactly like the
  /// uninterrupted run planned its tail.
  kLookahead,
  /// Classic Intel-QS behavior: always remap a hot rank target, evicting
  /// the least-recently-used offset resident. Uses only past knowledge.
  kLru,
};

RemapPolicy parse_remap_policy(const std::string& name);

/// `op` with every qubit rewritten through `map`: the target and any
/// non-negative control (SWAP's second qubit lives in controls[0], so it
/// is covered). Shared by the remap pre-pass and the simulator's ad-hoc
/// apply() so the two translation paths cannot diverge.
GateOp translated_through(const GateOp& op, const runtime::QubitMap& map);

struct RemapOptions {
  /// When false, the pass only rewrites ops through the map (needed
  /// whenever the map is non-identity, e.g. after a v4 checkpoint resume)
  /// and emits no remaps or relabels.
  bool enabled = false;
  RemapPolicy policy = RemapPolicy::kLookahead;
  /// Absorb SWAP gates into the map instead of expanding them into three
  /// CX sweeps. Semantically exact; skips the X-kernel arithmetic, so
  /// signed zeros in moved amplitudes can differ from the expanded path.
  bool relabel_swaps = true;
  int num_qubits = 0;
  int offset_bits = 0;  ///< physical [0, offset_bits) = block-local
  int block_bits = 0;   ///< next block_bits = same-rank; rest = rank segment
};

/// One physical exchange sweep: every block pair across rank bit
/// `phys_hot` swaps its offset-bit-`phys_cold` halves, after which the
/// logical occupants of the two positions have traded places.
struct RemapStep {
  int phys_hot = 0;   ///< rank-segment physical position being vacated
  int phys_cold = 0;  ///< offset-segment physical position moving up
};

struct RemapStats {
  std::size_t remaps = 0;            ///< RemapSteps emitted
  std::size_t swaps_relabeled = 0;   ///< SWAP gates absorbed into the map
  /// Non-diagonal gates whose *logical* target sits in the rank segment
  /// (they would pay an exchange sweep under the identity layout) that
  /// executed block- or rank-locally thanks to the map.
  std::size_t rank_targets_localized = 0;
  /// Non-diagonal gates that still executed with a rank-segment physical
  /// target (last-touch in-place applications and unavoidable residue).
  std::size_t rank_targets_in_place = 0;
  /// Exchange *sweeps* the identity layout would have paid that the
  /// remapped program does not (relabeled swap legs included, emitted
  /// RemapSteps already deducted). Multiply by block-pairs-per-sweep for
  /// the exchange count.
  std::size_t sweeps_avoided = 0;
};

/// The remapped program: executed strictly in order by the simulator,
/// which mirrors every kRemap/kRelabel item into its persistent map.
struct RemapItem {
  enum class Kind { kRemap, kRelabel, kGates };
  Kind kind = Kind::kGates;
  RemapStep remap{};                    ///< kRemap
  int relabel_a = 0, relabel_b = 0;     ///< kRelabel: logical qubit pair
  std::size_t relabel_source_gates = 1;  ///< kRelabel: cursor weight
  /// kGates: physical-index ops. (Initialized to a 1-qubit placeholder;
  /// Circuit refuses zero-qubit construction.)
  Circuit ops{1};
  /// kGates: source-gate weight per op (all 1 unless the caller fused the
  /// circuit before planning and passed origin counts).
  std::vector<std::size_t> source_gates;
};

struct RemapProgram {
  std::vector<RemapItem> items;
  RemapStats stats;
};

/// Plans the remapped form of `circuit` starting from `map`. `last_use` /
/// `tick` carry the kLru recency state across calls (both may be null for
/// kLookahead); `last_use` must have one entry per logical qubit.
/// `origin_counts` (one entry per op) carries source-gate weights when the
/// caller fused the circuit first; null means every op weighs 1.
RemapProgram plan_remaps(const Circuit& circuit,
                         const runtime::QubitMap& map,
                         const RemapOptions& options,
                         std::vector<std::uint64_t>* last_use = nullptr,
                         std::uint64_t* tick = nullptr,
                         const std::vector<std::size_t>* origin_counts =
                             nullptr);

}  // namespace cqs::qsim
