// Dense full-state (Schrödinger) simulator: the uncompressed reference the
// compressed simulator is validated against, and the generator of the
// qaoa_N / sup_N datasets used throughout Section 4's compression study.
//
// Amplitude indexing convention (matches Section 3.1): qubit k corresponds
// to bit k of the amplitude index; applying a single-qubit gate to qubit k
// transforms every amplitude pair whose indices differ only in bit k.
#pragma once

#include <complex>
#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.hpp"
#include "qsim/circuit.hpp"
#include "qsim/gates.hpp"

namespace cqs::qsim {

class StateVector {
 public:
  /// Initializes to |0...0>.
  explicit StateVector(int num_qubits);

  int num_qubits() const { return num_qubits_; }
  std::size_t size() const { return amplitudes_.size(); }

  std::span<const Amplitude> amplitudes() const { return amplitudes_; }
  std::span<Amplitude> amplitudes() { return amplitudes_; }

  /// Raw doubles view (re/im interleaved) — the layout blocks are
  /// compressed in.
  std::span<const double> raw() const;

  Amplitude amplitude(std::uint64_t basis_state) const {
    return amplitudes_[basis_state];
  }

  void apply(const GateOp& op);
  void apply_circuit(const Circuit& circuit);

  /// Probability that qubit q measures |1>.
  double probability_one(int qubit) const;

  /// All 2^n basis-state probabilities (use only for small n).
  std::vector<double> probabilities() const;

  /// Projective measurement of one qubit; collapses and renormalizes.
  /// Returns the outcome (0 or 1).
  int measure(int qubit, Rng& rng);

  /// Samples a full basis state without collapsing.
  std::uint64_t sample(Rng& rng) const;

  /// Sum of squared magnitudes (should stay 1 under unitary evolution).
  double norm() const;

  /// Pure-state fidelity |<this|other>| (Eq. 9).
  double fidelity(const StateVector& other) const;

  /// L2 renormalization (used after lossy perturbations in tests).
  void normalize();

 private:
  void apply_single(int target, const Mat2& m);
  void apply_controlled(std::uint64_t control_mask, int target,
                        const Mat2& m);
  void apply_swap(int a, int b);

  int num_qubits_;
  std::vector<Amplitude> amplitudes_;
};

/// |<a|b>| for raw interleaved re/im arrays of equal length; shared with
/// the compressed simulator's fidelity measurement.
double state_fidelity(std::span<const double> a, std::span<const double> b);

}  // namespace cqs::qsim
