// Gate kinds, 2x2 unitary materialization, and the gate-operation record
// that circuits are made of. General single-qubit gates plus two-qubit
// controlled gates are universal (Section 2.1); Toffoli is kept as a
// first-class op because Grover oracles are built from X and Toffoli.
#pragma once

#include <array>
#include <complex>
#include <cstdint>
#include <string>
#include <vector>

namespace cqs::qsim {

using Amplitude = std::complex<double>;

/// Row-major 2x2 complex matrix.
struct Mat2 {
  Amplitude u00, u01, u10, u11;

  Mat2 operator*(const Mat2& rhs) const {
    return {u00 * rhs.u00 + u01 * rhs.u10, u00 * rhs.u01 + u01 * rhs.u11,
            u10 * rhs.u00 + u11 * rhs.u10, u10 * rhs.u01 + u11 * rhs.u11};
  }

  Mat2 adjoint() const {
    return {std::conj(u00), std::conj(u10), std::conj(u01), std::conj(u11)};
  }

  bool approx_unitary(double tol = 1e-12) const;
};

enum class GateKind : std::uint8_t {
  kH,
  kX,
  kY,
  kZ,
  kS,
  kSdg,
  kT,
  kTdg,
  kRx,      // exp(-i theta X / 2)
  kRy,
  kRz,
  kPhase,   // diag(1, e^{i theta})
  kU3,      // general single-qubit gate, params (theta, phi, lambda)
  kSqrtX,   // sqrt(X), used by supremacy circuits
  kSqrtY,
  kSqrtW,   // sqrt(W), W = (X+Y)/sqrt(2), supremacy gate set
  kCX,
  kCZ,
  kCPhase,  // controlled diag(1, e^{i theta})
  kSwap,
  kCCX,     // Toffoli
  kU3G,     // U3 with a global phase: e^{i alpha} U3(theta, phi, lambda);
            // produced by the gate-fusion pass, params (theta, phi,
            // lambda, alpha)
};

/// One circuit operation. `target` is always the qubit the 2x2 unitary acts
/// on; `controls` holds 0, 1, or 2 control qubits (CCX has 2). SWAP is the
/// only op without a single target unitary; it stores its qubits in
/// target/controls[0].
struct GateOp {
  GateKind kind;
  int target = 0;
  std::array<int, 2> controls = {-1, -1};
  std::array<double, 4> params = {0.0, 0.0, 0.0, 0.0};

  int num_controls() const {
    return (controls[0] >= 0 ? 1 : 0) + (controls[1] >= 0 ? 1 : 0);
  }
};

/// Decomposes an arbitrary 2x2 unitary into a kU3G op on `target`:
/// m = e^{i alpha} U3(theta, phi, lambda). Exact (including global phase).
GateOp decompose_unitary(const Mat2& m, int target);

/// The 2x2 unitary a GateOp applies to its target (identity for SWAP,
/// which is handled structurally).
Mat2 gate_matrix(const GateOp& op);

/// Human-readable mnemonic, e.g. "h", "cx", "rz".
std::string gate_name(GateKind kind);

/// True for gates that are diagonal in the computational basis (their
/// application never mixes amplitude pairs; used by the simulator for
/// cheaper routing).
bool is_diagonal(GateKind kind);

// --- Block apply kernels (scalar reference + runtime-dispatched SIMD) ---
//
// Every kernel is bit-exact across backends: the vector paths perform the
// same multiplies and adds in the same order as the scalar reference (no
// FMA, no reassociation — gates.cpp is compiled with -ffp-contract=off),
// so lossy bitstreams and golden states cannot move when dispatch picks a
// wider ISA. The scalar path IS the semantics; simd_kernel_test pins the
// vector paths to it byte-for-byte.

enum class KernelBackend : std::uint8_t { kScalar, kAvx2, kNeon };

/// "scalar" | "avx2" | "neon" — the report's `simd_kernel` line.
const char* kernel_backend_name(KernelBackend backend);

/// The widest backend both compiled in and supported by the running CPU;
/// kScalar when `enable_simd` is false.
KernelBackend detect_kernel_backend(bool enable_simd);

/// amps[i] *= factor for every i with (i & ctrl) == ctrl.
void scale_kernel(Amplitude* amps, std::uint64_t count, Amplitude factor,
                  std::uint64_t ctrl, KernelBackend backend);

/// Diagonal 2x2: amps[i] *= (i & target_bit) ? m.u11 : m.u00 for every i
/// passing the control mask. `target_bit` is a power of two.
void diag_kernel(Amplitude* amps, std::uint64_t count, const Mat2& m,
                 std::uint64_t target_bit, std::uint64_t ctrl,
                 KernelBackend backend);

/// Strided 2x2 mixing of pairs (i, i + target_bit) within one buffer
/// (Figure 1's classic loop). `target_bit` is a power of two and `count` a
/// multiple of 2 * target_bit; the control mask may use any index bits.
void mix_kernel(Amplitude* amps, std::uint64_t count, const Mat2& m,
                std::uint64_t target_bit, std::uint64_t ctrl,
                KernelBackend backend);

/// 2x2 mixing across two buffers at equal offsets — the cross-block /
/// cross-rank pair shape (Figure 2's Vector_x / Vector_y).
void pair_kernel(Amplitude* a0, Amplitude* a1, std::uint64_t count,
                 const Mat2& m, std::uint64_t ctrl, KernelBackend backend);

}  // namespace cqs::qsim
