#include "qsim/state_vector.hpp"

#include <cmath>
#include <stdexcept>

namespace cqs::qsim {

StateVector::StateVector(int num_qubits) : num_qubits_(num_qubits) {
  if (num_qubits < 1 || num_qubits > 30) {
    throw std::invalid_argument(
        "StateVector: dense reference supports 1..30 qubits");
  }
  amplitudes_.assign(std::uint64_t{1} << num_qubits, Amplitude(0, 0));
  amplitudes_[0] = Amplitude(1, 0);
}

std::span<const double> StateVector::raw() const {
  return {reinterpret_cast<const double*>(amplitudes_.data()),
          amplitudes_.size() * 2};
}

void StateVector::apply_single(int target, const Mat2& m) {
  // The dense reference deliberately stays on the scalar kernel: it is the
  // ground truth the SIMD backends are pinned byte-for-byte against.
  mix_kernel(amplitudes_.data(), amplitudes_.size(), m,
             std::uint64_t{1} << target, 0, KernelBackend::kScalar);
}

void StateVector::apply_controlled(std::uint64_t control_mask, int target,
                                   const Mat2& m) {
  mix_kernel(amplitudes_.data(), amplitudes_.size(), m,
             std::uint64_t{1} << target, control_mask,
             KernelBackend::kScalar);
}

void StateVector::apply_swap(int a, int b) {
  if (a == b) return;
  const std::uint64_t bit_a = std::uint64_t{1} << a;
  const std::uint64_t bit_b = std::uint64_t{1} << b;
  const std::uint64_t n = amplitudes_.size();
  for (std::uint64_t i = 0; i < n; ++i) {
    // Swap amplitudes between ...a=1,b=0... and ...a=0,b=1... once.
    if ((i & bit_a) != 0 && (i & bit_b) == 0) {
      std::swap(amplitudes_[i], amplitudes_[(i ^ bit_a) | bit_b]);
    }
  }
}

void StateVector::apply(const GateOp& op) {
  if (op.kind == GateKind::kSwap) {
    apply_swap(op.target, op.controls[0]);
    return;
  }
  std::uint64_t control_mask = 0;
  for (int c : op.controls) {
    if (c >= 0) control_mask |= std::uint64_t{1} << c;
  }
  const Mat2 m = gate_matrix(op);
  if (control_mask == 0) {
    apply_single(op.target, m);
  } else {
    apply_controlled(control_mask, op.target, m);
  }
}

void StateVector::apply_circuit(const Circuit& circuit) {
  if (circuit.num_qubits() != num_qubits_) {
    throw std::invalid_argument("apply_circuit: qubit count mismatch");
  }
  for (const GateOp& op : circuit.ops()) apply(op);
}

double StateVector::probability_one(int qubit) const {
  const std::uint64_t bit = std::uint64_t{1} << qubit;
  double p = 0.0;
  for (std::uint64_t i = 0; i < amplitudes_.size(); ++i) {
    if ((i & bit) != 0) p += std::norm(amplitudes_[i]);
  }
  return p;
}

std::vector<double> StateVector::probabilities() const {
  std::vector<double> probs(amplitudes_.size());
  for (std::uint64_t i = 0; i < amplitudes_.size(); ++i) {
    probs[i] = std::norm(amplitudes_[i]);
  }
  return probs;
}

int StateVector::measure(int qubit, Rng& rng) {
  const double p1 = probability_one(qubit);
  const int outcome = rng.next_double() < p1 ? 1 : 0;
  const std::uint64_t bit = std::uint64_t{1} << qubit;
  const double keep_prob = outcome == 1 ? p1 : 1.0 - p1;
  const double scale = keep_prob > 0.0 ? 1.0 / std::sqrt(keep_prob) : 0.0;
  for (std::uint64_t i = 0; i < amplitudes_.size(); ++i) {
    const bool is_one = (i & bit) != 0;
    if (is_one == (outcome == 1)) {
      amplitudes_[i] *= scale;
    } else {
      amplitudes_[i] = Amplitude(0, 0);
    }
  }
  return outcome;
}

std::uint64_t StateVector::sample(Rng& rng) const {
  double r = rng.next_double();
  for (std::uint64_t i = 0; i < amplitudes_.size(); ++i) {
    r -= std::norm(amplitudes_[i]);
    if (r <= 0.0) return i;
  }
  return amplitudes_.size() - 1;
}

double StateVector::norm() const {
  double n = 0.0;
  for (const Amplitude& a : amplitudes_) n += std::norm(a);
  return n;
}

double StateVector::fidelity(const StateVector& other) const {
  if (other.size() != size()) {
    throw std::invalid_argument("fidelity: size mismatch");
  }
  Amplitude inner(0, 0);
  for (std::uint64_t i = 0; i < amplitudes_.size(); ++i) {
    inner += std::conj(amplitudes_[i]) * other.amplitudes_[i];
  }
  return std::abs(inner);
}

void StateVector::normalize() {
  const double n = std::sqrt(norm());
  if (n == 0.0) return;
  for (Amplitude& a : amplitudes_) a /= n;
}

double state_fidelity(std::span<const double> a, std::span<const double> b) {
  if (a.size() != b.size() || a.size() % 2 != 0) {
    throw std::invalid_argument("state_fidelity: bad sizes");
  }
  double re = 0.0;
  double im = 0.0;
  for (std::size_t i = 0; i < a.size(); i += 2) {
    // conj(a) * b accumulated component-wise.
    re += a[i] * b[i] + a[i + 1] * b[i + 1];
    im += a[i] * b[i + 1] - a[i + 1] * b[i];
  }
  return std::hypot(re, im);
}

}  // namespace cqs::qsim
