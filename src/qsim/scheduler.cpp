#include "qsim/scheduler.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <utility>

namespace cqs::qsim {

bool is_block_local(const GateOp& op, int intra_qubits) {
  if (op.kind == GateKind::kSwap) {
    // SWAP stores its two qubits in target/controls[0] and expands into
    // three CX applications; it is block-local iff both qubits are.
    return op.target < intra_qubits && op.controls[0] < intra_qubits;
  }
  if (op.target >= intra_qubits) return false;
  for (int c : op.controls) {
    if (c >= intra_qubits) return false;
  }
  return true;
}

std::vector<std::pair<int, int>> run_block_order(int num_ranks,
                                                 int blocks_per_rank) {
  std::vector<std::pair<int, int>> order;
  order.reserve(static_cast<std::size_t>(num_ranks) * blocks_per_rank);
  for (int r = 0; r < num_ranks; ++r) {
    for (int b = 0; b < blocks_per_rank; ++b) order.emplace_back(r, b);
  }
  return order;
}

std::vector<std::pair<int, int>> upcoming_units(
    const std::vector<std::pair<int, int>>& order, std::size_t cursor,
    std::size_t lookahead) {
  std::vector<std::pair<int, int>> window;
  if (cursor >= order.size()) return window;
  const std::size_t begin = cursor + 1;
  const std::size_t end = std::min(order.size(), begin + lookahead);
  window.reserve(end > begin ? end - begin : 0);
  for (std::size_t i = begin; i < end; ++i) window.push_back(order[i]);
  return window;
}

Schedule build_schedule(const Circuit& circuit,
                        const SchedulerOptions& options,
                        const std::vector<std::size_t>* origin_counts) {
  if (options.intra_qubits < 0) {
    throw std::invalid_argument("build_schedule: negative intra_qubits");
  }
  if (origin_counts != nullptr && origin_counts->size() != circuit.size()) {
    throw std::invalid_argument(
        "build_schedule: origin counts must cover every op");
  }
  FusionStats fusion;
  std::vector<std::size_t> origins;
  const bool fuse_here = options.fuse && origin_counts == nullptr;
  Schedule schedule(fuse_here
                        ? fuse_single_qubit_gates(circuit, &fusion, &origins)
                        : circuit);
  if (origin_counts != nullptr) {
    origins = *origin_counts;
  } else if (!fuse_here) {
    origins.assign(circuit.size(), 1);
  }
  schedule.stats_.fusion = fusion;

  const auto& ops = schedule.circuit_.ops();
  GateRun current;  // open block-local run (count == 0 when closed)
  auto close = [&] {
    if (current.count == 0) return;
    schedule.runs_.push_back(current);
    ++schedule.stats_.block_local_runs;
    schedule.stats_.batched_ops += current.count;
    schedule.stats_.longest_run =
        std::max(schedule.stats_.longest_run, current.count);
    current = GateRun{};
  };

  for (std::size_t i = 0; i < ops.size(); ++i) {
    if (is_block_local(ops[i], options.intra_qubits)) {
      if (current.count == 0) {
        current = GateRun{.first = i, .count = 0, .source_gates = 0,
                          .block_local = true};
      }
      ++current.count;
      current.source_gates += origins[i];
      if (options.max_run_length > 0 &&
          current.count >= options.max_run_length) {
        close();
      }
      continue;
    }
    close();
    schedule.runs_.push_back(GateRun{.first = i, .count = 1,
                                     .source_gates = origins[i],
                                     .block_local = false});
    ++schedule.stats_.single_items;
  }
  close();
  return schedule;
}

RemapPolicy parse_remap_policy(const std::string& name) {
  if (name == "lookahead") return RemapPolicy::kLookahead;
  if (name == "lru") return RemapPolicy::kLru;
  throw std::invalid_argument(
      "remap policy must be 'lookahead' or 'lru', got '" + name + "'");
}

GateOp translated_through(const GateOp& op, const runtime::QubitMap& map) {
  GateOp out = op;
  out.target = map.physical(op.target);
  for (int& c : out.controls) {
    if (c >= 0) c = map.physical(c);
  }
  return out;
}

namespace {

constexpr std::size_t kNever = std::numeric_limits<std::size_t>::max();

/// Positions at which each logical qubit is the target of a non-diagonal
/// gate — the only events that can force an exchange sweep and therefore
/// the only ones the lookahead policy plans around. SWAP counts for both
/// of its qubits unless relabeling makes it free.
struct TargetEvents {
  std::vector<std::vector<std::size_t>> at;  // per logical qubit, ascending
  std::vector<std::size_t> next;             // scan cursor per qubit

  TargetEvents(const Circuit& circuit, const RemapOptions& options)
      : at(options.num_qubits), next(options.num_qubits, 0) {
    const auto& ops = circuit.ops();
    for (std::size_t i = 0; i < ops.size(); ++i) {
      const GateOp& op = ops[i];
      if (op.kind == GateKind::kSwap) {
        if (!options.relabel_swaps) {
          at[op.target].push_back(i);
          at[op.controls[0]].push_back(i);
        }
        continue;
      }
      if (!is_diagonal(op.kind)) at[op.target].push_back(i);
    }
  }

  /// First event of `logical` strictly after position `i` (kNever if none).
  std::size_t next_after(int logical, std::size_t i) {
    auto& cursor = next[logical];
    const auto& events = at[logical];
    while (cursor < events.size() && events[cursor] <= i) ++cursor;
    return cursor < events.size() ? events[cursor] : kNever;
  }

  /// Events of `logical` strictly after position `i` — the sweeps the
  /// qubit would pay over the rest of the circuit if it sat at rank the
  /// whole time, which is the lookahead policy's cost proxy.
  std::size_t remaining_after(int logical, std::size_t i) {
    next_after(logical, i);  // advance the cursor past <= i
    return at[logical].size() - next[logical];
  }
};

/// Exchange sweeps the identity (remap-off) layout pays for one logical
/// op: one per non-diagonal rank-segment target, with SWAP expanded into
/// its three CX legs (targets b, a, b).
std::size_t identity_sweeps(const GateOp& op, int rank_start) {
  if (op.kind == GateKind::kSwap) {
    std::size_t sweeps = 0;
    if (op.controls[0] >= rank_start) sweeps += 2;
    if (op.target >= rank_start) sweeps += 1;
    return sweeps;
  }
  return !is_diagonal(op.kind) && op.target >= rank_start ? 1 : 0;
}

}  // namespace

RemapProgram plan_remaps(const Circuit& circuit,
                         const runtime::QubitMap& map,
                         const RemapOptions& options,
                         std::vector<std::uint64_t>* last_use,
                         std::uint64_t* tick,
                         const std::vector<std::size_t>* origin_counts) {
  if (options.num_qubits != circuit.num_qubits() ||
      options.num_qubits != map.size()) {
    throw std::invalid_argument("plan_remaps: qubit count mismatch");
  }
  if (origin_counts != nullptr && origin_counts->size() != circuit.size()) {
    throw std::invalid_argument(
        "plan_remaps: origin counts must cover every op");
  }
  if (options.offset_bits < 1 ||
      options.offset_bits + options.block_bits > options.num_qubits) {
    throw std::invalid_argument("plan_remaps: bad segment split");
  }
  const int rank_start = options.offset_bits + options.block_bits;
  const bool lru = options.policy == RemapPolicy::kLru;
  if (options.enabled && lru &&
      (last_use == nullptr || tick == nullptr ||
       last_use->size() != static_cast<std::size_t>(options.num_qubits))) {
    throw std::invalid_argument("plan_remaps: lru policy needs recency state");
  }

  RemapProgram program;
  runtime::QubitMap working = map;
  TargetEvents events(circuit, options);

  auto append_gate = [&](const GateOp& op, std::size_t weight) {
    if (program.items.empty() ||
        program.items.back().kind != RemapItem::Kind::kGates) {
      RemapItem item;
      item.kind = RemapItem::Kind::kGates;
      item.ops = Circuit(options.num_qubits);
      program.items.push_back(std::move(item));
    }
    program.items.back().ops.append(op);
    program.items.back().source_gates.push_back(weight);
  };

  /// Best eviction victim: the offset-segment physical position whose
  /// logical occupant would pay the fewest future sweeps at rank —
  /// lookahead minimizes the remaining non-diagonal target count (dead
  /// qubits first), with the furthest next use breaking ties; LRU takes
  /// the least recently touched. Remaining ties break toward the lowest
  /// physical position so plans are deterministic.
  struct Victim {
    int position = -1;  ///< -1: no eligible candidate
    std::size_t remaining = 0;  ///< future sweeps the victim would pay
    std::size_t next_use = 0;
  };
  auto pick_cold = [&](std::size_t i, int exclude_logical = -1) {
    Victim best;
    bool have = false;
    std::uint64_t best_age = 0;
    for (int p = 0; p < options.offset_bits; ++p) {
      const int resident = working.logical(p);
      if (resident == exclude_logical) continue;
      if (lru) {
        const std::uint64_t age = (*last_use)[resident];
        if (!have || age < best_age) {
          best.position = p;
          best_age = age;
          have = true;
        }
      } else {
        const std::size_t remaining = events.remaining_after(resident, i);
        const std::size_t when = events.next_after(resident, i);
        if (!have || remaining < best.remaining ||
            (remaining == best.remaining && when > best.next_use)) {
          best.position = p;
          best.remaining = remaining;
          best.next_use = when;
          have = true;
        }
      }
    }
    return best;
  };

  auto emit_remap = [&](int phys_hot, int phys_cold) {
    RemapItem item;
    item.kind = RemapItem::Kind::kRemap;
    item.remap = RemapStep{phys_hot, phys_cold};
    working.swap_physical(item.remap.phys_hot, item.remap.phys_cold);
    program.items.push_back(item);
    ++program.stats.remaps;
  };

  std::size_t gross_avoided = 0;
  std::size_t added_cost = 0;
  const auto& ops = circuit.ops();
  for (std::size_t i = 0; i < ops.size(); ++i) {
    const GateOp& op = ops[i];
    const std::size_t weight =
        origin_counts != nullptr ? (*origin_counts)[i] : 1;
    if (options.enabled && lru) {
      ++*tick;
      (*last_use)[op.target] = *tick;
      for (int c : op.controls) {
        if (c >= 0) (*last_use)[c] = *tick;
      }
    }

    if (options.enabled && op.kind == GateKind::kSwap &&
        options.relabel_swaps) {
      RemapItem item;
      item.kind = RemapItem::Kind::kRelabel;
      item.relabel_a = op.target;
      item.relabel_b = op.controls[0];
      item.relabel_source_gates = weight;
      working.relabel(item.relabel_a, item.relabel_b);
      program.items.push_back(item);
      ++program.stats.swaps_relabeled;
      gross_avoided += identity_sweeps(op, rank_start);
      continue;
    }

    GateOp phys = translated_through(op, working);
    if (options.enabled) {
      if (op.kind == GateKind::kSwap) {
        // The b leg of the expansion pays two sweeps at rank and the a leg
        // one, so remapping always at least breaks even — and leaves both
        // qubits block-local for everything that follows. The swap's own
        // partner is never the victim (evicting it to rank would hand its
        // legs the cost just saved).
        for (int q : {op.controls[0], op.target}) {
          const int other = q == op.target ? op.controls[0] : op.target;
          if (working.physical(q) >= rank_start) {
            const Victim victim = pick_cold(i, other);
            // No eligible slot (a 1-qubit offset segment holding the
            // partner): leave the leg at rank rather than churn the map.
            if (victim.position >= 0) {
              emit_remap(working.physical(q), victim.position);
            }
          }
        }
        phys = translated_through(op, working);
        gross_avoided += identity_sweeps(op, rank_start);
      } else if (!is_diagonal(op.kind) && phys.target >= rank_start) {
        // Trade-gain rule: remapping costs the same single sweep as
        // applying in place, then hands the hot position's future to the
        // evicted resident. Lookahead therefore only trades when a truly
        // cold victim exists — zero remaining targets, so the remap
        // deletes every future sweep of the hot qubit and adds none —
        // and the hot qubit has a future at all (a last-touch gate pays
        // its one sweep in place). Evicting a merely-cooler qubit is a
        // loss in bytes even when it wins on counts: its deferred sweeps
        // land on a denser, worse-compressing state.
        const std::size_t hot_remaining =
            events.remaining_after(op.target, i);
        const Victim victim = pick_cold(i);
        if (lru || (victim.remaining == 0 && hot_remaining > 0)) {
          emit_remap(phys.target, victim.position);
          phys = translated_through(op, working);
        } else {
          ++program.stats.rank_targets_in_place;
          // An evicted logical targeted at rank is remap-added cost the
          // identity layout never paid.
          if (identity_sweeps(op, rank_start) == 0) ++added_cost;
        }
      }
      if (op.kind != GateKind::kSwap && !is_diagonal(op.kind) &&
          phys.target < rank_start &&
          identity_sweeps(op, rank_start) > 0) {
        ++program.stats.rank_targets_localized;
        ++gross_avoided;
      }
    }
    append_gate(phys, weight);
  }
  // Every emitted RemapStep is itself one sweep the identity layout never
  // paid; net the ledger so `sweeps_avoided` is directly comparable to
  // the remap-off exchange count.
  const std::size_t penalty = program.stats.remaps + added_cost;
  program.stats.sweeps_avoided =
      gross_avoided > penalty ? gross_avoided - penalty : 0;
  return program;
}

}  // namespace cqs::qsim
