#include "qsim/scheduler.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace cqs::qsim {

bool is_block_local(const GateOp& op, int intra_qubits) {
  if (op.kind == GateKind::kSwap) {
    // SWAP stores its two qubits in target/controls[0] and expands into
    // three CX applications; it is block-local iff both qubits are.
    return op.target < intra_qubits && op.controls[0] < intra_qubits;
  }
  if (op.target >= intra_qubits) return false;
  for (int c : op.controls) {
    if (c >= intra_qubits) return false;
  }
  return true;
}

Schedule build_schedule(const Circuit& circuit,
                        const SchedulerOptions& options) {
  if (options.intra_qubits < 0) {
    throw std::invalid_argument("build_schedule: negative intra_qubits");
  }
  FusionStats fusion;
  std::vector<std::size_t> origins;
  Schedule schedule(options.fuse
                        ? fuse_single_qubit_gates(circuit, &fusion, &origins)
                        : circuit);
  if (!options.fuse) {
    origins.assign(circuit.size(), 1);
  }
  schedule.stats_.fusion = fusion;

  const auto& ops = schedule.circuit_.ops();
  GateRun current;  // open block-local run (count == 0 when closed)
  auto close = [&] {
    if (current.count == 0) return;
    schedule.runs_.push_back(current);
    ++schedule.stats_.block_local_runs;
    schedule.stats_.batched_ops += current.count;
    schedule.stats_.longest_run =
        std::max(schedule.stats_.longest_run, current.count);
    current = GateRun{};
  };

  for (std::size_t i = 0; i < ops.size(); ++i) {
    if (is_block_local(ops[i], options.intra_qubits)) {
      if (current.count == 0) {
        current = GateRun{.first = i, .count = 0, .source_gates = 0,
                          .block_local = true};
      }
      ++current.count;
      current.source_gates += origins[i];
      if (options.max_run_length > 0 &&
          current.count >= options.max_run_length) {
        close();
      }
      continue;
    }
    close();
    schedule.runs_.push_back(GateRun{.first = i, .count = 1,
                                     .source_gates = origins[i],
                                     .block_local = false});
    ++schedule.stats_.single_items;
  }
  close();
  return schedule;
}

}  // namespace cqs::qsim
