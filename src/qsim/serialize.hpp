// Plain-text circuit serialization in an OpenQASM-inspired line format:
//
//   qubits 5
//   h 0
//   cx 0 1
//   rz 2 0.785398
//   ccx 0 1 4
//   u3g 3 1.0 0.5 -0.5 0.1
//
// One op per line: mnemonic, qubit operands (controls first, target
// last), then any angle parameters. Used for dumping circuits from
// generators, feeding external circuits into the simulator, and the
// debugging workflows full-state simulation exists to serve.
#pragma once

#include <iosfwd>
#include <string>

#include "qsim/circuit.hpp"

namespace cqs::qsim {

/// Writes the circuit in the line format above.
void write_circuit(std::ostream& os, const Circuit& circuit);
std::string circuit_to_text(const Circuit& circuit);

/// Parses the line format. Throws std::runtime_error with a line number
/// on malformed input. Blank lines and lines starting with '#' are
/// ignored.
Circuit parse_circuit(std::istream& is);
Circuit circuit_from_text(const std::string& text);

}  // namespace cqs::qsim
