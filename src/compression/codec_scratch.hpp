// CodecScratch: per-worker pooled working state for the codec hot path.
// One instance per worker thread (owned by runtime::ScratchArena) is
// threaded through Compressor::compress/decompress so that in the steady
// state a full block codec round allocates nothing: the LZ77 hash chains,
// token/entropy staging buffers, Huffman coder pairs, qzc's deinterleave
// plane and split streams, and sz's quantization vectors all live here and
// are reused pass over pass. Buffers only grow, so bytes() converges to
// the per-worker high-water mark — the term the report adds to the Eq. 8
// memory footprint alongside the ScratchArena block buffers.
#pragma once

#include <cstdint>
#include <vector>

#include "common/bytes.hpp"
#include "compression/rans.hpp"
#include "lossless/huffman.hpp"
#include "lossless/zx.hpp"

namespace cqs::compression {

struct CodecScratch {
  /// Shared by every codec that ends in the zx lossless stage.
  lossless::ZxScratch zx;

  /// Final container staging: compress() builds here, then returns one
  /// exact-sized copy (the single allocation a compress call may make).
  Bytes packed;

  /// Inner stream staging (qzc's code+payload streams, sz's pre-zx inner,
  /// fpzip's residuals, zfp's side channels, and the decompressed inner on
  /// the way back).
  Bytes inner;

  /// qzc: leading-same-byte code stream and differing-byte payload.
  /// zfp reuses them for its relative-mode inner container and sides.
  Bytes codes;
  Bytes payload;

  /// Double-valued staging: qzc's deinterleave plane, sz/zfp's log plane.
  std::vector<double> values;

  /// sz: quantization codes, outlier values, Huffman symbol counts.
  std::vector<std::uint32_t> quant_codes;
  std::vector<double> outliers;
  std::vector<std::uint64_t> counts;

  /// Relative-mode side channels (sz and zfp): sign mask, special mask,
  /// and the verbatim special values.
  std::vector<bool> mask_a;
  std::vector<bool> mask_b;
  Bytes special_bytes;
  std::vector<double> special_values;

  /// sz quantization-code Huffman pair (alphabet = quantization bins;
  /// distinct from the byte-alphabet pair inside `zx`).
  lossless::HuffmanEncoder huff_encoder;
  lossless::HuffmanDecoder huff_decoder;

  /// zfp-rans: rANS coder tables/staging plus the entropy-stage buffer the
  /// re-coded zfp container stream lands in (both directions). Distinct
  /// from `packed`/`codes`, which the inner zfp pass owns.
  rans::RansScratch rans;
  Bytes entropy;

  /// Bytes held across calls — the scratch-pool share of the Eq. 8
  /// footprint (vector<bool> packs 1 bit per element).
  std::size_t bytes() const {
    return zx.bytes() + packed.capacity() + inner.capacity() +
           codes.capacity() + payload.capacity() +
           values.capacity() * sizeof(double) +
           quant_codes.capacity() * sizeof(std::uint32_t) +
           outliers.capacity() * sizeof(double) +
           counts.capacity() * sizeof(std::uint64_t) +
           mask_a.capacity() / 8 + mask_b.capacity() / 8 +
           special_bytes.capacity() +
           special_values.capacity() * sizeof(double) +
           huff_encoder.bytes() + huff_decoder.bytes() + rans.bytes() +
           entropy.capacity();
  }
};

}  // namespace cqs::compression
