#include "compression/verify.hpp"

#include <cmath>
#include <stdexcept>

#include "common/stats.hpp"

namespace cqs::compression {

ErrorReport measure_error(std::span<const double> original,
                          std::span<const double> decompressed) {
  if (original.size() != decompressed.size()) {
    throw std::invalid_argument("measure_error: size mismatch");
  }
  ErrorReport report;
  std::vector<double> errors;
  errors.reserve(original.size());
  double abs_sum = 0.0;
  for (std::size_t i = 0; i < original.size(); ++i) {
    const double err = original[i] - decompressed[i];
    errors.push_back(err);
    const double abs_err = std::abs(err);
    abs_sum += abs_err;
    report.max_absolute = std::max(report.max_absolute, abs_err);
    if (original[i] != 0.0) {
      report.max_pointwise_relative = std::max(
          report.max_pointwise_relative, abs_err / std::abs(original[i]));
    }
  }
  report.mean_absolute =
      original.empty() ? 0.0
                       : abs_sum / static_cast<double>(original.size());
  report.error_autocorrelation = autocorrelation(errors, 1);
  return report;
}

std::vector<double> signed_errors(std::span<const double> original,
                                  std::span<const double> decompressed) {
  if (original.size() != decompressed.size()) {
    throw std::invalid_argument("signed_errors: size mismatch");
  }
  std::vector<double> errors(original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    errors[i] = original[i] - decompressed[i];
  }
  return errors;
}

std::vector<double> normalized_relative_errors(
    std::span<const double> original, std::span<const double> decompressed,
    double bound) {
  if (original.size() != decompressed.size()) {
    throw std::invalid_argument("normalized_relative_errors: size mismatch");
  }
  std::vector<double> out;
  out.reserve(original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    if (original[i] == 0.0) continue;
    double rel = (original[i] - decompressed[i]) / std::abs(original[i]);
    if (bound > 0.0) rel /= bound;
    out.push_back(rel);
  }
  return out;
}

}  // namespace cqs::compression
