// Lossless Compressor over double arrays: the "Zstd" stage of the paper's
// hybrid pipeline (Section 3.7), backed by the zx codec.
#pragma once

#include "compression/compressor.hpp"

namespace cqs::compression {

class ZxCodec final : public Compressor {
 public:
  std::string name() const override { return "zstd"; }
  bool supports(BoundMode mode) const override {
    return mode == BoundMode::kLossless;
  }
  Bytes compress(std::span<const double> data,
                 const ErrorBound& bound) const override;
  void decompress(ByteSpan compressed, std::span<double> out) const override;
  Bytes compress(std::span<const double> data, const ErrorBound& bound,
                 CodecScratch& scratch) const override;
  void decompress(ByteSpan compressed, std::span<double> out,
                  CodecScratch& scratch) const override;
  std::size_t element_count(ByteSpan compressed) const override;
};

}  // namespace cqs::compression
