// make_compressor: name-keyed factory over every codec in the repository.
#include <stdexcept>

#include "compression/compressor.hpp"
#include "compression/zx_codec.hpp"
#include "fpzip/fpzip.hpp"
#include "qzc/qzc.hpp"
#include "sz/sz.hpp"
#include "zfp/zfp.hpp"

namespace cqs::compression {

std::unique_ptr<Compressor> make_compressor(const std::string& name) {
  if (name == "zstd") return std::make_unique<ZxCodec>();
  if (name == "sz") return std::make_unique<sz::SzCodec>();
  if (name == "sz-complex") {
    return std::make_unique<sz::SzCodec>(
        sz::SzConfig{.complex_split = true, .max_bins = 16384});
  }
  if (name == "qzc") return std::make_unique<qzc::QzcCodec>(false);
  if (name == "qzc-shuffle") return std::make_unique<qzc::QzcCodec>(true);
  if (name == "zfp") return std::make_unique<zfp::ZfpCodec>();
  if (name == "fpzip") return std::make_unique<fpzip::FpzipCodec>();
  throw std::invalid_argument("make_compressor: unknown codec '" + name +
                              "'");
}

std::vector<std::string> compressor_names() {
  return {"zstd", "sz", "sz-complex", "qzc", "qzc-shuffle", "zfp", "fpzip"};
}

}  // namespace cqs::compression
