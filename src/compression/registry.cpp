// make_compressor: name-keyed factory over every codec in the repository.
#include <stdexcept>

#include "compression/compressor.hpp"
#include "compression/zx_codec.hpp"
#include "fpzip/fpzip.hpp"
#include "qzc/qzc.hpp"
#include "sz/sz.hpp"
#include "zfp/zfp.hpp"
#include "zfp/zfp_rans.hpp"

namespace cqs::compression {

std::unique_ptr<Compressor> make_compressor(const std::string& name) {
  if (name == "zstd") return std::make_unique<ZxCodec>();
  if (name == "sz") return std::make_unique<sz::SzCodec>();
  if (name == "sz-complex") {
    return std::make_unique<sz::SzCodec>(
        sz::SzConfig{.complex_split = true, .max_bins = 16384});
  }
  if (name == "qzc") return std::make_unique<qzc::QzcCodec>(false);
  if (name == "qzc-shuffle") return std::make_unique<qzc::QzcCodec>(true);
  if (name == "zfp") return std::make_unique<zfp::ZfpCodec>();
  if (name == "fpzip") return std::make_unique<fpzip::FpzipCodec>();
  if (name == "zfp-rans") return std::make_unique<zfp::ZfpRansCodec>();
  throw std::invalid_argument("make_compressor: unknown codec '" + name +
                              "'");
}

std::vector<std::string> compressor_names() {
  return {"zstd",        "sz",  "sz-complex", "qzc",
          "qzc-shuffle", "zfp", "fpzip",      "zfp-rans"};
}

namespace {

// Order IS the id assignment (checkpoint v3 / BlockMeta): append-only.
const std::vector<std::string>& id_table() {
  static const std::vector<std::string> table = compressor_names();
  return table;
}

}  // namespace

std::uint8_t codec_id(const std::string& name) {
  const auto& table = id_table();
  for (std::size_t i = 0; i < table.size(); ++i) {
    if (table[i] == name) return static_cast<std::uint8_t>(i);
  }
  throw std::invalid_argument("codec_id: unknown codec '" + name + "'");
}

const std::string& codec_name_of(std::uint8_t id) {
  const auto& table = id_table();
  if (id >= table.size()) {
    throw std::invalid_argument("codec_name_of: unknown codec id " +
                                std::to_string(id));
  }
  return table[id];
}

}  // namespace cqs::compression
