#include "compression/zx_codec.hpp"

#include <cstring>
#include <stdexcept>

#include "lossless/zx.hpp"

namespace cqs::compression {

Bytes ZxCodec::compress(std::span<const double> data,
                        const ErrorBound& bound) const {
  if (bound.mode != BoundMode::kLossless) {
    throw std::invalid_argument("ZxCodec is lossless only");
  }
  return lossless::zx_compress(as_bytes_span(data));
}

void ZxCodec::decompress(ByteSpan compressed, std::span<double> out) const {
  const Bytes raw = lossless::zx_decompress(compressed);
  if (raw.size() != out.size_bytes()) {
    throw std::runtime_error("ZxCodec: output size mismatch");
  }
  std::memcpy(out.data(), raw.data(), raw.size());
}

std::size_t ZxCodec::element_count(ByteSpan compressed) const {
  return lossless::zx_original_size(compressed) / sizeof(double);
}

}  // namespace cqs::compression
