#include "compression/zx_codec.hpp"

#include <cstring>
#include <stdexcept>

#include "compression/codec_scratch.hpp"
#include "lossless/zx.hpp"

namespace cqs::compression {

Bytes ZxCodec::compress(std::span<const double> data,
                        const ErrorBound& bound) const {
  CodecScratch scratch;
  return compress(data, bound, scratch);
}

void ZxCodec::decompress(ByteSpan compressed, std::span<double> out) const {
  CodecScratch scratch;
  decompress(compressed, out, scratch);
}

Bytes ZxCodec::compress(std::span<const double> data, const ErrorBound& bound,
                        CodecScratch& scratch) const {
  if (bound.mode != BoundMode::kLossless) {
    throw std::invalid_argument("ZxCodec is lossless only");
  }
  scratch.packed.clear();
  lossless::zx_compress_into(as_bytes_span(data), {}, scratch.zx,
                             scratch.packed);
  return Bytes(scratch.packed.begin(), scratch.packed.end());
}

void ZxCodec::decompress(ByteSpan compressed, std::span<double> out,
                         CodecScratch& scratch) const {
  lossless::zx_decompress_into(compressed, scratch.zx, scratch.inner);
  if (scratch.inner.size() != out.size_bytes()) {
    throw std::runtime_error("ZxCodec: output size mismatch");
  }
  if (!scratch.inner.empty()) {
    std::memcpy(out.data(), scratch.inner.data(), scratch.inner.size());
  }
}

std::size_t ZxCodec::element_count(ByteSpan compressed) const {
  return lossless::zx_original_size(compressed) / sizeof(double);
}

}  // namespace cqs::compression
