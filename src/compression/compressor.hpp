// The compressor abstraction shared by the lossless stage and all four
// lossy "Solutions" of Section 4, plus the ZFP/FPZIP baselines. All codecs
// compress arrays of doubles (a state-vector block is viewed as interleaved
// re/im doubles) into self-describing byte containers.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/bytes.hpp"

namespace cqs::compression {

/// Error control model (Section 2.3 of the paper).
enum class BoundMode {
  kLossless,           ///< exact reconstruction
  kAbsolute,           ///< |d - d'| <= value
  kPointwiseRelative,  ///< |d - d'| <= value * |d|
};

struct ErrorBound {
  BoundMode mode = BoundMode::kLossless;
  double value = 0.0;

  static ErrorBound lossless() { return {BoundMode::kLossless, 0.0}; }
  static ErrorBound absolute(double e) { return {BoundMode::kAbsolute, e}; }
  static ErrorBound relative(double eps) {
    return {BoundMode::kPointwiseRelative, eps};
  }
};

/// Per-worker pooled codec working state (codec_scratch.hpp). Forward
/// declared so the interface stays light; only scratch-aware codecs and
/// hot-path callers include the definition.
struct CodecScratch;

class Compressor {
 public:
  virtual ~Compressor() = default;

  virtual std::string name() const = 0;

  /// True if the codec honors this bound mode.
  virtual bool supports(BoundMode mode) const = 0;

  /// Compresses `data` under `bound` into a self-describing container.
  virtual Bytes compress(std::span<const double> data,
                         const ErrorBound& bound) const = 0;

  /// Decompresses into `out`, which must have the original element count
  /// (recorded in the container and queryable via element_count).
  virtual void decompress(ByteSpan compressed,
                          std::span<double> out) const = 0;

  /// Scratch-aware overloads for hot-path callers that hold a per-worker
  /// CodecScratch: the bitstream is byte-identical to the scratch-less
  /// path, but pooled codecs reach a zero-allocation steady state (the
  /// returned payload being compress()'s single, exact-sized allocation).
  /// Defaults forward to the scratch-less virtuals so codecs without
  /// pooled state — and external callers — need no changes.
  virtual Bytes compress(std::span<const double> data, const ErrorBound& bound,
                         CodecScratch& scratch) const {
    (void)scratch;
    return compress(data, bound);
  }

  virtual void decompress(ByteSpan compressed, std::span<double> out,
                          CodecScratch& scratch) const {
    (void)scratch;
    decompress(compressed, out);
  }

  /// Element count recorded in a container produced by this codec.
  virtual std::size_t element_count(ByteSpan compressed) const = 0;

  /// Convenience: decompress into a fresh vector.
  std::vector<double> decompress_to_vector(ByteSpan compressed) const {
    std::vector<double> out(element_count(compressed));
    decompress(compressed, out);
    return out;
  }
};

/// Factory over every codec in the repository, keyed by the names used in
/// the paper's figures: "zstd" (zx lossless), "sz" (Solution A),
/// "sz-complex" (Solution B), "qzc" (Solution C), "qzc-shuffle" (Solution D),
/// "zfp", "fpzip", plus "zfp-rans" (zfp with an order-0 rANS entropy stage
/// over the plane stream; its own append-only id so the arbiter can A/B
/// it per block).
std::unique_ptr<Compressor> make_compressor(const std::string& name);

/// All codec names known to make_compressor.
std::vector<std::string> compressor_names();

/// Id of the lossless zx codec ("zstd") — the codec every block starts
/// compressed with and the one the arbiter falls back to for sparse blocks.
inline constexpr std::uint8_t kLosslessCodecId = 0;

/// Stable numeric id of a codec name. Ids are part of the on-disk
/// checkpoint format (v3 stores one per block) and of BlockMeta, so the
/// mapping must never be reordered — new codecs append.
/// Throws std::invalid_argument for unknown names.
std::uint8_t codec_id(const std::string& name);

/// Inverse of codec_id. Throws std::invalid_argument for unknown ids.
const std::string& codec_name_of(std::uint8_t id);

}  // namespace cqs::compression
