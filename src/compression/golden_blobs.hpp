// Golden compressed-bitstream digests: SHA-256 of every registry codec's
// output on the three shared fixtures (common/fixtures.hpp, 4096 doubles,
// seeds 101/202/303) under every bound mode the codec supports.
//
// These digests were recorded from the pre-hot-path-overhaul implementation
// and pin the wire format: checkpoints v1-v3 store these containers and
// BlockCache keys hash them, so ANY byte drift invalidates persisted state.
// A performance change must never alter them; a deliberate format change
// must bump the checkpoint format (and re-record, with a changelog entry).
//
// Verified in two places: tests/golden_blob_test.cpp (ctest) and the
// bench_micro_codecs --json drift gate in CI.
#pragma once

#include <string>
#include <vector>

#include "common/fixtures.hpp"
#include "common/sha256.hpp"
#include "compression/compressor.hpp"

namespace cqs::compression {

struct GoldenBlob {
  const char* codec;
  const char* mode;     // "lossless" | "abs" | "rel"
  const char* fixture;  // "spiky" | "dense" | "sparse"
  const char* sha256;
};

/// Fixture parameters shared with the benches: size and seeds are part of
/// the golden identity — do not change them without re-recording.
inline constexpr std::size_t kGoldenFixtureSize = 4096;
inline constexpr std::uint64_t kGoldenSpikySeed = 101;
inline constexpr std::uint64_t kGoldenDenseSeed = 202;
inline constexpr std::uint64_t kGoldenSparseSeed = 303;

/// Bounds used for the non-lossless modes.
inline constexpr double kGoldenAbsoluteBound = 1e-4;
inline constexpr double kGoldenRelativeBound = 1e-3;

inline constexpr GoldenBlob kGoldenBlobs[] = {
    {"zstd", "lossless", "spiky",
     "2c84b532d31db31f7ce4e49246a04544a13b1e21cc1a491cbe40d5d68f7ba300"},
    {"zstd", "lossless", "dense",
     "0a296346250d2bac336c3aa4417f7990d4f4b2de30bd57f25805db54e06f126a"},
    {"zstd", "lossless", "sparse",
     "673866ab3c4d265bf923d5e6825d43cc120f0cdf2ff31da9fef147685915a28b"},
    {"sz", "abs", "spiky",
     "d38654da9b31c1445671e3277d79c5c81e64a92d3a563dec6e2a6b9017d2635b"},
    {"sz", "abs", "dense",
     "8acc9700263c27da7e5e3f6fea43bc5f235c5ae417332bc28564d1a829f16ba5"},
    {"sz", "abs", "sparse",
     "976fc26dc9cdf63aa1671df4d4a7a81eeade0858fce19fd8e18d8cbb55916de9"},
    {"sz", "rel", "spiky",
     "510b8183bd4e6dd1ac80fdb3200b0c71d832fb6e70d35e001d5345aa0ee9d8d6"},
    {"sz", "rel", "dense",
     "c9612a5e406a58cdbf99490be03f477fe0aacb512712af5c8b58858e03c51f56"},
    {"sz", "rel", "sparse",
     "ea931a4bafd2183e771b2fbd3d6f8b43ad48c3bff900fcda6eb37ee055d9d2ff"},
    {"sz-complex", "abs", "spiky",
     "b38dbabea1b009436a1ed4becb1d89d2989afd584bb376368bd5eb3e8bf11428"},
    {"sz-complex", "abs", "dense",
     "15fe1bd208a3a2a2fec86c8b9e71a7dcbfcdcf55db6fd36104eb13b0aba795dd"},
    {"sz-complex", "abs", "sparse",
     "337651b4bcf3da5b8fe877b8c26467a008140f1685a88a3445d5f8e9b5d64220"},
    {"sz-complex", "rel", "spiky",
     "bd6a034e1248205ba6f8e6281251048b734fbc429bbdc1eb5fa7adcef607264c"},
    {"sz-complex", "rel", "dense",
     "4f80b93a4fd9f084115bb542adbe34e5db06b5f354be389aea3a6097e2e134e5"},
    {"sz-complex", "rel", "sparse",
     "bfebb7cee8d7ad40bda3e39ce6820816e018abc168ca43fc45f3d01ab6a17356"},
    {"qzc", "rel", "spiky",
     "c5e0dd68addfb95a9250e31c95655593f300f4093b850bd80f5780d73659e72c"},
    {"qzc", "rel", "dense",
     "686fe52a5b313766002bae2b7e8456e289ba93d2bf1141b0646f4925b0048ef4"},
    {"qzc", "rel", "sparse",
     "67cae6b58d8b8757a700d067e79155456df58ea2dce78930f3f4a83f71383de0"},
    {"qzc-shuffle", "rel", "spiky",
     "db38b8bff031ad2dfaf8f3cadf830636e24d602430721b46dd907665c6878f37"},
    {"qzc-shuffle", "rel", "dense",
     "6dc201a429a385976c23b22d21f486e8d8d01dfbd170bc6d46fad83d2bf2fc67"},
    {"qzc-shuffle", "rel", "sparse",
     "400a71edb85854f52096a6745c59ede6a7a15d63033c7793f45d86a6cdaa4fc0"},
    {"zfp", "abs", "spiky",
     "19dea687fbcdbfd0da68844ed97ab5d26ff2c40fe9a8d827dec14d045de6cf35"},
    {"zfp", "abs", "dense",
     "82a80c89c910f66e1ecb787b94d41d0315898f48f4d783243072a315fda886a6"},
    {"zfp", "abs", "sparse",
     "8999ec7c4fdabe3560bd12d73de16ea5cfddd1c45a27b2f314de15886f80f2c2"},
    {"zfp", "rel", "spiky",
     "36d37b8e0c9138d693dd001e6b4025dd79d8c01634a73afe3f2d2f5faadae2b3"},
    {"zfp", "rel", "dense",
     "39335ced7958261291aa27b4db9f2545d5a61ea9f87d8bf8556a80cb83f59d57"},
    {"zfp", "rel", "sparse",
     "02feb370630f0d00ff2056c63770ccf04f6b4705955b4278cda0f9863103c125"},
    {"fpzip", "lossless", "spiky",
     "e2a0b2f3682ca65bf45904564c94188ad3c3db0ec0ab9761d710b43f892189aa"},
    {"fpzip", "lossless", "dense",
     "35c004caf4d83b4b1e059a24563b9450abe70f61161b7ac751c5703445ba21b2"},
    {"fpzip", "lossless", "sparse",
     "93c14267d258264d9106cfd26cdb0f3cac571e1225833861fbaf5ae17f129409"},
    {"fpzip", "rel", "spiky",
     "46acd876a804a9f6a310832822dbded0e80ca44b87206494e81107bd22c3e3f5"},
    {"fpzip", "rel", "dense",
     "b7c05ad4662fb3a6725308568d36ee905517eeff7f94bdf5d4068421d0f8d768"},
    {"fpzip", "rel", "sparse",
     "afd78dabe1eef0eb6db78522d5cb80280abb44394b671b029887b5d0356910f4"},
    {"zfp-rans", "abs", "spiky",
     "f6823b9037e81a11864e9b74e054c2a265ccebe4f97c060a6fc76fcc162485e7"},
    {"zfp-rans", "abs", "dense",
     "9c73de21e7ef680e6d18fc4d74fe889a7c4ee000051529a856cfc3c5ef1635c2"},
    {"zfp-rans", "abs", "sparse",
     "30cc9de14f793c2e91720d6dd89c32c9d6deb6512a887fb1bdd09add3bf367b8"},
    {"zfp-rans", "rel", "spiky",
     "45e12bbf3eb634b5e79a5deeaa89d84c356824889d26b52f4687d62c66086cf9"},
    {"zfp-rans", "rel", "dense",
     "8bcefbcba9a831b5502485ad6b0e766aa316782fc1af5460358190294ed74680"},
    {"zfp-rans", "rel", "sparse",
     "c679dfed7680d84744125614183f32de03d54d581bf47fd5fca035685c2c3ff8"},
};

inline const std::vector<double>& golden_fixture(const std::string& name) {
  static const std::vector<double> spiky =
      fixtures::spiky_qaoa_like(kGoldenFixtureSize, kGoldenSpikySeed);
  static const std::vector<double> dense =
      fixtures::dense_supremacy_like(kGoldenFixtureSize, kGoldenDenseSeed);
  static const std::vector<double> sparse =
      fixtures::sparse_like(kGoldenFixtureSize, kGoldenSparseSeed);
  if (name == "spiky") return spiky;
  if (name == "dense") return dense;
  if (name == "sparse") return sparse;
  // A typo in the table must fail loudly, not silently pin the wrong
  // fixture's bitstream.
  throw std::invalid_argument("golden_fixture: unknown fixture '" + name +
                              "'");
}

inline ErrorBound golden_bound(const std::string& mode) {
  if (mode == "lossless") return ErrorBound::lossless();
  if (mode == "abs") return ErrorBound::absolute(kGoldenAbsoluteBound);
  if (mode == "rel") return ErrorBound::relative(kGoldenRelativeBound);
  throw std::invalid_argument("golden_bound: unknown mode '" + mode + "'");
}

/// Compresses the entry's fixture with its codec and returns the SHA-256
/// of the container, optionally through the scratch-pooled overload (both
/// paths must produce identical bytes).
inline std::string golden_blob_hash(const GoldenBlob& blob,
                                    CodecScratch* scratch = nullptr) {
  const auto codec = make_compressor(blob.codec);
  const auto& data = golden_fixture(blob.fixture);
  const Bytes compressed =
      scratch ? codec->compress(data, golden_bound(blob.mode), *scratch)
              : codec->compress(data, golden_bound(blob.mode));
  return sha256_hex(compressed);
}

}  // namespace cqs::compression
