// Post-hoc error measurement between original and decompressed arrays:
// used by tests (bound enforcement) and the Figure 12/14 benches.
#pragma once

#include <span>
#include <vector>

namespace cqs::compression {

struct ErrorReport {
  double max_absolute = 0.0;
  double max_pointwise_relative = 0.0;  ///< over elements with |orig| > 0
  double mean_absolute = 0.0;
  /// Lag-1 autocorrelation of the signed error series (paper: ~[-1e-4,1e-4]
  /// for Solution C on dense data).
  double error_autocorrelation = 0.0;
};

ErrorReport measure_error(std::span<const double> original,
                          std::span<const double> decompressed);

/// Signed pointwise errors (orig - decompressed), for CDF plots.
std::vector<double> signed_errors(std::span<const double> original,
                                  std::span<const double> decompressed);

/// Pointwise relative errors |orig-dec|/|orig| over nonzero originals,
/// normalized by `bound` if bound > 0 (Figure 14 plots these in [-1, 1],
/// signed).
std::vector<double> normalized_relative_errors(
    std::span<const double> original, std::span<const double> decompressed,
    double bound);

}  // namespace cqs::compression
