#include "compression/rans.hpp"

#include <algorithm>
#include <cstdint>
#include <stdexcept>

namespace cqs::compression::rans {
namespace {

/// Scales raw counts so they sum to exactly kProbScale with every present
/// symbol keeping a nonzero share (a zero-frequency symbol would be
/// unencodable). Drift from flooring is settled against the largest
/// buckets, where the rate cost of +-1/4096 is smallest.
void normalize_frequencies(std::vector<std::uint32_t>& freq,
                           std::uint64_t total) {
  std::uint64_t sum = 0;
  for (auto& f : freq) {
    if (f == 0) continue;
    const std::uint64_t scaled =
        std::max<std::uint64_t>(1, (static_cast<std::uint64_t>(f) *
                                    kProbScale) /
                                       total);
    f = static_cast<std::uint32_t>(scaled);
    sum += scaled;
  }
  while (sum != kProbScale) {
    // Give to (or take from) the currently largest bucket; taking never
    // drives a symbol to zero because the largest bucket of a sum above
    // kProbScale >= 256 exceeds 1.
    std::size_t best = 0;
    for (std::size_t i = 1; i < freq.size(); ++i) {
      if (freq[i] > freq[best]) best = i;
    }
    if (sum > kProbScale) {
      --freq[best];
      --sum;
    } else {
      ++freq[best];
      ++sum;
    }
  }
}

}  // namespace

void encode(ByteSpan in, RansScratch& scratch, Bytes& out) {
  put_varint(out, in.size());
  if (in.empty()) return;

  scratch.freq.assign(256, 0);
  for (std::byte b : in) ++scratch.freq[static_cast<std::uint8_t>(b)];
  normalize_frequencies(scratch.freq, in.size());
  for (std::uint32_t f : scratch.freq) put_varint(out, f);

  scratch.cum.assign(257, 0);
  for (std::size_t s = 0; s < 256; ++s) {
    scratch.cum[s + 1] = scratch.cum[s] + scratch.freq[s];
  }

  // Encode back-to-front so the decoder reads symbols (and renorm bytes)
  // forward; emitted bytes land in `reversed` and are appended mirrored.
  Bytes& reversed = scratch.reversed;
  reversed.clear();
  std::uint32_t x = kStateMin;
  for (std::size_t i = in.size(); i-- > 0;) {
    const auto sym = static_cast<std::uint8_t>(in[i]);
    const std::uint32_t f = scratch.freq[sym];
    const std::uint32_t x_max = ((kStateMin >> kProbBits) << 8) * f;
    while (x >= x_max) {
      reversed.push_back(static_cast<std::byte>(x & 0xffu));
      x >>= 8;
    }
    x = ((x / f) << kProbBits) + (x % f) + scratch.cum[sym];
  }
  for (int shift = 0; shift < 32; shift += 8) {
    out.push_back(static_cast<std::byte>((x >> shift) & 0xffu));
  }
  out.insert(out.end(), reversed.rbegin(), reversed.rend());
}

void decode(ByteSpan in, std::size_t& offset, RansScratch& scratch,
            Bytes& out) {
  const std::uint64_t count = get_varint(in, offset);
  out.clear();
  if (count == 0) return;

  scratch.freq.assign(256, 0);
  std::uint64_t sum = 0;
  for (std::size_t s = 0; s < 256; ++s) {
    const std::uint64_t f = get_varint(in, offset);
    if (f > kProbScale) throw std::runtime_error("rans: bad frequency");
    scratch.freq[s] = static_cast<std::uint32_t>(f);
    sum += f;
  }
  if (sum != kProbScale) {
    throw std::runtime_error("rans: frequency table does not sum to 4096");
  }
  scratch.cum.assign(257, 0);
  scratch.slot_sym.assign(kProbScale, 0);
  for (std::size_t s = 0; s < 256; ++s) {
    scratch.cum[s + 1] = scratch.cum[s] + scratch.freq[s];
    for (std::uint32_t slot = scratch.cum[s]; slot < scratch.cum[s + 1];
         ++slot) {
      scratch.slot_sym[slot] = static_cast<std::uint8_t>(s);
    }
  }

  if (offset + 4 > in.size()) {
    throw std::runtime_error("rans: truncated state");
  }
  std::uint32_t x = 0;
  for (int shift = 0; shift < 32; shift += 8) {
    x |= static_cast<std::uint32_t>(in[offset++]) << shift;
  }

  out.resize(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::uint32_t slot = x & (kProbScale - 1);
    const std::uint8_t sym = scratch.slot_sym[slot];
    out[i] = static_cast<std::byte>(sym);
    x = scratch.freq[sym] * (x >> kProbBits) + slot - scratch.cum[sym];
    while (x < kStateMin) {
      if (offset >= in.size()) {
        throw std::runtime_error("rans: renorm stream truncated");
      }
      x = (x << 8) | static_cast<std::uint32_t>(in[offset++]);
    }
  }
  // The encoder started from kStateMin, so a clean decode must end there;
  // anything else means the stream (or table) was corrupted.
  if (x != kStateMin) {
    throw std::runtime_error("rans: final state mismatch (corrupt stream)");
  }
}

}  // namespace cqs::compression::rans
