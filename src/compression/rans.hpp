// Order-0 static rANS (range asymmetric numeral system) over bytes — the
// entropy stage the "zfp-rans" codec applies to the zfp bit-plane stream.
// Classic byte-wise layout: a 32-bit state renormalized one byte at a time
// against a 12-bit normalized frequency table, encoded back-to-front so the
// decoder streams forward. The coder is exact (lossless) and self-
// describing: count, frequency table, final state, renorm stream.
#pragma once

#include <cstdint>
#include <vector>

#include "common/bytes.hpp"

namespace cqs::compression::rans {

/// Probability resolution: frequencies are normalized to sum 2^12.
inline constexpr int kProbBits = 12;
inline constexpr std::uint32_t kProbScale = 1u << kProbBits;

/// Renormalization lower bound: the state lives in [kStateMin, kStateMin
/// << 8), so one emitted byte always restores the invariant.
inline constexpr std::uint32_t kStateMin = 1u << 23;

/// Pooled working state (lives inside compression::CodecScratch): the
/// frequency/cumulative tables, the slot->symbol decode LUT, and the
/// encoder's back-to-front staging buffer. Buffers only grow.
struct RansScratch {
  std::vector<std::uint32_t> freq;     ///< 256 normalized frequencies
  std::vector<std::uint32_t> cum;      ///< 257 exclusive prefix sums
  std::vector<std::uint8_t> slot_sym;  ///< kProbScale slot -> symbol LUT
  Bytes reversed;                      ///< encoder emission, reverse order

  std::size_t bytes() const {
    return freq.capacity() * sizeof(std::uint32_t) +
           cum.capacity() * sizeof(std::uint32_t) +
           slot_sym.capacity() + reversed.capacity();
  }
};

/// Appends the rANS stream for `in` to `out`: varint(byte count), 256
/// varint frequencies, 4-byte little-endian final state, renorm bytes.
/// An empty input appends only the zero count.
void encode(ByteSpan in, RansScratch& scratch, Bytes& out);

/// Reverses encode() starting at `offset` (advanced past the stream);
/// `out` is resized to the recorded count (capacity reused). Throws
/// std::runtime_error on a malformed or truncated stream, including a
/// final-state mismatch (whole-stream integrity check).
void decode(ByteSpan in, std::size_t& offset, RansScratch& scratch,
            Bytes& out);

}  // namespace cqs::compression::rans
