#include "qzc/qzc.hpp"

#include <bit>
#include <cmath>
#include <cstring>
#include <stdexcept>

#include "common/bits.hpp"
#include "compression/codec_scratch.hpp"
#include "lossless/zx.hpp"

namespace cqs::qzc {
namespace {

constexpr std::byte kMagic0{'Q'};
constexpr std::byte kMagic1{'Z'};

/// Two-bit leading-same-byte code values map to {0, 1, 2, 3} leading bytes;
/// 3 means "3 or more were identical but we only skip 3" — the remaining
/// identical bytes still appear in the payload and are removed by zx.
constexpr int kMaxLeadCode = 3;

struct Header {
  bool shuffled = false;
  int mantissa_bits = 0;
  std::size_t count = 0;
  std::size_t payload_offset = 0;  // offset of the zx container
};

Header parse_header(ByteSpan in) {
  if (in.size() < 4 || in[0] != kMagic0 || in[1] != kMagic1) {
    throw std::runtime_error("qzc: bad magic");
  }
  Header h;
  h.shuffled = (static_cast<std::uint8_t>(in[2]) & 1u) != 0;
  h.mantissa_bits = static_cast<std::uint8_t>(in[3]);
  std::size_t offset = 4;
  h.count = get_varint(in, offset);
  h.payload_offset = offset;
  return h;
}

/// Truncates the low (52 - m) mantissa bits toward zero. Sign and exponent
/// are always preserved, so the pointwise relative error is < 2^-m and the
/// magnitude never increases: |d'| in [|d|(1 - 2^-m), |d|].
inline std::uint64_t truncate_bits(std::uint64_t u, int mantissa_bits) {
  const int drop = 52 - mantissa_bits;
  if (drop <= 0) return u;
  return u & (~0ull << drop);
}

void deinterleave(std::span<const double> data, std::vector<double>& out) {
  // [re0 im0 re1 im1 ...] -> [re0 re1 ... | im0 im1 ...]. Odd trailing
  // element (non-complex payload) stays at the end of the first plane.
  const std::size_t pairs = data.size() / 2;
  out.resize(data.size());
  for (std::size_t i = 0; i < pairs; ++i) {
    out[i] = data[2 * i];
    out[pairs + i] = data[2 * i + 1];
  }
  if (data.size() % 2 != 0) out[data.size() - 1] = data.back();
}

/// Decodes the XOR-delta streams into `out` (plane order when shuffled).
void decode_values(const Header& h, ByteSpan codes, ByteSpan payload,
                   std::span<double> out) {
  const int drop = 52 - h.mantissa_bits;
  const int trailing_zero_bytes = drop > 0 ? drop / 8 : 0;

  std::uint64_t prev = 0;
  std::size_t payload_pos = 0;
  for (std::size_t i = 0; i < h.count; ++i) {
    const auto code_byte = static_cast<std::uint8_t>(codes[i / 4]);
    const int lead = (code_byte >> (6 - 2 * (i % 4))) & 3;
    std::uint64_t x = 0;
    for (int b = lead; b < 8 - trailing_zero_bytes; ++b) {
      if (payload_pos >= payload.size()) {
        throw std::runtime_error("qzc: payload truncated");
      }
      x |= static_cast<std::uint64_t>(payload[payload_pos++]) << (56 - 8 * b);
    }
    const std::uint64_t t = x ^ prev;
    prev = t;
    double d;
    std::memcpy(&d, &t, 8);
    out[i] = d;
  }
}

}  // namespace

int mantissa_bits_for_bound(double eps) {
  if (!(eps > 0.0)) {
    throw std::invalid_argument("qzc: relative bound must be positive");
  }
  if (eps >= 1.0) return 0;
  const int m = static_cast<int>(std::ceil(-std::log2(eps)));
  return std::min(m, 52);
}

double bound_for_mantissa_bits(int m) { return std::ldexp(1.0, -m); }

Bytes QzcCodec::compress(std::span<const double> data,
                         const compression::ErrorBound& bound) const {
  compression::CodecScratch scratch;
  return compress(data, bound, scratch);
}

void QzcCodec::decompress(ByteSpan compressed, std::span<double> out) const {
  compression::CodecScratch scratch;
  decompress(compressed, out, scratch);
}

Bytes QzcCodec::compress(std::span<const double> data,
                         const compression::ErrorBound& bound,
                         compression::CodecScratch& scratch) const {
  if (bound.mode != compression::BoundMode::kPointwiseRelative) {
    throw std::invalid_argument("qzc: pointwise relative bound required");
  }
  const int mbits = mantissa_bits_for_bound(bound.value);
  const int drop = 52 - mbits;
  // Bytes of every truncated value that are structurally zero.
  const int trailing_zero_bytes = drop / 8;

  std::span<const double> values = data;
  if (shuffle_) {
    deinterleave(data, scratch.values);
    values = scratch.values;
  }

  // Stream 1: 2-bit leading-same-byte codes, packed 4 per byte.
  // Stream 2: differing payload bytes (big-endian significant first).
  Bytes& codes = scratch.codes;
  codes.clear();
  codes.reserve(values.size() / 4 + 1);
  Bytes& payload = scratch.payload;
  payload.clear();
  payload.reserve(values.size() * (8 - trailing_zero_bytes) / 2);

  std::uint64_t prev = 0;
  std::uint8_t code_accum = 0;
  int codes_in_accum = 0;
  for (double d : values) {
    std::uint64_t u;
    std::memcpy(&u, &d, 8);
    const std::uint64_t t = truncate_bits(u, mbits);
    const std::uint64_t x = t ^ prev;
    prev = t;

    int lead = leading_zero_bytes(x);
    if (lead > kMaxLeadCode) lead = kMaxLeadCode;
    code_accum = static_cast<std::uint8_t>((code_accum << 2) | lead);
    if (++codes_in_accum == 4) {
      codes.push_back(static_cast<std::byte>(code_accum));
      code_accum = 0;
      codes_in_accum = 0;
    }
    for (int b = lead; b < 8 - trailing_zero_bytes; ++b) {
      payload.push_back(static_cast<std::byte>((x >> (56 - 8 * b)) & 0xff));
    }
  }
  if (codes_in_accum > 0) {
    code_accum = static_cast<std::uint8_t>(code_accum
                                           << (2 * (4 - codes_in_accum)));
    codes.push_back(static_cast<std::byte>(code_accum));
  }

  // Concatenate [varint codes size][codes][payload] and zx-compress that
  // straight into the container being built.
  Bytes& streams = scratch.inner;
  streams.clear();
  streams.reserve(codes.size() + payload.size() + 10);
  put_varint(streams, codes.size());
  streams.insert(streams.end(), codes.begin(), codes.end());
  streams.insert(streams.end(), payload.begin(), payload.end());

  Bytes& out = scratch.packed;
  out.clear();
  out.push_back(kMagic0);
  out.push_back(kMagic1);
  out.push_back(static_cast<std::byte>(shuffle_ ? 1 : 0));
  out.push_back(static_cast<std::byte>(mbits));
  put_varint(out, data.size());
  lossless::zx_compress_into(streams, {}, scratch.zx, out);
  return Bytes(out.begin(), out.end());
}

void QzcCodec::decompress(ByteSpan compressed, std::span<double> out,
                          compression::CodecScratch& scratch) const {
  const Header h = parse_header(compressed);
  if (out.size() != h.count) {
    throw std::runtime_error("qzc: output size mismatch");
  }
  Bytes& streams = scratch.inner;
  lossless::zx_decompress_into(compressed.subspan(h.payload_offset),
                               scratch.zx, streams);
  std::size_t offset = 0;
  const std::uint64_t codes_size = get_varint(streams, offset);
  if (offset + codes_size > streams.size()) {
    throw std::runtime_error("qzc: code stream truncated");
  }
  if (codes_size < (h.count + 3) / 4) {
    throw std::runtime_error("qzc: code stream too short for element count");
  }
  const ByteSpan codes(streams.data() + offset, codes_size);
  const ByteSpan payload(streams.data() + offset + codes_size,
                         streams.size() - offset - codes_size);

  if (!h.shuffled) {
    decode_values(h, codes, payload, out);
    return;
  }
  // Shuffled (Solution D): decode the planes into scratch and interleave
  // straight into `out` — no full-copy reinterleave temporary.
  scratch.values.resize(h.count);
  decode_values(h, codes, payload, scratch.values);
  const std::span<const double> planes = scratch.values;
  const std::size_t pairs = h.count / 2;
  for (std::size_t i = 0; i < pairs; ++i) {
    out[2 * i] = planes[i];
    out[2 * i + 1] = planes[pairs + i];
  }
  if (h.count % 2 != 0) out[h.count - 1] = planes[h.count - 1];
}

std::size_t QzcCodec::element_count(ByteSpan compressed) const {
  return parse_header(compressed).count;
}

}  // namespace cqs::qzc
