// qzc — the paper's tailored lossy compressor (Section 4.2, Solutions C/D).
//
// Pipeline per double value:
//   1. Bit-plane truncation: keep Sig_Bit_Count = 12 + ceil(-log2(eps))
//      leading bits of the IEEE-754 representation (sign + exponent = 12
//      bits for double, Eq. 12), truncating the mantissa toward zero, so
//      |d'| is in [|d|(1 - eps), |d|].
//   2. XOR leading-zero data reduction: XOR with the previous truncated
//      value; a 2-bit code records how many leading bytes are identical
//      (0..3+), and only the differing significant bytes are emitted.
//   3. zx (Zstd stand-in) lossless compression of the code + payload
//      streams.
//
// Solution D prepends a reshuffle that de-interleaves the complex array
// into a real plane followed by an imaginary plane.
//
// Container layout:
//   magic 'Q','Z'   2 bytes
//   flags           1 byte   (bit 0: shuffled / Solution D)
//   mantissa_bits   1 byte   (0xff = lossless passthrough not used here)
//   count           varint   number of doubles
//   zx container    the compressed code+payload streams
#pragma once

#include "compression/compressor.hpp"

namespace cqs::qzc {

/// Mantissa bits to keep for a pointwise relative bound eps (Eq. 12):
/// smallest m with 2^-m <= eps.
int mantissa_bits_for_bound(double eps);

/// The worst-case relative error actually incurred when keeping m mantissa
/// bits (2^-m); always <= the requested bound.
double bound_for_mantissa_bits(int m);

class QzcCodec final : public compression::Compressor {
 public:
  /// shuffle = false: Solution C. shuffle = true: Solution D.
  explicit QzcCodec(bool shuffle = false) : shuffle_(shuffle) {}

  std::string name() const override {
    return shuffle_ ? "qzc-shuffle" : "qzc";
  }
  bool supports(compression::BoundMode mode) const override {
    return mode == compression::BoundMode::kPointwiseRelative;
  }
  Bytes compress(std::span<const double> data,
                 const compression::ErrorBound& bound) const override;
  void decompress(ByteSpan compressed, std::span<double> out) const override;
  Bytes compress(std::span<const double> data,
                 const compression::ErrorBound& bound,
                 compression::CodecScratch& scratch) const override;
  void decompress(ByteSpan compressed, std::span<double> out,
                  compression::CodecScratch& scratch) const override;
  std::size_t element_count(ByteSpan compressed) const override;

 private:
  bool shuffle_;
};

}  // namespace cqs::qzc
