#include "fpzip/fpzip.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <stdexcept>

#include "compression/codec_scratch.hpp"
#include "lossless/zx.hpp"

namespace cqs::fpzip {
namespace {

constexpr std::byte kMagic0{'F'};
constexpr std::byte kMagic1{'P'};
constexpr int kSignExponentBits = 12;

/// Monotone bijection double bits -> uint64 preserving numeric order.
inline std::uint64_t order_encode(std::uint64_t u) {
  return (u >> 63) != 0 ? ~u : (u | 0x8000000000000000ull);
}

inline std::uint64_t order_decode(std::uint64_t o) {
  return (o >> 63) != 0 ? (o & 0x7fffffffffffffffull) : ~o;
}

inline std::uint64_t truncate_to_precision(std::uint64_t u, int precision) {
  const int drop = 64 - precision;
  if (drop <= 0) return u;
  return u & (~0ull << drop);
}

}  // namespace

int precision_for_bound(double eps) {
  if (!(eps > 0.0)) {
    throw std::invalid_argument("fpzip: bound must be positive");
  }
  if (eps >= 1.0) return kSignExponentBits + 4;  // fpzip minimum p = 16-ish
  const int mantissa =
      std::min(52, static_cast<int>(std::ceil(-std::log2(eps))));
  return std::clamp(kSignExponentBits + mantissa, 4, 64);
}

double bound_for_precision(int precision) {
  return std::ldexp(1.0, -(std::max(0, precision - kSignExponentBits)));
}

FpzipCodec::FpzipCodec(int fixed_precision)
    : fixed_precision_(fixed_precision) {
  if (fixed_precision != 0 && (fixed_precision < 4 || fixed_precision > 64)) {
    throw std::invalid_argument("fpzip: precision must be in [4, 64]");
  }
}

Bytes FpzipCodec::compress(std::span<const double> data,
                           const compression::ErrorBound& bound) const {
  compression::CodecScratch scratch;
  return compress(data, bound, scratch);
}

void FpzipCodec::decompress(ByteSpan compressed,
                            std::span<double> out) const {
  compression::CodecScratch scratch;
  decompress(compressed, out, scratch);
}

Bytes FpzipCodec::compress(std::span<const double> data,
                           const compression::ErrorBound& bound,
                           compression::CodecScratch& scratch) const {
  int precision;
  if (bound.mode == compression::BoundMode::kLossless) {
    precision = 64;
  } else if (bound.mode == compression::BoundMode::kPointwiseRelative) {
    precision =
        fixed_precision_ > 0 ? fixed_precision_ : precision_for_bound(bound.value);
  } else {
    throw std::invalid_argument("fpzip: unsupported bound mode");
  }

  Bytes& residuals = scratch.inner;
  residuals.clear();
  residuals.reserve(data.size() * 3);
  std::uint64_t prev_ordered = order_encode(0);
  for (double d : data) {
    std::uint64_t u;
    std::memcpy(&u, &d, 8);
    const std::uint64_t t = truncate_to_precision(u, precision);
    const std::uint64_t ordered = order_encode(t);
    const std::uint64_t delta = ordered - prev_ordered;  // wraps mod 2^64
    put_varint(residuals,
               zigzag_encode(static_cast<std::int64_t>(delta)));
    prev_ordered = ordered;
  }
  Bytes& out = scratch.packed;
  out.clear();
  out.push_back(kMagic0);
  out.push_back(kMagic1);
  out.push_back(static_cast<std::byte>(precision));
  put_varint(out, data.size());
  lossless::zx_compress_into(residuals, {}, scratch.zx, out);
  return Bytes(out.begin(), out.end());
}

void FpzipCodec::decompress(ByteSpan compressed, std::span<double> out,
                            compression::CodecScratch& scratch) const {
  if (compressed.size() < 4 || compressed[0] != kMagic0 ||
      compressed[1] != kMagic1) {
    throw std::runtime_error("fpzip: bad magic");
  }
  std::size_t offset = 3;
  const std::uint64_t count = get_varint(compressed, offset);
  if (out.size() != count) {
    throw std::runtime_error("fpzip: output size mismatch");
  }
  Bytes& residuals = scratch.inner;
  lossless::zx_decompress_into(compressed.subspan(offset), scratch.zx,
                               residuals);
  std::size_t pos = 0;
  std::uint64_t prev_ordered = order_encode(0);
  for (std::size_t i = 0; i < count; ++i) {
    const std::uint64_t delta = static_cast<std::uint64_t>(
        zigzag_decode(get_varint(residuals, pos)));
    prev_ordered += delta;
    const std::uint64_t t = order_decode(prev_ordered);
    double d;
    std::memcpy(&d, &t, 8);
    out[i] = d;
  }
}

std::size_t FpzipCodec::element_count(ByteSpan compressed) const {
  if (compressed.size() < 4 || compressed[0] != kMagic0 ||
      compressed[1] != kMagic1) {
    throw std::runtime_error("fpzip: bad magic");
  }
  std::size_t offset = 3;
  return get_varint(compressed, offset);
}

}  // namespace cqs::fpzip
