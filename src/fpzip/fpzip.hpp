// FPZIP-like predictive floating-point compressor. FPZIP controls loss
// through a "precision" number p in [4, 64]: the number of leading bits of
// each double that survive. We reproduce that model:
//
//   1. Precision truncation: keep p leading bits (sign + exponent = 12,
//      so p - 12 mantissa bits), truncating toward zero.
//   2. Prediction: previous truncated value, in a monotone integer
//      encoding of the double (sign-magnitude flipped so ordering is
//      preserved under integer subtraction).
//   3. Residual coding: zigzag varints, then the zx entropy stage.
//
// The paper maps precisions {16, 18, 22, 24, 28} to pointwise relative
// bounds {1e-1 .. 1e-5}; precision_for_bound reproduces that mapping from
// first principles (p = 12 + ceil(-log2 eps)).
#pragma once

#include "compression/compressor.hpp"

namespace cqs::fpzip {

/// Precision (total leading bits kept) that guarantees pointwise relative
/// error below eps.
int precision_for_bound(double eps);

/// Worst-case pointwise relative bound for a given precision.
double bound_for_precision(int precision);

class FpzipCodec final : public compression::Compressor {
 public:
  /// fixed_precision in [4, 64]; 0 = derive from the bound per call.
  explicit FpzipCodec(int fixed_precision = 0);

  std::string name() const override { return "fpzip"; }
  bool supports(compression::BoundMode mode) const override {
    return mode == compression::BoundMode::kPointwiseRelative ||
           mode == compression::BoundMode::kLossless;
  }
  Bytes compress(std::span<const double> data,
                 const compression::ErrorBound& bound) const override;
  void decompress(ByteSpan compressed, std::span<double> out) const override;
  Bytes compress(std::span<const double> data,
                 const compression::ErrorBound& bound,
                 compression::CodecScratch& scratch) const override;
  void decompress(ByteSpan compressed, std::span<double> out,
                  compression::CodecScratch& scratch) const override;
  std::size_t element_count(ByteSpan compressed) const override;

 private:
  int fixed_precision_;
};

}  // namespace cqs::fpzip
