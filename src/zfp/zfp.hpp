// ZFP-like domain-transform lossy compressor (the paper's transform-based
// baseline). Operates on 1D blocks of 4 doubles:
//
//   1. Common-exponent alignment: each block is converted to 62-bit fixed
//      point relative to the block's maximum exponent.
//   2. Orthogonal decorrelating block transform: an exactly invertible
//      two-level integer Haar lifting.
//   3. Negabinary mapping + embedded bit-plane coding with per-plane group
//      testing; planes below the precision cutoff are dropped — the only
//      lossy step, exactly as in ZFP.
//
// Modes: fixed-accuracy (absolute bound) and, via the standard
// log-preprocessing wrapper the paper applies for fairness, pointwise
// relative bounds.
#pragma once

#include "compression/compressor.hpp"

namespace cqs::zfp {

/// Total bit planes carried by the fixed-point representation.
inline constexpr int kTotalPlanes = 62;

class ZfpCodec final : public compression::Compressor {
 public:
  /// `fixed_precision`: if > 0, encode exactly this many bit planes per
  /// block regardless of the bound (ZFP's fixed-precision mode).
  explicit ZfpCodec(int fixed_precision = 0)
      : fixed_precision_(fixed_precision) {}

  std::string name() const override { return "zfp"; }
  bool supports(compression::BoundMode mode) const override {
    return mode == compression::BoundMode::kAbsolute ||
           mode == compression::BoundMode::kPointwiseRelative;
  }
  Bytes compress(std::span<const double> data,
                 const compression::ErrorBound& bound) const override;
  void decompress(ByteSpan compressed, std::span<double> out) const override;
  Bytes compress(std::span<const double> data,
                 const compression::ErrorBound& bound,
                 compression::CodecScratch& scratch) const override;
  void decompress(ByteSpan compressed, std::span<double> out,
                  compression::CodecScratch& scratch) const override;
  std::size_t element_count(ByteSpan compressed) const override;

 private:
  void compress_absolute_into(std::span<const double> data, double tolerance,
                              std::uint8_t flags, Bytes& out) const;
  void decompress_absolute(ByteSpan inner, std::span<double> out) const;

  int fixed_precision_;
};

}  // namespace cqs::zfp
