// ZFP-like domain-transform lossy compressor (the paper's transform-based
// baseline). Operates on 1D blocks of 4 doubles:
//
//   1. Common-exponent alignment: each block is converted to 62-bit fixed
//      point relative to the block's maximum exponent.
//   2. Orthogonal decorrelating block transform: an exactly invertible
//      two-level integer Haar lifting (runtime-dispatched AVX2/NEON with a
//      bit-identical scalar reference).
//   3. Negabinary mapping + embedded bit-plane coding with per-plane group
//      testing; planes below the precision cutoff are dropped — the only
//      lossy step, exactly as in ZFP. Planes are gathered into packed
//      group-test/refinement words and emitted through BitWriter's
//      multi-bit path (never one call per bit).
//
// Modes, mirroring libzfp's zfp_stream_set_accuracy/_precision split:
//   - fixed-accuracy (the default): the per-block plane cutoff is derived
//     from the caller's error bound — absolute bounds directly, pointwise
//     relative bounds via the standard log-preprocessing wrapper the paper
//     applies for fairness;
//   - fixed-precision: a constructor-pinned plane count independent of the
//     bound.
#pragma once

#include <array>
#include <cstdint>

#include "compression/compressor.hpp"

namespace cqs::zfp {

/// Total bit planes carried by the fixed-point representation.
inline constexpr int kTotalPlanes = 62;

/// Planes to keep for an absolute tolerance given the block exponent:
/// dropped-plane error (incl. transform amplification) must stay <= tol.
/// Total on every input: a NaN or non-positive tolerance keeps every plane
/// (exact), an infinite tolerance keeps none, and extreme (tolerance,
/// emax) pairs clamp to [0, kTotalPlanes] without UB. Exposed for the
/// edge-case property test.
int planes_for_tolerance(double tolerance, int emax);

namespace detail {

/// Exactly invertible two-level integer Haar lifting on 4 coefficients —
/// scalar reference and the runtime-dispatched (AVX2/NEON) entry the
/// codec uses. The dispatched path is bit-identical to the scalar one by
/// construction (pure integer arithmetic); pinned by zfp_test.
void forward_transform_scalar(std::array<std::int64_t, 4>& v);
void inverse_transform_scalar(std::array<std::int64_t, 4>& v);
void forward_transform(std::array<std::int64_t, 4>& v);
void inverse_transform(std::array<std::int64_t, 4>& v);

/// Active transform backend: "avx2", "neon", or "scalar".
const char* transform_backend();

}  // namespace detail

class ZfpCodec final : public compression::Compressor {
 public:
  /// `fixed_precision`: if > 0, encode exactly this many bit planes per
  /// block regardless of the bound (ZFP's fixed-precision mode). Throws
  /// std::invalid_argument outside [0, kTotalPlanes].
  explicit ZfpCodec(int fixed_precision = 0);

  std::string name() const override { return "zfp"; }
  bool supports(compression::BoundMode mode) const override {
    return mode == compression::BoundMode::kAbsolute ||
           mode == compression::BoundMode::kPointwiseRelative;
  }
  Bytes compress(std::span<const double> data,
                 const compression::ErrorBound& bound) const override;
  void decompress(ByteSpan compressed, std::span<double> out) const override;
  Bytes compress(std::span<const double> data,
                 const compression::ErrorBound& bound,
                 compression::CodecScratch& scratch) const override;
  void decompress(ByteSpan compressed, std::span<double> out,
                  compression::CodecScratch& scratch) const override;
  std::size_t element_count(ByteSpan compressed) const override;

  /// Builds the zfp container into `out` (cleared first) with pooled
  /// scratch and no extra copy — the entry point the rANS entropy stage
  /// re-codes. `out` must not alias the scratch buffers the codec uses
  /// internally (values/codes/payload/masks); scratch.packed is fine.
  void compress_into(std::span<const double> data,
                     const compression::ErrorBound& bound,
                     compression::CodecScratch& scratch, Bytes& out) const;

 private:
  void compress_absolute_into(std::span<const double> data, double tolerance,
                              std::uint8_t flags, Bytes& out) const;
  void decompress_absolute(ByteSpan inner, std::span<double> out) const;

  int fixed_precision_;
};

}  // namespace cqs::zfp
