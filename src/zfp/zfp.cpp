#include "zfp/zfp.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "common/bits.hpp"
#include "compression/codec_scratch.hpp"
#include "lossless/zx.hpp"

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define CQS_ZFP_AVX2 1
#include <immintrin.h>
#endif
#if defined(__aarch64__)
#define CQS_ZFP_NEON 1
#include <arm_neon.h>
#endif

namespace cqs::zfp {
namespace {

constexpr std::byte kMagic0{'Z'};
constexpr std::byte kMagic1{'F'};
constexpr std::uint8_t kFlagRelative = 1;

// Fixed-point target: the block maximum is scaled to ~2^kFixedExp, leaving
// headroom for transform growth inside 62 negabinary planes.
constexpr int kFixedExp = 58;
constexpr int kEmaxBias = 1100;  // ilogb(double) in [-1074, 1023]
constexpr std::uint64_t kNegabinaryMask = 0xaaaaaaaaaaaaaaaaull;

inline std::uint64_t int_to_negabinary(std::int64_t q) {
  return (static_cast<std::uint64_t>(q) + kNegabinaryMask) ^ kNegabinaryMask;
}

inline std::int64_t negabinary_to_int(std::uint64_t u) {
  return static_cast<std::int64_t>((u ^ kNegabinaryMask) - kNegabinaryMask);
}

// ---------------------------------------------------------------------------
// Plane packing tables. A plane's 4 coefficient bits live in a nibble with
// coefficient i at bit (3 - i), so a nibble emitted through the multi-bit
// writer leaves MSB-first in ascending-i order — the exact order the
// historical per-bit coder produced. `extract[mask][nib]` packs the
// mask-selected bits (ascending i, first selected at the packed MSB);
// `deposit[mask][packed]` is its inverse.
// ---------------------------------------------------------------------------

struct PackTables {
  std::array<std::array<std::uint8_t, 16>, 16> extract{};
  std::array<std::array<std::uint8_t, 16>, 16> deposit{};
};

constexpr PackTables make_pack_tables() {
  PackTables t{};
  for (int mask = 0; mask < 16; ++mask) {
    for (int nib = 0; nib < 16; ++nib) {
      std::uint8_t packed = 0;
      for (int i = 0; i < 4; ++i) {
        if (mask & (8 >> i)) {
          packed = static_cast<std::uint8_t>((packed << 1) |
                                             ((nib >> (3 - i)) & 1));
        }
      }
      t.extract[mask][nib] = packed;
    }
    const int k = std::popcount(static_cast<unsigned>(mask));
    for (int packed = 0; packed < (1 << k); ++packed) {
      std::uint8_t nib = 0;
      int left = k;
      for (int i = 0; i < 4; ++i) {
        if (mask & (8 >> i)) {
          nib = static_cast<std::uint8_t>(nib |
                                          (((packed >> --left) & 1) << (3 - i)));
        }
      }
      t.deposit[mask][packed] = nib;
    }
  }
  return t;
}

constexpr PackTables kPack = make_pack_tables();

// ---------------------------------------------------------------------------
// Embedded bit-plane coder. Group-test / significance / refinement bits are
// gathered into packed words per plane and move through BitWriter's
// multi-bit path; the emitted bitstream is identical to the per-bit coder.
// ---------------------------------------------------------------------------

void encode_block(BitWriter& writer, const std::array<std::uint64_t, 4>& u,
                  int kept) {
  const int lo = kTotalPlanes - kept;
  int plane = kTotalPlanes - 1;

  // Local accumulator so a plane's refinement + group + significance bits
  // cost one writer call, not one per field.
  std::uint64_t acc = 0;
  int nacc = 0;
  const auto put = [&](std::uint64_t value, int nbits) {
    if (nacc + nbits > 64) {
      writer.write(acc, nacc);
      acc = 0;
      nacc = 0;
    }
    acc = (acc << nbits) | value;
    nacc += nbits;
  };

  // While nothing is significant, every plane above the top set bit costs
  // exactly one zero group bit — emit the whole run in one shot. `u` is
  // never all-zero here (empty blocks short-circuit before encoding).
  const std::uint64_t any = u[0] | u[1] | u[2] | u[3];
  const int top = 63 - std::countl_zero(any);
  if (plane > top) {
    const int zeros = std::min(plane - top, kept);
    put(0, zeros);
    plane -= zeros;
  }

  std::uint8_t sig = 0;
  for (; plane >= lo; --plane) {
    const std::uint8_t nib = static_cast<std::uint8_t>(
        (((u[0] >> plane) & 1u) << 3) | (((u[1] >> plane) & 1u) << 2) |
        (((u[2] >> plane) & 1u) << 1) | ((u[3] >> plane) & 1u));
    if (sig == 0xF) {
      put(nib, 4);  // refinement only: every coefficient is significant
      continue;
    }
    put(kPack.extract[sig][nib], std::popcount(static_cast<unsigned>(sig)));
    const std::uint8_t ins = static_cast<std::uint8_t>(~sig & 0xF);
    const std::uint8_t newly = static_cast<std::uint8_t>(nib & ins);
    if (newly == 0) {
      put(0, 1);  // group test: nobody becomes significant at this plane
      continue;
    }
    put(1, 1);
    put(kPack.extract[ins][nib], std::popcount(static_cast<unsigned>(ins)));
    sig |= newly;
  }
  if (nacc > 0) writer.write(acc, nacc);
}

void decode_block(BitReader& reader, std::array<std::uint64_t, 4>& u,
                  int kept) {
  u = {0, 0, 0, 0};
  const int lo = kTotalPlanes - kept;
  int plane = kTotalPlanes - 1;
  std::uint8_t sig = 0;

  const auto deposit = [&](std::uint8_t nib, int p) {
    u[0] |= static_cast<std::uint64_t>((nib >> 3) & 1u) << p;
    u[1] |= static_cast<std::uint64_t>((nib >> 2) & 1u) << p;
    u[2] |= static_cast<std::uint64_t>((nib >> 1) & 1u) << p;
    u[3] |= static_cast<std::uint64_t>(nib & 1u) << p;
  };

  // Leading zero-group planes arrive as a run of 0 bits; count the run in
  // the peek window instead of one read_bit per plane.
  while (plane >= lo && sig == 0) {
    const int n = std::min(plane - lo + 1, 57);
    const std::uint64_t w = reader.peek(n);
    if (w == 0) {
      reader.consume(n);
      plane -= n;
      continue;
    }
    const int zeros = n - std::bit_width(w);
    reader.consume(zeros + 1);  // the run plus the group bit that fired
    plane -= zeros;
    const auto nib = static_cast<std::uint8_t>(reader.read(4));
    deposit(nib, plane);
    sig = nib;
    --plane;
  }

  for (; plane >= lo; --plane) {
    if (sig == 0xF) {
      deposit(static_cast<std::uint8_t>(reader.read(4)), plane);
      continue;
    }
    const int nsig = std::popcount(static_cast<unsigned>(sig));
    if (nsig > 0) {
      deposit(kPack.deposit[sig][reader.read(nsig)], plane);
    }
    if (reader.read_bit() != 0) {
      const std::uint8_t ins = static_cast<std::uint8_t>(~sig & 0xF);
      const std::uint8_t nib =
          kPack.deposit[ins]
                       [reader.read(std::popcount(static_cast<unsigned>(ins)))];
      deposit(nib, plane);
      sig |= nib;
    }
  }
}

// ---------------------------------------------------------------------------
// Runtime-dispatched integer Haar lifting. All arithmetic is exact 64-bit
// integer work, so every backend is bit-identical to the scalar reference
// (pinned by zfp_test); dispatch mirrors qsim/gates.cpp.
// ---------------------------------------------------------------------------

#if defined(CQS_ZFP_AVX2)

__attribute__((target("avx2"))) inline __m256i asr1_epi64(__m256i x) {
  // AVX2 has no 64-bit arithmetic shift; for a shift by one, the sign bit
  // ORed back over the logical shift is exact.
  const __m256i sign =
      _mm256_set1_epi64x(static_cast<long long>(0x8000000000000000ull));
  return _mm256_or_si256(_mm256_srli_epi64(x, 1), _mm256_and_si256(x, sign));
}

__attribute__((target("avx2"))) inline __m128i asr1_epi64(__m128i x) {
  const __m128i sign =
      _mm_set1_epi64x(static_cast<long long>(0x8000000000000000ull));
  return _mm_or_si128(_mm_srli_epi64(x, 1), _mm_and_si128(x, sign));
}

__attribute__((target("avx2"))) void forward_transform_avx2(
    std::array<std::int64_t, 4>& v) {
  const __m256i x =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(v.data()));
  // Pairwise lift: lanes 0/2 of d carry d1/d2 and of s carry s1/s2.
  const __m256i sw = _mm256_permute4x64_epi64(x, _MM_SHUFFLE(2, 3, 0, 1));
  const __m256i d = _mm256_sub_epi64(x, sw);
  const __m256i s = _mm256_add_epi64(sw, asr1_epi64(d));
  // Second level on (s1, s2): lane 0 of ds/ss holds the result.
  const __m256i s_sw = _mm256_permute4x64_epi64(s, _MM_SHUFFLE(1, 0, 3, 2));
  const __m256i ds = _mm256_sub_epi64(s, s_sw);
  const __m256i ss = _mm256_add_epi64(s_sw, asr1_epi64(ds));
  // Assemble {ss, ds, d1, d2}.
  const __m256i lo_pair = _mm256_unpacklo_epi64(ss, ds);
  const __m256i d_pair = _mm256_permute4x64_epi64(d, _MM_SHUFFLE(0, 0, 2, 0));
  const __m256i out = _mm256_permute2x128_si256(lo_pair, d_pair, 0x20);
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(v.data()), out);
}

__attribute__((target("avx2"))) void inverse_transform_avx2(
    std::array<std::int64_t, 4>& v) {
  // Level 2 is two scalar ops; level 1 un-lifts both pairs in one vector.
  const std::int64_t s2 = v[0] - (v[1] >> 1);
  const std::int64_t s1 = s2 + v[1];
  const __m128i s = _mm_set_epi64x(s2, s1);  // [s1, s2]
  const __m128i d =
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(v.data() + 2));
  const __m128i qo = _mm_sub_epi64(s, asr1_epi64(d));  // [q1, q3]
  const __m128i qe = _mm_add_epi64(qo, d);             // [q0, q2]
  _mm_storeu_si128(reinterpret_cast<__m128i*>(v.data()),
                   _mm_unpacklo_epi64(qe, qo));
  _mm_storeu_si128(reinterpret_cast<__m128i*>(v.data() + 2),
                   _mm_unpackhi_epi64(qe, qo));
}

#endif  // CQS_ZFP_AVX2

#if defined(CQS_ZFP_NEON)

void forward_transform_neon(std::array<std::int64_t, 4>& v) {
  const int64x2_t a = vld1q_s64(v.data());      // [v0, v1]
  const int64x2_t b = vld1q_s64(v.data() + 2);  // [v2, v3]
  const int64x2_t even = vzip1q_s64(a, b);      // [v0, v2]
  const int64x2_t odd = vzip2q_s64(a, b);       // [v1, v3]
  const int64x2_t d = vsubq_s64(even, odd);     // [d1, d2]
  const int64x2_t s = vaddq_s64(odd, vshrq_n_s64(d, 1));  // [s1, s2]
  const std::int64_t ds = vgetq_lane_s64(s, 0) - vgetq_lane_s64(s, 1);
  const std::int64_t ss = vgetq_lane_s64(s, 1) + (ds >> 1);
  v[0] = ss;
  v[1] = ds;
  vst1q_s64(v.data() + 2, d);
}

void inverse_transform_neon(std::array<std::int64_t, 4>& v) {
  const std::int64_t s2 = v[0] - (v[1] >> 1);
  const std::int64_t s1 = s2 + v[1];
  const int64x2_t s = vcombine_s64(vcreate_s64(static_cast<std::uint64_t>(s1)),
                                   vcreate_s64(static_cast<std::uint64_t>(s2)));
  const int64x2_t d = vld1q_s64(v.data() + 2);            // [d1, d2]
  const int64x2_t qo = vsubq_s64(s, vshrq_n_s64(d, 1));   // [q1, q3]
  const int64x2_t qe = vaddq_s64(qo, d);                  // [q0, q2]
  vst1q_s64(v.data(), vzip1q_s64(qe, qo));                // [q0, q1]
  vst1q_s64(v.data() + 2, vzip2q_s64(qe, qo));            // [q2, q3]
}

#endif  // CQS_ZFP_NEON

enum class TransformBackend { kScalar, kAvx2, kNeon };

TransformBackend detect_transform_backend() {
#if defined(CQS_ZFP_AVX2)
  if (__builtin_cpu_supports("avx2")) return TransformBackend::kAvx2;
#elif defined(CQS_ZFP_NEON)
  return TransformBackend::kNeon;
#endif
  return TransformBackend::kScalar;
}

const TransformBackend kTransformBackend = detect_transform_backend();

}  // namespace

namespace detail {

/// Exactly invertible two-level integer Haar lifting on 4 coefficients.
void forward_transform_scalar(std::array<std::int64_t, 4>& v) {
  const std::int64_t d1 = v[0] - v[1];
  const std::int64_t s1 = v[1] + (d1 >> 1);
  const std::int64_t d2 = v[2] - v[3];
  const std::int64_t s2 = v[3] + (d2 >> 1);
  const std::int64_t ds = s1 - s2;
  const std::int64_t ss = s2 + (ds >> 1);
  v = {ss, ds, d1, d2};
}

void inverse_transform_scalar(std::array<std::int64_t, 4>& v) {
  const std::int64_t ss = v[0];
  const std::int64_t ds = v[1];
  const std::int64_t d1 = v[2];
  const std::int64_t d2 = v[3];
  const std::int64_t s2 = ss - (ds >> 1);
  const std::int64_t s1 = s2 + ds;
  const std::int64_t q1 = s1 - (d1 >> 1);
  const std::int64_t q0 = q1 + d1;
  const std::int64_t q3 = s2 - (d2 >> 1);
  const std::int64_t q2 = q3 + d2;
  v = {q0, q1, q2, q3};
}

void forward_transform(std::array<std::int64_t, 4>& v) {
  switch (kTransformBackend) {
#if defined(CQS_ZFP_AVX2)
    case TransformBackend::kAvx2:
      forward_transform_avx2(v);
      return;
#endif
#if defined(CQS_ZFP_NEON)
    case TransformBackend::kNeon:
      forward_transform_neon(v);
      return;
#endif
    default:
      break;
  }
  forward_transform_scalar(v);
}

void inverse_transform(std::array<std::int64_t, 4>& v) {
  switch (kTransformBackend) {
#if defined(CQS_ZFP_AVX2)
    case TransformBackend::kAvx2:
      inverse_transform_avx2(v);
      return;
#endif
#if defined(CQS_ZFP_NEON)
    case TransformBackend::kNeon:
      inverse_transform_neon(v);
      return;
#endif
    default:
      break;
  }
  inverse_transform_scalar(v);
}

const char* transform_backend() {
  switch (kTransformBackend) {
    case TransformBackend::kAvx2: return "avx2";
    case TransformBackend::kNeon: return "neon";
    case TransformBackend::kScalar: return "scalar";
  }
  return "?";
}

}  // namespace detail

/// Planes to keep for an absolute tolerance given the block exponent:
/// dropped-plane error (incl. transform amplification) must stay <= tol.
int planes_for_tolerance(double tolerance, int emax) {
  if (!(tolerance > 0.0)) return kTotalPlanes;  // NaN or <= 0: exact
  if (std::isinf(tolerance)) return 0;
  const double ulp = std::ldexp(1.0, emax - kFixedExp);
  const double ratio = tolerance / ulp;
  // ldexp saturates at the double range: an overflowed ulp (ratio 0) means
  // the tolerance is below one ulp of the block scale — keep every plane;
  // an underflowed ulp (ratio inf) means the tolerance dwarfs the block.
  if (!(ratio > 0.0)) return kTotalPlanes;
  if (std::isinf(ratio)) return 0;
  const int p = static_cast<int>(std::floor(std::log2(ratio))) - 3;
  return std::clamp(kTotalPlanes - p, 0, kTotalPlanes);
}

ZfpCodec::ZfpCodec(int fixed_precision) : fixed_precision_(fixed_precision) {
  if (fixed_precision < 0 || fixed_precision > kTotalPlanes) {
    throw std::invalid_argument(
        "zfp: fixed_precision must be in [0, 62] planes");
  }
}

void ZfpCodec::compress_absolute_into(std::span<const double> data,
                                      double tolerance, std::uint8_t flags,
                                      Bytes& out) const {
  out.push_back(kMagic0);
  out.push_back(kMagic1);
  out.push_back(static_cast<std::byte>(flags));
  put_varint(out, data.size());

  BitWriter writer(out);
  for (std::size_t base = 0; base < data.size(); base += 4) {
    std::array<double, 4> block{};
    const std::size_t have = std::min<std::size_t>(4, data.size() - base);
    for (std::size_t i = 0; i < have; ++i) block[i] = data[base + i];

    double amax = 0.0;
    for (double d : block) {
      if (!std::isfinite(d)) {
        throw std::invalid_argument("zfp: nonfinite value unsupported");
      }
      amax = std::max(amax, std::abs(d));
    }
    if (amax == 0.0) {
      writer.write_bit(1);  // empty block
      continue;
    }
    writer.write_bit(0);
    const int emax = std::ilogb(amax);
    const int kept = fixed_precision_ > 0
                         ? fixed_precision_
                         : planes_for_tolerance(tolerance, emax);
    writer.write(static_cast<std::uint64_t>(emax + kEmaxBias), 12);
    writer.write(static_cast<std::uint64_t>(kept), 6);

    std::array<std::int64_t, 4> fixed{};
    const double scale = std::ldexp(1.0, kFixedExp - emax);
    for (int i = 0; i < 4; ++i) {
      fixed[i] = static_cast<std::int64_t>(std::llround(block[i] * scale));
    }
    detail::forward_transform(fixed);
    std::array<std::uint64_t, 4> u{};
    for (int i = 0; i < 4; ++i) u[i] = int_to_negabinary(fixed[i]);
    encode_block(writer, u, kept);
  }
  writer.flush();
}

void ZfpCodec::decompress_absolute(ByteSpan in, std::span<double> out) const {
  std::size_t offset = 3;
  const std::uint64_t count = get_varint(in, offset);
  if (out.size() != count) {
    throw std::runtime_error("zfp: output size mismatch");
  }
  BitReader reader(in.subspan(offset));
  for (std::size_t base = 0; base < count; base += 4) {
    const std::size_t have = std::min<std::size_t>(4, count - base);
    if (reader.read_bit() != 0) {
      for (std::size_t i = 0; i < have; ++i) out[base + i] = 0.0;
      continue;
    }
    const int emax = static_cast<int>(reader.read(12)) - kEmaxBias;
    const int kept = static_cast<int>(reader.read(6));
    std::array<std::uint64_t, 4> u{};
    decode_block(reader, u, kept);
    std::array<std::int64_t, 4> fixed{};
    for (int i = 0; i < 4; ++i) fixed[i] = negabinary_to_int(u[i]);
    detail::inverse_transform(fixed);
    const double scale = std::ldexp(1.0, emax - kFixedExp);
    for (std::size_t i = 0; i < have; ++i) {
      out[base + i] = static_cast<double>(fixed[i]) * scale;
    }
  }
}

Bytes ZfpCodec::compress(std::span<const double> data,
                         const compression::ErrorBound& bound) const {
  compression::CodecScratch scratch;
  return compress(data, bound, scratch);
}

void ZfpCodec::decompress(ByteSpan compressed, std::span<double> out) const {
  compression::CodecScratch scratch;
  decompress(compressed, out, scratch);
}

Bytes ZfpCodec::compress(std::span<const double> data,
                         const compression::ErrorBound& bound,
                         compression::CodecScratch& scratch) const {
  compress_into(data, bound, scratch, scratch.packed);
  return Bytes(scratch.packed.begin(), scratch.packed.end());
}

void ZfpCodec::compress_into(std::span<const double> data,
                             const compression::ErrorBound& bound,
                             compression::CodecScratch& scratch,
                             Bytes& out) const {
  if (!supports(bound.mode)) {
    throw std::invalid_argument("zfp: unsupported bound mode");
  }
  if (!(bound.value > 0.0) && fixed_precision_ <= 0) {
    throw std::invalid_argument("zfp: non-positive bound");
  }
  out.clear();
  if (bound.mode == compression::BoundMode::kAbsolute) {
    compress_absolute_into(data, bound.value, 0, out);
    return;
  }

  // Pointwise-relative via log preprocessing (the paper's methodology for
  // ZFP): compress log2|d| under the equivalent absolute bound.
  const double log_bound = std::log2(1.0 + bound.value);
  auto& logs = scratch.values;
  logs.clear();
  logs.reserve(data.size());
  auto& negative = scratch.mask_a;
  auto& special = scratch.mask_b;
  negative.assign(data.size(), false);
  special.assign(data.size(), false);
  Bytes& special_values = scratch.special_bytes;
  special_values.clear();
  for (std::size_t i = 0; i < data.size(); ++i) {
    const double d = data[i];
    negative[i] = std::signbit(d);
    if (d == 0.0 || !std::isfinite(d)) {
      special[i] = true;
      put_scalar(special_values, d);
      logs.push_back(0.0);
    } else {
      logs.push_back(std::log2(std::abs(d)));
    }
  }
  Bytes& inner = scratch.codes;
  inner.clear();
  compress_absolute_into(logs, log_bound, kFlagRelative, inner);

  Bytes& sides = scratch.payload;
  sides.clear();
  write_bitmask(sides, negative);
  write_bitmask(sides, special);
  put_varint(sides, special_values.size() / sizeof(double));
  sides.insert(sides.end(), special_values.begin(), special_values.end());

  out.push_back(kMagic0);
  out.push_back(kMagic1);
  out.push_back(static_cast<std::byte>(kFlagRelative));
  put_varint(out, data.size());
  put_varint(out, inner.size());
  out.insert(out.end(), inner.begin(), inner.end());
  lossless::zx_compress_into(sides, {}, scratch.zx, out);
}

void ZfpCodec::decompress(ByteSpan compressed, std::span<double> out,
                          compression::CodecScratch& scratch) const {
  if (compressed.size() < 3 || compressed[0] != kMagic0 ||
      compressed[1] != kMagic1) {
    throw std::runtime_error("zfp: bad magic");
  }
  const auto flags = static_cast<std::uint8_t>(compressed[2]);
  if ((flags & kFlagRelative) == 0) {
    decompress_absolute(compressed, out);
    return;
  }
  std::size_t offset = 3;
  const std::uint64_t count = get_varint(compressed, offset);
  if (out.size() != count) {
    throw std::runtime_error("zfp: output size mismatch");
  }
  const std::uint64_t inner_size = get_varint(compressed, offset);
  if (offset + inner_size > compressed.size()) {
    throw std::runtime_error("zfp: inner blob truncated");
  }
  auto& logs = scratch.values;
  logs.resize(count);
  decompress_absolute(compressed.subspan(offset, inner_size), logs);
  Bytes& sides = scratch.inner;
  lossless::zx_decompress_into(compressed.subspan(offset + inner_size),
                               scratch.zx, sides);
  std::size_t pos = 0;
  auto& negative = scratch.mask_a;
  auto& special = scratch.mask_b;
  read_bitmask(sides, pos, negative);
  read_bitmask(sides, pos, special);
  const std::uint64_t special_count = get_varint(sides, pos);
  auto& special_values = scratch.special_values;
  special_values.resize(special_count);
  for (std::uint64_t i = 0; i < special_count; ++i) {
    special_values[i] = get_scalar<double>(sides, pos);
  }
  std::size_t special_pos = 0;
  for (std::size_t i = 0; i < count; ++i) {
    if (special[i]) {
      if (special_pos >= special_values.size()) {
        throw std::runtime_error("zfp: special stream truncated");
      }
      out[i] = special_values[special_pos++];
    } else {
      const double magnitude = std::exp2(logs[i]);
      out[i] = negative[i] ? -magnitude : magnitude;
    }
  }
}

std::size_t ZfpCodec::element_count(ByteSpan compressed) const {
  if (compressed.size() < 3 || compressed[0] != kMagic0 ||
      compressed[1] != kMagic1) {
    throw std::runtime_error("zfp: bad magic");
  }
  std::size_t offset = 3;
  return get_varint(compressed, offset);
}

}  // namespace cqs::zfp
