#include "zfp/zfp.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "common/bits.hpp"
#include "compression/codec_scratch.hpp"
#include "lossless/zx.hpp"

namespace cqs::zfp {
namespace {

constexpr std::byte kMagic0{'Z'};
constexpr std::byte kMagic1{'F'};
constexpr std::uint8_t kFlagRelative = 1;

// Fixed-point target: the block maximum is scaled to ~2^kFixedExp, leaving
// headroom for transform growth inside 62 negabinary planes.
constexpr int kFixedExp = 58;
constexpr int kEmaxBias = 1100;  // ilogb(double) in [-1074, 1023]
constexpr std::uint64_t kNegabinaryMask = 0xaaaaaaaaaaaaaaaaull;

inline std::uint64_t int_to_negabinary(std::int64_t q) {
  return (static_cast<std::uint64_t>(q) + kNegabinaryMask) ^ kNegabinaryMask;
}

inline std::int64_t negabinary_to_int(std::uint64_t u) {
  return static_cast<std::int64_t>((u ^ kNegabinaryMask) - kNegabinaryMask);
}

/// Exactly invertible two-level integer Haar lifting on 4 coefficients.
inline void forward_transform(std::array<std::int64_t, 4>& v) {
  const std::int64_t d1 = v[0] - v[1];
  const std::int64_t s1 = v[1] + (d1 >> 1);
  const std::int64_t d2 = v[2] - v[3];
  const std::int64_t s2 = v[3] + (d2 >> 1);
  const std::int64_t ds = s1 - s2;
  const std::int64_t ss = s2 + (ds >> 1);
  v = {ss, ds, d1, d2};
}

inline void inverse_transform(std::array<std::int64_t, 4>& v) {
  const std::int64_t ss = v[0];
  const std::int64_t ds = v[1];
  const std::int64_t d1 = v[2];
  const std::int64_t d2 = v[3];
  const std::int64_t s2 = ss - (ds >> 1);
  const std::int64_t s1 = s2 + ds;
  const std::int64_t q1 = s1 - (d1 >> 1);
  const std::int64_t q0 = q1 + d1;
  const std::int64_t q3 = s2 - (d2 >> 1);
  const std::int64_t q2 = q3 + d2;
  v = {q0, q1, q2, q3};
}

/// Planes to keep for an absolute tolerance given the block exponent:
/// dropped-plane error (incl. transform amplification) must stay <= tol.
int planes_for_tolerance(double tolerance, int emax) {
  const double ulp = std::ldexp(1.0, emax - kFixedExp);
  if (!(tolerance > 0.0)) return kTotalPlanes;
  const int p =
      static_cast<int>(std::floor(std::log2(tolerance / ulp))) - 3;
  return std::clamp(kTotalPlanes - p, 0, kTotalPlanes);
}

void encode_block(BitWriter& writer, const std::array<std::uint64_t, 4>& u,
                  int kept) {
  std::array<bool, 4> significant{};
  for (int plane = kTotalPlanes - 1; plane >= kTotalPlanes - kept; --plane) {
    // Refinement bits for already-significant coefficients.
    for (int i = 0; i < 4; ++i) {
      if (significant[i]) writer.write_bit((u[i] >> plane) & 1u);
    }
    // Group test over the rest: one bit says whether any becomes
    // significant at this plane; if so, one bit each.
    std::uint64_t group = 0;
    for (int i = 0; i < 4; ++i) {
      if (!significant[i]) group |= (u[i] >> plane) & 1u;
    }
    bool any_insignificant = !(significant[0] && significant[1] &&
                               significant[2] && significant[3]);
    if (!any_insignificant) continue;
    writer.write_bit(group);
    if (group != 0) {
      for (int i = 0; i < 4; ++i) {
        if (significant[i]) continue;
        const std::uint64_t bit = (u[i] >> plane) & 1u;
        writer.write_bit(bit);
        if (bit) significant[i] = true;
      }
    }
  }
}

void decode_block(BitReader& reader, std::array<std::uint64_t, 4>& u,
                  int kept) {
  u = {0, 0, 0, 0};
  std::array<bool, 4> significant{};
  for (int plane = kTotalPlanes - 1; plane >= kTotalPlanes - kept; --plane) {
    for (int i = 0; i < 4; ++i) {
      if (significant[i]) {
        u[i] |= static_cast<std::uint64_t>(reader.read_bit()) << plane;
      }
    }
    bool any_insignificant = !(significant[0] && significant[1] &&
                               significant[2] && significant[3]);
    if (!any_insignificant) continue;
    if (reader.read_bit() != 0) {
      for (int i = 0; i < 4; ++i) {
        if (significant[i]) continue;
        const std::uint32_t bit = reader.read_bit();
        if (bit) {
          u[i] |= 1ull << plane;
          significant[i] = true;
        }
      }
    }
  }
}

}  // namespace

void ZfpCodec::compress_absolute_into(std::span<const double> data,
                                      double tolerance, std::uint8_t flags,
                                      Bytes& out) const {
  out.push_back(kMagic0);
  out.push_back(kMagic1);
  out.push_back(static_cast<std::byte>(flags));
  put_varint(out, data.size());

  BitWriter writer(out);
  for (std::size_t base = 0; base < data.size(); base += 4) {
    std::array<double, 4> block{};
    const std::size_t have = std::min<std::size_t>(4, data.size() - base);
    for (std::size_t i = 0; i < have; ++i) block[i] = data[base + i];

    double amax = 0.0;
    for (double d : block) {
      if (!std::isfinite(d)) {
        throw std::invalid_argument("zfp: nonfinite value unsupported");
      }
      amax = std::max(amax, std::abs(d));
    }
    if (amax == 0.0) {
      writer.write_bit(1);  // empty block
      continue;
    }
    writer.write_bit(0);
    const int emax = std::ilogb(amax);
    const int kept = fixed_precision_ > 0
                         ? std::min(fixed_precision_, kTotalPlanes)
                         : planes_for_tolerance(tolerance, emax);
    writer.write(static_cast<std::uint64_t>(emax + kEmaxBias), 12);
    writer.write(static_cast<std::uint64_t>(kept), 6);

    std::array<std::int64_t, 4> fixed{};
    const double scale = std::ldexp(1.0, kFixedExp - emax);
    for (int i = 0; i < 4; ++i) {
      fixed[i] = static_cast<std::int64_t>(std::llround(block[i] * scale));
    }
    forward_transform(fixed);
    std::array<std::uint64_t, 4> u{};
    for (int i = 0; i < 4; ++i) u[i] = int_to_negabinary(fixed[i]);
    encode_block(writer, u, kept);
  }
  writer.flush();
}

void ZfpCodec::decompress_absolute(ByteSpan in, std::span<double> out) const {
  std::size_t offset = 3;
  const std::uint64_t count = get_varint(in, offset);
  if (out.size() != count) {
    throw std::runtime_error("zfp: output size mismatch");
  }
  BitReader reader(in.subspan(offset));
  for (std::size_t base = 0; base < count; base += 4) {
    const std::size_t have = std::min<std::size_t>(4, count - base);
    if (reader.read_bit() != 0) {
      for (std::size_t i = 0; i < have; ++i) out[base + i] = 0.0;
      continue;
    }
    const int emax = static_cast<int>(reader.read(12)) - kEmaxBias;
    const int kept = static_cast<int>(reader.read(6));
    std::array<std::uint64_t, 4> u{};
    decode_block(reader, u, kept);
    std::array<std::int64_t, 4> fixed{};
    for (int i = 0; i < 4; ++i) fixed[i] = negabinary_to_int(u[i]);
    inverse_transform(fixed);
    const double scale = std::ldexp(1.0, emax - kFixedExp);
    for (std::size_t i = 0; i < have; ++i) {
      out[base + i] = static_cast<double>(fixed[i]) * scale;
    }
  }
}

Bytes ZfpCodec::compress(std::span<const double> data,
                         const compression::ErrorBound& bound) const {
  compression::CodecScratch scratch;
  return compress(data, bound, scratch);
}

void ZfpCodec::decompress(ByteSpan compressed, std::span<double> out) const {
  compression::CodecScratch scratch;
  decompress(compressed, out, scratch);
}

Bytes ZfpCodec::compress(std::span<const double> data,
                         const compression::ErrorBound& bound,
                         compression::CodecScratch& scratch) const {
  if (!supports(bound.mode)) {
    throw std::invalid_argument("zfp: unsupported bound mode");
  }
  if (!(bound.value > 0.0) && fixed_precision_ <= 0) {
    throw std::invalid_argument("zfp: non-positive bound");
  }
  Bytes& out = scratch.packed;
  out.clear();
  if (bound.mode == compression::BoundMode::kAbsolute) {
    compress_absolute_into(data, bound.value, 0, out);
    return Bytes(out.begin(), out.end());
  }

  // Pointwise-relative via log preprocessing (the paper's methodology for
  // ZFP): compress log2|d| under the equivalent absolute bound.
  const double log_bound = std::log2(1.0 + bound.value);
  auto& logs = scratch.values;
  logs.clear();
  logs.reserve(data.size());
  auto& negative = scratch.mask_a;
  auto& special = scratch.mask_b;
  negative.assign(data.size(), false);
  special.assign(data.size(), false);
  Bytes& special_values = scratch.special_bytes;
  special_values.clear();
  for (std::size_t i = 0; i < data.size(); ++i) {
    const double d = data[i];
    negative[i] = std::signbit(d);
    if (d == 0.0 || !std::isfinite(d)) {
      special[i] = true;
      put_scalar(special_values, d);
      logs.push_back(0.0);
    } else {
      logs.push_back(std::log2(std::abs(d)));
    }
  }
  Bytes& inner = scratch.codes;
  inner.clear();
  compress_absolute_into(logs, log_bound, kFlagRelative, inner);

  Bytes& sides = scratch.payload;
  sides.clear();
  write_bitmask(sides, negative);
  write_bitmask(sides, special);
  put_varint(sides, special_values.size() / sizeof(double));
  sides.insert(sides.end(), special_values.begin(), special_values.end());

  out.push_back(kMagic0);
  out.push_back(kMagic1);
  out.push_back(static_cast<std::byte>(kFlagRelative));
  put_varint(out, data.size());
  put_varint(out, inner.size());
  out.insert(out.end(), inner.begin(), inner.end());
  lossless::zx_compress_into(sides, {}, scratch.zx, out);
  return Bytes(out.begin(), out.end());
}

void ZfpCodec::decompress(ByteSpan compressed, std::span<double> out,
                          compression::CodecScratch& scratch) const {
  if (compressed.size() < 3 || compressed[0] != kMagic0 ||
      compressed[1] != kMagic1) {
    throw std::runtime_error("zfp: bad magic");
  }
  const auto flags = static_cast<std::uint8_t>(compressed[2]);
  if ((flags & kFlagRelative) == 0) {
    decompress_absolute(compressed, out);
    return;
  }
  std::size_t offset = 3;
  const std::uint64_t count = get_varint(compressed, offset);
  if (out.size() != count) {
    throw std::runtime_error("zfp: output size mismatch");
  }
  const std::uint64_t inner_size = get_varint(compressed, offset);
  if (offset + inner_size > compressed.size()) {
    throw std::runtime_error("zfp: inner blob truncated");
  }
  auto& logs = scratch.values;
  logs.resize(count);
  decompress_absolute(compressed.subspan(offset, inner_size), logs);
  Bytes& sides = scratch.inner;
  lossless::zx_decompress_into(compressed.subspan(offset + inner_size),
                               scratch.zx, sides);
  std::size_t pos = 0;
  auto& negative = scratch.mask_a;
  auto& special = scratch.mask_b;
  read_bitmask(sides, pos, negative);
  read_bitmask(sides, pos, special);
  const std::uint64_t special_count = get_varint(sides, pos);
  auto& special_values = scratch.special_values;
  special_values.resize(special_count);
  for (std::uint64_t i = 0; i < special_count; ++i) {
    special_values[i] = get_scalar<double>(sides, pos);
  }
  std::size_t special_pos = 0;
  for (std::size_t i = 0; i < count; ++i) {
    if (special[i]) {
      if (special_pos >= special_values.size()) {
        throw std::runtime_error("zfp: special stream truncated");
      }
      out[i] = special_values[special_pos++];
    } else {
      const double magnitude = std::exp2(logs[i]);
      out[i] = negative[i] ? -magnitude : magnitude;
    }
  }
}

std::size_t ZfpCodec::element_count(ByteSpan compressed) const {
  if (compressed.size() < 3 || compressed[0] != kMagic0 ||
      compressed[1] != kMagic1) {
    throw std::runtime_error("zfp: bad magic");
  }
  std::size_t offset = 3;
  return get_varint(compressed, offset);
}

}  // namespace cqs::zfp
