// "zfp-rans": the zfp codec with an order-0 rANS entropy stage re-coding
// the whole zfp container (header + plane stream). The zfp bit-plane coder
// is a group-tested embedded coder, not an entropy coder — its output
// bytes keep residual skew (empty-block runs, exponent bytes, sparse
// significance bits) that a static rANS pass captures at ~zero fidelity
// cost, the stage being exactly lossless. Registered as its own codec id
// (append-only) so the arbiter can A/B it per block while every existing
// zfp bitstream stays byte-identical; when the rANS stream would not be
// smaller the raw container is stored behind a flag bit, so the wrapper
// never loses to plain zfp by more than the 3-byte header + count varint.
#pragma once

#include "compression/compressor.hpp"
#include "zfp/zfp.hpp"

namespace cqs::zfp {

class ZfpRansCodec final : public compression::Compressor {
 public:
  /// `fixed_precision` is forwarded to the inner zfp codec (and validated
  /// there): if > 0, encode exactly that many bit planes per block.
  explicit ZfpRansCodec(int fixed_precision = 0) : zfp_(fixed_precision) {}

  std::string name() const override { return "zfp-rans"; }
  bool supports(compression::BoundMode mode) const override {
    return zfp_.supports(mode);
  }
  Bytes compress(std::span<const double> data,
                 const compression::ErrorBound& bound) const override;
  void decompress(ByteSpan compressed, std::span<double> out) const override;
  Bytes compress(std::span<const double> data,
                 const compression::ErrorBound& bound,
                 compression::CodecScratch& scratch) const override;
  void decompress(ByteSpan compressed, std::span<double> out,
                  compression::CodecScratch& scratch) const override;
  std::size_t element_count(ByteSpan compressed) const override;

 private:
  ZfpCodec zfp_;
};

}  // namespace cqs::zfp
