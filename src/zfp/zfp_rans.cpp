#include "zfp/zfp_rans.hpp"

#include <stdexcept>

#include "compression/codec_scratch.hpp"
#include "compression/rans.hpp"

namespace cqs::zfp {
namespace {

constexpr std::byte kMagic0{'Z'};
constexpr std::byte kMagic1{'R'};
/// The rANS stream was not smaller; the raw zfp container follows.
constexpr std::uint8_t kFlagRaw = 1;

std::size_t varint_length(std::uint64_t value) {
  std::size_t len = 1;
  while (value >= 0x80) {
    value >>= 7;
    ++len;
  }
  return len;
}

}  // namespace

Bytes ZfpRansCodec::compress(std::span<const double> data,
                             const compression::ErrorBound& bound) const {
  compression::CodecScratch scratch;
  return compress(data, bound, scratch);
}

void ZfpRansCodec::decompress(ByteSpan compressed,
                              std::span<double> out) const {
  compression::CodecScratch scratch;
  decompress(compressed, out, scratch);
}

Bytes ZfpRansCodec::compress(std::span<const double> data,
                             const compression::ErrorBound& bound,
                             compression::CodecScratch& scratch) const {
  zfp_.compress_into(data, bound, scratch, scratch.packed);
  scratch.entropy.clear();
  compression::rans::encode(scratch.packed, scratch.rans, scratch.entropy);
  const bool raw = scratch.entropy.size() >= scratch.packed.size();
  const Bytes& payload = raw ? scratch.packed : scratch.entropy;

  Bytes result;
  result.reserve(3 + varint_length(data.size()) + payload.size());
  result.push_back(kMagic0);
  result.push_back(kMagic1);
  result.push_back(static_cast<std::byte>(raw ? kFlagRaw : 0));
  put_varint(result, data.size());
  result.insert(result.end(), payload.begin(), payload.end());
  return result;
}

void ZfpRansCodec::decompress(ByteSpan compressed, std::span<double> out,
                              compression::CodecScratch& scratch) const {
  if (compressed.size() < 3 || compressed[0] != kMagic0 ||
      compressed[1] != kMagic1) {
    throw std::runtime_error("zfp-rans: bad magic");
  }
  const auto flags = static_cast<std::uint8_t>(compressed[2]);
  std::size_t offset = 3;
  const std::uint64_t count = get_varint(compressed, offset);
  if (out.size() != count) {
    throw std::runtime_error("zfp-rans: output size mismatch");
  }
  if ((flags & kFlagRaw) != 0) {
    zfp_.decompress(compressed.subspan(offset), out, scratch);
    return;
  }
  compression::rans::decode(compressed, offset, scratch.rans,
                            scratch.entropy);
  zfp_.decompress(scratch.entropy, out, scratch);
}

std::size_t ZfpRansCodec::element_count(ByteSpan compressed) const {
  if (compressed.size() < 3 || compressed[0] != kMagic0 ||
      compressed[1] != kMagic1) {
    throw std::runtime_error("zfp-rans: bad magic");
  }
  std::size_t offset = 3;
  return get_varint(compressed, offset);
}

}  // namespace cqs::zfp
