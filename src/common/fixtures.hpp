// Seeded data generators for the three dataset regimes every codec study
// uses (spiky QAOA-like, dense supremacy-like, sparse early-simulation).
// Shared by the test suite (property/golden-blob tests) and the benches so
// "the spiky fixture" means the same bytes everywhere — the golden-blob
// hashes pin the compressed output of exactly these inputs.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "common/rng.hpp"

namespace cqs::fixtures {

/// Spiky, wide-dynamic-range values mimicking the paper's QAOA datasets
/// (Figure 9's high-spikiness regime). Deterministic in `seed`.
inline std::vector<double> spiky_qaoa_like(std::size_t n,
                                           std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> data(n);
  for (auto& d : data) {
    const double mag = std::exp2(-20.0 * rng.next_double());
    d = (rng.next_bool() ? mag : -mag) * rng.next_double();
  }
  return data;
}

/// Dense, Porter-Thomas-like amplitudes mimicking the paper's supremacy
/// datasets: every component Gaussian at the same scale, normalized so the
/// values look like a legitimate 2^k-amplitude state.
inline std::vector<double> dense_supremacy_like(std::size_t n,
                                                std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> data(n);
  double norm2 = 0.0;
  for (auto& d : data) {
    d = rng.next_normal();
    norm2 += d * d;
  }
  if (norm2 > 0.0) {
    const double scale = 1.0 / std::sqrt(norm2);
    for (auto& d : data) d *= scale;
  }
  return data;
}

/// Mostly-zero early-simulation data: exercises the lossless fast path and
/// exact-zero preservation of every codec.
inline std::vector<double> sparse_like(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> data(n, 0.0);
  const std::size_t nonzero = std::max<std::size_t>(1, n / 64);
  for (std::size_t i = 0; i < nonzero; ++i) {
    data[rng.next_below(n)] = rng.next_normal();
  }
  return data;
}

}  // namespace cqs::fixtures
