// MSB-first bit stream reader/writer used by the entropy coders and the
// embedded bit-plane coder.
#pragma once

#include <bit>
#include <cstdint>
#include <stdexcept>

#include "common/bytes.hpp"

namespace cqs {

/// Accumulates bits MSB-first into a byte vector.
class BitWriter {
 public:
  explicit BitWriter(Bytes& sink) : sink_(sink) {}

  /// Writes the low `nbits` bits of `value`, most significant first.
  void write(std::uint64_t value, int nbits) {
    for (int i = nbits - 1; i >= 0; --i) {
      write_bit((value >> i) & 1u);
    }
  }

  void write_bit(std::uint64_t bit) {
    accum_ = (accum_ << 1) | (bit & 1u);
    if (++filled_ == 8) {
      sink_.push_back(static_cast<std::byte>(accum_));
      accum_ = 0;
      filled_ = 0;
    }
  }

  /// Pads the final partial byte with zero bits.
  void flush() {
    if (filled_ > 0) {
      sink_.push_back(static_cast<std::byte>(accum_ << (8 - filled_)));
      accum_ = 0;
      filled_ = 0;
    }
  }

  ~BitWriter() { flush(); }

  BitWriter(const BitWriter&) = delete;
  BitWriter& operator=(const BitWriter&) = delete;

 private:
  Bytes& sink_;
  std::uint64_t accum_ = 0;
  int filled_ = 0;
};

/// Reads bits MSB-first from a byte span.
class BitReader {
 public:
  explicit BitReader(ByteSpan data) : data_(data) {}

  std::uint32_t read_bit() {
    if (pos_ >= data_.size() * 8) {
      throw std::out_of_range("cqs: bit stream truncated");
    }
    const auto byte = static_cast<std::uint8_t>(data_[pos_ >> 3]);
    const std::uint32_t bit = (byte >> (7 - (pos_ & 7))) & 1u;
    ++pos_;
    return bit;
  }

  std::uint64_t read(int nbits) {
    std::uint64_t value = 0;
    for (int i = 0; i < nbits; ++i) value = (value << 1) | read_bit();
    return value;
  }

  /// Bits consumed so far.
  std::size_t position() const { return pos_; }

  /// True when fewer than `nbits` remain.
  bool exhausted(int nbits = 1) const {
    return pos_ + static_cast<std::size_t>(nbits) > data_.size() * 8;
  }

 private:
  ByteSpan data_;
  std::size_t pos_ = 0;
};

/// Number of leading zero *bytes* of a 64-bit value (big-endian byte order).
inline int leading_zero_bytes(std::uint64_t x) {
  if (x == 0) return 8;
  return std::countl_zero(x) / 8;
}

}  // namespace cqs
