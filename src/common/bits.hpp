// MSB-first bit stream reader/writer used by the entropy coders and the
// embedded bit-plane coder. Both sides work a 64-bit word at a time: the
// writer batches whole words into the sink and the reader serves reads
// from an 8-byte peek window, so multi-bit write()/read() never loop per
// bit. The emitted byte stream is identical to the historical per-bit
// implementation (MSB-first, final partial byte zero-padded).
#pragma once

#include <bit>
#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <vector>

#include "common/bytes.hpp"

namespace cqs {

/// Host word -> big-endian byte order (the order MSB-first bits leave the
/// accumulator in).
inline std::uint64_t to_big_endian_u64(std::uint64_t x) {
  if constexpr (std::endian::native == std::endian::big) {
    return x;
  } else {
#if defined(__GNUC__) || defined(__clang__)
    return __builtin_bswap64(x);
#else
    x = ((x & 0x00ff00ff00ff00ffull) << 8) | ((x >> 8) & 0x00ff00ff00ff00ffull);
    x = ((x & 0x0000ffff0000ffffull) << 16) |
        ((x >> 16) & 0x0000ffff0000ffffull);
    return (x << 32) | (x >> 32);
#endif
  }
}

/// Accumulates bits MSB-first into a byte vector.
class BitWriter {
 public:
  explicit BitWriter(Bytes& sink) : sink_(sink) {}

  /// Writes the low `nbits` bits of `value`, most significant first.
  void write(std::uint64_t value, int nbits) {
    if (nbits <= 0) return;
    if (nbits < 64) value &= (std::uint64_t{1} << nbits) - 1;
    if (filled_ + nbits > 64) {
      drain();
      if (filled_ + nbits > 64) {
        // Residual 1..7 bits plus a wide value: emit the top chunk that
        // tops the accumulator off at exactly 64 bits, then the rest.
        const int lo = filled_ + nbits - 64;
        accum_ = (accum_ << (nbits - lo)) | (value >> lo);
        filled_ = 64;
        drain();
        value &= (std::uint64_t{1} << lo) - 1;
        nbits = lo;
      }
    }
    accum_ = filled_ == 0 ? value : (accum_ << nbits) | value;
    filled_ += nbits;
  }

  void write_bit(std::uint64_t bit) {
    if (filled_ == 64) drain();
    accum_ = (accum_ << 1) | (bit & 1u);
    ++filled_;
  }

  /// Pads the final partial byte with zero bits.
  void flush() {
    drain();
    if (filled_ > 0) {
      sink_.push_back(static_cast<std::byte>((accum_ << (8 - filled_)) & 0xff));
      accum_ = 0;
      filled_ = 0;
    }
  }

  ~BitWriter() { flush(); }

  BitWriter(const BitWriter&) = delete;
  BitWriter& operator=(const BitWriter&) = delete;

 private:
  /// Moves every whole byte of the accumulator into the sink in one
  /// word-wide append, keeping at most 7 residual bits.
  void drain() {
    const int nbytes = filled_ >> 3;
    if (nbytes == 0) return;
    const std::uint64_t be = to_big_endian_u64(accum_ << (64 - filled_));
    const auto* p = reinterpret_cast<const std::byte*>(&be);
    sink_.insert(sink_.end(), p, p + nbytes);
    filled_ &= 7;
    accum_ &= filled_ ? (std::uint64_t{1} << filled_) - 1 : 0;
  }

  Bytes& sink_;
  std::uint64_t accum_ = 0;
  int filled_ = 0;  // bits buffered in accum_, 0..64
};

/// Reads bits MSB-first from a byte span. Reads are served from an 8-byte
/// window loaded at the current bit position, so read()/peek() cost one
/// unaligned load instead of a per-bit loop.
class BitReader {
 public:
  explicit BitReader(ByteSpan data)
      : data_(data), total_bits_(data.size() * 8) {}

  std::uint32_t read_bit() {
    if (pos_ >= total_bits_) {
      throw std::out_of_range("cqs: bit stream truncated");
    }
    // Single-byte load: cheaper than the 8-byte window for the per-bit
    // callers (the zfp plane coder and the side-channel bitmasks).
    const auto byte = static_cast<std::uint8_t>(data_[pos_ >> 3]);
    const std::uint32_t bit = (byte >> (7 - (pos_ & 7))) & 1u;
    ++pos_;
    return bit;
  }

  std::uint64_t read(int nbits) {
    if (nbits <= 0) return 0;
    if (pos_ + static_cast<std::size_t>(nbits) > total_bits_) {
      throw std::out_of_range("cqs: bit stream truncated");
    }
    if (nbits > 57) {
      // The 8-byte window holds only 57+ guaranteed-valid bits when the
      // position is mid-byte; split the (rare) wide read.
      const std::uint64_t hi = read(nbits - 32);
      return (hi << 32) | read(32);
    }
    const std::uint64_t value = window() >> (64 - nbits);
    pos_ += static_cast<std::size_t>(nbits);
    return value;
  }

  /// Next `nbits` bits (1..57) without consuming, zero-padded past the end
  /// of the stream. Pair with consume() for table-driven decoders.
  std::uint64_t peek(int nbits) const {
    return window() >> (64 - nbits);
  }

  /// Consumes bits previously examined via peek(). Throws when fewer than
  /// `nbits` real bits remain (a peek past the end saw zero padding).
  void consume(int nbits) {
    if (pos_ + static_cast<std::size_t>(nbits) > total_bits_) {
      throw std::out_of_range("cqs: bit stream truncated");
    }
    pos_ += static_cast<std::size_t>(nbits);
  }

  /// Bits consumed so far.
  std::size_t position() const { return pos_; }

  /// True when fewer than `nbits` remain.
  bool exhausted(int nbits = 1) const {
    return pos_ + static_cast<std::size_t>(nbits) > total_bits_;
  }

 private:
  /// 64-bit window left-justified at the current bit position; bytes past
  /// the end of the stream read as zero.
  std::uint64_t window() const {
    const std::size_t byte = pos_ >> 3;
    std::uint64_t chunk;
    if (byte + 8 <= data_.size()) {
      std::memcpy(&chunk, data_.data() + byte, 8);
      chunk = to_big_endian_u64(chunk);
    } else {
      chunk = 0;
      for (std::size_t i = byte; i < data_.size(); ++i) {
        chunk |= static_cast<std::uint64_t>(data_[i])
                 << (56 - 8 * (i - byte));
      }
    }
    return chunk << (pos_ & 7);
  }

  ByteSpan data_;
  std::size_t pos_ = 0;
  std::size_t total_bits_;
};

/// Number of leading zero *bytes* of a 64-bit value (big-endian byte order).
inline int leading_zero_bytes(std::uint64_t x) {
  if (x == 0) return 8;
  return std::countl_zero(x) / 8;
}

/// Packs one bit per element: varint count, then the bits MSB-first.
/// Shared by the sz and zfp relative-mode side channels.
inline void write_bitmask(Bytes& out, const std::vector<bool>& mask) {
  put_varint(out, mask.size());
  BitWriter writer(out);
  for (bool b : mask) writer.write_bit(b ? 1 : 0);
}

/// Reverses write_bitmask into `mask` (capacity reused), advancing
/// `offset` past the padded final byte.
inline void read_bitmask(ByteSpan in, std::size_t& offset,
                         std::vector<bool>& mask) {
  const std::uint64_t n = get_varint(in, offset);
  mask.assign(n, false);
  BitReader reader(in.subspan(offset));
  for (std::uint64_t i = 0; i < n; ++i) mask[i] = reader.read_bit() != 0;
  offset += (reader.position() + 7) / 8;
}

}  // namespace cqs
