// Byte-buffer primitives shared by every codec: the Bytes container,
// LEB128 varints, fixed-width little-endian scalar I/O, and FNV-1a hashing.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <stdexcept>
#include <vector>

namespace cqs {

// put_scalar/get_scalar memcpy host-order scalars into byte streams that
// checkpoints and golden-blob hashes treat as little-endian. A big-endian
// host would silently produce incompatible containers, so refuse to build
// there until an explicit byteswap path exists.
static_assert(std::endian::native == std::endian::little,
              "cqs: scalar byte I/O assumes a little-endian host; "
              "port put_scalar/get_scalar before building on this target");

using Bytes = std::vector<std::byte>;
using ByteSpan = std::span<const std::byte>;

/// Appends `value` to `out` as little-endian raw bytes.
template <typename T>
inline void put_scalar(Bytes& out, T value) {
  static_assert(std::is_trivially_copyable_v<T>);
  const auto* p = reinterpret_cast<const std::byte*>(&value);
  out.insert(out.end(), p, p + sizeof(T));
}

/// Reads a little-endian scalar at `offset`, advancing it. Throws on overrun.
template <typename T>
inline T get_scalar(ByteSpan in, std::size_t& offset) {
  static_assert(std::is_trivially_copyable_v<T>);
  if (offset + sizeof(T) > in.size()) {
    throw std::out_of_range("cqs: byte stream truncated");
  }
  T value;
  std::memcpy(&value, in.data() + offset, sizeof(T));
  offset += sizeof(T);
  return value;
}

/// LEB128 unsigned varint append.
inline void put_varint(Bytes& out, std::uint64_t value) {
  while (value >= 0x80) {
    out.push_back(static_cast<std::byte>((value & 0x7f) | 0x80));
    value >>= 7;
  }
  out.push_back(static_cast<std::byte>(value));
}

/// LEB128 unsigned varint read; advances `offset`. Throws on overrun.
inline std::uint64_t get_varint(ByteSpan in, std::size_t& offset) {
  std::uint64_t value = 0;
  int shift = 0;
  while (true) {
    if (offset >= in.size()) throw std::out_of_range("cqs: varint truncated");
    const auto b = static_cast<std::uint8_t>(in[offset++]);
    value |= static_cast<std::uint64_t>(b & 0x7f) << shift;
    if ((b & 0x80) == 0) break;
    shift += 7;
    if (shift > 63) throw std::runtime_error("cqs: varint too long");
  }
  return value;
}

/// ZigZag mapping of signed to unsigned (small magnitudes -> small codes).
inline std::uint64_t zigzag_encode(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}

inline std::int64_t zigzag_decode(std::uint64_t u) {
  return static_cast<std::int64_t>(u >> 1) ^
         -static_cast<std::int64_t>(u & 1);
}

/// FNV-1a 64-bit hash; used for compressed-block cache keys.
inline std::uint64_t fnv1a(ByteSpan data,
                           std::uint64_t seed = 0xcbf29ce484222325ull) {
  std::uint64_t h = seed;
  for (std::byte b : data) {
    h ^= static_cast<std::uint64_t>(b);
    h *= 0x100000001b3ull;
  }
  return h;
}

inline std::uint64_t fnv1a_u64(std::uint64_t value, std::uint64_t seed) {
  std::byte buf[8];
  std::memcpy(buf, &value, 8);
  return fnv1a(ByteSpan(buf, 8), seed);
}

/// Views any trivially copyable array as bytes.
template <typename T>
inline ByteSpan as_bytes_span(std::span<const T> data) {
  return ByteSpan(reinterpret_cast<const std::byte*>(data.data()),
                  data.size_bytes());
}

}  // namespace cqs
