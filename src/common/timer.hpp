// Wall-clock timing and per-phase accumulation. The simulator reports the
// same breakdown Table 2 does: compression / decompression / communication /
// computation.
#pragma once

#include <array>
#include <chrono>
#include <cstddef>
#include <string_view>

namespace cqs {

class WallTimer {
 public:
  WallTimer() : start_(clock::now()) {}

  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  void reset() { start_ = clock::now(); }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// The four phases Table 2 breaks simulation time into.
enum class Phase : int {
  kCompression = 0,
  kDecompression = 1,
  kCommunication = 2,
  kComputation = 3,
};

inline constexpr std::size_t kNumPhases = 4;

inline constexpr std::string_view phase_name(Phase p) {
  switch (p) {
    case Phase::kCompression: return "compression";
    case Phase::kDecompression: return "decompression";
    case Phase::kCommunication: return "communication";
    case Phase::kComputation: return "computation";
  }
  return "?";
}

/// Accumulates seconds per phase. One instance per worker thread; merge after.
class PhaseTimers {
 public:
  void add(Phase p, double seconds) {
    seconds_[static_cast<int>(p)] += seconds;
  }

  double get(Phase p) const { return seconds_[static_cast<int>(p)]; }

  double total() const {
    double t = 0.0;
    for (double s : seconds_) t += s;
    return t;
  }

  void merge(const PhaseTimers& other) {
    for (std::size_t i = 0; i < kNumPhases; ++i) {
      seconds_[i] += other.seconds_[i];
    }
  }

 private:
  std::array<double, kNumPhases> seconds_{};
};

/// RAII phase timer: adds elapsed time to `timers` on destruction.
class ScopedPhase {
 public:
  ScopedPhase(PhaseTimers& timers, Phase phase)
      : timers_(timers), phase_(phase) {}
  ~ScopedPhase() { timers_.add(phase_, timer_.seconds()); }

  ScopedPhase(const ScopedPhase&) = delete;
  ScopedPhase& operator=(const ScopedPhase&) = delete;

 private:
  PhaseTimers& timers_;
  Phase phase_;
  WallTimer timer_;
};

}  // namespace cqs
