// Streaming statistics, CDF extraction, and lag-k autocorrelation. These
// back the Figure 12/14 error-distribution benches and the paper's
// non-correlation claim for Solution C compression errors.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace cqs {

/// Welford's online mean/variance plus min/max.
class RunningStats {
 public:
  void add(double x);
  void merge(const RunningStats& other);

  std::size_t count() const { return count_; }
  double mean() const { return mean_; }
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// One (x, F(x)) point of an empirical CDF.
struct CdfPoint {
  double value;
  double cumulative_fraction;
};

/// Empirical CDF sampled at `points` evenly spaced quantiles.
/// The input is copied and sorted; suitable for up to a few million samples.
std::vector<CdfPoint> empirical_cdf(std::span<const double> samples,
                                    std::size_t points = 100);

/// Lag-k autocorrelation coefficient of a series. Returns 0 for series
/// shorter than k+2 samples or with zero variance.
double autocorrelation(std::span<const double> series, std::size_t lag = 1);

/// Fraction of samples whose absolute value is below `threshold`.
double fraction_below(std::span<const double> samples, double threshold);

/// A fixed-width text histogram row helper used by several benches:
/// returns counts of samples per bin over [lo, hi).
std::vector<std::size_t> histogram(std::span<const double> samples, double lo,
                                   double hi, std::size_t bins);

}  // namespace cqs
