// A small fixed-size thread pool with a blocking parallel_for. Workers are
// identified by a dense index so callers can keep per-worker scratch state
// (the MCDRAM-style decompression buffers) without locking.
//
// StageChannel is the stage-handoff primitive of the block pipeline: a
// bounded blocking MPMC queue that carries decoded blocks from the
// prefetch stage to the apply stage. Capacity bounds the number of
// in-flight staging buffers so the Eq. 8 memory charge stays fixed.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <future>
#include <mutex>
#include <optional>
#include <thread>
#include <utility>
#include <vector>

namespace cqs {

class ThreadPool {
 public:
  /// Creates `threads` workers; 0 means hardware_concurrency (min 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Runs body(index, worker_id) for index in [0, count), blocking until all
  /// iterations finish. Iterations are distributed by atomic work stealing
  /// of contiguous chunks. Safe to call from one thread at a time.
  ///
  /// If an iteration throws, the remaining iterations of its chunk are
  /// skipped, every other claimed iteration still runs, and the first
  /// exception is rethrown on the calling thread once the job drains.
  ///
  /// Reentrant: calling parallel_for from inside a body (i.e. from one of
  /// this pool's workers) runs the nested loop inline on that worker,
  /// serially, under the caller's worker id.
  void parallel_for(std::size_t count,
                    const std::function<void(std::size_t index,
                                             std::size_t worker)>& body);

  /// Enqueues a standalone task for any idle worker; the returned future
  /// carries the task's exception, if it throws. Workers run queued tasks
  /// whenever no parallel_for chunk is available, so submitted work
  /// overlaps with (but yields to) the bulk loops. Tasks still queued at
  /// destruction are drained, not dropped — every returned future becomes
  /// ready.
  std::future<void> submit(std::function<void()> task);

 private:
  struct Job {
    std::size_t count = 0;
    const std::function<void(std::size_t, std::size_t)>* body = nullptr;
    std::size_t next = 0;          // next index to hand out
    std::size_t done = 0;          // iterations completed
    std::size_t generation = 0;    // bumped per parallel_for call
    std::exception_ptr error;      // first exception thrown by any iteration
  };

  void worker_loop(std::size_t worker_id);

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  Job job_;
  std::deque<std::packaged_task<void()>> tasks_;
  bool stop_ = false;
};

/// Bounded blocking MPMC handoff queue between pipeline stages. Producers
/// block while the channel is full; consumers block while it is empty and
/// not yet closed. close() wakes everyone: pending pushes fail, pops drain
/// the remaining items and then return nullopt.
template <typename T>
class StageChannel {
 public:
  explicit StageChannel(std::size_t capacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  StageChannel(const StageChannel&) = delete;
  StageChannel& operator=(const StageChannel&) = delete;

  /// Blocks while full. Returns false if the channel is (or becomes) closed
  /// before the item is accepted.
  bool push(T item) {
    std::unique_lock lock(mutex_);
    space_cv_.wait(lock, [&] { return closed_ || items_.size() < capacity_; });
    if (closed_) return false;
    items_.push_back(std::move(item));
    item_cv_.notify_one();
    return true;
  }

  /// Non-blocking pop; true if an item was ready.
  bool try_pop(T& out) {
    std::lock_guard lock(mutex_);
    if (items_.empty()) return false;
    out = std::move(items_.front());
    items_.pop_front();
    space_cv_.notify_one();
    return true;
  }

  /// Blocking pop. Returns nullopt once the channel is closed and drained.
  /// `waited`, when given, reports whether the caller had to sleep — the
  /// pipeline counts those as stalls.
  std::optional<T> pop(bool* waited = nullptr) {
    std::unique_lock lock(mutex_);
    if (waited != nullptr) *waited = items_.empty() && !closed_;
    item_cv_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;  // closed and drained
    T out = std::move(items_.front());
    items_.pop_front();
    space_cv_.notify_one();
    return out;
  }

  /// Closes the channel: blocked producers fail, consumers drain then stop.
  void close() {
    {
      std::lock_guard lock(mutex_);
      closed_ = true;
    }
    item_cv_.notify_all();
    space_cv_.notify_all();
  }

  bool closed() const {
    std::lock_guard lock(mutex_);
    return closed_;
  }

  std::size_t capacity() const { return capacity_; }

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable item_cv_;   // signalled when an item arrives / close
  std::condition_variable space_cv_;  // signalled when space frees / close
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace cqs
