// A small fixed-size thread pool with a blocking parallel_for. Workers are
// identified by a dense index so callers can keep per-worker scratch state
// (the MCDRAM-style decompression buffers) without locking.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace cqs {

class ThreadPool {
 public:
  /// Creates `threads` workers; 0 means hardware_concurrency (min 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Runs body(index, worker_id) for index in [0, count), blocking until all
  /// iterations finish. Iterations are distributed by atomic work stealing
  /// of contiguous chunks. Safe to call from one thread at a time.
  void parallel_for(std::size_t count,
                    const std::function<void(std::size_t index,
                                             std::size_t worker)>& body);

 private:
  struct Job {
    std::size_t count = 0;
    const std::function<void(std::size_t, std::size_t)>* body = nullptr;
    std::size_t next = 0;          // next index to hand out
    std::size_t done = 0;          // iterations completed
    std::size_t generation = 0;    // bumped per parallel_for call
  };

  void worker_loop(std::size_t worker_id);

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  Job job_;
  bool stop_ = false;
};

}  // namespace cqs
