// Deterministic, seedable random number generation. We avoid <random>'s
// distribution objects in hot paths so results are identical across
// standard-library implementations (required for reproducible circuits).
#pragma once

#include <cmath>
#include <cstdint>
#include <numbers>

namespace cqs {

/// SplitMix64: used to seed and for cheap stateless hashing of indices.
inline std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

/// xoshiro256** by Blackman & Vigna; fast, high-quality, 2^256-1 period.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bull) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [0, bound) without modulo bias (Lemire reduction).
  std::uint64_t next_below(std::uint64_t bound) {
    while (true) {
      const std::uint64_t x = next_u64();
      const auto m = static_cast<unsigned __int128>(x) * bound;
      const auto lo = static_cast<std::uint64_t>(m);
      if (lo >= bound || lo >= (-bound) % bound) {
        return static_cast<std::uint64_t>(m >> 64);
      }
    }
  }

  /// Standard normal via Box-Muller (no cached second value for simplicity).
  double next_normal() {
    double u1 = next_double();
    while (u1 <= 0.0) u1 = next_double();
    const double u2 = next_double();
    return std::sqrt(-2.0 * std::log(u1)) *
           std::cos(2.0 * std::numbers::pi * u2);
  }

  bool next_bool() { return (next_u64() >> 63) != 0; }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4];
};

}  // namespace cqs
