#include "common/thread_pool.hpp"

#include <algorithm>

namespace cqs {

namespace {
// Which pool (if any) the current thread belongs to, and its worker id.
// parallel_for consults these to run nested calls inline instead of
// deadlocking on the shared job slot.
thread_local const ThreadPool* tl_pool = nullptr;
thread_local std::size_t tl_worker = 0;
}  // namespace

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : workers_) t.join();
}

void ThreadPool::parallel_for(
    std::size_t count,
    const std::function<void(std::size_t, std::size_t)>& body) {
  if (count == 0) return;
  if (tl_pool == this) {
    // Nested call from inside one of our own bodies: run inline, serially,
    // under the caller's worker id so per-worker scratch stays coherent.
    for (std::size_t i = 0; i < count; ++i) body(i, tl_worker);
    return;
  }
  {
    std::lock_guard lock(mutex_);
    job_.count = count;
    job_.body = &body;
    job_.next = 0;
    job_.done = 0;
    job_.error = nullptr;
    ++job_.generation;
  }
  work_cv_.notify_all();
  std::unique_lock lock(mutex_);
  done_cv_.wait(lock, [this] { return job_.done == job_.count; });
  job_.body = nullptr;
  if (job_.error) {
    std::exception_ptr error = std::exchange(job_.error, nullptr);
    lock.unlock();
    std::rethrow_exception(error);
  }
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  std::packaged_task<void()> packaged(std::move(task));
  std::future<void> future = packaged.get_future();
  {
    std::lock_guard lock(mutex_);
    tasks_.push_back(std::move(packaged));
  }
  work_cv_.notify_one();
  return future;
}

void ThreadPool::worker_loop(std::size_t worker_id) {
  tl_pool = this;
  tl_worker = worker_id;
  std::size_t seen_generation = 0;
  while (true) {
    std::unique_lock lock(mutex_);
    work_cv_.wait(lock, [&] {
      return stop_ || !tasks_.empty() ||
             (job_.body != nullptr && job_.generation != seen_generation &&
              job_.next < job_.count);
    });
    if (stop_ && tasks_.empty()) return;
    const std::size_t generation = job_.generation;
    // Chunked self-scheduling: grab a slice, run it unlocked, repeat.
    while (job_.body != nullptr && job_.generation == generation &&
           job_.next < job_.count) {
      const std::size_t chunk =
          std::max<std::size_t>(1, (job_.count - job_.next) /
                                       (2 * workers_.size() + 1));
      const std::size_t begin = job_.next;
      const std::size_t end = std::min(job_.count, begin + chunk);
      job_.next = end;
      const auto* body = job_.body;
      lock.unlock();
      std::exception_ptr error;
      try {
        for (std::size_t i = begin; i < end; ++i) (*body)(i, worker_id);
      } catch (...) {
        // Count the whole chunk as done (the rest of it is skipped); other
        // chunks still run so the caller's wait stays exact.
        error = std::current_exception();
      }
      lock.lock();
      if (error && !job_.error) job_.error = error;
      job_.done += end - begin;
      if (job_.done == job_.count) done_cv_.notify_all();
    }
    seen_generation = generation;
    // Parallel_for chunks take priority; a queued task only runs once no
    // chunk is claimable. One task per wake keeps the worker responsive to
    // a job posted while the task runs.
    if (!tasks_.empty()) {
      std::packaged_task<void()> task = std::move(tasks_.front());
      tasks_.pop_front();
      lock.unlock();
      task();  // exception lands in the future
    }
  }
}

}  // namespace cqs
