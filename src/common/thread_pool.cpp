#include "common/thread_pool.hpp"

#include <algorithm>

namespace cqs {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : workers_) t.join();
}

void ThreadPool::parallel_for(
    std::size_t count,
    const std::function<void(std::size_t, std::size_t)>& body) {
  if (count == 0) return;
  {
    std::lock_guard lock(mutex_);
    job_.count = count;
    job_.body = &body;
    job_.next = 0;
    job_.done = 0;
    ++job_.generation;
  }
  work_cv_.notify_all();
  std::unique_lock lock(mutex_);
  done_cv_.wait(lock, [this] { return job_.done == job_.count; });
  job_.body = nullptr;
}

void ThreadPool::worker_loop(std::size_t worker_id) {
  std::size_t seen_generation = 0;
  while (true) {
    std::unique_lock lock(mutex_);
    work_cv_.wait(lock, [&] {
      return stop_ || (job_.body != nullptr && job_.generation != seen_generation &&
                       job_.next < job_.count);
    });
    if (stop_) return;
    const std::size_t generation = job_.generation;
    // Chunked self-scheduling: grab a slice, run it unlocked, repeat.
    while (job_.body != nullptr && job_.generation == generation &&
           job_.next < job_.count) {
      const std::size_t chunk =
          std::max<std::size_t>(1, (job_.count - job_.next) /
                                       (2 * workers_.size() + 1));
      const std::size_t begin = job_.next;
      const std::size_t end = std::min(job_.count, begin + chunk);
      job_.next = end;
      const auto* body = job_.body;
      lock.unlock();
      for (std::size_t i = begin; i < end; ++i) (*body)(i, worker_id);
      lock.lock();
      job_.done += end - begin;
      if (job_.done == job_.count) done_cv_.notify_all();
    }
    seen_generation = generation;
  }
}

}  // namespace cqs
