#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

namespace cqs {

void RunningStats::add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto n1 = static_cast<double>(count_);
  const auto n2 = static_cast<double>(other.count_);
  const double n = n1 + n2;
  mean_ += delta * n2 / n;
  m2_ += other.m2_ + delta * delta * n1 * n2 / n;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  count_ += other.count_;
}

double RunningStats::variance() const {
  return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

std::vector<CdfPoint> empirical_cdf(std::span<const double> samples,
                                    std::size_t points) {
  std::vector<CdfPoint> cdf;
  if (samples.empty() || points == 0) return cdf;
  std::vector<double> sorted(samples.begin(), samples.end());
  std::sort(sorted.begin(), sorted.end());
  cdf.reserve(points);
  for (std::size_t i = 0; i < points; ++i) {
    // Quantile at the upper edge of each of `points` equal-mass slices.
    const std::size_t idx =
        std::min(sorted.size() - 1, ((i + 1) * sorted.size()) / points - 1);
    cdf.push_back({sorted[idx], static_cast<double>(idx + 1) /
                                    static_cast<double>(sorted.size())});
  }
  return cdf;
}

double autocorrelation(std::span<const double> series, std::size_t lag) {
  if (series.size() < lag + 2) return 0.0;
  double mean = 0.0;
  for (double x : series) mean += x;
  mean /= static_cast<double>(series.size());

  double num = 0.0;
  double den = 0.0;
  for (std::size_t i = 0; i + lag < series.size(); ++i) {
    num += (series[i] - mean) * (series[i + lag] - mean);
  }
  for (double x : series) den += (x - mean) * (x - mean);
  return den == 0.0 ? 0.0 : num / den;
}

double fraction_below(std::span<const double> samples, double threshold) {
  if (samples.empty()) return 0.0;
  std::size_t n = 0;
  for (double x : samples) {
    if (std::abs(x) < threshold) ++n;
  }
  return static_cast<double>(n) / static_cast<double>(samples.size());
}

std::vector<std::size_t> histogram(std::span<const double> samples, double lo,
                                   double hi, std::size_t bins) {
  std::vector<std::size_t> counts(bins, 0);
  if (bins == 0 || hi <= lo) return counts;
  const double width = (hi - lo) / static_cast<double>(bins);
  for (double x : samples) {
    if (x < lo || x >= hi) continue;
    auto bin = static_cast<std::size_t>((x - lo) / width);
    if (bin >= bins) bin = bins - 1;
    ++counts[bin];
  }
  return counts;
}

}  // namespace cqs
