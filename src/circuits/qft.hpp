// Quantum Fourier transform benchmark (Section 5.3): the standard
// H + controlled-phase ladder + qubit-reversal swaps, preceded by a random
// X-gate layer as the paper does ("we randomly apply X gate to the initial
// state as the input").
#pragma once

#include <cstdint>

#include "qsim/circuit.hpp"

namespace cqs::circuits {

struct QftSpec {
  int num_qubits = 8;
  bool random_input = true;    ///< prepend random X layer
  bool final_swaps = true;     ///< append qubit-reversal swaps
  std::uint64_t seed = 3;
};

qsim::Circuit qft_circuit(const QftSpec& spec);

/// Hadamard wall used by the scalability studies (Figures 15/16): `layers`
/// rounds of H on every qubit.
qsim::Circuit hadamard_wall(int num_qubits, int layers = 1);

}  // namespace cqs::circuits
