#include "circuits/grover.hpp"

#include <stdexcept>

namespace cqs::circuits {
namespace {

using qsim::Circuit;

/// Flips data qubits whose `marked` bit is 0 so the all-ones pattern
/// corresponds to the marked state.
void apply_mark_frame(Circuit& c, int d, std::uint64_t marked) {
  for (int q = 0; q < d; ++q) {
    if (((marked >> q) & 1u) == 0) c.x(q);
  }
}

/// Phase flip on |1...1> of the data register using the ancilla AND-ladder:
/// anc[0] = q0 AND q1, anc[i] = anc[i-1] AND q_{i+1}; Z on the last ancilla
/// applies the phase, then the ladder is uncomputed. Only X/Toffoli/Z/CZ.
void apply_controlled_phase_ladder(Circuit& c, int d) {
  const int anc = d;  // first ancilla index
  if (d == 1) {
    c.z(0);
    return;
  }
  if (d == 2) {
    c.cz(0, 1);
    return;
  }
  c.ccx(0, 1, anc);
  for (int i = 2; i < d - 1; ++i) {
    c.ccx(anc + i - 2, i, anc + i - 1);
  }
  c.cz(anc + d - 3, d - 1);
  for (int i = d - 2; i >= 2; --i) {
    c.ccx(anc + i - 2, i, anc + i - 1);
  }
  c.ccx(0, 1, anc);
}

}  // namespace

int grover_total_qubits(int data_qubits) {
  return data_qubits <= 2 ? data_qubits : 2 * data_qubits - 2;
}

int grover_data_qubits(int total_qubits) {
  if (total_qubits <= 2) return total_qubits;
  return (total_qubits + 2) / 2;
}

qsim::Circuit grover_circuit(const GroverSpec& spec) {
  const int d = spec.data_qubits;
  if (d < 1) throw std::invalid_argument("grover: need >= 1 data qubit");
  if (spec.marked_state >> d != 0) {
    throw std::invalid_argument("grover: marked state out of range");
  }
  Circuit c(grover_total_qubits(d));

  // Uniform superposition over the data register.
  for (int q = 0; q < d; ++q) c.h(q);

  for (int iter = 0; iter < spec.iterations; ++iter) {
    // Oracle: phase-flip the marked state.
    apply_mark_frame(c, d, spec.marked_state);
    apply_controlled_phase_ladder(c, d);
    apply_mark_frame(c, d, spec.marked_state);

    // Diffusion: reflect about the mean.
    for (int q = 0; q < d; ++q) c.h(q);
    for (int q = 0; q < d; ++q) c.x(q);
    apply_controlled_phase_ladder(c, d);
    for (int q = 0; q < d; ++q) c.x(q);
    for (int q = 0; q < d; ++q) c.h(q);
  }
  return c;
}

std::uint64_t grover_sqrt_target(int data_qubits, std::uint64_t square) {
  const std::uint64_t mask =
      data_qubits >= 64 ? ~std::uint64_t{0}
                        : (std::uint64_t{1} << data_qubits) - 1;
  for (std::uint64_t x = 0; x <= mask; ++x) {
    if (((x * x) & mask) == (square & mask)) return x;
  }
  return 0;  // every square has a root mod 2^d only sometimes; 0*0 == 0
}

}  // namespace cqs::circuits
