// Grover's search benchmark (Section 5.3). The oracle marks one basis
// state and is synthesized exclusively from X and Toffoli gates via an
// AND-ladder into ancilla qubits, matching the paper's oracle structure
// ("the oracle consists of X and Toffoli gates").
//
// Layout: d data qubits [0, d) and d-1 ancillas [d, 2d-1); a d-data-qubit
// instance therefore occupies 2d-1 qubits total — the paper's 61-qubit run
// corresponds to d = 31.
#pragma once

#include <cstdint>

#include "qsim/circuit.hpp"

namespace cqs::circuits {

struct GroverSpec {
  int data_qubits = 4;
  std::uint64_t marked_state = 0;  ///< must be < 2^data_qubits
  int iterations = 1;
};

/// Total qubits used by a Grover instance with d data qubits.
int grover_total_qubits(int data_qubits);

/// Data qubits for a total qubit budget (inverse of grover_total_qubits).
int grover_data_qubits(int total_qubits);

qsim::Circuit grover_circuit(const GroverSpec& spec);

/// The paper's motivating use: search for the square root of
/// `square` modulo 2^d, i.e. the marked state is the x with x*x == square
/// (lowest d bits). Returns the marked value.
std::uint64_t grover_sqrt_target(int data_qubits, std::uint64_t square);

}  // namespace cqs::circuits
