// QAOA MAXCUT benchmark on a random 4-regular graph (Section 5.3, [27]).
// One layer = cost unitary exp(-i gamma Z_u Z_v) per edge (CX, RZ, CX)
// followed by the transverse-field mixer RX(2 beta) on every qubit.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "qsim/circuit.hpp"

namespace cqs::circuits {

struct QaoaSpec {
  int num_qubits = 8;
  int layers = 1;            ///< QAOA depth p
  double gamma = 1.3;        ///< cost angle (numerically tuned for p = 1
                             ///< MAXCUT on random 4-regular graphs)
  double beta = 0.7;         ///< mixer angle
  std::uint64_t seed = 7;    ///< graph randomness
};

/// Random 4-regular simple graph via the configuration model with
/// rejection. Requires num_vertices >= 5 and num_vertices * 4 even.
std::vector<std::pair<int, int>> random_regular_graph(int num_vertices,
                                                      int degree,
                                                      std::uint64_t seed);

qsim::Circuit qaoa_maxcut_circuit(const QaoaSpec& spec);

/// Expected cut value of a sampled bitstring under the spec's graph.
double cut_value(const std::vector<std::pair<int, int>>& edges,
                 std::uint64_t assignment);

}  // namespace cqs::circuits
