#include "circuits/qaoa.hpp"

#include <algorithm>
#include <set>
#include <stdexcept>

#include "common/rng.hpp"

namespace cqs::circuits {

std::vector<std::pair<int, int>> random_regular_graph(int num_vertices,
                                                      int degree,
                                                      std::uint64_t seed) {
  if (num_vertices <= degree) {
    throw std::invalid_argument("random_regular_graph: too few vertices");
  }
  if ((num_vertices * degree) % 2 != 0) {
    throw std::invalid_argument("random_regular_graph: odd stub count");
  }
  Rng rng(seed);
  // Configuration model with full restart on self-loop / parallel edge.
  for (int attempt = 0; attempt < 1000; ++attempt) {
    std::vector<int> stubs;
    stubs.reserve(static_cast<std::size_t>(num_vertices) * degree);
    for (int v = 0; v < num_vertices; ++v) {
      for (int k = 0; k < degree; ++k) stubs.push_back(v);
    }
    // Fisher-Yates with our deterministic RNG.
    for (std::size_t i = stubs.size() - 1; i > 0; --i) {
      std::swap(stubs[i], stubs[rng.next_below(i + 1)]);
    }
    std::vector<std::pair<int, int>> edges;
    std::set<std::pair<int, int>> seen;
    bool ok = true;
    for (std::size_t i = 0; i < stubs.size(); i += 2) {
      int u = stubs[i];
      int v = stubs[i + 1];
      if (u == v) {
        ok = false;
        break;
      }
      if (u > v) std::swap(u, v);
      if (!seen.insert({u, v}).second) {
        ok = false;
        break;
      }
      edges.push_back({u, v});
    }
    if (ok) return edges;
  }
  throw std::runtime_error("random_regular_graph: failed to converge");
}

qsim::Circuit qaoa_maxcut_circuit(const QaoaSpec& spec) {
  const auto edges =
      random_regular_graph(spec.num_qubits, 4, spec.seed);
  qsim::Circuit c(spec.num_qubits);
  for (int q = 0; q < spec.num_qubits; ++q) c.h(q);
  for (int layer = 1; layer <= spec.layers; ++layer) {
    const double gamma = spec.gamma;
    const double beta = spec.beta;
    for (const auto& [u, v] : edges) {
      c.cx(u, v);
      c.rz(v, 2.0 * gamma);
      c.cx(u, v);
    }
    for (int q = 0; q < spec.num_qubits; ++q) c.rx(q, 2.0 * beta);
  }
  return c;
}

double cut_value(const std::vector<std::pair<int, int>>& edges,
                 std::uint64_t assignment) {
  double cut = 0.0;
  for (const auto& [u, v] : edges) {
    const bool su = ((assignment >> u) & 1u) != 0;
    const bool sv = ((assignment >> v) & 1u) != 0;
    if (su != sv) cut += 1.0;
  }
  return cut;
}

}  // namespace cqs::circuits
