// The qaoa_N / sup_N compression study datasets of Section 4: state-vector
// snapshots taken after running the corresponding circuit on the dense
// reference simulator, exposed as raw interleaved re/im double arrays.
#pragma once

#include <cstdint>
#include <vector>

namespace cqs::circuits {

/// State of an n-qubit QAOA MAXCUT circuit (one layer), re/im interleaved:
/// the paper's qaoa_N dataset at reduced qubit count.
std::vector<double> qaoa_dataset(int num_qubits, std::uint64_t seed = 7);

/// State of a random supremacy circuit on a rows x cols grid at the given
/// depth: the paper's sup_N dataset.
std::vector<double> supremacy_dataset(int rows, int cols, int depth = 11,
                                      std::uint64_t seed = 11);

/// Early-simulation state (mostly zeros): the regime where the lossless
/// stage of the hybrid pipeline shines. Runs only the first `gates` ops of
/// a Grover circuit with the given data qubits.
std::vector<double> sparse_dataset(int data_qubits, int gates);

}  // namespace cqs::circuits
