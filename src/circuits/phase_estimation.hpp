// Quantum phase estimation — the algorithm the paper cites as the reason
// QFT circuits matter ("an important function in many quantum algorithms
// (Shor's algorithm, phase estimation algorithm, ...)"). Estimates the
// phase phi of the eigenvalue e^{2 pi i phi} of a phase gate applied to
// its |1> eigenstate, using `counting_qubits` bits of precision.
#pragma once

#include "qsim/circuit.hpp"

namespace cqs::circuits {

struct PhaseEstimationSpec {
  int counting_qubits = 6;
  double phase = 0.3125;  ///< the phi to estimate, in [0, 1)
};

/// Layout: qubits [0, counting) = counting register, qubit `counting` =
/// the eigenstate target. After the circuit, measuring the counting
/// register yields round(phi * 2^counting) with high probability.
qsim::Circuit phase_estimation_circuit(const PhaseEstimationSpec& spec);

/// Inverse QFT on the low `n` qubits of a circuit under construction
/// (exposed for reuse; phase_estimation_circuit uses it).
void append_inverse_qft(qsim::Circuit& circuit, int n);

}  // namespace cqs::circuits
