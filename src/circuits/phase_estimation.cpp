#include "circuits/phase_estimation.hpp"

#include <numbers>

namespace cqs::circuits {

void append_inverse_qft(qsim::Circuit& circuit, int n) {
  // Reverse of the standard QFT ladder with negated phases; qubit-reversal
  // swaps first (the QFT emits them last).
  for (int q = 0; q < n / 2; ++q) circuit.swap(q, n - 1 - q);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < i; ++j) {
      const double theta =
          -std::numbers::pi / static_cast<double>(1ull << (i - j));
      circuit.cphase(j, i, theta);
    }
    circuit.h(i);
  }
}

qsim::Circuit phase_estimation_circuit(const PhaseEstimationSpec& spec) {
  const int t = spec.counting_qubits;
  qsim::Circuit circuit(t + 1);
  circuit.x(t);  // |1> is the eigenstate of the phase gate
  for (int q = 0; q < t; ++q) circuit.h(q);
  // Controlled-U^{2^j}: U = P(2 pi phi), so U^{2^j} = P(2 pi phi 2^j).
  for (int j = 0; j < t; ++j) {
    const double theta = 2.0 * std::numbers::pi * spec.phase *
                         static_cast<double>(1ull << j);
    circuit.cphase(j, t, theta);
  }
  append_inverse_qft(circuit, t);
  return circuit;
}

}  // namespace cqs::circuits
