#include "circuits/supremacy.hpp"

#include <stdexcept>
#include <vector>

#include "common/rng.hpp"

namespace cqs::circuits {
namespace {

using qsim::GateKind;

/// The eight staggered CZ patterns: horizontal / vertical pairs offset by
/// row/column parity, interleaved so consecutive cycles alternate
/// orientation (pattern order follows Boixo et al.'s layout).
std::vector<std::pair<int, int>> cz_pattern(int rows, int cols, int pattern) {
  auto index = [cols](int r, int c) { return r * cols + c; };
  std::vector<std::pair<int, int>> edges;
  const bool horizontal = (pattern % 2) == 0;
  const int variant = pattern / 2;  // 0..3
  if (horizontal) {
    // Edge (r, c)-(r, c+1) where c has the variant's parity, staggered by
    // row so neighbouring rows do not activate the same columns.
    for (int r = 0; r < rows; ++r) {
      const int start = (variant / 2 + r * (variant % 2 == 0 ? 0 : 1)) % 2;
      for (int c = start; c + 1 < cols; c += 2) {
        edges.push_back({index(r, c), index(r, c + 1)});
      }
    }
  } else {
    for (int c = 0; c < cols; ++c) {
      const int start = (variant / 2 + c * (variant % 2 == 0 ? 0 : 1)) % 2;
      for (int r = start; r + 1 < rows; r += 2) {
        edges.push_back({index(r, c), index(r + 1, c)});
      }
    }
  }
  return edges;
}

}  // namespace

qsim::Circuit supremacy_circuit(const SupremacySpec& spec) {
  const int n = spec.rows * spec.cols;
  if (n < 2) throw std::invalid_argument("supremacy: grid too small");
  qsim::Circuit c(n);
  Rng rng(spec.seed);

  for (int q = 0; q < n; ++q) c.h(q);

  // Per-qubit single-gate history for Boixo's rules.
  std::vector<bool> had_t(n, false);
  std::vector<GateKind> last_gate(n, GateKind::kH);
  const GateKind pool[3] = {GateKind::kSqrtX, GateKind::kSqrtY,
                            GateKind::kSqrtW};
  // Pattern order interleaves horizontal and vertical configurations.
  const int order[8] = {0, 1, 2, 3, 4, 5, 6, 7};

  for (int cycle = 0; cycle < spec.depth; ++cycle) {
    const auto edges =
        cz_pattern(spec.rows, spec.cols, order[cycle % 8]);
    std::vector<bool> in_cz(n, false);
    for (const auto& [a, b] : edges) {
      c.cz(a, b);
      in_cz[a] = in_cz[b] = true;
    }
    for (int q = 0; q < n; ++q) {
      if (in_cz[q]) continue;
      if (!had_t[q]) {
        c.t(q);
        had_t[q] = true;
        last_gate[q] = GateKind::kT;
        continue;
      }
      GateKind pick;
      do {
        pick = pool[rng.next_below(3)];
      } while (pick == last_gate[q]);
      c.append({pick, q});
      last_gate[q] = pick;
    }
  }
  return c;
}

}  // namespace cqs::circuits
