#include "circuits/qft.hpp"

#include <numbers>

#include "common/rng.hpp"

namespace cqs::circuits {

qsim::Circuit qft_circuit(const QftSpec& spec) {
  qsim::Circuit c(spec.num_qubits);
  if (spec.random_input) {
    Rng rng(spec.seed);
    for (int q = 0; q < spec.num_qubits; ++q) {
      if (rng.next_bool()) c.x(q);
    }
  }
  for (int i = spec.num_qubits - 1; i >= 0; --i) {
    c.h(i);
    for (int j = i - 1; j >= 0; --j) {
      const double theta =
          std::numbers::pi / static_cast<double>(1ull << (i - j));
      c.cphase(j, i, theta);
    }
  }
  if (spec.final_swaps) {
    for (int q = 0; q < spec.num_qubits / 2; ++q) {
      c.swap(q, spec.num_qubits - 1 - q);
    }
  }
  return c;
}

qsim::Circuit hadamard_wall(int num_qubits, int layers) {
  qsim::Circuit c(num_qubits);
  for (int layer = 0; layer < layers; ++layer) {
    for (int q = 0; q < num_qubits; ++q) c.h(q);
  }
  return c;
}

}  // namespace cqs::circuits
