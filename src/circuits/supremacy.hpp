// Google random circuit sampling benchmark (Boixo et al. [9], Section 5.3).
// Qubits form a rows x cols grid. After an initial layer of Hadamards, each
// cycle applies one of eight staggered CZ patterns, and every qubit not
// touched by a CZ in that cycle receives a random single-qubit gate:
// T the first time (per Boixo's rules), afterwards uniformly from
// {sqrt(X), sqrt(Y), sqrt(W)} with no immediate repetition.
#pragma once

#include <cstdint>

#include "qsim/circuit.hpp"

namespace cqs::circuits {

struct SupremacySpec {
  int rows = 4;
  int cols = 4;
  int depth = 11;          ///< number of CZ cycles (paper runs depth 11)
  std::uint64_t seed = 11;
};

qsim::Circuit supremacy_circuit(const SupremacySpec& spec);

}  // namespace cqs::circuits
