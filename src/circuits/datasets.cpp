#include "circuits/datasets.hpp"

#include <algorithm>

#include "circuits/grover.hpp"
#include "circuits/qaoa.hpp"
#include "circuits/supremacy.hpp"
#include "qsim/state_vector.hpp"

namespace cqs::circuits {

std::vector<double> qaoa_dataset(int num_qubits, std::uint64_t seed) {
  qsim::StateVector state(num_qubits);
  state.apply_circuit(
      qaoa_maxcut_circuit({.num_qubits = num_qubits, .seed = seed}));
  const auto raw = state.raw();
  return {raw.begin(), raw.end()};
}

std::vector<double> supremacy_dataset(int rows, int cols, int depth,
                                      std::uint64_t seed) {
  qsim::StateVector state(rows * cols);
  state.apply_circuit(supremacy_circuit(
      {.rows = rows, .cols = cols, .depth = depth, .seed = seed}));
  const auto raw = state.raw();
  return {raw.begin(), raw.end()};
}

std::vector<double> sparse_dataset(int data_qubits, int gates) {
  const GroverSpec spec{.data_qubits = data_qubits,
                        .marked_state = 0,
                        .iterations = 1};
  const qsim::Circuit full = grover_circuit(spec);
  qsim::StateVector state(full.num_qubits());
  const std::size_t limit =
      std::min<std::size_t>(gates, full.ops().size());
  for (std::size_t i = 0; i < limit; ++i) state.apply(full.ops()[i]);
  const auto raw = state.raw();
  return {raw.begin(), raw.end()};
}

}  // namespace cqs::circuits
