// Configuration of the compressed-state simulator.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace cqs::core {

struct SimConfig {
  int num_qubits = 8;

  /// Logical MPI-style ranks (power of two). The state vector is divided
  /// equally across ranks (Section 3.1).
  int num_ranks = 1;

  /// Compressed blocks per rank (power of two). The paper uses blocks of
  /// 2^20 amplitudes (16 MB); at reduced qubit counts we use more, smaller
  /// blocks so the blocking machinery is still exercised.
  int blocks_per_rank = 4;

  /// Lossy codec name (make_compressor key): "qzc" (Solution C, the
  /// paper's default), "qzc-shuffle" (D), "sz" (A), "sz-complex" (B),
  /// "zfp", "fpzip". "zstd" forces a lossless-only simulation.
  std::string codec = "qzc";

  /// Error-bound ladder (Section 3.7): level 0 is lossless Zstd; level k
  /// compresses with pointwise relative bound ladder[k-1]. Whenever the
  /// memory budget is exceeded the level escalates to the next entry.
  std::vector<double> error_ladder = {1e-5, 1e-4, 1e-3, 1e-2, 1e-1};

  /// Total bytes the compressed state may occupy (the sum term of Eq. 8,
  /// excluding scratch). 0 = unlimited (stay lossless).
  std::size_t memory_budget_bytes = 0;

  /// Ladder level to start at (0 = lossless-first hybrid, the paper's
  /// default; >0 starts lossy, used by some ablations).
  int initial_level = 0;

  /// Worker threads (0 = hardware concurrency).
  int threads = 0;

  /// Compressed block cache (Section 3.4).
  bool enable_cache = true;
  std::size_t cache_lines = 64;

  /// Gate-run batching: the scheduler groups maximal runs of consecutive
  /// gates whose targets and controls all fall in the offset segment, and
  /// each block pays one decompress -> apply-run -> recompress round (and,
  /// at a lossy level, one fidelity pass) per run instead of per gate.
  bool enable_run_batching = true;

  /// Cap on scheduled ops per run (0 = unlimited). Shorter runs mean more
  /// frequent memory-budget checks between codec passes; when a memory
  /// budget is set and this is 0, the simulator caps runs at 16 ops so
  /// ladder escalation stays responsive mid-stretch.
  std::size_t max_run_length = 0;

  /// Compose fuse_single_qubit_gates as a scheduler pre-pass (only takes
  /// effect when enable_run_batching is on; the per-gate path applies
  /// circuits verbatim).
  bool enable_fusion_prepass = true;
};

}  // namespace cqs::core
