// Configuration of the compressed-state simulator.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace cqs::core {

struct SimConfig {
  int num_qubits = 8;

  /// Logical MPI-style ranks (power of two). The state vector is divided
  /// equally across ranks (Section 3.1).
  int num_ranks = 1;

  /// Compressed blocks per rank (power of two). The paper uses blocks of
  /// 2^20 amplitudes (16 MB); at reduced qubit counts we use more, smaller
  /// blocks so the blocking machinery is still exercised.
  int blocks_per_rank = 4;

  /// Lossy codec name (make_compressor key): "qzc" (Solution C, the
  /// paper's default), "qzc-shuffle" (D), "sz" (A), "sz-complex" (B),
  /// "zfp", "fpzip". "zstd" forces a lossless-only simulation.
  std::string codec = "qzc";

  /// Per-block codec policy. "fixed" compresses every block with `codec`
  /// at any lossy ladder level (the paper's single-codec runs). "adaptive"
  /// lets the codec arbiter (runtime/codec_arbiter.hpp) inspect each
  /// block's statistics at every recompression and keep sparse/spiky
  /// blocks on the lossless zero-suppressing path even at a lossy level —
  /// the Figs. 9-14 observation that state structure dictates which codec
  /// wins.
  std::string codec_policy = "fixed";

  /// Adaptive policy: a block whose exact-zero double fraction is at or
  /// above this stays lossless (zero suppression beats quantization).
  double adaptive_zero_fraction = 0.75;

  /// Adaptive policy: a block whose nonzero magnitudes span at most this
  /// many bits (log2 max/min) stays lossless — uniform-magnitude states
  /// (GHZ, QFT of basis inputs, Grover superpositions) are repeated bit
  /// patterns that LZ matching removes and quantization cannot improve.
  double adaptive_dynamic_range = 1.0;

  /// Adaptive policy: a block whose max/mean nonzero magnitude ratio is at
  /// or above this (extremely spiky) stays lossless.
  double adaptive_spikiness = 1e6;

  /// Half-width of the hysteresis band around the adaptive thresholds: a
  /// block flips codec only when its signal leaves the band, so blocks
  /// near a threshold don't thrash between codecs across passes. Additive
  /// on zero fraction and on dynamic-range bits, multiplicative (1 +- h)
  /// on spikiness. In [0, 0.5).
  double adaptive_hysteresis = 0.1;

  /// Error-bound ladder (Section 3.7): level 0 is lossless Zstd; level k
  /// compresses with pointwise relative bound ladder[k-1]. Whenever the
  /// memory budget is exceeded the level escalates to the next entry.
  std::vector<double> error_ladder = {1e-5, 1e-4, 1e-3, 1e-2, 1e-1};

  /// zfp fixed-precision mode: if > 0, the zfp-family codec ("zfp" or
  /// "zfp-rans") keeps exactly this many bit planes per block regardless
  /// of the ladder bound. Validated at construction: must be in
  /// [0, zfp::kTotalPlanes] (= 62), requires a zfp-family codec, and is
  /// mutually exclusive with zfp_fixed_accuracy. 0 = off.
  int zfp_fixed_precision = 0;

  /// zfp fixed-accuracy mode (the zfp_stream_set_accuracy idiom): drive
  /// the per-block plane cutoff directly from the active error-ladder
  /// delta as an *absolute* tolerance, skipping the pointwise-relative
  /// log-preprocessing wrapper. Cheaper and tighter for amplitude data
  /// whose magnitudes cluster near the unit sphere; the recorded ladder
  /// delta still captures the pass's bound for the fidelity certificate.
  /// Requires a zfp-family codec; mutually exclusive with
  /// zfp_fixed_precision.
  bool zfp_fixed_accuracy = false;

  /// Total bytes the compressed state may occupy (the sum term of Eq. 8,
  /// excluding scratch). 0 = unlimited (stay lossless).
  std::size_t memory_budget_bytes = 0;

  /// Ladder level to start at (0 = lossless-first hybrid, the paper's
  /// default; >0 starts lossy, used by some ablations).
  int initial_level = 0;

  /// Worker threads (0 = hardware concurrency).
  int threads = 0;

  /// Compressed block cache (Section 3.4).
  bool enable_cache = true;
  std::size_t cache_lines = 64;

  /// Gate-run batching: the scheduler groups maximal runs of consecutive
  /// gates whose targets and controls all fall in the offset segment, and
  /// each block pays one decompress -> apply-run -> recompress round (and,
  /// at a lossy level, one fidelity pass) per run instead of per gate.
  bool enable_run_batching = true;

  /// Cap on scheduled ops per run (0 = unlimited). Shorter runs mean more
  /// frequent memory-budget checks between codec passes; when a memory
  /// budget is set and this is 0, the simulator caps runs at 16 ops so
  /// ladder escalation stays responsive mid-stretch.
  std::size_t max_run_length = 0;

  /// Compose fuse_single_qubit_gates as a scheduler pre-pass (only takes
  /// effect when enable_run_batching is on; the per-gate path applies
  /// circuits verbatim).
  bool enable_fusion_prepass = true;

  /// Logical->physical qubit remapping (Intel-QS-style relabeling over
  /// Section 3.3's partitioning). When on, the scheduler's remap pre-pass
  /// rewrites gates through the current qubit map, absorbs SWAPs into the
  /// map, and trades each hot rank-segment qubit into the offset segment
  /// with a single exchange sweep so later gates on it route block-locally
  /// — instead of one compressed-block exchange per gate. Off by default:
  /// the identity layout reproduces the paper's communication behavior.
  bool enable_qubit_remap = false;

  /// Cold-qubit selection when a remap must evict an offset-segment
  /// resident. "lookahead" (default) plans with the remaining circuit:
  /// last-touch rank gates are paid in place and evictions pick the
  /// resident targeted furthest in the future. "lru" is the classic
  /// history-only policy: always remap, evict the least-recently-used.
  std::string remap_policy = "lookahead";

  /// Absorb SWAP gates into the qubit map (free relabels) instead of
  /// expanding them into three CX sweeps. Exact up to the sign of zero
  /// components the skipped X kernels would have recomputed.
  bool remap_relabel_swaps = true;

  /// Overlapped block pipeline: while gates apply to block N, block N+1 is
  /// decompressed into a pooled staging buffer and block N-1 recompresses
  /// on another worker. Bit-identical to the sequential path (each block's
  /// work is unchanged, only overlapped); needs >= 2 worker threads to
  /// engage, otherwise the sequential path runs.
  bool enable_pipeline = true;

  /// Staging buffers the pipeline may hold decoded at once (the classic
  /// double buffer at 2). Each costs one block buffer of scratch, charged
  /// to Eq. 8. In [1, 64].
  int pipeline_depth = 2;

  /// Runtime-dispatched SIMD apply kernels (AVX2/NEON). Bit-identical to
  /// the scalar reference by construction; off forces the scalar path.
  bool enable_simd_kernels = true;

  /// Cross-rank transport backend (runtime/transport.hpp). "loopback"
  /// keeps all ranks in-process (the staged-copy model, the default);
  /// "socket" runs each rank as a real OS process joined by a stream
  /// socket — exchanged payloads traverse the wire as checksummed frames
  /// and states stay bit-identical to loopback. "socket" requires the
  /// CQS_TRANSPORT_SOCKET build and num_ranks >= 2.
  std::string transport = "loopback";

  /// Deadline (milliseconds) for every blocking wire operation on process
  /// transports: connect, send, recv. A rank that dies, stalls, or
  /// corrupts frames fails the exchange with a typed TransportError
  /// within this bound — an exchange can never hang. Must be positive.
  int rank_timeout_ms = 5000;

  /// Socket-transport endpoint flavor: "local" = a pre-connected
  /// Unix-domain socketpair per rank process; "tcp" = rank processes
  /// connect back to an ephemeral 127.0.0.1 listener.
  std::string socket_endpoint = "local";

  /// Out-of-core spill tier. Non-empty enables it: cold compressed blocks
  /// move to an unlinked scratch file created at this path (one segment
  /// per block, mmap readback) whenever the resident tier exceeds
  /// resident_budget_bytes. Tier moves are byte-preserving, so results
  /// are bit-identical to a spill-off run. Requires a resident budget.
  std::string spill_path;

  /// Compressed bytes the *resident* (in-memory) tier may hold when the
  /// spill tier is enabled; the excess is written behind to the spill
  /// file. With spilling on, memory_budget_bytes (the Eq. 8 enforcement)
  /// also governs the resident tier — bytes parked on NVMe no longer
  /// count against the in-memory budget. Must be > 0 when spill_path is
  /// set, 0 otherwise.
  std::size_t resident_budget_bytes = 0;

  /// Spilled blocks to advise (madvise WILLNEED) ahead of the executor's
  /// cursor, keyed on the scheduler's block order — the plan-driven
  /// readahead window. 0 disables readahead. In [0, 4096].
  int readahead_blocks = 4;

  /// Auto-checkpointing: the executors consume circuits in chunks of
  /// this many source gates (boundaries at absolute multiples of the
  /// interval) and save an atomic checkpoint to auto_checkpoint_path
  /// after each chunk. The interval is a scheduling cut: fused ops and
  /// gate runs never span a boundary, so a resume from the autosave
  /// re-chunks identically and is bit-identical to the uninterrupted
  /// autosaved run. (Like any scheduling knob, changing the interval
  /// reassociates fusion arithmetic relative to an autosave-off run.)
  /// 0 disables autosaving. Both knobs must be set together.
  std::uint64_t checkpoint_interval_gates = 0;
  std::string auto_checkpoint_path;

  /// Mid-run ENOSPC degradation: when a spill write fails with ENOSPC,
  /// settle what's already on disk, disable further spilling, and keep
  /// running with the whole working set resident — the Eq. 8 memory
  /// budget still governs via the error ladder, and only if the state
  /// cannot fit even at the last ladder level does the run fail with the
  /// original typed SpillError. Off by default (a disk-full spill fails
  /// the run immediately); run_resilient() forces it on. The report's
  /// `degraded` flag records that the fallback engaged.
  bool spill_degrade_on_enospc = false;
};

}  // namespace cqs::core
