// CompressedStateSimulator — the paper's primary contribution (Sections 3
// and 4): a Schrödinger-style full-state simulator whose state vector
// lives in independently compressed blocks spread across logical ranks.
//
// Per gate, at most two blocks per worker are decompressed into
// pre-allocated scratch (the MCDRAM discipline of Figure 2), the 2x2
// unitary is applied to the amplitude pairs selected by the target qubit's
// index segment (Figure 3), and the blocks are recompressed. Runs of
// consecutive block-local gates (targets and controls all in the offset
// segment) are batched by the gate-run scheduler (qsim/scheduler.hpp) so
// each block pays one codec round — and one lossy fidelity pass — per run
// instead of per gate. A hybrid
// compression policy starts lossless (Zstd stand-in) and escalates through
// a pointwise-relative error-bound ladder whenever the configured memory
// budget is exceeded (Section 3.7), while a fidelity lower bound
// F >= prod (1 - delta_i) is maintained (Section 3.8).
#pragma once

#include <atomic>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "common/timer.hpp"
#include "compression/compressor.hpp"
#include "core/config.hpp"
#include "core/fidelity.hpp"
#include "core/report.hpp"
#include "qsim/circuit.hpp"
#include "qsim/gates.hpp"
#include "qsim/scheduler.hpp"
#include "runtime/block_cache.hpp"
#include "runtime/block_store.hpp"
#include "runtime/codec_arbiter.hpp"
#include "runtime/comm.hpp"
#include "runtime/partition.hpp"
#include "runtime/qubit_map.hpp"
#include "runtime/scratch.hpp"

namespace cqs::core {

/// Knobs of the run_resilient() recovery loop.
struct RecoveryOptions {
  /// Transport faults survived before the run gives up and rethrows. 0
  /// degenerates to a plain run that still degrades on ENOSPC.
  int max_recoveries = 3;
  /// Wait before the first respawn, in milliseconds; doubles on every
  /// consecutive recovery (exponential backoff). 0 retries immediately.
  int retry_backoff_ms = 100;
};

class CompressedStateSimulator {
 public:
  explicit CompressedStateSimulator(SimConfig config);

  const SimConfig& config() const { return config_; }
  const runtime::Partition& partition() const { return partition_; }

  /// Current logical->physical qubit layout. Identity unless qubit
  /// remapping has relabeled or exchanged positions (or a v4 checkpoint
  /// restored a remapped layout). All public APIs speak logical indices;
  /// the map is exposed for tests and benches.
  const runtime::QubitMap& qubit_map() const { return map_; }

  /// Applies one ad-hoc gate (counts toward the per-gate statistics).
  /// Ad-hoc gates invalidate any recorded circuit position: the gate
  /// cursor resets to 0, so a later checkpoint never claims a resume
  /// point inside a circuit the state has since diverged from.
  void apply(const qsim::GateOp& op);

  /// Applies `circuit` from its first gate. Always starts fresh — applying
  /// a second circuit after a completed one runs all of its gates (the
  /// cursor is scoped to resume semantics; see resume_circuit).
  void apply_circuit(const qsim::Circuit& circuit);

  /// Applies `circuit` from the current gate cursor to the end — after a
  /// checkpoint restore this resumes exactly where the saved run stopped.
  /// The cursor counts gates of the caller's circuit (pre-fusion), so the
  /// same circuit object drives the full run and the resumed half.
  void resume_circuit(const qsim::Circuit& circuit);

  std::uint64_t gate_cursor() const { return gate_cursor_; }

  // --- State queries (decompress read-only; no fidelity cost) ---

  /// Probability that `qubit` measures |1>.
  double probability_one(int qubit);

  /// Sum of squared magnitudes over the full compressed state.
  double norm();

  /// Full state as interleaved re/im doubles. Only for testing-scale
  /// qubit counts (refuses above 26 qubits).
  std::vector<double> to_raw();

  std::vector<qsim::Amplitude> to_amplitudes();

  /// Statistical assertion (quantum-program debugging, Section 1): checks
  /// that qubit's P(|1>) is within `tolerance` of `expected`.
  bool assert_probability(int qubit, double expected, double tolerance);

  /// Expectation of the Pauli-Z string over the qubits in `qubit_mask`:
  /// sum_i (-1)^{popcount(i & mask)} |a_i|^2. With mask = (1<<a)|(1<<b)
  /// this is <Z_a Z_b>, the QAOA MAXCUT cost observable.
  double expectation_pauli_z(std::uint64_t qubit_mask);

  /// Samples one basis state from the compressed distribution without
  /// collapsing (the paper's sampling workloads read the final state).
  std::uint64_t sample(Rng& rng);

  // --- Intermediate measurement (Section 2.2's motivating capability) ---

  /// Projective measurement; collapses, renormalizes, recompresses. Like
  /// an ad-hoc apply(), collapse voids the recorded resume cursor.
  int measure(int qubit, Rng& rng);

  // --- Compression state ---

  int ladder_level() const { return level_; }
  double fidelity_bound() const { return fidelity_.bound(); }
  std::size_t compressed_bytes() const;
  double compression_ratio() const;

  // --- Checkpointing (Section 3.5) ---

  void save_checkpoint(const std::string& path) const;
  static CompressedStateSimulator load_checkpoint(const std::string& path,
                                                  SimConfig config);

  // --- Fault tolerance (auto-checkpointed recovery) ---

  /// Runs `circuit` to completion, surviving transport faults: on a
  /// kTimeout / kRankDead / kFrameCorrupt the failed simulator is torn
  /// down (joining its thread pool and reaping the transport's rank
  /// processes), the loop backs off exponentially, and a fresh simulator
  /// — respawned rank endpoints included — reloads the last autosave at
  /// config.auto_checkpoint_path (or restarts from scratch when none
  /// exists yet) and resumes. Autosaves land at run boundaries, so a
  /// recovered run is bit-identical to the fault-free one. ENOSPC spill
  /// degradation (SimConfig::spill_degrade_on_enospc) is forced on.
  /// After max_recoveries the last fault is rethrown; kProtocol errors
  /// (bugs, not faults) are never retried. Returns the completed
  /// simulator, whose report carries the recovery counters.
  static CompressedStateSimulator run_resilient(
      SimConfig config, const qsim::Circuit& circuit,
      const RecoveryOptions& options = {});

  SimulationReport report() const;

  /// The communicator carrying this run's exchanges — benches and the
  /// rank launcher read its transport (wire stats; the socket backend's
  /// rank-process table) through this.
  runtime::Comm& comm() { return *comm_; }
  const runtime::Comm& comm() const { return *comm_; }

 private:
  struct GateRouting;  // resolved target/control segmentation
  struct RunPlan;      // resolved kernels + cache identity of one gate run
  struct UnitSpec;     // one single-block unit task (cache id + kernels)

  /// Copyable relaxed counter so the simulator stays movable (checkpoint
  /// load returns by value) while workers bump it concurrently.
  struct InvocationCounter {
    mutable std::atomic<std::uint64_t> value{0};
    InvocationCounter() = default;
    InvocationCounter(const InvocationCounter& other)
        : value(other.get()) {}
    InvocationCounter& operator=(const InvocationCounter& other) {
      value.store(other.get(), std::memory_order_relaxed);
      return *this;
    }
    void bump() const { value.fetch_add(1, std::memory_order_relaxed); }
    std::uint64_t get() const {
      return value.load(std::memory_order_relaxed);
    }
  };

  /// Per-worker codec call attribution: wall seconds and invocation
  /// counts split by codec class (lossless zx vs the configured lossy
  /// codec), merged into the report. Counts are deterministic across
  /// worker counts when the block cache is off; seconds are wall-clock.
  struct CodecCallStats {
    double lossless_compress_seconds = 0.0;
    double lossy_compress_seconds = 0.0;
    double lossless_decompress_seconds = 0.0;
    double lossy_decompress_seconds = 0.0;
    std::uint64_t lossless_compress_calls = 0;
    std::uint64_t lossy_compress_calls = 0;
    std::uint64_t lossless_decompress_calls = 0;
    std::uint64_t lossy_decompress_calls = 0;
  };

  void init_blocks();
  int global_block(int rank, int block) const {
    return rank * partition_.blocks_per_rank() + block;
  }
  /// Compresses one block at `level`, letting the codec arbiter pick
  /// lossless vs. the configured lossy codec per block. Returns the
  /// payload plus the BlockMeta (level + codec id) describing it. The
  /// worker index selects the timer slot and the pooled CodecScratch, so
  /// steady-state calls only allocate the returned payload.
  std::pair<Bytes, runtime::BlockMeta> encode_block(
      std::span<const double> data, int level, int rank, int block,
      std::size_t worker) const;
  void decompress_block(int rank, int block, std::span<double> out,
                        std::size_t worker) const;
  void decompress_payload(ByteSpan payload, const runtime::BlockMeta& meta,
                          std::span<double> out, std::size_t worker) const;

  /// Shared tail of apply_circuit / resume_circuit: applies the ops of
  /// `circuit` from gate_cursor_ to the end in autosave-interval-aligned
  /// chunks of source gates, saving a checkpoint between chunks when
  /// auto-checkpointing is on. Chunk boundaries are the only cursor
  /// positions where the applied state is an exact source-gate prefix
  /// (fusion emits buffered single-qubit runs out of source order), so
  /// they are the only places an autosave may cut.
  void run_from_cursor(const qsim::Circuit& circuit);
  /// One chunk of run_from_cursor: applies ops [gate_cursor_, end) —
  /// through the qubit-remap pre-pass whenever remapping is on or the
  /// layout is already non-identity — batched through the gate-run
  /// scheduler when enabled, advancing the cursor in source-gate units.
  void run_source_range(const qsim::Circuit& circuit, std::size_t end);
  /// Applies one contiguous stretch of already-physical ops, batched or
  /// per-gate, advancing the cursor. `origin_counts` carries per-op
  /// source-gate weights when the ops were fused before planning (null =
  /// every op weighs 1 and the scheduler may fuse internally).
  void run_segment(const qsim::Circuit& segment,
                   const std::vector<std::size_t>* origin_counts = nullptr);
  /// One physical exchange sweep trading a rank-segment position for an
  /// offset-segment position (the data half of a RemapOp; the caller
  /// mirrors the swap into map_).
  void apply_remap(const qsim::RemapStep& step);
  /// `op` with its qubits rewritten into the current physical layout.
  qsim::GateOp to_physical(const qsim::GateOp& op) const;
  void apply_single_counted(const qsim::GateOp& op);

  void apply_impl(const qsim::GateOp& op);
  /// One codec pass per block for a block-local gate run: decompress once,
  /// apply every kernel in scratch, recompress once.
  void apply_run(const qsim::Circuit& circuit, const qsim::GateRun& run);
  RunPlan build_run_plan(const qsim::Circuit& circuit,
                         const qsim::GateRun& run) const;
  void process_pair(const GateRouting& routing, int rank_a, int block_a,
                    int rank_b, int block_b, std::size_t worker);

  // --- Single-block unit executors (sequential + pipelined) ---

  /// True when the overlapped pipeline can engage: knob on, >= 2 workers,
  /// staging buffers allocated.
  bool pipeline_ready() const;
  /// Cache probe of one unit. On a hit the stored block is replaced from
  /// the cache and counters bumped (the unit is fully handled); on a miss
  /// the key (0 when the cache is off) is reported for the later insert.
  bool unit_cache_probe(const UnitSpec& spec, int rank, int block,
                        std::uint64_t* key_out);
  /// Recompress + cache-insert + store + counters tail of one unit.
  void unit_finish(const UnitSpec& spec, int rank, int block,
                   std::size_t worker, std::span<double> amps,
                   std::uint64_t key);
  /// Runs every (rank, block) unit: decompress, spec.compute, recompress.
  /// Dispatches to the overlapped pipeline when it can engage, else a
  /// plain parallel_for. Bit-identical either way.
  void run_units(const std::vector<std::pair<int, int>>& units,
                 const UnitSpec& spec);
  void run_units_pipelined(const std::vector<std::pair<int, int>>& units,
                           const UnitSpec& spec);
  void run_diagonal(const GateRouting& routing);
  void run_offset_target(const GateRouting& routing);
  void run_block_target(const GateRouting& routing);
  void run_rank_target(const GateRouting& routing);

  // --- Out-of-core tier maintenance (Section 3.7 extended: the resident
  // --- tier is what the Eq. 8 budget governs once spilling is on) ---

  /// Settles finished write-behind spills, then enqueues enough async
  /// evictions to bring projected resident bytes under the resident
  /// budget, and refreshes the streaming-spill flag. Called between
  /// parallel regions (gate boundaries, measure, checkpoint restore).
  void maintain_tiers();
  /// Waits for every pending write-behind job and commits the ones whose
  /// block is still untouched. The first job failure (ENOSPC etc.) is
  /// rethrown after all jobs settle, so no future is abandoned.
  void settle_pending_spills();
  /// Waits for every pending write-behind job and discards it: finished
  /// segments go back to the spill free-list, write failures are swallowed
  /// (the state they belonged to is being thrown away). Required before
  /// replacing ranks_ wholesale (checkpoint restore) — per-slot generation
  /// counters restart in the new stores, so a settle after the swap would
  /// wrongly commit pre-swap segments onto freshly loaded blocks.
  void discard_pending_spills();
  /// Streaming spill: once the state exceeds the resident budget, every
  /// freshly (re)compressed block is moved to the spill tier as soon as
  /// its owning worker stores it. Unconditional while the flag is set, so
  /// the spill/fault counts stay schedule-independent.
  void maybe_stream_spill(int rank, int block);
  /// Resident bytes minus spill writes already in flight — what
  /// enforce_budget compares against the (memory) budget. Equals
  /// compressed_bytes() whenever spilling is off.
  std::size_t resident_occupancy() const;

  /// Escalates the error ladder and recompresses every block until the
  /// compressed total fits the budget (or the ladder is exhausted).
  void enforce_budget();
  /// Recompresses every block at `new_level`; returns how many blocks the
  /// arbiter actually sent through the lossy codec (adaptive blocks can
  /// stay lossless), so the caller records a fidelity pass only when one
  /// happened.
  std::uint64_t recompress_all(int new_level);
  void note_gate_finished(double gate_seconds);
  /// Saves to auto_checkpoint_path when checkpoint_interval_gates more
  /// gates have completed since the last autosave. Called only where the
  /// gate cursor is consistent with the applied state (run boundaries), so
  /// a resume from the file never re-applies or skips a gate. A failed
  /// autosave is counted, not fatal — the previous file survives the
  /// atomic save, so recovery just loses the newest interval.
  void maybe_autosave();
  /// True once a mid-run ENOSPC disabled the spill tier.
  bool degraded() const { return spill_degraded_.get() > 0; }

  bool controls_satisfied_block(const GateRouting& routing, int rank,
                                int block) const;

  /// One write-behind spill in flight: a pool job owns the payload handle
  /// and fills `segment`; the main thread commits (or discards) it at the
  /// next settle, gated on the block's generation.
  struct PendingSpill {
    int rank = 0;
    int block = 0;
    std::uint64_t generation = 0;
    std::size_t bytes = 0;
    std::shared_ptr<runtime::SpillSegment> segment;
    std::future<void> done;
  };

  SimConfig config_;
  runtime::Partition partition_;
  // Declared before ranks_ (and destroyed after them): the stores return
  // their segments to spill_ in their destructors.
  std::unique_ptr<runtime::TierStats> tier_stats_;
  std::unique_ptr<runtime::SpillFile> spill_;
  std::vector<runtime::BlockStore> ranks_;
  std::vector<std::unique_ptr<runtime::BlockCache>> caches_;
  std::unique_ptr<runtime::Comm> comm_;
  std::unique_ptr<compression::Compressor> lossless_;
  std::unique_ptr<compression::Compressor> lossy_;
  std::uint8_t lossy_codec_id_ = compression::kLosslessCodecId;
  std::unique_ptr<runtime::CodecArbiter> arbiter_;
  std::unique_ptr<ThreadPool> pool_;
  std::unique_ptr<runtime::ScratchArena> scratch_;
  mutable std::vector<PhaseTimers> worker_timers_;
  mutable std::vector<CodecCallStats> codec_stats_;  // one per worker

  int level_ = 0;  ///< 0 = lossless; k > 0 = error_ladder[k-1]
  FidelityTracker fidelity_;
  std::uint64_t gate_cursor_ = 0;

  /// Kernel backend the apply loops dispatch to (detected once at
  /// construction from config_.enable_simd_kernels and the host CPU).
  qsim::KernelBackend backend_ = qsim::KernelBackend::kScalar;

  // Overlapped-pipeline accounting (bumped between parallel regions only).
  std::uint64_t pipeline_blocks_ = 0;
  std::uint64_t pipeline_prefetched_ = 0;
  std::uint64_t pipeline_stalls_ = 0;

  // Qubit remapping (logical->physical relabeling).
  runtime::QubitMap map_;
  /// Bumped on every map mutation; joins cache keys so cached outputs
  /// stay pure functions of their inputs across relabels.
  std::uint64_t map_generation_ = 0;
  std::vector<std::uint64_t> remap_last_use_;  ///< kLru recency, by logical
  std::uint64_t remap_tick_ = 0;

  // Statistics.
  std::uint64_t gates_ = 0;
  std::uint64_t batched_runs_ = 0;
  std::uint64_t batched_gates_ = 0;  ///< scheduled ops applied inside runs
  std::uint64_t remap_sweeps_ = 0;
  std::uint64_t swaps_relabeled_ = 0;
  std::uint64_t rank_gates_localized_ = 0;
  std::uint64_t rank_gates_in_place_ = 0;
  std::uint64_t remap_sweeps_avoided_ = 0;
  InvocationCounter compress_calls_;
  InvocationCounter decompress_calls_;
  double wall_seconds_ = 0.0;
  double min_ratio_ = 0.0;  ///< 0 until first gate
  bool budget_exceeded_ = false;

  // Out-of-core bookkeeping (mutated between parallel regions only).
  std::vector<PendingSpill> pending_spills_;
  std::size_t pending_spill_bytes_ = 0;
  std::size_t evict_cursor_ = 0;  ///< round-robin global block scan position
  bool stream_spill_ = false;

  // Fault tolerance. spill_degraded_ / spill_write_failures_ are bumped by
  // workers when a streaming spill hits ENOSPC under degradation, hence
  // the copyable-atomic counters; the autosave fields are main-thread only
  // (run boundaries). recoveries_ / recovery_backoff_ms_ are stamped onto
  // the final simulator by run_resilient so the report can carry them.
  InvocationCounter spill_degraded_;        ///< > 0 once spilling disabled
  InvocationCounter spill_write_failures_;  ///< ENOSPC writes ridden out
  std::uint64_t autosaves_ = 0;
  std::uint64_t autosave_failures_ = 0;
  double autosave_seconds_ = 0.0;
  std::uint64_t gates_at_last_autosave_ = 0;  ///< gate_cursor_ at last save
  std::uint64_t recoveries_ = 0;
  std::uint64_t recovery_backoff_ms_ = 0;
};

}  // namespace cqs::core
