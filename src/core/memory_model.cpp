#include "core/memory_model.hpp"

#include <cmath>
#include <sstream>
#include <stdexcept>

namespace cqs::core {

std::uint64_t memory_required_bytes(int num_qubits) {
  if (num_qubits < 0 || num_qubits > 59) {
    throw std::invalid_argument(
        "memory_required_bytes: 2^{n+4} overflows uint64 beyond n = 59");
  }
  return std::uint64_t{1} << (num_qubits + 4);
}

int max_qubits_for_memory(std::uint64_t memory_bytes) {
  return max_qubits_with_compression(memory_bytes, 1.0);
}

int max_qubits_with_compression(std::uint64_t memory_bytes, double ratio) {
  if (!(ratio >= 1.0)) {
    throw std::invalid_argument("compression ratio must be >= 1");
  }
  if (memory_bytes < 16) return 0;
  // Largest n with 2^{n+4} <= memory * ratio; computed in log space so
  // compressed capacities beyond 2^64 bytes (e.g. Grover's 7e4x on a PB
  // machine) are still representable.
  const double effective_log2 = std::log2(static_cast<double>(memory_bytes)) +
                                std::log2(ratio);
  const int n = static_cast<int>(std::floor(effective_log2 + 1e-9)) - 4;
  return std::max(n, 0);
}

std::vector<MachineRow> table1_machines(double compression_ratio) {
  // Memory capacities from Table 1 (petabytes).
  const std::pair<const char*, double> machines[] = {
      {"Summit", 2.8},
      {"Sierra", 1.38},
      {"Sunway TaihuLight", 1.31},
      {"Theta", 0.8},
  };
  std::vector<MachineRow> rows;
  for (const auto& [name, pb] : machines) {
    const auto bytes = static_cast<std::uint64_t>(pb * 1e15);
    rows.push_back({name, pb, max_qubits_for_memory(bytes),
                    max_qubits_with_compression(bytes, compression_ratio)});
  }
  return rows;
}

std::string format_bytes(std::uint64_t bytes) {
  const char* units[] = {"B", "KB", "MB", "GB", "TB", "PB", "EB"};
  double value = static_cast<double>(bytes);
  int unit = 0;
  while (value >= 1024.0 && unit < 6) {
    value /= 1024.0;
    ++unit;
  }
  std::ostringstream os;
  os.precision(value < 10 ? 2 : (value < 100 ? 1 : 0));
  os << std::fixed << value << ' ' << units[unit];
  return os.str();
}

}  // namespace cqs::core
