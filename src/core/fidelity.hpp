// Fidelity lower-bound tracking (Section 3.8): each lossy compression with
// pointwise relative bound delta multiplies the bound on
// |<psi_ideal|psi_sim>| by (1 - delta); combining all gates gives
// F >= prod_i (1 - delta_i) (Eq. 11).
#pragma once

#include <cstdint>

namespace cqs::core {

class FidelityTracker {
 public:
  /// Records one lossy compression pass applied during gate execution.
  void record_lossy_pass(double delta) {
    bound_ *= (1.0 - delta);
    ++lossy_passes_;
  }

  double bound() const { return bound_; }
  std::uint64_t lossy_passes() const { return lossy_passes_; }

  /// Reinstates a persisted bound and pass count (checkpoint resume): the
  /// restored history must report exactly what the saved run accumulated,
  /// not a synthetic single pass.
  void restore(double bound, std::uint64_t lossy_passes) {
    bound_ = bound;
    lossy_passes_ = lossy_passes;
  }

  /// Analytic helper for Figure 6: the bound after `gates` gates all at
  /// error level `delta`.
  static double bound_after(std::uint64_t gates, double delta) {
    double f = 1.0;
    for (std::uint64_t i = 0; i < gates; ++i) f *= (1.0 - delta);
    return f;
  }

 private:
  double bound_ = 1.0;
  std::uint64_t lossy_passes_ = 0;
};

}  // namespace cqs::core
