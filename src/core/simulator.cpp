#include "core/simulator.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <complex>
#include <cstring>
#include <filesystem>
#include <functional>
#include <optional>
#include <stdexcept>
#include <thread>

#include "core/memory_model.hpp"
#include "runtime/checkpoint.hpp"
#include "zfp/zfp.hpp"
#include "zfp/zfp_rans.hpp"

namespace cqs::core {

using compression::ErrorBound;
using qsim::Amplitude;
using qsim::GateKind;
using qsim::GateOp;
using qsim::Mat2;
using runtime::Partition;

namespace {


inline std::complex<double>* as_complex(std::span<double> raw) {
  return reinterpret_cast<std::complex<double>*>(raw.data());
}

/// Applies one offset-segment kernel to a decompressed block: the
/// diagonal multiply or the classic strided pairs (Figure 1), restricted
/// to amplitudes whose offset-segment control bits are all set. Shared by
/// the single-gate path and the run executor; the hot loops themselves
/// live in qsim/gates.cpp behind runtime backend dispatch.
void apply_offset_kernel(Amplitude* amps, std::uint64_t count,
                         const Mat2& m, bool diagonal,
                         std::uint64_t target_bit, std::uint64_t ctrl,
                         qsim::KernelBackend backend) {
  if (diagonal) {
    qsim::diag_kernel(amps, count, m, target_bit, ctrl, backend);
  } else {
    qsim::mix_kernel(amps, count, m, target_bit, ctrl, backend);
  }
}

/// Cache-key descriptor of one gate: identity + placement + compression
/// level. Shared by the single-gate routing and the run planner so a
/// length-one run and a single gate describe the op identically.
void append_gate_descriptor(Bytes& out, const GateOp& op, int level) {
  out.push_back(static_cast<std::byte>(op.kind));
  put_varint(out, static_cast<std::uint64_t>(op.target));
  put_varint(out, static_cast<std::uint64_t>(op.controls[0] + 1));
  put_varint(out, static_cast<std::uint64_t>(op.controls[1] + 1));
  for (double p : op.params) put_scalar(out, p);
  out.push_back(static_cast<std::byte>(level));
}

}  // namespace

/// Resolved routing of one gate against the partition: where the target
/// and each control fall (Figure 3's three segments), the materialized
/// unitary, and the cache-key descriptor.
struct CompressedStateSimulator::GateRouting {
  GateOp op;
  Mat2 m{};
  bool diagonal = false;
  Partition::Segment target_segment = Partition::Segment::kOffset;
  int target_local_bit = 0;
  std::uint64_t offset_ctrl_mask = 0;
  int block_ctrl_mask = 0;
  int rank_ctrl_mask = 0;
  int level = 0;
  Bytes descriptor;
  /// Count of blocks recompressed during this gate (shared across workers).
  mutable std::atomic<std::uint64_t> blocks_compressed{0};
  /// Blocks whose recompression (or cached output) went through the lossy
  /// codec — only these trigger a fidelity pass.
  mutable std::atomic<std::uint64_t> blocks_lossy{0};
};

/// Resolved execution plan of one block-local gate run: every kernel acts
/// purely on offset-segment bits, so the same plan sweeps every block and
/// each block pays a single decompress/recompress round for the whole run.
struct CompressedStateSimulator::RunPlan {
  struct Kernel {
    Mat2 m{};
    bool diagonal = false;
    std::uint64_t target_bit = 0;  ///< 1 << offset-local target bit
    std::uint64_t ctrl_mask = 0;   ///< offset-segment control bits
  };
  std::vector<Kernel> kernels;
  /// Per-gate cache descriptors (kind/placement/params/level) — the run's
  /// cache identity via BlockCache::make_run_key.
  std::vector<Bytes> descriptors;
  int level = 0;
  InvocationCounter blocks_compressed;  ///< blocks recompressed by this run
  InvocationCounter blocks_lossy;  ///< of those, ones the lossy codec wrote
};

/// One single-block unit task, shared by the sequential and the overlapped
/// pipeline executors: how to identify the unit in the cache, what to
/// compute on the decoded amplitudes, and where to account the
/// recompression. Every field is safe to call from any worker.
struct CompressedStateSimulator::UnitSpec {
  int level = 0;
  /// Cache key of one unit (called only when the cache is enabled; must
  /// read the *current* stored payload, i.e. before decompression).
  std::function<std::uint64_t(int rank, int block)> make_key;
  /// Applies the unit's kernels to the decoded block.
  std::function<void(qsim::Amplitude* amps, std::uint64_t count, int rank,
                     int block)>
      compute;
  std::atomic<std::uint64_t>* blocks_compressed = nullptr;
  std::atomic<std::uint64_t>* blocks_lossy = nullptr;
};

CompressedStateSimulator::CompressedStateSimulator(SimConfig config)
    : config_(std::move(config)),
      partition_(runtime::make_partition(config_.num_qubits,
                                         config_.num_ranks,
                                         config_.blocks_per_rank)) {
  lossless_ = compression::make_compressor("zstd");
  if (config_.codec != "zstd") {
    lossy_ = compression::make_compressor(config_.codec);
    if (!lossy_->supports(compression::BoundMode::kPointwiseRelative)) {
      throw std::invalid_argument(
          "simulator: codec must support pointwise relative bounds");
    }
    lossy_codec_id_ = compression::codec_id(config_.codec);
  }
  // zfp rate-control knobs are validated here — not silently clamped in
  // the codec — so a bad value fails construction with a message instead
  // of quietly encoding at a different precision.
  const bool zfp_family =
      config_.codec == "zfp" || config_.codec == "zfp-rans";
  if (config_.zfp_fixed_precision < 0 ||
      config_.zfp_fixed_precision > zfp::kTotalPlanes) {
    throw std::invalid_argument(
        "simulator: zfp_fixed_precision must be in [0, 62] bit planes");
  }
  if (config_.zfp_fixed_precision > 0 && config_.zfp_fixed_accuracy) {
    throw std::invalid_argument(
        "simulator: zfp_fixed_precision and zfp_fixed_accuracy are "
        "mutually exclusive rate-control modes");
  }
  if ((config_.zfp_fixed_precision > 0 || config_.zfp_fixed_accuracy) &&
      !zfp_family) {
    throw std::invalid_argument(
        "simulator: zfp_fixed_precision / zfp_fixed_accuracy require a "
        "zfp-family codec ('zfp' or 'zfp-rans')");
  }
  if (config_.zfp_fixed_precision > 0) {
    // Same registry id, precision pinned at construction.
    if (config_.codec == "zfp") {
      lossy_ = std::make_unique<zfp::ZfpCodec>(config_.zfp_fixed_precision);
    } else {
      lossy_ =
          std::make_unique<zfp::ZfpRansCodec>(config_.zfp_fixed_precision);
    }
  }
  if (config_.error_ladder.empty()) {
    throw std::invalid_argument(
        "simulator: error ladder must not be empty (level 0 is implicit; "
        "give at least one lossy bound)");
  }
  for (double eps : config_.error_ladder) {
    if (!(eps > 0.0) || !(eps < 1.0)) {
      throw std::invalid_argument("simulator: ladder bounds must be in (0,1)");
    }
  }
  if (!std::is_sorted(config_.error_ladder.begin(),
                      config_.error_ladder.end())) {
    throw std::invalid_argument(
        "simulator: error ladder must be sorted ascending (tight to loose)");
  }
  level_ = std::clamp(config_.initial_level, 0,
                      static_cast<int>(config_.error_ladder.size()));
  if (level_ > 0 && lossy_ == nullptr) {
    throw std::invalid_argument(
        "simulator: lossless codec cannot start at a lossy level");
  }

  // Remap knobs are validated whether or not remapping is on, so a bad
  // config cannot lie dormant until a resume flips the feature.
  try {
    qsim::parse_remap_policy(config_.remap_policy);
  } catch (const std::invalid_argument& e) {
    throw std::invalid_argument(std::string("simulator: ") + e.what());
  }

  // Pipeline knobs are likewise validated even when the pipeline is off.
  if (config_.pipeline_depth < 1 || config_.pipeline_depth > 64) {
    throw std::invalid_argument(
        "simulator: pipeline_depth must be in [1, 64] staging buffers");
  }

  // Out-of-core knobs: a spill path needs a resident budget to govern the
  // tier split, and a budget without a path would silently do nothing.
  if (!config_.spill_path.empty() && config_.resident_budget_bytes == 0) {
    throw std::invalid_argument(
        "simulator: spill_path requires resident_budget_bytes > 0");
  }
  if (config_.spill_path.empty() && config_.resident_budget_bytes != 0) {
    throw std::invalid_argument(
        "simulator: resident_budget_bytes requires a spill_path");
  }
  if (config_.readahead_blocks < 0 || config_.readahead_blocks > 4096) {
    throw std::invalid_argument(
        "simulator: readahead_blocks must be in [0, 4096]");
  }
  // Auto-checkpoint knobs travel in pairs: an interval with nowhere to
  // save (or a path that never saves) is a latent misconfiguration.
  if ((config_.checkpoint_interval_gates != 0) !=
      (!config_.auto_checkpoint_path.empty())) {
    throw std::invalid_argument(
        "simulator: checkpoint_interval_gates and auto_checkpoint_path "
        "must be set together");
  }
  backend_ = qsim::detect_kernel_backend(config_.enable_simd_kernels);
  map_ = runtime::QubitMap::identity(config_.num_qubits);
  remap_last_use_.assign(static_cast<std::size_t>(config_.num_qubits), 0);

  runtime::ArbiterConfig arbiter_config;
  arbiter_config.policy = runtime::parse_codec_policy(config_.codec_policy);
  arbiter_config.zero_fraction_threshold = config_.adaptive_zero_fraction;
  arbiter_config.dynamic_range_threshold = config_.adaptive_dynamic_range;
  arbiter_config.spikiness_threshold = config_.adaptive_spikiness;
  arbiter_config.hysteresis = config_.adaptive_hysteresis;
  if (!(arbiter_config.zero_fraction_threshold >= 0.0) ||
      !(arbiter_config.zero_fraction_threshold <= 1.0)) {
    throw std::invalid_argument(
        "simulator: adaptive_zero_fraction must be in [0, 1]");
  }
  if (!(arbiter_config.dynamic_range_threshold >= 0.0)) {
    throw std::invalid_argument(
        "simulator: adaptive_dynamic_range must be >= 0 bits");
  }
  if (!(arbiter_config.spikiness_threshold > 1.0)) {
    throw std::invalid_argument(
        "simulator: adaptive_spikiness must exceed 1 (max/mean ratio)");
  }
  if (!(arbiter_config.hysteresis >= 0.0) ||
      !(arbiter_config.hysteresis < 0.5)) {
    throw std::invalid_argument(
        "simulator: adaptive_hysteresis must be in [0, 0.5)");
  }
  arbiter_ = std::make_unique<runtime::CodecArbiter>(
      arbiter_config,
      partition_.num_ranks() * partition_.blocks_per_rank());

  // Transport knobs are validated (and the transport built) before the
  // thread pool exists: the socket backend fork()s one endpoint process
  // per rank, which must happen while this process is still
  // single-threaded.
  if (config_.transport != "loopback" && config_.transport != "socket") {
    throw std::invalid_argument("simulator: unknown transport '" +
                                config_.transport +
                                "' (expected 'loopback' or 'socket')");
  }
  if (config_.rank_timeout_ms <= 0) {
    throw std::invalid_argument(
        "simulator: rank_timeout_ms must be positive");
  }
  if (config_.socket_endpoint != "local" &&
      config_.socket_endpoint != "tcp") {
    throw std::invalid_argument("simulator: unknown socket_endpoint '" +
                                config_.socket_endpoint +
                                "' (expected 'local' or 'tcp')");
  }
  if (config_.transport == "socket" && config_.num_ranks < 2) {
    throw std::invalid_argument(
        "simulator: transport 'socket' requires num_ranks >= 2 (a "
        "single-rank run has no cross-rank wire to exercise)");
  }
  runtime::TransportOptions transport_options;
  transport_options.num_ranks = partition_.num_ranks();
  transport_options.rank_timeout_ms = config_.rank_timeout_ms;
  transport_options.socket_endpoint = config_.socket_endpoint;
  comm_ = std::make_unique<runtime::Comm>(
      runtime::make_transport(config_.transport, transport_options));

  const std::size_t threads =
      config_.threads > 0 ? static_cast<std::size_t>(config_.threads) : 0;
  pool_ = std::make_unique<ThreadPool>(threads);
  worker_timers_.resize(pool_->size());
  codec_stats_.resize(pool_->size());
  // The pipeline needs a second worker to overlap with; with one worker
  // the sequential path runs and no staging memory is charged to Eq. 8.
  const std::size_t staging =
      config_.enable_pipeline && pool_->size() >= 2
          ? static_cast<std::size_t>(config_.pipeline_depth)
          : 0;
  scratch_ = std::make_unique<runtime::ScratchArena>(
      pool_->size(), partition_.doubles_per_block(), staging);
  tier_stats_ = std::make_unique<runtime::TierStats>();
  if (!config_.spill_path.empty()) {
    // SpillError (with errno) surfaces unwritable paths at construction,
    // not at the first mid-circuit eviction.
    spill_ = std::make_unique<runtime::SpillFile>(config_.spill_path);
  }
  ranks_.reserve(static_cast<std::size_t>(partition_.num_ranks()));
  for (int r = 0; r < partition_.num_ranks(); ++r) {
    ranks_.emplace_back(partition_.blocks_per_rank());
    ranks_.back().attach(tier_stats_.get(), spill_.get());
    caches_.push_back(std::make_unique<runtime::BlockCache>(
        config_.enable_cache ? config_.cache_lines : 0));
  }
  init_blocks();
  maintain_tiers();
}

void CompressedStateSimulator::init_blocks() {
  // |0...0>: amplitude (1,0) lives at offset 0 of block 0 of rank 0; every
  // other block is all zeros and shares one compressed payload. Both
  // contents arbitrate through block 0 as the representative (every block
  // is structurally identical at t=0), then the per-block hysteresis state
  // is seeded so the arbiter remembers each block's starting codec.
  std::vector<double> zeros(partition_.doubles_per_block(), 0.0);
  auto [zero_payload, zero_meta] = encode_block(zeros, level_, 0, 0, 0);
  zeros[0] = 1.0;
  auto [one_payload, one_meta] = encode_block(zeros, level_, 0, 0, 0);

  for (int r = 0; r < partition_.num_ranks(); ++r) {
    for (int b = 0; b < partition_.blocks_per_rank(); ++b) {
      const bool is_origin = r == 0 && b == 0;
      ranks_[r].set_block(b, is_origin ? one_payload : zero_payload,
                          is_origin ? one_meta : zero_meta);
      arbiter_->seed(global_block(r, b),
                     (is_origin ? one_meta : zero_meta).codec ==
                         compression::kLosslessCodecId);
    }
  }
}

std::pair<Bytes, runtime::BlockMeta> CompressedStateSimulator::encode_block(
    std::span<const double> data, int level, int rank, int block,
    std::size_t worker) const {
  ScopedPhase phase(worker_timers_[worker], Phase::kCompression);
  compress_calls_.bump();
  const bool lossless =
      arbiter_->decide_lossless(global_block(rank, block), level, data);
  runtime::BlockMeta meta{static_cast<std::uint8_t>(level),
                          lossless ? compression::kLosslessCodecId
                                   : lossy_codec_id_};
  auto& scratch = scratch_->codec_scratch(worker);
  auto& stats = codec_stats_[worker];
  WallTimer codec_timer;
  Bytes payload;
  if (lossless) {
    payload = lossless_->compress(data, ErrorBound::lossless(), scratch);
  } else {
    // Fixed-accuracy mode hands the ladder delta to zfp directly as an
    // absolute tolerance (the zfp_stream_set_accuracy idiom), skipping
    // the pointwise-relative log-preprocessing wrapper; the default stays
    // pointwise-relative for every codec.
    const double delta = config_.error_ladder[level - 1];
    const ErrorBound bound = config_.zfp_fixed_accuracy
                                 ? ErrorBound::absolute(delta)
                                 : ErrorBound::relative(delta);
    payload = lossy_->compress(data, bound, scratch);
  }
  const double seconds = codec_timer.seconds();
  if (lossless) {
    stats.lossless_compress_seconds += seconds;
    ++stats.lossless_compress_calls;
  } else {
    stats.lossy_compress_seconds += seconds;
    ++stats.lossy_compress_calls;
  }
  return {std::move(payload), meta};
}

void CompressedStateSimulator::decompress_block(int rank, int block,
                                                std::span<double> out,
                                                std::size_t worker) const {
  const auto& store = ranks_[rank];
  decompress_payload(store.payload_view(block), store.meta(block), out,
                     worker);
}

void CompressedStateSimulator::decompress_payload(
    ByteSpan payload, const runtime::BlockMeta& meta, std::span<double> out,
    std::size_t worker) const {
  ScopedPhase phase(worker_timers_[worker], Phase::kDecompression);
  decompress_calls_.bump();
  auto& scratch = scratch_->codec_scratch(worker);
  auto& stats = codec_stats_[worker];
  WallTimer codec_timer;
  if (meta.codec == compression::kLosslessCodecId) {
    lossless_->decompress(payload, out, scratch);
    stats.lossless_decompress_seconds += codec_timer.seconds();
    ++stats.lossless_decompress_calls;
  } else if (meta.codec == lossy_codec_id_) {
    lossy_->decompress(payload, out, scratch);
    stats.lossy_decompress_seconds += codec_timer.seconds();
    ++stats.lossy_decompress_calls;
  } else {
    throw std::runtime_error(
        "simulator: block codec id " + std::to_string(meta.codec) +
        " matches neither the lossless stage nor the configured codec '" +
        config_.codec + "'");
  }
}

qsim::GateOp CompressedStateSimulator::to_physical(
    const qsim::GateOp& op) const {
  return qsim::translated_through(op, map_);
}

void CompressedStateSimulator::apply_remap(const qsim::RemapStep& step) {
  if (partition_.segment_of(step.phys_hot) != Partition::Segment::kRank ||
      partition_.segment_of(step.phys_cold) != Partition::Segment::kOffset) {
    throw std::logic_error("apply_remap: step does not pair rank x offset");
  }
  // Swapping physical bits (offset a, rank h) moves the amplitude at
  // (a=1, h=0) to (a=0, h=1) and back, other bits unchanged: every block
  // pairs with the same block index on the partner rank across bit h, and
  // the pair trades its complementary bit-a halves. One Comm::exchange of
  // the two compressed payloads per pair — the same wire cost as a single
  // rank-target gate — and afterwards gates on the relabeled qubit are
  // block-local.
  const std::uint64_t cold_bit =
      std::uint64_t{1} << partition_.local_bit(step.phys_cold);
  const int hot_local = partition_.local_bit(step.phys_hot);
  const int hot_rank_bit = 1 << hot_local;

  std::vector<std::pair<int, int>> units;  // (rank with hot bit 0, block)
  for (int r = 0; r < partition_.num_ranks(); ++r) {
    if ((r >> hot_local) & 1) continue;
    for (int b = 0; b < partition_.blocks_per_rank(); ++b) {
      units.emplace_back(r, b);
    }
  }
  std::atomic<std::uint64_t> lossy_writes{0};
  pool_->parallel_for(units.size(), [&](std::size_t i, std::size_t worker) {
    const auto [r0, b] = units[i];
    const int r1 = r0 | hot_rank_bit;
    auto& store_a = ranks_[r0];
    auto& store_b = ranks_[r1];
    auto& timers = worker_timers_[worker];
    runtime::Comm::Pending pending;
    {
      ScopedPhase phase(timers, Phase::kCommunication);
      pending = comm_->exchange_begin(
          r0, r1, store_a.payload_view(b), store_b.payload_view(b),
          static_cast<std::uint8_t>(store_a.meta(b).codec),
          static_cast<std::uint8_t>(store_b.meta(b).codec));
    }
    auto vx = scratch_->vector_x(worker);
    auto vy = scratch_->vector_y(worker);
    // Decoding this rank's own block overlaps the in-flight exchange.
    decompress_block(r0, b, vx, worker);
    runtime::Comm::Received received;
    {
      ScopedPhase phase(timers, Phase::kCommunication);
      received = comm_->exchange_wait(pending);
    }
    // The partner's block decodes from the bytes that came over the wire.
    decompress_payload(received.to_a, store_b.meta(b), vy, worker);
    {
      ScopedPhase phase(timers, Phase::kComputation);
      auto* a0 = as_complex(vx);
      auto* a1 = as_complex(vy);
      const std::uint64_t count = partition_.amplitudes_per_block();
      for (std::uint64_t k = 0; k < count; ++k) {
        if (k & cold_bit) std::swap(a0[k], a1[k ^ cold_bit]);
      }
    }
    auto [ca, meta_a] = encode_block(vx, level_, r0, b, worker);
    auto [cb, meta_b] = encode_block(vy, level_, r1, b, worker);
    const std::uint64_t lossy =
        (meta_a.codec != compression::kLosslessCodecId ? 1u : 0u) +
        (meta_b.codec != compression::kLosslessCodecId ? 1u : 0u);
    store_a.set_block(b, std::move(ca), meta_a);
    store_b.set_block(b, std::move(cb), meta_b);
    maybe_stream_spill(r0, b);
    maybe_stream_spill(r1, b);
    if (lossy > 0) {
      lossy_writes.fetch_add(lossy, std::memory_order_relaxed);
    }
  });
  // Like a gate run: the sweep recompressed each block once, so at most
  // one lossy pass enters the fidelity ledger.
  if (lossy_writes.load() > 0 && level_ > 0) {
    fidelity_.record_lossy_pass(config_.error_ladder[level_ - 1]);
  }
}

void CompressedStateSimulator::apply(const GateOp& op) {
  // Ad-hoc gates arrive in logical indices like everything else; rewrite
  // through the layout (no remap planning for a single gate).
  apply_single_counted(map_.is_identity() ? op : to_physical(op));
  // An ad-hoc gate diverges the state from whatever circuit the cursor
  // described, so the recorded resume position is void.
  gate_cursor_ = 0;
}

void CompressedStateSimulator::apply_single_counted(const GateOp& op) {
  WallTimer timer;
  apply_impl(op);
  ++gates_;
  note_gate_finished(timer.seconds());
}

void CompressedStateSimulator::apply_circuit(const qsim::Circuit& circuit) {
  if (circuit.num_qubits() != config_.num_qubits) {
    throw std::invalid_argument("apply_circuit: qubit count mismatch");
  }
  gate_cursor_ = 0;  // a new circuit always starts from its first gate
  run_from_cursor(circuit);
}

void CompressedStateSimulator::resume_circuit(const qsim::Circuit& circuit) {
  if (circuit.num_qubits() != config_.num_qubits) {
    throw std::invalid_argument("resume_circuit: qubit count mismatch");
  }
  if (gate_cursor_ > circuit.size()) {
    throw std::invalid_argument(
        "resume_circuit: cursor lies beyond the circuit");
  }
  run_from_cursor(circuit);
}

void CompressedStateSimulator::run_from_cursor(const qsim::Circuit& circuit) {
  const auto& ops = circuit.ops();
  // Consume the circuit in autosave-interval-aligned chunks of source
  // gates. Fusion buffers single-qubit runs per qubit and emits them out
  // of source order, so a mid-schedule state is NOT a source-gate prefix
  // — the only honest checkpoint cursors are chunk boundaries, where the
  // whole scheduled slice has drained. Each chunk is fused / remap-
  // planned / scheduled independently, and boundaries sit at absolute
  // multiples of the interval, so a resumed run re-chunks exactly like
  // the uninterrupted autosaved run and stays bit-identical to it.
  while (gate_cursor_ < ops.size()) {
    std::size_t end = ops.size();
    if (config_.checkpoint_interval_gates > 0) {
      const std::uint64_t interval = config_.checkpoint_interval_gates;
      end = static_cast<std::size_t>(std::min<std::uint64_t>(
          end, (gate_cursor_ / interval + 1) * interval));
    }
    run_source_range(circuit, end);
    maybe_autosave();
  }
}

void CompressedStateSimulator::run_source_range(const qsim::Circuit& circuit,
                                                std::size_t end) {
  const auto& ops = circuit.ops();
  if (gate_cursor_ >= end) return;

  // The remap pre-pass must run whenever the layout is non-identity (ops
  // arrive in logical indices and the blocks are stored physically), not
  // just when remapping is on — a v4 resume with remapping disabled still
  // needs every gate rewritten.
  const bool remap_path = config_.enable_qubit_remap || !map_.is_identity();

  if (!remap_path && !config_.enable_run_batching) {
    for (std::uint64_t i = gate_cursor_; i < end; ++i) {
      apply_single_counted(ops[i]);
      gate_cursor_ = i + 1;
    }
    return;
  }

  // Schedule only the unapplied slice so fused ops and runs never span
  // the resume point, keeping the cursor exact in source-gate units.
  qsim::Circuit suffix(circuit.num_qubits());
  for (std::size_t i = gate_cursor_; i < end; ++i) {
    suffix.append(ops[i]);
  }

  if (!remap_path) {
    run_segment(suffix);
    return;
  }

  // Fuse BEFORE planning (instead of per scheduled segment) so remap
  // boundaries cannot change which gates fuse: remap-on then executes
  // exactly the arithmetic remap-off executes, which is what keeps the
  // two paths bit-identical at the lossless level.
  const bool fuse =
      config_.enable_run_batching && config_.enable_fusion_prepass;
  std::vector<std::size_t> origins;
  qsim::Circuit planned = fuse ? qsim::fuse_single_qubit_gates(
                                     suffix, nullptr, &origins)
                               : std::move(suffix);
  if (!fuse) origins.assign(planned.size(), 1);

  qsim::RemapOptions remap_options;
  remap_options.enabled = config_.enable_qubit_remap;
  remap_options.policy = qsim::parse_remap_policy(config_.remap_policy);
  remap_options.relabel_swaps = config_.remap_relabel_swaps;
  remap_options.num_qubits = config_.num_qubits;
  remap_options.offset_bits = partition_.offset_bits;
  remap_options.block_bits = partition_.block_bits;
  const qsim::RemapProgram program =
      qsim::plan_remaps(planned, map_, remap_options, &remap_last_use_,
                        &remap_tick_, &origins);
  remap_sweeps_ += program.stats.remaps;
  swaps_relabeled_ += program.stats.swaps_relabeled;
  rank_gates_localized_ += program.stats.rank_targets_localized;
  rank_gates_in_place_ += program.stats.rank_targets_in_place;
  remap_sweeps_avoided_ += program.stats.sweeps_avoided;

  for (const qsim::RemapItem& item : program.items) {
    switch (item.kind) {
      case qsim::RemapItem::Kind::kRemap: {
        WallTimer timer;
        apply_remap(item.remap);
        map_.swap_physical(item.remap.phys_hot, item.remap.phys_cold);
        ++map_generation_;
        note_gate_finished(timer.seconds());
        break;
      }
      case qsim::RemapItem::Kind::kRelabel:
        // A SWAP absorbed into the map: zero data movement, but still one
        // source gate for the cursor and the gate count.
        map_.relabel(item.relabel_a, item.relabel_b);
        ++map_generation_;
        gates_ += item.relabel_source_gates;
        gate_cursor_ += item.relabel_source_gates;
        break;
      case qsim::RemapItem::Kind::kGates:
        run_segment(item.ops, &item.source_gates);
        break;
    }
  }
}

void CompressedStateSimulator::run_segment(
    const qsim::Circuit& segment,
    const std::vector<std::size_t>* origin_counts) {
  if (!config_.enable_run_batching) {
    for (std::size_t i = 0; i < segment.ops().size(); ++i) {
      apply_single_counted(segment.ops()[i]);
      gate_cursor_ +=
          origin_counts != nullptr ? (*origin_counts)[i] : 1;
    }
    return;
  }

  qsim::SchedulerOptions options;
  options.intra_qubits = partition_.offset_bits;
  options.max_run_length = config_.max_run_length;
  // Budget enforcement (and peak accounting) happens between runs, so an
  // unlimited run would defer Section 3.7's ladder escalation for a whole
  // block-local stretch; under a budget, bound the deferral unless the
  // caller pinned a cap themselves.
  constexpr std::size_t kBudgetedRunCap = 16;
  if (config_.memory_budget_bytes > 0 && options.max_run_length == 0) {
    options.max_run_length = kBudgetedRunCap;
  }
  options.fuse = config_.enable_fusion_prepass;
  const qsim::Schedule schedule =
      qsim::build_schedule(segment, options, origin_counts);

  for (const qsim::GateRun& run : schedule.runs()) {
    WallTimer timer;
    if (run.block_local) {
      apply_run(schedule.circuit(), run);
      ++batched_runs_;
      batched_gates_ += run.count;
      gates_ += run.source_gates;
    } else {
      for (std::size_t i = 0; i < run.count; ++i) {
        apply_impl(schedule.circuit().ops()[run.first + i]);
      }
      gates_ += run.source_gates;
    }
    gate_cursor_ += run.source_gates;
    note_gate_finished(timer.seconds());
  }
}

void CompressedStateSimulator::apply_impl(const GateOp& op) {
  if (op.kind == GateKind::kSwap) {
    // SWAP = CX(a,b) CX(b,a) CX(a,b); reuses the pairing machinery.
    const int a = op.target;
    const int b = op.controls[0];
    apply_impl({GateKind::kCX, b, {a, -1}});
    apply_impl({GateKind::kCX, a, {b, -1}});
    apply_impl({GateKind::kCX, b, {a, -1}});
    return;
  }

  GateRouting routing;
  routing.op = op;
  routing.m = qsim::gate_matrix(op);
  routing.diagonal = qsim::is_diagonal(op.kind);
  routing.target_segment = partition_.segment_of(op.target);
  routing.target_local_bit = partition_.local_bit(op.target);
  routing.level = level_;
  for (int c : op.controls) {
    if (c < 0) continue;
    switch (partition_.segment_of(c)) {
      case Partition::Segment::kOffset:
        routing.offset_ctrl_mask |= std::uint64_t{1} << partition_.local_bit(c);
        break;
      case Partition::Segment::kBlock:
        routing.block_ctrl_mask |= 1 << partition_.local_bit(c);
        break;
      case Partition::Segment::kRank:
        routing.rank_ctrl_mask |= 1 << partition_.local_bit(c);
        break;
    }
  }
  append_gate_descriptor(routing.descriptor, op, routing.level);

  if (routing.diagonal) {
    run_diagonal(routing);
  } else {
    switch (routing.target_segment) {
      case Partition::Segment::kOffset: run_offset_target(routing); break;
      case Partition::Segment::kBlock: run_block_target(routing); break;
      case Partition::Segment::kRank: run_rank_target(routing); break;
    }
  }

  // Only blocks the lossy codec actually wrote cost fidelity: under the
  // adaptive policy a lossy-level gate whose blocks all stayed on the
  // lossless path is exact.
  if (routing.blocks_lossy.load() > 0 && level_ > 0) {
    fidelity_.record_lossy_pass(config_.error_ladder[level_ - 1]);
  }
}

bool CompressedStateSimulator::controls_satisfied_block(
    const GateRouting& routing, int rank, int block) const {
  return (rank & routing.rank_ctrl_mask) == routing.rank_ctrl_mask &&
         (block & routing.block_ctrl_mask) == routing.block_ctrl_mask;
}

void CompressedStateSimulator::run_offset_target(const GateRouting& routing) {
  std::vector<std::pair<int, int>> units;
  for (int r = 0; r < partition_.num_ranks(); ++r) {
    for (int b = 0; b < partition_.blocks_per_rank(); ++b) {
      if (controls_satisfied_block(routing, r, b)) units.emplace_back(r, b);
    }
  }
  UnitSpec spec;
  spec.level = routing.level;
  spec.make_key = [&](int rank, int block) {
    const auto& store = ranks_[rank];
    return runtime::BlockCache::make_key(routing.descriptor,
                                         store.payload_view(block), {},
                                         store.meta(block).codec, 0,
                                         map_generation_);
  };
  spec.compute = [&](Amplitude* amps, std::uint64_t count, int, int) {
    apply_offset_kernel(amps, count, routing.m, routing.diagonal,
                        std::uint64_t{1} << routing.target_local_bit,
                        routing.offset_ctrl_mask, backend_);
  };
  spec.blocks_compressed = &routing.blocks_compressed;
  spec.blocks_lossy = &routing.blocks_lossy;
  run_units(units, spec);
}

void CompressedStateSimulator::run_block_target(const GateRouting& routing) {
  const int tb = routing.target_local_bit;
  std::vector<std::pair<int, int>> units;  // (rank, block with target bit 0)
  for (int r = 0; r < partition_.num_ranks(); ++r) {
    if ((r & routing.rank_ctrl_mask) != routing.rank_ctrl_mask) continue;
    for (int b = 0; b < partition_.blocks_per_rank(); ++b) {
      if ((b >> tb) & 1) continue;
      if ((b & routing.block_ctrl_mask) != routing.block_ctrl_mask) continue;
      units.emplace_back(r, b);
    }
  }
  pool_->parallel_for(units.size(), [&](std::size_t i, std::size_t worker) {
    const auto [r, b0] = units[i];
    process_pair(routing, r, b0, r, b0 | (1 << tb), worker);
  });
}

void CompressedStateSimulator::run_rank_target(const GateRouting& routing) {
  const int tb = routing.target_local_bit;
  std::vector<std::pair<int, int>> units;  // (rank with target bit 0, block)
  for (int r = 0; r < partition_.num_ranks(); ++r) {
    if ((r >> tb) & 1) continue;
    if ((r & routing.rank_ctrl_mask) != routing.rank_ctrl_mask) continue;
    for (int b = 0; b < partition_.blocks_per_rank(); ++b) {
      if ((b & routing.block_ctrl_mask) != routing.block_ctrl_mask) continue;
      units.emplace_back(r, b);
    }
  }
  pool_->parallel_for(units.size(), [&](std::size_t i, std::size_t worker) {
    const auto [r0, b] = units[i];
    process_pair(routing, r0, b, r0 | (1 << tb), b, worker);
  });
}

void CompressedStateSimulator::run_diagonal(const GateRouting& routing) {
  // Diagonal gates never mix amplitude pairs, so every unit is a single
  // block regardless of which segment the target lives in. Blocks whose
  // diagonal factor is exactly 1 are skipped without decompression.
  const Amplitude one(1.0, 0.0);
  std::vector<std::pair<int, int>> units;
  for (int r = 0; r < partition_.num_ranks(); ++r) {
    for (int b = 0; b < partition_.blocks_per_rank(); ++b) {
      if (!controls_satisfied_block(routing, r, b)) continue;
      if (routing.target_segment == Partition::Segment::kBlock) {
        const int bit = (b >> routing.target_local_bit) & 1;
        if ((bit ? routing.m.u11 : routing.m.u00) == one) continue;
      } else if (routing.target_segment == Partition::Segment::kRank) {
        const int bit = (r >> routing.target_local_bit) & 1;
        if ((bit ? routing.m.u11 : routing.m.u00) == one) continue;
      } else if (routing.m.u00 == one && routing.m.u11 == one) {
        continue;  // identity
      }
      units.emplace_back(r, b);
    }
  }
  UnitSpec spec;
  spec.level = routing.level;
  spec.make_key = [&](int rank, int block) {
    // The diagonal factor is selected by the target bit of the unit's
    // block/rank index; make that selection part of the cache identity.
    std::uint64_t salt = 0;
    if (routing.target_segment == Partition::Segment::kBlock) {
      salt = 1 + ((static_cast<unsigned>(block) >> routing.target_local_bit) &
                  1);
    } else if (routing.target_segment == Partition::Segment::kRank) {
      salt = 1 + ((static_cast<unsigned>(rank) >> routing.target_local_bit) &
                  1);
    }
    const auto& store = ranks_[rank];
    return fnv1a_u64(salt,
                     runtime::BlockCache::make_key(
                         routing.descriptor, store.payload_view(block), {},
                         store.meta(block).codec, 0, map_generation_));
  };
  spec.compute = [&](Amplitude* amps, std::uint64_t count, int rank,
                     int block) {
    const std::uint64_t ctrl = routing.offset_ctrl_mask;
    if (routing.target_segment != Partition::Segment::kOffset) {
      // The diagonal factor is constant across the block, selected by the
      // unit's block/rank index bit.
      const int index = routing.target_segment == Partition::Segment::kBlock
                            ? block
                            : rank;
      const Amplitude factor =
          ((index >> routing.target_local_bit) & 1) ? routing.m.u11
                                                    : routing.m.u00;
      qsim::scale_kernel(amps, count, factor, ctrl, backend_);
    } else {
      qsim::diag_kernel(amps, count, routing.m,
                        std::uint64_t{1} << routing.target_local_bit, ctrl,
                        backend_);
    }
  };
  spec.blocks_compressed = &routing.blocks_compressed;
  spec.blocks_lossy = &routing.blocks_lossy;
  run_units(units, spec);
}

// --- Single-block unit executors ---

bool CompressedStateSimulator::pipeline_ready() const {
  return config_.enable_pipeline && pool_->size() >= 2 &&
         scratch_->staging_buffers() > 0;
}

bool CompressedStateSimulator::unit_cache_probe(const UnitSpec& spec,
                                                int rank, int block,
                                                std::uint64_t* key_out) {
  *key_out = 0;
  runtime::BlockCache* cache =
      config_.enable_cache ? caches_[rank].get() : nullptr;
  if (cache == nullptr || !cache->enabled()) return false;
  auto& store = ranks_[rank];
  const std::uint64_t key = spec.make_key(rank, block);
  *key_out = key;
  Bytes out1;
  Bytes out2;
  std::uint8_t codec1 = compression::kLosslessCodecId;
  if (!cache->lookup(key, out1, out2, &codec1)) return false;
  store.set_block(block, std::move(out1),
                  {static_cast<std::uint8_t>(spec.level), codec1});
  maybe_stream_spill(rank, block);
  // Keep the arbiter's hysteresis in step with the stored codec even
  // though no decision ran — otherwise hit/miss interleavings would
  // leak into later codec choices and break cross-thread determinism.
  arbiter_->seed(global_block(rank, block),
                 codec1 == compression::kLosslessCodecId);
  spec.blocks_compressed->fetch_add(1, std::memory_order_relaxed);
  if (codec1 != compression::kLosslessCodecId) {
    spec.blocks_lossy->fetch_add(1, std::memory_order_relaxed);
  }
  return true;
}

void CompressedStateSimulator::unit_finish(const UnitSpec& spec, int rank,
                                           int block, std::size_t worker,
                                           std::span<double> amps,
                                           std::uint64_t key) {
  auto [compressed, meta] = encode_block(amps, spec.level, rank, block,
                                         worker);
  runtime::BlockCache* cache =
      config_.enable_cache ? caches_[rank].get() : nullptr;
  if (cache != nullptr && cache->enabled()) {
    cache->insert(key, compressed, {}, meta.codec);
  }
  const bool lossy_write = meta.codec != compression::kLosslessCodecId;
  ranks_[rank].set_block(block, std::move(compressed), meta);
  maybe_stream_spill(rank, block);
  spec.blocks_compressed->fetch_add(1, std::memory_order_relaxed);
  if (lossy_write) {
    spec.blocks_lossy->fetch_add(1, std::memory_order_relaxed);
  }
}

void CompressedStateSimulator::run_units(
    const std::vector<std::pair<int, int>>& units, const UnitSpec& spec) {
  if (pipeline_ready() && units.size() >= 2) {
    run_units_pipelined(units, spec);
    return;
  }
  // Plan-driven readahead: the unit order IS the schedule, so advising
  // unit i+K while working unit i keeps spilled payloads arriving ahead
  // of their faults. The first window is primed before the sweep starts.
  const std::size_t lookahead =
      spill_ != nullptr ? static_cast<std::size_t>(config_.readahead_blocks)
                        : 0;
  for (std::size_t i = 0; i < std::min(lookahead, units.size()); ++i) {
    ranks_[units[i].first].advise(units[i].second);
  }
  pool_->parallel_for(units.size(), [&](std::size_t i, std::size_t worker) {
    if (lookahead > 0 && i + lookahead < units.size()) {
      const auto [ar, ab] = units[i + lookahead];
      ranks_[ar].advise(ab);
    }
    const auto [rank, block] = units[i];
    std::uint64_t key = 0;
    if (unit_cache_probe(spec, rank, block, &key)) return;
    auto vx = scratch_->vector_x(worker);
    decompress_block(rank, block, vx, worker);
    {
      ScopedPhase phase(worker_timers_[worker], Phase::kComputation);
      spec.compute(as_complex(vx), partition_.amplitudes_per_block(), rank,
                   block);
    }
    unit_finish(spec, rank, block, worker, vx, key);
  });
}

void CompressedStateSimulator::run_units_pipelined(
    const std::vector<std::pair<int, int>>& units, const UnitSpec& spec) {
  // Three overlapped stages on the shared pool: a block is decoded into a
  // pooled staging buffer (prefetch), its kernels applied, and its
  // recompression stored — with the handoff between decode and apply going
  // through a bounded StageChannel. Every worker runs both roles: it
  // prefers draining staged blocks (apply+recompress), decodes the next
  // unit when a staging buffer is free, and only sleeps when neither is
  // possible. That role-agnostic loop is what makes the executor
  // deadlock-free: a worker holding the last staging buffer is by
  // construction not blocked on the channel.
  //
  // Per-unit work is byte-identical to the sequential executor — only the
  // assignment of units to workers and the buffer a block is decoded into
  // change — so pipeline-on == pipeline-off bit-for-bit.
  struct Staged {
    std::size_t unit = 0;
    int buffer = -1;
    std::uint64_t key = 0;
    std::size_t producer = 0;  ///< decoding worker (overlap accounting)
  };
  StageChannel<Staged> channel(scratch_->staging_buffers());
  const std::size_t lookahead =
      spill_ != nullptr ? static_cast<std::size_t>(config_.readahead_blocks)
                        : 0;
  for (std::size_t i = 0; i < std::min(lookahead, units.size()); ++i) {
    ranks_[units[i].first].advise(units[i].second);
  }
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> completed{0};
  std::atomic<std::uint64_t> prefetched{0};
  std::atomic<std::uint64_t> stalls{0};
  const std::size_t total = units.size();

  auto complete_one = [&] {
    if (completed.fetch_add(1, std::memory_order_acq_rel) + 1 == total) {
      channel.close();  // wakes every sleeping worker: the run is done
    }
  };
  auto apply_staged = [&](const Staged& staged, std::size_t worker) {
    const auto [rank, block] = units[staged.unit];
    if (staged.producer != worker) {
      prefetched.fetch_add(1, std::memory_order_relaxed);
    }
    auto amps = scratch_->staging(staged.buffer);
    {
      ScopedPhase phase(worker_timers_[worker], Phase::kComputation);
      spec.compute(as_complex(amps), partition_.amplitudes_per_block(), rank,
                   block);
    }
    unit_finish(spec, rank, block, worker, amps, staged.key);
    scratch_->release_staging(staged.buffer);
    complete_one();
  };

  pool_->parallel_for(pool_->size(), [&](std::size_t, std::size_t worker) {
    try {
      while (true) {
        Staged staged;
        if (channel.try_pop(staged)) {  // apply stage first: drain handoffs
          apply_staged(staged, worker);
          continue;
        }
        const int buffer = scratch_->acquire_staging();
        if (buffer >= 0) {  // decode stage: prefetch the next unit
          const std::size_t u =
              next.fetch_add(1, std::memory_order_relaxed);
          if (u < total) {
            // The decode stage is the plan cursor: claiming unit u advises
            // unit u+K so readahead tracks the pipeline's actual pace.
            if (lookahead > 0 && u + lookahead < total) {
              const auto [ar, ab] = units[u + lookahead];
              ranks_[ar].advise(ab);
            }
            const auto [rank, block] = units[u];
            Staged fresh{u, buffer, 0, worker};
            if (unit_cache_probe(spec, rank, block, &fresh.key)) {
              scratch_->release_staging(buffer);
              complete_one();
            } else {
              decompress_block(rank, block, scratch_->staging(buffer),
                               worker);
              if (!channel.push(fresh)) {
                // Channel closed early (a peer threw): drop out.
                scratch_->release_staging(buffer);
                return;
              }
            }
            continue;
          }
          scratch_->release_staging(buffer);
        }
        // Neither staged work nor a free buffer: wait on in-flight units.
        bool waited = false;
        auto item = channel.pop(&waited);
        if (!item.has_value()) return;  // closed and drained
        if (waited) stalls.fetch_add(1, std::memory_order_relaxed);
        apply_staged(*item, worker);
      }
    } catch (...) {
      channel.close();  // unblock peers so the pool can drain, then rethrow
      throw;
    }
  });

  pipeline_blocks_ += total;
  pipeline_prefetched_ += prefetched.load(std::memory_order_relaxed);
  pipeline_stalls_ += stalls.load(std::memory_order_relaxed);
}

CompressedStateSimulator::RunPlan CompressedStateSimulator::build_run_plan(
    const qsim::Circuit& circuit, const qsim::GateRun& run) const {
  RunPlan plan;
  plan.level = level_;
  plan.kernels.reserve(run.count);
  plan.descriptors.reserve(run.count);
  const auto& ops = circuit.ops();
  for (std::size_t i = 0; i < run.count; ++i) {
    const GateOp& op = ops[run.first + i];
    Bytes descriptor;
    append_gate_descriptor(descriptor, op, plan.level);
    plan.descriptors.push_back(std::move(descriptor));

    auto offset_bit = [](int qubit) {
      // Block-local gates live entirely in the offset segment, where the
      // local bit position equals the qubit index.
      return std::uint64_t{1} << qubit;
    };
    if (op.kind == GateKind::kSwap) {
      // SWAP = CX(a,b) CX(b,a) CX(a,b), all intra-block here.
      const int a = op.target;
      const int b = op.controls[0];
      const Mat2 x = qsim::gate_matrix({GateKind::kX, 0});
      plan.kernels.push_back({x, false, offset_bit(b), offset_bit(a)});
      plan.kernels.push_back({x, false, offset_bit(a), offset_bit(b)});
      plan.kernels.push_back({x, false, offset_bit(b), offset_bit(a)});
      continue;
    }
    RunPlan::Kernel kernel;
    kernel.m = qsim::gate_matrix(op);
    kernel.diagonal = qsim::is_diagonal(op.kind);
    kernel.target_bit = offset_bit(op.target);
    for (int c : op.controls) {
      if (c >= 0) kernel.ctrl_mask |= offset_bit(c);
    }
    plan.kernels.push_back(kernel);
  }
  return plan;
}

void CompressedStateSimulator::apply_run(const qsim::Circuit& circuit,
                                         const qsim::GateRun& run) {
  const RunPlan plan = build_run_plan(circuit, run);
  // The scheduler already knows the full future block order of the run —
  // that is exactly the prefetch list the pipelined executor feeds on.
  const std::vector<std::pair<int, int>> units = qsim::run_block_order(
      partition_.num_ranks(), partition_.blocks_per_rank());
  UnitSpec spec;
  spec.level = plan.level;
  spec.make_key = [&](int rank, int block) {
    const auto& store = ranks_[rank];
    return runtime::BlockCache::make_run_key(plan.descriptors,
                                             store.payload_view(block),
                                             store.meta(block).codec,
                                             map_generation_);
  };
  spec.compute = [&](Amplitude* amps, std::uint64_t count, int, int) {
    for (const RunPlan::Kernel& kernel : plan.kernels) {
      apply_offset_kernel(amps, count, kernel.m, kernel.diagonal,
                          kernel.target_bit, kernel.ctrl_mask, backend_);
    }
  };
  spec.blocks_compressed = &plan.blocks_compressed.value;
  spec.blocks_lossy = &plan.blocks_lossy.value;
  run_units(units, spec);
  // The whole run cost each block one recompression, so the fidelity
  // ledger records one lossy pass — not one per gate (Eq. 11 tightens to
  // F >= (1 - delta)^runs) — and only if the lossy codec wrote at least
  // one block (adaptive runs whose blocks all stayed lossless are exact).
  if (plan.blocks_lossy.get() > 0 && level_ > 0) {
    fidelity_.record_lossy_pass(config_.error_ladder[level_ - 1]);
  }
}

void CompressedStateSimulator::process_pair(const GateRouting& routing,
                                            int rank_a, int block_a,
                                            int rank_b, int block_b,
                                            std::size_t worker) {
  auto& store_a = ranks_[rank_a];
  auto& store_b = ranks_[rank_b];
  auto& timers = worker_timers_[worker];
  const bool cross_rank = rank_a != rank_b;

  // One buffered sendrecv per pair (Section 3.3): each rank ships its
  // compressed block to the partner in a single paired exchange. Both
  // sides then hold both inputs and compute their own updated block from
  // the exchanged payloads, so no second round trip is needed. The
  // begin/wait split keeps the payloads in flight across the cache probe
  // and this rank's own decompression — the overlap the report surfaces.
  runtime::Comm::Pending pending;
  if (cross_rank) {
    ScopedPhase phase(timers, Phase::kCommunication);
    pending = comm_->exchange_begin(
        rank_a, rank_b, store_a.payload_view(block_a),
        store_b.payload_view(block_b),
        static_cast<std::uint8_t>(store_a.meta(block_a).codec),
        static_cast<std::uint8_t>(store_b.meta(block_b).codec));
  }

  runtime::BlockCache* cache =
      config_.enable_cache ? caches_[rank_a].get() : nullptr;
  std::uint64_t key = 0;
  bool hit = false;
  if (cache != nullptr && cache->enabled()) {
    key = runtime::BlockCache::make_key(
        routing.descriptor, store_a.payload_view(block_a),
        store_b.payload_view(block_b), store_a.meta(block_a).codec,
        store_b.meta(block_b).codec, map_generation_);
    Bytes out1;
    Bytes out2;
    std::uint8_t codec1 = compression::kLosslessCodecId;
    std::uint8_t codec2 = compression::kLosslessCodecId;
    if (cache->lookup(key, out1, out2, &codec1, &codec2)) {
      store_a.set_block(block_a, std::move(out1),
                        {static_cast<std::uint8_t>(routing.level), codec1});
      store_b.set_block(block_b, std::move(out2),
                        {static_cast<std::uint8_t>(routing.level), codec2});
      maybe_stream_spill(rank_a, block_a);
      maybe_stream_spill(rank_b, block_b);
      // See unit_cache_probe: hysteresis must track the stored codec on
      // hits.
      arbiter_->seed(global_block(rank_a, block_a),
                     codec1 == compression::kLosslessCodecId);
      arbiter_->seed(global_block(rank_b, block_b),
                     codec2 == compression::kLosslessCodecId);
      routing.blocks_compressed.fetch_add(2, std::memory_order_relaxed);
      const std::uint64_t lossy =
          (codec1 != compression::kLosslessCodecId ? 1u : 0u) +
          (codec2 != compression::kLosslessCodecId ? 1u : 0u);
      if (lossy > 0) {
        routing.blocks_lossy.fetch_add(lossy, std::memory_order_relaxed);
      }
      hit = true;
    }
  }

  if (hit) {
    if (cross_rank) {
      // The exchange already happened on the wire; the cached result just
      // makes its payloads unnecessary. Settle it so the transport's
      // in-flight frames are drained (and its failure surfaced).
      ScopedPhase phase(timers, Phase::kCommunication);
      comm_->exchange_wait(pending);
    }
    return;
  }

  {
    auto vx = scratch_->vector_x(worker);
    auto vy = scratch_->vector_y(worker);
    // Decoding this rank's own block overlaps the in-flight exchange.
    decompress_block(rank_a, block_a, vx, worker);
    if (cross_rank) {
      runtime::Comm::Received received;
      {
        ScopedPhase phase(timers, Phase::kCommunication);
        received = comm_->exchange_wait(pending);
      }
      // Decompress the partner's block from the bytes that came over the
      // wire — the exchanged payload is the data this rank computes on.
      decompress_payload(received.to_a, store_b.meta(block_b), vy, worker);
    } else {
      decompress_block(rank_b, block_b, vy, worker);
    }
    {
      ScopedPhase phase(timers, Phase::kComputation);
      qsim::pair_kernel(as_complex(vx), as_complex(vy),
                        partition_.amplitudes_per_block(), routing.m,
                        routing.offset_ctrl_mask, backend_);
    }
    auto [ca, meta_a] =
        encode_block(vx, routing.level, rank_a, block_a, worker);
    auto [cb, meta_b] =
        encode_block(vy, routing.level, rank_b, block_b, worker);
    if (cache != nullptr && cache->enabled()) {
      cache->insert(key, ca, cb, meta_a.codec, meta_b.codec);
    }
    const std::uint64_t lossy =
        (meta_a.codec != compression::kLosslessCodecId ? 1u : 0u) +
        (meta_b.codec != compression::kLosslessCodecId ? 1u : 0u);
    store_a.set_block(block_a, std::move(ca), meta_a);
    store_b.set_block(block_b, std::move(cb), meta_b);
    maybe_stream_spill(rank_a, block_a);
    maybe_stream_spill(rank_b, block_b);
    routing.blocks_compressed.fetch_add(2, std::memory_order_relaxed);
    if (lossy > 0) {
      routing.blocks_lossy.fetch_add(lossy, std::memory_order_relaxed);
    }
  }
}

void CompressedStateSimulator::note_gate_finished(double gate_seconds) {
  // Peaks are no longer sampled here: TierStats records them at every
  // block mutation, so transient maxima inside the gate are covered.
  wall_seconds_ += gate_seconds;
  maintain_tiers();
  enforce_budget();
  // The ENOSPC degradation contract: ride out the full disk as long as
  // the resident state fits Eq. 8's budget (the ladder has already done
  // what it can by now); past that the run cannot make progress without
  // lying about the budget, so the typed error surfaces after all.
  if (budget_exceeded_ && degraded()) {
    throw runtime::SpillError(
        "spill: disk full on '" + config_.spill_path +
            "' and the resident state exceeds the memory budget even at "
            "the last ladder level: " +
            std::strerror(ENOSPC),
        ENOSPC);
  }
  const double ratio = compression_ratio();
  min_ratio_ = min_ratio_ == 0.0 ? ratio : std::min(min_ratio_, ratio);
}

void CompressedStateSimulator::maybe_autosave() {
  if (config_.checkpoint_interval_gates == 0) return;
  if (gate_cursor_ - gates_at_last_autosave_ <
      config_.checkpoint_interval_gates) {
    return;
  }
  WallTimer timer;
  try {
    save_checkpoint(config_.auto_checkpoint_path);
    ++autosaves_;
  } catch (const std::exception&) {
    // A failed autosave must not kill a healthy run: the atomic save left
    // the previous file intact, so recovery merely falls back one
    // interval further. The report carries the count.
    ++autosave_failures_;
  }
  autosave_seconds_ += timer.seconds();
  gates_at_last_autosave_ = gate_cursor_;
}

void CompressedStateSimulator::maybe_stream_spill(int rank, int block) {
  // Unconditional while the flag is set (rather than re-checking the
  // budget per block): which blocks spill then depends only on the
  // mutation set, not worker timing, keeping spill/fault counts
  // deterministic across thread counts. (Once degraded the counts stop
  // being pinned — spilling is over for the run.)
  if (!stream_spill_ || degraded()) return;
  if (!config_.spill_degrade_on_enospc) {
    ranks_[rank].spill_block(block);
    return;
  }
  try {
    ranks_[rank].spill_block(block);
  } catch (const runtime::SpillError& e) {
    if (e.code() != ENOSPC) throw;
    // The block simply stays resident; the next maintain_tiers sees the
    // degraded flag and stops evicting.
    spill_write_failures_.bump();
    spill_degraded_.bump();
  }
}

std::size_t CompressedStateSimulator::resident_occupancy() const {
  const std::size_t resident =
      tier_stats_->resident_bytes.load(std::memory_order_relaxed);
  // In-flight write-behind payloads are already on their way out; without
  // the projection enforce_budget would escalate the ladder for bytes the
  // next settle is about to reclaim.
  return resident > pending_spill_bytes_ ? resident - pending_spill_bytes_
                                         : 0;
}

void CompressedStateSimulator::settle_pending_spills() {
  if (pending_spills_.empty()) return;
  std::exception_ptr first_error;
  for (PendingSpill& pending : pending_spills_) {
    try {
      pending.done.get();
      ranks_[pending.rank].commit_spill(pending.block, *pending.segment,
                                        pending.generation);
    } catch (const runtime::SpillError& e) {
      // Under degradation a full disk is survivable: the failed write
      // reserved no segment and its block is still resident — mark the
      // tier degraded and keep going. Anything else stays fatal.
      if (config_.spill_degrade_on_enospc && e.code() == ENOSPC) {
        spill_write_failures_.bump();
        spill_degraded_.bump();
      } else if (!first_error) {
        first_error = std::current_exception();
      }
    } catch (...) {
      // Keep settling: every future must be consumed even when one write
      // hit ENOSPC, or later destructors would block on live jobs.
      if (!first_error) first_error = std::current_exception();
    }
  }
  pending_spills_.clear();
  pending_spill_bytes_ = 0;
  if (first_error) std::rethrow_exception(first_error);
}

void CompressedStateSimulator::discard_pending_spills() {
  for (PendingSpill& pending : pending_spills_) {
    try {
      pending.done.get();
      if (spill_ != nullptr) spill_->free_segment(*pending.segment);
    } catch (...) {
      // A failed write reserved no live segment, and the blocks these jobs
      // were spilling are being discarded wholesale — the error is moot.
    }
  }
  pending_spills_.clear();
  pending_spill_bytes_ = 0;
}

void CompressedStateSimulator::maintain_tiers() {
  if (spill_ == nullptr) return;
  settle_pending_spills();
  // Once degraded the spill tier is read-only: blocks already parked on
  // disk stay readable, but no new evictions or streaming writes happen.
  if (degraded()) {
    stream_spill_ = false;
    return;
  }
  const std::size_t budget = config_.resident_budget_bytes;
  const std::size_t total_blocks =
      static_cast<std::size_t>(partition_.num_ranks()) *
      partition_.blocks_per_rank();
  // Write-behind eviction: walk the blocks round-robin from where the last
  // sweep stopped and enqueue spill writes on the pool until the projected
  // resident size (current minus in-flight) fits the budget. The scan
  // order is a function of evict_cursor_ alone, so the eviction set is
  // deterministic.
  std::size_t scanned = 0;
  while (resident_occupancy() > budget && scanned < total_blocks) {
    const std::size_t slot = evict_cursor_ % total_blocks;
    evict_cursor_ = (evict_cursor_ + 1) % total_blocks;
    ++scanned;
    const int rank = static_cast<int>(slot) / partition_.blocks_per_rank();
    const int block = static_cast<int>(slot) % partition_.blocks_per_rank();
    runtime::BlockStore& store = ranks_[rank];
    if (store.is_spilled(block)) continue;
    PendingSpill pending;
    pending.rank = rank;
    pending.block = block;
    pending.generation = store.generation(block);
    std::shared_ptr<const Bytes> payload = store.payload_handle(block);
    if (payload == nullptr) continue;
    pending.bytes = payload->size();
    pending.segment = std::make_shared<runtime::SpillSegment>();
    runtime::SpillFile* spill = spill_.get();
    std::shared_ptr<runtime::SpillSegment> segment = pending.segment;
    pending.done = pool_->submit(
        [spill, payload = std::move(payload), segment]() mutable {
          *segment = spill->write(*payload);  // SpillError -> the future
        });
    pending_spill_bytes_ += pending.bytes;
    pending_spills_.push_back(std::move(pending));
  }
  // Past the transition region the whole state no longer fits: from here
  // every freshly stored block streams straight to the spill tier.
  stream_spill_ =
      tier_stats_->resident_bytes.load(std::memory_order_relaxed) +
          tier_stats_->spilled_bytes.load(std::memory_order_relaxed) >
      budget;
}

void CompressedStateSimulator::enforce_budget() {
  const std::size_t budget = config_.memory_budget_bytes;
  if (budget == 0) return;
  // With spilling on, Eq. 8 governs the *resident* tier: bytes parked on
  // NVMe do not count against the in-memory budget, so the error ladder
  // only escalates when even the resident working set cannot fit.
  while (resident_occupancy() > budget &&
         level_ < static_cast<int>(config_.error_ladder.size()) &&
         lossy_ != nullptr) {
    ++level_;
    const std::uint64_t lossy_blocks = recompress_all(level_);
    if (lossy_blocks > 0) {
      fidelity_.record_lossy_pass(config_.error_ladder[level_ - 1]);
    }
  }
  if (resident_occupancy() > budget) budget_exceeded_ = true;
}

std::uint64_t CompressedStateSimulator::recompress_all(int new_level) {
  const std::size_t total_blocks =
      static_cast<std::size_t>(partition_.num_ranks()) *
      partition_.blocks_per_rank();
  std::atomic<std::uint64_t> lossy_blocks{0};
  pool_->parallel_for(total_blocks, [&](std::size_t i, std::size_t worker) {
    const int rank = static_cast<int>(i) / partition_.blocks_per_rank();
    const int block = static_cast<int>(i) % partition_.blocks_per_rank();
    auto vx = scratch_->vector_x(worker);
    decompress_block(rank, block, vx, worker);
    auto [compressed, meta] =
        encode_block(vx, new_level, rank, block, worker);
    if (meta.codec != compression::kLosslessCodecId) {
      lossy_blocks.fetch_add(1, std::memory_order_relaxed);
    }
    ranks_[rank].set_block(block, std::move(compressed), meta);
    maybe_stream_spill(rank, block);
  });
  return lossy_blocks.load(std::memory_order_relaxed);
}

double CompressedStateSimulator::probability_one(int qubit) {
  if (qubit < 0 || qubit >= config_.num_qubits) {
    throw std::out_of_range("probability_one: bad qubit");
  }
  // The caller speaks logical qubits; the blocks are laid out physically.
  const int physical = map_.physical(qubit);
  const auto segment = partition_.segment_of(physical);
  const int local = partition_.local_bit(physical);
  std::vector<double> partials(pool_->size(), 0.0);

  std::vector<std::pair<int, int>> units;
  for (int r = 0; r < partition_.num_ranks(); ++r) {
    if (segment == Partition::Segment::kRank && ((r >> local) & 1) == 0) {
      continue;
    }
    for (int b = 0; b < partition_.blocks_per_rank(); ++b) {
      if (segment == Partition::Segment::kBlock && ((b >> local) & 1) == 0) {
        continue;
      }
      units.emplace_back(r, b);
    }
  }
  pool_->parallel_for(units.size(), [&](std::size_t i, std::size_t worker) {
    auto vx = scratch_->vector_x(worker);
    decompress_block(units[i].first, units[i].second, vx, worker);
    const auto* amps = as_complex(vx);
    const std::uint64_t count = partition_.amplitudes_per_block();
    double sum = 0.0;
    if (segment == Partition::Segment::kOffset) {
      const std::uint64_t bit = std::uint64_t{1} << local;
      for (std::uint64_t k = 0; k < count; ++k) {
        if (k & bit) sum += std::norm(amps[k]);
      }
    } else {
      for (std::uint64_t k = 0; k < count; ++k) sum += std::norm(amps[k]);
    }
    partials[worker] += sum;
  });
  double total = 0.0;
  for (double p : partials) total += p;
  return total;
}

double CompressedStateSimulator::norm() {
  std::vector<double> partials(pool_->size(), 0.0);
  const std::size_t total_blocks =
      static_cast<std::size_t>(partition_.num_ranks()) *
      partition_.blocks_per_rank();
  pool_->parallel_for(total_blocks, [&](std::size_t i, std::size_t worker) {
    const int rank = static_cast<int>(i) / partition_.blocks_per_rank();
    const int block = static_cast<int>(i) % partition_.blocks_per_rank();
    auto vx = scratch_->vector_x(worker);
    decompress_block(rank, block, vx, worker);
    const auto* amps = as_complex(vx);
    double sum = 0.0;
    for (std::uint64_t k = 0; k < partition_.amplitudes_per_block(); ++k) {
      sum += std::norm(amps[k]);
    }
    partials[worker] += sum;
  });
  double total = 0.0;
  for (double p : partials) total += p;
  return total;
}

std::vector<double> CompressedStateSimulator::to_raw() {
  if (config_.num_qubits > 26) {
    throw std::invalid_argument("to_raw: refuses above 26 qubits");
  }
  std::vector<double> out(partition_.total_amplitudes() * 2);
  const std::size_t total_blocks =
      static_cast<std::size_t>(partition_.num_ranks()) *
      partition_.blocks_per_rank();
  if (map_.is_identity()) {
    pool_->parallel_for(total_blocks, [&](std::size_t i,
                                          std::size_t worker) {
      const int rank = static_cast<int>(i) / partition_.blocks_per_rank();
      const int block = static_cast<int>(i) % partition_.blocks_per_rank();
      const std::uint64_t base = partition_.global_index(rank, block, 0) * 2;
      decompress_block(rank, block,
                       std::span<double>(out.data() + base,
                                         partition_.doubles_per_block()),
                       worker);
    });
    return out;
  }
  // Remapped layout: decompress each block into scratch and scatter every
  // amplitude to its logical index (a bijection, so the parallel writes
  // are disjoint). The result is always in logical order — callers never
  // see the physical layout.
  pool_->parallel_for(total_blocks, [&](std::size_t i, std::size_t worker) {
    const int rank = static_cast<int>(i) / partition_.blocks_per_rank();
    const int block = static_cast<int>(i) % partition_.blocks_per_rank();
    auto vx = scratch_->vector_x(worker);
    decompress_block(rank, block, vx, worker);
    for (std::uint64_t k = 0; k < partition_.amplitudes_per_block(); ++k) {
      const std::uint64_t logical =
          map_.to_logical_index(partition_.global_index(rank, block, k));
      out[2 * logical] = vx[2 * k];
      out[2 * logical + 1] = vx[2 * k + 1];
    }
  });
  return out;
}

std::vector<Amplitude> CompressedStateSimulator::to_amplitudes() {
  const auto raw = to_raw();
  std::vector<Amplitude> amps(raw.size() / 2);
  for (std::size_t i = 0; i < amps.size(); ++i) {
    amps[i] = Amplitude(raw[2 * i], raw[2 * i + 1]);
  }
  return amps;
}

bool CompressedStateSimulator::assert_probability(int qubit, double expected,
                                                  double tolerance) {
  return std::abs(probability_one(qubit) - expected) <= tolerance;
}

double CompressedStateSimulator::expectation_pauli_z(
    std::uint64_t qubit_mask) {
  if (qubit_mask >> config_.num_qubits != 0) {
    throw std::out_of_range("expectation_pauli_z: mask exceeds qubits");
  }
  // Parity over a set of logical qubits is parity over their physical
  // homes; translating the mask bit-by-bit reuses the layout-split sums.
  if (!map_.is_identity()) {
    qubit_mask = map_.to_physical_index(qubit_mask);
  }
  const std::uint64_t offset_mask =
      qubit_mask & (partition_.amplitudes_per_block() - 1);
  const auto block_mask = static_cast<int>(
      (qubit_mask >> partition_.offset_bits) &
      (static_cast<std::uint64_t>(partition_.blocks_per_rank()) - 1));
  const auto rank_mask = static_cast<int>(
      qubit_mask >> (partition_.offset_bits + partition_.block_bits));

  std::vector<double> partials(pool_->size(), 0.0);
  const std::size_t total_blocks =
      static_cast<std::size_t>(partition_.num_ranks()) *
      partition_.blocks_per_rank();
  pool_->parallel_for(total_blocks, [&](std::size_t i, std::size_t worker) {
    const int rank = static_cast<int>(i) / partition_.blocks_per_rank();
    const int block = static_cast<int>(i) % partition_.blocks_per_rank();
    // Sign contribution of the block/rank index bits is block-constant.
    const int high_parity =
        (std::popcount(static_cast<unsigned>(block & block_mask)) +
         std::popcount(static_cast<unsigned>(rank & rank_mask))) &
        1;
    auto vx = scratch_->vector_x(worker);
    decompress_block(rank, block, vx, worker);
    const auto* amps = as_complex(vx);
    double sum = 0.0;
    for (std::uint64_t k = 0; k < partition_.amplitudes_per_block(); ++k) {
      const int parity =
          (std::popcount(k & offset_mask) + high_parity) & 1;
      sum += (parity ? -1.0 : 1.0) * std::norm(amps[k]);
    }
    partials[worker] += sum;
  });
  double total = 0.0;
  for (double p : partials) total += p;
  return total;
}

std::uint64_t CompressedStateSimulator::sample(Rng& rng) {
  // Pass 1: per-block probability mass.
  const std::size_t total_blocks =
      static_cast<std::size_t>(partition_.num_ranks()) *
      partition_.blocks_per_rank();
  std::vector<double> masses(total_blocks, 0.0);
  pool_->parallel_for(total_blocks, [&](std::size_t i, std::size_t worker) {
    const int rank = static_cast<int>(i) / partition_.blocks_per_rank();
    const int block = static_cast<int>(i) % partition_.blocks_per_rank();
    auto vx = scratch_->vector_x(worker);
    decompress_block(rank, block, vx, worker);
    const auto* amps = as_complex(vx);
    double sum = 0.0;
    for (std::uint64_t k = 0; k < partition_.amplitudes_per_block(); ++k) {
      sum += std::norm(amps[k]);
    }
    masses[i] = sum;
  });
  double total = 0.0;
  for (double m : masses) total += m;

  // Pass 2: pick the block, then the offset within it.
  double r = rng.next_double() * total;
  std::size_t chosen = total_blocks - 1;
  for (std::size_t i = 0; i < total_blocks; ++i) {
    r -= masses[i];
    if (r <= 0.0) {
      chosen = i;
      break;
    }
  }
  const int rank = static_cast<int>(chosen) / partition_.blocks_per_rank();
  const int block = static_cast<int>(chosen) % partition_.blocks_per_rank();
  auto vx = scratch_->vector_x(0);
  decompress_block(rank, block, vx, 0);
  const auto* amps = as_complex(vx);
  double r2 = rng.next_double() * masses[chosen];
  std::uint64_t offset = partition_.amplitudes_per_block() - 1;
  for (std::uint64_t k = 0; k < partition_.amplitudes_per_block(); ++k) {
    r2 -= std::norm(amps[k]);
    if (r2 <= 0.0) {
      offset = k;
      break;
    }
  }
  const std::uint64_t physical =
      partition_.global_index(rank, block, offset);
  return map_.is_identity() ? physical : map_.to_logical_index(physical);
}

int CompressedStateSimulator::measure(int qubit, Rng& rng) {
  const double p1 = probability_one(qubit);
  const int outcome = rng.next_double() < p1 ? 1 : 0;
  const double keep = outcome == 1 ? p1 : 1.0 - p1;
  const double scale = keep > 0.0 ? 1.0 / std::sqrt(keep) : 0.0;

  // Collapse along the measured qubit's *physical* bit.
  const int physical = map_.physical(qubit);
  const auto segment = partition_.segment_of(physical);
  const int local = partition_.local_bit(physical);
  const std::size_t total_blocks =
      static_cast<std::size_t>(partition_.num_ranks()) *
      partition_.blocks_per_rank();
  std::atomic<std::uint64_t> lossy_writes{0};
  pool_->parallel_for(total_blocks, [&](std::size_t i, std::size_t worker) {
    const int rank = static_cast<int>(i) / partition_.blocks_per_rank();
    const int block = static_cast<int>(i) % partition_.blocks_per_rank();
    // Whole-block / whole-rank projections need no decompression when the
    // block is uniformly kept or uniformly zeroed... but zeroing still
    // requires rewriting the block, and scaling requires touching every
    // amplitude, so only the "kept and scale == 1" case could skip; that
    // never happens for 0 < p < 1.
    int block_bit = -1;  // -1: decided per amplitude
    if (segment == Partition::Segment::kBlock) {
      block_bit = (block >> local) & 1;
    } else if (segment == Partition::Segment::kRank) {
      block_bit = (rank >> local) & 1;
    }
    auto vx = scratch_->vector_x(worker);
    decompress_block(rank, block, vx, worker);
    auto* amps = as_complex(vx);
    const std::uint64_t count = partition_.amplitudes_per_block();
    const std::uint64_t bit = std::uint64_t{1} << local;
    {
      ScopedPhase phase(worker_timers_[worker], Phase::kComputation);
      for (std::uint64_t k = 0; k < count; ++k) {
        const int amp_bit = block_bit >= 0
                                ? block_bit
                                : static_cast<int>((k & bit) != 0);
        if (amp_bit == outcome) {
          amps[k] *= scale;
        } else {
          amps[k] = Amplitude(0, 0);
        }
      }
    }
    auto [compressed, meta] =
        encode_block(vx, level_, rank, block, worker);
    if (meta.codec != compression::kLosslessCodecId) {
      lossy_writes.fetch_add(1, std::memory_order_relaxed);
    }
    ranks_[rank].set_block(block, std::move(compressed), meta);
    maybe_stream_spill(rank, block);
  });
  if (lossy_writes.load() > 0 && level_ > 0) {
    fidelity_.record_lossy_pass(config_.error_ladder[level_ - 1]);
  }
  maintain_tiers();
  enforce_budget();
  // Collapse diverges the state from any recorded circuit position, so
  // the resume cursor is void (same invariant as ad-hoc apply()).
  gate_cursor_ = 0;
  return outcome;
}

std::size_t CompressedStateSimulator::compressed_bytes() const {
  std::size_t total = 0;
  for (const auto& store : ranks_) total += store.total_bytes();
  return total;
}

double CompressedStateSimulator::compression_ratio() const {
  const auto raw = static_cast<double>(partition_.total_amplitudes()) * 16.0;
  const auto compressed = static_cast<double>(compressed_bytes());
  return compressed == 0.0 ? 0.0 : raw / compressed;
}

void CompressedStateSimulator::save_checkpoint(
    const std::string& path) const {
  runtime::CheckpointHeader header;
  header.num_qubits = config_.num_qubits;
  header.num_ranks = config_.num_ranks;
  header.blocks_per_rank = config_.blocks_per_rank;
  header.ladder_level = static_cast<std::uint32_t>(level_);
  header.next_gate_index = gate_cursor_;
  header.fidelity_bound = fidelity_.bound();
  header.lossy_passes = fidelity_.lossy_passes();
  header.codec_name = config_.codec;
  header.qubit_map = map_;
  runtime::save_checkpoint(path, header, ranks_);
}

CompressedStateSimulator CompressedStateSimulator::load_checkpoint(
    const std::string& path, SimConfig config) {
  runtime::LoadedCheckpoint loaded = runtime::load_checkpoint_full(path);
  runtime::CheckpointHeader& header = loaded.header;
  std::vector<runtime::BlockStore>& stores = loaded.ranks;
  config.num_qubits = header.num_qubits;
  config.num_ranks = header.num_ranks;
  config.blocks_per_rank = header.blocks_per_rank;
  config.codec = header.codec_name;
  if (header.ladder_level > config.error_ladder.size()) {
    // Restoring a deeper level than the resume ladder has entries would
    // index past the end of error_ladder on the next compression.
    throw std::invalid_argument(
        "load_checkpoint: saved ladder level exceeds configured ladder");
  }
  CompressedStateSimulator sim(config);
  // Under a small resident budget the constructor's maintain_tiers leaves
  // write-behind spills of the initial |0...0> blocks in flight. They must
  // be discarded before the stores are swapped: the loaded slots restart
  // their generation counters at the same values the initial slots had, so
  // a settle after the swap would pass commit_spill's generation guard and
  // silently re-tier restored blocks onto the stale pre-restore segments.
  sim.discard_pending_spills();
  // The constructor's init_blocks accounted its |0...0> state; the loaded
  // stores replace it wholesale, so the shared stats restart from zero and
  // attach() folds each store's actual bytes back in. (BlockStore
  // destructors never touch the stats, so destroying the initial stores
  // after the reset is safe.)
  sim.tier_stats_->reset();
  sim.ranks_ = std::move(stores);
  for (auto& store : sim.ranks_) {
    store.attach(sim.tier_stats_.get(), sim.spill_.get());
  }
  sim.level_ = static_cast<int>(header.ladder_level);
  sim.gate_cursor_ = header.next_gate_index;
  // The restore point counts as saved: a resumed run's next autosave is
  // one full interval out, matching the uninterrupted run's cadence.
  sim.gates_at_last_autosave_ = sim.gate_cursor_;
  // Pre-v4 files carry no map (identity, which the constructor set). A v4
  // map must cover exactly this simulation's qubits. kLru recency is not
  // persisted — a resumed LRU plan starts from a cold history, which only
  // shifts future eviction choices, never correctness.
  if (!header.qubit_map.empty()) {
    if (header.qubit_map.size() != config.num_qubits) {
      throw std::invalid_argument(
          "load_checkpoint: qubit map covers " +
          std::to_string(header.qubit_map.size()) + " qubits, state has " +
          std::to_string(config.num_qubits));
    }
    sim.map_ = header.qubit_map;
  }
  // Validate every block's codec id up front (decompression happens on
  // worker threads, where a bad id could not throw usefully), and seed the
  // arbiter's hysteresis from the persisted codec so the first pass after
  // a restore doesn't see a blank history.
  for (int r = 0; r < sim.partition_.num_ranks(); ++r) {
    for (int b = 0; b < sim.partition_.blocks_per_rank(); ++b) {
      const auto codec = sim.ranks_[r].meta(b).codec;
      if (codec != compression::kLosslessCodecId &&
          codec != sim.lossy_codec_id_) {
        throw std::invalid_argument(
            "load_checkpoint: block codec id " + std::to_string(codec) +
            " matches neither the lossless stage nor the checkpoint codec "
            "'" + sim.config_.codec + "'");
      }
      sim.arbiter_->seed(sim.global_block(r, b),
                         codec == compression::kLosslessCodecId);
    }
  }
  // Both the bound and the pass count resume exactly where the saved run
  // stopped; subsequent lossy passes multiply/count onto them.
  sim.fidelity_ = FidelityTracker();
  sim.fidelity_.restore(header.fidelity_bound, header.lossy_passes);
  // Re-tier under the *resuming* spill config: blocks that were spilled at
  // save time go back out first (byte-identical moves), then maintain_tiers
  // reconciles against this run's resident budget — which may differ from
  // the saving run's.
  if (sim.spill_ != nullptr) {
    for (std::size_t r = 0; r < loaded.spilled.size(); ++r) {
      for (std::size_t b = 0; b < loaded.spilled[r].size(); ++b) {
        if (loaded.spilled[r][b] != 0) {
          sim.ranks_[r].spill_block(static_cast<int>(b));
        }
      }
    }
  }
  sim.maintain_tiers();
  // Settle the evictions maintain_tiers just enqueued so the restore
  // returns already reconciled: the report's tier split reflects the
  // resuming budget immediately, and a failing spill write surfaces here
  // as a load error instead of at the first gate boundary.
  sim.settle_pending_spills();
  return sim;
}

CompressedStateSimulator CompressedStateSimulator::run_resilient(
    SimConfig config, const qsim::Circuit& circuit,
    const RecoveryOptions& options) {
  if (options.max_recoveries < 0) {
    throw std::invalid_argument("run_resilient: max_recoveries must be >= 0");
  }
  if (options.retry_backoff_ms < 0) {
    throw std::invalid_argument(
        "run_resilient: retry_backoff_ms must be >= 0");
  }
  // A resilient run rides out a full spill disk instead of failing on it.
  config.spill_degrade_on_enospc = true;

  std::uint64_t recoveries = 0;
  std::uint64_t backoff_ms_total = 0;
  for (;;) {
    std::optional<CompressedStateSimulator> sim;
    try {
      // "The last autosave" doubles as the resume point after a *driver*
      // restart: an existing file at the configured path is trusted to be
      // this circuit's, which resume_circuit re-validates.
      const bool resume =
          !config.auto_checkpoint_path.empty() &&
          std::filesystem::exists(config.auto_checkpoint_path);
      if (resume) {
        sim.emplace(load_checkpoint(config.auto_checkpoint_path, config));
        sim->resume_circuit(circuit);
      } else {
        sim.emplace(config);
        sim->apply_circuit(circuit);
      }
      sim->recoveries_ = recoveries;
      sim->recovery_backoff_ms_ = backoff_ms_total;
      return std::move(*sim);
    } catch (const runtime::TransportError& e) {
      // Protocol violations are bugs, not environmental faults — a retry
      // would just trip over them again by construction.
      if (e.kind() == runtime::TransportError::Kind::kProtocol) throw;
      // Tear the failed attempt down *before* respawning: the destructor
      // joins the thread pool and reaps the transport's rank processes,
      // so the next constructor forks from a single-threaded process
      // again (its invariant) and no zombie endpoints accumulate.
      sim.reset();
      if (recoveries >= static_cast<std::uint64_t>(options.max_recoveries)) {
        throw;
      }
      const std::uint64_t wait =
          static_cast<std::uint64_t>(options.retry_backoff_ms)
          << std::min<std::uint64_t>(recoveries, 20);
      ++recoveries;
      if (wait > 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(wait));
        backoff_ms_total += wait;
      }
    }
  }
}

SimulationReport CompressedStateSimulator::report() const {
  SimulationReport rep;
  rep.num_qubits = config_.num_qubits;
  rep.num_ranks = config_.num_ranks;
  rep.blocks_per_rank = config_.blocks_per_rank;
  rep.codec = config_.codec;
  if (config_.zfp_fixed_accuracy) {
    rep.zfp_rate_control = "fixed-accuracy";
  } else if (config_.zfp_fixed_precision > 0) {
    rep.zfp_rate_control = "fixed-precision(" +
                           std::to_string(config_.zfp_fixed_precision) + ")";
  }
  rep.gates = gates_;
  rep.total_seconds = wall_seconds_;
  for (const auto& timers : worker_timers_) rep.phases.merge(timers);
  rep.memory_requirement_bytes =
      memory_required_bytes(config_.num_qubits);
  rep.peak_compressed_bytes =
      tier_stats_->peak_total_bytes.load(std::memory_order_relaxed);
  rep.scratch_bytes = scratch_->bytes();
  rep.budget_bytes = config_.memory_budget_bytes;
  rep.budget_exceeded = budget_exceeded_;
  rep.min_compression_ratio = min_ratio_;
  rep.final_ladder_level = level_;
  rep.codec_policy = config_.codec_policy;
  const auto arbiter_stats = arbiter_->stats();
  rep.codec_lossless_choices = arbiter_stats.lossless_choices;
  rep.codec_lossy_choices = arbiter_stats.lossy_choices;
  rep.codec_switches = arbiter_stats.switches;
  rep.block_raw_bytes = partition_.bytes_per_block();
  for (const auto& store : ranks_) {
    for (int b = 0; b < store.num_blocks(); ++b) {
      if (store.meta(b).codec == compression::kLosslessCodecId) {
        ++rep.final_lossless_blocks;
        rep.final_lossless_bytes += store.block_size(b);
      } else {
        ++rep.final_lossy_blocks;
        rep.final_lossy_bytes += store.block_size(b);
      }
    }
  }
  rep.batched_runs = batched_runs_;
  rep.batched_gates = batched_gates_;
  rep.compress_invocations = compress_calls_.get();
  rep.decompress_invocations = decompress_calls_.get();
  for (const auto& stats : codec_stats_) {
    rep.lossless_compress_invocations += stats.lossless_compress_calls;
    rep.lossy_compress_invocations += stats.lossy_compress_calls;
    rep.lossless_decompress_invocations += stats.lossless_decompress_calls;
    rep.lossy_decompress_invocations += stats.lossy_decompress_calls;
    rep.lossless_compress_seconds += stats.lossless_compress_seconds;
    rep.lossy_compress_seconds += stats.lossy_compress_seconds;
    rep.lossless_decompress_seconds += stats.lossless_decompress_seconds;
    rep.lossy_decompress_seconds += stats.lossy_decompress_seconds;
  }
  rep.codec_scratch_bytes = scratch_->codec_scratch_bytes();
  rep.fidelity_bound = fidelity_.bound();
  rep.lossy_passes = fidelity_.lossy_passes();
  const auto comm_stats = comm_->stats();
  rep.comm_bytes = comm_stats.bytes_moved;
  rep.comm_messages = comm_stats.messages;
  rep.transport = comm_->transport().name();
  rep.comm_seconds = comm_stats.seconds();
  rep.comm_overlap_utilization = comm_stats.overlap_utilization();
  const auto wire = comm_->wire_stats();
  rep.wire_payload_bytes = wire.payload_bytes;
  rep.wire_frame_bytes = wire.frame_bytes;
  rep.wire_frames = wire.frames;
  rep.qubit_remap_enabled = config_.enable_qubit_remap;
  rep.remap_policy = config_.remap_policy;
  rep.remap_sweeps = remap_sweeps_;
  rep.swaps_relabeled = swaps_relabeled_;
  rep.rank_gates_localized = rank_gates_localized_;
  rep.rank_gates_in_place = rank_gates_in_place_;
  // One avoided sweep = one paired exchange per (rank pair, block).
  rep.remap_exchanges_avoided =
      remap_sweeps_avoided_ *
      (static_cast<std::uint64_t>(partition_.num_ranks()) / 2 *
       partition_.blocks_per_rank());
  rep.pipeline_enabled = pipeline_ready();
  rep.pipeline_depth = static_cast<int>(scratch_->staging_buffers());
  rep.pipeline_blocks = pipeline_blocks_;
  rep.pipeline_prefetched = pipeline_prefetched_;
  rep.pipeline_stalls = pipeline_stalls_;
  rep.simd_kernel = qsim::kernel_backend_name(backend_);
  rep.spill_enabled = spill_ != nullptr;
  rep.resident_budget_bytes = config_.resident_budget_bytes;
  rep.resident_bytes =
      tier_stats_->resident_bytes.load(std::memory_order_relaxed);
  rep.spilled_bytes =
      tier_stats_->spilled_bytes.load(std::memory_order_relaxed);
  rep.peak_resident_bytes =
      tier_stats_->peak_resident_bytes.load(std::memory_order_relaxed);
  rep.spill_events =
      tier_stats_->spill_events.load(std::memory_order_relaxed);
  rep.fault_events =
      tier_stats_->fault_events.load(std::memory_order_relaxed);
  rep.readahead_issued =
      tier_stats_->readahead_issued.load(std::memory_order_relaxed);
  rep.readahead_hits =
      tier_stats_->readahead_hits.load(std::memory_order_relaxed);
  rep.degraded = degraded();
  rep.spill_write_failures = spill_write_failures_.get();
  rep.checkpoint_interval_gates = config_.checkpoint_interval_gates;
  rep.autosaves = autosaves_;
  rep.autosave_failures = autosave_failures_;
  rep.autosave_seconds = autosave_seconds_;
  rep.recoveries = recoveries_;
  rep.recovery_backoff_ms = recovery_backoff_ms_;
  for (const auto& cache : caches_) {
    const auto stats = cache->stats();
    rep.cache.hits += stats.hits;
    rep.cache.misses += stats.misses;
    rep.cache.disabled = rep.cache.disabled || stats.disabled;
  }
  return rep;
}

}  // namespace cqs::core
