#include "core/report.hpp"

#include <iomanip>
#include <ostream>

#include "core/memory_model.hpp"

namespace cqs::core {

double SimulationReport::phase_fraction(Phase p) const {
  const double total = phases.total();
  return total == 0.0 ? 0.0 : phases.get(p) / total;
}

double SimulationReport::lossless_block_ratio() const {
  return final_lossless_bytes == 0
             ? 0.0
             : static_cast<double>(final_lossless_blocks) *
                   static_cast<double>(block_raw_bytes) /
                   static_cast<double>(final_lossless_bytes);
}

double SimulationReport::lossy_block_ratio() const {
  return final_lossy_bytes == 0
             ? 0.0
             : static_cast<double>(final_lossy_blocks) *
                   static_cast<double>(block_raw_bytes) /
                   static_cast<double>(final_lossy_bytes);
}

void SimulationReport::print(std::ostream& os) const {
  const auto pct = [&](Phase p) {
    return phase_fraction(p) * 100.0;
  };
  os << std::fixed << std::setprecision(2);
  os << "qubits:              " << num_qubits << "\n"
     << "ranks x blocks:      " << num_ranks << " x " << blocks_per_rank
     << "\n"
     << "codec:               " << codec << " (" << codec_policy
     << " policy)\n";
  if (!zfp_rate_control.empty()) {
    os << "zfp rate control:    " << zfp_rate_control << "\n";
  }
  os << "gates:               " << gates << "\n"
     << "memory requirement:  " << format_bytes(memory_requirement_bytes)
     << "\n"
     << "peak compressed:     " << format_bytes(peak_compressed_bytes)
     << " (+" << format_bytes(scratch_bytes) << " scratch)\n";
  if (budget_bytes > 0) {
    os << "memory budget:       " << format_bytes(budget_bytes)
       << (budget_exceeded ? "  [EXCEEDED]" : "") << "\n";
  }
  if (spill_enabled) {
    os << "out-of-core:         resident " << format_bytes(resident_bytes)
       << " + spilled " << format_bytes(spilled_bytes) << " (budget "
       << format_bytes(resident_budget_bytes) << ", peak resident "
       << format_bytes(peak_resident_bytes) << ")"
       << (degraded ? "  [DEGRADED: disk full, spilling disabled]" : "")
       << "\n"
       << "spill traffic:       " << spill_events << " spills / "
       << fault_events << " faults; readahead " << readahead_issued
       << " issued / " << readahead_hits << " hits";
    if (spill_write_failures > 0) {
      os << "; " << spill_write_failures << " ENOSPC writes ridden out";
    }
    os << "\n";
  }
  if (checkpoint_interval_gates > 0) {
    os << "auto-checkpoint:     " << autosaves << " saves ("
       << std::setprecision(4) << autosave_seconds << " s, every "
       << checkpoint_interval_gates << " gates)"
       << std::setprecision(2);
    if (autosave_failures > 0) {
      os << "; " << autosave_failures << " failed saves survived";
    }
    os << "\n";
  }
  if (recoveries > 0) {
    os << "recoveries:          " << recoveries
       << " fault(s) recovered (total backoff " << recovery_backoff_ms
       << " ms)\n";
  }
  os << "total time:          " << total_seconds << " s\n"
     << "  compression:       " << pct(Phase::kCompression) << " %\n"
     << "  decompression:     " << pct(Phase::kDecompression) << " %\n"
     << "  communication:     " << pct(Phase::kCommunication) << " %\n"
     << "  computation:       " << pct(Phase::kComputation) << " %\n"
     << "time per gate:       " << std::setprecision(6)
     << seconds_per_gate() << " s\n"
     << std::setprecision(2) << "gate runs:           " << batched_runs
     << " batched (" << batched_gates << " gates, avg " << gates_per_run()
     << " gates/run)\n"
     << "codec invocations:   " << compress_invocations << " compress / "
     << decompress_invocations << " decompress\n"
     << std::setprecision(4) << "codec time:          compress "
     << lossless_compress_seconds << " s lossless / "
     << lossy_compress_seconds << " s lossy; decompress "
     << lossless_decompress_seconds << " s lossless / "
     << lossy_decompress_seconds << " s lossy\n"
     << "fidelity bound:      " << fidelity_bound
     << " (" << lossy_passes << " lossy passes, final level "
     << final_ladder_level << ")\n"
     << std::setprecision(2) << "min compression:     "
     << min_compression_ratio << "x\n"
     << "codec mix:           " << codec_lossless_choices
     << " lossless / " << codec_lossy_choices << " lossy passes ("
     << codec_switches << " switches); final blocks "
     << final_lossless_blocks << " lossless ("
     << format_bytes(final_lossless_bytes) << ") / " << final_lossy_blocks
     << " lossy (" << format_bytes(final_lossy_bytes) << ")\n"
     << "communication:       " << format_bytes(comm_bytes) << " in "
     << comm_messages << " messages\n"
     << "transport:           " << transport << " ("
     << format_bytes(wire_payload_bytes) << " payload + "
     << format_bytes(wire_frame_bytes) << " framing on the wire, "
     << wire_frames << " frames)\n"
     << std::setprecision(4) << "comm time:           " << comm_seconds
     << " s on the wire\n"
     << std::setprecision(1) << "comm_overlap_utilization: "
     << comm_overlap_utilization * 100.0
     << " % of exchange lifetime overlapped with codec work\n"
     << std::setprecision(2);
  if (qubit_remap_enabled) {
    os << "qubit remap:         " << remap_sweeps << " remap sweeps, "
       << swaps_relabeled << " swaps relabeled; " << rank_gates_localized
       << " rank gates localized / " << rank_gates_in_place
       << " in place (" << remap_exchanges_avoided
       << " exchanges avoided, " << remap_policy << " policy)\n";
  }
  os << "simd_kernel:         " << simd_kernel << "\n";
  if (pipeline_enabled) {
    os << std::setprecision(1) << "stage_overlap_utilization: "
       << stage_overlap_utilization() * 100.0 << " % ("
       << pipeline_prefetched << "/" << pipeline_blocks
       << " blocks prefetched across workers)\n"
       << "pipeline_stalls:     " << pipeline_stalls << " (depth "
       << pipeline_depth << ")\n" << std::setprecision(2);
  }
  os
     << "cache:               " << cache.hits << " hits / " << cache.misses
     << " misses" << (cache.disabled ? " (disabled)" : "") << "\n";
}

std::ostream& operator<<(std::ostream& os, const SimulationReport& report) {
  report.print(os);
  return os;
}

}  // namespace cqs::core
