// SimulationReport: everything Table 2 prints for one run — memory
// requirement vs. used, time breakdown by phase, time per gate, fidelity
// lower bound, and the minimum compression ratio observed.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

#include "common/timer.hpp"
#include "runtime/block_cache.hpp"

namespace cqs::core {

struct SimulationReport {
  // Configuration echoes.
  int num_qubits = 0;
  int num_ranks = 0;
  int blocks_per_rank = 0;
  std::string codec;

  /// zfp rate control in effect: "" (default bound-driven relative mode),
  /// "fixed-accuracy" (ladder delta as absolute tolerance) or
  /// "fixed-precision(N)" (static plane count).
  std::string zfp_rate_control;

  // Workload.
  std::uint64_t gates = 0;

  // Timing.
  double total_seconds = 0.0;
  PhaseTimers phases;  ///< summed across workers (>= wall time when parallel)

  // Memory.
  std::uint64_t memory_requirement_bytes = 0;  ///< 2^{n+4}, uncompressed
  std::size_t peak_compressed_bytes = 0;       ///< max over gates of Eq. 8 sum
  std::size_t scratch_bytes = 0;               ///< decompression buffers
  std::size_t budget_bytes = 0;                ///< 0 = unlimited
  bool budget_exceeded = false;  ///< over budget even at the last ladder level

  // Out-of-core tiering. resident_bytes + spilled_bytes is the end-state
  // compressed total (the Eq. 8 sum split by tier); the peaks are sampled
  // at every block mutation, not at gate boundaries. spill/fault counts
  // are deterministic across worker counts; readahead_hits is timing-
  // dependent (advise races the read) — report-only, never pinned.
  bool spill_enabled = false;
  std::size_t resident_budget_bytes = 0;
  std::size_t resident_bytes = 0;       ///< end-state in-memory tier
  std::size_t spilled_bytes = 0;        ///< end-state spill-file tier
  std::size_t peak_resident_bytes = 0;  ///< max in-memory tier occupancy
  std::uint64_t spill_events = 0;       ///< resident -> spilled moves
  std::uint64_t fault_events = 0;       ///< reads served from the spill tier
  std::uint64_t readahead_issued = 0;   ///< WILLNEED advisories issued
  std::uint64_t readahead_hits = 0;     ///< faults that had been advised

  // Fault tolerance. `degraded` means a mid-run ENOSPC disabled further
  // spilling and the run continued resident (spill_degrade_on_enospc);
  // the autosave counters cover SimConfig::checkpoint_interval_gates
  // saves; recoveries / recovery_backoff_ms are stamped by run_resilient
  // onto the simulator that finally completed the circuit.
  bool degraded = false;
  std::uint64_t spill_write_failures = 0;  ///< ENOSPC writes ridden out
  std::uint64_t checkpoint_interval_gates = 0;  ///< config echo; 0 = off
  std::uint64_t autosaves = 0;
  std::uint64_t autosave_failures = 0;  ///< failed saves survived (counted)
  double autosave_seconds = 0.0;        ///< wall time spent saving
  std::uint64_t recoveries = 0;         ///< fault-respawn-resume cycles
  std::uint64_t recovery_backoff_ms = 0;  ///< total backoff slept

  // Compression.
  double min_compression_ratio = 0.0;  ///< min over gates (Table 2 last row)
  int final_ladder_level = 0;          ///< 0 = still lossless

  // Codec arbiter (per-block codec selection; runtime/codec_arbiter.hpp).
  std::string codec_policy;                  ///< "fixed" or "adaptive"
  std::uint64_t codec_lossless_choices = 0;  ///< passes routed to lossless zx
  std::uint64_t codec_lossy_choices = 0;     ///< passes routed to the codec
  std::uint64_t codec_switches = 0;  ///< per-block flips (post-hysteresis)
  std::uint64_t final_lossless_blocks = 0;  ///< end-state census by BlockMeta
  std::uint64_t final_lossy_blocks = 0;
  std::size_t final_lossless_bytes = 0;  ///< compressed bytes of those blocks
  std::size_t final_lossy_bytes = 0;
  std::size_t block_raw_bytes = 0;  ///< uncompressed bytes of one block

  // Gate-run scheduler (block-local batching).
  std::uint64_t batched_runs = 0;   ///< block-local runs (one codec pass each)
  std::uint64_t batched_gates = 0;  ///< scheduled ops applied inside runs
  std::uint64_t compress_invocations = 0;    ///< codec compress calls
  std::uint64_t decompress_invocations = 0;  ///< codec decompress calls

  // Codec hot-path attribution: invocations and wall seconds split by
  // codec class (lossless zx vs the configured lossy codec), so benches
  // can attribute (de)compression time per codec. Counts are deterministic
  // across worker counts when the block cache is off (cache hits skip
  // codec calls, and hit/miss splits depend on interleaving); the seconds
  // are wall-clock measurements.
  std::uint64_t lossless_compress_invocations = 0;
  std::uint64_t lossy_compress_invocations = 0;
  std::uint64_t lossless_decompress_invocations = 0;
  std::uint64_t lossy_decompress_invocations = 0;
  double lossless_compress_seconds = 0.0;
  double lossy_compress_seconds = 0.0;
  double lossless_decompress_seconds = 0.0;
  double lossy_decompress_seconds = 0.0;
  /// Share of scratch_bytes held by the per-worker codec pools
  /// (CodecScratch high-water marks; the rest is the block buffers).
  std::size_t codec_scratch_bytes = 0;

  // Fidelity.
  double fidelity_bound = 1.0;
  std::uint64_t lossy_passes = 0;

  // Communication (cross-rank gates only).
  std::uint64_t comm_bytes = 0;
  std::uint64_t comm_messages = 0;
  /// Transport backend the exchanges ran on ("loopback" or "socket").
  std::string transport;
  /// Seconds blocked on the wire (begin + wait), derived once from Comm's
  /// atomic nanosecond counter at report time.
  double comm_seconds = 0.0;
  /// Fraction of exchange lifetime spent overlapped with codec/pipeline
  /// work instead of blocked on the wire. Timing-dependent — report-only,
  /// never part of determinism pins.
  double comm_overlap_utilization = 0.0;
  // Physical wire traffic (the transport's view; loopback stages payloads
  // once with no framing, the socket backend moves each exchanged payload
  // out-and-back so wire_payload_bytes == 2 x comm_bytes).
  std::uint64_t wire_payload_bytes = 0;
  std::uint64_t wire_frame_bytes = 0;
  std::uint64_t wire_frames = 0;

  // Qubit remapping (logical->physical relabeling; runtime/qubit_map.hpp).
  bool qubit_remap_enabled = false;
  std::string remap_policy;
  std::uint64_t remap_sweeps = 0;      ///< RemapOps executed (one exchange
                                       ///< sweep of all block pairs each)
  std::uint64_t swaps_relabeled = 0;   ///< SWAP gates absorbed into the map
  std::uint64_t rank_gates_localized = 0;  ///< rank-target gates made local
  std::uint64_t rank_gates_in_place = 0;   ///< still executed cross-rank
  /// Cross-rank block-pair exchanges the identity layout would have paid
  /// that the remapped run did not (remap sweeps already deducted).
  /// Upper-bound estimate: avoided sweeps are costed as full sweeps, so
  /// avoided gates with rank/block-segment controls — whose identity
  /// sweeps only touch the control-satisfying units — are overcounted.
  /// Comm's own counters carry the exact actuals.
  std::uint64_t remap_exchanges_avoided = 0;

  // Overlapped block pipeline (decompress / apply / recompress stages) and
  // SIMD kernel dispatch.
  bool pipeline_enabled = false;  ///< knob was on AND >= 2 workers engaged it
  int pipeline_depth = 0;         ///< staging buffers configured
  std::uint64_t pipeline_blocks = 0;  ///< units run through the pipeline
  /// Pipelined blocks applied by a different worker than the one that
  /// decoded them — true stage overlap.
  std::uint64_t pipeline_prefetched = 0;
  /// Times a worker had to sleep for a staged block (decode starved).
  std::uint64_t pipeline_stalls = 0;
  /// Kernel backend dispatch actually ran with: "scalar", "avx2", "neon".
  std::string simd_kernel;

  runtime::CacheStats cache;

  /// Fraction of pipelined blocks whose decode overlapped another worker's
  /// apply/recompress (0 when the pipeline never engaged). Timing-
  /// dependent by nature — report-only, never part of determinism pins.
  double stage_overlap_utilization() const {
    return pipeline_blocks == 0
               ? 0.0
               : static_cast<double>(pipeline_prefetched) /
                     static_cast<double>(pipeline_blocks);
  }

  double seconds_per_gate() const {
    return gates == 0 ? 0.0 : total_seconds / static_cast<double>(gates);
  }

  /// Mean scheduled ops per block-local run — the codec amortization
  /// factor the batching scheduler achieved.
  double gates_per_run() const {
    return batched_runs == 0 ? 0.0
                             : static_cast<double>(batched_gates) /
                                   static_cast<double>(batched_runs);
  }

  /// Compression ratio of the end-state blocks each codec class holds
  /// (raw/compressed; 0 when that class holds no blocks). Their spread is
  /// the per-codec ratio delta the Fig. 9-14 studies measure.
  double lossless_block_ratio() const;
  double lossy_block_ratio() const;
  double codec_ratio_delta() const {
    return lossless_block_ratio() - lossy_block_ratio();
  }

  /// Fraction of summed phase time spent in `p` (the percentage rows of
  /// Table 2).
  double phase_fraction(Phase p) const;

  /// Table 2-style one-run summary.
  void print(std::ostream& os) const;
};

std::ostream& operator<<(std::ostream& os, const SimulationReport& report);

}  // namespace cqs::core
