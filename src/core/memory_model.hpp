// The paper's memory arithmetic: a full n-qubit state needs 2^{n+4} bytes
// (2^n double-precision complex amplitudes), so a machine with M bytes
// simulates at most floor(log2 M) - 4 qubits without compression (Table 1)
// and gains log2(ratio) qubits with a compression ratio (Section 5.5).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace cqs::core {

/// Bytes required for the uncompressed full state of n qubits: 2^{n+4}.
std::uint64_t memory_required_bytes(int num_qubits);

/// Largest n with 2^{n+4} <= memory_bytes.
int max_qubits_for_memory(std::uint64_t memory_bytes);

/// Largest n simulable when the state compresses by `ratio` on average.
int max_qubits_with_compression(std::uint64_t memory_bytes, double ratio);

/// One row of Table 1 (plus the Section 5.5 projection column).
struct MachineRow {
  std::string name;
  double memory_petabytes;
  int max_qubits;                 ///< uncompressed (Table 1)
  int max_qubits_compressed;      ///< with the given ratio (Section 5.5)
};

/// Table 1's machines evaluated at a compression ratio (use ratio = 1 for
/// the plain table).
std::vector<MachineRow> table1_machines(double compression_ratio = 1.0);

/// Pretty-prints bytes as B/KB/MB/GB/TB/PB/EB with 3 significant digits.
std::string format_bytes(std::uint64_t bytes);

}  // namespace cqs::core
