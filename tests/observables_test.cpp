// Tests for compressed-state observables: Pauli-Z expectations and
// sampling, validated against the dense reference.
#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "circuits/qaoa.hpp"
#include "common/rng.hpp"
#include "core/simulator.hpp"
#include "qsim/state_vector.hpp"

namespace cqs::core {
namespace {

SimConfig config_for(int n) {
  SimConfig config;
  config.num_qubits = n;
  config.num_ranks = 4;
  config.blocks_per_rank = 8;
  config.threads = 4;
  return config;
}

TEST(ObservablesTest, ZExpectationOnBasisStates) {
  CompressedStateSimulator sim(config_for(10));
  // |0...0>: <Z_q> = +1 everywhere.
  for (int q = 0; q < 10; ++q) {
    EXPECT_NEAR(sim.expectation_pauli_z(1ull << q), 1.0, 1e-12);
  }
  qsim::Circuit c(10);
  c.x(3).x(8);
  sim.apply_circuit(c);
  EXPECT_NEAR(sim.expectation_pauli_z(1ull << 3), -1.0, 1e-12);
  EXPECT_NEAR(sim.expectation_pauli_z(1ull << 8), -1.0, 1e-12);
  EXPECT_NEAR(sim.expectation_pauli_z((1ull << 3) | (1ull << 8)), 1.0,
              1e-12);
  EXPECT_NEAR(sim.expectation_pauli_z((1ull << 3) | (1ull << 5)), -1.0,
              1e-12);
}

TEST(ObservablesTest, ZzMatchesDenseOnQaoaState) {
  const auto c = circuits::qaoa_maxcut_circuit({.num_qubits = 10});
  CompressedStateSimulator sim(config_for(10));
  sim.apply_circuit(c);
  qsim::StateVector reference(10);
  reference.apply_circuit(c);
  const auto probs = reference.probabilities();

  for (const auto& mask :
       {0b11ull, 0b101ull, 0b1000000001ull, 0b1110000000ull}) {
    double expected = 0.0;
    for (std::uint64_t i = 0; i < probs.size(); ++i) {
      expected += (std::popcount(i & mask) % 2 ? -1.0 : 1.0) * probs[i];
    }
    EXPECT_NEAR(sim.expectation_pauli_z(mask), expected, 1e-9)
        << "mask " << mask;
  }
}

TEST(ObservablesTest, QaoaEnergyFromZzTerms) {
  // MAXCUT expected cut = sum_edges (1 - <Z_u Z_v>) / 2 — computable
  // entirely on the compressed state.
  const circuits::QaoaSpec spec{.num_qubits = 12};
  const auto edges =
      circuits::random_regular_graph(spec.num_qubits, 4, spec.seed);
  const auto c = circuits::qaoa_maxcut_circuit(spec);
  CompressedStateSimulator sim(config_for(12));
  sim.apply_circuit(c);
  double cut = 0.0;
  for (const auto& [u, v] : edges) {
    cut += (1.0 - sim.expectation_pauli_z((1ull << u) | (1ull << v))) / 2.0;
  }
  // Must beat the random-assignment baseline of |E|/2.
  EXPECT_GT(cut, static_cast<double>(edges.size()) / 2.0);
  EXPECT_LE(cut, static_cast<double>(edges.size()));
}

TEST(ObservablesTest, MaskBeyondQubitsRejected) {
  CompressedStateSimulator sim(config_for(10));
  EXPECT_THROW(sim.expectation_pauli_z(1ull << 10), std::out_of_range);
}

TEST(ObservablesTest, SampleMatchesDistribution) {
  // Bell pair across rank boundary: samples must be 00...0 or 1...1 on
  // the entangled pair, roughly half-half.
  CompressedStateSimulator sim(config_for(10));
  qsim::Circuit c(10);
  c.h(0).cx(0, 9);
  sim.apply_circuit(c);
  Rng rng(17);
  std::map<std::uint64_t, int> counts;
  const int shots = 2000;
  for (int s = 0; s < shots; ++s) ++counts[sim.sample(rng)];
  ASSERT_EQ(counts.size(), 2u);
  const std::uint64_t both = (1ull << 0) | (1ull << 9);
  EXPECT_TRUE(counts.count(0));
  EXPECT_TRUE(counts.count(both));
  EXPECT_NEAR(counts[0], shots / 2, shots / 8);
}

TEST(ObservablesTest, SampleUniformOverSuperposition) {
  CompressedStateSimulator sim(config_for(10));
  qsim::Circuit c(10);
  for (int q = 0; q < 10; ++q) c.h(q);
  sim.apply_circuit(c);
  Rng rng(23);
  // Chi-square-ish sanity: bucket samples by their low 3 bits.
  std::vector<int> buckets(8, 0);
  const int shots = 8000;
  for (int s = 0; s < shots; ++s) {
    ++buckets[sim.sample(rng) & 7];
  }
  for (int b : buckets) EXPECT_NEAR(b, shots / 8, shots / 16);
}

}  // namespace
}  // namespace cqs::core
