// Unit tests specific to qzc, the paper's Solution C/D compressor: the
// Eq. 12 bit-count rule, truncation direction, discrete error levels
// (Figure 13), error overpreservation and non-correlation (Figure 14).
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "compression/verify.hpp"
#include "qzc/qzc.hpp"

namespace cqs::qzc {
namespace {

using compression::ErrorBound;
using compression::measure_error;

TEST(QzcTest, MantissaBitRuleMatchesEq12) {
  // EXP(0.01) = -7 (paper's example), so 12 sign/exponent bits + 7
  // mantissa bits survive.
  EXPECT_EQ(mantissa_bits_for_bound(1e-2), 7);
  EXPECT_EQ(mantissa_bits_for_bound(1e-1), 4);
  EXPECT_EQ(mantissa_bits_for_bound(1e-3), 10);
  EXPECT_EQ(mantissa_bits_for_bound(1e-4), 14);
  EXPECT_EQ(mantissa_bits_for_bound(1e-5), 17);
  EXPECT_EQ(mantissa_bits_for_bound(0.5), 1);
  EXPECT_EQ(mantissa_bits_for_bound(2.0), 0);
  EXPECT_THROW(mantissa_bits_for_bound(0.0), std::invalid_argument);
}

TEST(QzcTest, TruncationShrinksMagnitudeOnly) {
  // |d'| must lie in (|d|(1 - eps), |d|]: truncation toward zero.
  Rng rng(3);
  std::vector<double> data(10000);
  for (auto& d : data) d = rng.next_normal() * std::exp2(-rng.next_below(30));
  QzcCodec codec;
  const double eps = 1e-3;
  const auto compressed = codec.compress(data, ErrorBound::relative(eps));
  std::vector<double> out(data.size());
  codec.decompress(compressed, out);
  for (std::size_t i = 0; i < data.size(); ++i) {
    EXPECT_LE(std::abs(out[i]), std::abs(data[i]));
    EXPECT_GE(std::abs(out[i]), std::abs(data[i]) * (1.0 - eps));
    EXPECT_EQ(std::signbit(out[i]), std::signbit(data[i]));
  }
}

TEST(QzcTest, Figure13TruncationLadder) {
  // The paper's example: truncating 3.9921875 at increasing error bounds
  // produces the discrete values of Figure 13(b).
  const double value = 3.9921875;
  auto truncate_at = [&](double eps) {
    QzcCodec codec;
    std::vector<double> data{value};
    const auto c = codec.compress(data, ErrorBound::relative(eps));
    std::vector<double> out(1);
    codec.decompress(c, out);
    return out[0];
  };
  // eps = 0.01 keeps ceil(-log2 0.01) = 7 mantissa bits -> 3.984375 with
  // relative error 0.00196. (Figure 13's illustration keeps one bit fewer,
  // 3.96875 at error 0.005871; we keep the extra bit because a 6-bit
  // mantissa has worst-case error 2^-6 = 1.56% which would violate the 1%
  // bound. Both land on the same discrete truncation ladder.)
  const double d = truncate_at(0.01);
  EXPECT_DOUBLE_EQ(d, 3.984375);
  EXPECT_NEAR((value - d) / value, 0.00195695, 1e-6);
  // The figure's 3.96875 is the next rung of the ladder (eps = 0.02).
  EXPECT_DOUBLE_EQ(truncate_at(0.02), 3.96875);
}

TEST(QzcTest, ErrorsOverpreserveBound) {
  // Figure 14: most errors land well below the bound; the normalized error
  // distribution is roughly uniform in [0, 1) and never exceeds 1.
  Rng rng(7);
  std::vector<double> data(1 << 16);
  for (auto& d : data) d = rng.next_normal();
  QzcCodec codec;
  const double eps = 1e-2;
  const auto compressed = codec.compress(data, ErrorBound::relative(eps));
  std::vector<double> out(data.size());
  codec.decompress(compressed, out);
  const auto normalized =
      compression::normalized_relative_errors(data, out, eps);
  double max_norm = 0.0;
  for (double e : normalized) max_norm = std::max(max_norm, std::abs(e));
  EXPECT_LE(max_norm, 1.0);
  // Over half the mass below 0.5x the bound (overpreservation).
  EXPECT_GT(fraction_below(normalized, 0.5), 0.5);
}

TEST(QzcTest, ErrorsAreUncorrelated) {
  // The paper reports lag-1 autocorrelation within [-1e-4, 1e-4] on dense
  // data; we allow a looser but still tiny envelope.
  Rng rng(11);
  std::vector<double> data(1 << 17);
  for (auto& d : data) d = rng.next_normal();
  QzcCodec codec;
  const auto compressed = codec.compress(data, ErrorBound::relative(1e-3));
  std::vector<double> out(data.size());
  codec.decompress(compressed, out);
  const auto errors = compression::signed_errors(data, out);
  EXPECT_LT(std::abs(autocorrelation(errors, 1)), 5e-3);
}

TEST(QzcTest, ShuffleVariantRoundTripsIdentically) {
  // Solution D reshuffles before compressing; reconstruction must land on
  // exactly the same truncated values as Solution C (Figure 12: the error
  // curves of C and D overlap).
  Rng rng(13);
  std::vector<double> data(4096);
  for (auto& d : data) d = rng.next_normal();
  QzcCodec c(false);
  QzcCodec d_codec(true);
  const auto bound = ErrorBound::relative(1e-4);
  const auto cc = c.compress(data, bound);
  const auto cd = d_codec.compress(data, bound);
  std::vector<double> out_c(data.size());
  std::vector<double> out_d(data.size());
  c.decompress(cc, out_c);
  d_codec.decompress(cd, out_d);
  for (std::size_t i = 0; i < data.size(); ++i) {
    ASSERT_EQ(out_c[i], out_d[i]) << i;
  }
}

TEST(QzcTest, OddElementCountWithShuffle) {
  std::vector<double> data = {1.0, 2.0, 3.0, 4.0, 5.0};
  QzcCodec codec(true);
  const auto compressed = codec.compress(data, ErrorBound::relative(1e-6));
  std::vector<double> out(data.size());
  codec.decompress(compressed, out);
  for (std::size_t i = 0; i < data.size(); ++i) {
    EXPECT_NEAR(out[i], data[i], data[i] * 1e-6);
  }
}

TEST(QzcTest, RepeatedValuesCompressExtremelyWell) {
  // Identical consecutive values XOR to zero: 2-bit codes + zx collapse.
  std::vector<double> data(1 << 16, 0.7071067811865476);
  QzcCodec codec;
  const auto compressed = codec.compress(data, ErrorBound::relative(1e-5));
  EXPECT_LT(compressed.size(), data.size() * 8 / 100);
}

TEST(QzcTest, DenormalsAndTinyValuesStayBounded) {
  std::vector<double> data = {5e-324, 1e-310, -3e-320, 1e-300, -1e-308};
  QzcCodec codec;
  const auto compressed = codec.compress(data, ErrorBound::relative(1e-2));
  std::vector<double> out(data.size());
  codec.decompress(compressed, out);
  for (std::size_t i = 0; i < data.size(); ++i) {
    EXPECT_LE(std::abs(out[i]), std::abs(data[i]));
    // Denormal truncation can zero low bits but sign must survive.
    if (out[i] != 0.0) {
      EXPECT_EQ(std::signbit(out[i]), std::signbit(data[i]));
    }
  }
}

TEST(QzcTest, BadMagicRejected) {
  QzcCodec codec;
  std::vector<std::byte> bogus(16, std::byte{0});
  std::vector<double> out(1);
  EXPECT_THROW(codec.decompress(bogus, out), std::runtime_error);
}

}  // namespace
}  // namespace cqs::qzc
