// Tests for the benchmark circuit generators: Grover amplification, QAOA
// structure, supremacy rules, QFT correctness, and dataset generation.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "circuits/datasets.hpp"
#include "circuits/grover.hpp"
#include "circuits/qaoa.hpp"
#include "circuits/qft.hpp"
#include "circuits/supremacy.hpp"
#include "common/rng.hpp"
#include "qsim/state_vector.hpp"

namespace cqs::circuits {
namespace {

TEST(GroverTest, OracleUsesOnlyXToffoliZCz) {
  const auto c = grover_circuit({.data_qubits = 6, .marked_state = 0b101011});
  for (const auto& [name, count] : c.gate_histogram()) {
    EXPECT_TRUE(name == "x" || name == "ccx" || name == "z" || name == "cz" ||
                name == "h")
        << "unexpected gate " << name;
  }
}

TEST(GroverTest, SingleIterationAmplifiesMarkedState) {
  const int d = 5;
  const std::uint64_t marked = 0b10110;
  const auto c = grover_circuit({.data_qubits = d, .marked_state = marked});
  qsim::StateVector sv(c.num_qubits());
  sv.apply_circuit(c);
  // Probability of the marked data-register value (ancillas are |0>).
  const double uniform = 1.0 / 32.0;
  const double p_marked = std::norm(sv.amplitude(marked));
  EXPECT_GT(p_marked, 5.0 * uniform);
  // Ancillas must be returned to |0>: no amplitude outside the data range.
  double outside = 0.0;
  for (std::uint64_t i = (1u << d); i < sv.size(); ++i) {
    outside += std::norm(sv.amplitude(i));
  }
  EXPECT_NEAR(outside, 0.0, 1e-10);
}

TEST(GroverTest, OptimalIterationsNearCertainty) {
  const int d = 6;
  const std::uint64_t marked = 17;
  const int optimal = static_cast<int>(
      std::round(std::numbers::pi / 4.0 * std::sqrt(64.0)));
  const auto c = grover_circuit(
      {.data_qubits = d, .marked_state = marked, .iterations = optimal});
  qsim::StateVector sv(c.num_qubits());
  sv.apply_circuit(c);
  EXPECT_GT(std::norm(sv.amplitude(marked)), 0.9);
}

TEST(GroverTest, QubitAccounting) {
  EXPECT_EQ(grover_total_qubits(31), 60);
  EXPECT_EQ(grover_data_qubits(60), 31);
  EXPECT_EQ(grover_total_qubits(2), 2);
  // Round trip for representative sizes.
  for (int d : {3, 8, 16, 24, 31}) {
    EXPECT_EQ(grover_data_qubits(grover_total_qubits(d)), d);
  }
}

TEST(GroverTest, GateCountScaleMatchesPaper) {
  // Paper Table 2: 61-qubit Grover has 314 gates (d = 31). Ours should be
  // the same order of magnitude for one iteration.
  const auto c = grover_circuit({.data_qubits = 31, .marked_state = 12345});
  EXPECT_GT(c.size(), 200u);
  EXPECT_LT(c.size(), 600u);
}

TEST(QaoaTest, RegularGraphHasRightDegree) {
  const auto edges = random_regular_graph(16, 4, 3);
  EXPECT_EQ(edges.size(), 32u);  // 16 * 4 / 2
  std::vector<int> degree(16, 0);
  std::set<std::pair<int, int>> unique(edges.begin(), edges.end());
  EXPECT_EQ(unique.size(), edges.size());
  for (const auto& [u, v] : edges) {
    EXPECT_NE(u, v);
    ++degree[u];
    ++degree[v];
  }
  for (int deg : degree) EXPECT_EQ(deg, 4);
}

TEST(QaoaTest, CircuitShape) {
  const auto c = qaoa_maxcut_circuit({.num_qubits = 10, .layers = 2});
  qsim::StateVector sv(10);
  sv.apply_circuit(c);
  EXPECT_NEAR(sv.norm(), 1.0, 1e-10);
  // 10 H + 2 layers * (20 edges * 3 + 10 RX).
  EXPECT_EQ(c.size(), 10u + 2u * (20u * 3u + 10u));
}

TEST(QaoaTest, BeatsRandomCutOnAverage) {
  const QaoaSpec spec{.num_qubits = 12, .layers = 1};
  const auto edges = random_regular_graph(spec.num_qubits, 4, spec.seed);
  const auto c = qaoa_maxcut_circuit(spec);
  qsim::StateVector sv(spec.num_qubits);
  sv.apply_circuit(c);
  // Expected cut under the QAOA distribution.
  const auto probs = sv.probabilities();
  double expected_cut = 0.0;
  for (std::uint64_t s = 0; s < probs.size(); ++s) {
    expected_cut += probs[s] * cut_value(edges, s);
  }
  // Random assignment cuts half the edges on average.
  EXPECT_GT(expected_cut, static_cast<double>(edges.size()) / 2.0);
}

TEST(QaoaTest, DeterministicForSeed) {
  const auto a = random_regular_graph(20, 4, 5);
  const auto b = random_regular_graph(20, 4, 5);
  EXPECT_EQ(a, b);
  const auto c2 = random_regular_graph(20, 4, 6);
  EXPECT_NE(a, c2);
}

TEST(SupremacyTest, FollowsBoixoRules) {
  const SupremacySpec spec{.rows = 4, .cols = 4, .depth = 11};
  const auto c = supremacy_circuit(spec);
  // Starts with H on every qubit.
  for (int q = 0; q < 16; ++q) {
    EXPECT_EQ(c.ops()[q].kind, qsim::GateKind::kH);
  }
  // Contains CZ cycles and the single-qubit pool.
  bool has_cz = false;
  bool has_t = false;
  std::set<std::string> singles;
  for (const auto& op : c.ops()) {
    if (op.kind == qsim::GateKind::kCZ) has_cz = true;
    if (op.kind == qsim::GateKind::kT) has_t = true;
    if (op.kind == qsim::GateKind::kSqrtX ||
        op.kind == qsim::GateKind::kSqrtY ||
        op.kind == qsim::GateKind::kSqrtW) {
      singles.insert(qsim::gate_name(op.kind));
    }
  }
  EXPECT_TRUE(has_cz);
  EXPECT_TRUE(has_t);
  EXPECT_GE(singles.size(), 2u);
}

TEST(SupremacyTest, NoImmediateSingleGateRepetition) {
  const auto c = supremacy_circuit({.rows = 3, .cols = 3, .depth = 16});
  std::vector<qsim::GateKind> last(9, qsim::GateKind::kH);
  for (const auto& op : c.ops()) {
    if (op.kind == qsim::GateKind::kSqrtX ||
        op.kind == qsim::GateKind::kSqrtY ||
        op.kind == qsim::GateKind::kSqrtW) {
      EXPECT_NE(op.kind, last[op.target]) << "qubit " << op.target;
      last[op.target] = op.kind;
    }
  }
}

TEST(SupremacyTest, ProducesPorterThomasLikeSpread) {
  // Deep random circuits spread amplitude widely: participation ratio far
  // above 1 state and norm preserved.
  qsim::StateVector sv(12);
  sv.apply_circuit(supremacy_circuit({.rows = 3, .cols = 4, .depth = 11}));
  EXPECT_NEAR(sv.norm(), 1.0, 1e-10);
  const auto probs = sv.probabilities();
  double sum_p2 = 0.0;
  for (double p : probs) sum_p2 += p * p;
  const double participation = 1.0 / sum_p2;
  // Full Porter-Thomas would give N/2 = 2048; depth-11 circuits at this
  // reduced size reach several hundred, far above any concentrated state.
  EXPECT_GT(participation, 300.0);
}

TEST(QftTest, MatchesDftOfInputState) {
  // QFT|x> amplitudes: (1/sqrt(N)) exp(2 pi i x k / N).
  const int n = 6;
  const std::uint64_t x = 13;
  qsim::Circuit prep(n);
  for (int q = 0; q < n; ++q) {
    if ((x >> q) & 1u) prep.x(q);
  }
  qsim::StateVector sv(n);
  sv.apply_circuit(prep);
  sv.apply_circuit(
      qft_circuit({.num_qubits = n, .random_input = false}));
  const auto N = static_cast<double>(sv.size());
  for (std::uint64_t k = 0; k < sv.size(); ++k) {
    const double phase = 2.0 * std::numbers::pi * static_cast<double>(x * k) / N;
    const qsim::Amplitude expected =
        std::polar(1.0 / std::sqrt(N), phase);
    EXPECT_NEAR(std::abs(sv.amplitude(k) - expected), 0.0, 1e-9)
        << "k=" << k;
  }
}

TEST(QftTest, HadamardWallShape) {
  const auto c = hadamard_wall(7, 3);
  EXPECT_EQ(c.size(), 21u);
  EXPECT_EQ(c.num_qubits(), 7);
}

TEST(DatasetsTest, QaoaDatasetIsNormalizedState) {
  const auto data = qaoa_dataset(10);
  EXPECT_EQ(data.size(), (1u << 10) * 2);
  double norm = 0.0;
  for (std::size_t i = 0; i < data.size(); i += 2) {
    norm += data[i] * data[i] + data[i + 1] * data[i + 1];
  }
  EXPECT_NEAR(norm, 1.0, 1e-9);
}

TEST(DatasetsTest, SupremacyDatasetDense) {
  const auto data = supremacy_dataset(3, 3, 11);
  std::size_t nonzero = 0;
  for (double d : data) {
    if (d != 0.0) ++nonzero;
  }
  // Random circuits leave essentially no zero amplitudes.
  EXPECT_GT(nonzero, data.size() * 9 / 10);
}

TEST(DatasetsTest, SparseDatasetMostlyZero) {
  const auto data = sparse_dataset(10, 4);
  std::size_t nonzero = 0;
  for (double d : data) {
    if (d != 0.0) ++nonzero;
  }
  EXPECT_LT(nonzero, data.size() / 10);
}

}  // namespace
}  // namespace cqs::circuits
