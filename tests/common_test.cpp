// Unit tests for the common substrate: bit I/O, varints, RNG, statistics,
// and the thread pool.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <numeric>
#include <vector>

#include "common/bits.hpp"
#include "common/bytes.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/thread_pool.hpp"
#include "common/timer.hpp"

namespace cqs {
namespace {

TEST(BitsTest, WriteReadRoundTrip) {
  Bytes buffer;
  {
    BitWriter writer(buffer);
    writer.write(0b101, 3);
    writer.write(0xdeadbeef, 32);
    writer.write(1, 1);
    writer.flush();
  }
  BitReader reader(buffer);
  EXPECT_EQ(reader.read(3), 0b101u);
  EXPECT_EQ(reader.read(32), 0xdeadbeefu);
  EXPECT_EQ(reader.read(1), 1u);
}

TEST(BitsTest, SingleBitsAcrossByteBoundaries) {
  Bytes buffer;
  std::vector<int> pattern;
  {
    BitWriter writer(buffer);
    for (int i = 0; i < 100; ++i) {
      const int bit = (i * 7) % 3 == 0 ? 1 : 0;
      pattern.push_back(bit);
      writer.write_bit(bit);
    }
    writer.flush();
  }
  BitReader reader(buffer);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(reader.read_bit(), static_cast<std::uint32_t>(pattern[i]))
        << "bit " << i;
  }
}

TEST(BitsTest, ReaderThrowsPastEnd) {
  Bytes buffer{std::byte{0xff}};
  BitReader reader(buffer);
  reader.read(8);
  EXPECT_TRUE(reader.exhausted());
  EXPECT_THROW(reader.read_bit(), std::out_of_range);
}

TEST(BitsTest, LeadingZeroBytes) {
  EXPECT_EQ(leading_zero_bytes(0), 8);
  EXPECT_EQ(leading_zero_bytes(1), 7);
  EXPECT_EQ(leading_zero_bytes(0xffull << 56), 0);
  EXPECT_EQ(leading_zero_bytes(0x00ffull << 40), 2);
  EXPECT_EQ(leading_zero_bytes(0xffull << 48), 1);
}

TEST(VarintTest, RoundTripBoundaries) {
  const std::uint64_t values[] = {0,    1,    127,  128,   16383, 16384,
                                  1u << 20, ~0ull, 42,   0x7fffffffffffffffull};
  Bytes buffer;
  for (auto v : values) put_varint(buffer, v);
  std::size_t offset = 0;
  for (auto v : values) {
    EXPECT_EQ(get_varint(buffer, offset), v);
  }
  EXPECT_EQ(offset, buffer.size());
}

TEST(VarintTest, TruncatedThrows) {
  Bytes buffer;
  put_varint(buffer, 1u << 30);
  buffer.pop_back();
  std::size_t offset = 0;
  EXPECT_THROW(get_varint(buffer, offset), std::out_of_range);
}

TEST(ZigZagTest, RoundTripSignedRange) {
  const std::int64_t values[] = {0, -1, 1, -2, 2, INT64_MIN, INT64_MAX};
  for (auto v : values) {
    EXPECT_EQ(zigzag_decode(zigzag_encode(v)), v);
  }
  EXPECT_EQ(zigzag_encode(0), 0u);
  EXPECT_EQ(zigzag_encode(-1), 1u);
  EXPECT_EQ(zigzag_encode(1), 2u);
}

TEST(ScalarIoTest, RoundTrip) {
  Bytes buffer;
  put_scalar(buffer, 3.14159);
  put_scalar(buffer, std::uint32_t{0xabcd});
  std::size_t offset = 0;
  EXPECT_DOUBLE_EQ(get_scalar<double>(buffer, offset), 3.14159);
  EXPECT_EQ(get_scalar<std::uint32_t>(buffer, offset), 0xabcdu);
  EXPECT_THROW(get_scalar<double>(buffer, offset), std::out_of_range);
}

TEST(RngTest, Deterministic) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(RngTest, UniformDoublesInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.next_double();
    ASSERT_GE(x, 0.0);
    ASSERT_LT(x, 1.0);
  }
}

TEST(RngTest, NextBelowIsUnbiasedEnough) {
  Rng rng(13);
  std::vector<int> counts(10, 0);
  const int trials = 100000;
  for (int i = 0; i < trials; ++i) ++counts[rng.next_below(10)];
  for (int bucket : counts) {
    EXPECT_NEAR(bucket, trials / 10, trials / 100);
  }
}

TEST(RngTest, NormalHasExpectedMoments) {
  Rng rng(99);
  RunningStats stats;
  for (int i = 0; i < 200000; ++i) stats.add(rng.next_normal());
  EXPECT_NEAR(stats.mean(), 0.0, 0.02);
  EXPECT_NEAR(stats.stddev(), 1.0, 0.02);
}

TEST(StatsTest, RunningStatsMatchesDirectComputation) {
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0, 10.0};
  RunningStats stats;
  for (double x : xs) stats.add(x);
  const double mean = std::accumulate(xs.begin(), xs.end(), 0.0) / 5.0;
  EXPECT_DOUBLE_EQ(stats.mean(), mean);
  EXPECT_DOUBLE_EQ(stats.min(), 1.0);
  EXPECT_DOUBLE_EQ(stats.max(), 10.0);
  double var = 0.0;
  for (double x : xs) var += (x - mean) * (x - mean);
  var /= 4.0;
  EXPECT_NEAR(stats.variance(), var, 1e-12);
}

TEST(StatsTest, MergeEqualsSequential) {
  Rng rng(5);
  RunningStats all;
  RunningStats left;
  RunningStats right;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.next_normal();
    all.add(x);
    (i < 500 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_NEAR(left.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-9);
  EXPECT_EQ(left.count(), all.count());
}

TEST(StatsTest, EmpiricalCdfMonotone) {
  Rng rng(17);
  std::vector<double> samples(5000);
  for (auto& s : samples) s = rng.next_double();
  const auto cdf = empirical_cdf(samples, 50);
  ASSERT_EQ(cdf.size(), 50u);
  for (std::size_t i = 1; i < cdf.size(); ++i) {
    EXPECT_LE(cdf[i - 1].value, cdf[i].value);
    EXPECT_LE(cdf[i - 1].cumulative_fraction, cdf[i].cumulative_fraction);
  }
  EXPECT_NEAR(cdf.back().cumulative_fraction, 1.0, 1e-12);
  // Uniform samples: median quantile near 0.5.
  EXPECT_NEAR(cdf[24].value, 0.5, 0.05);
}

TEST(StatsTest, AutocorrelationDetectsStructure) {
  // Strongly correlated series: x_{i+1} = x_i.
  std::vector<double> constant_pairs;
  Rng rng(23);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.next_normal();
    constant_pairs.push_back(v);
    constant_pairs.push_back(v);
  }
  EXPECT_GT(autocorrelation(constant_pairs, 1), 0.4);

  // Independent noise: near zero.
  std::vector<double> noise(5000);
  for (auto& x : noise) x = rng.next_normal();
  EXPECT_NEAR(autocorrelation(noise, 1), 0.0, 0.05);
}

TEST(StatsTest, HistogramCountsAll) {
  std::vector<double> xs = {0.1, 0.2, 0.5, 0.9, 0.95};
  const auto h = histogram(xs, 0.0, 1.0, 10);
  std::size_t total = 0;
  for (auto c : h) total += c;
  EXPECT_EQ(total, xs.size());
  EXPECT_EQ(h[0], 0u);  // 0.1 lands in bin 1
  EXPECT_EQ(h[1], 1u);
  EXPECT_EQ(h[9], 2u);
}

TEST(ThreadPoolTest, RunsAllIterations) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(1000, [&](std::size_t i, std::size_t) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, WorkerIdsAreDense) {
  ThreadPool pool(3);
  std::atomic<std::uint64_t> worker_mask{0};
  pool.parallel_for(10000, [&](std::size_t, std::size_t w) {
    ASSERT_LT(w, 3u);
    worker_mask |= 1ull << w;
  });
  // At least the calling distribution touched worker 0.
  EXPECT_NE(worker_mask.load(), 0u);
}

TEST(ThreadPoolTest, ReusableAcrossCalls) {
  ThreadPool pool(2);
  std::atomic<int> total{0};
  for (int round = 0; round < 50; ++round) {
    pool.parallel_for(100, [&](std::size_t, std::size_t) { ++total; });
  }
  EXPECT_EQ(total.load(), 5000);
}

TEST(PhaseTimersTest, AccumulatesAndMerges) {
  PhaseTimers a;
  a.add(Phase::kCompression, 1.0);
  a.add(Phase::kComputation, 2.0);
  PhaseTimers b;
  b.add(Phase::kCompression, 0.5);
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.get(Phase::kCompression), 1.5);
  EXPECT_DOUBLE_EQ(a.total(), 3.5);
}

}  // namespace
}  // namespace cqs
