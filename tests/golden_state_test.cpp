// Golden-state regression suite: exact pinned amplitudes for GHZ-8,
// QFT-8, and Grover-10 under lossless simulation, and fidelity floors
// under every lossy codec x ladder level — so codec or scheduler
// refactors can't silently drift states. Every case runs under both the
// fixed and the adaptive codec policy.
#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <string>
#include <vector>

#include "circuits/grover.hpp"
#include "circuits/qft.hpp"
#include "compression/compressor.hpp"
#include "core/simulator.hpp"
#include "qsim/circuit.hpp"
#include "qsim/state_vector.hpp"
#include "test_util.hpp"

namespace cqs {
namespace {

using core::CompressedStateSimulator;
using core::SimConfig;

qsim::Circuit ghz_circuit(int qubits) {
  qsim::Circuit c(qubits);
  c.h(0);
  for (int q = 1; q < qubits; ++q) c.cx(q - 1, q);
  return c;
}

SimConfig golden_config(int qubits, const std::string& policy) {
  SimConfig config;
  config.num_qubits = qubits;
  config.num_ranks = 2;
  config.blocks_per_rank = 4;
  config.codec_policy = policy;
  return config;
}

std::vector<std::complex<double>> run_lossless(const qsim::Circuit& circuit,
                                               const std::string& policy) {
  CompressedStateSimulator sim(
      golden_config(circuit.num_qubits(), policy));
  sim.apply_circuit(circuit);
  const auto raw = sim.to_raw();
  std::vector<std::complex<double>> amps(raw.size() / 2);
  for (std::size_t i = 0; i < amps.size(); ++i) {
    amps[i] = {raw[2 * i], raw[2 * i + 1]};
  }
  return amps;
}

class GoldenPolicyTest : public ::testing::TestWithParam<std::string> {};

INSTANTIATE_TEST_SUITE_P(BothPolicies, GoldenPolicyTest,
                         ::testing::Values("fixed", "adaptive"));

TEST_P(GoldenPolicyTest, Ghz8ExactAmplitudes) {
  const auto amps = run_lossless(ghz_circuit(8), GetParam());
  const double inv_sqrt2 = 1.0 / std::sqrt(2.0);
  ASSERT_EQ(amps.size(), 256u);
  EXPECT_NEAR(amps[0].real(), inv_sqrt2, 1e-15);
  EXPECT_NEAR(amps[255].real(), inv_sqrt2, 1e-15);
  EXPECT_EQ(amps[0].imag(), 0.0);
  EXPECT_EQ(amps[255].imag(), 0.0);
  for (std::size_t i = 1; i < 255; ++i) {
    // Structural zeros are exact: H and CX never touch these amplitudes.
    EXPECT_EQ(amps[i], std::complex<double>(0.0, 0.0)) << "index " << i;
  }
}

TEST_P(GoldenPolicyTest, Qft8ExactAmplitudes) {
  // QFT of |0...0> is the uniform superposition with ALL phases +1:
  // every amplitude is exactly 2^-4 up to rounding of the H cascade.
  const auto amps = run_lossless(
      circuits::qft_circuit({.num_qubits = 8, .random_input = false}),
      GetParam());
  ASSERT_EQ(amps.size(), 256u);
  for (std::size_t i = 0; i < amps.size(); ++i) {
    EXPECT_NEAR(amps[i].real(), 0.0625, 1e-14) << "index " << i;
    EXPECT_NEAR(amps[i].imag(), 0.0, 1e-14) << "index " << i;
  }
}

TEST_P(GoldenPolicyTest, Grover10ExactAmplitudes) {
  // 6 data qubits, marked 0b101101, 2 iterations. The implementation's
  // diffusion is I - 2|s><s| (the negated textbook reflection), so after
  // an even iteration count the textbook amplitudes hold verbatim:
  // amp[m] = sin(5 theta), amp[x != m] = cos(5 theta)/sqrt(63) with
  // theta = asin(1/8); the ancilla subspace stays (numerically) empty.
  constexpr std::uint64_t kMarked = 0b101101;
  const auto amps = run_lossless(
      circuits::grover_circuit({.data_qubits = 6,
                                .marked_state = kMarked,
                                .iterations = 2}),
      GetParam());
  ASSERT_EQ(amps.size(), 1024u);
  const double theta = std::asin(1.0 / 8.0);
  const double marked = std::sin(5.0 * theta);
  const double rest = std::cos(5.0 * theta) / std::sqrt(63.0);
  for (std::size_t i = 0; i < 64; ++i) {
    const double expected = i == kMarked ? marked : rest;
    EXPECT_NEAR(amps[i].real(), expected, 1e-12) << "index " << i;
    EXPECT_NEAR(amps[i].imag(), 0.0, 1e-12) << "index " << i;
  }
  for (std::size_t i = 64; i < amps.size(); ++i) {
    // Ancilla uncompute leaves at most fused-gate rounding residue.
    EXPECT_NEAR(std::abs(amps[i]), 0.0, 1e-12) << "index " << i;
  }
}

TEST_P(GoldenPolicyTest, PoliciesAgreeBitExactlyWhenLossless) {
  // At level 0 the arbiter has no freedom: both policies must produce the
  // same bytes and the same state.
  for (const auto& circuit :
       {ghz_circuit(8),
        circuits::qft_circuit({.num_qubits = 8, .random_input = false})}) {
    CompressedStateSimulator fixed(golden_config(8, "fixed"));
    CompressedStateSimulator adaptive(golden_config(8, "adaptive"));
    fixed.apply_circuit(circuit);
    adaptive.apply_circuit(circuit);
    CQS_EXPECT_STATES_CLOSE(fixed.to_raw(), adaptive.to_raw(), 0.0);
  }
}

// --- Fidelity floors under each lossy codec x ladder level ---------------

struct LossyCase {
  std::string codec;
  int level;
};

class GoldenLossyTest
    : public ::testing::TestWithParam<std::tuple<std::string, int>> {};

INSTANTIATE_TEST_SUITE_P(
    AllLossyCodecsAllLevels, GoldenLossyTest,
    ::testing::Combine(::testing::Values("qzc", "qzc-shuffle", "sz",
                                         "sz-complex", "zfp", "fpzip"),
                       ::testing::Values(1, 3, 5)),
    [](const auto& info) {
      std::string name = std::get<0>(info.param);
      for (auto& ch : name) {
        if (ch == '-') ch = '_';
      }
      return name + "_level" + std::to_string(std::get<1>(info.param));
    });

TEST_P(GoldenLossyTest, FidelityFloorsHoldUnderBothPolicies) {
  const auto [codec, level] = GetParam();
  const auto circuits = {
      std::pair{std::string("ghz8"), ghz_circuit(8)},
      std::pair{std::string("qft8"),
                circuits::qft_circuit({.num_qubits = 8,
                                       .random_input = false})},
      std::pair{std::string("grover10"),
                circuits::grover_circuit({.data_qubits = 6,
                                          .marked_state = 0b101101,
                                          .iterations = 2})},
  };
  for (const auto& [name, circuit] : circuits) {
    const auto reference = run_lossless(circuit, "fixed");
    std::vector<double> reference_raw(reference.size() * 2);
    for (std::size_t i = 0; i < reference.size(); ++i) {
      reference_raw[2 * i] = reference[i].real();
      reference_raw[2 * i + 1] = reference[i].imag();
    }
    for (const std::string policy : {"fixed", "adaptive"}) {
      SimConfig config = golden_config(circuit.num_qubits(), policy);
      config.codec = codec;
      config.initial_level = level;
      CompressedStateSimulator sim(config);
      sim.apply_circuit(circuit);
      const auto report = sim.report();
      const double fidelity =
          qsim::state_fidelity(sim.to_raw(), reference_raw);
      // Eq. 11's guarantee is the floor every refactor must preserve:
      // measured fidelity never dips below the tracked bound.
      EXPECT_GE(fidelity, report.fidelity_bound - 1e-12)
          << name << " codec " << codec << " level " << level << " policy "
          << policy;
      // Pinned measured-fidelity floors (values observed at pin time held
      // comfortable margins: worst cases 0.99995 / 0.9942 / 0.6700): a
      // codec or scheduler change that degrades reconstruction accuracy
      // trips these long before the worst-case bound does.
      const double floor = level == 1 ? 0.999 : level == 3 ? 0.99 : 0.6;
      EXPECT_GE(fidelity, floor)
          << name << " codec " << codec << " level " << level << " policy "
          << policy;
      EXPECT_GT(report.fidelity_bound, 0.0);
    }
  }
}

}  // namespace
}  // namespace cqs
