// Transport layer: wire framing, the loopback backend, Comm's accounting
// shim (begin/wait overlap, derived seconds), and — when the build carries
// CQS_TRANSPORT_SOCKET — the multi-process socket backend, including its
// fault-injection paths (corrupt/stall/die must surface typed errors, not
// hangs).
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <stdexcept>
#include <thread>
#include <vector>

#include "runtime/comm.hpp"
#include "runtime/transport.hpp"
#include "runtime/wire_format.hpp"

#ifdef CQS_HAVE_SOCKET_TRANSPORT
#include "runtime/socket_transport.hpp"
#endif

namespace cqs::runtime {
namespace {

Bytes make_payload(std::size_t size, unsigned seed) {
  Bytes payload(size);
  for (std::size_t i = 0; i < size; ++i) {
    payload[i] = static_cast<std::byte>((i * 131 + seed) & 0xff);
  }
  return payload;
}

// --- Wire framing ----------------------------------------------------------

TEST(WireFormatTest, HeaderRoundTrips) {
  wire::FrameHeader h;
  h.type = static_cast<std::uint8_t>(wire::FrameType::kData);
  h.codec = 7;
  h.flags = 3;
  h.src_rank = 5;
  h.dst_rank = 11;
  h.tag = 0x0123456789abcdefULL;
  h.payload_len = 4096;
  h.aux = 42;
  h.checksum = 0xdeadbeefcafef00dULL;
  const auto raw = wire::encode_header(h);
  const auto back = wire::decode_header(raw);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->magic, wire::kMagic);
  EXPECT_EQ(back->version, wire::kVersion);
  EXPECT_EQ(back->type, h.type);
  EXPECT_EQ(back->codec, h.codec);
  EXPECT_EQ(back->flags, h.flags);
  EXPECT_EQ(back->src_rank, h.src_rank);
  EXPECT_EQ(back->dst_rank, h.dst_rank);
  EXPECT_EQ(back->tag, h.tag);
  EXPECT_EQ(back->payload_len, h.payload_len);
  EXPECT_EQ(back->aux, h.aux);
  EXPECT_EQ(back->checksum, h.checksum);
}

TEST(WireFormatTest, RejectsBadMagicAndVersion) {
  wire::FrameHeader h;
  auto raw = wire::encode_header(h);
  auto torn = raw;
  torn[0] ^= std::byte{0xff};  // magic lives in the first 4 bytes
  EXPECT_FALSE(wire::decode_header(torn).has_value());
  auto future = raw;
  future[4] = std::byte{99};  // version byte
  EXPECT_FALSE(wire::decode_header(future).has_value());
}

TEST(WireFormatTest, ChecksumCoversEveryPayloadByte) {
  Bytes payload = make_payload(512, 1);
  const auto sum = wire::payload_checksum(payload);
  payload[511] ^= std::byte{0x01};
  EXPECT_NE(wire::payload_checksum(payload), sum);
  EXPECT_EQ(wire::payload_checksum({}), wire::payload_checksum(Bytes{}));
}

// --- Loopback backend ------------------------------------------------------

TEST(LoopbackTransportTest, ExchangeDeliversCrossedPayloads) {
  LoopbackTransport transport(4);
  const Bytes from_a = make_payload(100, 1);
  const Bytes from_b = make_payload(200, 2);
  auto pending = transport.exchange_begin(0, 2, from_a, from_b, 0, 0);
  EXPECT_TRUE(pending.active);
  transport.exchange_wait(pending);
  EXPECT_FALSE(pending.active);
  EXPECT_EQ(pending.to_a, from_b);
  EXPECT_EQ(pending.to_b, from_a);
}

TEST(LoopbackTransportTest, WireStatsCountEachPayloadOnce) {
  // Migrated from the Comm::transfer one-way accounting pin: the staged
  // copy is charged exactly once per direction, with no framing bytes.
  LoopbackTransport transport(2);
  auto pending =
      transport.exchange_begin(0, 1, make_payload(64, 1), make_payload(64, 2),
                               0, 0);
  transport.exchange_wait(pending);
  const auto stats = transport.wire_stats();
  EXPECT_EQ(stats.payload_bytes, 128u);
  EXPECT_EQ(stats.frame_bytes, 0u);
  EXPECT_EQ(stats.frames, 2u);
}

TEST(TransportFactoryTest, MakesLoopback) {
  TransportOptions options;
  options.num_ranks = 8;
  auto transport = make_transport("loopback", options);
  EXPECT_EQ(transport->name(), "loopback");
  EXPECT_EQ(transport->num_ranks(), 8);
}

TEST(TransportFactoryTest, RejectsUnknownName) {
  EXPECT_THROW(make_transport("carrier-pigeon", {}), std::invalid_argument);
}

#ifndef CQS_HAVE_SOCKET_TRANSPORT
TEST(TransportFactoryTest, SocketUnavailableIsTypedRejection) {
  EXPECT_FALSE(socket_transport_available());
  try {
    make_transport("socket", {});
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("CQS_TRANSPORT_SOCKET"),
              std::string::npos);
  }
}
#endif

// --- Comm accounting shim --------------------------------------------------

TEST(CommTest, SecondsIsDerivedFromWireNanosAtReadTime) {
  // CommStats.seconds is a pure function of the atomic nanosecond counter
  // — computed once at read time, never accumulated as floating point.
  Comm comm(2);
  Bytes a = make_payload(4096, 1);
  Bytes b = make_payload(4096, 2);
  for (int i = 0; i < 8; ++i) comm.exchange(0, 1, a, b);
  const auto stats = comm.stats();
  EXPECT_DOUBLE_EQ(stats.seconds(),
                   static_cast<double>(stats.wire_nanos) * 1e-9);
  CommStats synthetic;
  synthetic.wire_nanos = 1'500'000'000ULL;
  EXPECT_DOUBLE_EQ(synthetic.seconds(), 1.5);
}

TEST(CommTest, BeginWaitChargesBytesAtBeginAndCreditsOverlap) {
  Comm comm(2);
  const Bytes from_a = make_payload(300, 1);
  const Bytes from_b = make_payload(100, 2);
  auto pending = comm.exchange_begin(0, 1, from_a, from_b);
  // Accounting happens at begin: the payloads are already on the wire.
  EXPECT_EQ(comm.stats().bytes_moved, 400u);
  EXPECT_EQ(comm.stats().messages, 2u);
  EXPECT_EQ(comm.stats().overlap_nanos, 0u);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  auto received = comm.exchange_wait(pending);
  EXPECT_EQ(received.to_a, from_b);
  EXPECT_EQ(received.to_b, from_a);
  // The sleep between begin and wait is overlap the exchange hid.
  const auto stats = comm.stats();
  EXPECT_GE(stats.overlap_nanos, 4'000'000u);
  EXPECT_GT(stats.overlap_utilization(), 0.0);
  EXPECT_LE(stats.overlap_utilization(), 1.0);
}

TEST(CommTest, WaitWithoutBeginIsAnError) {
  Comm comm(2);
  Comm::Pending pending;
  EXPECT_THROW(comm.exchange_wait(pending), std::logic_error);
}

TEST(CommTest, OverlapUtilizationIsZeroWithoutExchanges) {
  EXPECT_EQ(CommStats{}.overlap_utilization(), 0.0);
  EXPECT_EQ(CommStats{}.seconds(), 0.0);
}

TEST(CommTest, RejectsNullTransport) {
  EXPECT_THROW(Comm(nullptr), std::invalid_argument);
}

// --- Socket backend --------------------------------------------------------

#ifdef CQS_HAVE_SOCKET_TRANSPORT

TransportOptions socket_options(int ranks, const std::string& endpoint,
                                int timeout_ms = 5000) {
  TransportOptions options;
  options.num_ranks = ranks;
  options.rank_timeout_ms = timeout_ms;
  options.socket_endpoint = endpoint;
  return options;
}

class SocketEndpointTest : public ::testing::TestWithParam<std::string> {};

TEST_P(SocketEndpointTest, ExchangeRoundTripsAcrossProcesses) {
  SocketTransport transport(socket_options(4, GetParam()));
  EXPECT_EQ(transport.name(), "socket");
  EXPECT_EQ(transport.num_ranks(), 4);
  const Bytes from_a = make_payload(4096, 1);
  const Bytes from_b = make_payload(1024, 2);
  auto pending = transport.exchange_begin(1, 3, from_a, from_b, 5, 9);
  transport.exchange_wait(pending);
  EXPECT_EQ(pending.to_a, from_b);
  EXPECT_EQ(pending.to_b, from_a);
  // Every exchanged payload crosses the wire out and back: 2x payload
  // bytes, 4 data frames each way + the 8 constructor hello echoes.
  const auto stats = transport.wire_stats();
  EXPECT_EQ(stats.payload_bytes, 2u * (4096 + 1024));
  EXPECT_EQ(stats.frames, 8u + 4u);
  EXPECT_EQ(stats.frame_bytes, stats.frames * wire::kHeaderBytes);
  const auto procs = transport.join();
  ASSERT_EQ(procs.size(), 4u);
  for (const auto& proc : procs) {
    EXPECT_TRUE(proc.joined);
    EXPECT_EQ(proc.exit_code, 0) << "rank " << proc.rank;
  }
}

INSTANTIATE_TEST_SUITE_P(LocalAndTcp, SocketEndpointTest,
                         ::testing::Values("local", "tcp"));

TEST(SocketTransportTest, EmptyPayloadsExchange) {
  SocketTransport transport(socket_options(2, "local"));
  auto pending = transport.exchange_begin(0, 1, {}, {}, 0, 0);
  transport.exchange_wait(pending);
  EXPECT_TRUE(pending.to_a.empty());
  EXPECT_TRUE(pending.to_b.empty());
}

TEST(SocketTransportTest, ConcurrentExchangesDemuxByTag) {
  // Many threads exchange on the same two connections at once; the tag
  // demux must route every echo to the thread that sent it.
  SocketTransport transport(socket_options(2, "local"));
  constexpr int kThreads = 8;
  constexpr int kRounds = 25;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kRounds; ++i) {
        const Bytes from_a = make_payload(256 + t, t * 100 + i);
        const Bytes from_b = make_payload(512 + t, t * 100 + i + 1);
        auto pending = transport.exchange_begin(0, 1, from_a, from_b, 0, 0);
        transport.exchange_wait(pending);
        if (pending.to_a != from_b || pending.to_b != from_a) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST(SocketTransportTest, CorruptedFrameSurfacesTypedError) {
  SocketTransport transport(socket_options(2, "local"));
  transport.inject_fault(1, wire::FrameType::kCorruptNext);
  auto pending =
      transport.exchange_begin(0, 1, make_payload(128, 1), make_payload(128, 2),
                               0, 0);
  try {
    transport.exchange_wait(pending);
    FAIL() << "expected TransportError";
  } catch (const TransportError& e) {
    EXPECT_EQ(e.kind(), TransportError::Kind::kFrameCorrupt);
    EXPECT_EQ(e.rank(), 1);
  }
}

TEST(SocketTransportTest, StalledRankTimesOutInsteadOfHanging) {
  SocketTransport transport(socket_options(2, "local", 200));
  // The endpoint sleeps 10x the deadline before echoing; the waiter must
  // fail with kTimeout near the deadline, not block for the stall.
  transport.inject_fault(1, wire::FrameType::kStallNext, 2000);
  auto pending =
      transport.exchange_begin(0, 1, make_payload(64, 1), make_payload(64, 2),
                               0, 0);
  const auto start = std::chrono::steady_clock::now();
  try {
    transport.exchange_wait(pending);
    FAIL() << "expected TransportError";
  } catch (const TransportError& e) {
    EXPECT_EQ(e.kind(), TransportError::Kind::kTimeout);
    EXPECT_EQ(e.rank(), 1);
  }
  const auto waited = std::chrono::duration_cast<std::chrono::milliseconds>(
                          std::chrono::steady_clock::now() - start)
                          .count();
  EXPECT_LT(waited, 1500) << "wait blocked past the deadline";
}

TEST(SocketTransportTest, DeadRankSurfacesTypedErrorAndCleanShutdown) {
  SocketTransport transport(socket_options(2, "local", 1000));
  transport.inject_fault(1, wire::FrameType::kDie);
  try {
    // The death may surface at begin (EPIPE on the send) or at wait (EOF
    // or a drained kernel buffer) depending on scheduling — any of these
    // is a typed, rank-attributed, deadline-bounded failure; a hang is
    // the only wrong answer.
    auto pending = transport.exchange_begin(0, 1, make_payload(64, 1),
                                            make_payload(64, 2), 0, 0);
    transport.exchange_wait(pending);
    FAIL() << "expected TransportError";
  } catch (const TransportError& e) {
    EXPECT_TRUE(e.kind() == TransportError::Kind::kRankDead ||
                e.kind() == TransportError::Kind::kTimeout);
    EXPECT_EQ(e.rank(), 1);
  }
  // Shutdown after a rank death still joins every process.
  const auto procs = transport.join();
  ASSERT_EQ(procs.size(), 2u);
  EXPECT_TRUE(procs[0].joined);
  EXPECT_TRUE(procs[1].joined);
  EXPECT_EQ(procs[0].exit_code, 0);
}

TEST(SocketTransportTest, JoinIsIdempotent) {
  SocketTransport transport(socket_options(2, "local"));
  const auto first = transport.join();
  const auto second = transport.join();
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].pid, second[i].pid);
    EXPECT_EQ(first[i].exit_code, second[i].exit_code);
  }
}

TEST(SocketTransportTest, FactoryBuildsSocket) {
  EXPECT_TRUE(socket_transport_available());
  auto transport = make_transport("socket", socket_options(2, "local"));
  EXPECT_EQ(transport->name(), "socket");
  EXPECT_EQ(transport->num_ranks(), 2);
}

TEST(SocketTransportTest, RejectsUnknownEndpoint) {
  EXPECT_THROW(SocketTransport(socket_options(2, "carrier-pigeon")),
               std::invalid_argument);
}

TEST(CommTest, SocketBackedCommKeepsAccountingIdentity) {
  // Comm's logical counters are transport-independent; the socket wire
  // carries each exchanged payload twice (out and back).
  Comm comm(make_transport("socket", socket_options(2, "local")));
  Bytes a = make_payload(1000, 1);
  Bytes b = make_payload(600, 2);
  const Bytes a0 = a;
  const Bytes b0 = b;
  comm.exchange(0, 1, a, b);
  EXPECT_EQ(a, b0);
  EXPECT_EQ(b, a0);
  EXPECT_EQ(comm.stats().bytes_moved, 1600u);
  EXPECT_EQ(comm.stats().messages, 2u);
  EXPECT_EQ(comm.wire_stats().payload_bytes, 2u * comm.stats().bytes_moved);
}

#endif  // CQS_HAVE_SOCKET_TRANSPORT

}  // namespace
}  // namespace cqs::runtime
