// Golden-blob regression: the SHA-256 of every registry codec's compressed
// output on the shared spiky/dense/sparse fixtures must match the digests
// recorded before the codec hot-path overhaul. Checkpoints v1-v3 persist
// these containers and BlockCache keys hash them, so any drift here means
// persisted state and cache identity silently broke.
#include <gtest/gtest.h>

#include <cstring>
#include <set>
#include <string>
#include <vector>

#include "compression/codec_scratch.hpp"
#include "compression/golden_blobs.hpp"

namespace cqs::compression {
namespace {

TEST(GoldenBlobTest, ScratchlessPathMatchesRecordedDigests) {
  for (const GoldenBlob& blob : kGoldenBlobs) {
    EXPECT_EQ(golden_blob_hash(blob), blob.sha256)
        << blob.codec << "/" << blob.mode << "/" << blob.fixture
        << ": compressed bitstream drifted from the pre-overhaul bytes";
  }
}

TEST(GoldenBlobTest, ScratchPathProducesIdenticalBytes) {
  // One scratch reused across every codec and fixture: pooled state must
  // never leak one pass's contents into the next container.
  CodecScratch scratch;
  for (const GoldenBlob& blob : kGoldenBlobs) {
    EXPECT_EQ(golden_blob_hash(blob, &scratch), blob.sha256)
        << blob.codec << "/" << blob.mode << "/" << blob.fixture
        << ": scratch-pooled compress diverged from the scratch-less path";
  }
}

TEST(GoldenBlobTest, ScratchDecompressMatchesScratchless) {
  CodecScratch scratch;
  for (const GoldenBlob& blob : kGoldenBlobs) {
    const auto codec = make_compressor(blob.codec);
    const auto& data = golden_fixture(blob.fixture);
    const Bytes compressed =
        codec->compress(data, golden_bound(blob.mode), scratch);
    std::vector<double> plain(data.size());
    std::vector<double> pooled(data.size());
    codec->decompress(compressed, plain);
    codec->decompress(compressed, pooled, scratch);
    ASSERT_EQ(plain.size(), pooled.size());
    for (std::size_t i = 0; i < plain.size(); ++i) {
      // Bit-identical, including signed zeros and NaN payloads.
      ASSERT_EQ(std::memcmp(&plain[i], &pooled[i], sizeof(double)), 0)
          << blob.codec << "/" << blob.mode << "/" << blob.fixture
          << " index " << i;
    }
  }
}

TEST(GoldenBlobTest, EveryRegistryCodecIsPinned) {
  // A codec added to the registry must gain golden digests, otherwise its
  // wire format is unguarded.
  std::set<std::string> pinned;
  for (const GoldenBlob& blob : kGoldenBlobs) pinned.insert(blob.codec);
  for (const auto& name : compressor_names()) {
    EXPECT_TRUE(pinned.count(name))
        << "codec '" << name << "' has no golden-blob digests";
  }
}

TEST(GoldenBlobTest, EverySupportedModeIsPinned) {
  for (const auto& name : compressor_names()) {
    const auto codec = make_compressor(name);
    const auto has = [&](const char* mode) {
      for (const GoldenBlob& blob : kGoldenBlobs) {
        if (name == blob.codec && std::string(mode) == blob.mode) return true;
      }
      return false;
    };
    EXPECT_EQ(codec->supports(BoundMode::kLossless), has("lossless")) << name;
    EXPECT_EQ(codec->supports(BoundMode::kAbsolute), has("abs")) << name;
    EXPECT_EQ(codec->supports(BoundMode::kPointwiseRelative), has("rel"))
        << name;
  }
}

}  // namespace
}  // namespace cqs::compression
