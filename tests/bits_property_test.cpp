// Property suite for the word-wide bit I/O rewrite: random bit patterns
// round-trip through BitWriter/BitReader and, critically, the emitted byte
// stream is cross-checked against a reference per-bit implementation (the
// pre-overhaul code), so the wire format provably did not move.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/bits.hpp"
#include "common/bytes.hpp"
#include "common/rng.hpp"
#include "lossless/huffman.hpp"

namespace cqs {
namespace {

/// The historical per-bit writer, kept verbatim as the semantic reference.
class RefBitWriter {
 public:
  explicit RefBitWriter(Bytes& sink) : sink_(sink) {}

  void write(std::uint64_t value, int nbits) {
    for (int i = nbits - 1; i >= 0; --i) {
      write_bit((value >> i) & 1u);
    }
  }

  void write_bit(std::uint64_t bit) {
    accum_ = (accum_ << 1) | (bit & 1u);
    if (++filled_ == 8) {
      sink_.push_back(static_cast<std::byte>(accum_));
      accum_ = 0;
      filled_ = 0;
    }
  }

  void flush() {
    if (filled_ > 0) {
      sink_.push_back(static_cast<std::byte>(accum_ << (8 - filled_)));
      accum_ = 0;
      filled_ = 0;
    }
  }

 private:
  Bytes& sink_;
  std::uint64_t accum_ = 0;
  int filled_ = 0;
};

/// The historical per-bit reader.
class RefBitReader {
 public:
  explicit RefBitReader(ByteSpan data) : data_(data) {}

  std::uint32_t read_bit() {
    const auto byte = static_cast<std::uint8_t>(data_[pos_ >> 3]);
    const std::uint32_t bit = (byte >> (7 - (pos_ & 7))) & 1u;
    ++pos_;
    return bit;
  }

  std::uint64_t read(int nbits) {
    std::uint64_t value = 0;
    for (int i = 0; i < nbits; ++i) value = (value << 1) | read_bit();
    return value;
  }

 private:
  ByteSpan data_;
  std::size_t pos_ = 0;
};

struct Item {
  std::uint64_t value;
  int nbits;  // 0 marks a single write_bit of (value & 1)
};

std::vector<Item> random_items(Rng& rng, std::size_t count) {
  std::vector<Item> items;
  items.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    // Mix single bits, narrow fields, byte-ish fields, and wide fields —
    // including the 57..64-bit range that exercises the writer's split
    // path and the reader's two-part wide read.
    const int kind = static_cast<int>(rng.next_below(4));
    int nbits = 0;
    switch (kind) {
      case 0: nbits = 0; break;
      case 1: nbits = 1 + static_cast<int>(rng.next_below(8)); break;
      case 2: nbits = 9 + static_cast<int>(rng.next_below(32)); break;
      default: nbits = 41 + static_cast<int>(rng.next_below(24)); break;
    }
    items.push_back({rng.next_u64(), nbits});
  }
  return items;
}

TEST(BitsPropertyTest, WriterMatchesReferenceByteForByte) {
  Rng rng(20260731);
  for (int round = 0; round < 50; ++round) {
    const auto items = random_items(rng, 200);
    Bytes fast;
    Bytes ref;
    {
      BitWriter writer(fast);
      RefBitWriter ref_writer(ref);
      for (const Item& item : items) {
        if (item.nbits == 0) {
          writer.write_bit(item.value & 1);
          ref_writer.write_bit(item.value & 1);
        } else {
          writer.write(item.value, item.nbits);
          ref_writer.write(item.value, item.nbits);
        }
      }
      writer.flush();
      ref_writer.flush();
    }
    ASSERT_EQ(fast, ref) << "round " << round;
  }
}

TEST(BitsPropertyTest, ReaderMatchesReferenceOnRandomStreams) {
  Rng rng(424242);
  for (int round = 0; round < 50; ++round) {
    const auto items = random_items(rng, 200);
    Bytes buffer;
    {
      BitWriter writer(buffer);
      for (const Item& item : items) {
        writer.write(item.value, item.nbits == 0 ? 1 : item.nbits);
      }
      writer.flush();
    }
    BitReader reader(buffer);
    RefBitReader ref_reader(buffer);
    std::size_t expected_pos = 0;
    for (const Item& item : items) {
      const int nbits = item.nbits == 0 ? 1 : item.nbits;
      ASSERT_EQ(reader.read(nbits), ref_reader.read(nbits));
      expected_pos += static_cast<std::size_t>(nbits);
      ASSERT_EQ(reader.position(), expected_pos);
    }
  }
}

TEST(BitsPropertyTest, SingleBitInterleavingMatchesReference) {
  Rng rng(7);
  Bytes buffer;
  std::vector<int> bits;
  {
    BitWriter writer(buffer);
    for (int i = 0; i < 4096; ++i) {
      const int bit = static_cast<int>(rng.next_u64() & 1);
      bits.push_back(bit);
      writer.write_bit(bit);
    }
    writer.flush();
  }
  BitReader reader(buffer);
  RefBitReader ref_reader(buffer);
  for (int expected : bits) {
    ASSERT_EQ(reader.read_bit(), static_cast<std::uint32_t>(expected));
    ASSERT_EQ(ref_reader.read_bit(), static_cast<std::uint32_t>(expected));
  }
}

TEST(BitsPropertyTest, PeekIsZeroPaddedAndNonConsuming) {
  Bytes buffer;
  {
    BitWriter writer(buffer);
    writer.write(0b1011, 4);
    writer.flush();
  }
  BitReader reader(buffer);
  // The stream holds one byte 0b10110000; peeking 24 bits pads zeros.
  EXPECT_EQ(reader.peek(24), 0b101100000000000000000000u);
  EXPECT_EQ(reader.peek(4), 0b1011u);
  EXPECT_EQ(reader.position(), 0u);
  reader.consume(4);
  EXPECT_EQ(reader.position(), 4u);
  EXPECT_EQ(reader.peek(4), 0u);  // the written padding
  reader.consume(4);
  EXPECT_THROW(reader.consume(1), std::out_of_range);
  EXPECT_EQ(reader.peek(24), 0u);  // fully exhausted: all padding
}

TEST(BitsPropertyTest, ReadPastEndThrows) {
  Bytes buffer{std::byte{0xff}, std::byte{0x01}};
  BitReader reader(buffer);
  reader.read(15);
  EXPECT_FALSE(reader.exhausted(1));
  EXPECT_THROW(reader.read(2), std::out_of_range);
  reader.read(1);
  EXPECT_TRUE(reader.exhausted());
  EXPECT_THROW(reader.read_bit(), std::out_of_range);
}

TEST(BitsPropertyTest, WideReadsAcrossByteBoundaries) {
  Rng rng(99);
  for (int offset_bits = 0; offset_bits < 8; ++offset_bits) {
    const std::uint64_t value = rng.next_u64();
    Bytes buffer;
    {
      BitWriter writer(buffer);
      if (offset_bits > 0) writer.write(0x55, offset_bits);
      writer.write(value, 64);
      writer.flush();
    }
    BitReader reader(buffer);
    if (offset_bits > 0) reader.read(offset_bits);
    EXPECT_EQ(reader.read(64), value) << "offset " << offset_bits;
  }
}

TEST(BitsPropertyTest, HuffmanRoundTripWithLongCodes) {
  // Fibonacci-ish counts force codes past kPrimaryBits, exercising the
  // decode_long fallback alongside the primary-table fast path.
  std::vector<std::uint64_t> counts(300, 0);
  std::uint64_t a = 1;
  std::uint64_t b = 1;
  for (std::size_t i = 0; i < 40; ++i) {
    counts[i] = a;
    const std::uint64_t next = a + b;
    a = b;
    b = next;
  }
  for (std::size_t i = 40; i < counts.size(); ++i) counts[i] = 1;

  Rng rng(5);
  std::vector<std::uint32_t> symbols;
  std::vector<std::uint64_t> draw(counts.begin(), counts.end());
  std::uint64_t total = 0;
  for (auto c : draw) total += c;
  for (int i = 0; i < 50000; ++i) {
    std::uint64_t r = rng.next_below(total);
    std::uint32_t s = 0;
    while (r >= draw[s]) r -= draw[s++];
    symbols.push_back(s);
  }

  const auto encoder = lossless::HuffmanEncoder::from_counts(counts);
  int max_len = 0;
  for (auto l : encoder.lengths()) max_len = std::max<int>(max_len, l);
  ASSERT_GT(max_len, lossless::kPrimaryBits)
      << "fixture no longer exercises the long-code path";

  Bytes buffer;
  encoder.write_table(buffer);
  {
    BitWriter writer(buffer);
    for (auto s : symbols) encoder.encode(writer, s);
  }
  std::size_t offset = 0;
  const auto decoder = lossless::HuffmanDecoder::read_table(buffer, offset,
                                                            counts.size());
  BitReader reader(ByteSpan(buffer).subspan(offset));
  for (auto s : symbols) {
    ASSERT_EQ(decoder.decode(reader), s);
  }
}

TEST(BitsPropertyTest, HuffmanRejectsOversizedAlphabet) {
  // The first-level decode table stores symbols as uint16; alphabets past
  // 2^16 must be rejected up front rather than silently truncated.
  Bytes table;
  put_varint(table, 0);  // zero used symbols
  std::size_t offset = 0;
  EXPECT_NO_THROW(lossless::HuffmanDecoder::read_table(
      table, offset, lossless::kMaxAlphabetSize));
  offset = 0;
  EXPECT_THROW(lossless::HuffmanDecoder::read_table(
                   table, offset, lossless::kMaxAlphabetSize + 1),
               std::invalid_argument);
}

TEST(BitsPropertyTest, HuffmanRejectsOversubscribedTable) {
  // Three symbols of length 1 violate the Kraft inequality; a prefix-free
  // tree admits at most two. The decoder must reject the table (the
  // primary-table fill would otherwise write out of bounds).
  Bytes table;
  put_varint(table, 3);  // three used symbols
  for (std::uint32_t s = 0; s < 3; ++s) {
    put_varint(table, s == 0 ? 0 : 1);   // delta-coded symbol
    table.push_back(std::byte{1});       // claimed length 1
  }
  std::size_t offset = 0;
  EXPECT_THROW(lossless::HuffmanDecoder::read_table(table, offset, 256),
               std::runtime_error);
}

TEST(BitsPropertyTest, HuffmanDecodeTruncatedStreamThrows) {
  std::vector<std::uint64_t> counts(256, 0);
  counts['x'] = 3;
  counts['y'] = 1;
  counts['z'] = 1;
  const auto encoder = lossless::HuffmanEncoder::from_counts(counts);
  Bytes buffer;
  encoder.write_table(buffer);
  const std::size_t table_size = buffer.size();
  {
    BitWriter writer(buffer);
    for (int i = 0; i < 64; ++i) encoder.encode(writer, 'y');
  }
  std::size_t offset = 0;
  const auto decoder =
      lossless::HuffmanDecoder::read_table(buffer, offset, 256);
  ASSERT_EQ(offset, table_size);
  // Chop the payload so the last symbols are missing.
  BitReader reader(ByteSpan(buffer).subspan(offset, 4));
  EXPECT_THROW(
      {
        for (int i = 0; i < 64; ++i) decoder.decode(reader);
      },
      std::out_of_range);
}

}  // namespace
}  // namespace cqs
