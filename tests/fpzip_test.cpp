// Unit tests specific to the FPZIP-like predictive codec.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.hpp"
#include "compression/verify.hpp"
#include "fpzip/fpzip.hpp"

namespace cqs::fpzip {
namespace {

using compression::BoundMode;
using compression::ErrorBound;
using compression::measure_error;

TEST(FpzipTest, PrecisionMappingMatchesPaperTable) {
  // Paper (Section 4.1): precisions {16, 18, 22, 24, 28} approximate
  // pointwise relative bounds {1e-1 .. 1e-5}. Our derivation lands within
  // +-2 bits of the paper's choices.
  EXPECT_NEAR(precision_for_bound(1e-1), 16, 2);
  EXPECT_NEAR(precision_for_bound(1e-2), 18, 2);
  EXPECT_NEAR(precision_for_bound(1e-3), 22, 2);
  EXPECT_NEAR(precision_for_bound(1e-4), 24, 2);
  EXPECT_NEAR(precision_for_bound(1e-5), 28, 2);
}

TEST(FpzipTest, BoundForPrecisionInverse) {
  for (int p : {16, 20, 30, 40}) {
    EXPECT_LE(bound_for_precision(p), bound_for_precision(p - 1));
  }
}

TEST(FpzipTest, LosslessModeBitExact) {
  Rng rng(3);
  std::vector<double> data(10000);
  for (auto& d : data) d = rng.next_normal() * std::exp2(rng.next_below(40));
  FpzipCodec codec;
  const auto compressed = codec.compress(data, ErrorBound::lossless());
  std::vector<double> out(data.size());
  codec.decompress(compressed, out);
  for (std::size_t i = 0; i < data.size(); ++i) {
    ASSERT_EQ(out[i], data[i]);
  }
}

TEST(FpzipTest, HigherPrecisionLargerOutput) {
  Rng rng(13);
  std::vector<double> data(8192);
  for (auto& d : data) d = rng.next_normal();
  FpzipCodec p16(16);
  FpzipCodec p28(28);
  const auto bound = ErrorBound::relative(1e-9);  // overridden by precision
  EXPECT_LT(p16.compress(data, bound).size(),
            p28.compress(data, bound).size());
}

TEST(FpzipTest, MagnitudeNeverGrows) {
  Rng rng(7);
  std::vector<double> data(4096);
  for (auto& d : data) d = rng.next_normal();
  FpzipCodec codec;
  const auto compressed = codec.compress(data, ErrorBound::relative(1e-3));
  std::vector<double> out(data.size());
  codec.decompress(compressed, out);
  for (std::size_t i = 0; i < data.size(); ++i) {
    EXPECT_LE(std::abs(out[i]), std::abs(data[i]));
    EXPECT_EQ(std::signbit(out[i]), std::signbit(data[i]));
  }
}

TEST(FpzipTest, SmoothDataDeltaCodesWell) {
  std::vector<double> smooth(65536);
  for (std::size_t i = 0; i < smooth.size(); ++i) {
    smooth[i] = 1.0 + 1e-6 * static_cast<double>(i);
  }
  FpzipCodec codec;
  const auto compressed = codec.compress(smooth, ErrorBound::lossless());
  const double ratio = static_cast<double>(smooth.size() * 8) /
                       static_cast<double>(compressed.size());
  EXPECT_GT(ratio, 2.0);
}

TEST(FpzipTest, InvalidPrecisionRejected) {
  EXPECT_THROW(FpzipCodec(3), std::invalid_argument);
  EXPECT_THROW(FpzipCodec(65), std::invalid_argument);
  EXPECT_NO_THROW(FpzipCodec(4));
  EXPECT_NO_THROW(FpzipCodec(64));
}

TEST(FpzipTest, AbsoluteModeUnsupported) {
  FpzipCodec codec;
  EXPECT_FALSE(codec.supports(BoundMode::kAbsolute));
  std::vector<double> data(8, 1.0);
  EXPECT_THROW(codec.compress(data, ErrorBound::absolute(1e-3)),
               std::invalid_argument);
}

}  // namespace
}  // namespace cqs::fpzip
