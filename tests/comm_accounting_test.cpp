// Pins the Comm counters (Table 2's communication row) for QFT across
// rank configurations so scheduler changes cannot silently regress
// cross-rank traffic. The expected exchange count is derived from an
// independent walk of the circuit against the Section 3.3 routing rules
// (one paired block exchange per unit of every non-diagonal rank-target
// sweep); the simulator's counters must match it exactly with remapping
// off, stay reproducible across runs and thread counts, and never exceed
// it with remapping on.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "circuits/qft.hpp"
#include "core/simulator.hpp"
#include "qsim/gates.hpp"
#include "runtime/partition.hpp"
#include "test_util.hpp"

namespace cqs {
namespace {

using core::CompressedStateSimulator;
using core::SimConfig;
using qsim::GateKind;
using qsim::GateOp;
using runtime::Partition;

SimConfig comm_config(int qubits, int ranks, bool remap) {
  SimConfig config;
  config.num_qubits = qubits;
  config.num_ranks = ranks;
  config.blocks_per_rank = 4;
  config.threads = 2;
  config.enable_qubit_remap = remap;
  // Fusion would fold prelude X gates into the H ladder and change how
  // many rank-target sweeps run; the reference walk below models the
  // unfused circuit, so pin it off.
  config.enable_fusion_prepass = false;
  // Cache hits skip the exchange inside process_pair only for same-rank
  // pairs; cross-rank exchanges always happen. Keep the cache off anyway
  // so the counters are a pure function of the circuit.
  config.enable_cache = false;
  return config;
}

/// Paired block exchanges one non-diagonal gate with a rank-segment
/// target costs: the unit enumeration of run_rank_target — ranks with the
/// target bit clear and every control bit set, times the blocks every
/// block-segment control bit allows.
std::uint64_t exchanges_for(const Partition& partition, const GateOp& op) {
  if (qsim::is_diagonal(op.kind)) return 0;
  if (partition.segment_of(op.target) != Partition::Segment::kRank) {
    return 0;
  }
  const int target_bit = partition.local_bit(op.target);
  int rank_ctrl = 0;
  int block_ctrl = 0;
  for (int c : op.controls) {
    if (c < 0) continue;
    switch (partition.segment_of(c)) {
      case Partition::Segment::kRank:
        rank_ctrl |= 1 << partition.local_bit(c);
        break;
      case Partition::Segment::kBlock:
        block_ctrl |= 1 << partition.local_bit(c);
        break;
      case Partition::Segment::kOffset:
        break;  // offset controls filter amplitudes, not units
    }
  }
  std::uint64_t units = 0;
  for (int r = 0; r < partition.num_ranks(); ++r) {
    if ((r >> target_bit) & 1) continue;
    if ((r & rank_ctrl) != rank_ctrl) continue;
    for (int b = 0; b < partition.blocks_per_rank(); ++b) {
      if ((b & block_ctrl) != block_ctrl) continue;
      ++units;
    }
  }
  return units;
}

/// Reference model of the seed (remap-off) path: SWAP expands into three
/// CX legs exactly as apply_impl does; everything else exchanges per its
/// own routing.
std::uint64_t expected_exchanges(const Partition& partition,
                                 const qsim::Circuit& circuit) {
  std::uint64_t total = 0;
  for (const GateOp& op : circuit.ops()) {
    if (op.kind == GateKind::kSwap) {
      const int a = op.target;
      const int b = op.controls[0];
      total += exchanges_for(partition, {GateKind::kCX, b, {a, -1}});
      total += exchanges_for(partition, {GateKind::kCX, a, {b, -1}});
      total += exchanges_for(partition, {GateKind::kCX, b, {a, -1}});
    } else {
      total += exchanges_for(partition, op);
    }
  }
  return total;
}

TEST(CommAccountingTest, QftExchangesMatchTheRoutingModelAcrossRanks) {
  const auto circuit = circuits::qft_circuit({.num_qubits = 10});
  for (int ranks : {1, 2, 4}) {
    CompressedStateSimulator sim(comm_config(10, ranks, /*remap=*/false));
    sim.apply_circuit(circuit);
    const auto report = sim.report();
    const std::uint64_t exchanges =
        expected_exchanges(sim.partition(), circuit);
    // One paired exchange = two messages (Comm::exchange counts both
    // directions of the buffered sendrecv).
    EXPECT_EQ(report.comm_messages, 2 * exchanges) << ranks << " ranks";
    if (ranks == 1) {
      EXPECT_EQ(report.comm_bytes, 0u);
    } else {
      EXPECT_GT(report.comm_bytes, 0u) << ranks << " ranks";
    }
  }
}

TEST(CommAccountingTest, QftCountersReproducibleAcrossRunsAndThreads) {
  const auto circuit = circuits::qft_circuit({.num_qubits = 10});
  for (const bool remap : {false, true}) {
    std::uint64_t reference_bytes = 0;
    std::uint64_t reference_messages = 0;
    bool have_reference = false;
    for (int threads : {1, 2, 4}) {
      for (int rep = 0; rep < 2; ++rep) {
        auto config = comm_config(10, 4, remap);
        config.threads = threads;
        CompressedStateSimulator sim(config);
        sim.apply_circuit(circuit);
        const auto report = sim.report();
        if (!have_reference) {
          reference_bytes = report.comm_bytes;
          reference_messages = report.comm_messages;
          have_reference = true;
        } else {
          EXPECT_EQ(report.comm_bytes, reference_bytes)
              << "remap=" << remap << " threads=" << threads;
          EXPECT_EQ(report.comm_messages, reference_messages)
              << "remap=" << remap << " threads=" << threads;
        }
      }
    }
  }
}

TEST(CommAccountingTest, RemapMessagesAccountedBySweepLedger) {
  // With remapping on, every exchange belongs to either a remap sweep or
  // an in-place rank gate; the planner's ledger and Comm's message
  // counter must agree exactly: 2 messages per block pair per sweep.
  const auto circuit = circuits::qft_circuit({.num_qubits = 10});
  for (int ranks : {2, 4}) {
    CompressedStateSimulator sim(comm_config(10, ranks, /*remap=*/true));
    sim.apply_circuit(circuit);
    const auto report = sim.report();
    const auto& partition = sim.partition();
    const std::uint64_t pairs_per_sweep =
        static_cast<std::uint64_t>(partition.num_ranks() / 2) *
        partition.blocks_per_rank();
    // QFT's in-place rank gates are uncontrolled (H / X prelude), so each
    // pays a full sweep; remap sweeps always run full sweeps.
    EXPECT_EQ(report.comm_messages,
              2 * pairs_per_sweep *
                  (report.remap_sweeps + report.rank_gates_in_place))
        << ranks << " ranks";
  }
}

TEST(CommAccountingTest, ReportSecondsDerivedOnceFromWireNanos) {
  // CommStats.seconds() is a pure read-time function of the atomic
  // nanosecond counter, so the report's comm_seconds is exactly
  // wire_nanos * 1e-9 — never a separately accumulated float that could
  // drift from the counter it mirrors.
  const auto circuit = circuits::qft_circuit({.num_qubits = 10});
  CompressedStateSimulator sim(comm_config(10, 4, /*remap=*/false));
  sim.apply_circuit(circuit);
  const auto comm_stats = sim.comm().stats();
  EXPECT_GT(comm_stats.wire_nanos, 0u);
  EXPECT_DOUBLE_EQ(comm_stats.seconds(),
                   static_cast<double>(comm_stats.wire_nanos) * 1e-9);
  const auto report = sim.report();
  EXPECT_DOUBLE_EQ(report.comm_seconds, comm_stats.seconds());
  // The async call sites decode each unit's own block between begin and
  // wait, so a multi-rank run always banks some overlap time.
  EXPECT_GT(comm_stats.overlap_nanos, 0u);
  EXPECT_GT(report.comm_overlap_utilization, 0.0);
  EXPECT_LE(report.comm_overlap_utilization, 1.0);
}

TEST(CommAccountingTest, RemapNeverExceedsTheSeedPathOnQft) {
  const auto circuit = circuits::qft_circuit({.num_qubits = 10});
  for (int ranks : {2, 4}) {
    CompressedStateSimulator off(comm_config(10, ranks, false));
    CompressedStateSimulator on(comm_config(10, ranks, true));
    off.apply_circuit(circuit);
    on.apply_circuit(circuit);
    EXPECT_LT(on.report().comm_bytes, off.report().comm_bytes)
        << ranks << " ranks";
    EXPECT_LT(on.report().comm_messages, off.report().comm_messages)
        << ranks << " ranks";
    // Same logical result on both layouts.
    CQS_EXPECT_STATES_CLOSE(on.to_raw(), off.to_raw(), 0.0);
  }
}

}  // namespace
}  // namespace cqs
