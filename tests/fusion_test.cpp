// Tests for the single-qubit gate fusion pass and the kU3G decomposition.
#include <gtest/gtest.h>

#include <cmath>

#include "circuits/grover.hpp"
#include "circuits/supremacy.hpp"
#include "common/rng.hpp"
#include "qsim/fusion.hpp"
#include "qsim/state_vector.hpp"

namespace cqs::qsim {
namespace {

/// Exact state equality (not just fidelity): kU3G carries global phase.
void expect_states_equal(const StateVector& a, const StateVector& b,
                         double tol = 1e-10) {
  ASSERT_EQ(a.size(), b.size());
  for (std::uint64_t i = 0; i < a.size(); ++i) {
    ASSERT_NEAR(std::abs(a.amplitude(i) - b.amplitude(i)), 0.0, tol)
        << "index " << i;
  }
}

TEST(DecomposeUnitaryTest, ReconstructsArbitraryUnitaries) {
  Rng rng(3);
  for (int trial = 0; trial < 200; ++trial) {
    // Random unitary from random U3G parameters.
    const GateOp source{GateKind::kU3G,
                        0,
                        {-1, -1},
                        {rng.next_double() * 3.14, rng.next_double() * 6.28,
                         rng.next_double() * 6.28 - 3.14,
                         rng.next_double() * 6.28 - 3.14}};
    const Mat2 m = gate_matrix(source);
    ASSERT_TRUE(m.approx_unitary());
    const GateOp decomposed = decompose_unitary(m, 0);
    const Mat2 m2 = gate_matrix(decomposed);
    EXPECT_NEAR(std::abs(m.u00 - m2.u00), 0.0, 1e-10);
    EXPECT_NEAR(std::abs(m.u01 - m2.u01), 0.0, 1e-10);
    EXPECT_NEAR(std::abs(m.u10 - m2.u10), 0.0, 1e-10);
    EXPECT_NEAR(std::abs(m.u11 - m2.u11), 0.0, 1e-10);
  }
}

TEST(DecomposeUnitaryTest, HandlesThetaPiEdge) {
  // X-like gates: u00 = 0.
  for (auto kind : {GateKind::kX, GateKind::kY}) {
    const Mat2 m = gate_matrix({kind, 0});
    const Mat2 m2 = gate_matrix(decompose_unitary(m, 0));
    EXPECT_NEAR(std::abs(m.u01 - m2.u01), 0.0, 1e-12) << gate_name(kind);
    EXPECT_NEAR(std::abs(m.u10 - m2.u10), 0.0, 1e-12);
  }
}

TEST(FusionTest, FusedCircuitGivesIdenticalState) {
  Rng rng(11);
  Circuit c(6);
  for (int i = 0; i < 300; ++i) {
    const int q = static_cast<int>(rng.next_below(6));
    switch (rng.next_below(7)) {
      case 0: c.h(q); break;
      case 1: c.t(q); break;
      case 2: c.rx(q, rng.next_double()); break;
      case 3: c.rz(q, rng.next_double()); break;
      case 4: c.sx(q); break;
      case 5: {
        const int p = static_cast<int>(rng.next_below(6));
        if (p != q) c.cx(p, q);
        break;
      }
      case 6: {
        const int p = static_cast<int>(rng.next_below(6));
        if (p != q) c.swap(p, q);
        break;
      }
    }
  }
  FusionStats stats;
  const Circuit fused = fuse_single_qubit_gates(c, &stats);
  EXPECT_LT(stats.gates_after, stats.gates_before);
  EXPECT_GT(stats.fused_runs, 0u);

  StateVector a(6);
  StateVector b(6);
  a.apply_circuit(c);
  b.apply_circuit(fused);
  expect_states_equal(a, b);
}

TEST(FusionTest, RunsOfHadamardsCollapseToOne) {
  Circuit c(2);
  c.h(0).h(0).h(0).t(0).t(0).h(1);
  FusionStats stats;
  const Circuit fused = fuse_single_qubit_gates(c, &stats);
  // 5 ops on qubit 0 fuse to 1, the single H on qubit 1 stays.
  EXPECT_EQ(fused.size(), 2u);
  EXPECT_EQ(stats.fused_runs, 1u);
}

TEST(FusionTest, ControlledGatesBreakRuns) {
  Circuit c(2);
  c.h(0).cx(0, 1).h(0);
  const Circuit fused = fuse_single_qubit_gates(c);
  EXPECT_EQ(fused.size(), 3u);  // nothing fusable across the CX
  StateVector a(2);
  StateVector b(2);
  a.apply_circuit(c);
  b.apply_circuit(fused);
  expect_states_equal(a, b);
}

TEST(FusionTest, SingleGateRunsKeepOriginalKind) {
  Circuit c(2);
  c.rz(0, 0.5).cx(0, 1);
  const Circuit fused = fuse_single_qubit_gates(c);
  ASSERT_EQ(fused.size(), 2u);
  // Length-1 run keeps its diagonal classification (cheap routing in the
  // compressed simulator).
  EXPECT_EQ(fused.ops()[0].kind, GateKind::kRz);
}

TEST(FusionTest, GroverOracleFramesFuse) {
  const auto c = circuits::grover_circuit(
      {.data_qubits = 8, .marked_state = 0x0f});
  FusionStats stats;
  const Circuit fused = fuse_single_qubit_gates(c, &stats);
  // The diffusion operator's H-X runs fuse.
  EXPECT_LT(stats.gates_after, stats.gates_before);
  StateVector a(c.num_qubits());
  StateVector b(c.num_qubits());
  a.apply_circuit(c);
  b.apply_circuit(fused);
  expect_states_equal(a, b);
}

TEST(FusionTest, SupremacyCircuitEquivalence) {
  const auto c =
      circuits::supremacy_circuit({.rows = 3, .cols = 3, .depth = 14});
  const Circuit fused = fuse_single_qubit_gates(c);
  StateVector a(9);
  StateVector b(9);
  a.apply_circuit(c);
  b.apply_circuit(fused);
  expect_states_equal(a, b);
}

}  // namespace
}  // namespace cqs::qsim
