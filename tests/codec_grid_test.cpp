// Wide property grid: every lossy codec x input shape x size, checking
// round-trip integrity and bound compliance on structured inputs that
// stress different codec stages (runs for LZ, ramps for prediction,
// palettes for the cache-ability claim, spiky data for the transform
// baselines, mixed magnitudes for exponent handling).
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <tuple>
#include <vector>

#include "common/rng.hpp"
#include "compression/compressor.hpp"
#include "compression/verify.hpp"
#include "sz/fast_log.hpp"
#include "sz/sz.hpp"

namespace cqs::compression {
namespace {

enum class Shape {
  kConstant,
  kRamp,
  kPalette,
  kSpiky,
  kMixedMagnitude,
  kAlternatingSign,
};

const char* shape_name(Shape s) {
  switch (s) {
    case Shape::kConstant: return "constant";
    case Shape::kRamp: return "ramp";
    case Shape::kPalette: return "palette";
    case Shape::kSpiky: return "spiky";
    case Shape::kMixedMagnitude: return "mixed";
    case Shape::kAlternatingSign: return "altsign";
  }
  return "?";
}

std::vector<double> make_shape(Shape shape, std::size_t n) {
  Rng rng(static_cast<std::uint64_t>(shape) * 977 + n);
  std::vector<double> data(n);
  switch (shape) {
    case Shape::kConstant:
      for (auto& d : data) d = 0.123456789;
      break;
    case Shape::kRamp:
      for (std::size_t i = 0; i < n; ++i) {
        data[i] = 1.0 + 1e-7 * static_cast<double>(i);
      }
      break;
    case Shape::kPalette: {
      const double palette[4] = {0.25, -0.25, 0.70710678, 0.0};
      for (auto& d : data) d = palette[rng.next_below(4)];
      break;
    }
    case Shape::kSpiky:
      for (auto& d : data) {
        d = (rng.next_bool() ? 1.0 : -1.0) *
            std::exp2(-30.0 * rng.next_double());
      }
      break;
    case Shape::kMixedMagnitude:
      for (std::size_t i = 0; i < n; ++i) {
        data[i] = (i % 2 ? 1e12 : 1e-12) * (1.0 + rng.next_double());
      }
      break;
    case Shape::kAlternatingSign:
      for (std::size_t i = 0; i < n; ++i) {
        data[i] = (i % 2 ? -1.0 : 1.0) * (0.5 + 0.01 * rng.next_double());
      }
      break;
  }
  return data;
}

using GridParam = std::tuple<std::string, int /*Shape*/, std::size_t>;

class CodecGridTest : public ::testing::TestWithParam<GridParam> {};

TEST_P(CodecGridTest, RoundTripWithinBound) {
  const auto& [name, shape_int, size] = GetParam();
  const auto shape = static_cast<Shape>(shape_int);
  const auto codec = make_compressor(name);
  const auto data = make_shape(shape, size);
  const double eps = 1e-4;
  const Bytes compressed = codec->compress(data, ErrorBound::relative(eps));
  ASSERT_EQ(codec->element_count(compressed), data.size());
  std::vector<double> out(data.size());
  codec->decompress(compressed, out);
  const auto report = measure_error(data, out);
  EXPECT_LE(report.max_pointwise_relative, eps * (1.0 + 1e-12))
      << name << "/" << shape_name(shape) << "/" << size;
  for (std::size_t i = 0; i < data.size(); ++i) {
    if (data[i] == 0.0) {
      ASSERT_EQ(out[i], 0.0) << name << " zero at " << i;
    }
  }
}

std::vector<GridParam> grid() {
  std::vector<GridParam> params;
  for (const auto& codec :
       {"sz", "sz-complex", "qzc", "qzc-shuffle", "zfp", "fpzip",
        "zfp-rans"}) {
    for (int shape = 0; shape <= 5; ++shape) {
      for (std::size_t size : {std::size_t{1}, std::size_t{7},
                               std::size_t{64}, std::size_t{4096}}) {
        params.emplace_back(codec, shape, size);
      }
    }
  }
  return params;
}

INSTANTIATE_TEST_SUITE_P(
    Everything, CodecGridTest, ::testing::ValuesIn(grid()),
    [](const ::testing::TestParamInfo<GridParam>& info) {
      std::string name = std::get<0>(info.param);
      for (auto& ch : name) {
        if (ch == '-') ch = '_';
      }
      return name + "_" +
             shape_name(static_cast<Shape>(std::get<1>(info.param))) + "_" +
             std::to_string(std::get<2>(info.param));
    });

TEST(FastLogTest, MatchesLibmWithinStatedError) {
  Rng rng(55);
  for (int i = 0; i < 200000; ++i) {
    const double d =
        std::ldexp(1.0 + rng.next_double(),
                   static_cast<int>(rng.next_below(600)) - 300) *
        (rng.next_bool() ? 1.0 : -1.0);
    const double fast = sz::fast_log2_abs(d);
    const double exact = std::log2(std::abs(d));
    ASSERT_NEAR(fast, exact, sz::kFastLog2MaxError) << d;
  }
}

TEST(FastLogTest, DenormalsFallBack) {
  for (double d : {5e-324, 1e-310, -3e-315}) {
    EXPECT_DOUBLE_EQ(sz::fast_log2_abs(d), std::log2(std::abs(d)));
  }
}

TEST(FastLogTest, ExactPowersOfTwo) {
  for (int e = -100; e <= 100; e += 7) {
    EXPECT_NEAR(sz::fast_log2_abs(std::ldexp(1.0, e)),
                static_cast<double>(e), sz::kFastLog2MaxError);
  }
}

TEST(SzFastLogModeTest, FastAndExactModesBothRespectBound) {
  Rng rng(66);
  std::vector<double> data(8192);
  for (auto& d : data) d = rng.next_normal();
  for (bool fast : {true, false}) {
    sz::SzCodec codec({.fast_log = fast});
    const auto compressed =
        codec.compress(data, ErrorBound::relative(1e-5));
    std::vector<double> out(data.size());
    codec.decompress(compressed, out);
    EXPECT_LE(measure_error(data, out).max_pointwise_relative,
              1e-5 * (1 + 1e-12))
        << "fast_log=" << fast;
  }
}

}  // namespace
}  // namespace cqs::compression
