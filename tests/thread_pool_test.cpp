// ThreadPool and StageChannel contracts the pipeline leans on: every index
// runs exactly once under any worker count, worker ids are dense and in
// range, exceptions propagate to the caller (instead of terminating),
// nested parallel_for runs inline, and the bounded channel's
// close/drain/stall semantics hold under contention.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstddef>
#include <mutex>
#include <optional>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "common/thread_pool.hpp"

namespace cqs {
namespace {

TEST(ThreadPoolTest, EveryIndexRunsExactlyOnce) {
  for (const std::size_t threads : {1u, 2u, 8u}) {
    ThreadPool pool(threads);
    EXPECT_EQ(pool.size(), threads);
    for (const std::size_t count : {0u, 1u, 7u, 64u, 1000u}) {
      std::vector<std::atomic<int>> hits(count);
      pool.parallel_for(count, [&](std::size_t i, std::size_t worker) {
        EXPECT_LT(worker, threads);
        hits[i].fetch_add(1, std::memory_order_relaxed);
      });
      for (std::size_t i = 0; i < count; ++i) {
        EXPECT_EQ(hits[i].load(), 1) << "threads=" << threads << " i=" << i;
      }
    }
  }
}

TEST(ThreadPoolTest, ExceptionPropagatesToCallerAndPoolSurvives) {
  ThreadPool pool(4);
  std::atomic<int> executed{0};
  EXPECT_THROW(
      pool.parallel_for(100,
                        [&](std::size_t i, std::size_t) {
                          ++executed;
                          if (i == 37) {
                            throw std::runtime_error("iteration 37 failed");
                          }
                        }),
      std::runtime_error);
  // Other claimed iterations still ran; only the thrower's chunk tail is
  // skipped, so most of the range executed.
  EXPECT_GT(executed.load(), 0);

  // The pool must be fully reusable after a failed job.
  std::atomic<int> after{0};
  pool.parallel_for(50, [&](std::size_t, std::size_t) { ++after; });
  EXPECT_EQ(after.load(), 50);
}

TEST(ThreadPoolTest, FirstOfManyExceptionsWins) {
  ThreadPool pool(4);
  // Every iteration throws; exactly one exception reaches the caller and
  // the job still drains (no hang, no terminate).
  EXPECT_THROW(pool.parallel_for(64,
                                 [&](std::size_t i, std::size_t) {
                                   throw std::runtime_error(
                                       "fail " + std::to_string(i));
                                 }),
               std::runtime_error);
}

TEST(ThreadPoolTest, NestedParallelForRunsInlineOnWorker) {
  ThreadPool pool(4);
  std::atomic<int> inner_total{0};
  pool.parallel_for(8, [&](std::size_t, std::size_t outer_worker) {
    // Reentrant call from a worker thread: must run inline (serially,
    // same worker id) instead of deadlocking on the shared job slot.
    pool.parallel_for(16, [&](std::size_t, std::size_t inner_worker) {
      EXPECT_EQ(inner_worker, outer_worker);
      inner_total.fetch_add(1, std::memory_order_relaxed);
    });
  });
  EXPECT_EQ(inner_total.load(), 8 * 16);
}

TEST(ThreadPoolTest, NestedExceptionPropagatesThroughBothLevels) {
  ThreadPool pool(2);
  EXPECT_THROW(
      pool.parallel_for(4,
                        [&](std::size_t, std::size_t) {
                          pool.parallel_for(4, [&](std::size_t j,
                                                   std::size_t) {
                            if (j == 2) throw std::runtime_error("inner");
                          });
                        }),
      std::runtime_error);
  std::atomic<int> after{0};
  pool.parallel_for(10, [&](std::size_t, std::size_t) { ++after; });
  EXPECT_EQ(after.load(), 10);
}

TEST(StageChannelTest, FifoOrderAndCapacity) {
  StageChannel<int> channel(3);
  EXPECT_EQ(channel.capacity(), 3u);
  EXPECT_TRUE(channel.push(1));
  EXPECT_TRUE(channel.push(2));
  EXPECT_TRUE(channel.push(3));
  int out = 0;
  EXPECT_TRUE(channel.try_pop(out));
  EXPECT_EQ(out, 1);
  EXPECT_TRUE(channel.try_pop(out));
  EXPECT_EQ(out, 2);
  EXPECT_TRUE(channel.try_pop(out));
  EXPECT_EQ(out, 3);
  EXPECT_FALSE(channel.try_pop(out));
  // Zero capacity is clamped to one so a lone producer can always hand off.
  StageChannel<int> tiny(0);
  EXPECT_EQ(tiny.capacity(), 1u);
}

TEST(StageChannelTest, PopReportsWhetherItSlept) {
  StageChannel<int> channel(2);
  ASSERT_TRUE(channel.push(7));
  bool waited = true;
  auto item = channel.pop(&waited);
  ASSERT_TRUE(item.has_value());
  EXPECT_EQ(*item, 7);
  EXPECT_FALSE(waited);  // an item was ready: no stall

  std::thread producer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    channel.push(8);
  });
  item = channel.pop(&waited);
  producer.join();
  ASSERT_TRUE(item.has_value());
  EXPECT_EQ(*item, 8);
  EXPECT_TRUE(waited);  // the consumer arrived first: that is a stall
}

TEST(StageChannelTest, CloseDrainsThenStops) {
  StageChannel<int> channel(4);
  ASSERT_TRUE(channel.push(1));
  ASSERT_TRUE(channel.push(2));
  channel.close();
  EXPECT_TRUE(channel.closed());
  EXPECT_FALSE(channel.push(3));  // pending pushes fail after close
  auto a = channel.pop();
  auto b = channel.pop();
  auto end = channel.pop();
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(*a, 1);
  EXPECT_EQ(*b, 2);
  EXPECT_FALSE(end.has_value());  // closed and drained
}

TEST(StageChannelTest, CloseWakesBlockedConsumers) {
  StageChannel<int> channel(1);
  std::atomic<int> finished{0};
  std::vector<std::thread> consumers;
  for (int i = 0; i < 3; ++i) {
    consumers.emplace_back([&] {
      while (channel.pop().has_value()) {
      }
      ++finished;
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  channel.close();
  for (auto& t : consumers) t.join();
  EXPECT_EQ(finished.load(), 3);
}

TEST(StageChannelTest, CloseWakesBlockedProducer) {
  StageChannel<int> channel(1);
  ASSERT_TRUE(channel.push(1));  // channel now full
  std::atomic<bool> second_push_result{true};
  std::thread producer([&] {
    second_push_result = channel.push(2);  // blocks until close
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  channel.close();
  producer.join();
  EXPECT_FALSE(second_push_result.load());
}

TEST(StageChannelTest, ManyProducersManyConsumersDeliverEverythingOnce) {
  StageChannel<int> channel(4);
  constexpr int kProducers = 4;
  constexpr int kItemsEach = 250;
  std::atomic<int> produced{0};
  std::vector<std::thread> workers;
  for (int p = 0; p < kProducers; ++p) {
    workers.emplace_back([&, p] {
      for (int i = 0; i < kItemsEach; ++i) {
        ASSERT_TRUE(channel.push(p * kItemsEach + i));
        ++produced;
      }
    });
  }
  std::mutex seen_mutex;
  std::set<int> seen;
  std::vector<std::thread> consumers;
  for (int c = 0; c < 3; ++c) {
    consumers.emplace_back([&] {
      while (auto item = channel.pop()) {
        std::lock_guard lock(seen_mutex);
        EXPECT_TRUE(seen.insert(*item).second) << "duplicate " << *item;
      }
    });
  }
  for (auto& t : workers) t.join();
  channel.close();
  for (auto& t : consumers) t.join();
  EXPECT_EQ(produced.load(), kProducers * kItemsEach);
  EXPECT_EQ(seen.size(),
            static_cast<std::size_t>(kProducers * kItemsEach));
}

}  // namespace
}  // namespace cqs
