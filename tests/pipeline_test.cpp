// Differential suite for the overlapped block pipeline: every circuit
// family x rank layout x thread count x scheduler mode x codec policy must
// produce a state bit-identical to the sequential (pipeline-off) path.
// The pipeline only changes which worker touches a block and which buffer
// it is decoded into — never the arithmetic — so tol = 0 throughout.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <thread>
#include <vector>

#include "circuits/grover.hpp"
#include "circuits/phase_estimation.hpp"
#include "circuits/qaoa.hpp"
#include "circuits/qft.hpp"
#include "circuits/supremacy.hpp"
#include "core/simulator.hpp"
#include "qsim/circuit.hpp"
#include "test_util.hpp"

namespace cqs {
namespace {

struct NamedCircuit {
  std::string name;
  qsim::Circuit circuit;
};

/// The five paper workloads at differential-suite scale (small enough to
/// sweep the full matrix, large enough that every routing path fires).
std::vector<NamedCircuit> workloads() {
  std::vector<NamedCircuit> all;
  all.push_back({"qft", circuits::qft_circuit({.num_qubits = 10})});
  all.push_back({"grover",
                 circuits::grover_circuit({.data_qubits = 4,
                                           .marked_state = 9,
                                           .iterations = 2})});
  all.push_back({"qaoa", circuits::qaoa_maxcut_circuit({.num_qubits = 10})});
  all.push_back({"phase-estimation",
                 circuits::phase_estimation_circuit(
                     {.counting_qubits = 8, .phase = 0.3125})});
  all.push_back({"supremacy",
                 circuits::supremacy_circuit(
                     {.rows = 3, .cols = 3, .depth = 5})});
  return all;
}

core::SimConfig base_config(int num_qubits, int num_ranks) {
  core::SimConfig config;
  config.num_qubits = num_qubits;
  config.num_ranks = num_ranks;
  // Keep >= 4 blocks per rank so the pipeline always has units to overlap.
  config.blocks_per_rank = std::max(4, 32 / num_ranks);
  return config;
}

std::vector<int> thread_counts() {
  const int hw = static_cast<int>(
      std::max(2u, std::thread::hardware_concurrency()));
  std::vector<int> counts = {1, 2, hw};
  counts.erase(std::unique(counts.begin(), counts.end()), counts.end());
  return counts;
}

TEST(PipelineTest, DifferentialMatrixBitIdenticalToSequential) {
  // circuits x ranks {1,2,4} x threads {1,2,hw} x {batched, per-gate} x
  // {fixed, adaptive}: pipeline-on == pipeline-off, tol = 0. The reference
  // is computed once per (circuit, ranks, batching, policy) at 1 thread —
  // the sequential path is already pinned thread-count-invariant by the
  // concurrency suite.
  for (const auto& [name, circuit] : workloads()) {
    for (int ranks : {1, 2, 4}) {
      for (bool batched : {true, false}) {
        for (const std::string policy : {"fixed", "adaptive"}) {
          core::SimConfig off = base_config(circuit.num_qubits(), ranks);
          off.enable_pipeline = false;
          off.enable_run_batching = batched;
          off.codec_policy = policy;
          off.threads = 1;
          off.initial_level = 2;  // lossy: identity must still hold
          core::CompressedStateSimulator reference_sim(off);
          reference_sim.apply_circuit(circuit);
          const auto reference = reference_sim.to_raw();

          for (int threads : thread_counts()) {
            core::SimConfig on = off;
            on.enable_pipeline = true;
            on.threads = threads;
            core::CompressedStateSimulator sim(on);
            sim.apply_circuit(circuit);
            CQS_EXPECT_STATES_CLOSE(sim.to_raw(), reference, 0.0)
                << name << " ranks=" << ranks << " batched=" << batched
                << " policy=" << policy << " threads=" << threads;
          }
        }
      }
    }
  }
}

TEST(PipelineTest, RandomizedFuzzPipelineOnOffBitIdentical) {
  // Randomized circuits over all three partition segments (the PR 5 fuzz
  // harness shape): pipeline-on at >= 2 workers must match pipeline-off
  // bit-for-bit, including at a lossy level under the adaptive arbiter.
  const int hw = static_cast<int>(
      std::max(2u, std::thread::hardware_concurrency()));
  for (const std::string policy : {"fixed", "adaptive"}) {
    for (std::uint64_t seed : {5u, 17u, 29u}) {
      const auto circuit = test::random_circuit(11, 90, seed);
      core::SimConfig off;
      off.num_qubits = 11;
      off.num_ranks = 2;
      off.blocks_per_rank = 8;
      off.threads = 1;
      off.enable_pipeline = false;
      off.initial_level = 2;
      off.codec_policy = policy;
      core::CompressedStateSimulator reference_sim(off);
      reference_sim.apply_circuit(circuit);
      const auto reference = reference_sim.to_raw();

      for (int threads : {2, hw}) {
        core::SimConfig on = off;
        on.enable_pipeline = true;
        on.threads = threads;
        core::CompressedStateSimulator sim(on);
        sim.apply_circuit(circuit);
        CQS_EXPECT_STATES_CLOSE(sim.to_raw(), reference, 0.0)
            << "policy " << policy << " seed " << seed << " threads "
            << threads;
      }
    }
  }
}

TEST(PipelineTest, DepthSweepBitIdenticalWithSaneReportCounters) {
  // Every pipeline depth is the same arithmetic with a different number of
  // in-flight staging buffers; the report counters must stay coherent:
  // prefetched <= blocks, utilization in [0, 1], and the configured depth
  // echoed back.
  const auto circuit = test::random_circuit(10, 60, 41);
  core::SimConfig off;
  off.num_qubits = 10;
  off.num_ranks = 2;
  off.blocks_per_rank = 8;
  off.threads = 1;
  off.enable_pipeline = false;
  core::CompressedStateSimulator reference_sim(off);
  reference_sim.apply_circuit(circuit);
  const auto reference = reference_sim.to_raw();

  for (int depth : {1, 2, 4, 8}) {
    core::SimConfig on = off;
    on.enable_pipeline = true;
    on.pipeline_depth = depth;
    on.threads = 2;
    core::CompressedStateSimulator sim(on);
    sim.apply_circuit(circuit);
    CQS_EXPECT_STATES_CLOSE(sim.to_raw(), reference, 0.0)
        << "depth " << depth;
    const auto report = sim.report();
    EXPECT_TRUE(report.pipeline_enabled) << "depth " << depth;
    EXPECT_EQ(report.pipeline_depth, depth);
    EXPECT_GT(report.pipeline_blocks, 0u) << "depth " << depth;
    EXPECT_LE(report.pipeline_prefetched, report.pipeline_blocks);
    EXPECT_GE(report.stage_overlap_utilization(), 0.0);
    EXPECT_LE(report.stage_overlap_utilization(), 1.0);
    EXPECT_FALSE(report.simd_kernel.empty());
  }
}

TEST(PipelineTest, PipelineChargedToMemoryModelScratch) {
  // Each staging buffer is one block buffer of scratch: the Eq. 8 charge
  // must grow with pipeline_depth and vanish when the pipeline is off.
  auto scratch_bytes = [](bool pipeline, int depth) {
    core::SimConfig config;
    config.num_qubits = 10;
    config.num_ranks = 2;
    config.blocks_per_rank = 8;
    config.threads = 2;
    config.enable_pipeline = pipeline;
    config.pipeline_depth = depth;
    core::CompressedStateSimulator sim(config);
    return sim.report().scratch_bytes;
  };
  const auto off = scratch_bytes(false, 2);
  const auto depth2 = scratch_bytes(true, 2);
  const auto depth4 = scratch_bytes(true, 4);
  EXPECT_GT(depth2, off);
  EXPECT_GT(depth4, depth2);
  // Exactly one block buffer per extra staging slot.
  const std::size_t block_bytes =
      (std::size_t{1} << 10) / 2 / 8 * 2 * sizeof(double);
  EXPECT_EQ(depth4 - depth2, 2 * block_bytes);
}

TEST(PipelineTest, SequentialFallbacksNeverEngagePipeline) {
  // One worker thread (or the knob off) must take the sequential path:
  // pipeline_enabled false and every pipeline counter zero.
  const auto circuit = circuits::qft_circuit({.num_qubits = 9});
  for (const bool knob_on : {true, false}) {
    core::SimConfig config;
    config.num_qubits = 9;
    config.num_ranks = 2;
    config.blocks_per_rank = 4;
    config.threads = knob_on ? 1 : 2;  // off via 1 worker vs via the knob
    config.enable_pipeline = knob_on;
    core::CompressedStateSimulator sim(config);
    sim.apply_circuit(circuit);
    const auto report = sim.report();
    EXPECT_FALSE(report.pipeline_enabled) << "knob_on=" << knob_on;
    EXPECT_EQ(report.pipeline_blocks, 0u) << "knob_on=" << knob_on;
    EXPECT_EQ(report.pipeline_prefetched, 0u);
    EXPECT_EQ(report.pipeline_stalls, 0u);
    EXPECT_EQ(report.stage_overlap_utilization(), 0.0);
  }
}

TEST(PipelineTest, PipelineCountersTrackUnitsAtTwoWorkers) {
  // With >= 2 workers and enough blocks, the pipelined executor carries
  // the per-gate block units; the counter must cover them (cache hits are
  // completed before staging, so blocks <= total units, > 0 always).
  const auto circuit = test::random_circuit(10, 40, 13);
  core::SimConfig config;
  config.num_qubits = 10;
  config.num_ranks = 2;
  config.blocks_per_rank = 8;
  config.threads = 2;
  config.enable_cache = false;  // every unit goes through the pipeline
  core::CompressedStateSimulator sim(config);
  sim.apply_circuit(circuit);
  const auto report = sim.report();
  EXPECT_TRUE(report.pipeline_enabled);
  EXPECT_GT(report.pipeline_blocks, 0u);
  EXPECT_LE(report.pipeline_prefetched, report.pipeline_blocks);
}

}  // namespace
}  // namespace cqs
