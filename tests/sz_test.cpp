// Unit tests specific to the SZ-like codec (Solutions A/B): absolute-bound
// mode, outlier handling, complex-split prediction, and bin configuration.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.hpp"
#include "compression/verify.hpp"
#include "sz/sz.hpp"

namespace cqs::sz {
namespace {

using compression::BoundMode;
using compression::ErrorBound;
using compression::measure_error;

std::vector<double> smooth_signal(std::size_t n) {
  std::vector<double> data(n);
  for (std::size_t i = 0; i < n; ++i) {
    data[i] = std::sin(0.01 * static_cast<double>(i)) +
              0.2 * std::cos(0.05 * static_cast<double>(i));
  }
  return data;
}

TEST(SzTest, AbsoluteBoundRespected) {
  SzCodec codec;
  const auto data = smooth_signal(10000);
  for (double bound : {1e-2, 1e-4, 1e-6}) {
    const auto compressed = codec.compress(data, ErrorBound::absolute(bound));
    std::vector<double> out(data.size());
    codec.decompress(compressed, out);
    EXPECT_LE(measure_error(data, out).max_absolute, bound * (1 + 1e-12));
  }
}

TEST(SzTest, SmoothDataCompressesWell) {
  SzCodec codec;
  const auto data = smooth_signal(100000);
  const auto compressed = codec.compress(data, ErrorBound::absolute(1e-4));
  const double ratio =
      static_cast<double>(data.size() * sizeof(double)) /
      static_cast<double>(compressed.size());
  // Lorenzo prediction on smooth data: expect strong compression.
  EXPECT_GT(ratio, 10.0);
}

TEST(SzTest, SpikyDataStillRoundTripsWithinBound) {
  Rng rng(41);
  std::vector<double> data(20000);
  for (auto& d : data) {
    d = (rng.next_bool() ? 1.0 : -1.0) * std::exp2(-30.0 * rng.next_double());
  }
  SzCodec codec;
  const auto compressed = codec.compress(data, ErrorBound::relative(1e-3));
  std::vector<double> out(data.size());
  codec.decompress(compressed, out);
  EXPECT_LE(measure_error(data, out).max_pointwise_relative, 1e-3 * (1 + 1e-12));
}

TEST(SzTest, OutliersStoredVerbatimUnderAbsoluteBound) {
  // Huge jumps defeat the predictor; those points must come back exactly.
  std::vector<double> data(1000, 0.0);
  data[10] = 1e30;
  data[500] = -1e30;
  data[999] = 1e-30;
  SzCodec codec;
  const auto compressed = codec.compress(data, ErrorBound::absolute(1e-6));
  std::vector<double> out(data.size());
  codec.decompress(compressed, out);
  EXPECT_EQ(out[10], 1e30);
  EXPECT_EQ(out[500], -1e30);
}

TEST(SzTest, ComplexSplitPredictsInterleavedStreams) {
  // Real parts follow one smooth trajectory, imaginary parts another with a
  // very different offset: split prediction should beat joint prediction.
  std::vector<double> data(40000);
  for (std::size_t i = 0; i < data.size(); i += 2) {
    const double t = 0.001 * static_cast<double>(i);
    data[i] = std::sin(t);
    data[i + 1] = 100.0 + std::cos(t);
  }
  SzCodec solution_a;
  SzCodec solution_b({.complex_split = true, .max_bins = 16384});
  const auto bound = ErrorBound::absolute(1e-6);
  const auto a = solution_a.compress(data, bound);
  const auto b = solution_b.compress(data, bound);
  EXPECT_LT(b.size(), a.size());
  std::vector<double> out(data.size());
  solution_b.decompress(b, out);
  EXPECT_LE(measure_error(data, out).max_absolute, 1e-6 * (1 + 1e-12));
}

TEST(SzTest, SolutionBUsesSmallerBinCount) {
  SzCodec b({.complex_split = true, .max_bins = 16384});
  EXPECT_EQ(b.config().max_bins, 16384u);
  EXPECT_EQ(b.name(), "sz-complex");
}

TEST(SzTest, NonPositiveBoundRejected) {
  SzCodec codec;
  std::vector<double> data(8, 1.0);
  EXPECT_THROW(codec.compress(data, ErrorBound::absolute(0.0)),
               std::invalid_argument);
  EXPECT_THROW(codec.compress(data, ErrorBound::lossless()),
               std::invalid_argument);
}

TEST(SzTest, WrongOutputSizeRejected) {
  SzCodec codec;
  std::vector<double> data(128, 0.5);
  const auto compressed = codec.compress(data, ErrorBound::absolute(1e-3));
  std::vector<double> too_small(64);
  EXPECT_THROW(codec.decompress(compressed, too_small), std::runtime_error);
}

TEST(SzTest, SingleElementAndTinyInputs) {
  SzCodec codec;
  for (std::size_t n : {1u, 2u, 3u, 5u}) {
    std::vector<double> data(n, 0.75);
    const auto compressed = codec.compress(data, ErrorBound::relative(1e-4));
    std::vector<double> out(n);
    codec.decompress(compressed, out);
    for (double v : out) EXPECT_NEAR(v, 0.75, 0.75 * 1e-4);
  }
}

TEST(SzTest, NegativeValuesKeepSign) {
  std::vector<double> data = {-1.0, -0.5, -0.25, 0.25, 0.5, 1.0};
  SzCodec codec;
  const auto compressed = codec.compress(data, ErrorBound::relative(1e-4));
  std::vector<double> out(data.size());
  codec.decompress(compressed, out);
  for (std::size_t i = 0; i < data.size(); ++i) {
    EXPECT_EQ(std::signbit(out[i]), std::signbit(data[i]));
  }
}

}  // namespace
}  // namespace cqs::sz
