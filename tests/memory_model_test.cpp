// Tests for the paper's memory arithmetic (Table 1 and Section 5.5).
#include <gtest/gtest.h>

#include "core/fidelity.hpp"
#include "core/memory_model.hpp"

namespace cqs::core {
namespace {

TEST(MemoryModelTest, RequirementIsTwoToNPlusFour) {
  EXPECT_EQ(memory_required_bytes(0), 16u);             // one amplitude
  EXPECT_EQ(memory_required_bytes(10), 1u << 14);
  EXPECT_EQ(memory_required_bytes(45), 1ull << 49);     // 0.5 PB (paper)
  EXPECT_EQ(memory_required_bytes(47), 1ull << 51);     // 2 PB (Grover 47)
  EXPECT_THROW(memory_required_bytes(60), std::invalid_argument);
}

TEST(MemoryModelTest, Table1MaxQubits) {
  // The paper's Table 1: Summit 2.8 PB -> 47, Sierra 1.38 PB -> 46,
  // Sunway 1.31 PB -> 46, Theta 0.8 PB -> 45.
  const auto rows = table1_machines();
  ASSERT_EQ(rows.size(), 4u);
  EXPECT_EQ(rows[0].name, "Summit");
  EXPECT_EQ(rows[0].max_qubits, 47);
  EXPECT_EQ(rows[1].max_qubits, 46);
  EXPECT_EQ(rows[2].max_qubits, 46);
  EXPECT_EQ(rows[3].name, "Theta");
  EXPECT_EQ(rows[3].max_qubits, 45);
}

TEST(MemoryModelTest, CompressionExtendsQubits) {
  // Section 5.5: ratios of 4.85x..21x add 2..4 qubits; the Grover ratio
  // of ~7e4 adds 16 qubits (61 on Theta).
  const std::uint64_t theta = static_cast<std::uint64_t>(0.8e15);
  EXPECT_EQ(max_qubits_for_memory(theta), 45);
  EXPECT_EQ(max_qubits_with_compression(theta, 4.85), 47);
  EXPECT_EQ(max_qubits_with_compression(theta, 21.34), 49);
  EXPECT_EQ(max_qubits_with_compression(theta, 7.39e4), 61);
  EXPECT_THROW(max_qubits_with_compression(theta, 0.5),
               std::invalid_argument);
}

TEST(MemoryModelTest, SummitProjection) {
  // Section 5.5: expected maximum simulation size on Summit is 63 qubits
  // for general circuits (with the Grover-class ratio it would be more;
  // the paper quotes 63 using the general-circuit ratios).
  const std::uint64_t summit = static_cast<std::uint64_t>(2.8e15);
  EXPECT_EQ(max_qubits_for_memory(summit), 47);
  EXPECT_GE(max_qubits_with_compression(summit, 7.39e4), 63);
}

TEST(MemoryModelTest, FormatBytes) {
  EXPECT_EQ(format_bytes(512), "512 B");
  EXPECT_EQ(format_bytes(1ull << 20), "1.00 MB");
  EXPECT_EQ(format_bytes(768ull << 40), "768 TB");
}

TEST(FidelityTrackerTest, ProductOfOneMinusDelta) {
  FidelityTracker tracker;
  EXPECT_DOUBLE_EQ(tracker.bound(), 1.0);
  tracker.record_lossy_pass(1e-2);
  tracker.record_lossy_pass(1e-2);
  EXPECT_NEAR(tracker.bound(), 0.99 * 0.99, 1e-12);
  EXPECT_EQ(tracker.lossy_passes(), 2u);
}

TEST(FidelityTrackerTest, Figure6Points) {
  // Figure 6: at 5000 gates, 1e-5 stays ~0.95, 1e-3 drops to ~0.007,
  // 1e-2 and 1e-1 are ~0.
  EXPECT_NEAR(FidelityTracker::bound_after(5000, 1e-5), 0.951, 0.001);
  EXPECT_NEAR(FidelityTracker::bound_after(5000, 1e-4), 0.606, 0.001);
  EXPECT_NEAR(FidelityTracker::bound_after(5000, 1e-3), 0.0067, 0.0005);
  EXPECT_LT(FidelityTracker::bound_after(5000, 1e-2), 1e-20);
  // 310 gates at 1e-5 ~ Table 2's Grover fidelity 0.996-0.997.
  EXPECT_NEAR(FidelityTracker::bound_after(310, 1e-5), 0.9969, 0.0005);
}

}  // namespace
}  // namespace cqs::core
