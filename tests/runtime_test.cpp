// Unit tests for the distributed runtime substrate: partitioning math,
// block store, LRU cache, comm accounting, scratch arena, checkpointing.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "runtime/block_cache.hpp"
#include "runtime/block_store.hpp"
#include "runtime/checkpoint.hpp"
#include "runtime/comm.hpp"
#include "runtime/partition.hpp"
#include "runtime/scratch.hpp"
#include "test_util.hpp"

namespace cqs::runtime {
namespace {

TEST(PartitionTest, SegmentsMatchFigure3) {
  // 10 qubits, 4 ranks, 8 blocks/rank -> offset 5 bits, block 3, rank 2.
  const Partition p = make_partition(10, 4, 8);
  EXPECT_EQ(p.offset_bits, 5);
  EXPECT_EQ(p.block_bits, 3);
  EXPECT_EQ(p.rank_bits, 2);
  EXPECT_EQ(p.amplitudes_per_block(), 32u);
  EXPECT_EQ(p.segment_of(0), Partition::Segment::kOffset);
  EXPECT_EQ(p.segment_of(4), Partition::Segment::kOffset);
  EXPECT_EQ(p.segment_of(5), Partition::Segment::kBlock);
  EXPECT_EQ(p.segment_of(7), Partition::Segment::kBlock);
  EXPECT_EQ(p.segment_of(8), Partition::Segment::kRank);
  EXPECT_EQ(p.segment_of(9), Partition::Segment::kRank);
  EXPECT_EQ(p.local_bit(6), 1);
  EXPECT_EQ(p.local_bit(9), 1);
}

TEST(PartitionTest, GlobalIndexComposition) {
  const Partition p = make_partition(10, 4, 8);
  // rank 2, block 5, offset 9 -> 10 0101 01001.
  EXPECT_EQ(p.global_index(2, 5, 9), (2u << 8) | (5u << 5) | 9u);
}

TEST(PartitionTest, RejectsBadShapes) {
  EXPECT_THROW(make_partition(8, 3, 4), std::invalid_argument);   // not pow2
  EXPECT_THROW(make_partition(8, 4, 3), std::invalid_argument);   // not pow2
  EXPECT_THROW(make_partition(4, 16, 16), std::invalid_argument);  // too small
  EXPECT_NO_THROW(make_partition(8, 4, 8));
}

TEST(BlockStoreTest, TracksTotalBytes) {
  BlockStore store(4);
  EXPECT_EQ(store.total_bytes(), 0u);
  store.set_block(0, Bytes(100), {1});
  store.set_block(1, Bytes(50), {0});
  EXPECT_EQ(store.total_bytes(), 150u);
  store.set_block(0, Bytes(10), {2});
  EXPECT_EQ(store.total_bytes(), 60u);
  EXPECT_EQ(store.meta(0).level, 2);
  EXPECT_THROW(store.set_block(4, Bytes(1), {}), std::out_of_range);
}

TEST(BlockStoreTest, TotalBytesAccountingAcrossReplacements) {
  // Regression coverage for set_block's running total: replace-smaller,
  // replace-larger, and empty payloads must all keep total_bytes exact.
  BlockStore store(3);
  store.set_block(0, Bytes(100), {0});
  store.set_block(1, Bytes(200), {0});
  store.set_block(2, Bytes(300), {0});
  ASSERT_EQ(store.total_bytes(), 600u);

  store.set_block(1, Bytes(50), {1});  // replace with smaller
  EXPECT_EQ(store.total_bytes(), 450u);

  store.set_block(1, Bytes(500), {2});  // replace with larger
  EXPECT_EQ(store.total_bytes(), 900u);

  store.set_block(0, Bytes{}, {3});  // replace with empty payload
  EXPECT_EQ(store.total_bytes(), 800u);
  EXPECT_TRUE(store.block(0).empty());

  store.set_block(0, Bytes{}, {3});  // empty -> empty is a no-op in bytes
  EXPECT_EQ(store.total_bytes(), 800u);

  store.set_block(0, Bytes(1), {0});  // and back from empty
  EXPECT_EQ(store.total_bytes(), 801u);
}

TEST(BlockStoreTest, MetaLevelTracksEveryReplacement) {
  BlockStore store(2);
  store.set_block(0, Bytes(10), {5});
  EXPECT_EQ(store.meta(0).level, 5);
  store.set_block(0, Bytes{}, {7});  // empty payloads still carry meta
  EXPECT_EQ(store.meta(0).level, 7);
  EXPECT_EQ(store.meta(1).level, 0);  // untouched block keeps default
}

TEST(BlockCacheTest, HitReturnsInsertedBlocks) {
  BlockCache cache(4);
  const Bytes op{std::byte{1}};
  const Bytes cb1(16, std::byte{2});
  const Bytes cb2(16, std::byte{3});
  const auto key = BlockCache::make_key(op, cb1, cb2);
  Bytes out1;
  Bytes out2;
  EXPECT_FALSE(cache.lookup(key, out1, out2));
  cache.insert(key, Bytes(8, std::byte{9}), Bytes(8, std::byte{8}));
  ASSERT_TRUE(cache.lookup(key, out1, out2));
  EXPECT_EQ(out1, Bytes(8, std::byte{9}));
  EXPECT_EQ(out2, Bytes(8, std::byte{8}));
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(BlockCacheTest, DistinctKeysForDistinctInputs) {
  const Bytes op{std::byte{1}};
  const Bytes a(4, std::byte{1});
  const Bytes b(4, std::byte{2});
  EXPECT_NE(BlockCache::make_key(op, a, b), BlockCache::make_key(op, b, a));
  EXPECT_NE(BlockCache::make_key(op, a, {}), BlockCache::make_key(op, {}, a));
}

TEST(BlockCacheTest, RunKeyIsDeterministicAndBoundaryAware) {
  const Bytes ab{std::byte{'a'}, std::byte{'b'}};
  const Bytes a{std::byte{'a'}};
  const Bytes b{std::byte{'b'}};
  const Bytes c{std::byte{'c'}};
  const Bytes block(16, std::byte{7});

  const std::vector<Bytes> split{a, b, c};
  const std::vector<Bytes> merged{ab, c};
  EXPECT_EQ(BlockCache::make_run_key(split, block),
            BlockCache::make_run_key(split, block));
  // Descriptor boundaries are part of the identity: {"a","b"} != {"ab"}.
  EXPECT_NE(BlockCache::make_run_key(split, block),
            BlockCache::make_run_key(merged, block));
  // Gate order within the run matters.
  const std::vector<Bytes> reversed{c, b, a};
  EXPECT_NE(BlockCache::make_run_key(split, block),
            BlockCache::make_run_key(reversed, block));
  // And so does the input block the run reads.
  const Bytes other_block(16, std::byte{8});
  EXPECT_NE(BlockCache::make_run_key(split, block),
            BlockCache::make_run_key(split, other_block));
}

TEST(BlockCacheTest, LruEviction) {
  BlockCache cache(2);
  Bytes out1;
  Bytes out2;
  cache.insert(1, Bytes(1, std::byte{1}), {});
  cache.insert(2, Bytes(1, std::byte{2}), {});
  ASSERT_TRUE(cache.lookup(1, out1, out2));  // 1 now most recent
  cache.insert(3, Bytes(1, std::byte{3}), {});  // evicts 2
  EXPECT_FALSE(cache.lookup(2, out1, out2));
  EXPECT_TRUE(cache.lookup(1, out1, out2));
  EXPECT_TRUE(cache.lookup(3, out1, out2));
}

TEST(BlockCacheTest, AutoDisableAfterFruitlessMisses) {
  BlockCache cache(4, 10);
  Bytes out1;
  Bytes out2;
  for (int i = 0; i < 10; ++i) {
    EXPECT_FALSE(cache.lookup(static_cast<std::uint64_t>(i) + 100, out1, out2));
  }
  EXPECT_TRUE(cache.stats().disabled);
  EXPECT_FALSE(cache.enabled());
  // Disabled cache rejects lookups and inserts silently...
  cache.insert(1, Bytes(1), {});
  EXPECT_FALSE(cache.lookup(1, out1, out2));
  // ...but every lookup still counts as a miss, so stats always satisfy
  // hits + misses == number of lookups.
  EXPECT_EQ(cache.stats().hits + cache.stats().misses, 11u);
}

TEST(BlockCacheTest, HitPreventsDisable) {
  BlockCache cache(4, 10);
  Bytes out1;
  Bytes out2;
  cache.insert(42, Bytes(1, std::byte{7}), {});
  for (int i = 0; i < 50; ++i) {
    cache.lookup(42, out1, out2);
    cache.lookup(static_cast<std::uint64_t>(i) + 1000, out1, out2);
  }
  EXPECT_FALSE(cache.stats().disabled);
  EXPECT_GT(cache.stats().hit_rate(), 0.4);
}

TEST(CommTest, ExchangeSwapsPayloadsAndCounts) {
  Comm comm(4);
  Bytes a(100, std::byte{1});
  Bytes b(200, std::byte{2});
  comm.exchange(0, 2, a, b);
  EXPECT_EQ(a.size(), 200u);
  EXPECT_EQ(b.size(), 100u);
  EXPECT_EQ(a[0], std::byte{2});
  EXPECT_EQ(comm.stats().bytes_moved, 300u);
  EXPECT_EQ(comm.stats().messages, 2u);
}

TEST(CommTest, ExchangeModelsOneBufferedSendrecvPerPair) {
  // The simulator routes every cross-rank block pair through exactly one
  // exchange: 2 messages (one each way) and the sum of both compressed
  // inputs on the wire. N pairs therefore cost exactly 2N messages.
  Comm comm(4);
  const std::size_t pairs = 5;
  for (std::size_t i = 0; i < pairs; ++i) {
    Bytes from_a(40 + i, std::byte{1});
    Bytes from_b(60 + i, std::byte{2});
    comm.exchange(1, 3, from_a, from_b);
  }
  EXPECT_EQ(comm.stats().messages, 2 * pairs);
  EXPECT_EQ(comm.stats().bytes_moved, 5u * (40 + 60) + 2u * (0 + 1 + 2 + 3 + 4));
}

TEST(CommTest, ResetClearsAllCounters) {
  Comm comm(2);
  Bytes a(64, std::byte{5});
  Bytes b(64, std::byte{6});
  comm.exchange(0, 1, a, b);
  EXPECT_EQ(comm.stats().bytes_moved, 128u);
  comm.reset();
  EXPECT_EQ(comm.stats().bytes_moved, 0u);
  EXPECT_EQ(comm.stats().messages, 0u);
  EXPECT_EQ(comm.stats().wire_nanos, 0u);
  EXPECT_EQ(comm.stats().overlap_nanos, 0u);
}

TEST(CommTest, RejectsBadRanks) {
  Comm comm(2);
  Bytes a;
  Bytes b;
  EXPECT_THROW(comm.exchange(0, 0, a, b), std::invalid_argument);
  EXPECT_THROW(comm.exchange(0, 5, a, b), std::invalid_argument);
  EXPECT_THROW(comm.exchange(-1, 1, a, b), std::invalid_argument);
}

TEST(ScratchTest, CodecPoolsEnterByteAccounting) {
  // A fresh arena charges only the block buffers; once a worker's codec
  // pool warms up, its high-water mark joins the Eq. 8 footprint.
  ScratchArena arena(2, 64);
  EXPECT_EQ(arena.codec_scratch_bytes(), 0u);
  EXPECT_EQ(arena.bytes(), arena.block_buffer_bytes());
  arena.codec_scratch(1).inner.reserve(1024);
  EXPECT_GE(arena.codec_scratch_bytes(), 1024u);
  EXPECT_EQ(arena.bytes(),
            arena.block_buffer_bytes() + arena.codec_scratch_bytes());
}

TEST(ScratchTest, SlotsAreDisjoint) {
  ScratchArena arena(3, 64);
  EXPECT_EQ(arena.bytes(), 3u * 2 * 64 * sizeof(double));
  for (std::size_t w = 0; w < 3; ++w) {
    auto x = arena.vector_x(w);
    auto y = arena.vector_y(w);
    EXPECT_EQ(x.size(), 64u);
    EXPECT_EQ(y.size(), 64u);
    x[0] = static_cast<double>(w) + 1.0;
    y[0] = -(static_cast<double>(w) + 1.0);
  }
  for (std::size_t w = 0; w < 3; ++w) {
    EXPECT_EQ(arena.vector_x(w)[0], static_cast<double>(w) + 1.0);
    EXPECT_EQ(arena.vector_y(w)[0], -(static_cast<double>(w) + 1.0));
  }
}

using CheckpointTest = test::TempDirFixture;

TEST_F(CheckpointTest, RoundTrip) {
  const std::string path = this->path("checkpoint.bin");
  CheckpointHeader header;
  header.num_qubits = 12;
  header.num_ranks = 2;
  header.blocks_per_rank = 4;
  header.ladder_level = 3;
  header.next_gate_index = 42;
  header.fidelity_bound = 0.987;
  header.codec_name = "qzc";

  std::vector<BlockStore> ranks;
  for (int r = 0; r < 2; ++r) ranks.emplace_back(4);
  for (int r = 0; r < 2; ++r) {
    for (int b = 0; b < 4; ++b) {
      Bytes payload(static_cast<std::size_t>(10 + r * 4 + b),
                    static_cast<std::byte>(r * 4 + b));
      ranks[r].set_block(b, std::move(payload),
                         {static_cast<std::uint8_t>(b % 3)});
    }
  }
  save_checkpoint(path, header, ranks);

  const auto [loaded_header, loaded_ranks] = load_checkpoint(path);
  EXPECT_EQ(loaded_header.num_qubits, 12);
  EXPECT_EQ(loaded_header.num_ranks, 2);
  EXPECT_EQ(loaded_header.blocks_per_rank, 4);
  EXPECT_EQ(loaded_header.ladder_level, 3u);
  EXPECT_EQ(loaded_header.next_gate_index, 42u);
  EXPECT_DOUBLE_EQ(loaded_header.fidelity_bound, 0.987);
  EXPECT_EQ(loaded_header.codec_name, "qzc");
  ASSERT_EQ(loaded_ranks.size(), 2u);
  for (int r = 0; r < 2; ++r) {
    for (int b = 0; b < 4; ++b) {
      EXPECT_EQ(loaded_ranks[r].block(b), ranks[r].block(b));
      EXPECT_EQ(loaded_ranks[r].meta(b).level, ranks[r].meta(b).level);
    }
  }
}

TEST_F(CheckpointTest, BlockMetaLevelAndCodecSurviveRoundTrip) {
  // Every distinct ladder level — including the full uint8 range ends and
  // empty payloads — and every per-block codec id must survive save/load
  // unchanged; a block's codec id is what tells the loader which codec
  // decompresses it (format v3).
  const std::string path = this->path("levels.bin");
  CheckpointHeader header;
  header.num_qubits = 8;
  header.num_ranks = 1;
  header.blocks_per_rank = 6;
  header.codec_name = "qzc";

  const std::uint8_t levels[] = {0, 1, 2, 5, 254, 255};
  const std::uint8_t codecs[] = {0, 3, 0, 3, 1, 6};  // deliberately mixed
  std::vector<BlockStore> ranks;
  ranks.emplace_back(6);
  for (int b = 0; b < 6; ++b) {
    // Block 3 is deliberately empty: meta must survive payload-free blocks.
    Bytes payload(b == 3 ? 0 : 4 + b, static_cast<std::byte>(b));
    ranks[0].set_block(b, std::move(payload), {levels[b], codecs[b]});
  }
  save_checkpoint(path, header, ranks);

  const auto [loaded_header, loaded_ranks] = load_checkpoint(path);
  ASSERT_EQ(loaded_ranks.size(), 1u);
  ASSERT_EQ(loaded_ranks[0].num_blocks(), 6);
  for (int b = 0; b < 6; ++b) {
    EXPECT_EQ(loaded_ranks[0].meta(b).level, levels[b]) << "block " << b;
    EXPECT_EQ(loaded_ranks[0].meta(b).codec, codecs[b]) << "block " << b;
    EXPECT_EQ(loaded_ranks[0].block(b), ranks[0].block(b)) << "block " << b;
  }
  EXPECT_EQ(loaded_ranks[0].total_bytes(), ranks[0].total_bytes());
}

TEST_F(CheckpointTest, LossyPassCountRoundTrips) {
  // Regression: the pass count used to be collapsed into one synthetic
  // pass on load, so report().lossy_passes lied after a resume.
  const std::string path = this->path("passes.bin");
  CheckpointHeader header;
  header.num_qubits = 8;
  header.num_ranks = 1;
  header.blocks_per_rank = 1;
  header.fidelity_bound = 0.9991;
  header.lossy_passes = 37;
  header.codec_name = "qzc";
  std::vector<BlockStore> ranks;
  ranks.emplace_back(1);
  ranks[0].set_block(0, Bytes(4, std::byte{1}), {1});
  save_checkpoint(path, header, ranks);

  const auto [loaded, stores] = load_checkpoint(path);
  EXPECT_EQ(loaded.lossy_passes, 37u);
  EXPECT_DOUBLE_EQ(loaded.fidelity_bound, 0.9991);
}

/// Replicates the version-1 on-disk layout (no lossy-pass field) so the
/// version-tolerant reader stays covered without a fixture file.
void write_v1_checkpoint(const std::string& path, double fidelity_bound) {
  Bytes buffer;
  const char magic[8] = {'C', 'Q', 'S', 'C', 'K', 'P', 'T', '1'};
  buffer.insert(buffer.end(), reinterpret_cast<const std::byte*>(magic),
                reinterpret_cast<const std::byte*>(magic) + 8);
  put_varint(buffer, 8);   // num_qubits
  put_varint(buffer, 1);   // num_ranks
  put_varint(buffer, 1);   // blocks_per_rank
  put_varint(buffer, 2);   // ladder_level
  put_varint(buffer, 42);  // next_gate_index
  put_scalar(buffer, fidelity_bound);
  const std::string name = "qzc";
  put_varint(buffer, name.size());
  for (char ch : name) buffer.push_back(static_cast<std::byte>(ch));
  put_varint(buffer, 1);  // rank count
  put_varint(buffer, 1);  // blocks in rank
  buffer.push_back(std::byte{1});  // block meta level
  put_varint(buffer, 3);           // payload size
  for (int i = 0; i < 3; ++i) buffer.push_back(std::byte{9});

  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(buffer.data()),
            static_cast<std::streamsize>(buffer.size()));
}

TEST_F(CheckpointTest, ReadsVersion1CheckpointsWithoutPassCount) {
  // A lossy v1 checkpoint reconstructs the only defensible history: one
  // synthetic pass carrying the whole saved bound.
  const std::string lossy = this->path("v1_lossy.bin");
  write_v1_checkpoint(lossy, 0.98);
  const auto [lossy_header, lossy_stores] = load_checkpoint(lossy);
  EXPECT_DOUBLE_EQ(lossy_header.fidelity_bound, 0.98);
  EXPECT_EQ(lossy_header.lossy_passes, 1u);
  EXPECT_EQ(lossy_header.next_gate_index, 42u);
  EXPECT_EQ(lossy_header.codec_name, "qzc");
  ASSERT_EQ(lossy_stores.size(), 1u);
  EXPECT_EQ(lossy_stores[0].block(0).size(), 3u);
  // Pre-v3 blocks derive their codec id from the level: level 1 was by
  // construction compressed with the header codec ("qzc").
  EXPECT_EQ(lossy_stores[0].meta(0).codec, 3);

  // A lossless v1 checkpoint has no lossy history at all.
  const std::string lossless = this->path("v1_lossless.bin");
  write_v1_checkpoint(lossless, 1.0);
  const auto [lossless_header, lossless_stores] = load_checkpoint(lossless);
  EXPECT_EQ(lossless_header.lossy_passes, 0u);
}

TEST_F(CheckpointTest, RejectsCorruptFile) {
  const std::string path = this->path("corrupt.bin");
  {
    FILE* f = std::fopen(path.c_str(), "wb");
    std::fputs("garbage", f);
    std::fclose(f);
  }
  EXPECT_THROW(load_checkpoint(path), std::runtime_error);
  EXPECT_THROW(load_checkpoint("/nonexistent/nope"), std::runtime_error);
}

}  // namespace
}  // namespace cqs::runtime
