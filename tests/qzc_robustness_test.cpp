// Additional qzc container-validation tests (complementing qzc_test and
// the shared corruption suite): the code stream must be long enough for
// the declared element count, and lossy-level metadata must round-trip
// through the full decompress path.
#include <gtest/gtest.h>

#include <vector>

#include "common/bytes.hpp"
#include "compression/compressor.hpp"
#include "lossless/zx.hpp"
#include "qzc/qzc.hpp"

namespace cqs::qzc {
namespace {

TEST(QzcRobustnessTest, ShortCodeStreamRejected) {
  // Hand-craft a container claiming 100 elements but carrying a one-byte
  // code stream.
  Bytes streams;
  put_varint(streams, 1);                 // codes_size = 1
  streams.push_back(std::byte{0});        // one code byte
  const Bytes packed = lossless::zx_compress(streams);

  Bytes container;
  container.push_back(std::byte{'Q'});
  container.push_back(std::byte{'Z'});
  container.push_back(std::byte{0});      // not shuffled
  container.push_back(std::byte{10});     // mantissa bits
  put_varint(container, 100);             // claims 100 doubles
  container.insert(container.end(), packed.begin(), packed.end());

  QzcCodec codec;
  EXPECT_EQ(codec.element_count(container), 100u);
  std::vector<double> out(100);
  EXPECT_THROW(codec.decompress(container, out), std::runtime_error);
}

TEST(QzcRobustnessTest, PayloadTruncationDetected) {
  QzcCodec codec;
  std::vector<double> data(256, 1.5);
  data[0] = 2.75;  // ensure a non-empty payload
  const Bytes good =
      codec.compress(data, compression::ErrorBound::relative(1e-6));
  std::vector<double> out(256);
  codec.decompress(good, out);  // sanity: intact container works
  // Truncating inside the zx payload must throw, not read garbage.
  for (std::size_t cut = 8; cut < good.size(); cut += 7) {
    EXPECT_THROW(codec.decompress(ByteSpan(good.data(), cut), out),
                 std::exception)
        << "cut=" << cut;
  }
}

TEST(QzcRobustnessTest, MaxMantissaBitsIsLosslessForNormals) {
  // eps small enough to demand all 52 mantissa bits: exact round trip.
  std::vector<double> data = {1.0, -0.3333333333333333, 1e100, -1e-100,
                              0.1, 123456.789};
  QzcCodec codec;
  const Bytes compressed =
      codec.compress(data, compression::ErrorBound::relative(1e-300));
  std::vector<double> out(data.size());
  codec.decompress(compressed, out);
  for (std::size_t i = 0; i < data.size(); ++i) {
    EXPECT_EQ(out[i], data[i]);
  }
}

}  // namespace
}  // namespace cqs::qzc
