// Auto-checkpointed recovery-loop coverage — the issue's differential
// matrix:
//   - autosave cadence: saves land at run boundaries, the report counts
//     them, and a resume from the autosave image is bit-identical,
//   - run_resilient: fault-free == plain run; loopback rank death at
//     three circuit points recovers bit-identically (tol 0); a
//     persistent fault gives up after max_recoveries with the typed
//     error,
//   - ENOSPC degradation: a mid-run disk-full settles what's written,
//     disables spilling, and finishes resident bit-identically; if the
//     resident state cannot fit the Eq. 8 budget even at the last ladder
//     level, the original typed SpillError surfaces,
//   - an injected autosave failure (crash before the checkpoint rename)
//     is survived and counted, and the previous image stays loadable,
//   - fault-plan determinism pin: same seed => same fired (site, call)
//     ledger across thread counts (RecoveryConcurrencyTest doubles as
//     the TSan target),
//   - under CQS_HAVE_SOCKET_TRANSPORT: rank death x {local, tcp}
//     endpoints recovers bit-identically through real process respawn,
//     and a corrupt-frame fault recovers when transient / fails typed
//     when persistent.
#include <gtest/gtest.h>

#include <cerrno>
#include <cstdint>
#include <filesystem>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/config.hpp"
#include "core/simulator.hpp"
#include "qsim/circuit.hpp"
#include "runtime/fault_injection.hpp"
#include "runtime/spill_file.hpp"
#include "runtime/transport.hpp"
#include "test_util.hpp"

#ifdef CQS_HAVE_SOCKET_TRANSPORT
#include "runtime/socket_transport.hpp"
#endif

namespace cqs {
namespace {

using test::random_circuit;

core::SimConfig base_config(int qubits, int ranks, int threads = 2) {
  core::SimConfig config;
  config.num_qubits = qubits;
  config.num_ranks = ranks;
  config.blocks_per_rank = 4;
  config.threads = threads;
  return config;
}

/// Reference state of an uninterrupted, fault-free run of `circuit`.
/// References share the faulted run's checkpoint_interval_gates: the
/// interval is a scheduling cut (fused runs never span it), so tol-0
/// comparisons only hold between runs chunked the same way.
std::vector<double> reference_state(core::SimConfig config,
                                    const qsim::Circuit& circuit,
                                    const std::string& autosave_path = "") {
  config.auto_checkpoint_path = autosave_path;
  config.checkpoint_interval_gates = autosave_path.empty() ? 0 : 13;
  core::CompressedStateSimulator sim(config);
  sim.apply_circuit(circuit);
  return sim.to_raw();
}

using RecoveryTest = test::TempDirFixture;

TEST_F(RecoveryTest, AutosaveKnobsMustBeSetTogether) {
  auto interval_only = base_config(8, 2);
  interval_only.checkpoint_interval_gates = 10;
  EXPECT_THROW(core::CompressedStateSimulator{interval_only},
               std::invalid_argument);

  auto path_only = base_config(8, 2);
  path_only.auto_checkpoint_path = path("auto.ckpt");
  EXPECT_THROW(core::CompressedStateSimulator{path_only},
               std::invalid_argument);
}

TEST_F(RecoveryTest, AutosavesLandAtIntervalsAndResumeBitIdentical) {
  const auto circuit = random_circuit(10, 60, 17);
  const auto expected =
      reference_state(base_config(10, 2), circuit, path("ref.ckpt"));

  auto config = base_config(10, 2);
  config.checkpoint_interval_gates = 13;
  config.auto_checkpoint_path = path("auto.ckpt");
  core::CompressedStateSimulator sim(config);
  sim.apply_circuit(circuit);
  CQS_EXPECT_STATES_CLOSE(sim.to_raw(), expected, 0.0);

  const auto report = sim.report();
  EXPECT_GE(report.autosaves, 60u / 13u);
  EXPECT_EQ(report.autosave_failures, 0u);
  EXPECT_EQ(report.checkpoint_interval_gates, 13u);
  ASSERT_TRUE(std::filesystem::exists(path("auto.ckpt")));

  // The autosave is a real checkpoint: restore it mid-circuit and resume
  // the suffix — the result must be bit-identical to the uninterrupted
  // run (interval boundaries are scheduling cuts, so the resumed suffix
  // re-chunks into exactly the remaining chunks).
  auto resume_config = config;
  resume_config.auto_checkpoint_path = path("resume.ckpt");
  auto restored = core::CompressedStateSimulator::load_checkpoint(
      path("auto.ckpt"), resume_config);
  EXPECT_LT(restored.gate_cursor(), circuit.size());
  restored.resume_circuit(circuit);
  CQS_EXPECT_STATES_CLOSE(restored.to_raw(), expected, 0.0);
}

TEST_F(RecoveryTest, RunResilientFaultFreeMatchesPlainRun) {
  const auto circuit = random_circuit(10, 50, 23);
  auto config = base_config(10, 2);
  const auto expected =
      reference_state(config, circuit, path("ref.ckpt"));

  config.checkpoint_interval_gates = 13;
  config.auto_checkpoint_path = path("auto.ckpt");
  auto sim = core::CompressedStateSimulator::run_resilient(config, circuit);
  CQS_EXPECT_STATES_CLOSE(sim.to_raw(), expected, 0.0);
  EXPECT_EQ(sim.report().recoveries, 0u);
}

TEST_F(RecoveryTest, RunResilientRejectsNegativeOptions) {
  const auto circuit = random_circuit(8, 10, 1);
  auto config = base_config(8, 2);
  EXPECT_THROW(core::CompressedStateSimulator::run_resilient(
                   config, circuit, {.max_recoveries = -1}),
               std::invalid_argument);
  EXPECT_THROW(core::CompressedStateSimulator::run_resilient(
                   config, circuit, {.retry_backoff_ms = -1}),
               std::invalid_argument);
}

TEST_F(RecoveryTest, LoopbackRankDeathRecoversBitIdenticalAtThreePoints) {
  const auto circuit = random_circuit(10, 80, 31);
  auto config = base_config(10, 4);
  const auto expected =
      reference_state(config, circuit, path("ref.ckpt"));

  // Probe how many cross-rank sends the autosaved run performs with a
  // plan that can never fire (the counter only runs while armed). The
  // probe must chunk like the resilient runs: interval cuts split fused
  // runs, which changes how many gates pay an exchange.
  std::uint64_t total_sends = 0;
  {
    runtime::ScopedFaultPlan probe("transport.send@1000000000");
    auto probe_config = config;
    probe_config.checkpoint_interval_gates = 13;
    probe_config.auto_checkpoint_path = path("probe.ckpt");
    core::CompressedStateSimulator sim(probe_config);
    sim.apply_circuit(circuit);
    total_sends = runtime::FaultInjector::instance().calls(
        runtime::fault_sites::kTransportSend);
  }
  ASSERT_GE(total_sends, 3u) << "circuit must exercise the transport";

  // Kill a rank at the first, middle, and last exchange; every variant
  // must recover exactly once and land on the uninterrupted state.
  for (std::uint64_t point :
       {std::uint64_t{1}, total_sends / 2, total_sends}) {
    std::filesystem::remove(path("auto.ckpt"));
    auto resilient = config;
    resilient.checkpoint_interval_gates = 13;
    resilient.auto_checkpoint_path = path("auto.ckpt");
    runtime::ScopedFaultPlan plan("transport.send@" +
                                  std::to_string(point) + ":die");
    auto sim = core::CompressedStateSimulator::run_resilient(
        resilient, circuit, {.max_recoveries = 3, .retry_backoff_ms = 1});
    CQS_EXPECT_STATES_CLOSE(sim.to_raw(), expected, 0.0)
        << "injection point " << point << " of " << total_sends;
    EXPECT_EQ(sim.report().recoveries, 1u) << "injection point " << point;
  }
}

TEST_F(RecoveryTest, PersistentFaultGivesUpAfterMaxRecoveries) {
  const auto circuit = random_circuit(10, 40, 7);
  auto config = base_config(10, 4);
  config.checkpoint_interval_gates = 11;
  config.auto_checkpoint_path = path("auto.ckpt");
  runtime::ScopedFaultPlan plan("transport.send@1+:die");
  try {
    core::CompressedStateSimulator::run_resilient(
        config, circuit, {.max_recoveries = 2, .retry_backoff_ms = 1});
    FAIL() << "expected TransportError";
  } catch (const runtime::TransportError& e) {
    EXPECT_EQ(e.kind(), runtime::TransportError::Kind::kRankDead);
  }
  // 1 initial attempt + 2 recoveries, each dying on its first exchange
  // sweep (a sweep may issue several sends before the throw propagates,
  // so the ledger holds at least one hit per attempt).
  EXPECT_GE(runtime::FaultInjector::instance().fired().size(), 3u);
}

core::SimConfig spill_config(const std::string& spill_path, int qubits,
                             int ranks, int threads) {
  auto config = base_config(qubits, ranks, threads);
  config.spill_path = spill_path;
  config.resident_budget_bytes = 1;  // essentially everything spills
  return config;
}

TEST_F(RecoveryTest, EnospcDegradationFinishesResidentBitIdentical) {
  const auto circuit = random_circuit(10, 60, 41);
  const auto expected = reference_state(base_config(10, 2), circuit);

  auto config = spill_config(path("spill.bin"), 10, 2, 2);
  config.spill_degrade_on_enospc = true;
  runtime::ScopedFaultPlan plan("spill.write@3+:enospc");
  core::CompressedStateSimulator sim(config);
  sim.apply_circuit(circuit);
  CQS_EXPECT_STATES_CLOSE(sim.to_raw(), expected, 0.0);

  const auto report = sim.report();
  EXPECT_TRUE(report.degraded);
  EXPECT_GE(report.spill_write_failures, 1u);
}

TEST_F(RecoveryTest, RunResilientForcesEnospcDegradationOn) {
  const auto circuit = random_circuit(10, 60, 41);
  const auto expected =
      reference_state(base_config(10, 2), circuit, path("ref.ckpt"));

  // The knob is left at its default (off): run_resilient must force it.
  auto config = spill_config(path("spill.bin"), 10, 2, 2);
  config.checkpoint_interval_gates = 13;
  config.auto_checkpoint_path = path("auto.ckpt");
  runtime::ScopedFaultPlan plan("spill.write@2+:enospc");
  auto sim = core::CompressedStateSimulator::run_resilient(
      config, circuit, {.max_recoveries = 1, .retry_backoff_ms = 1});
  CQS_EXPECT_STATES_CLOSE(sim.to_raw(), expected, 0.0);
  EXPECT_TRUE(sim.report().degraded);
}

TEST_F(RecoveryTest, DegradedRunOverBudgetSurfacesTypedError) {
  // Disk full AND the resident state cannot fit the Eq. 8 budget even at
  // the last ladder level: the run must fail with the typed SpillError,
  // not silently blow the budget.
  const auto circuit = random_circuit(10, 60, 41);
  auto config = spill_config(path("spill.bin"), 10, 2, 2);
  config.spill_degrade_on_enospc = true;
  config.memory_budget_bytes = 64;  // unsatisfiable at any level
  runtime::ScopedFaultPlan plan("spill.write@1+:enospc");
  core::CompressedStateSimulator sim(config);
  try {
    sim.apply_circuit(circuit);
    FAIL() << "expected SpillError";
  } catch (const runtime::SpillError& e) {
    EXPECT_EQ(e.code(), ENOSPC);
  }
}

TEST_F(RecoveryTest, InjectedAutosaveFailureIsSurvivedAndCounted) {
  const auto circuit = random_circuit(10, 60, 17);
  const auto expected =
      reference_state(base_config(10, 2), circuit, path("ref.ckpt"));

  auto config = base_config(10, 2);
  config.checkpoint_interval_gates = 13;
  config.auto_checkpoint_path = path("auto.ckpt");
  // The second autosave crashes after writing the temp image but before
  // the atomic rename: the run continues, the failure is counted, and
  // the first (published) image survives untouched.
  runtime::ScopedFaultPlan plan("checkpoint.rename@2");
  core::CompressedStateSimulator sim(config);
  sim.apply_circuit(circuit);
  CQS_EXPECT_STATES_CLOSE(sim.to_raw(), expected, 0.0);

  const auto report = sim.report();
  EXPECT_EQ(report.autosave_failures, 1u);
  EXPECT_GE(report.autosaves, 1u);
  auto resume_config = config;
  resume_config.auto_checkpoint_path = path("resume.ckpt");
  auto restored = core::CompressedStateSimulator::load_checkpoint(
      path("auto.ckpt"), resume_config);
  restored.resume_circuit(circuit);
  CQS_EXPECT_STATES_CLOSE(restored.to_raw(), expected, 0.0);
}

// TSan target + the issue's determinism pin: the fired (site, call)
// ledger of a seeded plan is a pure function of the plan — identical
// across worker counts.
using RecoveryConcurrencyTest = test::TempDirFixture;

TEST_F(RecoveryConcurrencyTest, SeededPlanFiresIdenticallyAcrossThreads) {
  const auto circuit = random_circuit(10, 60, 41);
  std::vector<std::vector<runtime::FaultHit>> ledgers;
  std::vector<std::uint64_t> resolved;
  for (int threads : {1, 2, 4}) {
    runtime::ScopedFaultPlan plan("seed=7;spill.write@~6:enospc");
    resolved.push_back(
        runtime::FaultInjector::instance().resolved_specs()[0].nth);
    auto config = spill_config(
        path("spill_" + std::to_string(threads) + ".bin"), 10, 2, threads);
    config.spill_degrade_on_enospc = true;
    core::CompressedStateSimulator sim(config);
    sim.apply_circuit(circuit);
    EXPECT_TRUE(sim.report().degraded);
    ledgers.push_back(runtime::FaultInjector::instance().fired());
  }
  for (std::size_t i = 1; i < ledgers.size(); ++i) {
    EXPECT_EQ(resolved[i], resolved[0]);
    ASSERT_EQ(ledgers[i].size(), ledgers[0].size());
    for (std::size_t j = 0; j < ledgers[0].size(); ++j) {
      EXPECT_EQ(ledgers[i][j].site, ledgers[0][j].site);
      EXPECT_EQ(ledgers[i][j].call, ledgers[0][j].call);
      EXPECT_EQ(ledgers[i][j].action, ledgers[0][j].action);
    }
  }
}

#ifdef CQS_HAVE_SOCKET_TRANSPORT

using SocketRecoveryTest = test::TempDirFixture;

TEST_F(SocketRecoveryTest, RankDeathRecoversOnBothEndpoints) {
  // A scripted "die" rides the real wire as a kDie control frame: the
  // rank process exits, the exchange fails typed, run_resilient reaps
  // the survivors, respawns fresh rank processes, reloads the autosave,
  // and finishes bit-identically — on both endpoint flavors.
  const auto circuit = random_circuit(10, 60, 59);
  const auto expected =
      reference_state(base_config(10, 2), circuit, path("ref.ckpt"));

  for (const std::string endpoint : {"local", "tcp"}) {
    std::filesystem::remove(path("auto.ckpt"));
    auto config = base_config(10, 2);
    config.transport = "socket";
    config.socket_endpoint = endpoint;
    config.rank_timeout_ms = 2000;
    config.checkpoint_interval_gates = 13;
    config.auto_checkpoint_path = path("auto.ckpt");
    runtime::ScopedFaultPlan plan("transport.send@2:die");
    auto sim = core::CompressedStateSimulator::run_resilient(
        config, circuit, {.max_recoveries = 3, .retry_backoff_ms = 1});
    CQS_EXPECT_STATES_CLOSE(sim.to_raw(), expected, 0.0)
        << "endpoint " << endpoint;
    EXPECT_EQ(sim.report().recoveries, 1u) << "endpoint " << endpoint;
  }
}

TEST_F(SocketRecoveryTest, CorruptFrameRecoversWhenTransient) {
  const auto circuit = random_circuit(10, 60, 59);
  const auto expected =
      reference_state(base_config(10, 2), circuit, path("ref.ckpt"));

  auto config = base_config(10, 2);
  config.transport = "socket";
  config.rank_timeout_ms = 2000;
  config.checkpoint_interval_gates = 13;
  config.auto_checkpoint_path = path("auto.ckpt");
  runtime::ScopedFaultPlan plan("transport.send@2:corrupt");
  auto sim = core::CompressedStateSimulator::run_resilient(
      config, circuit, {.max_recoveries = 3, .retry_backoff_ms = 1});
  CQS_EXPECT_STATES_CLOSE(sim.to_raw(), expected, 0.0);
  EXPECT_EQ(sim.report().recoveries, 1u);
}

TEST_F(SocketRecoveryTest, CorruptFrameFailsTypedWhenPersistent) {
  const auto circuit = random_circuit(10, 60, 59);
  auto config = base_config(10, 2);
  config.transport = "socket";
  config.rank_timeout_ms = 2000;
  config.checkpoint_interval_gates = 13;
  config.auto_checkpoint_path = path("auto.ckpt");
  runtime::ScopedFaultPlan plan("transport.send@1+:corrupt");
  try {
    core::CompressedStateSimulator::run_resilient(
        config, circuit, {.max_recoveries = 2, .retry_backoff_ms = 1});
    FAIL() << "expected TransportError";
  } catch (const runtime::TransportError& e) {
    EXPECT_EQ(e.kind(), runtime::TransportError::Kind::kFrameCorrupt);
  }
}

#endif  // CQS_HAVE_SOCKET_TRANSPORT

}  // namespace
}  // namespace cqs
