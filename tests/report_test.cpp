// Tests for report formatting and phase accounting.
#include <gtest/gtest.h>

#include <sstream>

#include "core/report.hpp"

namespace cqs::core {
namespace {

TEST(ReportTest, PhaseFractionsSumToOne) {
  SimulationReport report;
  report.phases.add(Phase::kCompression, 2.0);
  report.phases.add(Phase::kDecompression, 1.0);
  report.phases.add(Phase::kCommunication, 0.5);
  report.phases.add(Phase::kComputation, 0.5);
  double total = 0.0;
  for (auto p : {Phase::kCompression, Phase::kDecompression,
                 Phase::kCommunication, Phase::kComputation}) {
    total += report.phase_fraction(p);
  }
  EXPECT_NEAR(total, 1.0, 1e-12);
  EXPECT_NEAR(report.phase_fraction(Phase::kCompression), 0.5, 1e-12);
}

TEST(ReportTest, EmptyPhasesGiveZeroFractions) {
  SimulationReport report;
  EXPECT_EQ(report.phase_fraction(Phase::kCompression), 0.0);
  EXPECT_EQ(report.seconds_per_gate(), 0.0);
}

TEST(ReportTest, SecondsPerGate) {
  SimulationReport report;
  report.gates = 100;
  report.total_seconds = 25.0;
  EXPECT_DOUBLE_EQ(report.seconds_per_gate(), 0.25);
}

TEST(ReportTest, PrintContainsKeyRows) {
  SimulationReport report;
  report.num_qubits = 18;
  report.num_ranks = 4;
  report.blocks_per_rank = 16;
  report.codec = "qzc";
  report.gates = 314;
  report.total_seconds = 2.5;
  report.memory_requirement_bytes = 1ull << 22;
  report.peak_compressed_bytes = 12345;
  report.min_compression_ratio = 7.39;
  report.fidelity_bound = 0.996;
  report.budget_bytes = 1 << 20;
  report.budget_exceeded = true;
  std::ostringstream os;
  report.print(os);
  const std::string text = os.str();
  EXPECT_NE(text.find("qubits:"), std::string::npos);
  EXPECT_NE(text.find("qzc"), std::string::npos);
  EXPECT_NE(text.find("314"), std::string::npos);
  EXPECT_NE(text.find("4.00 MB"), std::string::npos);
  EXPECT_NE(text.find("EXCEEDED"), std::string::npos);
  EXPECT_NE(text.find("7.39"), std::string::npos);
  EXPECT_NE(text.find("0.996"), std::string::npos);
}

TEST(ReportTest, StreamOperator) {
  SimulationReport report;
  report.num_qubits = 5;
  std::ostringstream os;
  os << report;
  EXPECT_FALSE(os.str().empty());
}

}  // namespace
}  // namespace cqs::core
