// Failure-injection tests: every codec and container parser must reject
// truncated or obviously corrupted inputs with an exception — never crash,
// hang, or silently return the wrong element count. (Bit-flip corruption
// inside entropy-coded payloads may legitimately decode to garbage values;
// these tests only demand memory-safe, exception-or-success behaviour.)
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <limits>
#include <vector>

#include "common/bytes.hpp"
#include "common/rng.hpp"
#include "compression/compressor.hpp"
#include "lossless/zx.hpp"
#include "runtime/checkpoint.hpp"
#include "test_util.hpp"

namespace cqs {
namespace {

std::vector<double> test_data() {
  Rng rng(77);
  std::vector<double> data(2048);
  for (auto& d : data) d = rng.next_normal();
  return data;
}

compression::ErrorBound bound_for(const compression::Compressor& codec) {
  return codec.supports(compression::BoundMode::kPointwiseRelative)
             ? compression::ErrorBound::relative(1e-3)
             : compression::ErrorBound::lossless();
}

class CodecCorruptionTest
    : public ::testing::TestWithParam<std::string> {};

TEST_P(CodecCorruptionTest, TruncationAlwaysThrows) {
  const auto codec = compression::make_compressor(GetParam());
  const auto data = test_data();
  const Bytes compressed = codec->compress(data, bound_for(*codec));
  std::vector<double> out(data.size());
  // Cut the container at a spread of points, including pathological ones.
  for (std::size_t keep :
       {std::size_t{0}, std::size_t{1}, std::size_t{2}, std::size_t{3},
        compressed.size() / 4, compressed.size() / 2,
        compressed.size() - 1}) {
    const ByteSpan cut(compressed.data(), keep);
    EXPECT_THROW(codec->decompress(cut, out), std::exception)
        << GetParam() << " keep=" << keep;
  }
}

TEST_P(CodecCorruptionTest, EmptyInputThrows) {
  const auto codec = compression::make_compressor(GetParam());
  std::vector<double> out(16);
  EXPECT_THROW(codec->decompress({}, out), std::exception);
  EXPECT_THROW(codec->element_count({}), std::exception);
}

TEST_P(CodecCorruptionTest, WrongMagicThrows) {
  const auto codec = compression::make_compressor(GetParam());
  Bytes bogus(64, std::byte{0x5a});
  std::vector<double> out(16);
  EXPECT_THROW(codec->decompress(bogus, out), std::exception);
}

TEST_P(CodecCorruptionTest, HeaderByteFlipsAreSafe) {
  // Flipping bytes in the header region must either throw or decode into
  // the provided buffer — never crash. (Payload flips can decode to
  // garbage values; that is acceptable for a compression container
  // without checksums, as in the paper's pipeline.)
  const auto codec = compression::make_compressor(GetParam());
  const auto data = test_data();
  const Bytes original = codec->compress(data, bound_for(*codec));
  for (std::size_t pos = 0; pos < std::min<std::size_t>(8, original.size());
       ++pos) {
    for (std::uint8_t flip : {0x01, 0x80, 0xff}) {
      Bytes corrupted = original;
      corrupted[pos] ^= static_cast<std::byte>(flip);
      std::vector<double> out(data.size());
      try {
        codec->decompress(corrupted, out);
      } catch (const std::exception&) {
        // Expected for most header corruptions.
      }
    }
  }
  SUCCEED();
}

INSTANTIATE_TEST_SUITE_P(AllCodecs, CodecCorruptionTest,
                         ::testing::ValuesIn(compression::compressor_names()),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (auto& ch : name) {
                             if (ch == '-') ch = '_';
                           }
                           return name;
                         });

TEST(ZxCorruptionTest, ModeByteOutOfRange) {
  Bytes container;
  container.push_back(std::byte{'Z'});
  container.push_back(std::byte{'X'});
  container.push_back(std::byte{7});  // unknown mode
  container.push_back(std::byte{0});  // size varint 0
  EXPECT_THROW(lossless::zx_decompress(container), std::runtime_error);
}

TEST(ZxCorruptionTest, RawModeSizeMismatch) {
  Bytes container;
  container.push_back(std::byte{'Z'});
  container.push_back(std::byte{'X'});
  container.push_back(std::byte{0});   // raw mode
  container.push_back(std::byte{10});  // claims 10 bytes
  container.push_back(std::byte{1});   // provides 1
  EXPECT_THROW(lossless::zx_decompress(container), std::runtime_error);
}

using CheckpointCorruptionTest = test::TempDirFixture;

TEST_F(CheckpointCorruptionTest, TruncatedFilesThrow) {
  // Build a valid checkpoint in memory via the API, then truncate on disk.
  const std::string path = this->path("corrupt_ckpt.bin");
  runtime::CheckpointHeader header;
  header.num_qubits = 8;
  header.num_ranks = 1;
  header.blocks_per_rank = 2;
  header.codec_name = "qzc";
  std::vector<runtime::BlockStore> ranks;
  ranks.emplace_back(2);
  ranks[0].set_block(0, Bytes(100, std::byte{1}), {0});
  ranks[0].set_block(1, Bytes(100, std::byte{2}), {1});
  runtime::save_checkpoint(path, header, ranks);

  // Truncate progressively (strictly decreasing: growing a truncated file
  // back would zero-fill, which parses as an empty-but-valid checkpoint).
  for (long keep : {150L, 60L, 20L, 8L}) {
    std::filesystem::resize_file(path, keep);
    EXPECT_THROW(runtime::load_checkpoint(path), std::exception)
        << "keep=" << keep;
  }
}

TEST_F(CheckpointCorruptionTest, HugeBlockSizeVarintThrows) {
  // A corrupt block-size varint near UINT64_MAX used to wrap the
  // truncation check `offset + block_size > buffer.size()` and drive a
  // huge out-of-bounds read; the bound must reject it cleanly instead.
  Bytes image;
  const char magic[8] = {'C', 'Q', 'S', 'C', 'K', 'P', 'T', '5'};
  image.insert(image.end(), reinterpret_cast<const std::byte*>(magic),
               reinterpret_cast<const std::byte*>(magic) + 8);
  put_varint(image, 1);  // num_qubits
  put_varint(image, 1);  // num_ranks
  put_varint(image, 1);  // blocks_per_rank
  put_varint(image, 0);  // ladder_level
  put_varint(image, 0);  // next_gate_index
  put_scalar(image, 1.0);  // fidelity_bound
  put_varint(image, 0);  // lossy_passes
  put_varint(image, 3);  // codec name
  for (char ch : {'q', 'z', 'c'}) {
    image.push_back(static_cast<std::byte>(ch));
  }
  put_varint(image, 0);  // qubit map: identity
  put_varint(image, 1);  // rank count
  put_varint(image, 1);  // block count
  image.push_back(std::byte{0});  // meta.level
  image.push_back(std::byte{0});  // meta.codec
  image.push_back(std::byte{0});  // tier: resident
  put_varint(image, std::numeric_limits<std::uint64_t>::max());
  // A few trailing bytes keep offset < size, so only the wrapping bound
  // (not an end-of-buffer varint error) could let the read through.
  image.push_back(std::byte{0});
  image.push_back(std::byte{0});

  const std::string path = this->path("huge_block.ckpt");
  {
    std::ofstream out(path, std::ios::binary);
    out.write(reinterpret_cast<const char*>(image.data()),
              static_cast<std::streamsize>(image.size()));
  }
  EXPECT_THROW(runtime::load_checkpoint(path), std::runtime_error);
}

}  // namespace
}  // namespace cqs
