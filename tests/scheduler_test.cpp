// Coverage for the block-local gate-run scheduler: run formation rules,
// fusion composition, source-gate accounting, dense-vs-compressed
// equivalence of the batched execution path across all target segments,
// the one-lossy-pass-per-run fidelity accounting, and the circuit-cursor
// regressions (second circuit skipped / ad-hoc apply drift).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>

#include "circuits/qaoa.hpp"
#include "core/simulator.hpp"
#include "qsim/scheduler.hpp"
#include "qsim/state_vector.hpp"
#include "runtime/qubit_map.hpp"
#include "test_util.hpp"

namespace cqs {
namespace {

using core::CompressedStateSimulator;
using core::SimConfig;
using qsim::build_schedule;
using qsim::Circuit;
using qsim::GateKind;
using qsim::GateRun;
using qsim::is_block_local;
using qsim::plan_remaps;
using qsim::SchedulerOptions;

// ---------------------------------------------------------------- scheduler

TEST(SchedulerTest, BlockLocalClassification) {
  const int intra = 5;
  EXPECT_TRUE(is_block_local({GateKind::kH, 0}, intra));
  EXPECT_TRUE(is_block_local({GateKind::kCX, 4, {3, -1}}, intra));
  EXPECT_TRUE(is_block_local({GateKind::kCCX, 2, {0, 1}}, intra));
  EXPECT_FALSE(is_block_local({GateKind::kH, 5}, intra));
  EXPECT_FALSE(is_block_local({GateKind::kCX, 0, {7, -1}}, intra));
  EXPECT_FALSE(is_block_local({GateKind::kCCX, 0, {1, 9}}, intra));
  // SWAP keeps its qubits in target/controls[0].
  EXPECT_TRUE(is_block_local({GateKind::kSwap, 1, {2, -1}}, intra));
  EXPECT_FALSE(is_block_local({GateKind::kSwap, 1, {9, -1}}, intra));
}

TEST(SchedulerTest, RunsAreMaximalAndPreserveOrder) {
  Circuit c(10);
  c.h(0).cx(0, 1).t(2);  // block-local run of 3
  c.h(6);                // block-segment gate: single item
  c.h(3).swap(1, 2);     // block-local run of 2 (local SWAP joins)
  c.swap(0, 9);          // SWAP crossing the line: single item
  c.x(4);                // trailing block-local run of 1

  const auto schedule =
      build_schedule(c, {.intra_qubits = 5, .max_run_length = 0,
                         .fuse = false});
  const auto& runs = schedule.runs();
  ASSERT_EQ(runs.size(), 5u);
  EXPECT_TRUE(runs[0].block_local);
  EXPECT_EQ(runs[0].first, 0u);
  EXPECT_EQ(runs[0].count, 3u);
  EXPECT_FALSE(runs[1].block_local);
  EXPECT_EQ(runs[1].count, 1u);
  EXPECT_TRUE(runs[2].block_local);
  EXPECT_EQ(runs[2].first, 4u);
  EXPECT_EQ(runs[2].count, 2u);
  EXPECT_FALSE(runs[3].block_local);
  EXPECT_TRUE(runs[4].block_local);
  EXPECT_EQ(runs[4].count, 1u);

  EXPECT_EQ(schedule.stats().block_local_runs, 3u);
  EXPECT_EQ(schedule.stats().batched_ops, 6u);
  EXPECT_EQ(schedule.stats().single_items, 2u);
  EXPECT_EQ(schedule.stats().longest_run, 3u);
}

TEST(SchedulerTest, MaxRunLengthSplitsRuns) {
  Circuit c(8);
  for (int i = 0; i < 7; ++i) c.x(i % 4);
  const auto schedule =
      build_schedule(c, {.intra_qubits = 6, .max_run_length = 2,
                         .fuse = false});
  ASSERT_EQ(schedule.runs().size(), 4u);
  EXPECT_EQ(schedule.runs()[0].count, 2u);
  EXPECT_EQ(schedule.runs()[1].count, 2u);
  EXPECT_EQ(schedule.runs()[2].count, 2u);
  EXPECT_EQ(schedule.runs()[3].count, 1u);
  EXPECT_EQ(schedule.stats().longest_run, 2u);
}

TEST(SchedulerTest, FusionPrepassFoldsSourceGates) {
  Circuit c(10);
  c.h(0).t(0).h(0);  // fuses into one kU3G standing for 3 source gates
  c.cx(0, 9);        // rank-segment single item
  const auto schedule =
      build_schedule(c, {.intra_qubits = 5, .max_run_length = 0,
                         .fuse = true});
  ASSERT_EQ(schedule.circuit().size(), 2u);
  EXPECT_EQ(schedule.circuit().ops()[0].kind, GateKind::kU3G);
  ASSERT_EQ(schedule.runs().size(), 2u);
  EXPECT_EQ(schedule.runs()[0].source_gates, 3u);
  EXPECT_EQ(schedule.runs()[1].source_gates, 1u);
  EXPECT_EQ(schedule.stats().fusion.fused_runs, 1u);
}

TEST(SchedulerTest, SourceGatesAlwaysSumToCircuitSize) {
  const auto c = circuits::qaoa_maxcut_circuit({.num_qubits = 10});
  for (const bool fuse : {false, true}) {
    for (const std::size_t cap : {std::size_t{0}, std::size_t{3}}) {
      const auto schedule = build_schedule(
          c, {.intra_qubits = 5, .max_run_length = cap, .fuse = fuse});
      std::size_t total = 0;
      std::size_t covered_ops = 0;
      for (const GateRun& run : schedule.runs()) {
        total += run.source_gates;
        covered_ops += run.count;
      }
      EXPECT_EQ(total, c.size()) << "fuse=" << fuse << " cap=" << cap;
      EXPECT_EQ(covered_ops, schedule.circuit().size());
    }
  }
}

TEST(SchedulerTest, UpcomingUnitsWindowExcludesCursorAndClamps) {
  const auto order = qsim::run_block_order(2, 3);  // 6 units
  ASSERT_EQ(order.size(), 6u);

  // The window starts after the cursor — the unit in flight is already
  // being read, advising it would be wasted work.
  const auto window = qsim::upcoming_units(order, 0, 3);
  ASSERT_EQ(window.size(), 3u);
  EXPECT_EQ(window[0], order[1]);
  EXPECT_EQ(window[1], order[2]);
  EXPECT_EQ(window[2], order[3]);

  // Clamped at the end of the order.
  const auto tail = qsim::upcoming_units(order, 4, 8);
  ASSERT_EQ(tail.size(), 1u);
  EXPECT_EQ(tail[0], order[5]);

  // At or past the end: empty, never out-of-bounds.
  EXPECT_TRUE(qsim::upcoming_units(order, 5, 4).empty());
  EXPECT_TRUE(qsim::upcoming_units(order, 100, 4).empty());
  EXPECT_TRUE(qsim::upcoming_units(order, 0, 0).empty());
}

// ------------------------------------------------- batched execution path

double cross_fidelity(CompressedStateSimulator& sim, const Circuit& circuit) {
  qsim::StateVector reference(circuit.num_qubits());
  reference.apply_circuit(circuit);
  return qsim::state_fidelity(reference.raw(), sim.to_raw());
}

SimConfig batched_config(int qubits, int ranks = 4, int blocks = 4) {
  SimConfig config;
  config.num_qubits = qubits;
  config.num_ranks = ranks;
  config.blocks_per_rank = blocks;
  config.threads = 4;
  config.enable_run_batching = true;
  return config;
}

/// A circuit that exercises every target segment, block-local SWAPs inside
/// runs, and a rank-spanning SWAP that forces a run boundary.
Circuit all_segment_circuit() {
  Circuit c(10);  // 4 ranks x 8 blocks -> offset 5, block 3, rank 2
  c.h(0).t(1).cx(0, 2).swap(1, 3);  // block-local run (SWAP included)
  c.h(7).cx(6, 0);                  // block-segment items
  c.swap(0, 9);                     // SWAP across the boundary
  c.rz(2, 0.31).x(4).ccx(0, 1, 3);  // second block-local run
  c.h(9).cphase(8, 1, 0.77);        // rank-segment items
  c.x(0).cx(3, 1);                  // trailing run
  return c;
}

TEST(BatchedSimulatorTest, MatchesDenseAcrossSegmentsWithAndWithoutCache) {
  const Circuit c = all_segment_circuit();
  for (const bool cache : {true, false}) {
    auto config = batched_config(10, 4, 8);
    config.enable_cache = cache;
    CompressedStateSimulator sim(config);
    sim.apply_circuit(c);
    EXPECT_NEAR(cross_fidelity(sim, c), 1.0, 1e-10) << "cache=" << cache;
    const auto report = sim.report();
    EXPECT_GT(report.batched_runs, 0u);
    EXPECT_GT(report.batched_gates, report.batched_runs)
        << "at least one run must hold multiple gates";
  }
}

TEST(BatchedSimulatorTest, BatchedAndPerGatePathsAgree) {
  const Circuit c = all_segment_circuit();
  auto on = batched_config(10, 4, 8);
  auto off = on;
  off.enable_run_batching = false;
  CompressedStateSimulator batched(on);
  CompressedStateSimulator per_gate(off);
  batched.apply_circuit(c);
  per_gate.apply_circuit(c);
  CQS_EXPECT_STATES_CLOSE(batched.to_raw(), per_gate.to_raw(), 1e-12);
  EXPECT_EQ(per_gate.report().batched_runs, 0u);
  EXPECT_LT(batched.report().compress_invocations,
            per_gate.report().compress_invocations)
      << "batching must amortize codec passes";
}

TEST(BatchedSimulatorTest, KGateRunRecordsExactlyOneLossyPass) {
  // Eight block-local gates form one run; at a pinned lossy level the
  // fidelity ledger must record one pass for the whole run (Eq. 11
  // tightens from (1-d)^K to (1-d)^1), not one per gate.
  auto config = batched_config(11, 2, 4);  // offset segment: 8 qubits
  config.initial_level = 2;                // ladder[1] = 1e-4
  CompressedStateSimulator sim(config);
  Circuit c(11);
  c.h(0).h(1).h(2).h(3).cx(0, 1).cx(2, 3).h(0).h(1);
  sim.apply_circuit(c);

  const auto report = sim.report();
  EXPECT_EQ(report.batched_runs, 1u);
  EXPECT_EQ(report.lossy_passes, 1u);
  EXPECT_DOUBLE_EQ(sim.fidelity_bound(), 1.0 - 1e-4);

  // The per-gate path on the same circuit pays one pass per gate.
  auto per_gate_config = config;
  per_gate_config.enable_run_batching = false;
  CompressedStateSimulator per_gate(per_gate_config);
  per_gate.apply_circuit(c);
  EXPECT_EQ(per_gate.report().lossy_passes, c.size());
  EXPECT_LT(per_gate.fidelity_bound(), sim.fidelity_bound());
}

TEST(BatchedSimulatorTest, MemoryBudgetCapsRunLengthForEscalation) {
  // Budget enforcement runs between runs; with a budget set and no user
  // cap, a long block-local stretch must be split (16-op cap) so the
  // error-ladder escalation cannot be deferred across the whole stretch.
  auto config = batched_config(10, 1, 2);  // offset segment: 9 qubits
  config.memory_budget_bytes = 2 << 10;    // pressure on a 16 KB raw state
  CompressedStateSimulator sim(config);
  Circuit c(10);
  // Controlled gates so the fusion pre-pass cannot shrink the stretch,
  // and varied rotations so the state stays incompressible losslessly.
  for (int i = 0; i < 48; ++i) {
    c.h(i % 8).cx(i % 7, (i % 7) + 1).rz(i % 8, 0.37 * i + 0.21);
  }
  sim.apply_circuit(c);
  const auto report = sim.report();
  EXPECT_GE(report.batched_runs, 3u)
      << "a 48-gate local stretch must split into capped runs";
  EXPECT_GT(sim.ladder_level(), 0) << "budget must still force escalation";
}

// ------------------------------------------------- cursor / resume fixes

TEST(CircuitCursorTest, SecondCircuitAppliesAllOfItsGates) {
  // Regression: the cursor used to persist after a completed circuit, so
  // a second apply_circuit silently skipped its first N gates.
  Circuit c1(10);
  c1.h(0).h(1).h(2);
  Circuit c2(10);
  c2.x(0).cx(0, 9).t(5).h(3);
  CompressedStateSimulator sim(batched_config(10));
  sim.apply_circuit(c1);
  sim.apply_circuit(c2);

  qsim::StateVector reference(10);
  reference.apply_circuit(c1);
  reference.apply_circuit(c2);
  EXPECT_NEAR(qsim::state_fidelity(reference.raw(), sim.to_raw()), 1.0,
              1e-10);
  EXPECT_EQ(sim.gate_cursor(), c2.size());
  EXPECT_EQ(sim.report().gates, c1.size() + c2.size());
}

TEST(CircuitCursorTest, AdHocApplyInvalidatesResumePoint) {
  Circuit c1(10);
  c1.h(0).h(1);
  CompressedStateSimulator sim(batched_config(10));
  sim.apply_circuit(c1);
  EXPECT_EQ(sim.gate_cursor(), c1.size());
  sim.apply({GateKind::kX, 3});
  EXPECT_EQ(sim.gate_cursor(), 0u)
      << "an ad-hoc gate diverges the state from the recorded circuit "
         "position, so the cursor must not claim a resume point";

  Circuit c2(10);
  c2.cx(0, 9).t(1);
  sim.apply_circuit(c2);
  qsim::StateVector reference(10);
  reference.apply_circuit(c1);
  reference.apply({GateKind::kX, 3});
  reference.apply_circuit(c2);
  EXPECT_NEAR(qsim::state_fidelity(reference.raw(), sim.to_raw()), 1.0,
              1e-10);
}

TEST(CircuitCursorTest, MeasurementInvalidatesResumePoint) {
  Circuit c(10);
  c.h(0).cx(0, 9);
  CompressedStateSimulator sim(batched_config(10));
  sim.apply_circuit(c);
  ASSERT_EQ(sim.gate_cursor(), c.size());
  Rng rng(7);
  sim.measure(0, rng);
  EXPECT_EQ(sim.gate_cursor(), 0u)
      << "collapse diverges the state from the recorded circuit position";
}

TEST(CircuitCursorTest, ResumeCircuitContinuesFromCursor) {
  const auto full = circuits::qaoa_maxcut_circuit({.num_qubits = 10});
  Circuit prefix(10);
  for (std::size_t i = 0; i < full.size() / 3; ++i) {
    prefix.append(full.ops()[i]);
  }
  CompressedStateSimulator sim(batched_config(10));
  sim.apply_circuit(prefix);
  ASSERT_EQ(sim.gate_cursor(), prefix.size());
  sim.resume_circuit(full);  // applies only the remaining two thirds
  EXPECT_EQ(sim.gate_cursor(), full.size());
  EXPECT_NEAR(cross_fidelity(sim, full), 1.0, 1e-10);
  EXPECT_EQ(sim.report().gates, full.size());
}

TEST(CircuitCursorTest, ResumeCircuitRejectsCursorBeyondCircuit) {
  Circuit big(10);
  big.h(0).h(1).h(2);
  Circuit small(10);
  small.x(0);
  CompressedStateSimulator sim(batched_config(10));
  sim.apply_circuit(big);
  EXPECT_THROW(sim.resume_circuit(small), std::invalid_argument);
}

// ------------------------------------------------------- remap pre-pass
//
// Planner fixtures use 8 qubits split as offset [0,4), block {4,5}, rank
// {6,7} — small enough to enumerate decisions by hand.

qsim::RemapOptions remap_options(bool enabled = true) {
  qsim::RemapOptions options;
  options.enabled = enabled;
  options.num_qubits = 8;
  options.offset_bits = 4;
  options.block_bits = 2;
  return options;
}

std::size_t count_kind(const qsim::RemapProgram& program,
                       qsim::RemapItem::Kind kind) {
  std::size_t n = 0;
  for (const auto& item : program.items) {
    if (item.kind == kind) ++n;
  }
  return n;
}

/// All physical ops of the program's kGates items, in order.
std::vector<qsim::GateOp> program_ops(const qsim::RemapProgram& program) {
  std::vector<qsim::GateOp> ops;
  for (const auto& item : program.items) {
    if (item.kind != qsim::RemapItem::Kind::kGates) continue;
    ops.insert(ops.end(), item.ops.ops().begin(), item.ops.ops().end());
  }
  return ops;
}

TEST(RemapPlanTest, DisabledPassOnlyTranslates) {
  Circuit c(8);
  c.h(7).cx(6, 0).swap(0, 7);
  auto map = runtime::QubitMap::identity(8);
  map.relabel(0, 3);  // as if a previous run had relabeled
  const auto program = plan_remaps(c, map, remap_options(false));
  EXPECT_EQ(program.items.size(), 1u);
  EXPECT_EQ(program.stats.remaps, 0u);
  EXPECT_EQ(program.stats.swaps_relabeled, 0u);
  const auto ops = program_ops(program);
  ASSERT_EQ(ops.size(), 3u);
  EXPECT_EQ(ops[0].target, 7);
  EXPECT_EQ(ops[1].controls[0], 6);
  EXPECT_EQ(ops[1].target, 3);  // logical 0 lives at physical 3
  EXPECT_EQ(ops[2].target, 3);  // SWAP stays a gate when disabled
  EXPECT_EQ(ops[2].controls[0], 7);
}

TEST(RemapPlanTest, SwapBecomesRelabelItem) {
  Circuit c(8);
  c.swap(1, 7).h(7);
  const auto program =
      plan_remaps(c, runtime::QubitMap::identity(8), remap_options());
  ASSERT_EQ(program.items.size(), 2u);
  EXPECT_EQ(program.items[0].kind, qsim::RemapItem::Kind::kRelabel);
  EXPECT_EQ(program.items[0].relabel_a, 1);
  EXPECT_EQ(program.items[0].relabel_b, 7);
  EXPECT_EQ(program.stats.swaps_relabeled, 1u);
  // After the relabel, logical 7 lives at physical 1: H(7) is block-local
  // and needs no remap.
  EXPECT_EQ(program.stats.remaps, 0u);
  const auto ops = program_ops(program);
  ASSERT_EQ(ops.size(), 1u);
  EXPECT_EQ(ops[0].target, 1);
  EXPECT_EQ(program.stats.rank_targets_localized, 1u);
}

TEST(RemapPlanTest, LastTouchRankGateAppliesInPlace) {
  Circuit c(8);
  c.h(7);  // the only gate ever touching qubit 7
  const auto program =
      plan_remaps(c, runtime::QubitMap::identity(8), remap_options());
  EXPECT_EQ(program.stats.remaps, 0u);
  EXPECT_EQ(program.stats.rank_targets_in_place, 1u);
  const auto ops = program_ops(program);
  ASSERT_EQ(ops.size(), 1u);
  EXPECT_EQ(ops[0].target, 7);
}

TEST(RemapPlanTest, RepeatedRankTargetRemapsOnceThenRoutesLocally) {
  Circuit c(8);
  c.h(7).t(7).h(7).h(7);
  const auto program =
      plan_remaps(c, runtime::QubitMap::identity(8), remap_options());
  EXPECT_EQ(program.stats.remaps, 1u);
  ASSERT_GE(program.items.size(), 1u);
  EXPECT_EQ(program.items[0].kind, qsim::RemapItem::Kind::kRemap);
  EXPECT_EQ(program.items[0].remap.phys_hot, 7);
  EXPECT_LT(program.items[0].remap.phys_cold, 4);
  // All three H's (and the diagonal T) execute at the cold offset home.
  EXPECT_EQ(program.stats.rank_targets_localized, 3u);
  EXPECT_EQ(program.stats.rank_targets_in_place, 0u);
  for (const auto& op : program_ops(program)) {
    EXPECT_EQ(op.target, program.items[0].remap.phys_cold);
  }
}

TEST(RemapPlanTest, LookaheadEvictsFurthestNextUse) {
  Circuit c(8);
  // Offset residents 0..3: qubit 2 is touched furthest in the future
  // (never), so the remap for H(6)H(6) must evict it.
  c.h(6).x(0).x(1).x(3).h(6);
  const auto program =
      plan_remaps(c, runtime::QubitMap::identity(8), remap_options());
  ASSERT_EQ(program.stats.remaps, 1u);
  EXPECT_EQ(program.items[0].remap.phys_hot, 6);
  EXPECT_EQ(program.items[0].remap.phys_cold, 2);
}

TEST(RemapPlanTest, LruEvictsLeastRecentlyUsed) {
  Circuit c(8);
  c.x(0).x(2).x(3).x(1).h(6);
  auto options = remap_options();
  options.policy = qsim::RemapPolicy::kLru;
  std::vector<std::uint64_t> last_use(8, 0);
  std::uint64_t tick = 0;
  const auto program = plan_remaps(c, runtime::QubitMap::identity(8),
                                   options, &last_use, &tick);
  // LRU always remaps a hot rank target (no lookahead), evicting the
  // stalest offset resident — qubit 0 here.
  ASSERT_EQ(program.stats.remaps, 1u);
  const auto remap_item = std::find_if(
      program.items.begin(), program.items.end(), [](const auto& item) {
        return item.kind == qsim::RemapItem::Kind::kRemap;
      });
  ASSERT_NE(remap_item, program.items.end());
  EXPECT_EQ(remap_item->remap.phys_hot, 6);
  EXPECT_EQ(remap_item->remap.phys_cold, 0);
  EXPECT_EQ(tick, 5u);

  // The recency state carries across calls: qubit 0 was just relocated,
  // another hot gate now evicts the next-stalest resident (qubit 2).
  Circuit c2(8);
  c2.h(7);
  runtime::QubitMap map = runtime::QubitMap::identity(8);
  map.swap_physical(6, 0);
  const auto program2 = plan_remaps(c2, map, options, &last_use, &tick);
  ASSERT_EQ(program2.stats.remaps, 1u);
  EXPECT_EQ(program2.items[0].remap.phys_hot, 7);
  EXPECT_EQ(program2.items[0].remap.phys_cold, 2);
}

TEST(RemapPlanTest, DiagonalAndControlOnlyRankUseNeverRemaps) {
  Circuit c(8);
  c.z(7).cphase(7, 6, 0.25).cx(7, 0).t(6).cz(6, 7);
  const auto program =
      plan_remaps(c, runtime::QubitMap::identity(8), remap_options());
  EXPECT_EQ(program.stats.remaps, 0u);
  EXPECT_EQ(program.stats.rank_targets_in_place, 0u);
  EXPECT_EQ(count_kind(program, qsim::RemapItem::Kind::kGates), 1u);
}

TEST(RemapPlanTest, SweepsAvoidedNetsOutRemapCost) {
  Circuit c(8);
  // X(7) then H(7): remap at X (1 sweep paid), X and H localized (2
  // sweeps avoided), net 1. The relabeled swap(0, 7) would have cost two
  // rank CX legs: net 3 total.
  c.x(7).h(7).swap(0, 7);
  const auto program =
      plan_remaps(c, runtime::QubitMap::identity(8), remap_options());
  EXPECT_EQ(program.stats.remaps, 1u);
  EXPECT_EQ(program.stats.swaps_relabeled, 1u);
  EXPECT_EQ(program.stats.sweeps_avoided, 3u);
}

TEST(RemapPlanTest, UnrelabeledSwapNeverEvictsItsOwnPartner) {
  // With relabeling off, a rank-spanning SWAP forces its rank qubit into
  // the offset segment; the evicted resident must never be the swap's
  // other qubit (that would hand the CX legs the cost just saved), even
  // when that qubit is the coldest candidate.
  Circuit c(8);
  c.swap(0, 7);  // qubit 0 is otherwise never used: coldest candidate
  auto options = remap_options();
  options.relabel_swaps = false;
  const auto program =
      plan_remaps(c, runtime::QubitMap::identity(8), options);
  ASSERT_EQ(program.stats.remaps, 1u);
  EXPECT_EQ(program.items[0].kind, qsim::RemapItem::Kind::kRemap);
  EXPECT_EQ(program.items[0].remap.phys_hot, 7);
  EXPECT_EQ(program.items[0].remap.phys_cold, 1)
      << "victim must skip the swap partner at physical 0";
  EXPECT_EQ(program.stats.swaps_relabeled, 0u);
}

TEST(RemapPlanTest, SwapWithNoEligibleVictimStaysAtRank) {
  // A 1-qubit offset segment whose only resident is the swap's partner:
  // no eviction is possible without self-defeat, so the leg stays at
  // rank and no remap churns the map.
  Circuit c(3);
  c.swap(0, 2);
  qsim::RemapOptions options;
  options.enabled = true;
  options.relabel_swaps = false;
  options.num_qubits = 3;
  options.offset_bits = 1;
  options.block_bits = 1;
  const auto program =
      plan_remaps(c, runtime::QubitMap::identity(3), options);
  EXPECT_EQ(program.stats.remaps, 0u);
  const auto ops = program_ops(program);
  ASSERT_EQ(ops.size(), 1u);
  EXPECT_EQ(ops[0].kind, GateKind::kSwap);
  EXPECT_EQ(ops[0].target, 0);
  EXPECT_EQ(ops[0].controls[0], 2);
}

TEST(RemapPlanTest, RejectsInvalidInputs) {
  Circuit c(8);
  c.h(0);
  EXPECT_THROW(
      plan_remaps(c, runtime::QubitMap::identity(7), remap_options()),
      std::invalid_argument);
  auto bad = remap_options();
  bad.offset_bits = 0;
  EXPECT_THROW(plan_remaps(c, runtime::QubitMap::identity(8), bad),
               std::invalid_argument);
  auto lru = remap_options();
  lru.policy = qsim::RemapPolicy::kLru;
  EXPECT_THROW(plan_remaps(c, runtime::QubitMap::identity(8), lru),
               std::invalid_argument)
      << "lru without recency state must be rejected";
}

TEST(RemapPlanTest, ParsePolicyNames) {
  EXPECT_EQ(qsim::parse_remap_policy("lookahead"),
            qsim::RemapPolicy::kLookahead);
  EXPECT_EQ(qsim::parse_remap_policy("lru"), qsim::RemapPolicy::kLru);
  EXPECT_THROW(qsim::parse_remap_policy("belady"), std::invalid_argument);
}

}  // namespace
}  // namespace cqs
