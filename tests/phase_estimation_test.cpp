// Tests for the phase estimation circuit and inverse QFT, on both the
// dense reference and the compressed simulator.
#include <gtest/gtest.h>

#include <cmath>

#include "circuits/phase_estimation.hpp"
#include "circuits/qft.hpp"
#include "core/simulator.hpp"
#include "qsim/state_vector.hpp"

namespace cqs::circuits {
namespace {

TEST(InverseQftTest, QftThenInverseIsIdentity) {
  const int n = 6;
  qsim::Circuit c(n);
  // Arbitrary input state.
  c.x(1).h(3).t(3).x(5);
  qsim::StateVector expected(n);
  expected.apply_circuit(c);

  const auto qft =
      qft_circuit({.num_qubits = n, .random_input = false});
  for (const auto& op : qft.ops()) c.append(op);
  append_inverse_qft(c, n);
  qsim::StateVector actual(n);
  actual.apply_circuit(c);
  EXPECT_NEAR(expected.fidelity(actual), 1.0, 1e-10);
}

TEST(PhaseEstimationTest, ExactlyRepresentablePhaseIsRecovered) {
  // phi = 5/32 with 5 counting qubits: the output register must be
  // exactly |5> with probability 1.
  const PhaseEstimationSpec spec{.counting_qubits = 5,
                                 .phase = 5.0 / 32.0};
  qsim::StateVector sv(6);
  sv.apply_circuit(phase_estimation_circuit(spec));
  // Target qubit stays |1>: basis index = 5 + (1 << 5).
  EXPECT_NEAR(std::norm(sv.amplitude(5 + 32)), 1.0, 1e-10);
}

TEST(PhaseEstimationTest, InexactPhasePeaksAtNearestFraction) {
  const PhaseEstimationSpec spec{.counting_qubits = 6, .phase = 0.3};
  qsim::StateVector sv(7);
  sv.apply_circuit(phase_estimation_circuit(spec));
  // Nearest 6-bit fraction to 0.3 is 19/64 = 0.296875.
  double best_prob = 0.0;
  std::uint64_t best_k = 0;
  for (std::uint64_t k = 0; k < 64; ++k) {
    const double p = std::norm(sv.amplitude(k + 64));
    if (p > best_prob) {
      best_prob = p;
      best_k = k;
    }
  }
  EXPECT_EQ(best_k, 19u);
  EXPECT_GT(best_prob, 0.4);  // theory: >= 4/pi^2 ~ 0.405
}

TEST(PhaseEstimationTest, RunsOnCompressedSimulator) {
  const PhaseEstimationSpec spec{.counting_qubits = 8,
                                 .phase = 77.0 / 256.0};
  const auto circuit = phase_estimation_circuit(spec);
  core::SimConfig config;
  config.num_qubits = circuit.num_qubits();
  config.num_ranks = 2;
  config.blocks_per_rank = 4;
  config.threads = 4;
  core::CompressedStateSimulator sim(config);
  sim.apply_circuit(circuit);
  // Read the counting register bit by bit: 77 = 0b01001101.
  for (int q = 0; q < 8; ++q) {
    const double expected = (77 >> q) & 1 ? 1.0 : 0.0;
    EXPECT_NEAR(sim.probability_one(q), expected, 1e-8) << "bit " << q;
  }
}

}  // namespace
}  // namespace cqs::circuits
