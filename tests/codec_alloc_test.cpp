// Allocation-counting hook: global operator new/delete replacements count
// every heap allocation in this binary, proving the scratch-pooled codec
// paths reach a zero-allocation steady state — the *_into entry points
// allocate nothing once warm, and the Compressor scratch overloads
// allocate exactly the one exact-sized payload they hand back.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <new>
#include <vector>

#include "compression/codec_scratch.hpp"
#include "compression/golden_blobs.hpp"
#include "lossless/zx.hpp"

namespace {

std::atomic<std::uint64_t> g_allocations{0};

}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void* operator new(std::size_t size, std::align_val_t align) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  void* p = nullptr;
  if (posix_memalign(&p, std::max<std::size_t>(
                             static_cast<std::size_t>(align), sizeof(void*)),
                     size ? size : 1) != 0) {
    throw std::bad_alloc();
  }
  return p;
}

void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace cqs::compression {
namespace {

/// Allocations performed by `fn`.
template <typename Fn>
std::uint64_t count_allocations(Fn&& fn) {
  const std::uint64_t before = g_allocations.load();
  fn();
  return g_allocations.load() - before;
}

TEST(CodecAllocTest, ZxIntoPathsAreAllocationFreeWhenWarm) {
  const auto& data = golden_fixture("spiky");
  const ByteSpan input = as_bytes_span<double>(data);
  lossless::ZxScratch scratch;
  Bytes compressed;
  Bytes decompressed;
  for (int warm = 0; warm < 3; ++warm) {
    compressed.clear();
    lossless::zx_compress_into(input, {}, scratch, compressed);
    lossless::zx_decompress_into(compressed, scratch, decompressed);
  }
  const std::uint64_t compress_allocs = count_allocations([&] {
    compressed.clear();
    lossless::zx_compress_into(input, {}, scratch, compressed);
  });
  EXPECT_EQ(compress_allocs, 0u);
  const std::uint64_t decompress_allocs = count_allocations([&] {
    lossless::zx_decompress_into(compressed, scratch, decompressed);
  });
  EXPECT_EQ(decompress_allocs, 0u);
  ASSERT_EQ(decompressed.size(), input.size());
}

TEST(CodecAllocTest, ScratchCompressorsReachSteadyState) {
  // Every registry codec is scratch-aware; on every fixture: decompress
  // allocates nothing, compress allocates exactly the returned payload.
  CodecScratch scratch;
  for (const auto& name : compressor_names()) {
    const auto codec = make_compressor(name);
    const ErrorBound bound =
        codec->supports(BoundMode::kPointwiseRelative)
            ? ErrorBound::relative(kGoldenRelativeBound)
            : ErrorBound::lossless();
    for (const char* fixture : {"spiky", "dense", "sparse"}) {
      const auto& data = golden_fixture(fixture);
      std::vector<double> out(data.size());
      Bytes compressed;
      for (int warm = 0; warm < 3; ++warm) {
        compressed = codec->compress(data, bound, scratch);
        codec->decompress(compressed, out, scratch);
      }
      std::uint64_t compress_allocs = 0;
      Bytes payload;
      compress_allocs = count_allocations(
          [&] { payload = codec->compress(data, bound, scratch); });
      EXPECT_LE(compress_allocs, 1u)
          << name << "/" << fixture
          << ": steady-state compress must only allocate the payload";
      EXPECT_FALSE(payload.empty()) << name << "/" << fixture;
      const std::uint64_t decompress_allocs = count_allocations(
          [&] { codec->decompress(payload, out, scratch); });
      EXPECT_EQ(decompress_allocs, 0u) << name << "/" << fixture;
    }
  }
}

TEST(CodecAllocTest, Lz77ScratchReuseIsConstantCost) {
  // The generation-stamped head table must not be re-zero-filled per call:
  // tokenizing a tiny input with a warm scratch allocates nothing (the
  // 2^18-entry table would otherwise dominate every small block).
  lossless::Lz77Scratch scratch;
  const Bytes tiny(64, std::byte{7});
  Bytes tokens;
  for (int warm = 0; warm < 2; ++warm) {
    tokens.clear();
    lossless::lz77_tokenize(tiny, tokens, {}, scratch);
  }
  const std::uint64_t allocs = count_allocations([&] {
    for (int i = 0; i < 100; ++i) {
      tokens.clear();
      lossless::lz77_tokenize(tiny, tokens, {}, scratch);
    }
  });
  EXPECT_EQ(allocs, 0u);
  EXPECT_EQ(lossless::lz77_detokenize(tokens, tiny.size()), tiny);
}

}  // namespace
}  // namespace cqs::compression
