// Dedicated coverage of the error-bound ladder's fidelity bookkeeping
// (Sections 3.7/3.8): the tracked lower bound must equal the product of
// (1 - delta_i) over every recorded lossy pass (Eq. 11), must never
// overstate the measured fidelity — including through budget-forced
// escalation — and must survive checkpoint/resume intact.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "circuits/qaoa.hpp"
#include "circuits/supremacy.hpp"
#include "core/fidelity.hpp"
#include "core/simulator.hpp"
#include "qsim/state_vector.hpp"
#include "test_util.hpp"

namespace cqs::core {
namespace {

double cross_fidelity(CompressedStateSimulator& sim,
                      const qsim::Circuit& circuit) {
  qsim::StateVector reference(circuit.num_qubits());
  reference.apply_circuit(circuit);
  const auto raw = sim.to_raw();
  return qsim::state_fidelity(reference.raw(), raw);
}

SimConfig base_config(int qubits, int ranks, int blocks) {
  SimConfig config;
  config.num_qubits = qubits;
  config.num_ranks = ranks;
  config.blocks_per_rank = blocks;
  config.threads = 4;
  return config;
}

TEST(FidelityTrackerTest, BoundIsExactlyTheProductOfPasses) {
  FidelityTracker tracker;
  EXPECT_DOUBLE_EQ(tracker.bound(), 1.0);
  const std::vector<double> deltas = {1e-5, 1e-5, 1e-4, 1e-3, 1e-3};
  double expected = 1.0;
  for (double d : deltas) {
    tracker.record_lossy_pass(d);
    expected *= (1.0 - d);
  }
  EXPECT_DOUBLE_EQ(tracker.bound(), expected);
  EXPECT_EQ(tracker.lossy_passes(), deltas.size());
  EXPECT_DOUBLE_EQ(FidelityTracker::bound_after(3, 1e-2),
                   (1 - 1e-2) * (1 - 1e-2) * (1 - 1e-2));
}

TEST(FidelityLadderTest, FixedLevelBoundMatchesPerPassProduct) {
  // At a pinned lossy level with no budget pressure, the simulator records
  // at most one pass (all at the same delta) per gate application, so the
  // bound must equal (1 - delta)^lossy_passes with passes <= gates.
  SimConfig config = base_config(10, 2, 4);
  config.initial_level = 3;  // ladder[2] = 1e-3
  CompressedStateSimulator sim(config);
  const auto circuit = circuits::qaoa_maxcut_circuit({.num_qubits = 10});
  sim.apply_circuit(circuit);

  const auto report = sim.report();
  const double delta = config.error_ladder[2];
  EXPECT_EQ(sim.ladder_level(), 3);
  EXPECT_GT(report.lossy_passes, 0u);
  EXPECT_DOUBLE_EQ(sim.fidelity_bound(),
                   FidelityTracker::bound_after(report.lossy_passes, delta));
  // SWAPs expand to three CX applications; everything else records at most
  // one lossy pass per gate.
  std::uint64_t max_passes = 0;
  for (const auto& op : circuit.ops()) {
    max_passes += op.kind == qsim::GateKind::kSwap ? 3 : 1;
  }
  EXPECT_LE(report.lossy_passes, max_passes);
}

TEST(FidelityLadderTest, MeasuredFidelityRespectsBoundThroughEscalation) {
  // The paper's invariant F >= prod(1 - delta_i), exercised specifically
  // through the budget-forced escalation path: the ladder must climb, the
  // bound must shrink accordingly, and the measured fidelity against a
  // dense lossless reference must stay at or above the bound.
  SimConfig config = base_config(12, 2, 4);
  config.memory_budget_bytes = 20 << 10;  // forces lossy mode
  CompressedStateSimulator sim(config);
  const auto circuit =
      circuits::supremacy_circuit({.rows = 3, .cols = 4, .depth = 8});
  sim.apply_circuit(circuit);

  ASSERT_GT(sim.ladder_level(), 0) << "budget must force escalation";
  const double bound = sim.fidelity_bound();
  EXPECT_LT(bound, 1.0);
  EXPECT_GT(bound, 0.0);

  const auto report = sim.report();
  // Every recorded pass used a delta no looser than the final level's, so
  // the bound can never be below the all-passes-at-the-loosest-delta floor.
  const double loosest = config.error_ladder[sim.ladder_level() - 1];
  EXPECT_GE(bound,
            FidelityTracker::bound_after(report.lossy_passes, loosest) -
                1e-15);

  const double measured = cross_fidelity(sim, circuit);
  EXPECT_GE(measured, bound - 1e-12)
      << "fidelity bound overstates the measured fidelity";
}

using FidelityCheckpointTest = test::TempDirFixture;

TEST_F(FidelityCheckpointTest, BoundSurvivesCheckpointResume) {
  SimConfig config = base_config(10, 2, 4);
  config.initial_level = 2;
  CompressedStateSimulator sim(config);
  sim.apply_circuit(circuits::qaoa_maxcut_circuit({.num_qubits = 10}));
  const double bound_before = sim.fidelity_bound();
  ASSERT_LT(bound_before, 1.0);

  const std::string file = path("ladder.ckpt");
  sim.save_checkpoint(file);
  auto resumed = CompressedStateSimulator::load_checkpoint(file, config);
  EXPECT_EQ(resumed.ladder_level(), sim.ladder_level());
  EXPECT_NEAR(resumed.fidelity_bound(), bound_before, 1e-15);
  // Regression: the load path used to collapse the whole saved history
  // into one synthetic pass; the resumed report must carry the real count.
  const auto passes_before = sim.report().lossy_passes;
  ASSERT_GT(passes_before, 1u);
  EXPECT_EQ(resumed.report().lossy_passes, passes_before);

  // Passes recorded after the resume count on top of the restored total.
  qsim::Circuit extra(10);
  extra.h(0);
  resumed.apply(extra.ops()[0]);
  EXPECT_EQ(resumed.report().lossy_passes, passes_before + 1);
  EXPECT_NEAR(resumed.fidelity_bound(),
              bound_before * (1.0 - config.error_ladder[1]), 1e-15);
}

TEST_F(FidelityCheckpointTest, RejectsResumeWithShorterLadder) {
  // A checkpoint saved at ladder level 3 cannot be resumed with a config
  // whose ladder has fewer than 3 entries: the level would index past the
  // end of error_ladder on the next compression.
  SimConfig config = base_config(10, 2, 4);
  config.initial_level = 3;
  CompressedStateSimulator sim(config);
  sim.apply_circuit(circuits::qaoa_maxcut_circuit({.num_qubits = 10}));
  const std::string file = path("deep.ckpt");
  sim.save_checkpoint(file);

  SimConfig short_ladder = config;
  short_ladder.initial_level = 0;
  short_ladder.error_ladder = {1e-5, 1e-4};
  EXPECT_THROW(
      CompressedStateSimulator::load_checkpoint(file, short_ladder),
      std::invalid_argument);
}

}  // namespace
}  // namespace cqs::core
