// Unit tests for the lossless stack: canonical Huffman, LZ77, and the zx
// container (the Zstd stand-in).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <string>
#include <vector>

#include "common/bits.hpp"
#include "common/rng.hpp"
#include "lossless/huffman.hpp"
#include "lossless/lz77.hpp"
#include "lossless/zx.hpp"

namespace cqs::lossless {
namespace {

Bytes to_bytes(const std::string& s) {
  Bytes b(s.size());
  std::memcpy(b.data(), s.data(), s.size());
  return b;
}

TEST(HuffmanTest, LengthsSatisfyKraft) {
  std::vector<std::uint64_t> counts(256, 0);
  counts['a'] = 1000;
  counts['b'] = 500;
  counts['c'] = 100;
  counts['d'] = 1;
  const auto lengths = build_code_lengths(counts);
  double kraft = 0.0;
  for (auto l : lengths) {
    if (l > 0) kraft += std::pow(2.0, -static_cast<double>(l));
  }
  EXPECT_LE(kraft, 1.0 + 1e-12);
  EXPECT_LE(lengths['a'], lengths['d']);
}

TEST(HuffmanTest, SingleSymbolGetsLengthOne) {
  std::vector<std::uint64_t> counts(256, 0);
  counts[42] = 100;
  const auto lengths = build_code_lengths(counts);
  EXPECT_EQ(lengths[42], 1);
}

TEST(HuffmanTest, DepthLimitRespectedOnPathologicalCounts) {
  // Fibonacci-like counts force deep trees without limiting.
  std::vector<std::uint64_t> counts(64, 0);
  std::uint64_t a = 1;
  std::uint64_t b = 1;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    counts[i] = a;
    const std::uint64_t next = a + b;
    a = b;
    b = next;
  }
  const auto lengths = build_code_lengths(counts);
  for (auto l : lengths) EXPECT_LE(l, kMaxCodeLength);
}

TEST(HuffmanTest, EncodeDecodeRoundTrip) {
  std::vector<std::uint64_t> counts(300, 0);
  Rng rng(3);
  std::vector<std::uint32_t> symbols;
  for (int i = 0; i < 20000; ++i) {
    // Skewed distribution over a >256 alphabet (like SZ quant codes).
    const auto s = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(299, rng.next_below(16) * rng.next_below(20)));
    symbols.push_back(s);
    ++counts[s];
  }
  const auto encoder = HuffmanEncoder::from_counts(counts);
  Bytes buffer;
  encoder.write_table(buffer);
  {
    BitWriter writer(buffer);
    for (auto s : symbols) encoder.encode(writer, s);
  }
  std::size_t offset = 0;
  const auto decoder = HuffmanDecoder::read_table(buffer, offset, 300);
  BitReader reader(ByteSpan(buffer).subspan(offset));
  for (auto s : symbols) {
    ASSERT_EQ(decoder.decode(reader), s);
  }
}

TEST(Lz77Test, RoundTripText) {
  const Bytes input = to_bytes(
      "the quick brown fox jumps over the lazy dog; "
      "the quick brown fox jumps over the lazy dog again and again");
  Bytes tokens;
  lz77_tokenize(input, tokens);
  EXPECT_LT(tokens.size(), input.size());
  const Bytes output = lz77_detokenize(tokens, input.size());
  EXPECT_EQ(output, input);
}

TEST(Lz77Test, RoundTripAllZeros) {
  const Bytes input(1 << 16, std::byte{0});
  Bytes tokens;
  lz77_tokenize(input, tokens);
  EXPECT_LT(tokens.size(), 64u);  // one giant overlapping match
  EXPECT_EQ(lz77_detokenize(tokens, input.size()), input);
}

TEST(Lz77Test, RoundTripIncompressibleRandom) {
  Rng rng(11);
  Bytes input(10000);
  for (auto& b : input) {
    b = static_cast<std::byte>(rng.next_u64() & 0xff);
  }
  Bytes tokens;
  lz77_tokenize(input, tokens);
  EXPECT_EQ(lz77_detokenize(tokens, input.size()), input);
}

TEST(Lz77Test, EmptyInput) {
  Bytes tokens;
  lz77_tokenize({}, tokens);
  EXPECT_EQ(lz77_detokenize(tokens, 0).size(), 0u);
}

TEST(Lz77Test, ShortInputsBelowMinMatch) {
  for (std::size_t n = 1; n < kMinMatch; ++n) {
    Bytes input(n, std::byte{7});
    Bytes tokens;
    lz77_tokenize(input, tokens);
    EXPECT_EQ(lz77_detokenize(tokens, n), input);
  }
}

TEST(Lz77Test, DetokenizeRejectsBadOffset) {
  Bytes tokens;
  put_varint(tokens, 0);   // no literals
  put_varint(tokens, 1);   // match length 4
  put_varint(tokens, 10);  // offset beyond output
  EXPECT_THROW(lz77_detokenize(tokens, 4), std::runtime_error);
}

TEST(ZxTest, RoundTripVariousInputs) {
  Rng rng(23);
  std::vector<Bytes> inputs;
  inputs.push_back({});
  inputs.push_back(to_bytes("a"));
  inputs.push_back(to_bytes(std::string(100000, 'z')));
  Bytes random(50000);
  for (auto& b : random) b = static_cast<std::byte>(rng.next_u64() & 0xff);
  inputs.push_back(random);
  Bytes structured;
  for (int i = 0; i < 10000; ++i) {
    structured.push_back(static_cast<std::byte>(i % 17));
  }
  inputs.push_back(structured);

  for (const auto& input : inputs) {
    const Bytes compressed = zx_compress(input);
    EXPECT_EQ(zx_original_size(compressed), input.size());
    EXPECT_EQ(zx_decompress(compressed), input);
  }
}

TEST(ZxTest, ZerosCompressMassively) {
  const Bytes zeros(1 << 20, std::byte{0});
  const Bytes compressed = zx_compress(zeros);
  EXPECT_LT(compressed.size(), zeros.size() / 1000);
}

TEST(ZxTest, NeverExpandsBeyondHeader) {
  Rng rng(5);
  Bytes random(4096);
  for (auto& b : random) b = static_cast<std::byte>(rng.next_u64() & 0xff);
  const Bytes compressed = zx_compress(random);
  EXPECT_LE(compressed.size(), random.size() + 12);
}

TEST(ZxTest, RejectsCorruptMagic) {
  Bytes bogus = to_bytes("not a container");
  EXPECT_THROW(zx_decompress(bogus), std::runtime_error);
  EXPECT_THROW(zx_original_size(bogus), std::runtime_error);
}

TEST(ZxTest, StateVectorLikeDataRoundTrip) {
  // Doubles with repeated values (amplitudes sharing values, Section 3.4).
  std::vector<double> values(8192);
  Rng rng(31);
  const double palette[4] = {0.0, 0.125, -0.125, 0.7071067811865476};
  for (auto& v : values) v = palette[rng.next_below(4)];
  ByteSpan input = as_bytes_span<double>(values);
  const Bytes compressed = zx_compress(input);
  EXPECT_LT(compressed.size(), input.size() / 4);
  const Bytes output = zx_decompress(compressed);
  ASSERT_EQ(output.size(), input.size());
  EXPECT_EQ(0, std::memcmp(output.data(), input.data(), input.size()));
}

}  // namespace
}  // namespace cqs::lossless
