// Whole-stack integration sweeps: the compressed simulator against the
// dense reference over the cross product of codec x partition shape x
// workload, randomized-circuit equivalence over seeds, and budget-pressure
// properties. These are the "does the whole machine agree with physics"
// tests; the per-module suites cover the parts.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <tuple>

#include "circuits/grover.hpp"
#include "circuits/qaoa.hpp"
#include "circuits/qft.hpp"
#include "circuits/supremacy.hpp"
#include "common/rng.hpp"
#include "core/memory_model.hpp"
#include "core/simulator.hpp"
#include "qsim/fusion.hpp"
#include "qsim/state_vector.hpp"

namespace cqs::core {
namespace {

double fidelity_vs_dense(CompressedStateSimulator& sim,
                         const qsim::Circuit& circuit) {
  qsim::StateVector reference(circuit.num_qubits());
  reference.apply_circuit(circuit);
  return qsim::state_fidelity(reference.raw(), sim.to_raw());
}

qsim::Circuit workload(const std::string& kind, int qubits) {
  if (kind == "grover") {
    return circuits::grover_circuit(
        {.data_qubits = circuits::grover_data_qubits(qubits),
         .marked_state = 5});
  }
  if (kind == "qaoa") {
    return circuits::qaoa_maxcut_circuit({.num_qubits = qubits});
  }
  if (kind == "qft") {
    return circuits::qft_circuit({.num_qubits = qubits});
  }
  // supremacy-ish on a 2 x (qubits/2) grid.
  return circuits::supremacy_circuit(
      {.rows = 2, .cols = qubits / 2, .depth = 9});
}

// ---------------------------------------------------------------------
// Sweep 1: codec x partition, lossless mode -> fidelity 1 vs dense.

using ShapeParam = std::tuple<int, int>;  // (ranks, blocks_per_rank)

class PartitionSweepTest : public ::testing::TestWithParam<ShapeParam> {};

TEST_P(PartitionSweepTest, AllWorkloadsMatchDense) {
  const auto [ranks, blocks] = GetParam();
  for (const std::string kind : {"grover", "qaoa", "qft", "sup"}) {
    const auto circuit = workload(kind, 10);
    SimConfig config;
    config.num_qubits = circuit.num_qubits();
    config.num_ranks = ranks;
    config.blocks_per_rank = blocks;
    config.threads = 4;
    CompressedStateSimulator sim(config);
    sim.apply_circuit(circuit);
    EXPECT_NEAR(fidelity_vs_dense(sim, circuit), 1.0, 1e-9)
        << kind << " " << ranks << "x" << blocks;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, PartitionSweepTest,
    ::testing::Values(ShapeParam{1, 1}, ShapeParam{1, 16}, ShapeParam{2, 2},
                      ShapeParam{4, 8}, ShapeParam{8, 4}, ShapeParam{16, 1},
                      ShapeParam{32, 2}),
    [](const auto& info) {
      return "r" + std::to_string(std::get<0>(info.param)) + "b" +
             std::to_string(std::get<1>(info.param));
    });

// ---------------------------------------------------------------------
// Sweep 2: random circuits over seeds, every codec at a lossy level;
// measured fidelity must respect the tracked bound and stay near 1 for a
// tight bound.

using CodecSeed = std::tuple<std::string, std::uint64_t>;

class RandomCircuitSweepTest : public ::testing::TestWithParam<CodecSeed> {};

qsim::Circuit random_circuit(int qubits, int gates, std::uint64_t seed) {
  Rng rng(seed);
  qsim::Circuit c(qubits);
  for (int i = 0; i < gates; ++i) {
    const int q = static_cast<int>(rng.next_below(qubits));
    switch (rng.next_below(8)) {
      case 0: c.h(q); break;
      case 1: c.t(q); break;
      case 2: c.sx(q); break;
      case 3: c.rz(q, rng.next_double() * 3.0); break;
      case 4: c.ry(q, rng.next_double() * 2.0); break;
      case 5: {
        const int p = static_cast<int>(rng.next_below(qubits));
        if (p != q) c.cx(p, q);
        break;
      }
      case 6: {
        const int p = static_cast<int>(rng.next_below(qubits));
        if (p != q) c.cz(p, q);
        break;
      }
      case 7: {
        const int p = static_cast<int>(rng.next_below(qubits));
        const int r = static_cast<int>(rng.next_below(qubits));
        if (p != q && r != q && p != r) c.ccx(p, r, q);
        break;
      }
    }
  }
  return c;
}

TEST_P(RandomCircuitSweepTest, LossyFidelityRespectsBound) {
  const auto& [codec, seed] = GetParam();
  const auto circuit = random_circuit(10, 120, seed);
  SimConfig config;
  config.num_qubits = 10;
  config.num_ranks = 4;
  config.blocks_per_rank = 4;
  config.threads = 4;
  config.codec = codec;
  config.initial_level = 1;  // 1e-5
  CompressedStateSimulator sim(config);
  sim.apply_circuit(circuit);
  const double measured = fidelity_vs_dense(sim, circuit);
  EXPECT_GE(measured + 1e-12, sim.fidelity_bound());
  EXPECT_GT(measured, 0.998) << codec << " seed " << seed;
}

std::vector<CodecSeed> codec_seed_params() {
  std::vector<CodecSeed> params;
  for (const auto& codec : {"qzc", "sz", "zfp", "fpzip"}) {
    for (std::uint64_t seed : {1u, 2u, 3u}) params.emplace_back(codec, seed);
  }
  return params;
}

INSTANTIATE_TEST_SUITE_P(
    CodecsSeeds, RandomCircuitSweepTest,
    ::testing::ValuesIn(codec_seed_params()), [](const auto& info) {
      std::string name = std::get<0>(info.param);
      for (auto& ch : name) {
        if (ch == '-') ch = '_';
      }
      return name + "_s" + std::to_string(std::get<1>(info.param));
    });

// ---------------------------------------------------------------------
// Sweep 3: budget pressure. Tighter budgets escalate further, never past
// the ladder; compressed size obeys the budget unless flagged; fidelity
// bound decreases monotonically with pressure.

class BudgetSweepTest : public ::testing::TestWithParam<double> {};

TEST_P(BudgetSweepTest, BudgetObeyedOrFlagged) {
  const double fraction = GetParam();
  const auto circuit =
      circuits::supremacy_circuit({.rows = 3, .cols = 4, .depth = 8});
  SimConfig config;
  config.num_qubits = 12;
  config.num_ranks = 2;
  config.blocks_per_rank = 8;
  config.threads = 4;
  config.memory_budget_bytes = static_cast<std::size_t>(
      fraction * static_cast<double>(memory_required_bytes(12)));
  CompressedStateSimulator sim(config);
  sim.apply_circuit(circuit);
  const auto report = sim.report();
  if (!report.budget_exceeded) {
    EXPECT_LE(sim.compressed_bytes(), config.memory_budget_bytes);
  } else {
    EXPECT_EQ(sim.ladder_level(),
              static_cast<int>(config.error_ladder.size()));
  }
  EXPECT_LE(sim.ladder_level(),
            static_cast<int>(config.error_ladder.size()));
  // The run must still be recognizably the right state.
  EXPECT_GT(fidelity_vs_dense(sim, circuit), 0.2) << fraction;
}

INSTANTIATE_TEST_SUITE_P(Fractions, BudgetSweepTest,
                         ::testing::Values(0.5, 0.3, 0.2, 0.1, 0.05),
                         [](const auto& info) {
                           return "pct" +
                                  std::to_string(static_cast<int>(
                                      info.param * 100));
                         });

TEST(BudgetMonotonicityTest, TighterBudgetNoHigherFidelityBound) {
  const auto circuit =
      circuits::supremacy_circuit({.rows = 3, .cols = 4, .depth = 8});
  double prev_bound = -1.0;
  for (double fraction : {0.05, 0.2, 0.5}) {
    SimConfig config;
    config.num_qubits = 12;
    config.num_ranks = 2;
    config.blocks_per_rank = 8;
    config.threads = 4;
    config.memory_budget_bytes = static_cast<std::size_t>(
        fraction * static_cast<double>(memory_required_bytes(12)));
    CompressedStateSimulator sim(config);
    sim.apply_circuit(circuit);
    EXPECT_GE(sim.fidelity_bound() + 1e-12, prev_bound) << fraction;
    prev_bound = sim.fidelity_bound();
  }
}

// ---------------------------------------------------------------------
// Sweep 4: fusion inside the compressed simulator across workloads.

TEST(FusedCompressedTest, FusedCircuitsMatchDense) {
  for (const std::string kind : {"grover", "sup", "qft"}) {
    const auto circuit = workload(kind, 10);
    const auto fused = qsim::fuse_single_qubit_gates(circuit);
    SimConfig config;
    config.num_qubits = circuit.num_qubits();
    config.num_ranks = 4;
    config.blocks_per_rank = 4;
    config.threads = 4;
    CompressedStateSimulator sim(config);
    sim.apply_circuit(fused);
    // Compare against the dense run of the *original* circuit.
    EXPECT_NEAR(fidelity_vs_dense(sim, circuit), 1.0, 1e-9) << kind;
  }
}

// ---------------------------------------------------------------------
// Sweep 5: end-to-end Grover quality under compression, several sizes.

class GroverSweepTest : public ::testing::TestWithParam<int> {};

TEST_P(GroverSweepTest, MarkedStateAmplified) {
  const int data_qubits = GetParam();
  const std::uint64_t marked = (1ull << data_qubits) - 2;
  const int iterations = std::max(
      1, static_cast<int>(std::round(std::numbers::pi / 4.0 *
                                     std::sqrt(1 << data_qubits))));
  const auto circuit = circuits::grover_circuit(
      {.data_qubits = data_qubits, .marked_state = marked,
       .iterations = iterations});
  SimConfig config;
  config.num_qubits = circuit.num_qubits();
  config.num_ranks = 2;
  config.blocks_per_rank = 4;
  config.threads = 4;
  // Real budget pressure, like the paper's Grover rows — floored so tiny
  // instances are not forced straight to the loosest error level.
  config.memory_budget_bytes = std::max<std::size_t>(
      2048, static_cast<std::size_t>(
                0.02 * static_cast<double>(
                           memory_required_bytes(circuit.num_qubits()))));
  CompressedStateSimulator sim(config);
  sim.apply_circuit(circuit);
  double p_marked = 1.0;
  for (int q = 0; q < data_qubits; ++q) {
    const double p1 = sim.probability_one(q);
    p_marked *= ((marked >> q) & 1u) ? p1 : (1.0 - p1);
  }
  EXPECT_GT(p_marked, 0.8) << data_qubits << " data qubits";
}

INSTANTIATE_TEST_SUITE_P(Sizes, GroverSweepTest,
                         ::testing::Values(4, 5, 6, 7),
                         [](const auto& info) {
                           return "d" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace cqs::core
