// Tests for the stochastic Pauli noise trajectories and the circuit text
// serialization.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "circuits/qaoa.hpp"
#include "common/rng.hpp"
#include "qsim/noise.hpp"
#include "qsim/serialize.hpp"
#include "qsim/state_vector.hpp"

namespace cqs::qsim {
namespace {

TEST(NoiseTest, ZeroProbabilityLeavesCircuitUnchanged) {
  Circuit c(3);
  c.h(0).cx(0, 1).t(2);
  Rng rng(1);
  const Circuit noisy = sample_noisy_trajectory(c, {0.0, 0.0}, rng);
  EXPECT_EQ(noisy.size(), c.size());
}

TEST(NoiseTest, ErrorRateMatchesProbability) {
  Circuit c(4);
  for (int i = 0; i < 1000; ++i) c.h(i % 4);
  Rng rng(7);
  TrajectoryStats stats;
  sample_noisy_trajectory(c, {.p1 = 0.1, .p2 = 0.0}, rng, stats);
  EXPECT_NEAR(static_cast<double>(stats.single_qubit_errors), 100.0, 35.0);
  EXPECT_EQ(stats.two_qubit_errors, 0u);
}

TEST(NoiseTest, TwoQubitErrorsHitBothQubits) {
  Circuit c(2);
  for (int i = 0; i < 200; ++i) c.cx(0, 1);
  Rng rng(13);
  TrajectoryStats stats;
  const Circuit noisy =
      sample_noisy_trajectory(c, {.p1 = 0.0, .p2 = 0.5}, rng, stats);
  EXPECT_GT(stats.two_qubit_errors, 50u);
  // Each two-qubit error adds 2 Pauli ops.
  EXPECT_EQ(noisy.size(), c.size() + 2 * stats.two_qubit_errors);
}

TEST(NoiseTest, FidelityDecaysWithNoiseProbability) {
  const auto c = circuits::qaoa_maxcut_circuit({.num_qubits = 8});
  StateVector ideal(8);
  ideal.apply_circuit(c);

  double prev_fidelity = 1.0;
  for (double p : {0.001, 0.01, 0.05}) {
    // Average fidelity over trajectories.
    double sum = 0.0;
    const int trials = 20;
    Rng rng(31);
    for (int t = 0; t < trials; ++t) {
      StateVector noisy(8);
      noisy.apply_circuit(sample_noisy_trajectory(c, {p, p}, rng));
      sum += ideal.fidelity(noisy);
    }
    const double mean = sum / trials;
    EXPECT_LE(mean, prev_fidelity + 0.02) << "p=" << p;
    prev_fidelity = mean;
  }
  EXPECT_LT(prev_fidelity, 0.9);  // 5% noise is destructive
}

TEST(SerializeTest, RoundTripAllGateKinds) {
  Circuit c(5);
  c.h(0).x(1).y(2).z(3).s(4).sdg(0).t(1).tdg(2).sx(3).sy(4).sw(0);
  c.rx(1, 0.25).ry(2, -1.5).rz(3, 3.14).phase(4, 0.5);
  c.u3(0, 0.1, 0.2, 0.3);
  c.cx(0, 1).cz(1, 2).cphase(2, 3, 0.7).swap(3, 4).ccx(0, 1, 4);
  c.append({GateKind::kU3G, 2, {-1, -1}, {0.1, 0.2, 0.3, 0.4}});

  const std::string text = circuit_to_text(c);
  const Circuit parsed = circuit_from_text(text);
  ASSERT_EQ(parsed.size(), c.size());
  ASSERT_EQ(parsed.num_qubits(), c.num_qubits());

  // Equivalence check: identical states.
  StateVector a(5);
  StateVector b(5);
  a.apply_circuit(c);
  b.apply_circuit(parsed);
  for (std::uint64_t i = 0; i < a.size(); ++i) {
    ASSERT_NEAR(std::abs(a.amplitude(i) - b.amplitude(i)), 0.0, 1e-12);
  }
}

TEST(SerializeTest, CommentsAndBlankLines) {
  const std::string text =
      "# a comment\n"
      "\n"
      "qubits 2\n"
      "# another\n"
      "h 0\n"
      "\n"
      "cx 0 1\n";
  const Circuit c = circuit_from_text(text);
  EXPECT_EQ(c.size(), 2u);
  EXPECT_EQ(c.ops()[1].kind, GateKind::kCX);
  EXPECT_EQ(c.ops()[1].controls[0], 0);
  EXPECT_EQ(c.ops()[1].target, 1);
}

TEST(SerializeTest, RejectsMalformedInput) {
  EXPECT_THROW(circuit_from_text("h 0\n"), std::runtime_error);  // no header
  EXPECT_THROW(circuit_from_text("qubits 2\nbogus 0\n"),
               std::runtime_error);
  EXPECT_THROW(circuit_from_text("qubits 2\nh\n"), std::runtime_error);
  EXPECT_THROW(circuit_from_text("qubits 2\nh 5\n"), std::runtime_error);
  EXPECT_THROW(circuit_from_text("qubits 2\nrz 0\n"), std::runtime_error);
  EXPECT_THROW(circuit_from_text("qubits 2\nh 0 1\n"), std::runtime_error);
}

TEST(SerializeTest, GeneratedCircuitsRoundTrip) {
  const auto c = circuits::qaoa_maxcut_circuit({.num_qubits = 10});
  const Circuit parsed = circuit_from_text(circuit_to_text(c));
  StateVector a(10);
  StateVector b(10);
  a.apply_circuit(c);
  b.apply_circuit(parsed);
  EXPECT_NEAR(a.fidelity(b), 1.0, 1e-12);
}

}  // namespace
}  // namespace cqs::qsim
